// Cluster end-to-end suite (run with -run TestCluster): two real
// gaa-httpd processes replicate adaptive state over HTTP through
// test-owned TCP proxies whose listeners the test stops and restarts —
// a genuine network partition, not a mock. The drill: a block earned
// on node A is enforced by node B within the SLO; both sides keep
// serving (and keep learning) while partitioned; healing converges the
// fleet to identical block sets; and a kill -9 of one node followed by
// a restart on the same state directory rejoins the mesh and resumes
// replication.
package gaaapi

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// clusterE2ESystem grants everything except to blacklisted sources; no
// threat-level lockdown, so the fleet keeps serving legitimate clients
// throughout the drill.
const clusterE2ESystem = `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`

// clusterE2ELocal escalates on a phf probe with every replicated
// countermeasure: blacklist, threat level, timed firewall block.
const clusterE2ELocal = `
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:IP
rr_cond_set_threat_level local on:failure/medium
rr_cond_block_ip local on:failure/duration:30m
pos_access_right apache *
`

// chaosLink is a TCP proxy standing in for one direction of the
// replication mesh. Cut closes the listener and every live connection
// (the partition); Heal rebinds the same address.
type chaosLink struct {
	t      *testing.T
	listen string // fixed local address, stable across cut/heal
	target string // the peer's real listen address

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]bool
}

func newChaosLink(t *testing.T, target string) *chaosLink {
	l := &chaosLink{t: t, listen: freeAddr(t), target: target, conns: map[net.Conn]bool{}}
	l.Heal()
	t.Cleanup(l.Cut)
	return l
}

// URL is the peer base URL a node should replicate to.
func (l *chaosLink) URL() string { return "http://" + l.listen }

// Heal (re)binds the listener and forwards connections to the target.
func (l *chaosLink) Heal() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ln != nil {
		return
	}
	ln, err := net.Listen("tcp", l.listen)
	if err != nil {
		l.t.Fatalf("chaos link bind %s: %v", l.listen, err)
	}
	l.ln = ln
	go l.accept(ln)
}

// Cut drops the listener and severs every live connection: the pusher
// on the far side sees refused connections, exactly like a partition.
func (l *chaosLink) Cut() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ln == nil {
		return
	}
	l.ln.Close()
	l.ln = nil
	for c := range l.conns {
		c.Close()
	}
	l.conns = map[net.Conn]bool{}
}

func (l *chaosLink) accept(ln net.Listener) {
	for {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.DialTimeout("tcp", l.target, 2*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		l.mu.Lock()
		if l.ln != ln { // cut raced the accept
			l.mu.Unlock()
			client.Close()
			upstream.Close()
			continue
		}
		l.conns[client] = true
		l.conns[upstream] = true
		l.mu.Unlock()
		go func() { io.Copy(upstream, client); upstream.Close() }()
		go func() { io.Copy(client, upstream); client.Close() }()
	}
}

// clientFrom returns an HTTP client whose connections originate from
// the given loopback source address, so each simulated attacker has a
// distinct client IP at the server.
func clientFrom(ip string) *http.Client {
	d := &net.Dialer{
		LocalAddr: &net.TCPAddr{IP: net.ParseIP(ip)},
		Timeout:   2 * time.Second,
	}
	return &http.Client{
		Transport: &http.Transport{DialContext: d.DialContext, DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
}

// getStatus fetches url as the given client and returns the HTTP
// status, or 0 on transport error.
func getStatus(c *http.Client, url string) int {
	resp, err := c.Get(url)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// statusSet parses a "blocked:"- or "BadGuys:"-style status line into
// a sorted member list, so two nodes can be compared as sets.
func statusSet(t *testing.T, body, prefix string) []string {
	t.Helper()
	line := statusLine(t, body, prefix)
	members := strings.Fields(strings.TrimSpace(strings.TrimPrefix(line, prefix)))
	sort.Strings(members)
	return members
}

func TestClusterPartitionHealKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "gaa-httpd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/gaa-httpd").CombinedOutput(); err != nil {
		t.Fatalf("build gaa-httpd: %v\n%s", err, out)
	}

	policyDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(policyDir, "system.eacl"), []byte(clusterE2ESystem), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(policyDir, ".eacl"), []byte(clusterE2ELocal), 0o644); err != nil {
		t.Fatal(err)
	}

	addrA, addrB := freeAddr(t), freeAddr(t)
	baseA, baseB := "http://"+addrA, "http://"+addrB
	// Each node reaches its peer through a chaos proxy the test owns.
	linkToB := newChaosLink(t, addrB) // A's path to B
	linkToA := newChaosLink(t, addrA) // B's path to A
	dirA, dirB := t.TempDir(), t.TempDir()

	start := func(name, addr, dir, peer string) *exec.Cmd {
		cmd := exec.Command(bin,
			"-listen", addr,
			"-system", filepath.Join(policyDir, "system.eacl"),
			"-local-dir", policyDir,
			"-state-dir", dir,
			"-fsync", "always",
			"-snapshot-interval", "1h",
			"-node-id", name,
			"-peers", peer,
			"-replication-interval", "25ms")
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		waitHTTP(t, "http://"+addr+"/gaa/status")
		return cmd
	}
	start("alpha", addrA, dirA, linkToB.URL())
	nodeB := start("beta", addrB, dirB, linkToA.URL())

	attack := func(c *http.Client, base string) {
		t.Helper()
		status := getStatus(c, base+"/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd")
		if status != http.StatusForbidden {
			t.Fatalf("phf probe against %s = %d, want 403", base, status)
		}
	}
	blockedOn := func(c *http.Client, base string) func() bool {
		return func() bool { return getStatus(c, base+"/index.html") == http.StatusForbidden }
	}

	// Phase 1 — cross-node enforcement SLO: a probe blocked on A must
	// be firewalled on B without B ever seeing a bad request from it.
	atk1 := clientFrom("127.0.0.2")
	attack(atk1, baseA)
	sloStart := time.Now()
	if !waitFor(t, 5*time.Second, nil, blockedOn(atk1, baseB)) {
		t.Fatal("block earned on node A never enforced on node B")
	}
	t.Logf("cross-node enforcement in %v", time.Since(sloStart))
	legit := clientFrom("127.0.0.1")
	if got := getStatus(legit, baseB+"/index.html"); got != http.StatusOK {
		t.Fatalf("legit client on B = %d after replication, want 200", got)
	}

	// Phase 2 — partition drill: cut both directions; each side learns
	// about a different attacker; neither block crosses the cut; both
	// sides keep serving. Healing converges the fleet.
	linkToB.Cut()
	linkToA.Cut()
	atk2, atk3 := clientFrom("127.0.0.3"), clientFrom("127.0.0.4")
	attack(atk2, baseA)
	attack(atk3, baseB)
	time.Sleep(300 * time.Millisecond) // give a leak every chance to cross
	if got := getStatus(atk3, baseA+"/index.html"); got != http.StatusOK {
		t.Fatalf("node A already blocks B's attacker across a cut partition (%d)", got)
	}
	if got := getStatus(atk2, baseB+"/index.html"); got != http.StatusOK {
		t.Fatalf("node B already blocks A's attacker across a cut partition (%d)", got)
	}
	if got := getStatus(legit, baseA+"/index.html"); got != http.StatusOK {
		t.Fatalf("partitioned node A stopped serving legit traffic (%d)", got)
	}

	linkToB.Heal()
	linkToA.Heal()
	if !waitFor(t, 10*time.Second, nil, func() bool {
		return blockedOn(atk3, baseA)() && blockedOn(atk2, baseB)()
	}) {
		t.Fatal("fleet did not converge after heal")
	}
	// Converged means identical: both nodes report the same block set
	// and blacklist.
	if !waitFor(t, 10*time.Second, nil, func() bool {
		bodyA, bodyB := httpBody(t, baseA+"/gaa/status"), httpBody(t, baseB+"/gaa/status")
		return fmt.Sprint(statusSet(t, bodyA, "blocked:")) == fmt.Sprint(statusSet(t, bodyB, "blocked:")) &&
			fmt.Sprint(statusSet(t, bodyA, "BadGuys:")) == fmt.Sprint(statusSet(t, bodyB, "BadGuys:")) &&
			len(statusSet(t, bodyA, "blocked:")) == 3
	}) {
		t.Fatalf("block sets never became identical after heal:\nA: %s\nB: %s",
			httpBody(t, baseA+"/gaa/status"), httpBody(t, baseB+"/gaa/status"))
	}
	// A healthy converged node reports ready.
	if got := getStatus(legit, baseA+"/gaa/healthz"); got != http.StatusOK {
		t.Fatalf("healthz on converged node A = %d, want 200", got)
	}

	// Phase 3 — kill -9 and rejoin: B dies hard, restarts on the same
	// state directory, restores its blocks, and replication resumes.
	if err := nodeB.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	nodeB.Wait()
	start("beta", addrB, dirB, linkToA.URL())

	postBody := httpBody(t, baseB+"/gaa/status")
	if got := statusSet(t, postBody, "blocked:"); len(got) != 3 {
		t.Fatalf("restarted B restored blocked=%v, want all 3 attackers", got)
	}
	for _, c := range []*http.Client{atk1, atk2, atk3} {
		if !blockedOn(c, baseB)() {
			t.Fatal("restarted B does not enforce a restored block")
		}
	}
	atk4 := clientFrom("127.0.0.5")
	attack(atk4, baseA)
	if !waitFor(t, 10*time.Second, nil, blockedOn(atk4, baseB)) {
		t.Fatal("replication to restarted B never resumed")
	}
}
