package gaaapi

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"gaaapi/internal/config"
	"gaaapi/internal/eacl"
	"gaaapi/internal/eacl/analysis"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// diagCodes returns the sorted, deduplicated diagnostic codes.
func diagCodes(ds []analysis.Diagnostic) []string {
	seen := map[string]bool{}
	for _, d := range ds {
		seen[d.Code] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// shippedKnown builds the vocabulary the shipped gaa.conf declares.
func shippedKnown(t *testing.T) func(condType, defAuth string) bool {
	t.Helper()
	cfg, err := config.ParseFile("policies/paper/gaa.conf")
	if err != nil {
		t.Fatalf("shipped gaa.conf does not parse: %v", err)
	}
	api := gaa.New()
	deps := config.Deps{}
	deps.Conditions.Threat = ids.NewManager(ids.Low)
	deps.Conditions.Groups = groups.NewStore()
	if err := cfg.Apply(api, deps); err != nil {
		t.Fatalf("shipped gaa.conf does not apply: %v", err)
	}
	return api.Known
}

// TestShippedPoliciesAnalyzeClean runs the full analyzer catalog over
// every policy file shipped under policies/ — the repo's own artifacts
// must stay free of findings at any severity.
func TestShippedPoliciesAnalyzeClean(t *testing.T) {
	known := shippedKnown(t)
	paths, err := filepath.Glob("policies/paper/*.eacl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped policies found")
	}
	a := analysis.New()
	for _, path := range paths {
		e, err := eacl.ParseFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for _, d := range a.AnalyzeFile(&analysis.File{EACL: e, Known: known}) {
			t.Errorf("%s", d)
		}
	}
}

// TestShippedCompositionsAnalyzeClean composes each paper scenario's
// system + local pair and checks the composition rules stay silent.
func TestShippedCompositionsAnalyzeClean(t *testing.T) {
	a := analysis.New()
	for _, scenario := range []string{"7.1", "7.2"} {
		sys, err := eacl.ParseFile("policies/paper/system-" + scenario + ".eacl")
		if err != nil {
			t.Fatal(err)
		}
		loc, err := eacl.ParseFile("policies/paper/local-" + scenario + ".eacl")
		if err != nil {
			t.Fatal(err)
		}
		c := analysis.NewComposition([]*eacl.EACL{sys}, []*eacl.EACL{loc})
		for _, d := range a.AnalyzeComposition(c) {
			t.Errorf("scenario %s: %s", scenario, d)
		}
	}
}

// examplePolicyRE matches the inline policy constants every example
// declares (const xxxPolicy = ` ... ` and quickstart's const policy).
var examplePolicyRE = regexp.MustCompile("(?ms)^const (\\w*[pP]olicy) = `(.*?)`")

// TestExamplePoliciesAnalyzeClean extracts the inline EACL text from
// every example program and runs the analyzer over it, so the runnable
// documentation cannot accumulate policy bugs.
func TestExamplePoliciesAnalyzeClean(t *testing.T) {
	dirs, err := filepath.Glob("examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	a := analysis.New()
	total := 0
	for _, mainPath := range dirs {
		src, err := os.ReadFile(mainPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range examplePolicyRE.FindAllStringSubmatch(string(src), -1) {
			name, text := m[1], m[2]
			total++
			e, err := eacl.ParseString(text)
			if err != nil {
				t.Errorf("%s %s: %v", mainPath, name, err)
				continue
			}
			e.Source = mainPath + ":" + name
			for _, d := range a.AnalyzeFile(&analysis.File{EACL: e, Known: analysis.BuiltinKnown()}) {
				t.Errorf("%s", d)
			}
		}
	}
	if total < 7 {
		t.Errorf("extracted %d inline policies, want at least one per example", total)
	}
}

// TestSeededFixturesTriggerTheirRule is the golden contract for the
// seeded bad policies under testdata/eaclint: each fixture triggers
// exactly the documented codes and nothing else.
func TestSeededFixturesTriggerTheirRule(t *testing.T) {
	a := analysis.New()
	tests := []struct {
		file  string
		codes []string
	}{
		{"bad-regex.eacl", []string{"E001"}},
		{"bad-cidr.eacl", []string{"E002"}},
		{"empty-window.eacl", []string{"E004"}},
		{"threat-contradiction.eacl", []string{"E012"}},
		{"conflict.eacl", []string{"W004"}},
		// The prover independently confirms the flow rules' shadowing
		// findings: W003/W007 are pattern claims, W022 is a model-checked
		// "no request reaches this entry" over the full world grid.
		{"unreachable.eacl", []string{"W003", "W022"}},
		{"subsumed.eacl", []string{"W007", "W022"}},
		// Prover-only: the first two entries partition the threat scale,
		// so entry 3 is dead in a way no pattern rule can establish.
		{"prover-dead.eacl", []string{"W022"}},
	}
	for _, tt := range tests {
		t.Run(tt.file, func(t *testing.T) {
			e, err := eacl.ParseFile(filepath.Join("testdata/eaclint", tt.file))
			if err != nil {
				t.Fatal(err)
			}
			ds := a.AnalyzeFile(&analysis.File{EACL: e, Known: analysis.BuiltinKnown()})
			got := diagCodes(ds)
			if len(got) != len(tt.codes) {
				t.Fatalf("codes = %v, want %v (%v)", got, tt.codes, ds)
			}
			for i := range got {
				if got[i] != tt.codes[i] {
					t.Fatalf("codes = %v, want %v", got, tt.codes)
				}
			}
		})
	}
}

// TestSeededCompositionFixtures checks the composed fixture pairs
// trigger their documented composition codes.
func TestSeededCompositionFixtures(t *testing.T) {
	a := analysis.New()
	tests := []struct {
		prefix string
		code   string
	}{
		{"stop", "W020"},
		{"expand", "W021"},
		{"narrow", "E020"},
		// Prover-backed: an intranet allow scanned before the
		// authentication guard hands admin rights to anonymous clients.
		{"anon", "W023"},
	}
	for _, tt := range tests {
		t.Run(tt.prefix, func(t *testing.T) {
			sys, err := eacl.ParseFile(filepath.Join("testdata/eaclint", tt.prefix+"-system.eacl"))
			if err != nil {
				t.Fatal(err)
			}
			loc, err := eacl.ParseFile(filepath.Join("testdata/eaclint", tt.prefix+"-local.eacl"))
			if err != nil {
				t.Fatal(err)
			}
			c := analysis.NewComposition([]*eacl.EACL{sys}, []*eacl.EACL{loc})
			got := diagCodes(a.AnalyzeComposition(c))
			if len(got) != 1 || got[0] != tt.code {
				t.Errorf("codes = %v, want [%s]", got, tt.code)
			}
		})
	}
}
