// Torn-tail recovery corpus: each file under testdata/statestore/ is a
// WAL left behind by some crash or disk fault — clean, empty, torn mid
// header, torn mid payload, bit-flipped, garbage-tailed, or corrupted
// in the middle. The store must always open, replay exactly the
// longest valid prefix the manifest promises, quarantine the rest, and
// accept new appends afterwards.
package gaaapi

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gaaapi/internal/statestore"
)

type corpusEntry struct {
	File    string `json:"file"`
	Records int    `json:"records"`
	Reason  string `json:"reason"`
}

func TestRecoveryCorpus(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "statestore", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []corpusEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus manifest")
	}
	for _, e := range entries {
		t.Run(e.File, func(t *testing.T) {
			wal, err := os.ReadFile(filepath.Join("testdata", "statestore", e.File))
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "wal.log"), wal, 0o644); err != nil {
				t.Fatal(err)
			}

			s, err := statestore.Open(dir, statestore.Options{Fsync: statestore.FsyncAlways})
			if err != nil {
				t.Fatalf("corrupt WAL refused to open: %v", err)
			}
			defer s.Close()

			rec := s.Recovery()
			if got := len(s.Tail()); got != e.Records {
				t.Fatalf("replayed %d records, want %d (report: %+v)", got, e.Records, rec)
			}
			if e.Reason == "" {
				if rec.DroppedBytes != 0 {
					t.Fatalf("clean WAL dropped %d bytes: %+v", rec.DroppedBytes, rec)
				}
			} else {
				if rec.DroppedBytes == 0 {
					t.Fatalf("corruption not detected: %+v", rec)
				}
				if !strings.Contains(rec.DroppedReason, e.Reason) {
					t.Fatalf("reason %q, want substring %q", rec.DroppedReason, e.Reason)
				}
				if rec.QuarantineFile == "" {
					t.Fatal("dropped bytes not quarantined")
				}
				if _, err := os.Stat(rec.QuarantineFile); err != nil {
					t.Fatalf("quarantine file missing: %v", err)
				}
			}

			// The store must be writable after any recovery, and a second
			// open must see the replayed prefix plus the new record with
			// nothing further dropped.
			if err := s.Append("block", map[string]string{"addr": "10.1.1.1"}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			s.Close()
			re, err := statestore.Open(dir, statestore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := re.Recovery(); got.DroppedBytes != 0 || len(re.Tail()) != e.Records+1 {
				t.Fatalf("second open: %+v with %d records, want clean %d", got, len(re.Tail()), e.Records+1)
			}
		})
	}
}
