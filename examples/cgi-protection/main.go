// CGI protection: the paper's section 7.2 deployment end-to-end — the
// vulnerable phf script behind the GAA guard. The example shows the
// exploit leaking without protection, then being blocked with the
// policy installed: denial before execution, administrator
// notification, blacklist growth, and an unknown-signature follow-up
// from the same host blocked by the system-wide BadGuys policy.
package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strings"

	"gaaapi/internal/gaahttp"
	"gaaapi/internal/httpd"
)

const systemPolicy = `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`

const localPolicy = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`

const exploit = "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cgi-protection:", err)
		os.Exit(1)
	}
}

func run() error {
	get := func(s *httpd.Server, target, ip string) (int, string) {
		req := httptest.NewRequest("GET", target, nil)
		req.RemoteAddr = ip + ":40000"
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	// Unprotected server: the classic phf exploit leaks the password
	// file.
	naked := httpd.NewServer(httpd.Config{Scripts: httpd.NewDemoRegistry()})
	code, body := get(naked, exploit, "10.0.0.66")
	fmt.Printf("unprotected server: %d, body leaks /etc/passwd: %v\n\n",
		code, strings.Contains(body, "root:x:0:0"))

	// GAA-protected server.
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  systemPolicy,
		LocalPolicies: map[string]string{"*": localPolicy},
		DocRoot:       map[string]string{"/index.html": "home"},
	})
	if err != nil {
		return err
	}
	defer st.Close()

	code, body = get(st.Server, exploit, "10.0.0.66")
	fmt.Printf("protected server:   %d, body leaks /etc/passwd: %v\n",
		code, strings.Contains(body, "root:x:0:0"))

	for _, m := range st.Mailbox.Messages() {
		fmt.Printf("notification to %s: %s\n", m.To, m.Subject)
	}
	fmt.Printf("BadGuys blacklist: %v\n\n", st.Groups.Members("BadGuys"))

	// The same attacker probes with a signature we do NOT know.
	code, _ = get(st.Server, "/cgi-bin/search?q=undisclosed-0day", "10.0.0.66")
	fmt.Printf("unknown-signature follow-up from 10.0.0.66: %d (blocked by blacklist)\n", code)

	// A clean client is unaffected.
	code, _ = get(st.Server, "/cgi-bin/search?q=weather", "10.0.0.9")
	fmt.Printf("clean client request:                       %d (served)\n", code)
	return nil
}
