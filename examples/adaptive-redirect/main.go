// Adaptive redirect: the paper's section 6 MAYBE translation. A
// pre_cond_redirect is deliberately returned unevaluated carrying a
// replica URL; the web server detects the single unevaluated redirect
// condition in a MAYBE answer and issues HTTP_MOVED — per-client
// redirection policy without touching the server code.
package main

import (
	"fmt"
	"net/http/httptest"
	"os"

	"gaaapi/internal/gaahttp"
)

// Clients in 10.0.0.0/8 are steered to the west-coast replica; clients
// in 192.168.0.0/16 to the east-coast one; everyone else is served
// locally (the policy falls through to DECLINED and the native default
// allows).
const redirectPolicy = `
pos_access_right apache *
pre_cond_location local 10.0.0.0/8
pre_cond_redirect local http://replica-west.example.org/

pos_access_right apache *
pre_cond_location local 192.168.0.0/16
pre_cond_redirect local http://replica-east.example.org/
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive-redirect:", err)
		os.Exit(1)
	}
}

func run() error {
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		LocalPolicies: map[string]string{"/mirror/*": redirectPolicy},
		DocRoot:       map[string]string{"/mirror/dataset.html": "served locally"},
	})
	if err != nil {
		return err
	}
	defer st.Close()

	for _, ip := range []string{"10.4.5.6", "192.168.7.8", "203.0.113.9"} {
		req := httptest.NewRequest("GET", "/mirror/dataset.html", nil)
		req.RemoteAddr = ip + ":40000"
		rec := httptest.NewRecorder()
		st.Server.ServeHTTP(rec, req)
		if loc := rec.Header().Get("Location"); loc != "" {
			fmt.Printf("client %-12s -> %d redirect to %s\n", ip, rec.Code, loc)
		} else {
			fmt.Printf("client %-12s -> %d served locally (%s)\n", ip, rec.Code, rec.Body.String())
		}
	}
	return nil
}
