// Lockdown: the paper's section 7.1 deployment end-to-end. A protected
// web server runs under the mandatory "deny all at high threat"
// system-wide policy and the "require authentication above low threat"
// local policy; the example walks the threat level from low to high
// and shows the same request changing outcome: served, challenged,
// denied.
package main

import (
	"fmt"
	"net/http/httptest"
	"os"

	"gaaapi/internal/gaahttp"
	"gaaapi/internal/ids"
)

const systemPolicy = `
eacl_mode narrow
neg_access_right * *
pre_cond_system_threat_level local =high
`

const localPolicy = `
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid_USER apache *
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lockdown:", err)
		os.Exit(1)
	}
}

func run() error {
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  systemPolicy,
		LocalPolicies: map[string]string{"*": localPolicy},
		DocRoot: map[string]string{
			"/index.html": "<html>public page</html>",
		},
		Users: map[string]string{"alice": "wonderland"},
	})
	if err != nil {
		return err
	}
	defer st.Close()

	serve := func(user, pass string) (int, string) {
		req := httptest.NewRequest("GET", "/index.html", nil)
		req.RemoteAddr = "10.0.1.5:40000"
		if user != "" {
			req.SetBasicAuth(user, pass)
		}
		rec := httptest.NewRecorder()
		st.Server.ServeHTTP(rec, req)
		return rec.Code, rec.Header().Get("WWW-Authenticate")
	}

	for _, level := range []ids.Level{ids.Low, ids.Medium, ids.High} {
		st.Threat.Set(level)
		fmt.Printf("threat level %s:\n", level)

		code, challenge := serve("", "")
		fmt.Printf("  anonymous GET /index.html      -> %d", code)
		if challenge != "" {
			fmt.Printf("  (challenge: %s)", challenge)
		}
		fmt.Println()

		code, _ = serve("alice", "wonderland")
		fmt.Printf("  authenticated GET /index.html  -> %d\n", code)
	}

	fmt.Println()
	fmt.Println("low:    anonymous is served (GAA declines to the open native policy)")
	fmt.Println("medium: anonymous is challenged (401); authentication unlocks access")
	fmt.Println("high:   everyone is denied (403) by the mandatory system-wide policy")
	return nil
}
