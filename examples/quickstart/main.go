// Quickstart: define an EACL policy, initialize the GAA-API, and run
// the three enforcement phases for a request — the minimal use of the
// library, no web server involved.
package main

import (
	"context"
	"fmt"
	"os"

	"gaaapi/internal/actions"
	"gaaapi/internal/audit"
	"gaaapi/internal/conditions"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

const policy = `
# Deny requests matching a known attack signature, and record the
# attacker in the Suspects group.
neg_access_right myapp *
pre_cond_regex gnu *DROP*TABLE* *../../*
rr_cond_update_log local on:failure/Suspects/info:IP

# Everything else is allowed, with an audit trail and a CPU quota
# enforced while the operation runs.
pos_access_right myapp *
rr_cond_audit local on:any/info:request
mid_cond_quota local cpu_ms<=100
post_cond_audit local on:any/info:finished
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Initialize the GAA-API and register condition evaluators
	//    (gaa_initialize in the paper).
	api := gaa.New()
	suspects := groups.NewStore()
	ring := audit.NewRing(16)
	conditions.Register(api, conditions.Deps{
		Threat: ids.NewManager(ids.Low),
		Groups: suspects,
	})
	actions.Register(api, actions.Deps{Groups: suspects, Audit: ring})

	// 2. Retrieve the policy protecting the object
	//    (gaa_get_object_policy_info).
	source := gaa.NewMemorySource()
	if err := source.AddPolicy("*", policy); err != nil {
		return err
	}
	obj, err := api.GetObjectPolicyInfo("/reports/q2.html", nil, []gaa.PolicySource{source})
	if err != nil {
		return err
	}

	ctx := context.Background()
	check := func(name, uri, ip string) error {
		// 3. Build the request: the requested right plus context
		//    parameters.
		req := gaa.NewRequest("myapp", "GET /reports/q2.html",
			gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: uri},
			gaa.Param{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: ip},
		)

		// 4. Phase 1: authorization (gaa_check_authorization).
		ans, err := api.CheckAuthorization(ctx, obj, req)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s decision=%-5s", name, ans.Decision)
		if ans.Decision != gaa.Yes {
			fmt.Printf("  suspects=%v\n", suspects.Members("Suspects"))
			return nil
		}

		// 5. Phase 2: execution control (mid-conditions against a
		//    usage snapshot — here the operation used 12 ms of CPU).
		dec, _ := api.ExecutionControl(ctx, ans, req,
			gaa.Param{Type: gaa.ParamCPUMillis, Authority: gaa.AuthorityAny, Value: "12"})
		fmt.Printf("  mid=%-5s", dec)

		// 6. Phase 3: post-execution actions.
		post, _ := api.PostExecutionActions(ctx, ans, req, gaa.Yes)
		fmt.Printf("  post=%s\n", post)
		return nil
	}

	if err := check("legitimate", "GET /reports/q2.html", "10.0.0.8"); err != nil {
		return err
	}
	if err := check("injection", "GET /reports/q2.html?id=1;DROP TABLE users", "10.0.0.66"); err != nil {
		return err
	}

	fmt.Printf("audit records: %d\n", ring.Len())
	return nil
}
