// Applet sandbox: the paper's section 9 future work — "We will explore
// the utility of mid-conditions for protection from untrusted
// downloaded code, such as Java applets ... The mid-conditions will
// control actions of the downloaded content on a client machine
// throughout the execution of the content."
//
// A simulated plugin host authorizes downloaded code by origin, then
// runs it under execution control: mid-condition quotas bound CPU,
// memory and output for the whole run, and a violation kills the
// content in real time.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/execctl"
	"gaaapi/internal/gaa"
)

const sandboxPolicy = `
# Content from the trusted origin runs with generous limits.
pos_access_right plugin run
pre_cond_accessid_HOST local *.trusted.example.org
mid_cond_quota local cpu_ms<=500
mid_cond_quota local mem_bytes<=67108864

# Anything else runs tightly sandboxed.
pos_access_right plugin run
mid_cond_quota local cpu_ms<=20
mid_cond_quota local mem_bytes<=1048576
mid_cond_quota local output_bytes<=4096
`

// applet simulates downloaded content: a work function that credits
// its resource consumption and honours cancellation.
type applet struct {
	name   string
	origin string
	work   func(ctx context.Context, u *execctl.Usage) error
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "applet-sandbox:", err)
		os.Exit(1)
	}
}

func run() error {
	api := gaa.New()
	conditions.Register(api, conditions.Deps{})
	e, err := eacl.ParseString(sandboxPolicy)
	if err != nil {
		return err
	}
	policy := gaa.NewPolicy("plugin", nil, []*eacl.EACL{e})

	applets := []applet{
		{
			name:   "chart-widget (well behaved)",
			origin: "cdn.trusted.example.org",
			work: func(_ context.Context, u *execctl.Usage) error {
				u.AddCPU(40 * time.Millisecond)
				u.AddMem(4 << 20)
				return nil
			},
		},
		{
			name:   "cryptominer (CPU runaway)",
			origin: "free-games.example.net",
			work: func(ctx context.Context, u *execctl.Usage) error {
				for {
					select {
					case <-ctx.Done():
						return ctx.Err()
					case <-time.After(200 * time.Microsecond):
						u.AddCPU(5 * time.Millisecond)
					}
				}
			},
		},
		{
			name:   "memory bomb",
			origin: "free-games.example.net",
			work: func(ctx context.Context, u *execctl.Usage) error {
				for i := 0; i < 64; i++ {
					select {
					case <-ctx.Done():
						return ctx.Err()
					case <-time.After(200 * time.Microsecond):
						u.AddMem(1 << 20)
					}
				}
				return nil
			},
		},
	}

	for _, app := range applets {
		req := &gaa.Request{
			Rights: []eacl.Right{{Sign: eacl.Pos, DefAuth: "plugin", Value: "run"}},
			Params: gaa.ParamList{
				{Type: gaa.ParamClientHost, Authority: gaa.AuthorityAny, Value: app.origin},
			},
		}
		ans, err := api.CheckAuthorization(context.Background(), policy, req)
		if err != nil {
			return err
		}
		if ans.Decision != gaa.Yes {
			fmt.Printf("%-32s origin=%-26s -> load refused\n", app.name, app.origin)
			continue
		}

		// Execution control: poll the policy's mid-conditions while
		// the content runs; a violation cancels it.
		check := func(snap execctl.Snapshot) gaa.Decision {
			dec, _ := api.ExecutionControl(context.Background(), ans, req, snap.Params()...)
			return dec
		}
		usage := execctl.NewUsage(nil)
		res := execctl.Run(context.Background(), usage, app.work, check, 500*time.Microsecond)

		switch {
		case res.Violated:
			fmt.Printf("%-32s origin=%-26s -> KILLED after cpu=%dms mem=%dKiB (quota violation)\n",
				app.name, app.origin, res.Final.CPUMillis, res.Final.MemBytes/1024)
		case res.Err != nil && !errors.Is(res.Err, context.Canceled):
			fmt.Printf("%-32s origin=%-26s -> crashed: %v\n", app.name, app.origin, res.Err)
		default:
			fmt.Printf("%-32s origin=%-26s -> completed (cpu=%dms mem=%dKiB)\n",
				app.name, app.origin, res.Final.CPUMillis, res.Final.MemBytes/1024)
		}
	}
	return nil
}
