// sshd lockout: the GAA-API protecting a different application with no
// changes to the API code — the paper's genericity claim ("the API has
// been integrated with several applications, including Apache, sshd
// and FreeS/WAN IPsec"). A simulated sshd asks the GAA-API to
// authorize logins; the policy counts failed attempts per client
// (rr_cond_count) and locks the client out once a threshold is crossed
// within the window (pre_cond_threshold), then escalates the system
// threat level.
package main

import (
	"context"
	"fmt"
	"os"

	"gaaapi/internal/actions"
	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

const sshdPolicy = `
# Entry 1: clients with 3+ failed logins in 60s are locked out.
neg_access_right sshd login
pre_cond_threshold local counter=failed_login key=client_ip max=3 window=60s
rr_cond_set_threat_level local on:failure/medium

# Entry 2: authenticated users may log in; every failure is counted.
pos_access_right sshd login
pre_cond_accessid_USER sshd *
rr_cond_count local on:failure/failed_login
`

// sshd simulates the modified server: it verifies credentials, then
// consults the GAA-API exactly like the Apache integration does.
type sshd struct {
	api      *gaa.API
	policy   *gaa.Policy
	accounts map[string]string
}

func (s *sshd) login(user, pass, clientIP string) (bool, error) {
	params := gaa.ParamList{
		{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: clientIP},
	}
	// Authentication happens in the application; the verified identity
	// becomes the accessid_USER parameter.
	if stored, ok := s.accounts[user]; ok && stored == pass {
		params = append(params, gaa.Param{
			Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: user,
		})
	}
	req := &gaa.Request{
		Rights: []eacl.Right{{Sign: eacl.Pos, DefAuth: "sshd", Value: "login"}},
		Params: params,
	}
	ans, err := s.api.CheckAuthorization(context.Background(), s.policy, req)
	if err != nil {
		return false, err
	}
	return ans.Decision == gaa.Yes, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sshd-lockout:", err)
		os.Exit(1)
	}
}

func run() error {
	threat := ids.NewManager(ids.Low)
	counters := conditions.NewCounters(nil)
	api := gaa.New()
	conditions.Register(api, conditions.Deps{Threat: threat, Counters: counters})
	actions.Register(api, actions.Deps{Threat: threat, Counters: counters, Groups: groups.NewStore()})

	e, err := eacl.ParseString(sshdPolicy)
	if err != nil {
		return err
	}
	daemon := &sshd{
		api:      api,
		policy:   gaa.NewPolicy("login", nil, []*eacl.EACL{e}),
		accounts: map[string]string{"root": "correct-horse"},
	}

	attempt := func(user, pass, ip string) error {
		ok, err := daemon.login(user, pass, ip)
		if err != nil {
			return err
		}
		verdict := "DENIED"
		if ok {
			verdict = "granted"
		}
		fmt.Printf("login %-6s from %-10s password=%-14s -> %s (threat %s)\n",
			user, ip, pass, verdict, threat.Level())
		return nil
	}

	// An attacker guesses passwords.
	for _, guess := range []string{"123456", "password", "letmein"} {
		if err := attempt("root", guess, "203.0.113.7"); err != nil {
			return err
		}
	}
	// The fourth attempt has the RIGHT password — but the client is
	// locked out and the threat level has risen.
	if err := attempt("root", "correct-horse", "203.0.113.7"); err != nil {
		return err
	}
	// A different client with valid credentials is unaffected.
	return attempt("root", "correct-horse", "10.0.0.2")
}
