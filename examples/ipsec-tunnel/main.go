// IPsec tunnel authorization: the third application the paper lists
// ("We have integrated the GAA-API with Apache web server, sshd and
// FreeS/WAN IPsec for Linux"). A simulated IKE daemon asks the GAA-API
// whether a tunnel may be established: peers inside the corporate
// ranges get tunnels any time; external partners only during business
// hours; and nothing is negotiated while the system is under attack.
// Established tunnels run under a mid-condition byte quota checked at
// rekey time.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/ids"
)

const tunnelPolicy = `
# No tunnels while under attack (mandatory in a real deployment).
neg_access_right ipsec *
pre_cond_system_threat_level local =high

# Corporate ranges: tunnels around the clock, 1 GiB between rekeys.
pos_access_right ipsec tunnel
pre_cond_location local 10.0.0.0/8 192.168.0.0/16
mid_cond_quota local output_bytes<=1073741824

# External partners: business hours only.
pos_access_right ipsec tunnel
pre_cond_location local 203.0.113.0/24
pre_cond_time_window local 08:00-18:00 Mon-Fri
mid_cond_quota local output_bytes<=1073741824
`

// ike is the simulated key-exchange daemon: the application-side
// integration mirrors the Apache glue — extract parameters, request a
// right, act on the tri-state answer.
type ike struct {
	api    *gaa.API
	policy *gaa.Policy
}

func (d *ike) negotiate(peer string, at time.Time) (*gaa.Answer, error) {
	req := &gaa.Request{
		Rights: []eacl.Right{{Sign: eacl.Pos, DefAuth: "ipsec", Value: "tunnel"}},
		Params: gaa.ParamList{
			{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: peer},
		},
		Time: at,
	}
	return d.api.CheckAuthorization(context.Background(), d.policy, req)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ipsec-tunnel:", err)
		os.Exit(1)
	}
}

func run() error {
	threat := ids.NewManager(ids.Low)
	api := gaa.New()
	conditions.Register(api, conditions.Deps{Threat: threat})

	e, err := eacl.ParseString(tunnelPolicy)
	if err != nil {
		return err
	}
	daemon := &ike{api: api, policy: gaa.NewPolicy("tunnel", nil, []*eacl.EACL{e})}

	businessHours := time.Date(2003, 5, 19, 10, 0, 0, 0, time.UTC) // Monday 10:00
	nighttime := time.Date(2003, 5, 19, 23, 0, 0, 0, time.UTC)

	show := func(label, peer string, at time.Time) error {
		ans, err := daemon.negotiate(peer, at)
		if err != nil {
			return err
		}
		verdict := map[gaa.Decision]string{
			gaa.Yes:   "ESTABLISH",
			gaa.No:    "reject",
			gaa.Maybe: "defer (no applicable policy)",
		}[ans.Decision]
		fmt.Printf("%-34s peer=%-14s -> %s\n", label, peer, verdict)
		return nil
	}

	fmt.Printf("threat level %s:\n", threat.Level())
	if err := show("corporate peer, night", "10.1.2.3", nighttime); err != nil {
		return err
	}
	if err := show("partner, business hours", "203.0.113.40", businessHours); err != nil {
		return err
	}
	if err := show("partner, night", "203.0.113.40", nighttime); err != nil {
		return err
	}
	if err := show("unknown network", "8.8.8.8", businessHours); err != nil {
		return err
	}

	// Rekey-time execution control: the byte quota is a mid-condition.
	ans, err := daemon.negotiate("10.1.2.3", businessHours)
	if err != nil {
		return err
	}
	usage := func(bytes string) gaa.Param {
		return gaa.Param{Type: gaa.ParamOutputBytes, Authority: gaa.AuthorityAny, Value: bytes}
	}
	req := gaa.NewRequest("ipsec", "tunnel")
	ok, _ := api.ExecutionControl(context.Background(), ans, req, usage("52428800"))
	over, _ := api.ExecutionControl(context.Background(), ans, req, usage("2147483648"))
	fmt.Printf("\nrekey check at 50 MiB transferred:  %s (tunnel continues)\n", ok)
	fmt.Printf("rekey check at 2 GiB transferred:   %s (tunnel torn down, renegotiate)\n", over)

	// Under attack, even corporate peers are refused.
	threat.Set(ids.High)
	fmt.Printf("\nthreat level %s:\n", threat.Level())
	return show("corporate peer, business hours", "10.1.2.3", businessHours)
}
