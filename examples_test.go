package gaaapi

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example end-to-end (`go run`) and
// checks its headline output, so the runnable documentation cannot
// rot. Examples are deterministic and terminate on their own.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn the go tool; skipped in -short mode")
	}
	tests := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"legitimate   decision=yes", "injection    decision=no", "suspects=[10.0.0.66]"}},
		{"lockdown", []string{"threat level low:", "-> 401", "-> 403"}},
		{"cgi-protection", []string{"unprotected server: 200, body leaks /etc/passwd: true",
			"protected server:   403, body leaks /etc/passwd: false",
			"BadGuys blacklist: [10.0.0.66]"}},
		{"adaptive-redirect", []string{"302 redirect to http://replica-west.example.org/", "200 served locally"}},
		{"sshd-lockout", []string{"password=correct-horse  -> DENIED (threat medium)", "-> granted"}},
		{"ipsec-tunnel", []string{"-> ESTABLISH", "-> reject", "tunnel torn down"}},
		{"applet-sandbox", []string{"-> completed", "-> KILLED"}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", "./examples/"+tt.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", tt.dir, err, out)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
