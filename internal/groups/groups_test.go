package groups

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestAddContainsRemove(t *testing.T) {
	s := NewStore()
	if !s.Add("BadGuys", "10.0.0.66") {
		t.Error("first Add should report new membership")
	}
	if s.Add("BadGuys", "10.0.0.66") {
		t.Error("second Add should report existing membership")
	}
	if !s.Contains("BadGuys", "10.0.0.66") {
		t.Error("Contains after Add = false")
	}
	if s.Contains("BadGuys", "10.0.0.1") {
		t.Error("Contains for non-member = true")
	}
	if s.Contains("GoodGuys", "10.0.0.66") {
		t.Error("Contains for unknown group = true")
	}
	if !s.Remove("BadGuys", "10.0.0.66") {
		t.Error("Remove of member should report true")
	}
	if s.Remove("BadGuys", "10.0.0.66") {
		t.Error("Remove of non-member should report false")
	}
	if s.Remove("Nope", "x") {
		t.Error("Remove from unknown group should report false")
	}
}

func TestMembersSortedAndGroups(t *testing.T) {
	s := NewStore()
	s.Add("g", "charlie")
	s.Add("g", "alice")
	s.Add("g", "bob")
	s.Add("a", "x")
	if got, want := s.Members("g"), []string{"alice", "bob", "charlie"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Members = %v, want %v", got, want)
	}
	if got, want := s.Groups(), []string{"a", "g"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Groups = %v, want %v", got, want)
	}
	if s.Len("g") != 3 || s.Len("missing") != 0 {
		t.Error("Len mismatch")
	}
	if got := s.Members("missing"); len(got) != 0 {
		t.Errorf("Members(missing) = %v", got)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add("BadGuys", "10.0.0.66")
	s.Add("BadGuys", "10.0.0.67")
	s.Add("staff", "alice")

	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored := NewStore()
	if err := restored.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(restored.Members("BadGuys"), s.Members("BadGuys")) {
		t.Errorf("round trip BadGuys = %v", restored.Members("BadGuys"))
	}
	if !restored.Contains("staff", "alice") {
		t.Error("round trip lost staff member")
	}
}

func TestLoadFormat(t *testing.T) {
	s := NewStore()
	err := s.Load(strings.NewReader(`
# comment
staff: alice bob

empty-group:
`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !s.Contains("staff", "bob") {
		t.Error("missing member from load")
	}
	if err := s.Load(strings.NewReader("not a group line")); err == nil {
		t.Error("want error for malformed line")
	}
	if err := s.Load(strings.NewReader(": headless")); err == nil {
		t.Error("want error for empty group name")
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "groups.txt")
	s := NewStore()
	s.Add("BadGuys", "192.168.1.5")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded := NewStore()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !loaded.Contains("BadGuys", "192.168.1.5") {
		t.Error("persisted member lost")
	}
	// Missing file is not an error.
	fresh := NewStore()
	if err := fresh.LoadFile(filepath.Join(t.TempDir(), "absent")); err != nil {
		t.Errorf("LoadFile(absent) = %v, want nil", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			member := string(rune('a' + i%8))
			s.Add("g", member)
			s.Contains("g", member)
			s.Members("g")
		}(i)
	}
	wg.Wait()
	if s.Len("g") != 8 {
		t.Errorf("Len = %d, want 8", s.Len("g"))
	}
}

func TestApplyEventMergesWithoutJournal(t *testing.T) {
	s := NewStore()
	var hook int
	s.SetJournal(func(Event) { hook++ })

	if !s.ApplyEvent(Event{Group: "BadGuys", Member: "10.0.0.1"}) {
		t.Fatal("fresh membership not applied")
	}
	if s.ApplyEvent(Event{Group: "BadGuys", Member: "10.0.0.1"}) {
		t.Fatal("duplicate add reported change")
	}
	if !s.Contains("BadGuys", "10.0.0.1") {
		t.Fatal("membership missing")
	}
	if !s.ApplyEvent(Event{Group: "BadGuys", Member: "10.0.0.1", Remove: true}) {
		t.Fatal("remove not applied")
	}
	if s.ApplyEvent(Event{Group: "BadGuys", Member: "10.0.0.1", Remove: true}) {
		t.Fatal("remove of absent member reported change")
	}
	if s.ApplyEvent(Event{Group: "nope", Member: "x", Remove: true}) {
		t.Fatal("remove from unknown group reported change")
	}
	if hook != 0 {
		t.Fatalf("ApplyEvent invoked the journal %d times; replication would loop", hook)
	}
}
