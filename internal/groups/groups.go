// Package groups implements the dynamic group store behind conditions
// like pre_cond_accessid_GROUP and actions like rr_cond_update_log in
// the paper's section 7.2: the "BadGuys" blacklist that grows as attack
// signatures match and that many hosts can share via a system-wide
// policy.
package groups

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Store is a concurrent-safe named-group membership store.
type Store struct {
	mu      sync.RWMutex
	groups  map[string]map[string]struct{}
	journal func(Event)
}

// Event describes one membership mutation for persistence.
type Event struct {
	// Group and Member identify the membership.
	Group  string `json:"group"`
	Member string `json:"member"`
	// Remove marks a removal instead of an addition.
	Remove bool `json:"remove,omitempty"`
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{groups: make(map[string]map[string]struct{})}
}

// SetJournal installs a hook receiving every effective mutation
// (no-op adds and removes are not journaled), for persistence.
func (s *Store) SetJournal(fn func(Event)) {
	s.mu.Lock()
	s.journal = fn
	s.mu.Unlock()
}

// Add puts member into group, creating the group as needed, and
// reports whether the membership is new.
func (s *Store) Add(group, member string) bool {
	s.mu.Lock()
	g, ok := s.groups[group]
	if !ok {
		g = make(map[string]struct{})
		s.groups[group] = g
	}
	if _, exists := g[member]; exists {
		s.mu.Unlock()
		return false
	}
	g[member] = struct{}{}
	journal := s.journal
	s.mu.Unlock()
	if journal != nil {
		journal(Event{Group: group, Member: member})
	}
	return true
}

// Remove deletes member from group and reports whether it was present.
func (s *Store) Remove(group, member string) bool {
	s.mu.Lock()
	g, ok := s.groups[group]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if _, exists := g[member]; !exists {
		s.mu.Unlock()
		return false
	}
	delete(g, member)
	journal := s.journal
	s.mu.Unlock()
	if journal != nil {
		journal(Event{Group: group, Member: member, Remove: true})
	}
	return true
}

// ApplyEvent applies a replicated membership mutation without
// journaling and reports whether local state changed. The caller
// (statestore.Adaptive.ApplyRemote) journals changed state itself —
// journaling here would echo the record back into the replication
// mirror and loop it around the cluster.
func (s *Store) ApplyEvent(ev Event) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[ev.Group]
	if ev.Remove {
		if !ok {
			return false
		}
		if _, exists := g[ev.Member]; !exists {
			return false
		}
		delete(g, ev.Member)
		return true
	}
	if !ok {
		g = make(map[string]struct{})
		s.groups[ev.Group] = g
	}
	if _, exists := g[ev.Member]; exists {
		return false
	}
	g[ev.Member] = struct{}{}
	return true
}

// Contains reports whether member belongs to group.
func (s *Store) Contains(group, member string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.groups[group][member]
	return ok
}

// Members returns the sorted members of group (empty for an unknown
// group).
func (s *Store) Members(group string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.groups[group]
	out := make([]string, 0, len(g))
	for m := range g {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Groups returns the sorted group names.
func (s *Store) Groups() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.groups))
	for g := range s.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of members of group.
func (s *Store) Len(group string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.groups[group])
}

// Load reads group definitions in htgroup format — "group: member
// member ..." per line, '#' comments — replacing nothing and merging
// into the store.
func (s *Store) Load(r io.Reader) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, members, ok := strings.Cut(text, ":")
		if !ok {
			return fmt.Errorf("line %d: want \"group: members...\"", line)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("line %d: empty group name", line)
		}
		for _, m := range strings.Fields(members) {
			s.Add(name, m)
		}
	}
	return sc.Err()
}

// Save writes every group in htgroup format, sorted for determinism.
func (s *Store) Save(w io.Writer) error {
	for _, g := range s.Groups() {
		if _, err := fmt.Fprintf(w, "%s: %s\n", g, strings.Join(s.Members(g), " ")); err != nil {
			return err
		}
	}
	return nil
}

// LoadFile merges the groups stored at path; a missing file is not an
// error (the blacklist starts empty).
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

// SaveFile atomically persists the store to path.
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
