package notify

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gaaapi/internal/retry"
)

// ErrUnavailable is returned by Reliable.Notify while the circuit
// breaker is open: the notifier is presumed dead and the hot path does
// not pay for another delivery attempt. Policy semantics decide what a
// failed mandatory notification means (rr_cond_notify on:failure fails
// the authorization status, paper section 6).
var ErrUnavailable = errors.New("notify: notifier unavailable (circuit open)")

// Reliable wraps a Notifier with bounded retry-with-backoff, panic
// recovery, and a consecutive-failure circuit breaker, so a flaky
// transport is retried and a dead one degrades fast instead of
// stalling every request carrying a notify condition.
type Reliable struct {
	inner   Notifier
	policy  retry.Policy
	breaker *retry.Breaker

	delivered     atomic.Uint64
	failures      atomic.Uint64
	attempts      atomic.Uint64
	retries       atomic.Uint64
	shortCircuits atomic.Uint64
}

// ReliableOption configures a Reliable notifier.
type ReliableOption func(*reliableConfig)

type reliableConfig struct {
	policy    retry.Policy
	threshold int
	cooldown  time.Duration
	clock     func() time.Time
}

// WithRetryPolicy sets the retry bounds (default: 3 attempts, 5ms base
// backoff doubling to 250ms).
func WithRetryPolicy(p retry.Policy) ReliableOption {
	return func(c *reliableConfig) { c.policy = p }
}

// WithBreaker sets the breaker threshold (consecutive exhausted
// deliveries before opening) and cooldown before a half-open probe.
func WithBreaker(threshold int, cooldown time.Duration) ReliableOption {
	return func(c *reliableConfig) { c.threshold, c.cooldown = threshold, cooldown }
}

// WithReliableClock overrides the breaker time source (tests).
func WithReliableClock(clock func() time.Time) ReliableOption {
	return func(c *reliableConfig) { c.clock = clock }
}

// NewReliable wraps inner.
func NewReliable(inner Notifier, opts ...ReliableOption) *Reliable {
	cfg := reliableConfig{
		policy:    retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
		threshold: 3,
		cooldown:  time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Reliable{
		inner:   inner,
		policy:  cfg.policy,
		breaker: retry.NewBreaker(cfg.threshold, cfg.cooldown, cfg.clock),
	}
}

// Notify implements Notifier.
func (r *Reliable) Notify(ctx context.Context, m Message) error {
	if !r.breaker.Allow() {
		r.shortCircuits.Add(1)
		return ErrUnavailable
	}
	attempts, err := retry.Do(ctx, r.policy, func(ctx context.Context) error {
		return r.deliver(ctx, m)
	})
	r.attempts.Add(uint64(attempts))
	if attempts > 1 {
		r.retries.Add(uint64(attempts - 1))
	}
	r.breaker.Record(err)
	if err != nil {
		r.failures.Add(1)
		return err
	}
	r.delivered.Add(1)
	return nil
}

// deliver calls the inner notifier with panic recovery: a panicking
// transport counts as a failed delivery, not a crashed request.
func (r *Reliable) deliver(ctx context.Context, m Message) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("notify: notifier panic: %v", p)
		}
	}()
	return r.inner.Notify(ctx, m)
}

// ReliableStats is a point-in-time counter snapshot.
type ReliableStats struct {
	// Delivered / Failures count Notify calls that reached the inner
	// notifier and succeeded / exhausted their retries.
	Delivered, Failures uint64
	// Attempts counts individual delivery attempts; Retries the ones
	// beyond each call's first.
	Attempts, Retries uint64
	// ShortCircuits counts calls rejected while the breaker was open.
	ShortCircuits uint64
	// Breaker is the current breaker state; BreakerOpens how many
	// times it tripped.
	Breaker      retry.State
	BreakerOpens uint64
}

// Stats returns current counters and breaker state.
func (r *Reliable) Stats() ReliableStats {
	return ReliableStats{
		Delivered:     r.delivered.Load(),
		Failures:      r.failures.Load(),
		Attempts:      r.attempts.Load(),
		Retries:       r.retries.Load(),
		ShortCircuits: r.shortCircuits.Load(),
		Breaker:       r.breaker.State(),
		BreakerOpens:  r.breaker.Opens(),
	}
}

// BreakerState returns the current circuit state.
func (r *Reliable) BreakerState() retry.State { return r.breaker.State() }
