package notify

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestMailboxDelivers(t *testing.T) {
	m := NewMailbox(0)
	err := m.Notify(context.Background(), Message{To: "sysadmin", Subject: "alert", Tag: "cgiexploit"})
	if err != nil {
		t.Fatalf("Notify: %v", err)
	}
	msgs := m.Messages()
	if len(msgs) != 1 || msgs[0].To != "sysadmin" || msgs[0].Tag != "cgiexploit" {
		t.Errorf("Messages = %+v", msgs)
	}
	if m.Count() != 1 {
		t.Errorf("Count = %d, want 1", m.Count())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Errorf("Count after Reset = %d", m.Count())
	}
}

func TestMailboxLatency(t *testing.T) {
	m := NewMailbox(30 * time.Millisecond)
	start := time.Now()
	if err := m.Notify(context.Background(), Message{}); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("Notify returned after %v, want >= ~30ms latency", elapsed)
	}
}

func TestMailboxContextCancel(t *testing.T) {
	m := NewMailbox(10 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Notify(ctx, Message{}); err == nil {
		t.Error("want context error on cancelled delivery")
	}
	if m.Count() != 0 {
		t.Error("cancelled delivery must not record the message")
	}
}

func TestMailboxConcurrent(t *testing.T) {
	m := NewMailbox(0)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.Notify(context.Background(), Message{})
		}()
	}
	wg.Wait()
	if m.Count() != 20 {
		t.Errorf("Count = %d, want 20", m.Count())
	}
}

func TestAsyncDeliversInBackground(t *testing.T) {
	inner := NewMailbox(0)
	a := NewAsync(inner, 8)
	for i := 0; i < 5; i++ {
		if err := a.Notify(context.Background(), Message{Tag: "t"}); err != nil {
			t.Fatalf("Notify: %v", err)
		}
	}
	a.Close()
	if inner.Count() != 5 {
		t.Errorf("delivered = %d, want 5 after Close flush", inner.Count())
	}
	if a.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", a.Dropped())
	}
}

func TestAsyncDoesNotBlockCaller(t *testing.T) {
	inner := NewMailbox(50 * time.Millisecond)
	a := NewAsync(inner, 4)
	defer a.Close()
	start := time.Now()
	if err := a.Notify(context.Background(), Message{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("async Notify blocked for %v", elapsed)
	}
}

func TestAsyncDropsWhenFull(t *testing.T) {
	// An inner notifier that blocks until released.
	release := make(chan struct{})
	blocking := notifierFunc(func(context.Context, Message) error {
		<-release
		return nil
	})
	a := NewAsync(blocking, 1)
	// First message occupies the worker; second fills the queue; third
	// and later are dropped.
	for i := 0; i < 5; i++ {
		_ = a.Notify(context.Background(), Message{})
	}
	if a.Dropped() == 0 {
		t.Error("expected drops with a saturated queue")
	}
	close(release)
	a.Close()
}

func TestAsyncCloseIdempotentAndDropsAfterClose(t *testing.T) {
	inner := NewMailbox(0)
	a := NewAsync(inner, 2)
	a.Close()
	a.Close()
	if err := a.Notify(context.Background(), Message{}); err != nil {
		t.Fatalf("Notify after Close: %v", err)
	}
	if a.Dropped() != 1 {
		t.Errorf("Dropped after close = %d, want 1", a.Dropped())
	}
}

type notifierFunc func(context.Context, Message) error

func (f notifierFunc) Notify(ctx context.Context, m Message) error { return f(ctx, m) }
