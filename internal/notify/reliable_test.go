package notify

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gaaapi/internal/retry"
)

// flakyNotifier fails the first failN deliveries, then succeeds; it can
// also be told to panic instead of erroring.
type flakyNotifier struct {
	mu     sync.Mutex
	failN  int
	panics bool
	calls  int
	got    []Message
}

var errDown = errors.New("transport down")

func (f *flakyNotifier) Notify(_ context.Context, m Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failN {
		if f.panics {
			panic("transport exploded")
		}
		return errDown
	}
	f.got = append(f.got, m)
	return nil
}

func (f *flakyNotifier) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func fastPolicy(attempts int) ReliableOption {
	return WithRetryPolicy(retry.Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond})
}

func TestReliableRetriesTransientFailure(t *testing.T) {
	inner := &flakyNotifier{failN: 2}
	r := NewReliable(inner, fastPolicy(3))
	if err := r.Notify(context.Background(), Message{Tag: "t"}); err != nil {
		t.Fatalf("Notify: %v (two transient failures within three attempts)", err)
	}
	st := r.Stats()
	if st.Delivered != 1 || st.Attempts != 3 || st.Retries != 2 || st.Failures != 0 {
		t.Errorf("stats = %+v, want delivered=1 attempts=3 retries=2", st)
	}
	if inner.callCount() != 3 {
		t.Errorf("inner calls = %d, want 3", inner.callCount())
	}
}

func TestReliableRecoversPanic(t *testing.T) {
	inner := &flakyNotifier{failN: 1, panics: true}
	r := NewReliable(inner, fastPolicy(2))
	if err := r.Notify(context.Background(), Message{}); err != nil {
		t.Fatalf("Notify: %v (panic on first attempt must be retried)", err)
	}
	if st := r.Stats(); st.Delivered != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v, want one delivery after one retried panic", st)
	}
}

func TestReliableBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	inner := &flakyNotifier{failN: 1 << 30} // fails forever (until lowered)
	r := NewReliable(inner, fastPolicy(2), WithBreaker(2, time.Minute), WithReliableClock(clock))
	ctx := context.Background()

	// Two exhausted deliveries trip the breaker.
	for i := 0; i < 2; i++ {
		if err := r.Notify(ctx, Message{}); !errors.Is(err, errDown) {
			t.Fatalf("Notify %d: %v, want errDown", i, err)
		}
	}
	if got := r.BreakerState(); got != retry.Open {
		t.Fatalf("breaker = %v, want open after two exhausted deliveries", got)
	}

	// Open: the hot path is short-circuited, the dead transport not hit.
	before := inner.callCount()
	if err := r.Notify(ctx, Message{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Notify while open: %v, want ErrUnavailable", err)
	}
	if inner.callCount() != before {
		t.Error("open breaker still reached the inner notifier")
	}
	if st := r.Stats(); st.ShortCircuits != 1 {
		t.Errorf("short-circuits = %d, want 1", st.ShortCircuits)
	}

	// Cooldown elapses; the transport recovers; the probe closes it.
	now = now.Add(time.Minute)
	inner.mu.Lock()
	inner.failN = 0
	inner.mu.Unlock()
	if got := r.BreakerState(); got != retry.HalfOpen {
		t.Fatalf("breaker = %v, want half-open after cooldown", got)
	}
	if err := r.Notify(ctx, Message{Tag: "probe"}); err != nil {
		t.Fatalf("probe delivery: %v", err)
	}
	if got := r.BreakerState(); got != retry.Closed {
		t.Fatalf("breaker = %v, want closed after successful probe", got)
	}
	if st := r.Stats(); st.BreakerOpens != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v, want one open and the probe delivered", st)
	}
}

// TestReliableBreakerConcurrent exercises the full open/half-open/close
// cycle from many goroutines; run under -race it proves the breaker and
// the counters coherent under contention.
func TestReliableBreakerConcurrent(t *testing.T) {
	inner := &flakyNotifier{failN: 40}
	r := NewReliable(inner, fastPolicy(1), WithBreaker(3, time.Millisecond))
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Notify(context.Background(), Message{})
				_ = r.Stats()
				time.Sleep(time.Millisecond / 4)
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	if st.Delivered == 0 {
		t.Errorf("stats = %+v, want recovery deliveries once the transport healed", st)
	}
	if st.BreakerOpens == 0 {
		t.Errorf("stats = %+v, want the breaker to have opened under sustained failure", st)
	}
	if got := r.BreakerState(); got != retry.Closed {
		t.Errorf("final breaker state = %v, want closed after recovery", got)
	}
}

// TestMailboxLatencyCancelled: a context cancelled during the synthetic
// delivery latency aborts the delivery without recording the message.
func TestMailboxLatencyCancelled(t *testing.T) {
	mb := NewMailbox(time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mb.Notify(ctx, Message{Tag: "slow"}) }()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Notify = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Notify did not return after cancellation")
	}
	if mb.Count() != 0 {
		t.Errorf("mailbox recorded %d message(s) from a cancelled delivery", mb.Count())
	}
}
