// Package notify implements the notification service behind
// rr_cond_notify and post_cond_notify (paper section 7.2: "sends email
// to the system administrator reporting time, IP address, URL attempted
// and a threat type").
//
// Real SMTP is replaced by an in-memory mailbox with a configurable
// synthetic delivery latency; the paper's section 8 shows notification
// latency dominating request cost (5.9 ms -> 53.3 ms), and the latency
// knob reproduces that shape (experiment E1).
package notify

import (
	"context"
	"sync"
	"time"
)

// Message is one notification.
type Message struct {
	Time    time.Time
	To      string
	Subject string
	Body    string
	// Tag is the policy's info label, e.g. "cgiexploit".
	Tag string
}

// Notifier delivers notifications.
type Notifier interface {
	Notify(ctx context.Context, m Message) error
}

// Mailbox is an in-memory synchronous notifier. Notify blocks for the
// configured latency (interruptible by ctx), simulating mail delivery.
// The zero latency makes it instantaneous. Safe for concurrent use.
type Mailbox struct {
	latency time.Duration

	mu   sync.Mutex
	msgs []Message
}

// NewMailbox returns a mailbox with the given synthetic delivery
// latency.
func NewMailbox(latency time.Duration) *Mailbox {
	return &Mailbox{latency: latency}
}

// Notify implements Notifier.
func (m *Mailbox) Notify(ctx context.Context, msg Message) error {
	if m.latency > 0 {
		t := time.NewTimer(m.latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.msgs = append(m.msgs, msg)
	return nil
}

// Messages returns a copy of the delivered messages.
func (m *Mailbox) Messages() []Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Message(nil), m.msgs...)
}

// Count returns the number of delivered messages.
func (m *Mailbox) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.msgs)
}

// Reset discards delivered messages.
func (m *Mailbox) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.msgs = nil
}

// Async wraps a Notifier with a bounded queue and a background worker,
// so policy evaluation is not blocked by delivery latency. Close flushes
// the queue and stops the worker.
type Async struct {
	inner Notifier
	queue chan Message
	done  chan struct{}

	mu      sync.Mutex
	dropped uint64
	closed  bool
}

// NewAsync returns an asynchronous notifier with the given queue depth
// (minimum 1).
func NewAsync(inner Notifier, depth int) *Async {
	if depth < 1 {
		depth = 1
	}
	a := &Async{
		inner: inner,
		queue: make(chan Message, depth),
		done:  make(chan struct{}),
	}
	go a.run()
	return a
}

func (a *Async) run() {
	defer close(a.done)
	for msg := range a.queue {
		// Delivery errors are swallowed by design: asynchronous
		// notification is best-effort and must not fail requests.
		_ = a.inner.Notify(context.Background(), msg)
	}
}

// Notify implements Notifier: it enqueues without blocking and drops
// the message if the queue is full or the notifier is closed.
func (a *Async) Notify(_ context.Context, m Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		a.dropped++
		return nil
	}
	select {
	case a.queue <- m:
	default:
		a.dropped++
	}
	return nil
}

// Dropped reports how many messages were lost to a full queue or to
// delivery after Close.
func (a *Async) Dropped() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Close flushes queued messages and stops the worker. It is idempotent.
func (a *Async) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return
	}
	a.closed = true
	close(a.queue)
	a.mu.Unlock()
	<-a.done
}
