package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("Value = %v", got)
	}
	g.Add(-1.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("after Add = %v", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)                        // bucket 0
	h.Observe(0.001)                         // bucket 0 (le is inclusive)
	h.Observe(0.005)                         // bucket 1
	h.ObserveDuration(50 * time.Millisecond) // bucket 2
	h.Observe(3)                             // +Inf
	snap := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	if snap.Count != 5 {
		t.Errorf("Count = %d, want 5", snap.Count)
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 3
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramWeightedObservation(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.1})
	h.ObserveDurationWeighted(5*time.Millisecond, 4) // bucket 1, weight 4
	h.ObserveDurationWeighted(time.Second, 0)        // weight 0: no-op
	h.ObserveDuration(5 * time.Millisecond)          // weight 1
	snap := h.Snapshot()
	if snap.Counts[1] != 5 {
		t.Errorf("bucket 1 = %d, want 5 (4 weighted + 1 plain)", snap.Counts[1])
	}
	if snap.Count != 5 {
		t.Errorf("Count = %d, want 5", snap.Count)
	}
	if want := 5 * 0.005; math.Abs(snap.Sum-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v (duration times total weight)", snap.Sum, want)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(-5)
	h.ObserveDuration(-time.Second)
	snap := h.Snapshot()
	if snap.Counts[0] != 2 || snap.Sum != 0 {
		t.Fatalf("snapshot = %+v, want both clamped into first bucket with zero sum", snap)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestRegistryDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "d", L("a", "x"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.Counter("dup_total", "d", L("a", "x"))
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("clash", "g")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "0leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "bad")
		}()
	}
}

func TestRegistryReservedLabelPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("le label did not panic")
		}
	}()
	r.Counter("c_total", "c", L("le", "1"))
}

func TestRegistryHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", "h", []float64{1, 2}, L("p", "a"))
	defer func() {
		if recover() == nil {
			t.Fatal("bounds mismatch did not panic")
		}
	}()
	r.Histogram("h_seconds", "h", []float64{1, 3}, L("p", "b"))
}

func TestValidNames(t *testing.T) {
	for name, want := range map[string]bool{
		"gaa_decisions_total": true,
		"a:b":                 true,
		"_hidden":             true,
		"9lives":              false,
		"":                    false,
		"with-dash":           false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
	for name, want := range map[string]bool{
		"phase":    true,
		"__meta":   false,
		"":         false,
		"ok_2":     true,
		"bad:name": false,
	} {
		if got := ValidLabelName(name); got != want {
			t.Errorf("ValidLabelName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestValuesSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("v_total", "v", L("k", "a"))
	c.Add(7)
	g := r.Gauge("v_gauge", "v")
	g.Set(1.5)
	h := r.Histogram("v_seconds", "v", []float64{0.1})
	h.Observe(0.05)
	h.Observe(5)
	r.CounterFunc("v_fn_total", "v", func() uint64 { return 11 })
	r.GaugeFunc("v_fn_gauge", "v", func() float64 { return -2 })

	vals := r.Values()
	checks := map[string]float64{
		`v_total{k="a"}`:              7,
		"v_gauge":                     1.5,
		"v_fn_total":                  11,
		"v_fn_gauge":                  -2,
		`v_seconds_bucket{le="0.1"}`:  1,
		`v_seconds_bucket{le="+Inf"}`: 2,
		"v_seconds_count":             2,
	}
	for k, want := range checks {
		if got, ok := vals[k]; !ok || got != want {
			t.Errorf("Values[%q] = %v (present=%v), want %v", k, got, ok, want)
		}
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "help with \\ backslash\nand newline", L("v", "quote\" back\\slash\nnewline"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total help with \\ backslash\nand newline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{v="quote\" back\\slash\nnewline"} 0`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	// Round-trip: the parser must recover the original strings.
	fams, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	f := fams["esc_total"]
	if f == nil || f.Help != "help with \\ backslash\nand newline" {
		t.Errorf("round-tripped help = %+v", f)
	}
	if len(f.Samples) != 1 || f.Samples[0].Labels["v"] != "quote\" back\\slash\nnewline" {
		t.Errorf("round-tripped label = %+v", f.Samples)
	}
}

func TestParseRejectsUnregistered(t *testing.T) {
	_, err := Parse(strings.NewReader("orphan_total 5\n"))
	if err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("err = %v, want unregistered-metric error", err)
	}
}

func TestParseRejectsDuplicateSeries(t *testing.T) {
	exposition := "# TYPE d_total counter\nd_total{a=\"x\"} 1\nd_total{a=\"x\"} 2\n"
	_, err := Parse(strings.NewReader(exposition))
	if err == nil || !strings.Contains(err.Error(), "duplicate series") {
		t.Fatalf("err = %v, want duplicate-series error", err)
	}
}

func TestParseRejectsTypeAfterSamples(t *testing.T) {
	exposition := "# TYPE x_total counter\nx_total 1\n# TYPE x_total counter\n"
	_, err := Parse(strings.NewReader(exposition))
	if err == nil {
		t.Fatal("TYPE after samples accepted")
	}
}
