package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden exposition fixtures")

// goldenRegistry builds a registry exercising every metric kind, label
// escaping, multi-series families and histogram rendering with
// deterministic values — the exposition contract the stack's metric
// names depend on.
func goldenRegistry() *Registry {
	r := NewRegistry()

	yes := r.Counter("gaa_decisions_total", "Authorization decisions by phase and outcome.",
		L("phase", "check"), L("decision", "yes"))
	yes.Add(12)
	no := r.Counter("gaa_decisions_total", "Authorization decisions by phase and outcome.",
		L("phase", "check"), L("decision", "no"))
	no.Add(3)
	maybe := r.Counter("gaa_decisions_total", "Authorization decisions by phase and outcome.",
		L("phase", "mid"), L("decision", "maybe"))
	maybe.Inc()

	r.CounterFunc("gaa_policy_cache_hits_total", "Policy cache hits.", func() uint64 { return 90 })
	r.GaugeFunc("gaa_threat_level", "Current IDS threat level (0=low 1=medium 2=high).", func() float64 { return 1 })

	g := r.Gauge("gaa_netblock_active_blocks", "Live firewall block entries.")
	g.Set(4)

	h := r.Histogram("gaa_phase_latency_seconds", "Evaluation latency per enforcement phase.",
		[]float64{1e-6, 1e-3, 0.1}, L("phase", "check"))
	h.Observe(5e-7)
	h.Observe(5e-7)
	h.Observe(2e-4)
	h.Observe(0.05)
	h.Observe(7)
	h2 := r.Histogram("gaa_phase_latency_seconds", "Evaluation latency per enforcement phase.",
		[]float64{1e-6, 1e-3, 0.1}, L("phase", "post"))
	h2.Observe(2e-3)

	esc := r.Counter("gaa_escaping_total", `Help with backslash \ and`+"\nnewline.",
		L("path", `C:\tmp "quoted"`))
	esc.Inc()
	return r
}

func TestGoldenExposition(t *testing.T) {
	r := goldenRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exposition.prom")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden fixture %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenFixturesParse round-trips every committed fixture through
// the parser: stable names, HELP/TYPE lines, escaping, and histogram
// bucket/_sum/_count invariants.
func TestGoldenFixturesParse(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no .prom fixtures committed under testdata/")
	}
	for _, path := range fixtures {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			fams, err := Parse(f)
			if err != nil {
				t.Fatalf("fixture does not parse: %v", err)
			}
			for name, fam := range fams {
				if !ValidName(name) {
					t.Errorf("invalid family name %q", name)
				}
				if fam.Type == "" {
					t.Errorf("family %s has no TYPE line", name)
				}
				if fam.Type == "histogram" {
					if err := CheckHistogramInvariants(fam); err != nil {
						t.Errorf("histogram invariants: %v", err)
					}
				}
			}
		})
	}
}

// TestGoldenRoundTripValues: parsing the exposition must recover the
// exact sample values the registry reports through Values().
func TestGoldenRoundTripValues(t *testing.T) {
	r := goldenRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	vals := r.Values()
	parsed := 0
	for _, fam := range fams {
		for _, s := range fam.Samples {
			key := s.Key()
			want, ok := vals[mapKeyFor(s)]
			if !ok {
				t.Errorf("parsed sample %s missing from Values()", key)
				continue
			}
			if s.Value != want {
				t.Errorf("sample %s = %v, Values() says %v", key, s.Value, want)
			}
			parsed++
		}
	}
	if parsed != len(vals) {
		t.Errorf("parsed %d samples, Values() has %d", parsed, len(vals))
	}
}

// mapKeyFor rebuilds the Values() key (sorted labels, le last) for a
// parsed sample.
func mapKeyFor(s Sample) string {
	labels := make([]Label, 0, len(s.Labels))
	var le *Label
	for k, v := range s.Labels {
		if k == "le" {
			le = &Label{Key: k, Value: v}
			continue
		}
		labels = append(labels, Label{Key: k, Value: v})
	}
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j].Key < labels[j-1].Key; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	if le != nil {
		labels = append(labels, *le)
	}
	return s.Name + renderLabels(labels)
}
