package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample name as written (histogram samples keep their
	// _bucket/_sum/_count suffix).
	Name string
	// Labels are the parsed label pairs (unescaped values).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Key renders the sample's identity (name plus sorted labels) for
// duplicate detection and map lookups.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ParsedFamily is one metric family reconstructed from an exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse reads a Prometheus text exposition and reconstructs its
// families, enforcing the lint rules the golden tests and CI rely on:
// every sample must belong to a family announced by a # TYPE line
// (unregistered names are errors), names and label names must be
// legal, and no series may appear twice.
func Parse(r io.Reader) (map[string]*ParsedFamily, error) {
	families := make(map[string]*ParsedFamily)
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := families[familyOf(s.Name, families)]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s for unregistered metric (no # TYPE line)", lineNo, s.Name)
		}
		if key := s.Key(); seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		} else {
			seen[key] = true
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// familyOf resolves a sample name to its family name, peeling
// histogram suffixes when the base family is a histogram.
func familyOf(name string, families map[string]*ParsedFamily) string {
	if _, ok := families[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

func parseComment(line string, families map[string]*ParsedFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		// Free-form comments are legal and ignored.
		return nil
	}
	name := fields[2]
	if !ValidName(name) {
		return fmt.Errorf("invalid metric name %q in %s line", name, fields[1])
	}
	f := families[name]
	if f == nil {
		f = &ParsedFamily{Name: name}
		families[name] = f
	}
	switch fields[1] {
	case "HELP":
		if len(fields) == 4 {
			f.Help = unescapeHelp(fields[3])
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("missing type for %s", name)
		}
		typ := strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("# TYPE for %s after its samples", name)
		}
		if f.Type != "" {
			return fmt.Errorf("duplicate # TYPE for %s", name)
		}
		f.Type = typ
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.Name = rest[:brace]
		var err error
		rest, err = parseLabels(rest[brace:], s.Labels)
		if err != nil {
			return s, err
		}
	} else {
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = rest[:sp]
		rest = rest[sp:]
	}
	if !ValidName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	valueText := strings.TrimSpace(rest)
	// A timestamp may trail the value; take the first field as value.
	if i := strings.IndexByte(valueText, ' '); i >= 0 {
		valueText = valueText[:i]
	}
	v, err := parseValue(valueText)
	if err != nil {
		return s, fmt.Errorf("sample %s: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(text string) (float64, error) {
	switch text {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(text, 64)
}

// parseLabels consumes a `{k="v",...}` block, returning the remainder
// of the line.
func parseLabels(rest string, into map[string]string) (string, error) {
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '=' near %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if key != "le" && !ValidLabelName(key) {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		if _, dup := into[key]; dup {
			return "", fmt.Errorf("duplicate label %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return "", fmt.Errorf("unquoted value for label %q", key)
		}
		value, remainder, err := parseQuoted(rest)
		if err != nil {
			return "", fmt.Errorf("label %q: %w", key, err)
		}
		into[key] = value
		rest = remainder
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// parseQuoted consumes a double-quoted, backslash-escaped string.
func parseQuoted(rest string) (value, remainder string, err error) {
	var b strings.Builder
	i := 1
	for i < len(rest) {
		c := rest[i]
		switch c {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			if i+1 >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch rest[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", rest[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// CheckHistogramInvariants verifies the structural histogram contract
// on a parsed family: per series, buckets are cumulative and
// non-decreasing in le order, an le="+Inf" bucket exists and equals
// the _count sample, and a _sum sample is present.
func CheckHistogramInvariants(f *ParsedFamily) error {
	if f.Type != "histogram" {
		return fmt.Errorf("%s: not a histogram", f.Name)
	}
	type group struct {
		buckets map[float64]float64 // le -> cumulative count
		sum     *float64
		count   *float64
	}
	groups := make(map[string]*group)
	groupKey := func(labels map[string]string) string {
		s := Sample{Name: f.Name, Labels: make(map[string]string, len(labels))}
		for k, v := range labels {
			if k != "le" {
				s.Labels[k] = v
			}
		}
		return s.Key()
	}
	for i := range f.Samples {
		s := f.Samples[i]
		g := groups[groupKey(s.Labels)]
		if g == nil {
			g = &group{buckets: make(map[float64]float64)}
			groups[groupKey(s.Labels)] = g
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q: %w", f.Name, le, err)
			}
			g.buckets[bound] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			v := s.Value
			g.sum = &v
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			g.count = &v
		default:
			return fmt.Errorf("%s: unexpected histogram sample %s", f.Name, s.Name)
		}
	}
	for key, g := range groups {
		if g.sum == nil {
			return fmt.Errorf("%s: series %s missing _sum", f.Name, key)
		}
		if g.count == nil {
			return fmt.Errorf("%s: series %s missing _count", f.Name, key)
		}
		inf, ok := g.buckets[math.Inf(1)]
		if !ok {
			return fmt.Errorf("%s: series %s missing le=\"+Inf\" bucket", f.Name, key)
		}
		if inf != *g.count {
			return fmt.Errorf("%s: series %s +Inf bucket %v != _count %v", f.Name, key, inf, *g.count)
		}
		bounds := make([]float64, 0, len(g.buckets))
		for b := range g.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := -1.0
		for _, b := range bounds {
			if c := g.buckets[b]; c < prev {
				return fmt.Errorf("%s: series %s bucket le=%v count %v below previous %v (not cumulative)", f.Name, key, b, c, prev)
			} else {
				prev = c
			}
		}
	}
	return nil
}
