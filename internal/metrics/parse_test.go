package metrics

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestParseAcceptsFullGrammar exercises the corners of the exposition
// grammar the lint must accept: free-form comments, trailing
// timestamps, special float values, spaces inside label blocks, and
// histogram suffix resolution to the base family.
func TestParseAcceptsFullGrammar(t *testing.T) {
	exposition := strings.Join([]string{
		`# a free-form comment, ignored`,
		`#`,
		`# TYPE plain_total counter`,
		`plain_total 3 1712000000000`, // trailing timestamp
		`# TYPE special gauge`,
		`special{v="inf"} +Inf`,
		`special{v="ninf"} -Inf`,
		`special{v="nan"} NaN`,
		`special{ spaced="x" , also="y" } 1`,
		`# HELP h_seconds histogram with suffixes`,
		`# TYPE h_seconds histogram`,
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="+Inf"} 2`,
		`h_seconds_sum 0.6`,
		`h_seconds_count 2`,
	}, "\n") + "\n"
	fams, err := Parse(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["plain_total"].Samples[0].Value; got != 3 {
		t.Errorf("timestamped sample value = %v, want 3", got)
	}
	sp := fams["special"]
	if len(sp.Samples) != 4 {
		t.Fatalf("special samples = %d, want 4", len(sp.Samples))
	}
	if !math.IsInf(sp.Samples[0].Value, 1) || !math.IsInf(sp.Samples[1].Value, -1) || !math.IsNaN(sp.Samples[2].Value) {
		t.Errorf("special values = %+v", sp.Samples[:3])
	}
	if want := map[string]string{"spaced": "x", "also": "y"}; !reflect.DeepEqual(sp.Samples[3].Labels, want) {
		t.Errorf("spaced labels = %v, want %v", sp.Samples[3].Labels, want)
	}
	h := fams["h_seconds"]
	if h == nil || len(h.Samples) != 4 {
		t.Fatalf("histogram suffixes did not fold into base family: %+v", h)
	}
	if err := CheckHistogramInvariants(h); err != nil {
		t.Error(err)
	}
}

// TestParseRejectsMalformedLines is the lint contract: every malformed
// shape CI must catch is an error naming what went wrong.
func TestParseRejectsMalformedLines(t *testing.T) {
	cases := map[string]struct{ in, wantErr string }{
		"invalid name in TYPE":   {"# TYPE 0bad counter\n", "invalid metric name"},
		"missing type keyword":   {"# TYPE only_name\n", "missing type"},
		"unknown type":           {"# TYPE x_total frobnitz\n", "unknown type"},
		"duplicate TYPE":         {"# TYPE d counter\n# TYPE d counter\n", "duplicate # TYPE"},
		"sample without value":   {"# TYPE v counter\nv\n", "no value"},
		"invalid sample name":    {"# TYPE v counter\n0bad 1\n", "invalid sample name"},
		"unparseable value":      {"# TYPE v counter\nv one\n", "sample v"},
		"junk after label":       {"# TYPE v counter\nv{a=\"x\" 1\n", "label without '='"},
		"label without equals":   {"# TYPE v counter\nv{a} 1\n", "label without '='"},
		"invalid label name":     {"# TYPE v counter\nv{0a=\"x\"} 1\n", "invalid label name"},
		"duplicate label":        {"# TYPE v counter\nv{a=\"x\",a=\"y\"} 1\n", "duplicate label"},
		"unquoted label value":   {"# TYPE v counter\nv{a=x} 1\n", "unquoted value"},
		"dangling escape":        {"# TYPE v counter\nv{a=\"x\\\n", "dangling escape"},
		"unknown escape":         {"# TYPE v counter\nv{a=\"\\t\"} 1\n", "unknown escape"},
		"unterminated quote":     {"# TYPE v counter\nv{a=\"x} 1\n", "unterminated quoted"},
		"empty label block tail": {"# TYPE v counter\nv{\n", "unterminated label block"},
	}
	for name, tc := range cases {
		_, err := Parse(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

func TestCheckHistogramInvariantViolations(t *testing.T) {
	mk := func(lines ...string) *ParsedFamily {
		exposition := "# TYPE h histogram\n" + strings.Join(lines, "\n") + "\n"
		fams, err := Parse(strings.NewReader(exposition))
		if err != nil {
			t.Fatalf("fixture did not parse: %v", err)
		}
		return fams["h"]
	}
	cases := map[string]struct {
		f       *ParsedFamily
		wantErr string
	}{
		"not a histogram": {&ParsedFamily{Name: "h", Type: "counter"}, "not a histogram"},
		"bucket sans le":  {mk(`h_bucket 1`, `h_sum 0`, `h_count 1`), "without le label"},
		"bad le value":    {mk(`h_bucket{le="wat"} 1`, `h_sum 0`, `h_count 1`), "bad le"},
		"missing sum":     {mk(`h_bucket{le="+Inf"} 1`, `h_count 1`), "missing _sum"},
		"missing count":   {mk(`h_bucket{le="+Inf"} 1`, `h_sum 0`), "missing _count"},
		"missing inf":     {mk(`h_bucket{le="1"} 1`, `h_sum 0`, `h_count 1`), `missing le="+Inf"`},
		"inf vs count":    {mk(`h_bucket{le="+Inf"} 1`, `h_sum 0`, `h_count 2`), "!= _count"},
		"not cumulative": {mk(`h_bucket{le="1"} 5`, `h_bucket{le="2"} 3`,
			`h_bucket{le="+Inf"} 5`, `h_sum 0`, `h_count 5`), "not cumulative"},
	}
	for name, tc := range cases {
		err := CheckHistogramInvariants(tc.f)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

func TestRegistryFamilies(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz_gauge", "")
	r.Counter("aa_total", "")
	r.Histogram("mm_seconds", "", nil) // nil bounds: DefLatencyBuckets
	if got, want := r.Families(), []string{"aa_total", "mm_seconds", "zz_gauge"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Families() = %v, want %v", got, want)
	}
}

func TestHistogramBoundsLengthMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("hlen_seconds", "h", []float64{1, 2}, L("p", "a"))
	defer func() {
		if recover() == nil {
			t.Fatal("bounds length mismatch did not panic")
		}
	}()
	r.Histogram("hlen_seconds", "h", []float64{1}, L("p", "b"))
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindCounter:   "counter",
		KindGauge:     "gauge",
		KindHistogram: "histogram",
		Kind(42):      "Kind(42)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}

// failWriter errors after n bytes, for the WritePrometheus error path.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n -= len(p); w.n < 0 {
		return 0, strings.NewReader("").UnreadByte() // any non-nil error
	}
	return len(p), nil
}

func TestWritePrometheusPropagatesWriterError(t *testing.T) {
	r := NewRegistry()
	r.Counter("w_total", "w")
	if err := r.WritePrometheus(&failWriter{n: 4}); err == nil {
		t.Fatal("writer error swallowed")
	}
}
