package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the Prometheus metric type of a family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Label is one constant label on a series. Cardinality is fixed at
// registration time: every series of every family is declared up
// front, so the hot path never allocates label sets and the exposition
// can never grow unbounded.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one (labels, collector) pair inside a family. Exactly one
// of the value sources is set.
type series struct {
	labels    []Label // sorted by key
	signature string  // rendered label block, "" for unlabeled

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// family is one named metric with its HELP/TYPE metadata and series.
type family struct {
	name, help string
	kind       Kind
	bounds     []float64 // histogram families: shared bucket bounds
	series     []*series
	seen       map[string]bool
}

// Registry holds named metric families and renders them. Registration
// normally happens at start-up; collection (WritePrometheus, Values)
// may run concurrently with writers at any time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or extends) a counter family and returns the
// series' counter. Repeated calls with the same name and different
// labels add series to one family; duplicate (name, labels) pairs and
// kind mismatches panic — they are programming errors the exposition
// lint must never see.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, KindCounter, nil, labels, &series{counter: c})
	return c
}

// CounterFunc registers a counter series collected from fn at
// exposition time. Use it to surface pre-existing monotonic counters
// (cache stats, supervision stats, WAL appends) without double
// accounting: the subsystem keeps its own atomics and the registry
// reads them on scrape.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, KindCounter, nil, labels, &series{counterFn: fn})
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, KindGauge, nil, labels, &series{gauge: g})
	return g
}

// GaugeFunc registers a gauge series collected from fn at exposition
// time (threat level, active blocks, breaker state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, KindGauge, nil, labels, &series{gaugeFn: fn})
}

// Histogram registers a histogram series. Every series of one family
// must share identical bucket bounds; nil bounds mean
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.add(name, help, KindHistogram, h.bounds, labels, &series{hist: h})
	return h
}

// add validates and installs one series.
func (r *Registry) add(name, help string, kind Kind, bounds []float64, labels []Label, s *series) {
	if !ValidName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !ValidLabelName(l.Key) {
			panic("metrics: invalid label name " + strconv.Quote(l.Key) + " on " + name)
		}
		if l.Key == "le" {
			panic("metrics: label name \"le\" is reserved for histogram buckets (" + name + ")")
		}
	}
	s.labels = append([]Label(nil), labels...)
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	s.signature = renderLabels(s.labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, seen: make(map[string]bool)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic("metrics: " + name + " registered as both " + f.kind.String() + " and " + kind.String())
	}
	if kind == KindHistogram && !equalBounds(f.bounds, bounds) {
		panic("metrics: histogram " + name + " registered with differing bucket bounds")
	}
	if f.seen[s.signature] {
		panic("metrics: duplicate series " + name + s.signature)
	}
	f.seen[s.signature] = true
	// Insert in signature order under the lock: collection snapshots
	// the slice as-is and must never re-sort shared state outside r.mu.
	i := sort.Search(len(f.series), func(i int) bool { return f.series[i].signature > s.signature })
	f.series = append(f.series, nil)
	copy(f.series[i+1:], f.series[i:])
	f.series[i] = s
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// familyView is a per-collection snapshot of one family: the immutable
// metadata plus a copy of the series slice taken under r.mu. Series are
// kept signature-sorted at insertion, so collection never touches (let
// alone mutates) shared registry state outside the lock — concurrent
// scrapes only race on the striped atomics, which is their contract.
type familyView struct {
	name, help string
	kind       Kind
	series     []*series
}

// sortedFamilies snapshots every family under the lock; the per-series
// value reads afterwards are lock-free against writers.
func (r *Registry) sortedFamilies() []familyView {
	r.mu.Lock()
	fams := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, familyView{
			name:   f.name,
			help:   f.help,
			kind:   f.kind,
			series: append([]*series(nil), f.series...),
		})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (0.0.4): families sorted by name, each with HELP
// and TYPE lines, series sorted by label signature, histograms with
// cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			writeSeries(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(b *strings.Builder, f familyView, s *series) {
	switch f.kind {
	case KindHistogram:
		snap := s.hist.Snapshot()
		cum := uint64(0)
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			writeSample(b, f.name+"_bucket", appendLE(s.labels, formatFloat(bound)), formatUint(cum))
		}
		cum += snap.Counts[len(snap.Counts)-1]
		writeSample(b, f.name+"_bucket", appendLE(s.labels, "+Inf"), formatUint(cum))
		writeSample(b, f.name+"_sum", s.labels, formatFloat(snap.Sum))
		writeSample(b, f.name+"_count", s.labels, formatUint(snap.Count))
	case KindCounter:
		v := uint64(0)
		if s.counter != nil {
			v = s.counter.Value()
		} else {
			v = s.counterFn()
		}
		writeSample(b, f.name, s.labels, formatUint(v))
	case KindGauge:
		v := 0.0
		if s.gauge != nil {
			v = s.gauge.Value()
		} else {
			v = s.gaugeFn()
		}
		writeSample(b, f.name, s.labels, formatFloat(v))
	}
}

func writeSample(b *strings.Builder, name string, labels []Label, value string) {
	b.WriteString(name)
	b.WriteString(renderLabels(labels))
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// appendLE returns labels plus a trailing le label (the conventional
// last position for bucket bounds).
func appendLE(labels []Label, le string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Key: "le", Value: le})
}

// renderLabels renders a sorted label block: `{a="x",b="y"}` or "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslashes, double quotes and newlines.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Values returns every sample as a flat name{labels} -> value map:
// plain series under their rendered name, histograms as _bucket
// (cumulative), _sum and _count samples. It is the machine-readable
// snapshot the benchmark harness diffs before and after a run.
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			switch f.kind {
			case KindHistogram:
				snap := s.hist.Snapshot()
				cum := uint64(0)
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					out[f.name+"_bucket"+renderLabels(appendLE(s.labels, formatFloat(bound)))] = float64(cum)
				}
				cum += snap.Counts[len(snap.Counts)-1]
				out[f.name+"_bucket"+renderLabels(appendLE(s.labels, "+Inf"))] = float64(cum)
				out[f.name+"_sum"+s.signature] = snap.Sum
				out[f.name+"_count"+s.signature] = float64(snap.Count)
			case KindCounter:
				if s.counter != nil {
					out[f.name+s.signature] = float64(s.counter.Value())
				} else {
					out[f.name+s.signature] = float64(s.counterFn())
				}
			case KindGauge:
				if s.gauge != nil {
					out[f.name+s.signature] = s.gauge.Value()
				} else {
					out[f.name+s.signature] = s.gaugeFn()
				}
			}
		}
	}
	return out
}

// ValidName reports whether s is a legal Prometheus metric name.
func ValidName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s is a legal Prometheus label name.
func ValidLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
