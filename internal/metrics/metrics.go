// Package metrics is the zero-dependency observability substrate of
// the reproduction: lock-free sharded counters, gauges, and
// fixed-bucket latency histograms, collected into a Registry that
// renders the Prometheus text exposition format (version 0.0.4).
//
// The package exists to make every prior layer's behaviour externally
// visible — per-phase evaluation latency, YES/NO/MAYBE outcome rates,
// policy-cache effectiveness, supervision faults, WAL activity, threat
// level — without perturbing the decision hot path it instruments:
// Counter.Inc and Histogram.Observe are single striped atomic adds
// (no locks, no allocation), so the PR-1 cached-grant fast path stays
// allocation-free and inside its ≤5% overhead budget.
//
// In the spirit of Third Eye's in-process Apache execution tracing
// (low-overhead instrumentation of exactly this request cycle), all
// state lives in process memory; exposition is a read-side walk over
// striped counters that never blocks a writer.
package metrics

import (
	"math"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// numStripes is the per-metric stripe count. Writers pick a stripe
// with a thread-local random draw (math/rand/v2's per-thread
// generator, no lock, no allocation), spreading concurrent increments
// over independent cache lines; readers sum the stripes. 16 stripes
// keep a 16-goroutine workload mostly collision-free.
const numStripes = 16

// stripe is one cache-line-padded counter cell.
type stripe struct {
	n atomic.Uint64
	_ [56]byte // pad to 64 bytes so stripes never share a line
}

// stripeIdx picks the stripe for this increment. rand/v2's global
// functions draw from a per-OS-thread generator, so concurrent callers
// scatter without coordination and a counter's total stays exact (the
// draw only chooses where to add, never whether).
func stripeIdx() int {
	return int(rand.Uint32() & (numStripes - 1))
}

// Counter is a monotonically increasing striped counter. The zero
// value is ready to use; all methods are safe for concurrent use.
type Counter struct {
	stripes [numStripes]stripe
}

// Inc adds one.
func (c *Counter) Inc() {
	c.stripes[stripeIdx()].n.Add(1)
}

// Add adds n (use only non-negative deltas; counters are monotonic).
func (c *Counter) Add(n uint64) {
	c.stripes[stripeIdx()].n.Add(n)
}

// Value sums the stripes. Concurrent increments may or may not be
// included, but successive Values never move backwards.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (threat level, active
// blocks, breaker state). Gauges change at human rates, not per
// request, so a single atomic cell suffices.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (atomic compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets are the default histogram bounds for request-path
// latencies, in seconds: 1µs to 1s, the span between the PR-1 cached
// grant (~2µs) and the paper's 47ms notification tail.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// Histogram is a fixed-bucket latency histogram with striped bucket
// counters. Bounds are in seconds, ascending; an implicit +Inf bucket
// catches the tail. Observations accumulate a nanosecond-precision sum
// so the exposition's _sum stays exact for sub-millisecond latencies.
// The set of buckets is fixed at construction: Observe is a bounds
// scan plus two striped atomic adds, nothing more.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, seconds
	stripes [numStripes]histStripe
}

type histStripe struct {
	counts   []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumNanos atomic.Uint64
	_        [48]byte
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds (seconds). Nil or empty bounds default to
// DefLatencyBuckets. Panics if bounds are not strictly ascending.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if seconds <= b {
			idx = i
			break
		}
	}
	s := &h.stripes[stripeIdx()]
	s.counts[idx].Add(1)
	s.sumNanos.Add(uint64(seconds * 1e9))
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.ObserveDurationWeighted(d, 1)
}

// ObserveDurationWeighted records one duration with the given weight:
// the bucket count and _count grow by weight, the sum by weight times
// the duration. It is the sampling primitive — observing every Nth
// event with weight N keeps the histogram statistically unbiased while
// paying the clock-read cost only on sampled events.
func (h *Histogram) ObserveDurationWeighted(d time.Duration, weight uint64) {
	if weight == 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	idx := len(h.bounds)
	ns := float64(d.Nanoseconds())
	for i, b := range h.bounds {
		if ns <= b*1e9 {
			idx = i
			break
		}
	}
	s := &h.stripes[stripeIdx()]
	s.counts[idx].Add(weight)
	s.sumNanos.Add(weight * uint64(d.Nanoseconds()))
}

// Bounds returns the bucket upper bounds (seconds), excluding +Inf.
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// HistogramSnapshot is a point-in-time read of a histogram:
// non-cumulative per-bucket counts (last entry is the +Inf bucket),
// the total count, and the sum in seconds.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot sums the stripes. Each observation lands in exactly one
// bucket cell, so Count always equals the sum of Counts and successive
// snapshots never move backwards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: h.Bounds(),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	var nanos uint64
	for i := range h.stripes {
		s := &h.stripes[i]
		for j := range s.counts {
			snap.Counts[j] += s.counts[j].Load()
		}
		nanos += s.sumNanos.Load()
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	snap.Sum = float64(nanos) / 1e9
	return snap
}
