package metrics

import (
	"testing"
	"time"
)

func BenchmarkClockPair(b *testing.B) {
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sink = time.Since(start)
	}
	_ = sink
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x_total", "x")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x_seconds", "x", nil)
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(300 * time.Nanosecond)
	}
}
