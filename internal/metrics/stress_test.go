package metrics

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressConcurrentCollect hammers one registry from 32 goroutines
// — concurrent Inc/Add/Observe/Set interleaved with exposition and
// Values() collection — and asserts the lock-free contract: no lost
// increments (final totals are exact) and monotonic counters (no
// collection ever observes a counter or histogram count above a later
// one... i.e. snapshots never move backwards). Run under -race in CI.
func TestStressConcurrentCollect(t *testing.T) {
	const (
		workers = 32
		iters   = 5000
	)
	r := NewRegistry()
	c := r.Counter("stress_total", "s")
	// Deliberately unsorted registration order (as map iteration in the
	// wiring layers produces): collection must not re-sort the shared
	// series slice outside the registry lock.
	labeled := make([]*Counter, 3)
	for i, v := range []string{"c", "a", "b"} {
		labeled[i] = r.Counter("stress_labeled_total", "s", L("k", v))
	}
	h := r.Histogram("stress_seconds", "s", []float64{1e-6, 1e-3, 1})
	g := r.Gauge("stress_gauge", "s")
	var fnHits atomic.Uint64
	r.CounterFunc("stress_fn_total", "s", fnHits.Load)

	var writers, collectors sync.WaitGroup
	stop := make(chan struct{})

	// Collector goroutines: render and snapshot while writers run,
	// checking that every successive observation of each monotonic
	// series is non-decreasing.
	collectErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		collectors.Add(1)
		go func() {
			defer collectors.Done()
			lastTotal, lastHistCount := uint64(0), float64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					collectErr <- err
					return
				}
				if v := c.Value(); v < lastTotal {
					t.Errorf("counter moved backwards: %d -> %d", lastTotal, v)
					return
				} else {
					lastTotal = v
				}
				if v := r.Values()["stress_seconds_count"]; v < lastHistCount {
					t.Errorf("histogram count moved backwards: %v -> %v", lastHistCount, v)
					return
				} else {
					lastHistCount = v
				}
			}
		}()
	}

	// Writer goroutines.
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				labeled[i%3].Add(2)
				h.Observe(float64(i%7) * 1e-4)
				g.Set(float64(w))
				fnHits.Add(1)
			}
		}(w)
	}

	writers.Wait()
	close(stop)
	collectors.Wait()

	select {
	case err := <-collectErr:
		t.Fatal(err)
	default:
	}

	if got := c.Value(); got != workers*iters {
		t.Errorf("lost increments: stress_total = %d, want %d", got, workers*iters)
	}
	var labeledTotal uint64
	for _, lc := range labeled {
		labeledTotal += lc.Value()
	}
	if want := uint64(workers * iters * 2); labeledTotal != want {
		t.Errorf("lost labeled increments: %d, want %d", labeledTotal, want)
	}
	snap := h.Snapshot()
	if snap.Count != workers*iters {
		t.Errorf("lost observations: count = %d, want %d", snap.Count, workers*iters)
	}
	var bucketSum uint64
	for _, n := range snap.Counts {
		bucketSum += n
	}
	if bucketSum != snap.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
	if got := fnHits.Load(); got != workers*iters {
		t.Errorf("func counter = %d, want %d", got, workers*iters)
	}

	// The final exposition must parse cleanly and satisfy histogram
	// invariants after the storm.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckHistogramInvariants(fams["stress_seconds"]); err != nil {
		t.Error(err)
	}
}

// TestConcurrentCollectUnsortedRegistration is a regression test for a
// data race: collection used to sort the shared per-family series slice
// in place after releasing the registry lock, so two simultaneous
// scrapes of a family registered in non-sorted label order (exactly
// what gaa.WithMetrics produces by iterating a map) performed
// concurrent swaps on the same backing array. Run under -race.
func TestConcurrentCollectUnsortedRegistration(t *testing.T) {
	// The race window was the FIRST scrape of a freshly-registered
	// unsorted family (one sort pass later, the slice is sorted and
	// concurrent sorts stop swapping), so each round builds a new
	// registry and releases all scrapers through a barrier at once.
	// Each scraper performs exactly ONE collection: a second collection
	// in the same goroutine would re-acquire the registry lock after the
	// buggy out-of-lock sort and publish its writes to every later
	// acquirer, hiding the race from the detector's happens-before graph.
	var r *Registry
	for round := 0; round < 50; round++ {
		r = NewRegistry()
		for _, v := range []string{"zeta", "mid", "alpha", "omega", "beta"} {
			r.Counter("unsorted_total", "s", L("k", v)).Inc()
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				if i%2 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
					}
				} else {
					r.Values()
				}
			}(i)
		}
		close(start)
		wg.Wait()
	}

	// Exposition must come out sorted by label signature with no series
	// duplicated or lost by the concurrent scrapes.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "unsorted_total{") {
			got = append(got, line)
		}
	}
	want := []string{
		`unsorted_total{k="alpha"} 1`,
		`unsorted_total{k="beta"} 1`,
		`unsorted_total{k="mid"} 1`,
		`unsorted_total{k="omega"} 1`,
		`unsorted_total{k="zeta"} 1`,
	}
	if len(got) != len(want) {
		t.Fatalf("series lines = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}
