package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// The campaign-class generators below are the adversarial-traffic half
// of the scenario factory (internal/scenario): seeded, deterministic
// request streams for the attack classes an integrated web IDS must be
// exercised against — credential stuffing, distributed low-and-slow
// brute force, scraping bursts and legitimate flash crowds. Every
// generator obeys the same contract as Legit: the same seed yields a
// byte-identical request stream.

// IPPool returns n deterministic addresses under a /24-style prefix:
// IPPool("198.51.100", 3) -> 198.51.100.1 .. 198.51.100.3. n is capped
// at 254 so the host octet stays valid.
func IPPool(prefix string, n int) []string {
	if n > 254 {
		n = 254
	}
	out := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, fmt.Sprintf("%s.%d", prefix, i))
	}
	return out
}

// Pace sets a fixed inter-request delay on every request but the
// first — the rate-shaping knob campaign phases use to stay under (or
// burst over) sliding-window thresholds. It mutates and returns reqs.
func Pace(reqs []Request, gap time.Duration) []Request {
	for i := range reqs {
		if i == 0 {
			reqs[i].Delay = 0
			continue
		}
		reqs[i].Delay = gap
	}
	return reqs
}

// Spread shapes reqs to cover total time evenly: len(reqs)-1 equal
// gaps. A total of 0 (or fewer than two requests) clears all delays —
// a burst.
func Spread(reqs []Request, total time.Duration) []Request {
	if len(reqs) < 2 || total <= 0 {
		for i := range reqs {
			reqs[i].Delay = 0
		}
		return reqs
	}
	return Pace(reqs, total/time.Duration(len(reqs)-1))
}

// AssignSources deals sources onto reqs deterministically: shuffled
// round-robin, so every source appears within any window of
// len(sources) consecutive requests but the order varies with seed.
// It mutates and returns reqs.
func AssignSources(reqs []Request, sources []string, seed int64) []Request {
	if len(sources) == 0 {
		return reqs
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(sources))
	for i := range reqs {
		reqs[i].ClientIP = sources[order[i%len(sources)]]
	}
	return reqs
}

// Login is one authenticated GET of target — a successful login probe
// when the password is right, a failed attempt otherwise.
func Login(ip, target, user, pass string) Request {
	return Request{Method: "GET", Target: target, ClientIP: ip, User: user, Pass: pass}
}

// CredentialStuffing models the stuffing attack: each source sprays
// perSource wrong-password attempts across the user list against
// target, the per-source streams interleaved. Attempt passwords are
// unique per (source, index) as real stuffing lists are.
func CredentialStuffing(target string, users, sources []string, perSource int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	streams := make([][]Request, 0, len(sources))
	for si, ip := range sources {
		stream := make([]Request, 0, perSource)
		for i := 0; i < perSource; i++ {
			stream = append(stream, Request{
				Method:   "GET",
				Target:   target,
				ClientIP: ip,
				User:     users[rng.Intn(len(users))],
				Pass:     fmt.Sprintf("stuffed-%d-%d", si, i),
				Attack:   "credential-stuffing",
			})
		}
		streams = append(streams, stream)
	}
	return Interleave(rng.Int63(), streams...)
}

// LowAndSlow models the distributed low-and-slow brute force: one
// guess at a time against a single account, rotating through many
// sources with gap between attempts so no per-source threshold ever
// trips. Total length is len(sources)*perSource.
func LowAndSlow(target, user string, sources []string, perSource int, gap time.Duration, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(sources))
	out := make([]Request, 0, len(sources)*perSource)
	for round := 0; round < perSource; round++ {
		for _, idx := range order {
			out = append(out, Request{
				Method:   "GET",
				Target:   target,
				ClientIP: sources[idx],
				User:     user,
				Pass:     fmt.Sprintf("slow-%d-%d", round, idx),
				Attack:   "low-and-slow",
				Delay:    gap,
			})
		}
	}
	if len(out) > 0 {
		out[0].Delay = 0
	}
	return out
}

// ScrapeBurst models a scraper sweeping the site from one source: n
// GETs cycling through paths (appending enumerated guesses once the
// real tree is exhausted), paced by gap.
func ScrapeBurst(ip string, paths []string, n int, gap time.Duration, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(paths))
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		var target string
		if i < len(paths) {
			target = paths[order[i]]
		} else {
			target = fmt.Sprintf("/page-%d.html", i-len(paths)+1)
		}
		out = append(out, Request{
			Method:   "GET",
			Target:   target,
			ClientIP: ip,
			Attack:   "scrape",
			Delay:    gap,
		})
	}
	if len(out) > 0 {
		out[0].Delay = 0
	}
	return out
}

// FlashCrowd is a legitimate traffic spike: n requests over the
// standard document tree from k distinct well-behaved sources, no
// pacing. The requests carry no attack label — a detector that blocks
// any of them is producing false positives.
func FlashCrowd(n, k int, seed int64) []Request {
	reqs := Legit(n, seed)
	return AssignSources(reqs, IPPool("203.0.113", k), seed+1)
}

// Relabel overrides the attack-class label on every request — campaign
// phases use it to track sub-streams (e.g. an anonymous probe of an
// authenticated area) through per-class assertions. It mutates and
// returns reqs.
func Relabel(reqs []Request, class string) []Request {
	for i := range reqs {
		reqs[i].Attack = class
	}
	return reqs
}
