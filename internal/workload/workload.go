// Package workload generates the deterministic request mixes the
// experiments replay: the legitimate traffic of a small document tree
// plus the attack classes of the paper's sections 1 and 7 (vulnerable-
// CGI scans, slash-flood DoS, NIMDA-style malformed URLs, CGI buffer
// overflows, password guessing).
package workload

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"time"

	"net/http"
)

// Request is one synthetic client request.
type Request struct {
	Method   string
	Target   string // path + query
	ClientIP string
	User     string
	Pass     string
	// Attack labels the generating attack class ("" for legitimate
	// traffic); experiments use it as ground truth.
	Attack string
	// Delay is how long the issuing client waits before sending this
	// request (simulated time in the scenario driver, real time against
	// a live target). Zero means back-to-back.
	Delay time.Duration
}

// HTTPRequest materializes the request for an httpd.Server.
func (r Request) HTTPRequest() *http.Request {
	req := httptest.NewRequest(r.Method, r.Target, nil)
	req.RemoteAddr = r.ClientIP + ":40000"
	if r.User != "" {
		req.SetBasicAuth(r.User, r.Pass)
	}
	return req
}

// legitPaths is the document tree the legitimate mix browses; it
// matches DocRoot (package workload's DocRoot helper).
var legitPaths = []string{
	"/index.html",
	"/docs/guide.html",
	"/docs/api.html",
	"/news/2003-05.html",
	"/cgi-bin/search?q=%s",
}

// legitQueries feeds the search script.
var legitQueries = []string{
	"authorization", "apache", "intrusion+detection", "gaa+api", "eacl",
}

// DocRoot returns static content matching the legitimate mix.
func DocRoot() map[string]string {
	return map[string]string{
		"/index.html":        "<html>welcome</html>",
		"/docs/guide.html":   "<html>guide</html>",
		"/docs/api.html":     "<html>api</html>",
		"/news/2003-05.html": "<html>news</html>",
	}
}

// Legit generates n legitimate requests from a pool of well-behaved
// clients, deterministically from seed.
func Legit(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		path := legitPaths[rng.Intn(len(legitPaths))]
		if strings.Contains(path, "%s") {
			path = fmt.Sprintf(path, legitQueries[rng.Intn(len(legitQueries))])
		}
		out = append(out, Request{
			Method:   "GET",
			Target:   path,
			ClientIP: fmt.Sprintf("10.0.%d.%d", rng.Intn(4), 1+rng.Intn(250)),
		})
	}
	return out
}

// LegitFrom generates n legitimate requests all originating from one
// client — the focused traffic anomaly profiles are trained on.
func LegitFrom(ip string, n int, seed int64) []Request {
	out := Legit(n, seed)
	for i := range out {
		out[i].ClientIP = ip
	}
	return out
}

// PhfScan is the classic vulnerable-CGI probe (paper section 7.2).
func PhfScan(ip string) Request {
	return Request{
		Method:   "GET",
		Target:   "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd",
		ClientIP: ip,
		Attack:   "phf",
	}
}

// TestCGIScan probes the test-cgi information-disclosure script.
func TestCGIScan(ip string) Request {
	return Request{
		Method:   "GET",
		Target:   "/cgi-bin/test-cgi?*",
		ClientIP: ip,
		Attack:   "test-cgi",
	}
}

// SlashFlood is the paper's "well-known apache bug that slows down
// Apache and fills up logs fast": a request with a large run of '/'.
func SlashFlood(ip string) Request {
	return Request{
		Method:   "GET",
		Target:   "/" + strings.Repeat("/", 40) + "index.html",
		ClientIP: ip,
		Attack:   "slash-flood",
	}
}

// Nimda is the NIMDA-style malformed GET with escaped traversal.
func Nimda(ip string) Request {
	return Request{
		Method:   "GET",
		Target:   "/scripts/..%c0%af../winnt/system32/cmd.exe?/c+dir",
		ClientIP: ip,
		Attack:   "nimda",
	}
}

// Overflow is a Code-Red-style CGI buffer overflow: input longer than
// the paper's 1000-character bound.
func Overflow(ip string, length int) Request {
	if length <= 0 {
		length = 1200
	}
	return Request{
		Method:   "GET",
		Target:   "/cgi-bin/search?q=" + strings.Repeat("A", length),
		ClientIP: ip,
		Attack:   "overflow",
	}
}

// PasswordGuess produces n failed login attempts against user from ip.
func PasswordGuess(ip, user string, n int) []Request {
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Request{
			Method:   "GET",
			Target:   "/private/secrets.html",
			ClientIP: ip,
			User:     user,
			Pass:     fmt.Sprintf("guess-%d", i),
			Attack:   "password-guess",
		})
	}
	return out
}

// AttackMix returns one of each single-shot attack class from distinct
// attacker addresses — the ground-truth set of experiment E3.
func AttackMix() []Request {
	return []Request{
		PhfScan("192.0.2.1"),
		TestCGIScan("192.0.2.2"),
		SlashFlood("192.0.2.3"),
		Nimda("192.0.2.4"),
		Overflow("192.0.2.5", 1200),
	}
}

// Interleave deterministically shuffles several request streams into
// one, preserving each stream's internal order.
func Interleave(seed int64, streams ...[]Request) []Request {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(streams))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Request, 0, total)
	for len(out) < total {
		// Pick a stream with remaining items, weighted by remainder.
		remaining := 0
		for i, s := range streams {
			remaining += len(s) - idx[i]
			_ = s
		}
		pick := rng.Intn(remaining)
		for i, s := range streams {
			left := len(s) - idx[i]
			if pick < left {
				out = append(out, s[idx[i]])
				idx[i]++
				break
			}
			pick -= left
		}
	}
	return out
}
