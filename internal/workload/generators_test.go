package workload

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestIPPool(t *testing.T) {
	tests := []struct {
		name   string
		prefix string
		n      int
		want   int
		first  string
		last   string
	}{
		{"three hosts", "198.51.100", 3, 3, "198.51.100.1", "198.51.100.3"},
		{"single host", "10.1.1", 1, 1, "10.1.1.1", "10.1.1.1"},
		{"empty pool", "10.1.1", 0, 0, "", ""},
		{"capped at 254", "203.0.113", 300, 254, "203.0.113.1", "203.0.113.254"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := IPPool(tt.prefix, tt.n)
			if len(got) != tt.want {
				t.Fatalf("len = %d, want %d", len(got), tt.want)
			}
			if tt.want == 0 {
				return
			}
			if got[0] != tt.first || got[len(got)-1] != tt.last {
				t.Errorf("pool spans %s..%s, want %s..%s", got[0], got[len(got)-1], tt.first, tt.last)
			}
			seen := map[string]bool{}
			for _, ip := range got {
				if seen[ip] {
					t.Errorf("duplicate address %s", ip)
				}
				seen[ip] = true
			}
		})
	}
}

func TestPace(t *testing.T) {
	tests := []struct {
		name string
		n    int
		gap  time.Duration
		want []time.Duration
	}{
		{"empty", 0, time.Second, nil},
		{"single request has no delay", 1, time.Second, []time.Duration{0}},
		{"gap on every request but the first", 3, 50 * time.Millisecond,
			[]time.Duration{0, 50 * time.Millisecond, 50 * time.Millisecond}},
		{"zero gap clears prior delays", 2, 0, []time.Duration{0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			reqs := make([]Request, tt.n)
			for i := range reqs {
				reqs[i].Delay = time.Hour // Pace must overwrite stale pacing
			}
			got := Pace(reqs, tt.gap)
			var delays []time.Duration
			for _, r := range got {
				delays = append(delays, r.Delay)
			}
			if !reflect.DeepEqual(delays, tt.want) {
				t.Errorf("delays = %v, want %v", delays, tt.want)
			}
		})
	}
}

func TestSpread(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		total time.Duration
		want  []time.Duration
	}{
		{"even gaps over the window", 5, 4 * time.Second,
			[]time.Duration{0, time.Second, time.Second, time.Second, time.Second}},
		{"zero total is a burst", 3, 0, []time.Duration{0, 0, 0}},
		{"single request is a burst", 1, time.Minute, []time.Duration{0}},
		{"empty stream", 0, time.Minute, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			reqs := make([]Request, tt.n)
			for i := range reqs {
				reqs[i].Delay = time.Hour
			}
			got := Spread(reqs, tt.total)
			var delays []time.Duration
			for _, r := range got {
				delays = append(delays, r.Delay)
			}
			if !reflect.DeepEqual(delays, tt.want) {
				t.Errorf("delays = %v, want %v", delays, tt.want)
			}
		})
	}
}

func TestAssignSources(t *testing.T) {
	sources := IPPool("198.51.100", 4)
	reqs := AssignSources(Legit(20, 1), sources, 9)

	// Round-robin property: every window of len(sources) consecutive
	// requests covers every source exactly once.
	for start := 0; start+len(sources) <= len(reqs); start += len(sources) {
		seen := map[string]bool{}
		for _, r := range reqs[start : start+len(sources)] {
			seen[r.ClientIP] = true
		}
		if len(seen) != len(sources) {
			t.Fatalf("window at %d covers %d sources, want %d", start, len(seen), len(sources))
		}
	}

	// Deterministic per seed, order varies with seed.
	again := AssignSources(Legit(20, 1), sources, 9)
	if !reflect.DeepEqual(reqs, again) {
		t.Error("same seed must assign identically")
	}
	other := AssignSources(Legit(20, 1), sources, 10)
	if reflect.DeepEqual(reqs, other) {
		t.Error("different seeds should rotate sources differently")
	}

	// No sources: stream unchanged.
	orig := Legit(5, 2)
	if got := AssignSources(append([]Request(nil), orig...), nil, 1); !reflect.DeepEqual(got, orig) {
		t.Error("empty source list must leave requests untouched")
	}
}

func TestLogin(t *testing.T) {
	r := Login("10.0.0.1", "/account/profile.html", "alice", "s3cret")
	want := Request{Method: "GET", Target: "/account/profile.html",
		ClientIP: "10.0.0.1", User: "alice", Pass: "s3cret"}
	if r != want {
		t.Errorf("Login = %+v, want %+v", r, want)
	}
}

func TestCredentialStuffing(t *testing.T) {
	users := []string{"alice", "bob"}
	sources := IPPool("198.51.100", 3)
	reqs := CredentialStuffing("/account/profile.html", users, sources, 4, 7)

	if len(reqs) != len(sources)*4 {
		t.Fatalf("len = %d, want %d", len(reqs), len(sources)*4)
	}
	perSource := map[string]int{}
	passwords := map[string]bool{}
	for _, r := range reqs {
		if r.Attack != "credential-stuffing" || r.Target != "/account/profile.html" {
			t.Fatalf("req = %+v", r)
		}
		if r.User != "alice" && r.User != "bob" {
			t.Fatalf("unknown user %q", r.User)
		}
		if passwords[r.ClientIP+"/"+r.Pass] {
			t.Fatalf("password %q reused from %s", r.Pass, r.ClientIP)
		}
		passwords[r.ClientIP+"/"+r.Pass] = true
		perSource[r.ClientIP]++
	}
	for _, ip := range sources {
		if perSource[ip] != 4 {
			t.Errorf("source %s sent %d attempts, want 4", ip, perSource[ip])
		}
	}

	if !reflect.DeepEqual(reqs, CredentialStuffing("/account/profile.html", users, sources, 4, 7)) {
		t.Error("same seed must give identical streams")
	}
	if reflect.DeepEqual(reqs, CredentialStuffing("/account/profile.html", users, sources, 4, 8)) {
		t.Error("different seeds should differ")
	}
}

func TestLowAndSlow(t *testing.T) {
	sources := IPPool("198.51.100", 5)
	gap := 2 * time.Minute
	reqs := LowAndSlow("/account/vault.html", "alice", sources, 3, gap, 11)

	if len(reqs) != len(sources)*3 {
		t.Fatalf("len = %d, want %d", len(reqs), len(sources)*3)
	}
	if reqs[0].Delay != 0 {
		t.Errorf("first request delayed %v", reqs[0].Delay)
	}
	counts := map[string]int{}
	for i, r := range reqs {
		if r.User != "alice" || r.Attack != "low-and-slow" {
			t.Fatalf("req %d = %+v", i, r)
		}
		if i > 0 && r.Delay != gap {
			t.Fatalf("req %d delay = %v, want %v", i, r.Delay, gap)
		}
		counts[r.ClientIP]++
	}
	// The evasion property: attempts rotate, so each round visits every
	// source once — no source ever sends two in a row.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].ClientIP == reqs[i-1].ClientIP {
			t.Fatalf("source %s sent consecutive attempts at %d", reqs[i].ClientIP, i)
		}
	}
	for _, ip := range sources {
		if counts[ip] != 3 {
			t.Errorf("source %s sent %d, want 3", ip, counts[ip])
		}
	}
	if !reflect.DeepEqual(reqs, LowAndSlow("/account/vault.html", "alice", sources, 3, gap, 11)) {
		t.Error("same seed must give identical streams")
	}
}

func TestScrapeBurst(t *testing.T) {
	paths := []string{"/index.html", "/docs/guide.html", "/docs/api.html"}
	reqs := ScrapeBurst("192.0.2.66", paths, 6, 100*time.Millisecond, 5)

	if len(reqs) != 6 {
		t.Fatalf("len = %d", len(reqs))
	}
	if reqs[0].Delay != 0 {
		t.Errorf("first request delayed %v", reqs[0].Delay)
	}
	// First len(paths) requests cover the real tree exactly once...
	seen := map[string]bool{}
	for _, r := range reqs[:len(paths)] {
		seen[r.Target] = true
	}
	for _, p := range paths {
		if !seen[p] {
			t.Errorf("real path %s never scraped", p)
		}
	}
	// ...then enumerated guesses take over.
	for i := len(paths); i < len(reqs); i++ {
		want := fmt.Sprintf("/page-%d.html", i-len(paths)+1)
		if reqs[i].Target != want {
			t.Errorf("req %d target = %q, want %q", i, reqs[i].Target, want)
		}
	}
	for i, r := range reqs {
		if r.ClientIP != "192.0.2.66" || r.Attack != "scrape" {
			t.Fatalf("req %d = %+v", i, r)
		}
		if i > 0 && r.Delay != 100*time.Millisecond {
			t.Fatalf("req %d delay = %v", i, r.Delay)
		}
	}
	if !reflect.DeepEqual(reqs, ScrapeBurst("192.0.2.66", paths, 6, 100*time.Millisecond, 5)) {
		t.Error("same seed must give identical streams")
	}
}

func TestFlashCrowd(t *testing.T) {
	reqs := FlashCrowd(40, 8, 13)
	if len(reqs) != 40 {
		t.Fatalf("len = %d", len(reqs))
	}
	sources := map[string]bool{}
	for _, r := range reqs {
		if r.Attack != "" {
			t.Fatalf("flash-crowd request labelled %q — would poison false-positive accounting", r.Attack)
		}
		if !strings.HasPrefix(r.ClientIP, "203.0.113.") {
			t.Fatalf("unexpected source %q", r.ClientIP)
		}
		sources[r.ClientIP] = true
	}
	if len(sources) != 8 {
		t.Errorf("crowd spans %d sources, want 8", len(sources))
	}
	if !reflect.DeepEqual(reqs, FlashCrowd(40, 8, 13)) {
		t.Error("same seed must give identical streams")
	}
	if reflect.DeepEqual(reqs, FlashCrowd(40, 8, 14)) {
		t.Error("different seeds should differ")
	}
}

func TestRelabel(t *testing.T) {
	reqs := Relabel(Legit(5, 1), "probe")
	for _, r := range reqs {
		if r.Attack != "probe" {
			t.Errorf("label = %q", r.Attack)
		}
	}
	if got := Relabel(nil, "x"); len(got) != 0 {
		t.Errorf("relabel of empty stream = %v", got)
	}
}
