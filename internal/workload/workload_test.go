package workload

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLegitDeterministic(t *testing.T) {
	a := Legit(50, 7)
	b := Legit(50, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must give identical traffic")
	}
	c := Legit(50, 8)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ")
	}
	for _, r := range a {
		if r.Attack != "" {
			t.Errorf("legit request labelled %q", r.Attack)
		}
		if !strings.HasPrefix(r.ClientIP, "10.0.") {
			t.Errorf("unexpected client %q", r.ClientIP)
		}
	}
}

func TestLegitPathsServable(t *testing.T) {
	root := DocRoot()
	for _, r := range Legit(100, 1) {
		path := r.Target
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		if strings.HasPrefix(path, "/cgi-bin/") {
			continue
		}
		if _, ok := root[path]; !ok {
			t.Errorf("legit path %q not in DocRoot", path)
		}
	}
}

func TestAttackShapes(t *testing.T) {
	tests := []struct {
		req      Request
		contains string
		attack   string
	}{
		{PhfScan("1.1.1.1"), "phf", "phf"},
		{TestCGIScan("1.1.1.1"), "test-cgi", "test-cgi"},
		{SlashFlood("1.1.1.1"), "////////", "slash-flood"},
		{Nimda("1.1.1.1"), "%c0%af", "nimda"},
		{Overflow("1.1.1.1", 1200), strings.Repeat("A", 1200), "overflow"},
		{Overflow("1.1.1.1", 0), "A", "overflow"},
	}
	for _, tt := range tests {
		if !strings.Contains(tt.req.Target, tt.contains) {
			t.Errorf("%s target = %q, want substring %q", tt.attack, tt.req.Target, tt.contains)
		}
		if tt.req.Attack != tt.attack {
			t.Errorf("attack label = %q, want %q", tt.req.Attack, tt.attack)
		}
		if tt.req.ClientIP != "1.1.1.1" {
			t.Errorf("client = %q", tt.req.ClientIP)
		}
	}
}

func TestPasswordGuess(t *testing.T) {
	reqs := PasswordGuess("2.2.2.2", "root", 5)
	if len(reqs) != 5 {
		t.Fatalf("len = %d", len(reqs))
	}
	seen := map[string]bool{}
	for _, r := range reqs {
		if r.User != "root" || r.Attack != "password-guess" {
			t.Errorf("req = %+v", r)
		}
		if seen[r.Pass] {
			t.Errorf("duplicate password guess %q", r.Pass)
		}
		seen[r.Pass] = true
	}
}

func TestAttackMixDistinctSources(t *testing.T) {
	mix := AttackMix()
	if len(mix) != 5 {
		t.Fatalf("mix size = %d, want 5", len(mix))
	}
	ips := map[string]bool{}
	for _, r := range mix {
		if ips[r.ClientIP] {
			t.Errorf("duplicate attacker IP %s", r.ClientIP)
		}
		ips[r.ClientIP] = true
	}
}

func TestHTTPRequest(t *testing.T) {
	r := Request{Method: "GET", Target: "/x?y=1", ClientIP: "9.9.9.9", User: "u", Pass: "p"}
	req := r.HTTPRequest()
	if req.URL.Path != "/x" || req.URL.RawQuery != "y=1" {
		t.Errorf("url = %v", req.URL)
	}
	if req.RemoteAddr != "9.9.9.9:40000" {
		t.Errorf("remote = %q", req.RemoteAddr)
	}
	if u, p, ok := req.BasicAuth(); !ok || u != "u" || p != "p" {
		t.Errorf("basic auth = %q %q %v", u, p, ok)
	}
}

func TestInterleavePreservesStreams(t *testing.T) {
	a := []Request{{Target: "/a1"}, {Target: "/a2"}, {Target: "/a3"}}
	b := []Request{{Target: "/b1"}, {Target: "/b2"}}
	out := Interleave(3, a, b)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	var as, bs []string
	for _, r := range out {
		if strings.HasPrefix(r.Target, "/a") {
			as = append(as, r.Target)
		} else {
			bs = append(bs, r.Target)
		}
	}
	if !reflect.DeepEqual(as, []string{"/a1", "/a2", "/a3"}) {
		t.Errorf("stream a order = %v", as)
	}
	if !reflect.DeepEqual(bs, []string{"/b1", "/b2"}) {
		t.Errorf("stream b order = %v", bs)
	}
	// Determinism.
	if !reflect.DeepEqual(Interleave(3, a, b), out) {
		t.Error("same seed must interleave identically")
	}
}

// Property: interleaving never loses or duplicates requests.
func TestInterleaveConserves(t *testing.T) {
	prop := func(na, nb uint8, seed int64) bool {
		a := Legit(int(na%32), 1)
		b := Legit(int(nb%32), 2)
		out := Interleave(seed, a, b)
		return len(out) == len(a)+len(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("conservation property: %v", err)
	}
}

func TestLegitFrom(t *testing.T) {
	reqs := LegitFrom("10.9.9.9", 25, 3)
	if len(reqs) != 25 {
		t.Fatalf("len = %d", len(reqs))
	}
	for _, r := range reqs {
		if r.ClientIP != "10.9.9.9" {
			t.Fatalf("client = %q, want fixed IP", r.ClientIP)
		}
		if r.Attack != "" {
			t.Fatalf("legit request labelled %q", r.Attack)
		}
	}
	if reflect.DeepEqual(LegitFrom("10.9.9.9", 25, 3), LegitFrom("10.9.9.9", 25, 4)) {
		t.Error("different seeds should differ")
	}
}
