package ids

import "math"

// Welford is the online mean/variance accumulator (Welford's
// algorithm) shared by the anomaly detector's per-principal profiles
// and the adaptive engine's per-resource parameter-shape sketches. It
// is a plain value — callers provide their own locking.
type Welford struct {
	// N is the number of observations.
	N int `json:"n"`
	// Mean is the running mean.
	Mean float64 `json:"mean"`
	// M2 is the running sum of squared deviations.
	M2 float64 `json:"m2"`
}

// Observe folds one observation into the moments.
func (w *Welford) Observe(x float64) {
	w.N++
	delta := x - w.Mean
	w.Mean += delta / float64(w.N)
	w.M2 += delta * (x - w.Mean)
}

// Stddev returns the sample standard deviation (0 below two
// observations).
func (w *Welford) Stddev() float64 {
	if w.N < 2 {
		return 0
	}
	return math.Sqrt(w.M2 / float64(w.N-1))
}

// Z returns |x-mean|/stddev capped at max. A degenerate profile
// (stddev 0) scores max for any deviation from the mean — constant
// training data makes every deviation fully surprising.
func (w *Welford) Z(x, max float64) float64 {
	sd := w.Stddev()
	if sd > 0 {
		return math.Min(math.Abs(x-w.Mean)/sd, max)
	}
	if x != w.Mean {
		return max
	}
	return 0
}
