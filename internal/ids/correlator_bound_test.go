package ids

import (
	"testing"
	"time"
)

// TestCorrelatorBoundedMemory is the regression test for the
// unbounded-slice bug: under sustained threatening traffic the old
// implementation retained every event timestamp inside the window
// (rate x window timestamps); the rings must stay pinned at exactly
// the escalation thresholds however much traffic flows.
func TestCorrelatorBoundedMemory(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	cfg := CorrelatorConfig{
		Window:      time.Minute,
		MediumAfter: 5,
		HighAfter:   2,
		Clock:       clock,
	}
	c := NewCorrelator(NewManager(Low), cfg)

	// 200k events at 1ms spacing: all within the window at all times.
	for i := 0; i < 200_000; i++ {
		now = now.Add(time.Millisecond)
		sev := SevMedium
		if i%3 == 0 {
			sev = SevHigh
		}
		c.Observe(Report{Kind: DetectedAttack, Severity: sev})
	}

	c.mu.Lock()
	mediumCap, highCap := len(c.medium.buf), len(c.high.buf)
	c.mu.Unlock()
	if mediumCap != cfg.MediumAfter {
		t.Fatalf("medium ring holds %d timestamps, want exactly %d", mediumCap, cfg.MediumAfter)
	}
	if highCap != cfg.HighAfter {
		t.Fatalf("high ring holds %d timestamps, want exactly %d", highCap, cfg.HighAfter)
	}
	if got := c.mgr.Level(); got != High {
		t.Fatalf("sustained attack traffic left level %s, want high", got)
	}
}

// TestCorrelatorRingSemanticsMatchWindowCount proves the ring
// formulation is equivalent to counting events in the window: the
// K-th most recent event being inside the window IS count >= K.
func TestCorrelatorRingSemanticsMatchWindowCount(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	cfg := CorrelatorConfig{Window: time.Minute, MediumAfter: 3, HighAfter: 99, Clock: clock}
	c := NewCorrelator(NewManager(Low), cfg)

	r := Report{Kind: ThresholdViolation, Severity: SevMedium}
	// Two events, then a gap that pushes the first out of the window:
	// the third event must NOT escalate (only 2 in window) ...
	c.Observe(r)
	now = now.Add(10 * time.Second)
	c.Observe(r)
	now = now.Add(55 * time.Second)
	if got := c.Observe(r); got != Low {
		t.Fatalf("2 events in window escalated to %s", got)
	}
	// ... but two more quick events make 3-in-window and escalate.
	now = now.Add(time.Second)
	c.Observe(r)
	now = now.Add(time.Second)
	if got := c.Observe(r); got != Medium {
		t.Fatalf("3 events in window left level %s, want medium", got)
	}
}
