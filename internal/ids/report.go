package ids

import (
	"fmt"
	"time"
)

// ReportKind classifies the information the GAA-API reports to an IDS
// (the seven classes of paper section 3).
type ReportKind int

const (
	// IllFormedRequest: the application-level request is malformed and
	// may signal an attack (section 3, item 1).
	IllFormedRequest ReportKind = iota + 1
	// AbnormalParameters: request parameters are abnormally large or
	// violate site policy (item 2).
	AbnormalParameters
	// SensitiveAccessDenial: access to a sensitive system object was
	// denied (item 3).
	SensitiveAccessDenial
	// ThresholdViolation: a threshold condition was violated, e.g. too
	// many failed logins within a period (item 4).
	ThresholdViolation
	// DetectedAttack: an application-level attack was detected; the
	// report carries threat characteristics (item 5).
	DetectedAttack
	// UnusualBehavior: suspicious application behaviour, e.g. an
	// anomalous access pattern (item 6).
	UnusualBehavior
	// LegitimatePattern: a legitimate access pattern usable for
	// profile building (item 7).
	LegitimatePattern
)

// String returns a stable symbolic name for logs and metrics.
func (k ReportKind) String() string {
	switch k {
	case IllFormedRequest:
		return "ill_formed_request"
	case AbnormalParameters:
		return "abnormal_parameters"
	case SensitiveAccessDenial:
		return "sensitive_access_denial"
	case ThresholdViolation:
		return "threshold_violation"
	case DetectedAttack:
		return "detected_attack"
	case UnusualBehavior:
		return "unusual_behavior"
	case LegitimatePattern:
		return "legitimate_pattern"
	default:
		return fmt.Sprintf("ReportKind(%d)", int(k))
	}
}

// Severity grades detected attacks.
type Severity int

const (
	// SevInfo events are informational.
	SevInfo Severity = iota + 1
	// SevMedium events indicate suspicious activity.
	SevMedium
	// SevHigh events indicate an ongoing attack.
	SevHigh
)

// String returns "info", "medium" or "high".
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevMedium:
		return "medium"
	case SevHigh:
		return "high"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Report is one GAA-API → IDS report. "The report may include threat
// characteristics, such as attack type and severity, confidence value
// and defensive recommendations" (paper section 3).
type Report struct {
	Time       time.Time
	Kind       ReportKind
	Source     string // reporting application, e.g. "apache"
	ClientIP   string
	User       string
	Object     string // protected object involved
	Signature  string // matching attack signature name, if any
	Severity   Severity
	Confidence float64 // 0..1
	Info       string
	// Recommendation is the defensive recommendation, e.g.
	// "blacklist source address".
	Recommendation string
}
