package ids

import (
	"context"
	"sync"
	"time"
)

// CorrelatorConfig tunes threat-level escalation.
type CorrelatorConfig struct {
	// Window is the sliding window over which events are counted.
	Window time.Duration
	// MediumAfter is the number of medium-or-worse attack events
	// within Window that raises the level to Medium.
	MediumAfter int
	// HighAfter is the number of high-severity attack events within
	// Window that raises the level to High.
	HighAfter int
	// Decay lowers the level one step after a quiet period of this
	// length; zero disables decay.
	Decay time.Duration
	// Clock overrides the time source (tests); nil means time.Now.
	Clock func() time.Time
}

// DefaultCorrelatorConfig mirrors a conservative deployment: one
// high-severity event within a minute marks the system under attack;
// three suspicious events raise it to Medium.
func DefaultCorrelatorConfig() CorrelatorConfig {
	return CorrelatorConfig{
		Window:      time.Minute,
		MediumAfter: 3,
		HighAfter:   1,
		Decay:       5 * time.Minute,
	}
}

// Correlator consumes GAA-API reports and adapts the system threat
// level — the host-IDS role of paper sections 3 and 7.1. It is safe
// for concurrent use.
//
// Memory is bounded: escalation only asks whether the K most recent
// qualifying events all fall within the window, so each severity tier
// keeps exactly its threshold's worth of timestamps in a fixed ring —
// sustained traffic cannot grow the working set (it used to retain
// every event timestamp inside the window).
type Correlator struct {
	cfg     CorrelatorConfig
	mgr     *Manager
	clock   func() time.Time
	mu      sync.Mutex
	medium  eventRing // last MediumAfter medium-or-worse event times
	high    eventRing // last HighAfter high-severity event times
	lastHit time.Time
}

// eventRing holds the most recent K event timestamps in place.
type eventRing struct {
	buf  []time.Time
	head int // next write position
	n    int // filled entries (<= len(buf))
}

// add records one event time, overwriting the oldest when full.
func (r *eventRing) add(t time.Time) {
	r.buf[r.head] = t
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// full reports whether the ring holds its capacity of events with the
// oldest retained event at or after cutoff — i.e. at least K
// qualifying events landed within the window.
func (r *eventRing) full(cutoff time.Time) bool {
	if r.n < len(r.buf) {
		return false
	}
	oldest := r.buf[r.head] // next overwrite slot == oldest when full
	return !oldest.Before(cutoff)
}

// NewCorrelator returns a correlator driving mgr.
func NewCorrelator(mgr *Manager, cfg CorrelatorConfig) *Correlator {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.MediumAfter <= 0 {
		cfg.MediumAfter = 3
	}
	if cfg.HighAfter <= 0 {
		cfg.HighAfter = 1
	}
	return &Correlator{
		cfg:    cfg,
		mgr:    mgr,
		clock:  clock,
		medium: eventRing{buf: make([]time.Time, cfg.MediumAfter)},
		high:   eventRing{buf: make([]time.Time, cfg.HighAfter)},
	}
}

// Observe processes one report synchronously and returns the threat
// level after processing.
func (c *Correlator) Observe(r Report) Level {
	if !isThreatening(r.Kind) {
		c.maybeDecay()
		return c.mgr.Level()
	}
	now := c.clock()
	c.mu.Lock()
	c.lastHit = now
	cutoff := now.Add(-c.cfg.Window)
	if r.Severity >= SevMedium {
		c.medium.add(now)
	}
	if r.Severity >= SevHigh {
		c.high.add(now)
	}
	escalateHigh := c.high.full(cutoff)
	escalateMedium := c.medium.full(cutoff)
	c.mu.Unlock()

	switch {
	case escalateHigh:
		c.mgr.Escalate(High)
	case escalateMedium:
		c.mgr.Escalate(Medium)
	}
	return c.mgr.Level()
}

// maybeDecay lowers the threat level one step after a quiet period.
func (c *Correlator) maybeDecay() {
	if c.cfg.Decay <= 0 {
		return
	}
	c.mu.Lock()
	quietSince := c.lastHit
	c.mu.Unlock()
	if quietSince.IsZero() || c.clock().Sub(quietSince) < c.cfg.Decay {
		return
	}
	cur := c.mgr.Level()
	if cur > Low {
		c.mgr.Set(cur - 1)
		c.mu.Lock()
		c.lastHit = c.clock() // restart the quiet period for the next step
		c.mu.Unlock()
	}
}

// Run consumes reports from sub until ctx is cancelled or the
// subscription is closed. Call in a goroutine; it returns when done.
func (c *Correlator) Run(ctx context.Context, sub *Subscription) {
	for {
		select {
		case <-ctx.Done():
			return
		case r, ok := <-sub.C:
			if !ok {
				return
			}
			c.Observe(r)
		}
	}
}

// isThreatening reports whether the report kind contributes to threat
// escalation.
func isThreatening(k ReportKind) bool {
	switch k {
	case IllFormedRequest, AbnormalParameters, SensitiveAccessDenial,
		ThresholdViolation, DetectedAttack, UnusualBehavior:
		return true
	default:
		return false
	}
}
