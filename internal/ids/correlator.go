package ids

import (
	"context"
	"sync"
	"time"
)

// CorrelatorConfig tunes threat-level escalation.
type CorrelatorConfig struct {
	// Window is the sliding window over which events are counted.
	Window time.Duration
	// MediumAfter is the number of medium-or-worse attack events
	// within Window that raises the level to Medium.
	MediumAfter int
	// HighAfter is the number of high-severity attack events within
	// Window that raises the level to High.
	HighAfter int
	// Decay lowers the level one step after a quiet period of this
	// length; zero disables decay.
	Decay time.Duration
	// Clock overrides the time source (tests); nil means time.Now.
	Clock func() time.Time
}

// DefaultCorrelatorConfig mirrors a conservative deployment: one
// high-severity event within a minute marks the system under attack;
// three suspicious events raise it to Medium.
func DefaultCorrelatorConfig() CorrelatorConfig {
	return CorrelatorConfig{
		Window:      time.Minute,
		MediumAfter: 3,
		HighAfter:   1,
		Decay:       5 * time.Minute,
	}
}

// Correlator consumes GAA-API reports and adapts the system threat
// level — the host-IDS role of paper sections 3 and 7.1. It is safe
// for concurrent use.
type Correlator struct {
	cfg     CorrelatorConfig
	mgr     *Manager
	clock   func() time.Time
	mu      sync.Mutex
	medium  []time.Time // medium-or-worse event times within window
	high    []time.Time // high-severity event times within window
	lastHit time.Time
}

// NewCorrelator returns a correlator driving mgr.
func NewCorrelator(mgr *Manager, cfg CorrelatorConfig) *Correlator {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.MediumAfter <= 0 {
		cfg.MediumAfter = 3
	}
	if cfg.HighAfter <= 0 {
		cfg.HighAfter = 1
	}
	return &Correlator{cfg: cfg, mgr: mgr, clock: clock}
}

// Observe processes one report synchronously and returns the threat
// level after processing.
func (c *Correlator) Observe(r Report) Level {
	if !isThreatening(r.Kind) {
		c.maybeDecay()
		return c.mgr.Level()
	}
	now := c.clock()
	c.mu.Lock()
	c.lastHit = now
	cutoff := now.Add(-c.cfg.Window)
	if r.Severity >= SevMedium {
		c.medium = trimBefore(append(c.medium, now), cutoff)
	}
	if r.Severity >= SevHigh {
		c.high = trimBefore(append(c.high, now), cutoff)
	}
	nMedium, nHigh := len(c.medium), len(c.high)
	c.mu.Unlock()

	switch {
	case nHigh >= c.cfg.HighAfter:
		c.mgr.Escalate(High)
	case nMedium >= c.cfg.MediumAfter:
		c.mgr.Escalate(Medium)
	}
	return c.mgr.Level()
}

// maybeDecay lowers the threat level one step after a quiet period.
func (c *Correlator) maybeDecay() {
	if c.cfg.Decay <= 0 {
		return
	}
	c.mu.Lock()
	quietSince := c.lastHit
	c.mu.Unlock()
	if quietSince.IsZero() || c.clock().Sub(quietSince) < c.cfg.Decay {
		return
	}
	cur := c.mgr.Level()
	if cur > Low {
		c.mgr.Set(cur - 1)
		c.mu.Lock()
		c.lastHit = c.clock() // restart the quiet period for the next step
		c.mu.Unlock()
	}
}

// Run consumes reports from sub until ctx is cancelled or the
// subscription is closed. Call in a goroutine; it returns when done.
func (c *Correlator) Run(ctx context.Context, sub *Subscription) {
	for {
		select {
		case <-ctx.Done():
			return
		case r, ok := <-sub.C:
			if !ok {
				return
			}
			c.Observe(r)
		}
	}
}

// isThreatening reports whether the report kind contributes to threat
// escalation.
func isThreatening(k ReportKind) bool {
	switch k {
	case IllFormedRequest, AbnormalParameters, SensitiveAccessDenial,
		ThresholdViolation, DetectedAttack, UnusualBehavior:
		return true
	default:
		return false
	}
}

// trimBefore drops timestamps before cutoff (the slice is in
// chronological order).
func trimBefore(ts []time.Time, cutoff time.Time) []time.Time {
	i := 0
	for i < len(ts) && ts[i].Before(cutoff) {
		i++
	}
	return append(ts[:0], ts[i:]...)
}
