package ids

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func attackReport(sev Severity) Report {
	return Report{Kind: DetectedAttack, Severity: sev, Signature: "phf"}
}

func TestCorrelatorHighSeverityEscalatesImmediately(t *testing.T) {
	clk := newFakeClock()
	mgr := NewManager(Low)
	cfg := DefaultCorrelatorConfig()
	cfg.Clock = clk.Now
	c := NewCorrelator(mgr, cfg)

	if got := c.Observe(attackReport(SevHigh)); got != High {
		t.Errorf("level after high-severity attack = %v, want high", got)
	}
}

func TestCorrelatorMediumNeedsRepeats(t *testing.T) {
	clk := newFakeClock()
	mgr := NewManager(Low)
	cfg := DefaultCorrelatorConfig()
	cfg.Clock = clk.Now
	c := NewCorrelator(mgr, cfg)

	c.Observe(attackReport(SevMedium))
	if mgr.Level() != Low {
		t.Fatalf("level after 1 medium event = %v, want low", mgr.Level())
	}
	c.Observe(attackReport(SevMedium))
	c.Observe(attackReport(SevMedium))
	if mgr.Level() != Medium {
		t.Errorf("level after 3 medium events = %v, want medium", mgr.Level())
	}
}

func TestCorrelatorWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	mgr := NewManager(Low)
	cfg := CorrelatorConfig{Window: time.Minute, MediumAfter: 2, HighAfter: 10, Clock: clk.Now}
	c := NewCorrelator(mgr, cfg)

	c.Observe(attackReport(SevMedium))
	clk.Advance(2 * time.Minute) // first event leaves the window
	c.Observe(attackReport(SevMedium))
	if mgr.Level() != Low {
		t.Errorf("level = %v, want low (events outside window must not accumulate)", mgr.Level())
	}
}

func TestCorrelatorDecay(t *testing.T) {
	clk := newFakeClock()
	mgr := NewManager(Low)
	cfg := CorrelatorConfig{Window: time.Minute, MediumAfter: 10, HighAfter: 1, Decay: 5 * time.Minute, Clock: clk.Now}
	c := NewCorrelator(mgr, cfg)

	c.Observe(attackReport(SevHigh))
	if mgr.Level() != High {
		t.Fatalf("level = %v, want high", mgr.Level())
	}
	clk.Advance(6 * time.Minute)
	c.Observe(Report{Kind: LegitimatePattern}) // quiet traffic triggers decay check
	if mgr.Level() != Medium {
		t.Errorf("level after quiet period = %v, want medium (one-step decay)", mgr.Level())
	}
	clk.Advance(6 * time.Minute)
	c.Observe(Report{Kind: LegitimatePattern})
	if mgr.Level() != Low {
		t.Errorf("level after second quiet period = %v, want low", mgr.Level())
	}
}

func TestCorrelatorLegitimateTrafficNeverEscalates(t *testing.T) {
	clk := newFakeClock()
	mgr := NewManager(Low)
	cfg := DefaultCorrelatorConfig()
	cfg.Clock = clk.Now
	c := NewCorrelator(mgr, cfg)
	for i := 0; i < 100; i++ {
		c.Observe(Report{Kind: LegitimatePattern, Severity: SevInfo})
	}
	if mgr.Level() != Low {
		t.Errorf("level = %v, want low", mgr.Level())
	}
}

func TestCorrelatorDefaultsApplied(t *testing.T) {
	mgr := NewManager(Low)
	c := NewCorrelator(mgr, CorrelatorConfig{})
	if c.cfg.Window <= 0 || c.cfg.MediumAfter <= 0 || c.cfg.HighAfter <= 0 {
		t.Errorf("zero config not defaulted: %+v", c.cfg)
	}
}

func TestIsThreatening(t *testing.T) {
	if isThreatening(LegitimatePattern) {
		t.Error("legitimate_pattern must not be threatening")
	}
	for _, k := range []ReportKind{IllFormedRequest, AbnormalParameters, SensitiveAccessDenial, ThresholdViolation, DetectedAttack, UnusualBehavior} {
		if !isThreatening(k) {
			t.Errorf("%v should be threatening", k)
		}
	}
}
