package ids

import (
	"sync"

	"gaaapi/internal/eacl"
)

// NetworkIDS is the network-based IDS the GAA-API queries before
// applying pro-active countermeasures: "The GAA-API can request a
// network-based IDS to report, for example, indications of address
// spoofing. ... This is particularly important for applying pro-active
// countermeasures, such as updating firewall rules and dropping
// connections" (paper section 3) — because "an automated response to
// attacks can be used by an intruder in order to stage a DoS (the
// intruder could have impersonated a host)" (section 1).
type NetworkIDS interface {
	// SpoofIndication reports whether the address shows signs of
	// being spoofed, with a confidence in [0, 1].
	SpoofIndication(ip string) (spoofed bool, confidence float64)
}

// StaticSpoofList is a NetworkIDS simulation: addresses matching any
// of the configured '*'-glob or exact patterns are reported as spoofed.
// In a real deployment this would be fed by TTL/queue anomaly analysis
// on the wire; the interface boundary is what the paper specifies.
type StaticSpoofList struct {
	mu         sync.RWMutex
	patterns   []string
	confidence float64
}

var _ NetworkIDS = (*StaticSpoofList)(nil)

// NewStaticSpoofList returns a list reporting the given patterns as
// spoofed with the given confidence (clamped to [0,1], default 0.9
// when non-positive).
func NewStaticSpoofList(confidence float64, patterns ...string) *StaticSpoofList {
	if confidence <= 0 {
		confidence = 0.9
	}
	if confidence > 1 {
		confidence = 1
	}
	return &StaticSpoofList{patterns: append([]string(nil), patterns...), confidence: confidence}
}

// Add registers another spoofed-source pattern.
func (s *StaticSpoofList) Add(pattern string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.patterns = append(s.patterns, pattern)
}

// SpoofIndication implements NetworkIDS.
func (s *StaticSpoofList) SpoofIndication(ip string) (bool, float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.patterns {
		if eacl.Glob(p, ip) {
			return true, s.confidence
		}
	}
	return false, 0
}
