package ids

import (
	"fmt"
	"testing"
	"testing/quick"
)

func trainedDetector(t *testing.T) *Detector {
	t.Helper()
	d := NewDetector(DefaultAnomalyConfig())
	// Typical behaviour: alice browses three pages with query lengths
	// around 20±4.
	paths := []string{"/index.html", "/docs/a.html", "/docs/b.html"}
	lengths := []int{16, 18, 20, 22, 24}
	for i := 0; i < 30; i++ {
		d.Train("alice", paths[i%len(paths)], lengths[i%len(lengths)])
	}
	return d
}

func TestAnomalyUntrainedScoresZero(t *testing.T) {
	d := NewDetector(DefaultAnomalyConfig())
	if s := d.Score("nobody", "/x", 10000); s != 0 {
		t.Errorf("untrained score = %v, want 0", s)
	}
	d.Train("bob", "/a", 10)
	if s := d.Score("bob", "/weird", 9999); s != 0 {
		t.Errorf("under-trained score = %v, want 0 (below MinTraining)", s)
	}
}

func TestAnomalyNormalTrafficScoresLow(t *testing.T) {
	d := trainedDetector(t)
	if s := d.Score("alice", "/index.html", 20); s >= d.Threshold() {
		t.Errorf("normal request score = %v, want < threshold %v", s, d.Threshold())
	}
	if d.Unusual("alice", "/docs/a.html", 18) {
		t.Error("typical request flagged unusual")
	}
}

func TestAnomalyNewPathAndHugeInputFlagged(t *testing.T) {
	d := trainedDetector(t)
	// A buffer-overflow style request: never-seen path, enormous input.
	s := d.Score("alice", "/cgi-bin/phf", 1500)
	if s < d.Threshold() {
		t.Errorf("attack-like request score = %v, want >= %v", s, d.Threshold())
	}
	if !d.Unusual("alice", "/cgi-bin/phf", 1500) {
		t.Error("attack-like request not flagged unusual")
	}
}

func TestAnomalyNewPathAloneBelowThreshold(t *testing.T) {
	d := trainedDetector(t)
	// Visiting one new page with a typical input length is mildly
	// surprising but not an alarm.
	if d.Unusual("alice", "/docs/new.html", 20) {
		t.Error("single new path with normal length should not alarm")
	}
}

func TestAnomalyConstantLengthProfile(t *testing.T) {
	d := NewDetector(DefaultAnomalyConfig())
	for i := 0; i < 25; i++ {
		d.Train("bot", "/status", 0)
	}
	if s := d.Score("bot", "/status", 0); s != 0 {
		t.Errorf("identical observation score = %v, want 0", s)
	}
	if !d.Unusual("bot", "/status", 500) {
		t.Error("deviation from constant profile should alarm")
	}
}

func TestAnomalyTrainedCount(t *testing.T) {
	d := NewDetector(DefaultAnomalyConfig())
	for i := 0; i < 7; i++ {
		d.Train("u", "/p", i)
	}
	if n := d.Trained("u"); n != 7 {
		t.Errorf("Trained = %d, want 7", n)
	}
	if n := d.Trained("ghost"); n != 0 {
		t.Errorf("Trained(ghost) = %d, want 0", n)
	}
}

func TestAnomalyConfigDefaults(t *testing.T) {
	d := NewDetector(AnomalyConfig{})
	def := DefaultAnomalyConfig()
	if d.cfg.MinTraining != def.MinTraining || d.cfg.Threshold != def.Threshold {
		t.Errorf("zero config not defaulted: %+v", d.cfg)
	}
}

// Property: scores are never negative and training is monotone in count.
func TestAnomalyScoreNonNegative(t *testing.T) {
	d := trainedDetector(t)
	prop := func(pathSeed uint8, length uint16) bool {
		path := fmt.Sprintf("/p%d", pathSeed)
		return d.Score("alice", path, int(length)) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("non-negative score property: %v", err)
	}
}

// Welford moments must match the naive two-pass computation.
func TestProfileMomentsMatchNaive(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		p := &profile{paths: make(map[string]int)}
		var sum float64
		for _, v := range raw {
			p.observe("/x", int(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		naiveVar := ss / float64(len(raw)-1)
		gotSD := p.len.Stddev()
		wantSD := 0.0
		if naiveVar > 0 {
			wantSD = sqrtApprox(naiveVar)
		}
		return approxEqual(p.len.Mean, mean, 1e-9) && approxEqual(gotSD*gotSD, wantSD*wantSD, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("Welford property: %v", err)
	}
}

func approxEqual(a, b, eps float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if b > 1 || b < -1 {
		if b < 0 {
			scale = -b
		} else {
			scale = b
		}
	}
	return diff <= eps*scale
}

func sqrtApprox(x float64) float64 {
	// Newton iterations are plenty for test comparison.
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}
