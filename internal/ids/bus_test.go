package ids

import (
	"context"
	"testing"
	"time"
)

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(4)
	defer sub.Cancel()

	b.Publish(Report{Kind: DetectedAttack, Signature: "phf"})
	select {
	case r := <-sub.C:
		if r.Signature != "phf" {
			t.Errorf("report = %+v", r)
		}
	default:
		t.Fatal("no report delivered")
	}
	if b.Published() != 1 {
		t.Errorf("Published() = %d, want 1", b.Published())
	}
}

func TestBusNonBlockingDrop(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1)
	defer sub.Cancel()

	b.Publish(Report{Info: "1"})
	b.Publish(Report{Info: "2"}) // buffer full: dropped
	if got := sub.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
	r := <-sub.C
	if r.Info != "1" {
		t.Errorf("delivered report = %+v, want the first", r)
	}
}

func TestBusCancelClosesChannel(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1)
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.C; ok {
		t.Error("channel not closed after Cancel")
	}
	if b.Subscribers() != 0 {
		t.Errorf("Subscribers() = %d, want 0", b.Subscribers())
	}
	b.Publish(Report{}) // must not panic
}

func TestBusMultipleSubscribers(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe(2)
	s2 := b.Subscribe(2)
	defer s1.Cancel()
	defer s2.Cancel()
	b.Publish(Report{Info: "x"})
	if (<-s1.C).Info != "x" || (<-s2.C).Info != "x" {
		t.Error("fan-out failed")
	}
}

func TestBusMinimumBuffer(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(0)
	defer sub.Cancel()
	b.Publish(Report{Info: "only"})
	select {
	case r := <-sub.C:
		if r.Info != "only" {
			t.Errorf("report = %+v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("buffer-0 subscription should be clamped to 1")
	}
}

func TestCorrelatorRunConsumesUntilCancel(t *testing.T) {
	mgr := NewManager(Low)
	c := NewCorrelator(mgr, DefaultCorrelatorConfig())
	b := NewBus()
	sub := b.Subscribe(8)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, sub)
	}()

	b.Publish(Report{Kind: DetectedAttack, Severity: SevHigh})
	deadline := time.After(2 * time.Second)
	for mgr.Level() != High {
		select {
		case <-deadline:
			t.Fatal("correlator did not escalate to high")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on context cancel")
	}
}

func TestCorrelatorRunStopsOnClosedSubscription(t *testing.T) {
	mgr := NewManager(Low)
	c := NewCorrelator(mgr, DefaultCorrelatorConfig())
	b := NewBus()
	sub := b.Subscribe(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(context.Background(), sub)
	}()
	sub.Cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop when subscription closed")
	}
}
