package ids

import (
	"sync"
)

// AnomalyConfig tunes the anomaly detector.
type AnomalyConfig struct {
	// MinTraining is the number of observations a profile needs before
	// it scores requests; untrained profiles return score 0.
	MinTraining int
	// NewPathWeight is the score contribution of a never-seen path.
	NewPathWeight float64
	// LengthZMax caps the z-score contribution of the input length.
	LengthZMax float64
	// Threshold is the score at or above which a request is unusual.
	Threshold float64
}

// DefaultAnomalyConfig returns the tuning used by the experiments.
func DefaultAnomalyConfig() AnomalyConfig {
	return AnomalyConfig{
		MinTraining:   20,
		NewPathWeight: 1.0,
		LengthZMax:    4.0,
		Threshold:     3.0,
	}
}

// profile accumulates per-principal behaviour: the set of paths the
// principal accesses and running moments of the request input length
// (the shared Welford core).
type profile struct {
	n     int
	paths map[string]int
	len   Welford
}

func (p *profile) observe(path string, inputLen int) {
	p.n++
	p.paths[path]++
	p.len.Observe(float64(inputLen))
}

// Detector implements the paper's section 9 future work: "a simple
// profile building module and anomaly detector ... to support
// anomaly-based intrusion detection in addition to the signature-
// based". Profiles are keyed by principal (user identity or client
// address). It is safe for concurrent use.
type Detector struct {
	cfg      AnomalyConfig
	mu       sync.RWMutex
	profiles map[string]*profile
}

// NewDetector returns an empty detector.
func NewDetector(cfg AnomalyConfig) *Detector {
	if cfg.MinTraining <= 0 {
		cfg.MinTraining = DefaultAnomalyConfig().MinTraining
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultAnomalyConfig().Threshold
	}
	if cfg.NewPathWeight <= 0 {
		cfg.NewPathWeight = DefaultAnomalyConfig().NewPathWeight
	}
	if cfg.LengthZMax <= 0 {
		cfg.LengthZMax = DefaultAnomalyConfig().LengthZMax
	}
	return &Detector{cfg: cfg, profiles: make(map[string]*profile)}
}

// Train records one legitimate observation for principal. The paper's
// item 7 (legitimate access request patterns) feeds this: "This
// information can be used to derive profiles that describe typical
// behavior of users".
func (d *Detector) Train(principal, path string, inputLen int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.profiles[principal]
	if !ok {
		p = &profile{paths: make(map[string]int)}
		d.profiles[principal] = p
	}
	p.observe(path, inputLen)
}

// Score rates how anomalous the observation is for principal: 0 is
// normal; contributions come from never-seen paths and input lengths
// far from the trained mean. An untrained or unknown principal scores 0
// (no basis for suspicion — the signature engine covers that case).
func (d *Detector) Score(principal, path string, inputLen int) float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.profiles[principal]
	if !ok || p.n < d.cfg.MinTraining {
		return 0
	}
	score := 0.0
	if p.paths[path] == 0 {
		score += d.cfg.NewPathWeight
	}
	score += p.len.Z(float64(inputLen), d.cfg.LengthZMax)
	return score
}

// Unusual reports whether the observation scores at or above the
// configured threshold.
func (d *Detector) Unusual(principal, path string, inputLen int) bool {
	return d.Score(principal, path, inputLen) >= d.cfg.Threshold
}

// Trained returns the number of observations recorded for principal.
func (d *Detector) Trained(principal string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if p, ok := d.profiles[principal]; ok {
		return p.n
	}
	return 0
}

// Threshold exposes the configured anomaly threshold.
func (d *Detector) Threshold() float64 {
	return d.cfg.Threshold
}
