package ids

import (
	"sync"
	"sync/atomic"
)

// Bus is the policy-controlled subscription channel between the GAA-API
// and IDS components (paper section 9: "a subscription-based
// communication channel to allow GAA-API and IDSs to communicate").
// Publishing never blocks: a subscriber whose buffer is full loses the
// report and its drop counter is incremented.
type Bus struct {
	mu        sync.RWMutex
	subs      map[int]*Subscription
	next      int
	published atomic.Uint64
}

// Subscription is one bus subscriber.
type Subscription struct {
	// C delivers published reports.
	C <-chan Report

	ch      chan Report
	dropped atomic.Uint64
	cancel  func()
}

// Dropped reports how many reports this subscriber lost to a full
// buffer.
func (s *Subscription) Dropped() uint64 {
	return s.dropped.Load()
}

// Cancel releases the subscription and closes C.
func (s *Subscription) Cancel() {
	s.cancel()
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*Subscription)}
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1).
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Report, buffer)
	sub := &Subscription{C: ch, ch: ch}
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = sub
	b.mu.Unlock()
	var once sync.Once
	sub.cancel = func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, id)
			b.mu.Unlock()
			close(ch)
		})
	}
	return sub
}

// Publish delivers r to every subscriber without blocking.
func (b *Bus) Publish(r Report) {
	b.published.Add(1)
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, sub := range b.subs {
		select {
		case sub.ch <- r:
		default:
			sub.dropped.Add(1)
		}
	}
}

// Published returns the total number of published reports.
func (b *Bus) Published() uint64 {
	return b.published.Load()
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}
