package ids

import (
	"sync"
	"testing"
)

func TestParseLevel(t *testing.T) {
	tests := []struct {
		in      string
		want    Level
		wantErr bool
	}{
		{"low", Low, false},
		{"MEDIUM", Medium, false},
		{"High", High, false},
		{"critical", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseLevel(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("ParseLevel(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("Level.String mismatch")
	}
	if Level(7).String() != "Level(7)" {
		t.Error("unknown Level.String mismatch")
	}
}

func TestLevelOrdering(t *testing.T) {
	if !(Low < Medium && Medium < High) {
		t.Error("levels must be ordered low < medium < high")
	}
}

func TestManagerSetAndEscalate(t *testing.T) {
	m := NewManager(Low)
	if m.Level() != Low {
		t.Fatalf("initial level = %v", m.Level())
	}
	if !m.Escalate(Medium) {
		t.Error("Escalate(Medium) from Low should change")
	}
	if m.Escalate(Low) {
		t.Error("Escalate(Low) from Medium must not lower")
	}
	if m.Level() != Medium {
		t.Errorf("level = %v, want medium", m.Level())
	}
	m.Set(Low)
	if m.Level() != Low {
		t.Errorf("Set(Low): level = %v", m.Level())
	}
}

func TestManagerSubscription(t *testing.T) {
	m := NewManager(Low)
	ch, cancel := m.Subscribe()
	defer cancel()

	m.Set(High)
	select {
	case got := <-ch:
		if got != High {
			t.Errorf("received %v, want high", got)
		}
	default:
		t.Fatal("no notification received")
	}

	// Latest-wins: two rapid changes leave only the last value.
	m.Set(Low)
	m.Set(Medium)
	select {
	case got := <-ch:
		if got != Medium {
			t.Errorf("received %v, want medium (latest wins)", got)
		}
	default:
		t.Fatal("no notification after rapid changes")
	}
}

func TestManagerSubscribeCancel(t *testing.T) {
	m := NewManager(Low)
	ch, cancel := m.Subscribe()
	cancel()
	m.Set(High)
	select {
	case <-ch:
		t.Error("cancelled subscription still receiving")
	default:
	}
}

func TestManagerSetSameLevelNoNotify(t *testing.T) {
	m := NewManager(Medium)
	ch, cancel := m.Subscribe()
	defer cancel()
	m.Set(Medium)
	select {
	case <-ch:
		t.Error("notification for no-op Set")
	default:
	}
}

func TestManagerConcurrency(t *testing.T) {
	m := NewManager(Low)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Escalate(Level(i%3 + 1))
			_ = m.Level()
		}(i)
	}
	wg.Wait()
	if l := m.Level(); l < Low || l > High {
		t.Errorf("level out of range after concurrent use: %v", l)
	}
}
