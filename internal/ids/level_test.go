package ids

import (
	"sync"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	tests := []struct {
		in      string
		want    Level
		wantErr bool
	}{
		{"low", Low, false},
		{"MEDIUM", Medium, false},
		{"High", High, false},
		{"critical", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseLevel(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("ParseLevel(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("Level.String mismatch")
	}
	if Level(7).String() != "Level(7)" {
		t.Error("unknown Level.String mismatch")
	}
}

func TestLevelOrdering(t *testing.T) {
	if !(Low < Medium && Medium < High) {
		t.Error("levels must be ordered low < medium < high")
	}
}

func TestManagerSetAndEscalate(t *testing.T) {
	m := NewManager(Low)
	if m.Level() != Low {
		t.Fatalf("initial level = %v", m.Level())
	}
	if !m.Escalate(Medium) {
		t.Error("Escalate(Medium) from Low should change")
	}
	if m.Escalate(Low) {
		t.Error("Escalate(Low) from Medium must not lower")
	}
	if m.Level() != Medium {
		t.Errorf("level = %v, want medium", m.Level())
	}
	m.Set(Low)
	if m.Level() != Low {
		t.Errorf("Set(Low): level = %v", m.Level())
	}
}

func TestManagerSubscription(t *testing.T) {
	m := NewManager(Low)
	ch, cancel := m.Subscribe()
	defer cancel()

	m.Set(High)
	select {
	case got := <-ch:
		if got != High {
			t.Errorf("received %v, want high", got)
		}
	default:
		t.Fatal("no notification received")
	}

	// Latest-wins: two rapid changes leave only the last value.
	m.Set(Low)
	m.Set(Medium)
	select {
	case got := <-ch:
		if got != Medium {
			t.Errorf("received %v, want medium (latest wins)", got)
		}
	default:
		t.Fatal("no notification after rapid changes")
	}
}

func TestManagerSubscribeCancel(t *testing.T) {
	m := NewManager(Low)
	ch, cancel := m.Subscribe()
	cancel()
	m.Set(High)
	// Cancel closes the channel (so consumer loops terminate); no level
	// may be delivered after it.
	if l, ok := <-ch; ok {
		t.Errorf("cancelled subscription still receiving: %v", l)
	}
}

func TestManagerSetSameLevelNoNotify(t *testing.T) {
	m := NewManager(Medium)
	ch, cancel := m.Subscribe()
	defer cancel()
	m.Set(Medium)
	select {
	case <-ch:
		t.Error("notification for no-op Set")
	default:
	}
}

func TestManagerConcurrency(t *testing.T) {
	m := NewManager(Low)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Escalate(Level(i%3 + 1))
			_ = m.Level()
		}(i)
	}
	wg.Wait()
	if l := m.Level(); l < Low || l > High {
		t.Errorf("level out of range after concurrent use: %v", l)
	}
}

// TestSubscribeCancelUnderConcurrentSet is the subscription leak/race
// test: cancels racing concurrent Set calls must never deadlock, never
// panic (send on closed channel), and must close each channel exactly
// once so a range over it terminates.
func TestSubscribeCancelUnderConcurrentSet(t *testing.T) {
	m := NewManager(Low)
	stop := make(chan struct{})
	var setters sync.WaitGroup
	for w := 0; w < 4; w++ {
		setters.Add(1)
		go func(w int) {
			defer setters.Done()
			levels := []Level{Low, Medium, High}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Set(levels[(i+w)%len(levels)])
			}
		}(w)
	}

	var subs sync.WaitGroup
	for i := 0; i < 200; i++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			ch, cancel := m.Subscribe()
			// Consume a little, then cancel while Sets are in flight.
			for j := 0; j < 3; j++ {
				select {
				case <-ch:
				default:
				}
			}
			cancel()
			cancel() // idempotent
			// The channel must be closed: this range must terminate.
			for range ch {
			}
		}()
	}

	done := make(chan struct{})
	go func() { subs.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("subscription cancels deadlocked under concurrent Set")
	}
	close(stop)
	setters.Wait()

	// No leaked subscriptions: a fresh Set must not block on remnants.
	m.Set(Low)
	m.Set(High)
}

func TestManagerHistoryAndRestore(t *testing.T) {
	at := time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)
	m := NewManager(Low, WithManagerClock(func() time.Time { return at }))
	m.Set(Medium)
	m.Set(High)
	h := m.History()
	if len(h) != 2 || h[0].From != Low || h[0].To != Medium || h[1].To != High {
		t.Fatalf("history = %+v", h)
	}
	if !h[0].At.Equal(at) {
		t.Fatalf("transition stamped %v, want %v", h[0].At, at)
	}

	// Restore must set level + history without journaling, and still
	// notify subscribers.
	var journaled []Transition
	m2 := NewManager(Low)
	m2.SetJournal(func(tr Transition) { journaled = append(journaled, tr) })
	ch, cancel := m2.Subscribe()
	defer cancel()
	m2.Restore(High, h)
	if m2.Level() != High {
		t.Fatalf("restored level = %v, want High", m2.Level())
	}
	if got := m2.History(); len(got) != 2 {
		t.Fatalf("restored history = %+v", got)
	}
	if len(journaled) != 0 {
		t.Fatalf("Restore was journaled: %+v (would loop replay back into the WAL)", journaled)
	}
	select {
	case l := <-ch:
		if l != High {
			t.Fatalf("subscriber got %v, want High", l)
		}
	case <-time.After(time.Second):
		t.Fatal("Restore did not notify subscribers")
	}
	// A journaled Set after restore extends the restored history.
	m2.Set(Low)
	if len(journaled) != 1 || journaled[0].From != High || journaled[0].To != Low {
		t.Fatalf("post-restore Set journaled %+v", journaled)
	}
}

func TestHistoryCapBounded(t *testing.T) {
	m := NewManager(Low)
	levels := []Level{Medium, High, Low}
	for i := 0; i < historyCap*2; i++ {
		m.Set(levels[i%len(levels)])
	}
	if got := len(m.History()); got != historyCap {
		t.Fatalf("history grew to %d, want cap %d", got, historyCap)
	}
}

func TestMergeIsMaxWins(t *testing.T) {
	m := NewManager(Medium)
	var journaled int
	m.SetJournal(func(Transition) { journaled++ })

	// A lower or equal remote level never de-escalates.
	if _, ok := m.Merge(Transition{From: High, To: Low}); ok {
		t.Fatal("merge de-escalated")
	}
	if _, ok := m.Merge(Transition{From: Low, To: Medium}); ok {
		t.Fatal("merge of equal level reported change")
	}
	if m.Level() != Medium {
		t.Fatalf("level = %v after no-op merges", m.Level())
	}

	// A higher remote level pulls the local level up; the recorded
	// transition's From is rewritten to the local level.
	tr, ok := m.Merge(Transition{From: Low, To: High})
	if !ok || tr.From != Medium || tr.To != High {
		t.Fatalf("merge = %+v, %v", tr, ok)
	}
	if m.Level() != High {
		t.Fatalf("level = %v after merge", m.Level())
	}
	hist := m.History()
	if len(hist) == 0 || hist[len(hist)-1].To != High {
		t.Fatalf("merge not recorded in history: %v", hist)
	}
	if journaled != 0 {
		t.Fatalf("Merge invoked the journal %d times; replication would loop", journaled)
	}
}

func TestMergeNotifiesSubscribers(t *testing.T) {
	m := NewManager(Low)
	ch, cancel := m.Subscribe()
	defer cancel()
	if _, ok := m.Merge(Transition{To: High}); !ok {
		t.Fatal("merge failed")
	}
	select {
	case got := <-ch:
		if got != High {
			t.Fatalf("subscriber saw %v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber not notified of merged escalation")
	}
}
