package ids

import (
	"context"
	"sort"
	"sync"
)

// ValueSink receives runtime constraint values; gaa.Values implements
// it. The tuner writes through this narrow interface so package ids
// stays independent of the policy engine.
type ValueSink interface {
	Set(name, value string)
}

// ValueTuner adjusts runtime constraint values as the system threat
// level changes — the paper's section 3: "The API can request
// information for adjusting policies, such as values for thresholds,
// times and locations. The values may depend on many factors and can
// be determined by a host-based IDS and communicated to the GAA-API."
//
// Each threat level maps to a set of (name, value) pairs pushed into
// the sink whenever that level becomes current.
type ValueTuner struct {
	sink   ValueSink
	mu     sync.Mutex
	levels map[Level]map[string]string
}

// NewValueTuner builds a tuner writing to sink.
func NewValueTuner(sink ValueSink) *ValueTuner {
	return &ValueTuner{sink: sink, levels: make(map[Level]map[string]string)}
}

// SetLevelValues declares the constraint values for a threat level.
func (t *ValueTuner) SetLevelValues(level Level, values map[string]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := make(map[string]string, len(values))
	for k, v := range values {
		cp[k] = v
	}
	t.levels[level] = cp
}

// Apply pushes the values for level into the sink (deterministic
// order, for reproducible traces).
func (t *ValueTuner) Apply(level Level) {
	t.mu.Lock()
	values := t.levels[level]
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	t.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		t.mu.Lock()
		v := t.levels[level][name]
		t.mu.Unlock()
		t.sink.Set(name, v)
	}
}

// Run applies values on every threat-level change delivered on ch
// until ctx is cancelled or ch closes. Subscribe the channel with
// Manager.Subscribe and run in a goroutine.
func (t *ValueTuner) Run(ctx context.Context, ch <-chan Level) {
	for {
		select {
		case <-ctx.Done():
			return
		case level, ok := <-ch:
			if !ok {
				return
			}
			t.Apply(level)
		}
	}
}
