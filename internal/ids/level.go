// Package ids implements the intrusion-detection substrate the GAA-API
// interacts with (paper section 3): a system threat-level manager, an
// attack-signature database, the seven classes of GAA-to-IDS reports, a
// subscription-based event bus (paper section 9 future work), a
// correlator that adapts the threat level to observed events, and an
// anomaly detector built from per-principal behaviour profiles.
package ids

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is the system threat level supplied by the IDS (paper section
// 7.1): "low threat level means normal system operational state, medium
// threat level indicates suspicious behavior and high threat level
// means that the system is under attack".
type Level int

const (
	// Low is the normal operational state.
	Low Level = iota + 1
	// Medium indicates suspicious behaviour.
	Medium
	// High means the system is under attack.
	High
)

// String returns "low", "medium" or "high".
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel converts a symbolic threat level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "low":
		return Low, nil
	case "medium":
		return Medium, nil
	case "high":
		return High, nil
	default:
		return 0, fmt.Errorf("unknown threat level %q", s)
	}
}

// LevelProvider supplies the current threat level; condition evaluators
// depend on this narrow interface rather than the full Manager.
type LevelProvider interface {
	Level() Level
}

// Transition is one recorded threat-level change, the escalation
// history persistence restores across restarts.
type Transition struct {
	// From and To are the levels before and after the change.
	From Level `json:"from"`
	To   Level `json:"to"`
	// At is when the change happened.
	At time.Time `json:"at"`
}

// historyCap bounds the retained escalation history.
const historyCap = 64

// Manager holds the current system threat level and notifies
// subscribers of changes. It is safe for concurrent use.
type Manager struct {
	clock func() time.Time

	// transitions counts every level change since process start —
	// monotonic, unlike the capped history (observability gauge feed).
	transitions atomic.Uint64

	mu      sync.RWMutex
	level   Level
	history []Transition
	subs    map[int]*levelSub
	next    int
	journal func(Transition)
}

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithManagerClock overrides the time source used to stamp the
// escalation history (tests, persistence).
func WithManagerClock(now func() time.Time) ManagerOption {
	return func(m *Manager) { m.clock = now }
}

// NewManager returns a manager starting at the given level (use Low for
// normal operation).
func NewManager(initial Level, opts ...ManagerOption) *Manager {
	m := &Manager{level: initial, subs: make(map[int]*levelSub), clock: time.Now}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Level implements LevelProvider.
func (m *Manager) Level() Level {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.level
}

// Transitions returns the number of level changes observed since the
// process started (including restores). Unlike len(History()), which
// is capped, this counter is monotonic.
func (m *Manager) Transitions() uint64 {
	return m.transitions.Load()
}

// History returns the recorded level transitions, oldest first (bounded
// to the most recent changes).
func (m *Manager) History() []Transition {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Transition, len(m.history))
	copy(out, m.history)
	return out
}

// SetJournal installs a hook receiving every level transition, for
// persistence. Restore* calls are not journaled.
func (m *Manager) SetJournal(fn func(Transition)) {
	m.mu.Lock()
	m.journal = fn
	m.mu.Unlock()
}

// Restore sets the level and history without notifying the journal;
// subscribers still observe the change. It is how persistence replays
// recovered state.
func (m *Manager) Restore(level Level, history []Transition) {
	m.mu.Lock()
	if len(history) > historyCap {
		history = history[len(history)-historyCap:]
	}
	m.history = append(m.history[:0], history...)
	m.mu.Unlock()
	m.set(level, false)
}

// Set changes the threat level and notifies subscribers. Setting the
// current level is a no-op.
func (m *Manager) Set(l Level) { m.set(l, true) }

func (m *Manager) set(l Level, journaled bool) {
	m.mu.Lock()
	if m.level == l {
		m.mu.Unlock()
		return
	}
	tr := Transition{From: m.level, To: l, At: m.clock()}
	m.level = l
	m.transitions.Add(1)
	if journaled {
		m.history = append(m.history, tr)
		if len(m.history) > historyCap {
			m.history = m.history[len(m.history)-historyCap:]
		}
	}
	journal := m.journal
	subs := make([]*levelSub, 0, len(m.subs))
	for _, sub := range m.subs {
		subs = append(subs, sub)
	}
	m.mu.Unlock()
	if journaled && journal != nil {
		journal(tr)
	}
	for _, sub := range subs {
		sub.send(l)
	}
}

// Merge applies a threat transition replicated from another node with
// max-wins semantics: the level only rises (a peer under attack pulls
// the fleet up; de-escalation stays a local decision). The merged
// transition — From rewritten to the local level — is recorded in the
// history and subscribers are notified, but the journal hook is NOT
// invoked: the caller persists the merged record itself so the mirror
// never echoes it back into the cluster. Reports the recorded
// transition and whether the level changed.
func (m *Manager) Merge(tr Transition) (Transition, bool) {
	m.mu.Lock()
	if tr.To <= m.level {
		m.mu.Unlock()
		return Transition{}, false
	}
	tr.From = m.level
	m.level = tr.To
	m.transitions.Add(1)
	m.history = append(m.history, tr)
	if len(m.history) > historyCap {
		m.history = m.history[len(m.history)-historyCap:]
	}
	subs := make([]*levelSub, 0, len(m.subs))
	for _, sub := range m.subs {
		subs = append(subs, sub)
	}
	m.mu.Unlock()
	for _, sub := range subs {
		sub.send(tr.To)
	}
	return tr, true
}

// Escalate raises the level to l if it is higher than the current one
// and reports whether a change occurred.
func (m *Manager) Escalate(l Level) bool {
	m.mu.RLock()
	cur := m.level
	m.mu.RUnlock()
	if l <= cur {
		return false
	}
	m.Set(l)
	return true
}

// levelSub guards one subscription channel: sends and the single close
// serialize on the sub's own mutex, so a cancel racing a Set can never
// panic a send on a closed channel, and the channel is closed exactly
// once.
type levelSub struct {
	mu     sync.Mutex
	ch     chan Level
	closed bool
}

// send delivers latest-wins: a pending stale value is dropped first.
func (s *levelSub) send(l Level) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case <-s.ch:
	default:
	}
	select {
	case s.ch <- l:
	default:
	}
}

// close drains and closes the channel exactly once.
func (s *levelSub) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	select {
	case <-s.ch:
	default:
	}
	close(s.ch)
}

// Subscribe returns a channel receiving level changes (latest value
// wins; intermediate values may be skipped) and a cancel function that
// must be called to release the subscription. Cancel is idempotent and
// safe against concurrent Set calls: the channel is drained and closed
// exactly once, and no send can race the close.
func (m *Manager) Subscribe() (<-chan Level, func()) {
	sub := &levelSub{ch: make(chan Level, 1)}
	m.mu.Lock()
	id := m.next
	m.next++
	m.subs[id] = sub
	m.mu.Unlock()
	cancel := func() {
		m.mu.Lock()
		delete(m.subs, id)
		m.mu.Unlock()
		sub.close()
	}
	return sub.ch, cancel
}
