// Package ids implements the intrusion-detection substrate the GAA-API
// interacts with (paper section 3): a system threat-level manager, an
// attack-signature database, the seven classes of GAA-to-IDS reports, a
// subscription-based event bus (paper section 9 future work), a
// correlator that adapts the threat level to observed events, and an
// anomaly detector built from per-principal behaviour profiles.
package ids

import (
	"fmt"
	"strings"
	"sync"
)

// Level is the system threat level supplied by the IDS (paper section
// 7.1): "low threat level means normal system operational state, medium
// threat level indicates suspicious behavior and high threat level
// means that the system is under attack".
type Level int

const (
	// Low is the normal operational state.
	Low Level = iota + 1
	// Medium indicates suspicious behaviour.
	Medium
	// High means the system is under attack.
	High
)

// String returns "low", "medium" or "high".
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel converts a symbolic threat level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "low":
		return Low, nil
	case "medium":
		return Medium, nil
	case "high":
		return High, nil
	default:
		return 0, fmt.Errorf("unknown threat level %q", s)
	}
}

// LevelProvider supplies the current threat level; condition evaluators
// depend on this narrow interface rather than the full Manager.
type LevelProvider interface {
	Level() Level
}

// Manager holds the current system threat level and notifies
// subscribers of changes. It is safe for concurrent use.
type Manager struct {
	mu    sync.RWMutex
	level Level
	subs  map[int]chan Level
	next  int
}

// NewManager returns a manager starting at the given level (use Low for
// normal operation).
func NewManager(initial Level) *Manager {
	return &Manager{level: initial, subs: make(map[int]chan Level)}
}

// Level implements LevelProvider.
func (m *Manager) Level() Level {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.level
}

// Set changes the threat level and notifies subscribers. Setting the
// current level is a no-op.
func (m *Manager) Set(l Level) {
	m.mu.Lock()
	if m.level == l {
		m.mu.Unlock()
		return
	}
	m.level = l
	subs := make([]chan Level, 0, len(m.subs))
	for _, ch := range m.subs {
		subs = append(subs, ch)
	}
	m.mu.Unlock()
	for _, ch := range subs {
		// Latest-wins: drop a pending stale value, then send.
		select {
		case <-ch:
		default:
		}
		select {
		case ch <- l:
		default:
		}
	}
}

// Escalate raises the level to l if it is higher than the current one
// and reports whether a change occurred.
func (m *Manager) Escalate(l Level) bool {
	m.mu.RLock()
	cur := m.level
	m.mu.RUnlock()
	if l <= cur {
		return false
	}
	m.Set(l)
	return true
}

// Subscribe returns a channel receiving level changes (latest value
// wins; intermediate values may be skipped) and a cancel function that
// must be called to release the subscription.
func (m *Manager) Subscribe() (<-chan Level, func()) {
	ch := make(chan Level, 1)
	m.mu.Lock()
	id := m.next
	m.next++
	m.subs[id] = ch
	m.mu.Unlock()
	cancel := func() {
		m.mu.Lock()
		delete(m.subs, id)
		m.mu.Unlock()
	}
	return ch, cancel
}
