package adaptive

import (
	"math"
	"testing"
	"time"

	"gaaapi/internal/ids"
)

// FuzzAdaptiveScore drives the engine with an arbitrary sample stream
// decoded from the fuzz input and checks the safety invariants the
// design guarantees by construction:
//
//  1. every score and the global signal stay finite;
//  2. the instantaneous score is monotone in report severity at every
//     engine state the stream reaches;
//  3. level transitions are legal — lowers step exactly one level and
//     never inside the dwell window of the previous transition
//     (raises may jump and reset the dwell).
//
// Each sample costs 6 input bytes:
// dt, source-id, path-id, input-len, query-shape, flags.
func FuzzAdaptiveScore(f *testing.F) {
	// Seeds: calm browsing, a scan burst, an oscillating mix, and a
	// same-instant burst (dt=0 exercises the decay edge case).
	f.Add([]byte{8, 1, 1, 2, 0, 0, 8, 1, 2, 2, 0, 0, 8, 1, 3, 2, 0, 0})
	f.Add([]byte{1, 9, 11, 250, 3, 7, 1, 9, 12, 250, 3, 7, 1, 9, 13, 250, 3, 7, 1, 9, 14, 250, 3, 7})
	f.Add([]byte{8, 1, 1, 2, 0, 0, 1, 9, 11, 250, 3, 7, 200, 1, 2, 2, 0, 0, 1, 9, 12, 250, 3, 7})
	f.Add([]byte{0, 9, 1, 250, 3, 7, 0, 9, 2, 250, 3, 7, 0, 9, 3, 250, 3, 7})

	paths := []string{
		"/index.html", "/docs/a.html", "/docs/b.html", "/login",
		"/cgi-bin/phf", "/admin/config", "/search", "/img/logo.png",
		"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h",
	}
	queries := []string{"", "q=books", "cmd=%3Bcat%20%2Fetc%2Fpasswd", "x='<script>'"}

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Defaults()
		cfg.Synchronous = true
		cfg.HalfLife = 5 * time.Second
		cfg.Dwell = 30 * time.Second
		cfg.MaxSources = 8
		cfg.MaxResources = 16
		mgr := ids.NewManager(ids.Low)
		e := New(cfg, mgr, nil) // score-only: blocks exercised in unit tests

		now := time.Unix(1_051_779_600, 0) // the campaign epoch
		prevLevel := ids.Low
		lastTrans := time.Time{}

		for len(data) >= 6 {
			chunk := data[:6]
			data = data[6:]
			now = now.Add(time.Duration(chunk[0]) * 100 * time.Millisecond)
			s := Sample{
				Time:     now,
				Source:   string(rune('a' + chunk[1]%8)),
				Path:     paths[int(chunk[2])%len(paths)],
				Query:    queries[int(chunk[4])%len(queries)],
				InputLen: int(chunk[3]) * 8,
				Denied:   chunk[5]&4 != 0,
				Severity: ids.Severity(chunk[5] & 3),
			}

			// Invariant 2 on the pre-sample state: severity sweep.
			e.mu.Lock()
			src := e.source(s.Source)
			res := e.resource(s.Path)
			prev := -1.0
			for sev := ids.Severity(0); sev <= ids.SevHigh; sev++ {
				probe := s
				probe.Severity = sev
				got := e.scoreLocked(src, res, probe)
				if math.IsNaN(got) || math.IsInf(got, 0) {
					e.mu.Unlock()
					t.Fatalf("non-finite score %v at severity %d", got, sev)
				}
				if got < prev {
					e.mu.Unlock()
					t.Fatalf("severity monotonicity broken: sev %d scored %v < %v", sev, got, prev)
				}
				prev = got
			}
			e.mu.Unlock()

			e.ObserveRequest(s)

			// Invariant 1 on the post-sample state.
			if sig := e.Signal(); math.IsNaN(sig) || math.IsInf(sig, 0) {
				t.Fatalf("non-finite signal %v", sig)
			}
			if sc := e.SourceScore(s.Source); math.IsNaN(sc) || math.IsInf(sc, 0) {
				t.Fatalf("non-finite source score %v", sc)
			}

			// Invariant 3: transition legality.
			lvl := e.SignalLevel()
			if lvl != prevLevel {
				if lvl < prevLevel {
					if lvl != prevLevel-1 {
						t.Fatalf("lower skipped a level: %s -> %s", prevLevel, lvl)
					}
					if !lastTrans.IsZero() && now.Sub(lastTrans) < cfg.Dwell {
						t.Fatalf("lower inside the dwell window: %s after %v", lvl, now.Sub(lastTrans))
					}
				}
				lastTrans = now
				prevLevel = lvl
			}
			// The engine's raises must be visible in the shared manager.
			if mgr.Level() < lvl {
				t.Fatalf("manager level %s below engine level %s", mgr.Level(), lvl)
			}
		}
	})
}
