package adaptive

import (
	"fmt"
	"math"
	"testing"
	"time"

	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
)

var epoch = time.Date(2003, 5, 1, 9, 0, 0, 0, time.UTC)

// testConfig is a small, fast-reacting tuning shared by the tests.
func testConfig() Config {
	cfg := Defaults()
	cfg.Synchronous = true
	cfg.HalfLife = 10 * time.Second
	cfg.MinSamples = 5
	cfg.Dwell = time.Minute
	return cfg
}

func newTestEngine(cfg Config) (*Engine, *ids.Manager, *netblock.Set) {
	mgr := ids.NewManager(ids.Low)
	blocks := netblock.NewSet(netblock.WithClock(func() time.Time { return epoch }))
	return New(cfg, mgr, blocks), mgr, blocks
}

// browse feeds n clean, slow, successful requests from source.
func browse(e *Engine, source string, n int, start time.Time) time.Time {
	paths := []string{"/index.html", "/docs/a.html", "/docs/b.html"}
	t := start
	for i := 0; i < n; i++ {
		t = t.Add(2 * time.Second)
		e.ObserveRequest(Sample{
			Time: t, Source: source, User: "alice",
			Path: paths[i%len(paths)], InputLen: 20,
		})
	}
	return t
}

func TestNormalTrafficStaysLow(t *testing.T) {
	e, mgr, blocks := newTestEngine(testConfig())
	browse(e, "10.0.0.1", 200, epoch)
	if got := mgr.Level(); got != ids.Low {
		t.Fatalf("level after normal traffic = %s, want low", got)
	}
	if blocks.Len() != 0 {
		t.Fatalf("normal traffic produced %d blocks", blocks.Len())
	}
	if s := e.SourceScore("10.0.0.1"); s >= e.cfg.BlockScore {
		t.Fatalf("normal source score %v >= block threshold %v", s, e.cfg.BlockScore)
	}
}

// attack feeds a fast scanning burst of denied, high-severity requests.
func attack(e *Engine, source string, n int, start time.Time) time.Time {
	t := start
	for i := 0; i < n; i++ {
		t = t.Add(50 * time.Millisecond)
		e.ObserveRequest(Sample{
			Time: t, Source: source,
			Path:     fmt.Sprintf("/cgi-bin/probe%d", i),
			Query:    "cmd=%3Bcat%20%2Fetc%2Fpasswd",
			InputLen: 900, Denied: true, Severity: ids.SevHigh,
		})
	}
	return t
}

func TestScanningSourceBlockedBeforeGlobalEscalation(t *testing.T) {
	e, mgr, blocks := newTestEngine(testConfig())
	end := browse(e, "10.0.0.1", 50, epoch)

	// Feed the attacker one sample at a time; the source must be
	// blocked, and at the instant it is blocked the global level must
	// still be Low — per-source enforcement leads global escalation.
	t0 := end
	blockedAt := -1
	for i := 0; i < 40; i++ {
		t0 = attack(e, "203.0.113.99", 1, t0)
		if blocks.Blocked("203.0.113.99") {
			blockedAt = i
			break
		}
	}
	if blockedAt < 0 {
		t.Fatalf("attacker never blocked; score=%v signal=%v", e.SourceScore("203.0.113.99"), e.Signal())
	}
	if got := mgr.Level(); got != ids.Low {
		t.Fatalf("global level already %s when source was blocked (after %d attack samples)", got, blockedAt+1)
	}
}

func TestSustainedAttackRaisesLevel(t *testing.T) {
	e, mgr, _ := newTestEngine(testConfig())
	end := browse(e, "10.0.0.1", 50, epoch)
	attack(e, "203.0.113.99", 200, end)
	if got := mgr.Level(); got < ids.Medium {
		t.Fatalf("sustained attack left level %s (signal %v)", got, e.Signal())
	}
	if e.SignalLevel() != mgr.Level() {
		t.Fatalf("engine level %s != manager level %s", e.SignalLevel(), mgr.Level())
	}
}

func TestHysteresisDwellBlocksImmediateLower(t *testing.T) {
	e, mgr, _ := newTestEngine(testConfig())
	end := browse(e, "10.0.0.1", 50, epoch)
	end = attack(e, "203.0.113.99", 200, end)
	raised := mgr.Level()
	if raised < ids.Medium {
		t.Fatalf("attack did not raise level (signal %v)", e.Signal())
	}
	transAfterRaise := e.Stats().Raises + e.Stats().Lowers

	// Quiet traffic immediately after: signal drops below the lower
	// threshold, but the dwell has not elapsed — level must hold.
	end = browse(e, "10.0.0.2", 20, end)
	if got := mgr.Level(); got != raised {
		t.Fatalf("level dropped to %s before dwell elapsed", got)
	}

	// After the dwell passes with calm traffic the level steps down.
	end = browse(e, "10.0.0.2", 60, end.Add(e.cfg.Dwell))
	if got := e.SignalLevel(); got >= raised {
		t.Fatalf("level still %s after dwell + calm traffic (signal %v)", got, e.Signal())
	}
	if moves := e.Stats().Raises + e.Stats().Lowers - transAfterRaise; moves > 2 {
		t.Fatalf("%d level moves during calm-down, hysteresis should allow at most 2", moves)
	}
}

func TestLowerRespectsExternalEscalation(t *testing.T) {
	cfg := testConfig()
	cfg.HighRaise = 100 // engine caps at Medium; High is operator-only here
	e, mgr, _ := newTestEngine(cfg)
	end := browse(e, "10.0.0.1", 50, epoch)
	end = attack(e, "203.0.113.99", 200, end)
	if e.SignalLevel() != ids.Medium {
		t.Fatalf("attack did not raise engine level to medium")
	}
	// An operator (or the signature correlator) escalates above the
	// engine's view; the engine's later lower must not undercut it.
	mgr.Escalate(ids.High)
	browse(e, "10.0.0.2", 120, end.Add(e.cfg.Dwell))
	if got := mgr.Level(); got != ids.High {
		t.Fatalf("engine undercut external escalation: level %s", got)
	}
}

func TestMergedEvidenceTriggersBlock(t *testing.T) {
	cfg := testConfig()
	cfg.MinSamples = 10
	e, _, blocks := newTestEngine(cfg)
	browse(e, "10.0.0.1", 50, epoch)

	// Locally only 3 samples — under the evidence floor even with a
	// hot score. A peer's score event supplies the missing evidence.
	t0 := epoch.Add(time.Hour)
	attack(e, "203.0.113.99", 3, t0)
	if blocks.Blocked("203.0.113.99") {
		t.Fatal("blocked below the evidence floor")
	}
	changed := e.ApplyScore(ScoreEvent{
		Source: "203.0.113.99", Score: 2.5, Samples: 9,
		At: t0.Add(time.Second),
	})
	if !changed {
		t.Fatal("merge reported no change")
	}
	if !blocks.Blocked("203.0.113.99") {
		t.Fatal("merged evidence did not trigger the block")
	}
}

func TestApplyScoreMergeRules(t *testing.T) {
	e, _, _ := newTestEngine(testConfig())
	e.ApplyScore(ScoreEvent{Source: "s", Score: 1.0, Samples: 2, At: epoch})
	// Lower remote score must not win; samples still accumulate.
	e.ApplyScore(ScoreEvent{Source: "s", Score: 0.4, Samples: 3, At: epoch.Add(time.Second)})
	scores := e.Scores()
	if len(scores) != 1 || scores[0].Score != 1.0 || scores[0].Samples != 5 {
		t.Fatalf("merge rules violated: %+v", scores)
	}
	// Snapshot restore: totals are max-wins, re-applying is a no-op.
	if e.RestoreScore(ScoreEvent{Source: "s", Score: 0.9, Samples: 5, At: epoch}) {
		t.Fatal("idempotent snapshot restore reported a change")
	}
	if e.RestoreScore(ScoreEvent{Source: "s", Score: 0.9, Samples: 8, At: epoch}) != true {
		t.Fatal("snapshot with more evidence should merge")
	}
	if got := e.Scores()[0].Samples; got != 8 {
		t.Fatalf("snapshot samples merged additively: got %d, want 8 (max-wins)", got)
	}
}

func TestProfileCheckpointMerge(t *testing.T) {
	e, _, _ := newTestEngine(testConfig())
	browse(e, "10.0.0.1", 60, epoch) // trains /index.html & friends

	profiles := e.Profiles()
	if len(profiles) == 0 {
		t.Fatal("no trained profiles after browsing")
	}
	cp := profiles[0]

	// A fresh engine adopting the checkpoint scores like the original.
	e2, _, _ := newTestEngine(testConfig())
	if !e2.ApplyProfile(cp) {
		t.Fatal("fresh engine rejected checkpoint")
	}
	got := e2.Profiles()
	if len(got) != 1 || got[0].N != cp.N || got[0].MeanLen != cp.MeanLen {
		t.Fatalf("checkpoint did not restore: %+v vs %+v", got, cp)
	}
	// A stale (less-trained) checkpoint must not regress the profile.
	stale := cp
	stale.N = cp.N - 1
	if e2.ApplyProfile(stale) {
		t.Fatal("stale checkpoint overwrote a better-trained profile")
	}
}

func TestCheckpointJournalEmitted(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointEvery = 10
	e, _, _ := newTestEngine(cfg)
	var checkpoints []ProfileCheckpoint
	var events []ScoreEvent
	e.SetJournal(
		func(ev ScoreEvent) { events = append(events, ev) },
		func(cp ProfileCheckpoint) { checkpoints = append(checkpoints, cp) },
	)
	end := browse(e, "10.0.0.1", 40, epoch)
	if len(checkpoints) == 0 {
		t.Fatal("no profile checkpoints journaled after 40 trained samples")
	}
	attack(e, "203.0.113.99", 30, end)
	if len(events) == 0 {
		t.Fatal("no score events journaled during an attack")
	}
	var deltaSum int
	for _, ev := range events {
		if ev.Source != "203.0.113.99" {
			continue
		}
		deltaSum += ev.Samples
	}
	if deltaSum > 30 {
		t.Fatalf("score-event sample deltas sum to %d > 30 observed", deltaSum)
	}
}

func TestBoundedProfileMaps(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSources = 8
	cfg.MaxResources = 8
	e, _, _ := newTestEngine(cfg)
	t0 := epoch
	for i := 0; i < 1000; i++ {
		t0 = t0.Add(10 * time.Millisecond)
		e.ObserveRequest(Sample{
			Time: t0, Source: fmt.Sprintf("10.1.%d.%d", i/250, i%250),
			Path: fmt.Sprintf("/page%d", i), InputLen: 20,
		})
	}
	st := e.Stats()
	if st.Sources > 8 || st.Resources > 8 {
		t.Fatalf("profile maps exceeded caps: %d sources, %d resources", st.Sources, st.Resources)
	}
	if st.Samples != 1000 {
		t.Fatalf("samples counter = %d, want 1000", st.Samples)
	}
}

func TestAsyncModeDeliversAndCloses(t *testing.T) {
	cfg := testConfig()
	cfg.Synchronous = false
	cfg.Buffer = 64
	e, _, _ := newTestEngine(cfg)
	for i := 0; i < 32; i++ {
		e.ObserveRequest(Sample{Time: epoch.Add(time.Duration(i) * time.Second), Source: "10.0.0.1", Path: "/a", InputLen: 10})
	}
	e.Close() // drains the channel before returning
	st := e.Stats()
	if st.Samples+st.Dropped != 32 {
		t.Fatalf("samples %d + dropped %d != 32", st.Samples, st.Dropped)
	}
	if st.Samples == 0 {
		t.Fatal("async worker processed nothing")
	}
}

func TestScoreFiniteAndSeverityMonotone(t *testing.T) {
	e, _, _ := newTestEngine(testConfig())
	end := browse(e, "10.0.0.1", 50, epoch)
	base := Sample{Time: end.Add(time.Second), Source: "10.9.9.9", Path: "/index.html", Query: "q='<x>'", InputLen: 500, Denied: true}
	e.mu.Lock()
	src := e.source(base.Source)
	res := e.resource(base.Path)
	prev := -1.0
	for sev := ids.Severity(0); sev <= ids.SevHigh; sev++ {
		s := base
		s.Severity = sev
		got := e.scoreLocked(src, res, s)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			e.mu.Unlock()
			t.Fatalf("score not finite at severity %d: %v", sev, got)
		}
		if got < prev {
			e.mu.Unlock()
			t.Fatalf("score not monotone in severity: sev %d scored %v < %v", sev, got, prev)
		}
		prev = got
	}
	e.mu.Unlock()
}
