// Package adaptive is the self-adaptive threat-scoring engine: it
// learns per-resource and per-source request profiles online from
// streaming statistics and closes the loop the paper leaves open —
// instead of an operator hand-setting the tri-level threat model, a
// continuous anomaly signal drives it, with hysteresis so the level
// cannot flap, and per-source scores feed the netblock layer ahead of
// any global escalation (ROADMAP item 1; Guyet et al., "Self-adaptive
// web intrusion detection system").
//
// The engine is fed one Sample per authorization decision. In
// production the feed is asynchronous — ObserveRequest is a
// non-blocking enqueue with the same drop-counting contract as the
// IDS event bus, and a background worker does the sketch updates, so
// the serving hot path never pays for profile maintenance. Campaign
// and test deployments set Config.Synchronous to process samples
// inline, which makes the whole engine a deterministic function of
// the sample stream (every decay, score and level transition is
// computed from sample timestamps, never from the wall clock).
//
// Profile features per source: request rate (sliding EWMA over a
// decaying event counter), error ratio (EWMA of the denial
// indicator), and path entropy over a bounded path histogram — a
// scanner walking many distinct paths scores high where a human
// browsing a handful scores low. Per resource: input-length moments
// (the shared ids.Welford core) and a charset-class histogram of the
// path+query bytes, the parameter-shape sketch that catches encoded
// and quote-heavy payloads against resources trained on clean ones.
package adaptive

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
)

// Sample is one request observation: what the guard saw and how the
// authorization phase answered.
type Sample struct {
	// Time is the request instant (campaign simulated time or wall
	// clock); every decay computation keys off it.
	Time time.Time
	// Source is the client address.
	Source string
	// User is the authenticated principal ("" anonymous).
	User string
	// Path is the request path, Query the raw query string.
	Path  string
	Query string
	// InputLen is the operation input length.
	InputLen int
	// Denied reports whether the authorization decision was No.
	Denied bool
	// Severity is the worst IDS report severity the request triggered
	// (0 when it triggered none).
	Severity ids.Severity
}

// Config tunes the engine. The zero value is unusable; use Defaults
// and override fields.
type Config struct {
	// HalfLife is the decay half-life of the sliding rates, per-source
	// scores and the global signal.
	HalfLife time.Duration
	// MinTraining is the number of observations a resource profile
	// needs before its shape sketch contributes to scoring.
	MinTraining int
	// MinSamples is the evidence floor (local + merged remote samples)
	// before a source may be blocked.
	MinSamples int

	// Weights of the score components; each component is normalized
	// into [0,1] before weighting, so the score is bounded by their sum.
	RateWeight     float64
	ErrorWeight    float64
	EntropyWeight  float64
	ShapeWeight    float64
	SeverityWeight float64
	// RateRef is the per-source request rate (req/s) at which the rate
	// component reaches 0.5.
	RateRef float64
	// EntropyRef is the path entropy (bits) at which the entropy
	// component reaches 0.5.
	EntropyRef float64

	// Hysteresis: the signal must reach a Raise threshold to lift the
	// level and fall to the (lower) Lower threshold to drop it, and a
	// drop additionally waits out Dwell since the last transition.
	// MediumRaise > MediumLower and HighRaise > HighLower.
	MediumRaise, MediumLower float64
	HighRaise, HighLower     float64
	Dwell                    time.Duration

	// BlockScore is the per-source score at which the source is
	// blocked; BlockFor is the block duration.
	BlockScore float64
	BlockFor   time.Duration

	// MaxSources / MaxResources bound the profile maps; the
	// least-interesting entry is evicted past the cap.
	MaxSources   int
	MaxResources int
	// CheckpointEvery journals a profile checkpoint after this many
	// training observations on a resource (0: never).
	CheckpointEvery int
	// ScoreEventDelta journals a per-source score event whenever the
	// score moved this far from the last journaled value (0: only on
	// blocks).
	ScoreEventDelta float64

	// Buffer is the async sample queue depth (ignored when
	// Synchronous).
	Buffer int
	// Synchronous processes samples inline on the caller — the
	// deterministic mode campaigns and fuzzing use.
	Synchronous bool
}

// Defaults returns the tuning the demo deployment and experiments use.
func Defaults() Config {
	return Config{
		HalfLife:        30 * time.Second,
		MinTraining:     20,
		MinSamples:      8,
		RateWeight:      0.8,
		ErrorWeight:     1.2,
		EntropyWeight:   0.6,
		ShapeWeight:     0.8,
		SeverityWeight:  1.0,
		RateRef:         10,
		EntropyRef:      3,
		MediumRaise:     0.9,
		MediumLower:     0.45,
		HighRaise:       1.6,
		HighLower:       0.8,
		Dwell:           2 * time.Minute,
		BlockScore:      1.5,
		BlockFor:        10 * time.Minute,
		MaxSources:      4096,
		MaxResources:    1024,
		CheckpointEvery: 128,
		ScoreEventDelta: 0.5,
		Buffer:          1024,
	}
}

// charset classes of the parameter-shape sketch.
const (
	classLower = iota
	classUpper
	classDigit
	classSep     // '/', '.', '-', '_'
	classEscape  // '%' — URL-encoding and overlong-UTF8 probes
	classSpecial // quotes, angles, separators attackers lean on
	classOther
	nClasses
)

func byteClass(b byte) int {
	switch {
	case b >= 'a' && b <= 'z':
		return classLower
	case b >= 'A' && b <= 'Z':
		return classUpper
	case b >= '0' && b <= '9':
		return classDigit
	case b == '/' || b == '.' || b == '-' || b == '_':
		return classSep
	case b == '%':
		return classEscape
	case b == '\'' || b == '"' || b == '<' || b == '>' || b == ';' ||
		b == '|' || b == '&' || b == '`' || b == '\\':
		return classSpecial
	default:
		return classOther
	}
}

// maxSourcePaths bounds each source's path histogram; entropy above
// this many distinct paths saturates anyway.
const maxSourcePaths = 32

// sourceProfile is the per-source behaviour sketch.
type sourceProfile struct {
	n      int     // local samples
	merged int     // samples merged from peers (additive)
	rate   float64 // decaying event counter (rate = rate*ln2/halflife)
	err    float64 // EWMA of the denial indicator
	paths  map[string]int
	total  int     // sum of path counts
	score  float64 // current anomaly score (decays between samples)
	last   time.Time
	// journaled / journaledN track the score and sample count last
	// emitted as a score event, so events carry sample deltas.
	journaled  float64
	journaledN int
	blocked    bool
}

// resourceProfile is the per-resource (path) request-shape baseline.
type resourceProfile struct {
	n       int
	length  ids.Welford
	classes [nClasses]float64 // accumulated class distribution mass
	dirty   int               // training observations since last checkpoint
}

// Engine holds the live profiles and drives the threat manager and
// block set. All state mutations happen under mu; the async mode
// funnels samples through a single worker.
type Engine struct {
	cfg    Config
	threat *ids.Manager
	blocks *netblock.Set

	mu        sync.Mutex
	sources   map[string]*sourceProfile
	resources map[string]*resourceProfile
	signal    float64 // smoothed global anomaly signal
	sigLast   time.Time
	level     ids.Level
	lastTrans time.Time

	journalScore   func(ScoreEvent)
	journalProfile func(ProfileCheckpoint)

	samples      atomic.Uint64
	dropped      atomic.Uint64
	sourceBlocks atomic.Uint64
	raises       atomic.Uint64
	lowers       atomic.Uint64

	ch   chan Sample
	done chan struct{}
}

// New builds an engine. threat and blocks may be nil (score-only
// mode, used by the fuzz harness). In asynchronous mode the worker
// starts immediately; Close stops it.
func New(cfg Config, threat *ids.Manager, blocks *netblock.Set) *Engine {
	d := Defaults()
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = d.HalfLife
	}
	if cfg.MinTraining <= 0 {
		cfg.MinTraining = d.MinTraining
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = d.MinSamples
	}
	if cfg.RateRef <= 0 {
		cfg.RateRef = d.RateRef
	}
	if cfg.EntropyRef <= 0 {
		cfg.EntropyRef = d.EntropyRef
	}
	if cfg.MediumRaise <= 0 {
		cfg.MediumRaise = d.MediumRaise
	}
	if cfg.MediumLower <= 0 {
		cfg.MediumLower = d.MediumLower
	}
	if cfg.HighRaise <= 0 {
		cfg.HighRaise = d.HighRaise
	}
	if cfg.HighLower <= 0 {
		cfg.HighLower = d.HighLower
	}
	if cfg.Dwell <= 0 {
		cfg.Dwell = d.Dwell
	}
	if cfg.BlockScore <= 0 {
		cfg.BlockScore = d.BlockScore
	}
	if cfg.BlockFor <= 0 {
		cfg.BlockFor = d.BlockFor
	}
	if cfg.MaxSources <= 0 {
		cfg.MaxSources = d.MaxSources
	}
	if cfg.MaxResources <= 0 {
		cfg.MaxResources = d.MaxResources
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = d.Buffer
	}
	e := &Engine{
		cfg:       cfg,
		threat:    threat,
		blocks:    blocks,
		sources:   make(map[string]*sourceProfile),
		resources: make(map[string]*resourceProfile),
		level:     ids.Low,
	}
	if !cfg.Synchronous {
		e.ch = make(chan Sample, cfg.Buffer)
		e.done = make(chan struct{})
		go e.run()
	}
	return e
}

// SetJournal installs the persistence/replication taps: score
// receives per-source score events, profile receives resource profile
// checkpoints. Call before serving traffic (statestore.Attach does).
func (e *Engine) SetJournal(score func(ScoreEvent), profile func(ProfileCheckpoint)) {
	e.mu.Lock()
	e.journalScore, e.journalProfile = score, profile
	e.mu.Unlock()
}

// ObserveRequest feeds one sample. Asynchronous mode enqueues without
// blocking (overflow is counted, like a bus subscription falling
// behind); synchronous mode processes inline.
func (e *Engine) ObserveRequest(s Sample) {
	if e.cfg.Synchronous {
		e.process(s)
		return
	}
	select {
	case e.ch <- s:
	default:
		e.dropped.Add(1)
	}
}

// Close stops the async worker (no-op in synchronous mode).
func (e *Engine) Close() {
	if e.ch != nil {
		close(e.ch)
		<-e.done
	}
}

func (e *Engine) run() {
	defer close(e.done)
	for s := range e.ch {
		e.process(s)
	}
}

// decay returns the exponential decay factor for dt at the configured
// half-life; out-of-order timestamps decay nothing.
func (e *Engine) decay(dt time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(e.cfg.HalfLife))
}

// errAlpha is the fixed EWMA weight of the error-ratio estimator —
// count-based, so bursts with identical timestamps still move it.
const errAlpha = 1.0 / 8

// process folds one sample into the profiles, scores it, and applies
// enforcement. Deterministic in the sample stream.
func (e *Engine) process(s Sample) {
	e.samples.Add(1)
	e.mu.Lock()

	src := e.source(s.Source)
	res := e.resource(s.Path)

	// --- update the per-source sketch ---
	w := e.decay(s.Time.Sub(src.last))
	src.rate = src.rate*w + 1
	src.err += (boolF(s.Denied) - src.err) * errAlpha
	src.observePath(s.Path)
	src.n++

	// --- score against the pre-update resource baseline ---
	inst := e.scoreLocked(src, res, s)

	// Per-source score: rises instantly, decays with the half-life.
	src.score = math.Max(inst, src.score*w)
	src.last = s.Time

	// --- train the resource shape on granted traffic only ---
	if !s.Denied {
		res.train(s)
		res.dirty++
		if e.cfg.CheckpointEvery > 0 && res.dirty >= e.cfg.CheckpointEvery {
			res.dirty = 0
			if e.journalProfile != nil {
				e.journalProfile(checkpoint(s.Path, res, s.Time))
			}
		}
	}

	// --- global signal: EWMA of instantaneous scores ---
	gw := e.decay(s.Time.Sub(e.sigLast))
	alpha := 1 - gw
	if alpha < errAlpha {
		alpha = errAlpha // bursts at one instant must still move it
	}
	e.signal += (inst - e.signal) * alpha
	e.sigLast = s.Time

	blockSrc, ev, emit := e.enforceSourceLocked(s.Source, src, s.Time)
	raise, lower := e.updateLevelLocked(s.Time)
	journalScore := e.journalScore
	e.mu.Unlock()

	// Side effects outside the lock: the block set and the manager
	// have their own locking and journal taps.
	if blockSrc {
		e.blocks.Block(s.Source, e.cfg.BlockFor)
		e.sourceBlocks.Add(1)
	}
	if emit && journalScore != nil {
		journalScore(ev)
	}
	e.applyLevel(raise, lower)
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// scoreLocked computes the instantaneous anomaly score of the sample:
// each component normalized to [0,1], then weighted. Monotone in
// Severity by construction (the fuzz target proves it stays so).
func (e *Engine) scoreLocked(src *sourceProfile, res *resourceProfile, s Sample) float64 {
	c := &e.cfg
	rate := src.rate * math.Ln2 / e.cfg.HalfLife.Seconds()
	score := c.RateWeight * (rate / (rate + c.RateRef))
	score += c.ErrorWeight * src.err
	h := src.entropy()
	score += c.EntropyWeight * (h / (h + c.EntropyRef))
	if res.n >= c.MinTraining {
		z := res.length.Z(float64(s.InputLen), 4) / 4
		score += c.ShapeWeight * (z + res.classDistance(s)) / 2
	}
	if s.Severity > 0 {
		sev := float64(s.Severity) / float64(ids.SevHigh)
		if sev > 1 {
			sev = 1
		}
		score += c.SeverityWeight * sev
	}
	return score
}

// enforceSourceLocked decides whether the source crossed the block
// threshold and whether its score is worth journaling.
func (e *Engine) enforceSourceLocked(addr string, src *sourceProfile, at time.Time) (block bool, ev ScoreEvent, emit bool) {
	evidence := src.n + src.merged
	if !src.blocked && e.blocks != nil &&
		src.score >= e.cfg.BlockScore && evidence >= e.cfg.MinSamples {
		src.blocked = true
		block = true
	}
	delta := src.score - src.journaled
	if block || (e.cfg.ScoreEventDelta > 0 && math.Abs(delta) >= e.cfg.ScoreEventDelta) {
		ev = ScoreEvent{Source: addr, Score: src.score, Samples: src.n - src.journaledN, At: at}
		src.journaled, src.journaledN = src.score, src.n
		emit = true
	}
	return block, ev, emit
}

// updateLevelLocked applies the hysteresis state machine to the
// global signal: raises are immediate once a Raise threshold is
// crossed; drops require the signal below the Lower threshold AND the
// dwell time since the last transition — oscillating load therefore
// cannot flap the level.
func (e *Engine) updateLevelLocked(now time.Time) (raise, lower ids.Level) {
	target := e.level
	switch {
	case e.signal >= e.cfg.HighRaise:
		target = ids.High
	case e.signal >= e.cfg.MediumRaise && e.level < ids.Medium:
		target = ids.Medium
	}
	if target > e.level {
		e.level = target
		e.lastTrans = now
		e.raises.Add(1)
		return target, 0
	}
	if now.Sub(e.lastTrans) >= e.cfg.Dwell {
		switch {
		case e.level == ids.High && e.signal <= e.cfg.HighLower:
			e.level = ids.Medium
			e.lastTrans = now
			e.lowers.Add(1)
			return 0, ids.Medium
		case e.level == ids.Medium && e.signal <= e.cfg.MediumLower:
			e.level = ids.Low
			e.lastTrans = now
			e.lowers.Add(1)
			return 0, ids.Low
		}
	}
	return 0, 0
}

// applyLevel pushes an engine level change into the threat manager.
// Raises escalate (max-wins with other drivers); a drop only applies
// when the manager sits at the level the engine is leaving — the
// engine never undercuts an operator or policy escalation above its
// own signal.
func (e *Engine) applyLevel(raise, lower ids.Level) {
	if e.threat == nil {
		return
	}
	if raise > 0 {
		e.threat.Escalate(raise)
	}
	if lower > 0 && e.threat.Level() == lower+1 {
		e.threat.Set(lower)
	}
}

// source returns (creating) the profile for addr, evicting the
// least-interesting profile past the cap.
func (e *Engine) source(addr string) *sourceProfile {
	if p, ok := e.sources[addr]; ok {
		return p
	}
	if len(e.sources) >= e.cfg.MaxSources {
		e.evictSource()
	}
	p := &sourceProfile{paths: make(map[string]int, 4)}
	e.sources[addr] = p
	return p
}

// evictSource drops the lowest-scoring, least-recently-seen profile
// (deterministic tie-break on the address).
func (e *Engine) evictSource() {
	var victim string
	var vp *sourceProfile
	for addr, p := range e.sources {
		if vp == nil || p.score < vp.score ||
			(p.score == vp.score && (p.last.Before(vp.last) ||
				(p.last.Equal(vp.last) && addr < victim))) {
			victim, vp = addr, p
		}
	}
	delete(e.sources, victim)
}

func (e *Engine) resource(path string) *resourceProfile {
	if p, ok := e.resources[path]; ok {
		return p
	}
	if len(e.resources) >= e.cfg.MaxResources {
		e.evictResource()
	}
	p := &resourceProfile{}
	e.resources[path] = p
	return p
}

// evictResource drops the least-trained resource (deterministic
// tie-break on the path).
func (e *Engine) evictResource() {
	var victim string
	var vp *resourceProfile
	for path, p := range e.resources {
		if vp == nil || p.n < vp.n || (p.n == vp.n && path < victim) {
			victim, vp = path, p
		}
	}
	delete(e.resources, victim)
}

// observePath counts the path in the bounded histogram, evicting the
// rarest path (deterministic tie-break) when full.
func (p *sourceProfile) observePath(path string) {
	if _, ok := p.paths[path]; !ok && len(p.paths) >= maxSourcePaths {
		var victim string
		min := -1
		for k, n := range p.paths {
			if min < 0 || n < min || (n == min && k < victim) {
				victim, min = k, n
			}
		}
		p.total -= p.paths[victim]
		delete(p.paths, victim)
	}
	p.paths[path]++
	p.total++
}

// entropy is the Shannon entropy (bits) of the source's path
// distribution.
func (p *sourceProfile) entropy() float64 {
	if p.total == 0 {
		return 0
	}
	h := 0.0
	total := float64(p.total)
	for _, n := range p.paths {
		f := float64(n) / total
		h -= f * math.Log2(f)
	}
	return h
}

// train folds a granted request's shape into the resource baseline.
func (r *resourceProfile) train(s Sample) {
	r.n++
	r.length.Observe(float64(s.InputLen))
	var hist [nClasses]float64
	classHistogram(&hist, s.Path, s.Query)
	for i := range hist {
		r.classes[i] += hist[i]
	}
}

// classDistance is half the L1 distance between the request's charset
// class distribution and the trained baseline distribution, in [0,1].
func (r *resourceProfile) classDistance(s Sample) float64 {
	var hist [nClasses]float64
	classHistogram(&hist, s.Path, s.Query)
	var baseTotal float64
	for _, v := range r.classes {
		baseTotal += v
	}
	if baseTotal == 0 {
		return 0
	}
	d := 0.0
	for i := range hist {
		d += math.Abs(hist[i] - r.classes[i]/baseTotal)
	}
	return d / 2
}

// classHistogram fills hist with the normalized charset-class
// distribution of path+query.
func classHistogram(hist *[nClasses]float64, path, query string) {
	n := len(path) + len(query)
	if n == 0 {
		return
	}
	for i := 0; i < len(path); i++ {
		hist[byteClass(path[i])]++
	}
	for i := 0; i < len(query); i++ {
		hist[byteClass(query[i])]++
	}
	for i := range hist {
		hist[i] /= float64(n)
	}
}

// --- observation API (status lines, metrics, tests) ---

// Stats is a point-in-time summary of the engine.
type Stats struct {
	Signal       float64
	Level        ids.Level
	Sources      int
	Resources    int
	Samples      uint64
	Dropped      uint64
	SourceBlocks uint64
	Raises       uint64
	Lowers       uint64
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Signal:    e.signal,
		Level:     e.level,
		Sources:   len(e.sources),
		Resources: len(e.resources),
	}
	e.mu.Unlock()
	s.Samples = e.samples.Load()
	s.Dropped = e.dropped.Load()
	s.SourceBlocks = e.sourceBlocks.Load()
	s.Raises = e.raises.Load()
	s.Lowers = e.lowers.Load()
	return s
}

// Signal returns the smoothed global anomaly signal.
func (e *Engine) Signal() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.signal
}

// SignalLevel returns the engine's own hysteresis level (which it
// pushes into the shared threat manager).
func (e *Engine) SignalLevel() ids.Level {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.level
}

// SourceScore returns the current per-source score (0 for an unknown
// source).
func (e *Engine) SourceScore(addr string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.sources[addr]; ok {
		return p.score
	}
	return 0
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
