package adaptive

import "time"

// ScoreEvent is the replication/persistence record of a per-source
// score movement. Merge rules follow the PR-9 consensus-free model:
// Score is max-wins (an anomaly score is evidence — the worst view
// wins), Samples is an additive delta of observations since the
// origin's previous event (evidence accumulates across nodes).
type ScoreEvent struct {
	Source string `json:"source"`
	// Score is the origin's per-source score at emission time.
	Score float64 `json:"score"`
	// Samples is the number of observations folded in since the
	// origin's last event for this source (additive on merge). In a
	// snapshot it carries the origin's total instead (max-wins).
	Samples int       `json:"samples"`
	At      time.Time `json:"at"`
}

// ProfileCheckpoint is the replication/persistence record of a
// resource profile: the length moments (Welford state) and the
// accumulated charset-class mass. Merge rule: the checkpoint with
// more training observations wins outright — profiles summarize the
// same underlying traffic, so the better-trained view supersedes.
type ProfileCheckpoint struct {
	Resource string    `json:"resource"`
	N        int       `json:"n"`
	MeanLen  float64   `json:"mean_len"`
	M2Len    float64   `json:"m2_len"`
	Classes  []float64 `json:"classes"`
	At       time.Time `json:"at"`
}

func checkpoint(path string, r *resourceProfile, at time.Time) ProfileCheckpoint {
	return ProfileCheckpoint{
		Resource: path,
		N:        r.length.N,
		MeanLen:  r.length.Mean,
		M2Len:    r.length.M2,
		Classes:  append([]float64(nil), r.classes[:]...),
		At:       at,
	}
}

// ApplyScore merges a peer's (or a replayed) score event: Score
// max-wins, Samples additive into the merged-evidence count. When the
// merged evidence pushes the source over the block threshold the
// source is blocked locally — a block earned anywhere enforces
// everywhere the event reaches. Returns whether any state changed.
func (e *Engine) ApplyScore(ev ScoreEvent) bool {
	e.mu.Lock()
	src := e.source(ev.Source)
	changed := false
	if ev.Score > src.score {
		src.score = ev.Score
		changed = true
	}
	if ev.Samples > 0 {
		src.merged += ev.Samples
		changed = true
	}
	if ev.At.After(src.last) {
		src.last = ev.At
	}
	block := false
	if !src.blocked && e.blocks != nil &&
		src.score >= e.cfg.BlockScore && src.n+src.merged >= e.cfg.MinSamples {
		src.blocked = true
		block = true
	}
	e.mu.Unlock()
	if block {
		e.blocks.Block(ev.Source, e.cfg.BlockFor)
		e.sourceBlocks.Add(1)
	}
	return changed || block
}

// RestoreScore merges a snapshot entry: Score max-wins and Samples
// max-wins (a snapshot carries totals, so adding would double-count —
// the same rule that keeps counters out of remote snapshots). Never
// blocks and never journals; block state rides its own record kind.
func (e *Engine) RestoreScore(ev ScoreEvent) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	src := e.source(ev.Source)
	changed := false
	if ev.Score > src.score {
		src.score = ev.Score
		changed = true
	}
	if total := src.n + src.merged; ev.Samples > total {
		src.merged += ev.Samples - total
		changed = true
	}
	if ev.At.After(src.last) {
		src.last = ev.At
	}
	return changed
}

// ApplyProfile merges a resource profile checkpoint: the view with
// more training observations wins outright. Idempotent, so it serves
// journal replay, remote records and snapshots alike. Returns whether
// the local profile was replaced.
func (e *Engine) ApplyProfile(cp ProfileCheckpoint) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	res := e.resource(cp.Resource)
	if cp.N <= res.n {
		return false
	}
	res.n = cp.N
	res.length.N = cp.N
	res.length.Mean = cp.MeanLen
	res.length.M2 = cp.M2Len
	for i := range res.classes {
		res.classes[i] = 0
	}
	for i, v := range cp.Classes {
		if i >= nClasses {
			break
		}
		res.classes[i] = v
	}
	return true
}

// Scores snapshots the per-source scores in deterministic (sorted)
// order; Samples carries the source's total evidence (snapshot
// semantics — restore with RestoreScore).
func (e *Engine) Scores() []ScoreEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ScoreEvent, 0, len(e.sources))
	for _, addr := range sortedKeys(e.sources) {
		p := e.sources[addr]
		out = append(out, ScoreEvent{
			Source:  addr,
			Score:   p.score,
			Samples: p.n + p.merged,
			At:      p.last,
		})
	}
	return out
}

// Profiles snapshots the trained resource profiles in deterministic
// (sorted) order.
func (e *Engine) Profiles() []ProfileCheckpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ProfileCheckpoint, 0, len(e.resources))
	for _, path := range sortedKeys(e.resources) {
		p := e.resources[path]
		if p.n == 0 {
			continue
		}
		out = append(out, checkpoint(path, p, time.Time{}))
	}
	return out
}
