package ids

import "testing"

func TestStaticSpoofList(t *testing.T) {
	s := NewStaticSpoofList(0.8, "203.0.113.*")
	if spoofed, conf := s.SpoofIndication("203.0.113.77"); !spoofed || conf != 0.8 {
		t.Errorf("SpoofIndication = %v, %v; want true, 0.8", spoofed, conf)
	}
	if spoofed, conf := s.SpoofIndication("10.0.0.1"); spoofed || conf != 0 {
		t.Errorf("clean address = %v, %v; want false, 0", spoofed, conf)
	}
	s.Add("10.0.0.1")
	if spoofed, _ := s.SpoofIndication("10.0.0.1"); !spoofed {
		t.Error("Add had no effect")
	}
}

func TestStaticSpoofListConfidenceClamping(t *testing.T) {
	if s := NewStaticSpoofList(0, "x"); s.confidence != 0.9 {
		t.Errorf("default confidence = %v, want 0.9", s.confidence)
	}
	if s := NewStaticSpoofList(5, "x"); s.confidence != 1 {
		t.Errorf("clamped confidence = %v, want 1", s.confidence)
	}
}

func TestStaticSpoofListEmpty(t *testing.T) {
	s := NewStaticSpoofList(0.9)
	if spoofed, _ := s.SpoofIndication("1.2.3.4"); spoofed {
		t.Error("empty list reported a spoof")
	}
}
