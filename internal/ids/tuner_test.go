package ids

import (
	"context"
	"sync"
	"testing"
	"time"
)

// mapSink collects Set calls.
type mapSink struct {
	mu sync.Mutex
	m  map[string]string
}

func newMapSink() *mapSink { return &mapSink{m: make(map[string]string)} }

func (s *mapSink) Set(name, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = value
}

func (s *mapSink) get(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

func TestValueTunerApply(t *testing.T) {
	sink := newMapSink()
	tuner := NewValueTuner(sink)
	tuner.SetLevelValues(Low, map[string]string{"max_input": "1000", "window": "00:00-24:00"})
	tuner.SetLevelValues(High, map[string]string{"max_input": "200"})

	tuner.Apply(Low)
	if sink.get("max_input") != "1000" {
		t.Errorf("low max_input = %q", sink.get("max_input"))
	}
	tuner.Apply(High)
	if sink.get("max_input") != "200" {
		t.Errorf("high max_input = %q", sink.get("max_input"))
	}
	// Values not mentioned at the new level keep their last setting.
	if sink.get("window") != "00:00-24:00" {
		t.Errorf("window = %q, want untouched", sink.get("window"))
	}
	// Applying an unconfigured level is a no-op.
	tuner.Apply(Medium)
	if sink.get("max_input") != "200" {
		t.Error("unconfigured level changed values")
	}
}

func TestValueTunerCopiesInput(t *testing.T) {
	sink := newMapSink()
	tuner := NewValueTuner(sink)
	values := map[string]string{"k": "1"}
	tuner.SetLevelValues(Low, values)
	values["k"] = "mutated"
	tuner.Apply(Low)
	if sink.get("k") != "1" {
		t.Error("tuner shares storage with caller")
	}
}

func TestValueTunerRunFollowsManager(t *testing.T) {
	sink := newMapSink()
	tuner := NewValueTuner(sink)
	tuner.SetLevelValues(Medium, map[string]string{"max_input": "500"})

	mgr := NewManager(Low)
	ch, cancelSub := mgr.Subscribe()
	defer cancelSub()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tuner.Run(ctx, ch)
	}()

	mgr.Set(Medium)
	deadline := time.After(2 * time.Second)
	for sink.get("max_input") != "500" {
		select {
		case <-deadline:
			t.Fatal("tuner did not apply values on level change")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestValueTunerRunStopsOnClosedChannel(t *testing.T) {
	tuner := NewValueTuner(newMapSink())
	ch := make(chan Level)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tuner.Run(context.Background(), ch)
	}()
	close(ch)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on closed channel")
	}
}
