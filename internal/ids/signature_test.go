package ids

import (
	"strings"
	"testing"
)

func TestDefaultSignaturesDetectPaperAttacks(t *testing.T) {
	db := NewDB(DefaultSignatures()...)
	tests := []struct {
		name    string
		request string
		want    string // expected signature name, "" for no match
	}{
		{"phf probe", "GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd", "phf"},
		{"test-cgi probe", "GET /cgi-bin/test-cgi?*", "test-cgi"},
		{"slash flood", "GET /" + strings.Repeat("/", 30) + "index.html", "slash-flood"},
		{"nimda traversal", "GET /scripts/..%c0%af../winnt/system32/cmd.exe?/c+dir", "nimda"},
		{"nimda cmd.exe", "GET /msadc/root.exe?/c+dir", "nimda"},
		{"legit page", "GET /index.html", ""},
		{"legit encoded space", "GET /docs/a%20b.html", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			hits := db.Match(tt.request)
			if tt.want == "" {
				if len(hits) != 0 {
					t.Errorf("unexpected hits %v for %q", names(hits), tt.request)
				}
				return
			}
			if len(hits) == 0 {
				t.Fatalf("no hit for %q, want %q", tt.request, tt.want)
			}
			found := false
			for _, h := range hits {
				if h.Name == tt.want {
					found = true
				}
			}
			if !found {
				t.Errorf("hits = %v, want to include %q", names(hits), tt.want)
			}
		})
	}
}

func names(sigs []Signature) []string {
	out := make([]string, len(sigs))
	for i, s := range sigs {
		out[i] = s.Name
	}
	return out
}

func TestDBAddAndLen(t *testing.T) {
	db := NewDB()
	if db.Len() != 0 {
		t.Fatalf("Len = %d, want 0", db.Len())
	}
	db.Add(Signature{Name: "custom", Patterns: []string{"*evil*"}, Severity: SevMedium, Kind: "custom"})
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	if hits := db.Match("GET /evil/path"); len(hits) != 1 || hits[0].Name != "custom" {
		t.Errorf("Match = %v", names(hits))
	}
}

func TestSignatureMultiplePatterns(t *testing.T) {
	s := Signature{Patterns: []string{"*a*", "*b*"}}
	if !s.Matches("xxbxx") || !s.Matches("xaxx") || s.Matches("cc") {
		t.Error("multi-pattern matching broken")
	}
}

func TestReportKindStrings(t *testing.T) {
	kinds := map[ReportKind]string{
		IllFormedRequest:      "ill_formed_request",
		AbnormalParameters:    "abnormal_parameters",
		SensitiveAccessDenial: "sensitive_access_denial",
		ThresholdViolation:    "threshold_violation",
		DetectedAttack:        "detected_attack",
		UnusualBehavior:       "unusual_behavior",
		LegitimatePattern:     "legitimate_pattern",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if ReportKind(0).String() != "ReportKind(0)" {
		t.Error("unknown kind String mismatch")
	}
	if SevInfo.String() != "info" || SevMedium.String() != "medium" || SevHigh.String() != "high" {
		t.Error("Severity.String mismatch")
	}
	if Severity(9).String() != "Severity(9)" {
		t.Error("unknown Severity.String mismatch")
	}
}
