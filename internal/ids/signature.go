package ids

import (
	"sync"

	"gaaapi/internal/eacl"
)

// Signature is one attack signature: glob patterns over the request
// line ("New signatures can be specified using regular expressions",
// paper section 7.2 — the paper's own examples are '*'-glob patterns).
type Signature struct {
	// Name identifies the signature ("phf", "nimda").
	Name string
	// Patterns are '*'-glob patterns; any match triggers the signature.
	Patterns []string
	// Severity of the detected attack.
	Severity Severity
	// Kind is a short threat-type label reported to the IDS
	// ("cgi-exploit", "dos", "malformed-url").
	Kind string
	// Recommendation is the defensive recommendation attached to
	// reports.
	Recommendation string
}

// Matches reports whether any pattern matches s.
func (sig *Signature) Matches(s string) bool {
	for _, p := range sig.Patterns {
		if eacl.Glob(p, s) {
			return true
		}
	}
	return false
}

// DB is a concurrent-safe signature database.
type DB struct {
	mu   sync.RWMutex
	sigs []Signature
}

// NewDB returns a database preloaded with the given signatures.
func NewDB(sigs ...Signature) *DB {
	db := &DB{}
	db.Add(sigs...)
	return db
}

// Add appends signatures.
func (db *DB) Add(sigs ...Signature) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sigs = append(db.sigs, sigs...)
}

// Match returns every signature matching s, in registration order.
func (db *DB) Match(s string) []Signature {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Signature
	for i := range db.sigs {
		if db.sigs[i].Matches(s) {
			out = append(out, db.sigs[i])
		}
	}
	return out
}

// Len returns the number of signatures.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.sigs)
}

// DefaultSignatures returns the attack signatures discussed in the
// paper (section 7.2): vulnerable-CGI probes (phf, test-cgi), the
// slash-flood Apache DoS, and NIMDA-style malformed URLs containing
// escaped sequences.
func DefaultSignatures() []Signature {
	return []Signature{
		{
			Name:           "phf",
			Patterns:       []string{"*phf*"},
			Severity:       SevHigh,
			Kind:           "cgi-exploit",
			Recommendation: "blacklist source address",
		},
		{
			Name:           "test-cgi",
			Patterns:       []string{"*test-cgi*"},
			Severity:       SevHigh,
			Kind:           "cgi-exploit",
			Recommendation: "blacklist source address",
		},
		{
			Name:           "slash-flood",
			Patterns:       []string{"*///////////////////*"},
			Severity:       SevMedium,
			Kind:           "dos",
			Recommendation: "drop connection",
		},
		{
			Name: "nimda",
			// NIMDA exploits IIS via malformed GET requests with
			// escaped directory traversals.
			Patterns:       []string{"*%c0%af*", "*%255c*", "*cmd.exe*", "*root.exe*"},
			Severity:       SevHigh,
			Kind:           "malformed-url",
			Recommendation: "blacklist source address",
		},
	}
}
