package ids

import (
	"sync"
	"testing"
	"time"
)

// TestBusConcurrentPublishSubscribe stresses the bus with publishers,
// subscribers and cancellations racing (validated with -race in CI).
func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup

	// Churning subscribers.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				sub := b.Subscribe(4)
				for len(sub.C) > 0 {
					<-sub.C
				}
				sub.Cancel()
			}
		}()
	}
	// Publishers.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Report{Kind: LegitimatePattern})
			}
		}()
	}
	wg.Wait()
	if got := b.Published(); got != 800 {
		t.Errorf("published = %d, want 800", got)
	}
	if b.Subscribers() != 0 {
		t.Errorf("leaked subscribers: %d", b.Subscribers())
	}
}

// TestCorrelatorConcurrentObserve: concurrent reports never corrupt the
// window state or panic.
func TestCorrelatorConcurrentObserve(t *testing.T) {
	mgr := NewManager(Low)
	c := NewCorrelator(mgr, CorrelatorConfig{Window: time.Minute, MediumAfter: 5, HighAfter: 100})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Observe(Report{Kind: DetectedAttack, Severity: SevMedium})
			}
		}()
	}
	wg.Wait()
	if mgr.Level() != Medium {
		t.Errorf("level = %v, want medium after 800 medium events", mgr.Level())
	}
}

// TestDetectorConcurrentTrainScore: training and scoring race safely.
func TestDetectorConcurrentTrainScore(t *testing.T) {
	d := NewDetector(DefaultAnomalyConfig())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				d.Train("u", "/p", j%10)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				d.Score("u", "/p", j%10)
			}
		}()
	}
	wg.Wait()
	if n := d.Trained("u"); n != 1600 {
		t.Errorf("trained = %d, want 1600", n)
	}
}
