package faults

import (
	"errors"

	"gaaapi/internal/statestore"
)

// ErrInjectedDisk marks an injected disk fault.
var ErrInjectedDisk = errors.New("faults: injected disk fault")

// FS wraps a statestore filesystem with disk-fault injection driven by
// the Spec.Disk probability: file writes tear (only a prefix reaches
// the file before an error) and fsyncs fail. Reads are never disturbed
// — recovery must see exactly what the faulty writes left behind.
func (in *Injector) FS(fs statestore.FS) statestore.FS {
	return &faultFS{inner: fs, in: in}
}

// rollDisk decides one disk-fault injection.
func (in *Injector) rollDisk() bool {
	if in.spec.Disk <= 0 {
		return false
	}
	in.mu.Lock()
	r := in.rng.Float64()
	in.mu.Unlock()
	return r < in.spec.Disk
}

type faultFS struct {
	inner statestore.FS
	in    *Injector
}

func (f *faultFS) wrap(file statestore.File, err error) (statestore.File, error) {
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, in: f.in}, nil
}

func (f *faultFS) OpenAppend(name string) (statestore.File, error) {
	return f.wrap(f.inner.OpenAppend(name))
}

func (f *faultFS) Create(name string) (statestore.File, error) {
	return f.wrap(f.inner.Create(name))
}

func (f *faultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *faultFS) Rename(oldname, newname string) error { return f.inner.Rename(oldname, newname) }

func (f *faultFS) Remove(name string) error { return f.inner.Remove(name) }

func (f *faultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

func (f *faultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *faultFS) SyncDir(dir string) error {
	if f.in.rollDisk() {
		f.in.syncErrors.Add(1)
		return ErrInjectedDisk
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	inner statestore.File
	in    *Injector
}

// Write tears the write when the injector fires: a strict prefix
// reaches the file, then the error surfaces — exactly the shape a
// crash mid-write leaves in a WAL.
func (f *faultFile) Write(p []byte) (int, error) {
	if f.in.rollDisk() {
		f.in.shortWrites.Add(1)
		n := len(p) / 2
		if n > 0 {
			if m, err := f.inner.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, ErrInjectedDisk
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if f.in.rollDisk() {
		f.in.syncErrors.Add(1)
		return ErrInjectedDisk
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
