// Package faults provides deterministic, seed-driven fault injectors
// for fault drills: wrappers that make any condition Evaluator or
// notify.Notifier exhibit latency, errors, panics, or hangs with
// configured probabilities. The supervision layer in internal/gaa and
// the retry/breaker wrapper in internal/notify are expected to absorb
// every injected fault — the chaos e2e suite and the gaa-bench fault
// drill assert exactly that.
//
// Injection decisions come from a single seeded PRNG, so a drill with
// a fixed seed and a serial workload replays the same fault sequence;
// under concurrency the per-call decisions stay seed-derived but their
// interleaving follows the scheduler.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/notify"
)

// ErrInjected marks a fault-drill error.
var ErrInjected = errors.New("faults: injected error")

// Spec configures per-call injection probabilities (each in [0,1],
// checked independently in the order hang, panic, error, latency; the
// first that fires wins, except latency which delays and passes
// through).
type Spec struct {
	// Hang blocks the call until its context is done.
	Hang float64
	// Panic raises a runtime panic.
	Panic float64
	// Error returns/attaches ErrInjected.
	Error float64
	// Latency sleeps LatencyDur (context-interruptible) before
	// delegating.
	Latency float64
	// LatencyDur is the injected delay (default 10ms when Latency>0).
	LatencyDur time.Duration
	// Disk makes a wrapped statestore filesystem misbehave: each write
	// or fsync fails with this probability (writes tear — only a prefix
	// lands — and fsyncs error), exercising the WAL's torn-tail
	// recovery and the journal's error accounting.
	Disk float64
}

// Active reports whether any injection can fire.
func (s Spec) Active() bool {
	return s.Hang > 0 || s.Panic > 0 || s.Error > 0 || s.Latency > 0 || s.Disk > 0
}

// String renders the spec in ParseSpec syntax.
func (s Spec) String() string {
	if !s.Active() {
		return "off"
	}
	var parts []string
	add := func(name string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", name, p))
		}
	}
	add("hang", s.Hang)
	add("panic", s.Panic)
	add("error", s.Error)
	if s.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%g:%s", s.Latency, s.LatencyDur))
	}
	add("disk", s.Disk)
	return strings.Join(parts, ",")
}

// ParseSpec parses "hang=0.02,panic=0.05,error=0.1,latency=0.2:50ms".
// The latency duration suffix is optional (default 10ms). An empty
// string (or "off") yields the inactive zero Spec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" || text == "off" {
		return s, nil
	}
	for _, part := range strings.Split(text, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: bad injector %q (want kind=probability)", part)
		}
		probText, durText, hasDur := strings.Cut(val, ":")
		p, err := strconv.ParseFloat(probText, 64)
		if err != nil || p < 0 || p > 1 {
			return Spec{}, fmt.Errorf("faults: bad probability %q for %s", probText, name)
		}
		switch name {
		case "hang":
			s.Hang = p
		case "panic":
			s.Panic = p
		case "error":
			s.Error = p
		case "latency":
			s.Latency = p
			if hasDur {
				d, err := time.ParseDuration(durText)
				if err != nil || d < 0 {
					return Spec{}, fmt.Errorf("faults: bad latency duration %q", durText)
				}
				s.LatencyDur = d
			}
		case "disk":
			s.Disk = p
		default:
			return Spec{}, fmt.Errorf("faults: unknown injector %q (want hang|panic|error|latency|disk)", name)
		}
		if hasDur && name != "latency" {
			return Spec{}, fmt.Errorf("faults: duration suffix only valid for latency, got %q", part)
		}
	}
	if s.Latency > 0 && s.LatencyDur == 0 {
		s.LatencyDur = 10 * time.Millisecond
	}
	return s, nil
}

// kind is one injection decision.
type kind int

const (
	passThrough kind = iota
	injectHang
	injectPanic
	injectError
	injectLatency
)

// Stats counts injections performed.
type Stats struct {
	Calls     uint64
	Hangs     uint64
	Panics    uint64
	Errors    uint64
	Latencies uint64
	// ShortWrites and SyncErrors count disk-fault injections (FS).
	ShortWrites uint64
	SyncErrors  uint64
}

// Injector rolls injection decisions from one seeded PRNG and wraps
// evaluators and notifiers. Safe for concurrent use.
type Injector struct {
	spec Spec

	mu  sync.Mutex
	rng *rand.Rand

	calls       atomic.Uint64
	hangs       atomic.Uint64
	panics      atomic.Uint64
	errors      atomic.Uint64
	latencies   atomic.Uint64
	shortWrites atomic.Uint64
	syncErrors  atomic.Uint64
}

// New returns an injector drawing from rand.NewSource(seed).
func New(seed int64, spec Spec) *Injector {
	return &Injector{spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// Spec returns the configured injection probabilities.
func (in *Injector) Spec() Spec { return in.spec }

// Stats returns the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:       in.calls.Load(),
		Hangs:       in.hangs.Load(),
		Panics:      in.panics.Load(),
		Errors:      in.errors.Load(),
		Latencies:   in.latencies.Load(),
		ShortWrites: in.shortWrites.Load(),
		SyncErrors:  in.syncErrors.Load(),
	}
}

// decide rolls the next injection decision.
func (in *Injector) decide() kind {
	in.calls.Add(1)
	if !in.spec.Active() {
		return passThrough
	}
	in.mu.Lock()
	r := in.rng.Float64()
	in.mu.Unlock()
	// One roll walks the cumulative ladder so a single seeded stream
	// fully determines the decision sequence.
	switch c := in.spec; {
	case r < c.Hang:
		in.hangs.Add(1)
		return injectHang
	case r < c.Hang+c.Panic:
		in.panics.Add(1)
		return injectPanic
	case r < c.Hang+c.Panic+c.Error:
		in.errors.Add(1)
		return injectError
	case r < c.Hang+c.Panic+c.Error+c.Latency:
		in.latencies.Add(1)
		return injectLatency
	default:
		return passThrough
	}
}

// sleep waits for the injected latency, interruptible by ctx.
func (in *Injector) sleep(ctx context.Context) error {
	t := time.NewTimer(in.spec.LatencyDur)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Evaluator wraps ev with fault injection. Intended to be installed
// via gaa.WithEvaluatorWrapper so the supervision layer sits above the
// injected faults.
func (in *Injector) Evaluator(ev gaa.Evaluator) gaa.Evaluator {
	return gaa.EvaluatorFunc(func(ctx context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
		switch in.decide() {
		case injectHang:
			// Hang until the supervisor (or the request) cuts us off.
			<-ctx.Done()
			return gaa.UnevaluatedOutcome("faults: hang cut off: " + ctx.Err().Error())
		case injectPanic:
			panic("faults: injected panic")
		case injectError:
			return gaa.Outcome{Err: ErrInjected}
		case injectLatency:
			if err := in.sleep(ctx); err != nil {
				return gaa.UnevaluatedOutcome("faults: latency cut off: " + err.Error())
			}
		}
		return ev.Evaluate(ctx, cond, req)
	})
}

// Notifier wraps n with fault injection; pair it with notify.Reliable
// so injected panics and errors are retried/broken instead of crashing
// the delivery path.
func (in *Injector) Notifier(n notify.Notifier) notify.Notifier {
	return notifierFunc(func(ctx context.Context, m notify.Message) error {
		switch in.decide() {
		case injectHang:
			<-ctx.Done()
			return ctx.Err()
		case injectPanic:
			panic("faults: injected notifier panic")
		case injectError:
			return ErrInjected
		case injectLatency:
			if err := in.sleep(ctx); err != nil {
				return err
			}
		}
		return n.Notify(ctx, m)
	})
}

// notifierFunc adapts a function to notify.Notifier.
type notifierFunc func(ctx context.Context, m notify.Message) error

func (f notifierFunc) Notify(ctx context.Context, m notify.Message) error { return f(ctx, m) }
