package faults

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gaaapi/internal/statestore"
)

func diskInjector(p float64) *Injector {
	return New(1, Spec{Disk: p})
}

func TestDiskSpecParseAndString(t *testing.T) {
	s, err := ParseSpec("disk=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Disk != 0.3 || !s.Active() {
		t.Fatalf("spec = %+v", s)
	}
	round, err := ParseSpec(s.String())
	if err != nil || round != s {
		t.Fatalf("String round-trip: %q -> %+v, %v", s.String(), round, err)
	}
	if _, err := ParseSpec("disk=0.3:50ms"); err == nil {
		t.Fatal("duration suffix on disk accepted")
	}
	if _, err := ParseSpec("disk=1.5"); err == nil {
		t.Fatal("probability above 1 accepted")
	}
}

func TestDiskWriteTearsToPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := diskInjector(1).FS(statestore.OS)
	f, err := fs.OpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("Write = %d, %v, want injected disk fault", n, err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write reported %d bytes, want prefix %d", n, len(payload)/2)
	}
	got, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("file holds %q, want the torn prefix %q", got, payload[:n])
	}
}

func TestDiskSyncAndSyncDirFail(t *testing.T) {
	dir := t.TempDir()
	in := diskInjector(1)
	fs := in.FS(statestore.OS)
	f, err := fs.Create(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("Sync = %v, want injected", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("SyncDir = %v, want injected", err)
	}
	if st := in.Stats(); st.SyncErrors != 2 {
		t.Fatalf("SyncErrors = %d, want 2", st.SyncErrors)
	}
}

func TestDiskReadsNeverDisturbed(t *testing.T) {
	// Recovery must see exactly what the faulty writes left behind, so
	// the read path passes through untouched even at probability 1.
	dir := t.TempDir()
	name := filepath.Join(dir, "wal")
	if err := os.WriteFile(name, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := diskInjector(1).FS(statestore.OS)
	got, err := fs.ReadFile(name)
	if err != nil || string(got) != "intact" {
		t.Fatalf("ReadFile through injector = %q, %v", got, err)
	}
}

func TestDiskInactiveSpecPassesThrough(t *testing.T) {
	dir := t.TempDir()
	in := diskInjector(0)
	fs := in.FS(statestore.OS)
	f, err := fs.OpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := f.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.ShortWrites != 0 || st.SyncErrors != 0 {
		t.Fatalf("inactive injector counted faults: %+v", st)
	}
}

// TestDiskStoreSurvivesInjection closes the loop with the store itself:
// under heavy write/sync faults the store keeps accepting appends (or
// surfacing clean errors), and a clean reopen recovers a valid prefix
// with any torn tail quarantined.
func TestDiskStoreSurvivesInjection(t *testing.T) {
	dir := t.TempDir()
	in := New(7, Spec{Disk: 0.4})
	s, err := statestore.Open(dir, statestore.Options{
		Fsync: statestore.FsyncAlways,
		FS:    in.FS(statestore.OS),
	})
	if err != nil {
		t.Fatal(err)
	}
	wrote := 0
	for i := 0; i < 50; i++ {
		if err := s.Append("block", map[string]int{"i": i}); err == nil {
			wrote++
		} else if !errors.Is(err, ErrInjectedDisk) {
			t.Fatalf("append %d failed with a non-injected error: %v", i, err)
		}
	}
	s.Close()
	if st := in.Stats(); st.ShortWrites == 0 {
		t.Fatalf("injection too quiet to prove anything: %+v", st)
	}

	re, err := statestore.Open(dir, statestore.Options{})
	if err != nil {
		t.Fatalf("recovery after injected faults: %v", err)
	}
	defer re.Close()
	if got := len(re.Tail()); got < wrote/2 || got > 50 {
		t.Fatalf("recovered %d records from %d successful appends", got, wrote)
	}
}
