package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/notify"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    Spec
		wantErr bool
	}{
		{in: "", want: Spec{}},
		{in: "off", want: Spec{}},
		{in: "hang=0.02", want: Spec{Hang: 0.02}},
		{in: "panic=0.05,error=0.1", want: Spec{Panic: 0.05, Error: 0.1}},
		{in: "latency=0.2:50ms", want: Spec{Latency: 0.2, LatencyDur: 50 * time.Millisecond}},
		{in: "latency=0.2", want: Spec{Latency: 0.2, LatencyDur: 10 * time.Millisecond}},
		{in: " hang=1 , latency=0.5:1s ", want: Spec{Hang: 1, Latency: 0.5, LatencyDur: time.Second}},
		{in: "hang", wantErr: true},
		{in: "hang=2", wantErr: true},
		{in: "hang=-0.1", wantErr: true},
		{in: "hang=x", wantErr: true},
		{in: "jitter=0.5", wantErr: true},
		{in: "latency=0.2:sideways", wantErr: true},
		{in: "panic=0.1:5ms", wantErr: true}, // duration only valid for latency
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, text := range []string{"off", "hang=0.02,panic=0.05", "error=0.1,latency=0.2:50ms"} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(String()=%q): %v", s.String(), err)
		}
		if back != s {
			t.Errorf("round trip %q -> %+v -> %q -> %+v", text, s, s.String(), back)
		}
	}
}

// passEvaluator counts how often it is reached.
func passEvaluator(calls *int) gaa.Evaluator {
	return gaa.EvaluatorFunc(func(context.Context, eacl.Condition, *gaa.Request) gaa.Outcome {
		*calls++
		return gaa.MetOutcome(gaa.ClassSelector, "reached")
	})
}

// drive runs n supervised-free evaluator calls against the injector,
// recovering the injected panics itself, and returns the outcomes.
func drive(t *testing.T, in *Injector, n int) []gaa.Outcome {
	t.Helper()
	calls := 0
	ev := in.Evaluator(passEvaluator(&calls))
	cond := eacl.Condition{Type: "x", DefAuth: "local"}
	outs := make([]gaa.Outcome, 0, n)
	for i := 0; i < n; i++ {
		func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
			defer cancel()
			defer func() {
				if r := recover(); r != nil {
					outs = append(outs, gaa.Outcome{Detail: "panic"})
				}
			}()
			outs = append(outs, ev.Evaluate(ctx, cond, nil))
		}()
	}
	return outs
}

func TestInjectorDeterministic(t *testing.T) {
	spec := Spec{Hang: 0.05, Panic: 0.1, Error: 0.15, Latency: 0.2, LatencyDur: time.Microsecond}
	a := New(42, spec)
	b := New(42, spec)
	outsA := drive(t, a, 200)
	outsB := drive(t, b, 200)
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Stats(), b.Stats())
	}
	for i := range outsA {
		if outsA[i].Detail != outsB[i].Detail || (outsA[i].Err == nil) != (outsB[i].Err == nil) {
			t.Fatalf("call %d diverged: %+v vs %+v", i, outsA[i], outsB[i])
		}
	}
	st := a.Stats()
	if st.Calls != 200 || st.Hangs == 0 || st.Panics == 0 || st.Errors == 0 || st.Latencies == 0 {
		t.Errorf("stats = %+v, want every fault kind exercised over 200 calls", st)
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	spec := Spec{Panic: 0.5}
	a, b := New(1, spec), New(2, spec)
	drive(t, a, 100)
	drive(t, b, 100)
	if a.Stats() == b.Stats() {
		t.Errorf("different seeds produced identical stats %+v; PRNG not seed-driven", a.Stats())
	}
}

func TestInjectorInactivePassesThrough(t *testing.T) {
	in := New(1, Spec{})
	calls := 0
	ev := in.Evaluator(passEvaluator(&calls))
	for i := 0; i < 50; i++ {
		out := ev.Evaluate(context.Background(), eacl.Condition{}, nil)
		if out.Result != gaa.Yes {
			t.Fatalf("call %d: %+v, want pass-through", i, out)
		}
	}
	if calls != 50 {
		t.Errorf("inner calls = %d, want 50", calls)
	}
	st := in.Stats()
	if st.Calls != 50 || st.Hangs+st.Panics+st.Errors+st.Latencies != 0 {
		t.Errorf("stats = %+v, want counted calls and zero injections", st)
	}
}

func TestInjectorErrorOutcome(t *testing.T) {
	in := New(1, Spec{Error: 1})
	calls := 0
	out := in.Evaluator(passEvaluator(&calls)).Evaluate(context.Background(), eacl.Condition{}, nil)
	if !errors.Is(out.Err, ErrInjected) || calls != 0 {
		t.Errorf("outcome = %+v inner calls = %d, want ErrInjected without reaching inner", out, calls)
	}
}

func TestInjectorHangRespectsContext(t *testing.T) {
	in := New(1, Spec{Hang: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	out := in.Evaluator(passEvaluator(new(int))).Evaluate(ctx, eacl.Condition{}, nil)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hang ignored context for %v", elapsed)
	}
	if out.Result != gaa.Maybe || !out.Unevaluated {
		t.Errorf("hang outcome = %+v, want unevaluated maybe", out)
	}
}

func TestNotifierInjection(t *testing.T) {
	in := New(9, Spec{Error: 0.5})
	mb := notify.NewMailbox(0)
	n := in.Notifier(mb)
	delivered, failed := 0, 0
	for i := 0; i < 100; i++ {
		if err := n.Notify(context.Background(), notify.Message{Tag: "t"}); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			failed++
		} else {
			delivered++
		}
	}
	if delivered == 0 || failed == 0 {
		t.Fatalf("delivered=%d failed=%d, want a mix at p=0.5", delivered, failed)
	}
	if mb.Count() != delivered {
		t.Errorf("mailbox = %d, want %d (failures must not deliver)", mb.Count(), delivered)
	}
	if st := in.Stats(); st.Errors != uint64(failed) {
		t.Errorf("stats errors = %d, want %d", st.Errors, failed)
	}
}
