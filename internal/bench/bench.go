// Package bench provides the measurement harness the experiment
// binaries share: repeated-trial timing with summary statistics
// (the paper's section 8 protocol — "the experiment was performed 20
// times ... on average") and paper-style table rendering.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Stats summarizes repeated trials.
type Stats struct {
	N                      int
	Mean, Stddev, Min, Max time.Duration
}

// Measure runs f trials times and summarizes the per-trial wall time.
// A non-positive trials count defaults to the paper's 20.
func Measure(trials int, f func()) Stats {
	if trials <= 0 {
		trials = 20
	}
	samples := make([]time.Duration, trials)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = time.Since(start)
	}
	return Summarize(samples)
}

// Summarize computes statistics over samples.
func Summarize(samples []time.Duration) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	s := Stats{N: len(samples), Min: samples[0], Max: samples[0]}
	var sum float64
	for _, d := range samples {
		sum += float64(d)
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	mean := sum / float64(len(samples))
	s.Mean = time.Duration(mean)
	var ss float64
	for _, d := range samples {
		diff := float64(d) - mean
		ss += diff * diff
	}
	if len(samples) > 1 {
		s.Stddev = time.Duration(math.Sqrt(ss / float64(len(samples)-1)))
	}
	return s
}

// Millis renders the mean in milliseconds with two decimals, the unit
// of the paper's section 8 table.
func (s Stats) Millis() string {
	return fmt.Sprintf("%.2f", float64(s.Mean)/float64(time.Millisecond))
}

// String renders "mean ± stddev (n=N)".
func (s Stats) String() string {
	return fmt.Sprintf("%v ± %v (n=%d)", s.Mean.Round(time.Microsecond), s.Stddev.Round(time.Microsecond), s.N)
}

// Overhead returns the percentage by which with exceeds base — the
// paper's "the overhead introduced by the GAA-API is 30%" metric.
func Overhead(base, with time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (float64(with) - float64(base)) / float64(base)
}

// Table renders experiment results in aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := len(c)
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// SortRows orders rows by the given column (lexicographically), for
// deterministic output when rows were collected from maps.
func (t *Table) SortRows(col int) {
	sort.Slice(t.Rows, func(i, j int) bool {
		var a, b string
		if col < len(t.Rows[i]) {
			a = t.Rows[i][col]
		}
		if col < len(t.Rows[j]) {
			b = t.Rows[j][col]
		}
		return a < b
	})
}
