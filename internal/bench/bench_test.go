package bench

import (
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		30 * time.Millisecond,
	})
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 20*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 10*time.Millisecond || s.Max != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Stddev != 10*time.Millisecond {
		t.Errorf("Stddev = %v, want 10ms", s.Stddev)
	}
	if got := s.Millis(); got != "20.00" {
		t.Errorf("Millis = %q", got)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty = %+v", s)
	}
	s := Summarize([]time.Duration{5 * time.Millisecond})
	if s.N != 1 || s.Stddev != 0 || s.Mean != 5*time.Millisecond {
		t.Errorf("single sample = %+v", s)
	}
}

func TestMeasureRunsTrials(t *testing.T) {
	count := 0
	s := Measure(5, func() { count++ })
	if count != 5 || s.N != 5 {
		t.Errorf("count = %d, N = %d", count, s.N)
	}
	count = 0
	Measure(0, func() { count++ })
	if count != 20 {
		t.Errorf("default trials = %d, want 20 (paper protocol)", count)
	}
}

func TestOverhead(t *testing.T) {
	tests := []struct {
		base, with time.Duration
		want       float64
	}{
		{100 * time.Millisecond, 130 * time.Millisecond, 30},
		{100 * time.Millisecond, 100 * time.Millisecond, 0},
		{100 * time.Millisecond, 180 * time.Millisecond, 80},
		{0, 50 * time.Millisecond, 0},
	}
	for _, tt := range tests {
		got := Overhead(tt.base, tt.with)
		if diff := got - tt.want; diff > 0.001 || diff < -0.001 {
			t.Errorf("Overhead(%v, %v) = %v, want %v", tt.base, tt.with, got, tt.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "E1",
		Header: []string{"configuration", "mean (ms)"},
		Notes:  []string{"20 trials"},
	}
	tbl.AddRow("gaa off", "1.00")
	tbl.AddRow("gaa on", "1.30")
	var buf strings.Builder
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"E1", "configuration", "gaa off", "1.30", "note: 20 trials"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableSortRows(t *testing.T) {
	tbl := Table{Header: []string{"k", "v"}}
	tbl.AddRow("b", "2")
	tbl.AddRow("a", "1")
	tbl.SortRows(0)
	if tbl.Rows[0][0] != "a" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}
