package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
	"gaaapi/internal/retry"
	"gaaapi/internal/statestore"
)

// testState is one node's adaptive state for in-process tests: the
// real components attached to a store-less Adaptive (journal hooks and
// mirror installed, no disk).
type testState struct {
	blocks   *netblock.Set
	threat   *ids.Manager
	counters *conditions.Counters
	groups   *groups.Store
	adaptive *statestore.Adaptive
}

func newTestState(t *testing.T) *testState {
	t.Helper()
	s := &testState{
		blocks:   netblock.NewSet(),
		threat:   ids.NewManager(ids.Low),
		counters: conditions.NewCounters(time.Now),
		groups:   groups.NewStore(),
	}
	a, err := statestore.Attach(nil, statestore.Components{
		Blocks:   s.blocks,
		Threat:   s.threat,
		Counters: s.counters,
		Groups:   s.groups,
	})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	s.adaptive = a
	return s
}

// testNode wires a node over a shared LoopTransport with a fast push
// cadence so tests converge in milliseconds.
func testNode(t *testing.T, lt *LoopTransport, id string, peers ...string) (*testState, *Node) {
	t.Helper()
	st := newTestState(t)
	n, err := New(Config{
		NodeID:       id,
		Peers:        peers,
		State:        st.adaptive,
		Transport:    lt,
		PushInterval: 5 * time.Millisecond,
		PushTimeout:  200 * time.Millisecond,
		Backoff: retry.Policy{
			BaseDelay:  time.Millisecond,
			Multiplier: 2,
			MaxDelay:   10 * time.Millisecond,
			Jitter:     1,
		},
		BreakerCooldown: 10 * time.Millisecond,
		DegradedAfter:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	lt.Register("loop://"+id, n)
	t.Cleanup(n.Stop)
	return st, n
}

// eventually polls cond for up to two seconds.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicatesBlockToPeer(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	sb, _ := testNode(t, lt, "b", "loop://a")
	na.Start()

	sa.blocks.Block("203.0.113.9", 30*time.Minute)
	eventually(t, "block replicated to b", func() bool { return sb.blocks.Blocked("203.0.113.9") })
	if !na.CaughtUp() {
		eventually(t, "a caught up", na.CaughtUp)
	}
}

func TestReplicatesThreatGroupsCounters(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	sb, _ := testNode(t, lt, "b", "loop://a")
	na.Start()

	sa.threat.Set(ids.Medium)
	sa.groups.Add("BadGuys", "203.0.113.9")
	sa.counters.Add("login_attempt|203.0.113.9")

	eventually(t, "threat replicated", func() bool { return sb.threat.Level() == ids.Medium })
	eventually(t, "group replicated", func() bool { return sb.groups.Contains("BadGuys", "203.0.113.9") })
	eventually(t, "counter replicated", func() bool {
		return sb.counters.CountSince("login_attempt|203.0.113.9", time.Hour) == 1
	})
}

func TestThreatMergeIsMaxWins(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	sb, nb := testNode(t, lt, "b", "loop://a")
	na.Start()
	nb.Start()

	sb.threat.Set(ids.High)
	eventually(t, "b's high level on a", func() bool { return sa.threat.Level() == ids.High })

	// A late medium transition from a must not pull b back down.
	sa.threat.Set(ids.Medium) // local de-escalation on a... but a is already High
	if sb.threat.Level() != ids.High {
		t.Fatalf("b de-escalated to %v by replication", sb.threat.Level())
	}
}

func TestPartitionHealConverges(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	sb, nb := testNode(t, lt, "b", "loop://a")
	na.Start()
	nb.Start()

	// Partition both directions.
	lt.Cut("loop://a")
	lt.Cut("loop://b")

	// Diverge: each side blocks and blacklists its own attacker.
	sa.blocks.Block("203.0.113.1", time.Hour)
	sa.groups.Add("BadGuys", "203.0.113.1")
	sb.blocks.Block("203.0.113.2", 2*time.Hour)
	sb.groups.Add("BadGuys", "203.0.113.2")
	sb.threat.Set(ids.Medium)

	time.Sleep(30 * time.Millisecond) // let pushes fail for a while
	if sa.blocks.Blocked("203.0.113.2") || sb.blocks.Blocked("203.0.113.1") {
		t.Fatal("state leaked across a cut partition")
	}

	lt.Heal("loop://a")
	lt.Heal("loop://b")

	eventually(t, "a has b's block", func() bool { return sa.blocks.Blocked("203.0.113.2") })
	eventually(t, "b has a's block", func() bool { return sb.blocks.Blocked("203.0.113.1") })
	eventually(t, "groups converged", func() bool {
		return sa.groups.Contains("BadGuys", "203.0.113.2") && sb.groups.Contains("BadGuys", "203.0.113.1")
	})
	eventually(t, "threat converged", func() bool { return sa.threat.Level() == ids.Medium })
	eventually(t, "identical block lists", func() bool {
		return fmt.Sprint(sa.blocks.List()) == fmt.Sprint(sb.blocks.List())
	})
	eventually(t, "both caught up", func() bool { return na.CaughtUp() && nb.CaughtUp() })
}

func TestBlockDeadlineMergeLaterWins(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	sb, nb := testNode(t, lt, "b", "loop://a")
	na.Start()
	nb.Start()

	// Both nodes block the same IP with different deadlines while
	// partitioned; after healing both must settle on the longer one —
	// not swap deadlines forever.
	lt.Cut("loop://a")
	lt.Cut("loop://b")
	sa.blocks.Block("203.0.113.7", 10*time.Minute)
	sb.blocks.Block("203.0.113.7", 24*time.Hour)
	lt.Heal("loop://a")
	lt.Heal("loop://b")

	eventually(t, "both caught up", func() bool { return na.CaughtUp() && nb.CaughtUp() })
	wantA := sa.blocks.Entries()
	wantB := sb.blocks.Entries()
	if len(wantA) != 1 || len(wantB) != 1 {
		t.Fatalf("entries: a=%v b=%v", wantA, wantB)
	}
	if !wantA[0].Expiry.Equal(wantB[0].Expiry) {
		t.Fatalf("deadlines did not converge: a=%v b=%v", wantA[0].Expiry, wantB[0].Expiry)
	}
	// The longer deadline (about a day out) must have won on a.
	if time.Until(wantA[0].Expiry) < time.Hour {
		t.Fatalf("shorter deadline won: %v", wantA[0].Expiry)
	}
}

func TestMirrorIsNonBlockingWithHungPeer(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	_ = newTestState(t) // b's state never even registered: peer is a black hole
	lt.Hang("loop://b")
	na.Start()

	// With the peer hanging every push, local mutations must still be
	// instant: the mirror tap is an in-memory append.
	for i := 0; i < 100; i++ {
		start := time.Now()
		sa.blocks.Block(fmt.Sprintf("203.0.113.%d", i%250), time.Minute)
		if d := time.Since(start); d > 50*time.Millisecond {
			t.Fatalf("hot-path mutation took %v with a hung peer", d)
		}
	}
	st := na.Stats()
	if st.Seq < 100 {
		t.Fatalf("replication log did not record mutations: %+v", st)
	}
}

func TestDegradedPeerReported(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	lt.Cut("loop://b")
	na.Start()

	sa.blocks.Block("203.0.113.9", time.Minute)
	eventually(t, "peer reported degraded", func() bool {
		st := na.Stats()
		return st.DegradedPeers == 1 && st.MaxLag > 0 && st.PushFailures > 0
	})
}

func TestCorruptPushDoesNotPanicOrApply(t *testing.T) {
	lt := NewLoopTransport()
	sb, nb := testNode(t, lt, "b")

	// Garbage bytes: rejected outright, state untouched.
	if _, err := nb.Receive([]byte("not a wal frame at all")); err == nil {
		t.Fatal("garbage push accepted")
	}
	if len(sb.blocks.List()) != 0 {
		t.Fatalf("garbage push mutated state: %v", sb.blocks.List())
	}

	// A valid batch truncated mid-frame: the valid prefix applies, the
	// ack reports corruption, nothing panics.
	full := encodeTestBatch(t, "evil", 7, []statestore.Record{
		{Seq: 1, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.50", Expiry: time.Now().Add(time.Hour)})},
		{Seq: 2, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.51", Expiry: time.Now().Add(time.Hour)})},
	})
	ack, err := nb.Receive(full[:len(full)-5])
	if err != nil {
		t.Fatalf("truncated push rejected outright: %v", err)
	}
	if !ack.Corrupt {
		t.Fatal("truncated push not flagged corrupt")
	}
	if !sb.blocks.Blocked("203.0.113.50") {
		t.Fatal("valid prefix of truncated push not applied")
	}
	if sb.blocks.Blocked("203.0.113.51") {
		t.Fatal("truncated record applied")
	}
	if st := nb.Stats(); st.CorruptFrames == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}

	// A CRC-valid frame whose payload is garbage for its kind: the
	// batch stops there, the ack says how far it got.
	bad := encodeTestBatch(t, "evil", 7, []statestore.Record{
		{Seq: 3, Kind: statestore.KindBlock, Data: json.RawMessage(`{"addr": 12}`)},
	})
	ack, err = nb.Receive(bad)
	if err != nil {
		t.Fatalf("lying payload rejected outright: %v", err)
	}
	if !ack.Corrupt || ack.Acked != 1 {
		t.Fatalf("lying payload ack = %+v, want corrupt with acked=1", ack)
	}
}

func TestSelfPushDropped(t *testing.T) {
	lt := NewLoopTransport()
	sb, nb := testNode(t, lt, "b")
	batch := encodeTestBatch(t, "b", nb.Epoch(), []statestore.Record{
		{Seq: 1, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.60"})},
	})
	ack, err := nb.Receive(batch)
	if err != nil {
		t.Fatalf("self push errored: %v", err)
	}
	if ack.Acked != 1 {
		t.Fatalf("self push not quiet-acked: %+v", ack)
	}
	if sb.blocks.Blocked("203.0.113.60") {
		t.Fatal("node applied its own looped-back record")
	}
	if st := nb.Stats(); st.SelfDrops != 1 {
		t.Fatalf("self drop not counted: %+v", st)
	}
}

func TestStaleEpochDropped(t *testing.T) {
	lt := NewLoopTransport()
	sb, nb := testNode(t, lt, "b")
	rec := statestore.Record{Seq: 1, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.61"})}

	if _, err := nb.Receive(encodeTestBatch(t, "a", 100, []statestore.Record{rec})); err != nil {
		t.Fatalf("first epoch push: %v", err)
	}
	if !sb.blocks.Blocked("203.0.113.61") {
		t.Fatal("first epoch record not applied")
	}

	// A zombie sender at a lower epoch is quiet-acked, never applied.
	zombie := statestore.Record{Seq: 9, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.62"})}
	ack, err := nb.Receive(encodeTestBatch(t, "a", 50, []statestore.Record{zombie}))
	if err != nil {
		t.Fatalf("stale epoch push errored: %v", err)
	}
	if ack.Acked != 9 {
		t.Fatalf("stale epoch not quiet-acked: %+v", ack)
	}
	if sb.blocks.Blocked("203.0.113.62") {
		t.Fatal("stale-epoch record applied")
	}

	// A restart (higher epoch) resets the applied cursor: seq 1 in the
	// new epoch applies even though seq 1 was seen in the old one.
	again := statestore.Record{Seq: 1, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.63"})}
	if _, err := nb.Receive(encodeTestBatch(t, "a", 200, []statestore.Record{again})); err != nil {
		t.Fatalf("new epoch push: %v", err)
	}
	if !sb.blocks.Blocked("203.0.113.63") {
		t.Fatal("new-epoch record not applied after cursor reset")
	}
}

func TestDuplicateDeliveryIdempotent(t *testing.T) {
	lt := NewLoopTransport()
	sb, nb := testNode(t, lt, "b")
	batch := encodeTestBatch(t, "a", 100, []statestore.Record{
		{Seq: 1, Kind: statestore.KindGroup, Data: mustJSON(t, groups.Event{Group: "BadGuys", Member: "x"})},
	})
	for i := 0; i < 3; i++ {
		if _, err := nb.Receive(batch); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	if got := sb.groups.Members("BadGuys"); len(got) != 1 {
		t.Fatalf("duplicate deliveries changed state: %v", got)
	}
	if st := nb.Stats(); st.RecordsDuplicate < 2 {
		t.Fatalf("duplicates not counted: %+v", st)
	}
}

func TestSnapshotResyncWhenLogTrimmed(t *testing.T) {
	lt := NewLoopTransport()
	sa := newTestState(t)
	na, err := New(Config{
		NodeID:       "a",
		Peers:        []string{"loop://b"},
		State:        sa.adaptive,
		Transport:    lt,
		PushInterval: 5 * time.Millisecond,
		PushTimeout:  200 * time.Millisecond,
		MaxLog:       4, // tiny log: a cut peer falls behind the horizon fast
		Backoff:      retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(na.Stop)
	sb, _ := testNode(t, lt, "b")

	lt.Cut("loop://b")
	na.Start()
	for i := 0; i < 20; i++ {
		sa.blocks.Block(fmt.Sprintf("203.0.113.%d", 100+i), time.Hour)
	}
	sa.threat.Set(ids.Medium)
	sa.groups.Add("BadGuys", "203.0.113.100")
	eventually(t, "log trimmed", func() bool { return na.Stats().Horizon > 0 })

	lt.Heal("loop://b")
	eventually(t, "peer resynced via snapshot", func() bool {
		return sb.blocks.Blocked("203.0.113.100") && sb.blocks.Blocked("203.0.113.119") &&
			sb.threat.Level() == ids.Medium && sb.groups.Contains("BadGuys", "203.0.113.100")
	})
	if st := na.Stats(); st.SnapshotsSent == 0 {
		t.Fatalf("no snapshot sent: %+v", st)
	}
	eventually(t, "a caught up after resync", na.CaughtUp)
}

func TestNoReplicationLoop(t *testing.T) {
	lt := NewLoopTransport()
	sa, na := testNode(t, lt, "a", "loop://b")
	sb, nb := testNode(t, lt, "b", "loop://a")
	na.Start()
	nb.Start()

	sa.blocks.Block("203.0.113.77", time.Hour)
	eventually(t, "replicated", func() bool { return sb.blocks.Blocked("203.0.113.77") })

	// Give any echo a chance to circulate, then check b never re-shipped
	// a's record: b's own log holds only b-originated mutations (none).
	time.Sleep(50 * time.Millisecond)
	if st := nb.Stats(); st.Seq != 0 {
		t.Fatalf("b re-mirrored a remote record into its own log: %+v", st)
	}
}

func TestHTTPTransportAndHandler(t *testing.T) {
	lt := NewLoopTransport() // only for building nodes; transport under test is HTTP
	sa, _ := testNode(t, lt, "a")
	_ = sa
	sb, nb := testNode(t, lt, "b")

	batch := encodeTestBatch(t, "a", 42, []statestore.Record{
		{Seq: 1, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.88", Expiry: time.Now().Add(time.Hour)})},
	})

	m := http.NewServeMux()
	m.Handle(ReplicatePath, nb.Handler())
	mux := httptest.NewServer(m)
	defer mux.Close()
	resp, err := NewHTTPTransport(mux.Client()).Send(context.Background(), mux.URL, batch)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	var ack Ack
	if err := json.Unmarshal(resp, &ack); err != nil {
		t.Fatalf("ack decode: %v (%q)", err, resp)
	}
	if ack.Node != "b" || ack.Acked != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if !sb.blocks.Blocked("203.0.113.88") {
		t.Fatal("HTTP push not applied")
	}

	// GET is rejected.
	r, err := mux.Client().Get(mux.URL + ReplicatePath)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != 405 {
		t.Fatalf("GET status = %d, want 405", r.StatusCode)
	}
}

func TestReceiveRequiresHello(t *testing.T) {
	lt := NewLoopTransport()
	_, nb := testNode(t, lt, "b")
	frames, err := statestore.EncodeFrames([]statestore.Record{
		{Seq: 1, Kind: statestore.KindBlock, Data: mustJSON(t, netblock.Event{Addr: "203.0.113.90"})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Receive(frames); err == nil || !strings.Contains(err.Error(), "hello") {
		t.Fatalf("hello-less push accepted: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	st := newTestState(t)
	if _, err := New(Config{NodeID: "a"}); err == nil {
		t.Fatal("nil state accepted")
	}
	n, err := New(Config{NodeID: "a", State: st.adaptive})
	if err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if n.Epoch() == 0 {
		t.Fatal("epoch not derived")
	}
	n.Stop()
	n.Stop() // idempotent
}

// encodeTestBatch frames hello + records as a peer with the given
// identity would.
func encodeTestBatch(t *testing.T, node string, epoch uint64, recs []statestore.Record) []byte {
	t.Helper()
	h := mustJSON(t, hello{Node: node, Epoch: epoch})
	batch := append([]statestore.Record{{Kind: KindHello, Data: h}}, recs...)
	frames, err := statestore.EncodeFrames(batch)
	if err != nil {
		t.Fatalf("EncodeFrames: %v", err)
	}
	return frames
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}
