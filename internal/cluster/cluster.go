// Package cluster replicates the adaptive state — netblock events,
// threat transitions, lockout counter events, blacklist group
// membership — across a fleet of gaa-httpd nodes, so an attacker
// blacklisted on node A is firewalled on node B within seconds.
//
// The design is log shipping without consensus. Every node tags the
// mutations it originates with its own (node-id, epoch, sequence) and
// keeps them in a bounded in-memory log, tapped from the statestore
// journal (statestore.Adaptive.SetMirror); the wire unit is the
// statestore journal record and the wire encoding is the same
// length+CRC WAL framing that protects the on-disk journal. Each node
// pushes its log tail to every peer over HTTP, with jittered-backoff
// retry and a circuit breaker per peer. Receivers apply remote records
// through merge rules that commute — later-deadline-wins for blocks,
// max-wins for the threat level, additive counters, as-sent group
// membership — so nodes converge eventually regardless of delivery
// order, and loops are broken by origin tagging: a node never
// re-ships a record it merged from a peer (remote applies bypass the
// mirror), and drops pushes that carry its own node id.
//
// Robustness is the headline contract: a peer that is down, slow,
// lying (corrupt frames, malformed payloads), or partitioned away
// must never stall the request hot path — the tap is an in-memory
// append, all network IO happens on per-peer goroutines — and must
// never corrupt local state: frames are CRC-checked, payloads that
// fail to decode stop the batch at the last good record, and degraded
// replication is reported via Stats/metrics, never fatal.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gaaapi/internal/retry"
	"gaaapi/internal/statestore"
)

// KindHello marks the first frame of every push: the sender's identity
// and epoch. KindSnapshot carries a full state snapshot for a peer
// that fell behind the log horizon. Neither is ever journaled.
const (
	KindHello    = "cluster-hello"
	KindSnapshot = "cluster-snapshot"
)

// hello is the payload of a KindHello frame.
type hello struct {
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch"`
}

// snapshotPayload is the payload of a KindSnapshot frame: the full
// adaptive state plus the log sequence it covers.
type snapshotPayload struct {
	Seq   uint64          `json:"seq"`
	State json.RawMessage `json:"state"`
}

// Ack is the receiver's response to a push.
type Ack struct {
	// Node is the responder's id; a sender seeing its own id has been
	// configured with itself as a peer and stops pushing there.
	Node string `json:"node"`
	// Acked is the highest sender-log sequence the receiver has
	// applied for this sender's current epoch.
	Acked uint64 `json:"acked"`
	// Corrupt reports that the batch carried an invalid frame or
	// payload past Acked; the sender will retry the tail.
	Corrupt bool `json:"corrupt,omitempty"`
}

// Config wires a Node.
type Config struct {
	// NodeID identifies this node in origin tags ("a", "web-3", ...).
	// Required, and must be unique across the fleet.
	NodeID string
	// Peers are the base URLs of the other nodes
	// ("http://10.0.0.2:8080"); the push endpoint path is appended by
	// the transport. Empty is valid: the node still accepts pushes.
	Peers []string
	// State is the tap and apply point (statestore.Attach). Required.
	State *statestore.Adaptive
	// Transport overrides peer delivery (in-process tests); nil uses
	// HTTP POST to peer + "/gaa/replicate".
	Transport Transport
	// PushInterval is the idle retry tick — how often a peer with
	// pending records is re-tried outside the immediate push on new
	// mutations (default 100ms). The replication SLO is a small
	// multiple of this.
	PushInterval time.Duration
	// PushTimeout bounds one push round-trip (default 2s).
	PushTimeout time.Duration
	// MaxBatch caps records per push (default 512).
	MaxBatch int
	// MaxLog bounds the in-memory replication log (default 65536).
	// When it overflows, the oldest records are trimmed; a peer that
	// fell behind the trimmed horizon receives a full state snapshot
	// instead of the lost records.
	MaxLog int
	// Backoff paces retries against a failing peer; the default is
	// 25ms base, x2, 2s cap, full jitter — a fleet must not retry a
	// recovered node in lockstep.
	Backoff retry.Policy
	// BreakerThreshold and BreakerCooldown configure the per-peer
	// circuit breaker (defaults 3 failures, 1s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DegradedAfter is how long without a successful push before a
	// peer counts as degraded in Stats and healthz (default 5s).
	DegradedAfter time.Duration
	// Epoch overrides the node's epoch (tests). 0 derives one from the
	// wall clock at start, so a restarted node presents a higher epoch
	// and peers reset their applied cursor for it.
	Epoch uint64
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.NodeID == "" {
		return c, fmt.Errorf("cluster: NodeID is required")
	}
	if c.State == nil {
		return c, fmt.Errorf("cluster: State is required")
	}
	if c.Transport == nil {
		c.Transport = NewHTTPTransport(nil)
	}
	if c.PushInterval <= 0 {
		c.PushInterval = 100 * time.Millisecond
	}
	if c.PushTimeout <= 0 {
		c.PushTimeout = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.MaxLog <= 0 {
		c.MaxLog = 65536
	}
	if c.Backoff.BaseDelay <= 0 {
		c.Backoff = retry.Policy{
			BaseDelay:  25 * time.Millisecond,
			Multiplier: 2,
			MaxDelay:   2 * time.Second,
			Jitter:     1,
			Rand:       c.Backoff.Rand, // keep an injected seeded source
		}
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Epoch == 0 {
		c.Epoch = uint64(c.Clock().UnixNano())
	}
	return c, nil
}

// originState tracks what has been applied from one remote origin.
type originState struct {
	epoch   uint64
	applied uint64
}

// peer is the sender-side view of one replication target.
type peer struct {
	url     string
	breaker *retry.Breaker
	notify  chan struct{}

	mu          sync.Mutex
	acked       uint64
	failures    int // consecutive, for backoff
	lastErr     string
	lastSuccess time.Time // baseline: node creation, then each acked push
}

// Node is one member of the replication mesh. Create with New, start
// the pushers with Start, serve Handler at the replicate endpoint, and
// Stop on shutdown.
type Node struct {
	cfg   Config
	peers []*peer

	mu      sync.Mutex
	log     []statestore.Record // self-originated records; log[i].Seq == horizon+i+1
	horizon uint64              // highest trimmed-away sequence (0: nothing trimmed)
	seq     uint64              // last issued sequence
	origins map[string]*originState

	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup

	// counters (atomics: read by metrics collectors on scrape).
	recordsSent      atomic.Uint64
	pushes           atomic.Uint64
	pushFailures     atomic.Uint64
	recordsApplied   atomic.Uint64
	recordsDuplicate atomic.Uint64
	corruptFrames    atomic.Uint64
	applyErrors      atomic.Uint64
	selfDrops        atomic.Uint64
	staleEpochDrops  atomic.Uint64
	snapshotsSent    atomic.Uint64
	snapshotsApplied atomic.Uint64
	panicsRecovered  atomic.Uint64
}

// New wires a node and installs the journal mirror tap. The node does
// not push until Start.
func New(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		origins: make(map[string]*originState),
		stop:    make(chan struct{}),
	}
	for _, url := range cfg.Peers {
		n.peers = append(n.peers, &peer{
			url:     url,
			breaker: retry.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
			notify:  make(chan struct{}, 1),
			// The degraded window starts from creation: a peer is only
			// degraded once it has been failing with pending records
			// for DegradedAfter, not merely because nothing ever
			// needed pushing.
			lastSuccess: cfg.Clock(),
		})
	}
	cfg.State.SetMirror(n.mirror)
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() string { return n.cfg.NodeID }

// Epoch returns the node's epoch.
func (n *Node) Epoch() uint64 { return n.cfg.Epoch }

// mirror is the statestore tap: record a locally originated mutation
// in the replication log and nudge the pushers. It runs on the request
// hot path (inside journal hooks), so it is an in-memory append and
// two non-blocking channel sends — no IO, no waiting.
func (n *Node) mirror(kind string, data json.RawMessage) {
	n.mu.Lock()
	n.seq++
	n.log = append(n.log, statestore.Record{Seq: n.seq, Kind: kind, Data: data})
	if len(n.log) > n.cfg.MaxLog {
		trim := len(n.log) - n.cfg.MaxLog
		n.horizon = n.log[trim-1].Seq
		n.log = append(n.log[:0], n.log[trim:]...)
	}
	n.mu.Unlock()
	for _, p := range n.peers {
		select {
		case p.notify <- struct{}{}:
		default:
		}
	}
}

// Start launches one pusher goroutine per peer.
func (n *Node) Start() {
	for _, p := range n.peers {
		p := p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runPeer(p)
		}()
	}
}

// Stop halts the pushers and waits for them. The mirror tap stays
// installed (mutations keep accumulating in the log) but nothing is
// shipped after Stop returns.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
}

// runPeer is one peer's push loop: push on new-record nudges and on
// the idle tick; back off (jittered) after failures so a recovered
// peer is not herd-stampeded.
func (n *Node) runPeer(p *peer) {
	tick := time.NewTicker(n.cfg.PushInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-p.notify:
		case <-tick.C:
		}
		n.pushTo(p)
	}
}

// tail returns the records to send to a peer that has acknowledged
// through acked, plus a snapshot frame when the peer is behind the
// trimmed horizon.
func (n *Node) tail(acked uint64) (recs []statestore.Record, needSnapshot bool, snapSeq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if acked < n.horizon {
		// The records this peer needs were trimmed; a snapshot covering
		// everything up to the horizon replaces them.
		needSnapshot, snapSeq = true, n.horizon
	}
	from := acked
	if from < n.horizon {
		from = n.horizon
	}
	start := int(from - n.horizon) // index into log of first unacked record
	if start >= len(n.log) {
		return nil, needSnapshot, snapSeq
	}
	end := len(n.log)
	if end-start > n.cfg.MaxBatch {
		end = start + n.cfg.MaxBatch
	}
	recs = make([]statestore.Record, end-start)
	copy(recs, n.log[start:end])
	return recs, needSnapshot, snapSeq
}

// pushTo ships the pending tail to one peer, looping while more is
// pending and the peer keeps acknowledging. Failures are absorbed:
// breaker short-circuit, consecutive-failure backoff, and return — the
// next nudge or tick retries. Nothing here ever propagates an error to
// the serving path.
func (n *Node) pushTo(p *peer) {
	for {
		p.mu.Lock()
		acked, failures := p.acked, p.failures
		p.mu.Unlock()

		recs, needSnapshot, snapSeq := n.tail(acked)
		if len(recs) == 0 && !needSnapshot {
			return // caught up
		}
		if !p.breaker.Allow() {
			return // open breaker: the cooldown tick will probe later
		}
		if failures > 0 {
			// Jittered backoff between consecutive failed pushes.
			t := time.NewTimer(n.cfg.Backoff.Delay(failures))
			select {
			case <-n.stop:
				t.Stop()
				return
			case <-t.C:
			}
		}

		frames, err := n.encodeBatch(recs, needSnapshot, snapSeq)
		if err != nil {
			// Only a marshal bug lands here; drop the snapshot attempt
			// rather than wedging the pusher.
			p.breaker.Record(nil)
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PushTimeout)
		respBody, err := n.cfg.Transport.Send(ctx, p.url, frames)
		cancel()
		n.pushes.Add(1)
		if err == nil {
			var ack Ack
			if jerr := json.Unmarshal(respBody, &ack); jerr != nil {
				err = fmt.Errorf("cluster: bad ack from %s: %w", p.url, jerr)
			} else if ack.Node == n.cfg.NodeID {
				// Misconfiguration: we are our own peer. Stop pushing.
				n.selfDrops.Add(1)
				p.breaker.Record(nil)
				p.mu.Lock()
				p.acked = n.currentSeq()
				p.failures = 0
				p.mu.Unlock()
				return
			} else {
				p.breaker.Record(nil)
				p.mu.Lock()
				if ack.Acked > p.acked {
					n.recordsSent.Add(ack.Acked - p.acked)
					p.acked = ack.Acked
				}
				p.failures = 0
				p.lastErr = ""
				p.lastSuccess = n.cfg.Clock()
				p.mu.Unlock()
				if needSnapshot {
					n.snapshotsSent.Add(1)
				}
				if ack.Corrupt {
					// The peer rejected part of the batch; retrying the
					// same bytes is unlikely to fare better immediately.
					n.pushFailures.Add(1)
					return
				}
				continue // more tail may be pending
			}
		}
		n.pushFailures.Add(1)
		p.breaker.Record(err)
		p.mu.Lock()
		p.failures++
		p.lastErr = err.Error()
		p.mu.Unlock()
		return
	}
}

// encodeBatch frames hello [+ snapshot] + records.
func (n *Node) encodeBatch(recs []statestore.Record, withSnapshot bool, snapSeq uint64) ([]byte, error) {
	helloData, err := json.Marshal(hello{Node: n.cfg.NodeID, Epoch: n.cfg.Epoch})
	if err != nil {
		return nil, err
	}
	batch := make([]statestore.Record, 0, len(recs)+2)
	batch = append(batch, statestore.Record{Kind: KindHello, Data: helloData})
	if withSnapshot {
		state, err := n.cfg.State.StateSnapshot()
		if err != nil {
			return nil, err
		}
		snapData, err := json.Marshal(snapshotPayload{Seq: snapSeq, State: state})
		if err != nil {
			return nil, err
		}
		batch = append(batch, statestore.Record{Seq: snapSeq, Kind: KindSnapshot, Data: snapData})
	}
	batch = append(batch, recs...)
	return statestore.EncodeFrames(batch)
}

func (n *Node) currentSeq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq
}

// Receive applies one pushed batch of frames and returns the ack. It
// is the transport-independent receiver core: CRC-invalid frames stop
// the scan at the last good record, malformed payloads stop the apply,
// and both are reported in the ack (Corrupt) and counted — never
// propagated as a failure that could take the node down. err is
// non-nil only for batches rejected outright (no hello, foreign
// protocol); state is untouched then.
func (n *Node) Receive(body []byte) (Ack, error) {
	defer func() {
		// A decoding or merge panic must not take down the serving
		// process: count it and let the deferred handler in Handler
		// turn it into a 500. (No recover here — the goroutine's own
		// recover in Handler does it — this defer only exists to keep
		// the counter accurate if a panic unwinds through Receive.)
		if r := recover(); r != nil {
			n.panicsRecovered.Add(1)
			panic(r)
		}
	}()

	recs, ferr := statestore.DecodeFrames(body)
	if ferr != nil {
		n.corruptFrames.Add(1)
	}
	if len(recs) == 0 || recs[0].Kind != KindHello {
		return Ack{Node: n.cfg.NodeID}, fmt.Errorf("cluster: push without hello frame")
	}
	var h hello
	if err := json.Unmarshal(recs[0].Data, &h); err != nil || h.Node == "" {
		return Ack{Node: n.cfg.NodeID}, fmt.Errorf("cluster: malformed hello")
	}
	last := recs[len(recs)-1].Seq
	if h.Node == n.cfg.NodeID {
		// Our own records looped back (we are someone's misconfigured
		// peer, or a relay echoed them). Acknowledge so the sender
		// stops resending, apply nothing.
		n.selfDrops.Add(1)
		return Ack{Node: n.cfg.NodeID, Acked: last}, nil
	}

	n.mu.Lock()
	st, ok := n.origins[h.Node]
	switch {
	case !ok:
		st = &originState{epoch: h.Epoch}
		n.origins[h.Node] = st
	case h.Epoch > st.epoch:
		// The origin restarted: new epoch, fresh sequence space.
		st.epoch = h.Epoch
		st.applied = 0
	case h.Epoch < st.epoch:
		// A zombie process with a stale epoch. Ack what it offered so
		// it goes quiet, apply nothing.
		n.mu.Unlock()
		n.staleEpochDrops.Add(1)
		return Ack{Node: n.cfg.NodeID, Acked: last}, nil
	}
	n.mu.Unlock()

	ack := Ack{Node: n.cfg.NodeID, Corrupt: ferr != nil}
	for _, rec := range recs[1:] {
		if rec.Kind == KindSnapshot {
			var sp snapshotPayload
			if err := json.Unmarshal(rec.Data, &sp); err != nil {
				n.applyErrors.Add(1)
				ack.Corrupt = true
				break
			}
			if _, err := n.cfg.State.ApplyRemoteSnapshot(sp.State); err != nil {
				n.applyErrors.Add(1)
				ack.Corrupt = true
				break
			}
			n.snapshotsApplied.Add(1)
			n.advanceApplied(st, sp.Seq)
			continue
		}
		if rec.Seq <= n.appliedSeq(st) {
			n.recordsDuplicate.Add(1)
			continue
		}
		changed, err := n.cfg.State.ApplyRemote(rec)
		if err != nil {
			// Valid CRC but lying payload: stop at the last good
			// record; the ack tells the sender how far we got.
			n.applyErrors.Add(1)
			ack.Corrupt = true
			break
		}
		if changed {
			n.recordsApplied.Add(1)
		} else {
			n.recordsDuplicate.Add(1)
		}
		n.advanceApplied(st, rec.Seq)
	}
	ack.Acked = n.appliedSeq(st)
	return ack, nil
}

func (n *Node) appliedSeq(st *originState) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return st.applied
}

func (n *Node) advanceApplied(st *originState, seq uint64) {
	n.mu.Lock()
	if seq > st.applied {
		st.applied = seq
	}
	n.mu.Unlock()
}

// PeerStatus is one peer's replication health.
type PeerStatus struct {
	URL string `json:"url"`
	// Acked is the highest local-log sequence the peer confirmed.
	Acked uint64 `json:"acked"`
	// Lag is how many local records the peer has not confirmed.
	Lag uint64 `json:"lag"`
	// Breaker is the circuit state ("closed", "open", "half-open").
	Breaker string `json:"breaker"`
	// Failures is the current consecutive-failure streak.
	Failures int `json:"failures,omitempty"`
	// LastError is the most recent push error ("" when healthy).
	LastError string `json:"last_error,omitempty"`
	// Degraded: no successful push within DegradedAfter (and there is
	// something to push or there never was a success).
	Degraded bool `json:"degraded,omitempty"`
	// BreakerOpens counts how often this peer tripped the breaker.
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
}

// OriginStatus is the receive-side cursor for one remote origin.
type OriginStatus struct {
	Node    string `json:"node"`
	Epoch   uint64 `json:"epoch"`
	Applied uint64 `json:"applied"`
}

// Stats is a point-in-time snapshot of the node's replication state.
type Stats struct {
	NodeID  string `json:"node_id"`
	Epoch   uint64 `json:"epoch"`
	Seq     uint64 `json:"seq"`     // local replication-log head
	LogLen  int    `json:"log_len"` // records held for peers
	Horizon uint64 `json:"horizon"` // trimmed-away prefix boundary

	Pushes           uint64 `json:"pushes"`
	RecordsSent      uint64 `json:"records_sent"`
	PushFailures     uint64 `json:"push_failures"`
	RecordsApplied   uint64 `json:"records_applied"`
	RecordsDuplicate uint64 `json:"records_duplicate"`
	CorruptFrames    uint64 `json:"corrupt_frames"`
	ApplyErrors      uint64 `json:"apply_errors"`
	SelfDrops        uint64 `json:"self_drops"`
	StaleEpochDrops  uint64 `json:"stale_epoch_drops"`
	SnapshotsSent    uint64 `json:"snapshots_sent"`
	SnapshotsApplied uint64 `json:"snapshots_applied"`
	PanicsRecovered  uint64 `json:"panics_recovered"`

	// MaxLag is the largest per-peer lag — the convergence-lag metric.
	MaxLag uint64 `json:"max_lag"`
	// DegradedPeers counts peers currently degraded.
	DegradedPeers int `json:"degraded_peers"`

	Peers   []PeerStatus   `json:"peers,omitempty"`
	Origins []OriginStatus `json:"origins,omitempty"`
}

// Stats snapshots the node.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	s := Stats{
		NodeID:  n.cfg.NodeID,
		Epoch:   n.cfg.Epoch,
		Seq:     n.seq,
		LogLen:  len(n.log),
		Horizon: n.horizon,
	}
	for node, st := range n.origins {
		s.Origins = append(s.Origins, OriginStatus{Node: node, Epoch: st.epoch, Applied: st.applied})
	}
	seq := n.seq
	n.mu.Unlock()

	s.Pushes = n.pushes.Load()
	s.RecordsSent = n.recordsSent.Load()
	s.PushFailures = n.pushFailures.Load()
	s.RecordsApplied = n.recordsApplied.Load()
	s.RecordsDuplicate = n.recordsDuplicate.Load()
	s.CorruptFrames = n.corruptFrames.Load()
	s.ApplyErrors = n.applyErrors.Load()
	s.SelfDrops = n.selfDrops.Load()
	s.StaleEpochDrops = n.staleEpochDrops.Load()
	s.SnapshotsSent = n.snapshotsSent.Load()
	s.SnapshotsApplied = n.snapshotsApplied.Load()
	s.PanicsRecovered = n.panicsRecovered.Load()

	now := n.cfg.Clock()
	for _, p := range n.peers {
		p.mu.Lock()
		ps := PeerStatus{
			URL:          p.url,
			Acked:        p.acked,
			Breaker:      p.breaker.State().String(),
			Failures:     p.failures,
			LastError:    p.lastErr,
			BreakerOpens: p.breaker.Opens(),
		}
		if seq > p.acked {
			ps.Lag = seq - p.acked
		}
		ps.Degraded = ps.Lag > 0 && now.Sub(p.lastSuccess) > n.cfg.DegradedAfter
		p.mu.Unlock()
		if ps.Lag > s.MaxLag {
			s.MaxLag = ps.Lag
		}
		if ps.Degraded {
			s.DegradedPeers++
		}
		s.Peers = append(s.Peers, ps)
	}
	return s
}

// CaughtUp reports whether every peer has confirmed the whole local
// log (vacuously true with no peers).
func (n *Node) CaughtUp() bool {
	st := n.Stats()
	return st.MaxLag == 0
}
