package cluster

import (
	"encoding/json"
	"testing"
	"time"

	"gaaapi/internal/netblock"
	"gaaapi/internal/statestore"
)

// FuzzReceive throws arbitrary bytes at the replication receiver: the
// CRC frame decoder plus the hello/epoch/apply pipeline. The contract
// under fuzz is the robustness headline — a lying peer can make the
// receiver reject or partially apply a batch, but can never panic it,
// and the ack must never acknowledge sequences past what a valid
// prefix carried. Seeds cover the interesting shapes (valid batch,
// torn tail, bit-flipped CRC, hello-less batch, lying payloads);
// testdata/fuzz holds the committed corpus, mirroring the torn-WAL
// fixtures in internal/statestore/testdata.
func FuzzReceive(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a wal frame at all"))

	mkBatch := func(node string, epoch uint64, recs ...statestore.Record) []byte {
		h, _ := json.Marshal(hello{Node: node, Epoch: epoch})
		frames, err := statestore.EncodeFrames(append(
			[]statestore.Record{{Kind: KindHello, Data: h}}, recs...))
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		return frames
	}
	ev, _ := json.Marshal(netblock.Event{Addr: "203.0.113.5", Expiry: time.Unix(4102444800, 0)})
	valid := mkBatch("a", 7,
		statestore.Record{Seq: 1, Kind: statestore.KindBlock, Data: ev},
		statestore.Record{Seq: 2, Kind: statestore.KindGroup, Data: json.RawMessage(`{"group":"BadGuys","member":"203.0.113.5"}`)},
	)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // corrupt CRC or payload mid-batch
	f.Add(flipped)
	// Hello-less, self-addressed, stale-epoch, lying-payload shapes.
	noHello, _ := statestore.EncodeFrames([]statestore.Record{{Seq: 1, Kind: statestore.KindBlock, Data: ev}})
	f.Add(noHello)
	f.Add(mkBatch("fuzz-node", 1, statestore.Record{Seq: 1, Kind: statestore.KindBlock, Data: ev}))
	f.Add(mkBatch("a", 7, statestore.Record{Seq: 3, Kind: statestore.KindBlock, Data: json.RawMessage(`{"addr": 12}`)}))
	f.Add(mkBatch("a", 7, statestore.Record{Seq: 4, Kind: KindSnapshot, Data: json.RawMessage(`{"seq":4,"state":"bogus"}`)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		n := fuzzNode(t)
		ack, err := n.Receive(data)
		if err != nil {
			return // rejected outright: fine, as long as it didn't panic
		}
		if ack.Node != "fuzz-node" {
			t.Fatalf("ack carries wrong node: %+v", ack)
		}
		// Applying the same bytes again must be monotone: the cursor
		// never goes backwards and the second ack never exceeds the
		// first by re-applying.
		ack2, err := n.Receive(data)
		if err == nil && ack2.Acked < ack.Acked {
			t.Fatalf("ack regressed on redelivery: %d -> %d", ack.Acked, ack2.Acked)
		}
	})
}

// fuzzNode builds a minimal node named fuzz-node with store-less state.
func fuzzNode(t *testing.T) *Node {
	t.Helper()
	a, err := statestore.Attach(nil, statestore.Components{
		Blocks: netblock.NewSet(),
	})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	n, err := New(Config{NodeID: "fuzz-node", State: a, Transport: NewLoopTransport()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(n.Stop)
	return n
}
