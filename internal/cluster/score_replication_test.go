package cluster

import (
	"testing"
	"time"

	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/netblock"
	"gaaapi/internal/statestore"
)

// scorerNode wires a node whose state includes a synchronous adaptive
// scoring engine, so score events and profile checkpoints flow through
// the same mirror-and-push machinery as the other record kinds.
func scorerNode(t *testing.T, lt *LoopTransport, id string, peers ...string) (*adaptive.Engine, *netblock.Set, *Node) {
	t.Helper()
	blocks := netblock.NewSet()
	threat := ids.NewManager(ids.Low)
	cfg := adaptive.Defaults()
	cfg.Synchronous = true
	cfg.MinSamples = 4
	cfg.BlockScore = 1.2 // a short burst scores ~1.4; the floor gates blocking
	eng := adaptive.New(cfg, threat, blocks)
	a, err := statestore.Attach(nil, statestore.Components{
		Blocks: blocks,
		Threat: threat,
		Scorer: eng,
	})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	n, err := New(Config{
		NodeID:       id,
		Peers:        peers,
		State:        a,
		Transport:    lt,
		PushInterval: 5 * time.Millisecond,
		PushTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	lt.Register("loop://"+id, n)
	t.Cleanup(n.Stop)
	return eng, blocks, n
}

// attackSamples feeds n high-severity denied probes into eng.
func attackSamples(eng *adaptive.Engine, source string, n int, start time.Time) {
	for i := 0; i < n; i++ {
		eng.ObserveRequest(adaptive.Sample{
			Time:   start.Add(time.Duration(i) * 50 * time.Millisecond),
			Source: source, Path: "/cgi-bin/probe", Query: "x=%00",
			InputLen: 800, Denied: true, Severity: ids.SevHigh,
		})
	}
}

// A score earned on one node must reach the peer, and the block the
// origin issued from it must enforce there — the acceptance path for
// fleet-wide per-source enforcement.
func TestScoreEventsReplicateAndBlockOnPeer(t *testing.T) {
	lt := NewLoopTransport()
	ea, ba, na := scorerNode(t, lt, "a", "loop://b")
	eb, bb, _ := scorerNode(t, lt, "b", "loop://a")
	na.Start()

	start := time.Date(2003, 5, 1, 9, 0, 0, 0, time.UTC)
	attackSamples(ea, "203.0.113.99", 12, start)
	if !ba.Blocked("203.0.113.99") {
		t.Fatalf("origin did not block the attacker (score %v)", ea.SourceScore("203.0.113.99"))
	}

	eventually(t, "block enforced on peer", func() bool { return bb.Blocked("203.0.113.99") })
	eventually(t, "score merged on peer", func() bool {
		return eb.SourceScore("203.0.113.99") > 0
	})
}

// Split evidence: neither node alone reaches the evidence floor, but
// the additive sample-delta merge lets the fleet converge on a block.
func TestSplitEvidenceConvergesToBlock(t *testing.T) {
	lt := NewLoopTransport()
	ea, ba, na := scorerNode(t, lt, "a", "loop://b")
	eb, bb, nb := scorerNode(t, lt, "b", "loop://a")
	na.Start()
	nb.Start() // evidence flows both ways

	// 3 samples per node: below the MinSamples=4 floor individually.
	// ScoreEventDelta (0.5) makes each node journal its hot score with
	// its local sample delta; merged evidence is 6 >= 4.
	start := time.Date(2003, 5, 1, 9, 0, 0, 0, time.UTC)
	attackSamples(ea, "198.51.100.7", 3, start)
	attackSamples(eb, "198.51.100.7", 3, start)

	eventually(t, "split evidence blocks on both nodes", func() bool {
		return ba.Blocked("198.51.100.7") && bb.Blocked("198.51.100.7")
	})
}

// Profile checkpoints replicate so a fresh node starts with trained
// baselines instead of scoring blind until MinTraining.
func TestProfileCheckpointsReplicate(t *testing.T) {
	lt := NewLoopTransport()
	ea, _, na := scorerNode(t, lt, "a", "loop://b")
	eb, _, _ := scorerNode(t, lt, "b", "loop://a")
	na.Start()

	start := time.Date(2003, 5, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		ea.ObserveRequest(adaptive.Sample{
			Time:   start.Add(time.Duration(i) * time.Second),
			Source: "10.0.0.1", Path: "/index.html", InputLen: 20,
		})
	}
	eventually(t, "profile checkpoint replicated", func() bool {
		for _, cp := range eb.Profiles() {
			if cp.Resource == "/index.html" && cp.N >= 128 {
				return true
			}
		}
		return false
	})
}
