package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

func jsonBytes(v any) ([]byte, error) { return json.Marshal(v) }

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encode failed", http.StatusInternalServerError)
		return
	}
	w.Write(b)
}

// ReplicatePath is the HTTP path peers push replication batches to.
const ReplicatePath = "/gaa/replicate"

// maxPushBody bounds one replication push: generous for a MaxBatch of
// journal records plus a snapshot, small enough that a lying peer
// cannot balloon the receiver's memory.
const maxPushBody = 8 << 20

// Transport delivers one framed batch to a peer and returns the raw
// ack body. Implementations must honor ctx (the push timeout) — a
// hung peer is the main thing the pusher defends against.
type Transport interface {
	Send(ctx context.Context, peerURL string, frames []byte) ([]byte, error)
}

// HTTPTransport pushes batches with POST peerURL+ReplicatePath.
type HTTPTransport struct {
	client *http.Client
}

// NewHTTPTransport returns an HTTP transport; nil client uses
// http.DefaultClient (per-push deadlines come from the context).
func NewHTTPTransport(client *http.Client) *HTTPTransport {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPTransport{client: client}
}

// Send implements Transport.
func (t *HTTPTransport) Send(ctx context.Context, peerURL string, frames []byte) ([]byte, error) {
	url := strings.TrimSuffix(peerURL, "/") + ReplicatePath
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(frames))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s: %s", peerURL, resp.Status)
	}
	return body, nil
}

// Handler returns the receiver endpoint to serve at ReplicatePath. A
// panic while applying a batch is recovered into a 500 — a lying peer
// must not take the serving process down.
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				n.panicsRecovered.Add(1)
				http.Error(w, "replication apply failed", http.StatusInternalServerError)
			}
		}()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxPushBody))
		if err != nil {
			http.Error(w, "read failed", http.StatusBadRequest)
			return
		}
		ack, err := n.Receive(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, ack)
	})
}

// LoopTransport is an in-process transport for tests and simulated
// campaigns: peer URLs map to registered handlers, and links can be
// cut and healed to simulate network partitions — per destination
// (Cut: everyone loses the peer) or per direction pair (CutPair via a
// Bind-tagged sender: an asymmetric or clean two-sided partition). It
// is safe for concurrent use.
type LoopTransport struct {
	mu       sync.Mutex
	handlers map[string]func([]byte) ([]byte, error)
	cut      map[string]bool
	cutPair  map[[2]string]bool
	// Hang, when set for a URL, makes Send block until ctx expires —
	// the pathological slow peer.
	hang map[string]bool
}

// NewLoopTransport returns an empty loop transport.
func NewLoopTransport() *LoopTransport {
	return &LoopTransport{
		handlers: make(map[string]func([]byte) ([]byte, error)),
		cut:      make(map[string]bool),
		cutPair:  make(map[[2]string]bool),
		hang:     make(map[string]bool),
	}
}

// Register binds a node to a URL: pushes sent to url are applied by
// the node's Receive.
func (t *LoopTransport) Register(url string, n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[url] = func(frames []byte) ([]byte, error) {
		ack, err := n.Receive(frames)
		if err != nil {
			return nil, err
		}
		return jsonBytes(ack)
	}
}

// RegisterFunc binds a raw handler to a URL (corrupt/lying-peer tests).
func (t *LoopTransport) RegisterFunc(url string, fn func([]byte) ([]byte, error)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[url] = fn
}

// Cut severs the link to url: sends fail immediately, like a refused
// connection.
func (t *LoopTransport) Cut(url string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut[url] = true
}

// Heal restores the link to url.
func (t *LoopTransport) Heal(url string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.cut, url)
	delete(t.hang, url)
}

// Hang makes sends to url block until their context expires — the
// slow-peer failure mode, distinct from Cut's fast failure.
func (t *LoopTransport) Hang(url string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hang[url] = true
}

// CutPair severs both directions between the two URLs; other links
// are untouched. Only Bind-tagged senders observe pair cuts.
func (t *LoopTransport) CutPair(a, b string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cutPair[[2]string{a, b}] = true
	t.cutPair[[2]string{b, a}] = true
}

// HealPair restores both directions between the two URLs.
func (t *LoopTransport) HealPair(a, b string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.cutPair, [2]string{a, b})
	delete(t.cutPair, [2]string{b, a})
}

// Bind returns a sender view tagged with self's URL, so pair cuts
// (CutPair) apply to its sends. Untagged Send ignores pair cuts.
func (t *LoopTransport) Bind(self string) Transport {
	return boundLoop{t: t, self: self}
}

type boundLoop struct {
	t    *LoopTransport
	self string
}

func (b boundLoop) Send(ctx context.Context, peerURL string, frames []byte) ([]byte, error) {
	return b.t.send(ctx, b.self, peerURL, frames)
}

// Send implements Transport.
func (t *LoopTransport) Send(ctx context.Context, peerURL string, frames []byte) ([]byte, error) {
	return t.send(ctx, "", peerURL, frames)
}

func (t *LoopTransport) send(ctx context.Context, from, peerURL string, frames []byte) ([]byte, error) {
	t.mu.Lock()
	h, ok := t.handlers[peerURL]
	isCut, isHang := t.cut[peerURL], t.hang[peerURL]
	if from != "" && t.cutPair[[2]string{from, peerURL}] {
		isCut = true
	}
	t.mu.Unlock()
	if isHang {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if isCut {
		return nil, fmt.Errorf("cluster: link to %s cut", peerURL)
	}
	if !ok {
		return nil, fmt.Errorf("cluster: no handler for %s", peerURL)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h(frames)
}
