package conditions

import (
	"fmt"
	"net"
	"regexp"
	"strconv"
	"strings"
	"time"

	"gaaapi/internal/ids"
)

// This file exports compile/parse validators for the built-in condition
// value languages, so the static analyzer (internal/eacl/analysis) and
// the runtime evaluators share one source of truth: a value the
// analyzer accepts is a value the evaluator can evaluate, and a value
// the analyzer rejects is one the evaluator would bounce to MAYBE at
// run time — a silent policy failure the paper's section 2 future-work
// tool is meant to catch before deployment.

// HasValueRef reports whether the condition value contains an '@name'
// runtime-value reference (gaa.ValueProvider). Referenced values are
// resolved at evaluation time, so static value validation must skip
// them: the shape of the final value is unknowable at lint time.
func HasValueRef(value string) bool {
	for _, tok := range strings.Fields(value) {
		if strings.HasPrefix(tok, "@") {
			return true
		}
		if i := strings.Index(tok, "@"); i > 0 && strings.ContainsAny(tok[i-1:i], "=<>!") {
			return true
		}
	}
	return false
}

// ValidateRegexList checks a pre_cond_regex value: a non-empty list of
// patterns where every "re:"-prefixed pattern must compile as a Go
// regular expression (plain patterns are '*'-globs and always valid).
func ValidateRegexList(value string) error {
	patterns := strings.Fields(value)
	if len(patterns) == 0 {
		return fmt.Errorf("empty pattern list")
	}
	for _, p := range patterns {
		if expr, isRe := strings.CutPrefix(p, "re:"); isRe {
			if _, err := regexp.Compile(expr); err != nil {
				return fmt.Errorf("regexp %q does not compile: %v", expr, err)
			}
		}
	}
	return nil
}

// ValidateLocationList checks a pre_cond_location value: a non-empty
// list where every pattern containing '/' must parse as a CIDR range
// (the rest are address globs).
func ValidateLocationList(value string) error {
	patterns := strings.Fields(value)
	if len(patterns) == 0 {
		return fmt.Errorf("empty location list")
	}
	for _, p := range patterns {
		if strings.Contains(p, "/") {
			if _, _, err := net.ParseCIDR(p); err != nil {
				return fmt.Errorf("bad CIDR %q", p)
			}
		}
	}
	return nil
}

// TimeWindow is the parsed form of a pre_cond_time_window value: a
// daily minute interval plus an optional weekday restriction. The
// evaluator tests the two dimensions independently (day-of-now must be
// in Days, minute-of-now in the interval), so windows wrapping midnight
// ("22:00-06:00") are [Start,1440)∪[0,End) on every listed day.
type TimeWindow struct {
	// Start and End are minutes-of-day; the window is [Start, End)
	// when Start <= End and wraps midnight when Start > End.
	Start, End int
	// Days[time.Weekday] reports whether the window is active on that
	// weekday. All true when the spec had no day restriction.
	Days [7]bool
}

// ParseTimeWindowSpec parses "HH:MM-HH:MM [days]" exactly as the
// runtime evaluator does.
func ParseTimeWindowSpec(value string) (TimeWindow, error) {
	var w TimeWindow
	fields := strings.Fields(value)
	if len(fields) == 0 || len(fields) > 2 {
		return w, fmt.Errorf("want \"HH:MM-HH:MM [days]\", got %q", value)
	}
	start, end, err := parseWindow(fields[0])
	if err != nil {
		return w, err
	}
	w.Start, w.End = start, end
	for d := range w.Days {
		w.Days[d] = true
	}
	if len(fields) == 2 {
		for d := time.Sunday; d <= time.Saturday; d++ {
			ok, err := dayMatches(fields[1], d)
			if err != nil {
				return w, err
			}
			w.Days[d] = ok
		}
	}
	return w, nil
}

// Empty reports whether the window can never contain an instant: the
// minute interval is empty (Start == End without wrapping) or no day is
// active. A wrapping window (Start > End) is never empty.
func (w TimeWindow) Empty() bool {
	if w.Start == w.End {
		return true
	}
	for _, on := range w.Days {
		if on {
			return false
		}
	}
	return true
}

// minuteSpans returns the window's minute-of-day intervals.
func (w TimeWindow) minuteSpans() [][2]int {
	if w.Start <= w.End {
		return [][2]int{{w.Start, w.End}}
	}
	return [][2]int{{w.Start, 24 * 60}, {0, w.End}}
}

// Intersects reports whether some instant lies inside both windows:
// they share an active weekday and their minute intervals overlap.
func (w TimeWindow) Intersects(o TimeWindow) bool {
	shareDay := false
	for d := range w.Days {
		if w.Days[d] && o.Days[d] {
			shareDay = true
			break
		}
	}
	if !shareDay {
		return false
	}
	for _, a := range w.minuteSpans() {
		for _, b := range o.minuteSpans() {
			if a[0] < b[1] && b[0] < a[1] {
				return true
			}
		}
	}
	return false
}

// ValidateThresholdSpec checks a pre_cond_threshold value:
// "counter=<name> key=<param> max=<n> window=<duration>" with a
// positive count and a positive window, as thresholdEvaluator requires.
func ValidateThresholdSpec(value string) error {
	kv, err := parseKV(value)
	if err != nil {
		return err
	}
	if kv["counter"] == "" || kv["key"] == "" {
		return fmt.Errorf("threshold needs counter= and key=: %q", value)
	}
	if max, err := strconv.Atoi(kv["max"]); err != nil || max <= 0 {
		return fmt.Errorf("bad max %q (want a positive integer)", kv["max"])
	}
	if window, err := time.ParseDuration(kv["window"]); err != nil || window <= 0 {
		return fmt.Errorf("bad window %q (want a positive duration)", kv["window"])
	}
	return nil
}

// SplitComparison exposes the evaluators' comparison parser: it splits
// "input_length>1000" into the left operand (possibly empty), the
// comparator token and the right operand, exactly as exprEvaluator,
// quotaEvaluator and threatEvaluator do. The static reasoner
// (internal/eacl/reason) uses it to derive boundary candidates for its
// abstract domain from the policy's own bounds.
func SplitComparison(value string) (left, op, right string, err error) {
	l, o, r, err := splitCmp(value)
	if err != nil {
		return "", "", "", err
	}
	return l, o.String(), r, nil
}

// ValidateComparison checks a pre_cond_expr or mid_cond_quota value: a
// parameter name, a comparator and an integer bound ("input_length>1000").
func ValidateComparison(value string) error {
	left, _, right, err := splitCmp(value)
	if err != nil {
		return err
	}
	if left == "" {
		return fmt.Errorf("comparison needs a parameter name: %q", value)
	}
	if _, err := strconv.ParseInt(right, 10, 64); err != nil {
		return fmt.Errorf("bad number %q", right)
	}
	return nil
}

// ThreatLevelSet parses a pre_cond_system_threat_level value ("=high",
// ">low", "<=medium") and returns the set of threat levels satisfying
// it, in ascending order. An empty comparison ("<low") returns an empty
// set and no error — the caller decides whether an unsatisfiable
// condition is a finding.
func ThreatLevelSet(value string) ([]ids.Level, error) {
	left, op, right, err := splitCmp(value)
	if err != nil {
		return nil, err
	}
	if left != "" {
		return nil, fmt.Errorf("unexpected left operand %q", left)
	}
	want, err := ids.ParseLevel(right)
	if err != nil {
		return nil, err
	}
	var out []ids.Level
	for _, l := range []ids.Level{ids.Low, ids.Medium, ids.High} {
		if op.holdsInt(int64(l), int64(want)) {
			out = append(out, l)
		}
	}
	return out, nil
}

// ValidateSHA256Spec checks a post_cond_file_sha256 value:
// "<path> <64 lowercase hex digits>".
func ValidateSHA256Spec(value string) error {
	fields := strings.Fields(value)
	if len(fields) != 2 {
		return fmt.Errorf("want \"<path> <sha256 hex>\", got %q", value)
	}
	digest := fields[1]
	if len(digest) != 64 {
		return fmt.Errorf("digest %q is %d hex digits, want 64", digest, len(digest))
	}
	for i := 0; i < len(digest); i++ {
		c := digest[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("digest %q is not lowercase hex", digest)
		}
	}
	return nil
}

// ValidateValue statically checks a condition value for the named
// built-in condition type. It returns nil for condition types without a
// value language (accessid_*, signature, redirect, ...) and for values
// carrying '@' runtime references, whose final shape is unknown until
// evaluation.
func ValidateValue(condType, value string) error {
	if HasValueRef(value) {
		return nil
	}
	switch condType {
	case "regex":
		return ValidateRegexList(value)
	case "location":
		return ValidateLocationList(value)
	case "time_window":
		_, err := ParseTimeWindowSpec(value)
		return err
	case "threshold":
		return ValidateThresholdSpec(value)
	case "expr", "quota":
		return ValidateComparison(value)
	case "system_threat_level":
		_, err := ThreatLevelSet(value)
		return err
	case "file_sha256":
		return ValidateSHA256Spec(value)
	default:
		return nil
	}
}
