package conditions

import (
	"context"
	"fmt"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
)

// userEvaluator implements pre_cond_accessid_USER: the requester must
// be an authenticated user matching the condition value ("*" means any
// authenticated user, as in the paper's section 7.1 local policy). It
// is a requirement: failure denies with an authentication challenge, so
// the web server can answer HTTP_AUTHREQUIRED.
type userEvaluator struct{}

func (userEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	user, ok := req.Params.Get(gaa.ParamUser, cond.DefAuth)
	if !ok || user == "" {
		return gaa.Outcome{
			Result:    gaa.No,
			Class:     gaa.ClassRequirement,
			Challenge: fmt.Sprintf("Basic realm=%q", cond.DefAuth),
			Detail:    "no authenticated user",
		}
	}
	for _, want := range splitFields(cond.Value) {
		if eacl.Glob(want, user) {
			return gaa.MetOutcome(gaa.ClassRequirement, "user "+user)
		}
	}
	detail := "user not in list"
	if req.Trace {
		detail = fmt.Sprintf("user %q not in %q", user, cond.Value)
	}
	return gaa.Outcome{
		Result:    gaa.No,
		Class:     gaa.ClassRequirement,
		Challenge: fmt.Sprintf("Basic realm=%q", cond.DefAuth),
		Detail:    detail,
	}
}

// groupEvaluator implements pre_cond_accessid_GROUP: membership of the
// requester's group key (client address by default, or the
// authenticated user) in a named group — the section 7.2 BadGuys
// blacklist check. It is a selector: a non-member simply makes the
// entry inapplicable.
type groupEvaluator struct {
	store *groups.Store
}

func (g groupEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if g.store == nil {
		return gaa.UnevaluatedOutcome("no group store configured")
	}
	group := strings.TrimSpace(cond.Value)
	if group == "" {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Detail: "empty group name"}
	}
	// The group key is the identity checked against the member list:
	// the explicit group_key parameter, else the authenticated user,
	// else the client address ("reading a log file of the suspicious IP
	// addresses and trying to find an IP address that matches", paper
	// section 7.2).
	for _, paramType := range []string{gaa.ParamGroupKey, gaa.ParamUser, gaa.ParamClientIP} {
		key, ok := req.Params.Get(paramType, cond.DefAuth)
		if !ok || key == "" {
			continue
		}
		if g.store.Contains(group, key) {
			if req.Trace {
				return gaa.MetOutcome(gaa.ClassSelector, fmt.Sprintf("%s in group %s", key, group))
			}
			return gaa.MetOutcome(gaa.ClassSelector, "member of "+group)
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "not a member of "+group)
}

// hostEvaluator implements pre_cond_accessid_HOST: the client host
// (name or address) must glob-match one of the condition patterns. It
// is a selector.
type hostEvaluator struct{}

func (hostEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	host, ok := req.Params.Get(gaa.ParamClientHost, cond.DefAuth)
	if !ok || host == "" {
		host, ok = req.Params.Get(gaa.ParamClientIP, cond.DefAuth)
	}
	if !ok || host == "" {
		return gaa.UnevaluatedOutcome("no client host parameter")
	}
	for _, want := range splitFields(cond.Value) {
		if eacl.Glob(want, host) {
			return gaa.MetOutcome(gaa.ClassSelector, "host "+host)
		}
	}
	if req.Trace {
		return gaa.FailedOutcome(gaa.ClassSelector, fmt.Sprintf("host %q does not match %q", host, cond.Value))
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "host not in list")
}
