// Package conditions provides the built-in GAA-API condition
// evaluators used by the paper's policies: access identity (USER /
// GROUP / HOST), time windows, network location, the IDS-supplied
// system threat level, glob/regex attack signatures, numeric parameter
// expressions, sliding-window thresholds, adaptive redirection, and the
// execution-phase quota and file-integrity conditions.
//
// Evaluators are pure policy: side-effecting response actions (notify,
// blacklist update, audit) live in package actions.
package conditions

import (
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// Deps carries the substrate services the built-in evaluators consult.
// Nil fields disable the corresponding evaluators (they evaluate to
// MAYBE, exactly as an unregistered routine would).
type Deps struct {
	// Threat supplies the current system threat level
	// (pre_cond_system_threat_level).
	Threat ids.LevelProvider
	// Groups backs pre_cond_accessid_GROUP membership checks.
	Groups *groups.Store
	// Counters backs pre_cond_threshold sliding-window checks.
	Counters *Counters
	// Signatures backs pre_cond_signature database lookups.
	Signatures *ids.DB
}

// Builtin returns the built-in evaluator registered under name — the
// same names the GAA configuration files use (package config, the
// paper's "configuration files list routines ... for evaluating
// conditions specified in the policy files").
func Builtin(name string, deps Deps) (gaa.Evaluator, bool) {
	switch name {
	case "accessid_USER":
		return userEvaluator{}, true
	case "accessid_GROUP":
		return groupEvaluator{store: deps.Groups}, true
	case "accessid_HOST":
		return hostEvaluator{}, true
	case "system_threat_level":
		return threatEvaluator{provider: deps.Threat}, true
	case "time_window":
		return timeWindowEvaluator{}, true
	case "location":
		return locationEvaluator{}, true
	case "regex":
		return regexEvaluator{}, true
	case "signature":
		return signatureEvaluator{db: deps.Signatures}, true
	case "expr":
		return exprEvaluator{}, true
	case "threshold":
		return thresholdEvaluator{counters: deps.Counters}, true
	case "redirect":
		return redirectEvaluator{}, true
	case "quota":
		return quotaEvaluator{}, true
	case "file_sha256":
		return fileSHA256Evaluator{}, true
	default:
		return nil, false
	}
}

// Names lists the built-in condition evaluator names.
func Names() []string {
	return []string{
		"accessid_USER", "accessid_GROUP", "accessid_HOST",
		"system_threat_level", "time_window", "location",
		"regex", "signature", "expr", "threshold", "redirect",
		"quota", "file_sha256",
	}
}

// Register installs every built-in evaluator on api under its own name.
// Evaluators are registered for the wildcard authority; pre_cond_regex
// is additionally registered under the paper's "gnu" authority.
func Register(api *gaa.API, deps Deps) {
	for _, name := range Names() {
		ev, _ := Builtin(name, deps)
		api.Register(name, gaa.AuthorityAny, ev)
	}
	api.Register("regex", "gnu", regexEvaluator{})
}
