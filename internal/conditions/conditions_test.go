package conditions

import (
	"context"
	"testing"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// harness wires an API with every built-in evaluator plus controllable
// substrate state.
type harness struct {
	api      *gaa.API
	threat   *ids.Manager
	groups   *groups.Store
	counters *Counters
	clock    *fakeClock
}

type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newHarness(t *testing.T) *harness {
	t.Helper()
	clk := &fakeClock{now: time.Date(2003, 5, 19, 14, 30, 0, 0, time.UTC)} // a Monday
	h := &harness{
		threat:   ids.NewManager(ids.Low),
		groups:   groups.NewStore(),
		counters: NewCounters(clk.Now),
		clock:    clk,
	}
	h.api = gaa.New(gaa.WithClock(clk.Now))
	Register(h.api, Deps{
		Threat:     h.threat,
		Groups:     h.groups,
		Counters:   h.counters,
		Signatures: ids.NewDB(ids.DefaultSignatures()...),
	})
	return h
}

// eval evaluates one condition directly through a minimal policy: a
// pos entry guarded by the condition. Result Yes means condition met,
// fall-through to the trailing neg entry means condition failed
// (selector), and the answer exposes maybe/challenge states.
func (h *harness) eval(t *testing.T, condLine string, params ...gaa.Param) *gaa.Answer {
	t.Helper()
	src := "pos_access_right apache *\n" + condLine + "\nneg_access_right apache *\n"
	e, err := eacl.ParseString(src)
	if err != nil {
		t.Fatalf("parse policy: %v", err)
	}
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	req := gaa.NewRequest("apache", "GET /x", params...)
	ans, err := h.api.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatalf("CheckAuthorization: %v", err)
	}
	return ans
}

func ipParam(ip string) gaa.Param {
	return gaa.Param{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: ip}
}

func userParam(user string) gaa.Param {
	return gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: user}
}

func uriParam(uri string) gaa.Param {
	return gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: uri}
}

func TestAccessIDUser(t *testing.T) {
	h := newHarness(t)
	// Any authenticated user.
	if ans := h.eval(t, "pre_cond_accessid_USER apache *", userParam("alice")); ans.Decision != gaa.Yes {
		t.Errorf("authenticated: %v, want yes", ans.Decision)
	}
	// Unauthenticated: requirement failure with challenge (final no).
	ans := h.eval(t, "pre_cond_accessid_USER apache *")
	if ans.Decision != gaa.No || ans.Challenge == "" {
		t.Errorf("unauthenticated: %v challenge=%q, want no + challenge", ans.Decision, ans.Challenge)
	}
	// Specific users.
	if ans := h.eval(t, "pre_cond_accessid_USER apache alice bob", userParam("bob")); ans.Decision != gaa.Yes {
		t.Errorf("listed user: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_accessid_USER apache alice bob", userParam("mallory")); ans.Decision != gaa.No {
		t.Errorf("unlisted user: %v, want no", ans.Decision)
	}
}

func TestAccessIDGroup(t *testing.T) {
	h := newHarness(t)
	h.groups.Add("BadGuys", "10.0.0.66")
	// Member by client IP (paper 7.2): condition met -> entry fires.
	if ans := h.eval(t, "pre_cond_accessid_GROUP local BadGuys", ipParam("10.0.0.66")); ans.Decision != gaa.Yes {
		t.Errorf("member: %v, want yes", ans.Decision)
	}
	// Non-member: selector fails, falls to the neg entry.
	if ans := h.eval(t, "pre_cond_accessid_GROUP local BadGuys", ipParam("10.0.0.1")); ans.Decision != gaa.No {
		t.Errorf("non-member: %v, want fall-through deny", ans.Decision)
	}
	// Member by user identity.
	h.groups.Add("staff", "alice")
	if ans := h.eval(t, "pre_cond_accessid_GROUP local staff", userParam("alice")); ans.Decision != gaa.Yes {
		t.Errorf("user member: %v, want yes", ans.Decision)
	}
	// Empty group name is unevaluable.
	if ans := h.eval(t, "pre_cond_accessid_GROUP local", ipParam("1.2.3.4")); ans.Decision != gaa.Maybe {
		t.Errorf("empty group: %v, want maybe", ans.Decision)
	}
}

func TestAccessIDGroupNoStore(t *testing.T) {
	api := gaa.New()
	Register(api, Deps{})
	e, _ := eacl.ParseString("pos_access_right apache *\npre_cond_accessid_GROUP local g")
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	ans, err := api.CheckAuthorization(context.Background(), p, gaa.NewRequest("apache", "GET /x"))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Decision != gaa.Maybe {
		t.Errorf("no store: %v, want maybe", ans.Decision)
	}
}

func TestAccessIDHost(t *testing.T) {
	h := newHarness(t)
	hostParam := gaa.Param{Type: gaa.ParamClientHost, Authority: gaa.AuthorityAny, Value: "web1.isi.edu"}
	if ans := h.eval(t, "pre_cond_accessid_HOST local *.isi.edu", hostParam); ans.Decision != gaa.Yes {
		t.Errorf("matching host: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_accessid_HOST local *.isi.edu", ipParam("10.0.0.5")); ans.Decision != gaa.No {
		t.Errorf("non-matching: %v, want fall-through deny", ans.Decision)
	}
	// Falls back to client IP when no hostname known.
	if ans := h.eval(t, "pre_cond_accessid_HOST local 128.9.*", ipParam("128.9.1.2")); ans.Decision != gaa.Yes {
		t.Errorf("ip fallback: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_accessid_HOST local *.isi.edu"); ans.Decision != gaa.Maybe {
		t.Errorf("no host info: %v, want maybe", ans.Decision)
	}
}

func TestSystemThreatLevel(t *testing.T) {
	h := newHarness(t)
	tests := []struct {
		level ids.Level
		cond  string
		want  gaa.Decision
	}{
		{ids.High, "pre_cond_system_threat_level local =high", gaa.Yes},
		{ids.Low, "pre_cond_system_threat_level local =high", gaa.No},
		{ids.Medium, "pre_cond_system_threat_level local >low", gaa.Yes},
		{ids.Low, "pre_cond_system_threat_level local >low", gaa.No},
		{ids.Medium, "pre_cond_system_threat_level local <=medium", gaa.Yes},
		{ids.High, "pre_cond_system_threat_level local !=high", gaa.No},
	}
	for _, tt := range tests {
		h.threat.Set(tt.level)
		if ans := h.eval(t, tt.cond); ans.Decision != tt.want {
			t.Errorf("level=%v cond=%q: %v, want %v", tt.level, tt.cond, ans.Decision, tt.want)
		}
	}
	// Malformed conditions are unevaluable, not denials.
	if ans := h.eval(t, "pre_cond_system_threat_level local high"); ans.Decision != gaa.Maybe {
		t.Errorf("missing comparator: %v, want maybe", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_system_threat_level local =critical"); ans.Decision != gaa.Maybe {
		t.Errorf("unknown level: %v, want maybe", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_system_threat_level local x=high"); ans.Decision != gaa.Maybe {
		t.Errorf("left operand: %v, want maybe", ans.Decision)
	}
}

func TestTimeWindow(t *testing.T) {
	h := newHarness(t) // clock: Monday 14:30 UTC
	tests := []struct {
		cond string
		want gaa.Decision
	}{
		{"pre_cond_time_window local 09:00-17:00", gaa.Yes},
		{"pre_cond_time_window local 17:00-09:00", gaa.No}, // wrapped window excludes 14:30
		{"pre_cond_time_window local 22:00-06:00", gaa.No},
		{"pre_cond_time_window local 14:30-14:31", gaa.Yes}, // inclusive start
		{"pre_cond_time_window local 09:00-14:30", gaa.No},  // exclusive end
		{"pre_cond_time_window local 09:00-17:00 Mon-Fri", gaa.Yes},
		{"pre_cond_time_window local 09:00-17:00 Sat,Sun", gaa.No},
		{"pre_cond_time_window local 09:00-17:00 Mon", gaa.Yes},
		{"pre_cond_time_window local 09:00-17:00 Sat-Mon", gaa.Yes}, // wrapped day range
		{"pre_cond_time_window local garbage", gaa.Maybe},
		{"pre_cond_time_window local 09:00-17:00 Noday", gaa.Maybe},
		{"pre_cond_time_window local 9am-5pm", gaa.Maybe},
		{"pre_cond_time_window local", gaa.Maybe},
	}
	for _, tt := range tests {
		if ans := h.eval(t, tt.cond); ans.Decision != tt.want {
			t.Errorf("%q: %v, want %v", tt.cond, ans.Decision, tt.want)
		}
	}
	// Night-shift wrap: advance to 23:00.
	h.clock.Advance(8*time.Hour + 30*time.Minute)
	if ans := h.eval(t, "pre_cond_time_window local 22:00-06:00"); ans.Decision != gaa.Yes {
		t.Errorf("23:00 in 22:00-06:00: %v, want yes", ans.Decision)
	}
}

func TestLocation(t *testing.T) {
	h := newHarness(t)
	tests := []struct {
		cond string
		ip   string
		want gaa.Decision
	}{
		{"pre_cond_location local 128.9.0.0/16", "128.9.64.2", gaa.Yes},
		{"pre_cond_location local 128.9.0.0/16", "128.10.0.1", gaa.No},
		{"pre_cond_location local 10.0.0.* 192.168.*", "192.168.4.4", gaa.Yes},
		{"pre_cond_location local 10.0.0.*", "10.0.1.1", gaa.No},
		{"pre_cond_location local 128.9.0.0/16 10.0.0.1", "10.0.0.1", gaa.Yes},
		{"pre_cond_location local bad/cidr", "10.0.0.1", gaa.Maybe},
		{"pre_cond_location local", "10.0.0.1", gaa.Maybe},
	}
	for _, tt := range tests {
		if ans := h.eval(t, tt.cond, ipParam(tt.ip)); ans.Decision != tt.want {
			t.Errorf("%q ip=%s: %v, want %v", tt.cond, tt.ip, ans.Decision, tt.want)
		}
	}
	if ans := h.eval(t, "pre_cond_location local 10.0.0.0/8"); ans.Decision != gaa.Maybe {
		t.Errorf("no client ip: %v, want maybe", ans.Decision)
	}
}

func TestRegexPaperSignatures(t *testing.T) {
	h := newHarness(t)
	// Paper 7.2: pre_cond_regex gnu *phf* *test-cgi*
	const cond = "pre_cond_regex gnu *phf* *test-cgi*"
	if ans := h.eval(t, cond, uriParam("GET /cgi-bin/phf?Q=x")); ans.Decision != gaa.Yes {
		t.Errorf("phf: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, cond, uriParam("GET /cgi-bin/test-cgi")); ans.Decision != gaa.Yes {
		t.Errorf("test-cgi: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, cond, uriParam("GET /index.html")); ans.Decision != gaa.No {
		t.Errorf("benign: %v, want fall-through deny", ans.Decision)
	}
	// Real regexp syntax behind the re: prefix.
	if ans := h.eval(t, `pre_cond_regex gnu re:/{10,}`, uriParam("GET /"+"//////////x")); ans.Decision != gaa.Yes {
		t.Errorf("re: pattern: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, `pre_cond_regex gnu re:[invalid`, uriParam("GET /x")); ans.Decision != gaa.Maybe {
		t.Errorf("bad re: %v, want maybe", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_regex gnu *x*"); ans.Decision != gaa.Maybe {
		t.Errorf("no uri param: %v, want maybe", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_regex gnu", uriParam("GET /")); ans.Decision != gaa.Maybe {
		t.Errorf("empty patterns: %v, want maybe", ans.Decision)
	}
}

func TestSignatureDatabase(t *testing.T) {
	h := newHarness(t)
	if ans := h.eval(t, "pre_cond_signature local *", uriParam("GET /cgi-bin/phf")); ans.Decision != gaa.Yes {
		t.Errorf("any signature: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_signature local nimda", uriParam("GET /x/..%c0%af../cmd")); ans.Decision != gaa.Yes {
		t.Errorf("named signature: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_signature local nimda", uriParam("GET /cgi-bin/phf")); ans.Decision != gaa.No {
		t.Errorf("wrong named signature: %v, want fall-through deny", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_signature local *", uriParam("GET /index.html")); ans.Decision != gaa.No {
		t.Errorf("benign: %v, want fall-through deny", ans.Decision)
	}
}

func TestExpr(t *testing.T) {
	h := newHarness(t)
	lenParam := func(n string) gaa.Param {
		return gaa.Param{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: n}
	}
	// Paper 7.2: detect CGI input longer than 1000 characters.
	if ans := h.eval(t, "pre_cond_expr local input_length>1000", lenParam("1500")); ans.Decision != gaa.Yes {
		t.Errorf("overflow: %v, want yes", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_expr local input_length>1000", lenParam("900")); ans.Decision != gaa.No {
		t.Errorf("normal: %v, want fall-through deny", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_expr local input_length>1000"); ans.Decision != gaa.Maybe {
		t.Errorf("missing param: %v, want maybe", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_expr local >1000", lenParam("1500")); ans.Decision != gaa.Maybe {
		t.Errorf("no param name: %v, want maybe", ans.Decision)
	}
	if ans := h.eval(t, "pre_cond_expr local input_length>abc", lenParam("5")); ans.Decision != gaa.Maybe {
		t.Errorf("bad number: %v, want maybe", ans.Decision)
	}
}

func TestThreshold(t *testing.T) {
	h := newHarness(t)
	const cond = "pre_cond_threshold local counter=failed_login key=client_ip max=3 window=60s"
	ip := ipParam("10.0.0.9")

	if ans := h.eval(t, cond, ip); ans.Decision != gaa.No {
		t.Errorf("zero events: %v, want fall-through deny", ans.Decision)
	}
	for i := 0; i < 3; i++ {
		h.counters.Add(CounterKey("failed_login", "10.0.0.9"))
	}
	if ans := h.eval(t, cond, ip); ans.Decision != gaa.Yes {
		t.Errorf("threshold reached: %v, want yes", ans.Decision)
	}
	// Another client is unaffected.
	if ans := h.eval(t, cond, ipParam("10.0.0.10")); ans.Decision != gaa.No {
		t.Errorf("other client: %v, want fall-through deny", ans.Decision)
	}
	// Events age out of the window.
	h.clock.Advance(2 * time.Minute)
	if ans := h.eval(t, cond, ip); ans.Decision != gaa.No {
		t.Errorf("expired events: %v, want fall-through deny", ans.Decision)
	}
	// Malformed specs are unevaluable.
	for _, bad := range []string{
		"pre_cond_threshold local counter=x key=client_ip max=0 window=60s",
		"pre_cond_threshold local counter=x key=client_ip max=3 window=nope",
		"pre_cond_threshold local key=client_ip max=3 window=60s",
		"pre_cond_threshold local counter=x max=3 window=60s",
		"pre_cond_threshold local garbage",
	} {
		if ans := h.eval(t, bad, ip); ans.Decision != gaa.Maybe {
			t.Errorf("%q: %v, want maybe", bad, ans.Decision)
		}
	}
}

func TestCountersResetAndPrune(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCounters(clk.Now)
	c.Add("k")
	c.Add("k")
	if n := c.CountSince("k", time.Minute); n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
	c.Reset("k")
	if n := c.CountSince("k", time.Minute); n != 0 {
		t.Errorf("count after reset = %d, want 0", n)
	}
	c.Add("k")
	clk.Advance(time.Hour)
	if n := c.CountSince("k", time.Minute); n != 0 {
		t.Errorf("count after expiry = %d, want 0", n)
	}
	if NewCounters(nil) == nil {
		t.Error("NewCounters(nil) should default the clock")
	}
}

func TestRedirect(t *testing.T) {
	h := newHarness(t)
	ans := h.eval(t, "pre_cond_redirect local http://replica.example.org/")
	if ans.Decision != gaa.Maybe {
		t.Fatalf("redirect: %v, want maybe", ans.Decision)
	}
	cond, ok := ans.UnevaluatedOnly("redirect")
	if !ok {
		t.Fatalf("UnevaluatedOnly(redirect) failed: %v", ans.Unevaluated)
	}
	if cond.Value != "http://replica.example.org/" {
		t.Errorf("redirect URL = %q", cond.Value)
	}
}
