package conditions

import "testing"

func TestSplitCmp(t *testing.T) {
	tests := []struct {
		in        string
		wantLeft  string
		wantOp    comparator
		wantRight string
		wantErr   bool
	}{
		{"=high", "", cmpEq, "high", false},
		{">low", "", cmpGt, "low", false},
		{"<=medium", "", cmpLe, "medium", false},
		{">=medium", "", cmpGe, "medium", false},
		{"!=low", "", cmpNe, "low", false},
		{"==low", "", cmpEq, "low", false},
		{"input_length>1000", "input_length", cmpGt, "1000", false},
		{"cpu_ms <= 50", "cpu_ms", cmpLe, "50", false},
		{"nocomparator", "", 0, "", true},
	}
	for _, tt := range tests {
		left, op, right, err := splitCmp(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("splitCmp(%q) err = %v", tt.in, err)
			continue
		}
		if err != nil {
			continue
		}
		if left != tt.wantLeft || op != tt.wantOp || right != tt.wantRight {
			t.Errorf("splitCmp(%q) = %q %v %q, want %q %v %q",
				tt.in, left, op, right, tt.wantLeft, tt.wantOp, tt.wantRight)
		}
	}
}

func TestComparatorHoldsInt(t *testing.T) {
	tests := []struct {
		op   comparator
		l, r int64
		want bool
	}{
		{cmpEq, 5, 5, true}, {cmpEq, 5, 6, false},
		{cmpNe, 5, 6, true}, {cmpNe, 5, 5, false},
		{cmpLt, 4, 5, true}, {cmpLt, 5, 5, false},
		{cmpLe, 5, 5, true}, {cmpLe, 6, 5, false},
		{cmpGt, 6, 5, true}, {cmpGt, 5, 5, false},
		{cmpGe, 5, 5, true}, {cmpGe, 4, 5, false},
		{comparator(0), 1, 1, false},
	}
	for _, tt := range tests {
		if got := tt.op.holdsInt(tt.l, tt.r); got != tt.want {
			t.Errorf("%v.holdsInt(%d, %d) = %v, want %v", tt.op, tt.l, tt.r, got, tt.want)
		}
	}
}

func TestComparatorString(t *testing.T) {
	for op, want := range map[comparator]string{
		cmpEq: "=", cmpNe: "!=", cmpLt: "<", cmpLe: "<=", cmpGt: ">", cmpGe: ">=",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if comparator(9).String() != "comparator(9)" {
		t.Error("unknown comparator String mismatch")
	}
}

func TestParseKV(t *testing.T) {
	kv, err := parseKV("counter=failed_login key=client_ip max=5 window=60s")
	if err != nil {
		t.Fatalf("parseKV: %v", err)
	}
	if kv["counter"] != "failed_login" || kv["window"] != "60s" {
		t.Errorf("kv = %v", kv)
	}
	if _, err := parseKV("naked"); err == nil {
		t.Error("want error for non k=v token")
	}
	if _, err := parseKV("=v"); err == nil {
		t.Error("want error for empty key")
	}
	empty, err := parseKV("")
	if err != nil || len(empty) != 0 {
		t.Errorf("parseKV(\"\") = %v, %v", empty, err)
	}
}
