package conditions

import (
	"context"
	"fmt"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/ids"
)

// threatEvaluator implements pre_cond_system_threat_level with values
// like "=high", ">low" or "<=medium" (paper sections 7.1 and 7.2). It
// is a selector: threat-level mismatches switch between the EACL's
// disjoint policies ("a transition between the disjoint EACL entries is
// regulated automatically by reading the system state", section 2).
type threatEvaluator struct {
	provider ids.LevelProvider
}

func (t threatEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if t.provider == nil {
		return gaa.UnevaluatedOutcome("no threat-level provider configured")
	}
	left, op, right, err := splitCmp(cond.Value)
	if err != nil {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err, Detail: "bad threat condition"}
	}
	if left != "" {
		return gaa.Outcome{
			Result: gaa.Maybe, Unevaluated: true,
			Err:    fmt.Errorf("unexpected left operand %q", left),
			Detail: "bad threat condition",
		}
	}
	want, err := ids.ParseLevel(right)
	if err != nil {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err, Detail: "bad threat level"}
	}
	cur := t.provider.Level()
	// Formatted details are trace-only decoration; skip the Sprintf
	// entirely on the untraced hot path.
	if op.holdsInt(int64(cur), int64(want)) {
		if req.Trace {
			return gaa.MetOutcome(gaa.ClassSelector, fmt.Sprintf("threat %s %s %s", cur, op, want))
		}
		return gaa.MetOutcome(gaa.ClassSelector, "threat level matches")
	}
	if req.Trace {
		return gaa.FailedOutcome(gaa.ClassSelector, fmt.Sprintf("threat %s not %s %s", cur, op, want))
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "threat level differs")
}
