package conditions

import (
	"context"
	"fmt"
	"net"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// locationEvaluator implements pre_cond_location: the client address
// must fall inside one of the listed CIDR ranges or glob patterns
// (the paper's "Allow from 128.9/" host restriction shape). It is a
// selector.
type locationEvaluator struct{}

func (locationEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	ip, ok := req.Params.Get(gaa.ParamClientIP, cond.DefAuth)
	if !ok || ip == "" {
		return gaa.UnevaluatedOutcome("no client address parameter")
	}
	patterns := splitFields(cond.Value)
	if len(patterns) == 0 {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Detail: "empty location list"}
	}
	parsed := net.ParseIP(ip)
	for _, p := range patterns {
		if strings.Contains(p, "/") {
			_, ipnet, err := net.ParseCIDR(p)
			if err != nil {
				return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: fmt.Errorf("bad CIDR %q: %w", p, err)}
			}
			if parsed != nil && ipnet.Contains(parsed) {
				return gaa.MetOutcome(gaa.ClassSelector, ip+" in "+p)
			}
			continue
		}
		if eacl.Glob(p, ip) {
			return gaa.MetOutcome(gaa.ClassSelector, ip+" matches "+p)
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, ip+" outside "+cond.Value)
}
