package conditions

import (
	"testing"
	"time"

	"gaaapi/internal/ids"
)

func TestHasValueRef(t *testing.T) {
	tests := []struct {
		value string
		want  bool
	}{
		{"@business_hours", true},
		{"input_length>@max_input", true},
		{"09:00-17:00 Mon-Fri", false},
		{"user@example.org", false}, // '@' not in reference position
		{"counter=failed key=ip max=5 window=60s", false},
		{"", false},
	}
	for _, tt := range tests {
		if got := HasValueRef(tt.value); got != tt.want {
			t.Errorf("HasValueRef(%q) = %v, want %v", tt.value, got, tt.want)
		}
	}
}

func TestValidateRegexList(t *testing.T) {
	if err := ValidateRegexList("*phf* *test-cgi* re:^GET\\s"); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	if err := ValidateRegexList("re:[unclosed"); err == nil {
		t.Error("bad regexp accepted")
	}
	if err := ValidateRegexList("  "); err == nil {
		t.Error("empty list accepted")
	}
}

func TestValidateLocationList(t *testing.T) {
	if err := ValidateLocationList("128.9.0.0/16 10.* ::1"); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	if err := ValidateLocationList("300.0.0.0/8"); err == nil {
		t.Error("bad CIDR accepted")
	}
	if err := ValidateLocationList("10.0.0.0/33"); err == nil {
		t.Error("bad prefix length accepted")
	}
	if err := ValidateLocationList(""); err == nil {
		t.Error("empty list accepted")
	}
}

func TestParseTimeWindowSpec(t *testing.T) {
	w, err := ParseTimeWindowSpec("09:00-17:00 Mon-Fri")
	if err != nil {
		t.Fatalf("ParseTimeWindowSpec: %v", err)
	}
	if w.Start != 9*60 || w.End != 17*60 {
		t.Errorf("window = [%d,%d), want [540,1020)", w.Start, w.End)
	}
	if w.Days[time.Sunday] || !w.Days[time.Monday] || !w.Days[time.Friday] || w.Days[time.Saturday] {
		t.Errorf("days = %v, want Mon-Fri", w.Days)
	}
	if w.Empty() {
		t.Error("business hours reported empty")
	}

	for _, bad := range []string{"", "9am-5pm", "09:00", "09:00-17:00 Xyz", "09:00-17:00 Mon extra"} {
		if _, err := ParseTimeWindowSpec(bad); err == nil {
			t.Errorf("ParseTimeWindowSpec(%q) accepted", bad)
		}
	}
}

func TestTimeWindowEmptyAndIntersects(t *testing.T) {
	parse := func(s string) TimeWindow {
		t.Helper()
		w, err := ParseTimeWindowSpec(s)
		if err != nil {
			t.Fatalf("ParseTimeWindowSpec(%q): %v", s, err)
		}
		return w
	}
	if !parse("09:00-09:00").Empty() {
		t.Error("zero-length window not reported empty")
	}
	if parse("22:00-06:00").Empty() {
		t.Error("midnight-wrapping window reported empty")
	}

	tests := []struct {
		a, b string
		want bool
	}{
		{"09:00-17:00", "16:00-18:00", true},
		{"09:00-12:00", "12:00-17:00", false}, // half-open: [a,b)
		{"09:00-17:00 Mon-Fri", "10:00-11:00 Sat,Sun", false},
		{"09:00-17:00 Mon", "10:00-11:00 Mon", true},
		{"22:00-06:00", "05:00-07:00", true}, // wrap reaches early morning
		{"22:00-06:00", "07:00-21:00", false},
		{"22:00-02:00", "23:00-01:00", true},
	}
	for _, tt := range tests {
		a, b := parse(tt.a), parse(tt.b)
		if got := a.Intersects(b); got != tt.want {
			t.Errorf("Intersects(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := b.Intersects(a); got != tt.want {
			t.Errorf("Intersects(%q, %q) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestValidateThresholdSpec(t *testing.T) {
	if err := ValidateThresholdSpec("counter=failed_login key=client_ip max=5 window=60s"); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for _, bad := range []string{
		"counter=x max=5 window=60s",          // missing key
		"key=ip max=5 window=60s",             // missing counter
		"counter=x key=ip max=0 window=60s",   // non-positive max
		"counter=x key=ip max=n window=60s",   // non-numeric max
		"counter=x key=ip max=5 window=-10s",  // negative window
		"counter=x key=ip max=5 window=often", // bad duration
		"counter key=ip max=5 window=60s",     // bare token
	} {
		if err := ValidateThresholdSpec(bad); err == nil {
			t.Errorf("ValidateThresholdSpec(%q) accepted", bad)
		}
	}
}

func TestValidateComparison(t *testing.T) {
	for _, good := range []string{"input_length>1000", "cpu_ms<=50", "retries!=0"} {
		if err := ValidateComparison(good); err != nil {
			t.Errorf("ValidateComparison(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"input_length", ">1000", "input_length>ten", ""} {
		if err := ValidateComparison(bad); err == nil {
			t.Errorf("ValidateComparison(%q) accepted", bad)
		}
	}
}

func TestThreatLevelSet(t *testing.T) {
	tests := []struct {
		value string
		want  []ids.Level
	}{
		{"=high", []ids.Level{ids.High}},
		{">low", []ids.Level{ids.Medium, ids.High}},
		{"<=medium", []ids.Level{ids.Low, ids.Medium}},
		{"<low", nil}, // legal but unsatisfiable
		{"!=medium", []ids.Level{ids.Low, ids.High}},
	}
	for _, tt := range tests {
		got, err := ThreatLevelSet(tt.value)
		if err != nil {
			t.Errorf("ThreatLevelSet(%q): %v", tt.value, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ThreatLevelSet(%q) = %v, want %v", tt.value, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("ThreatLevelSet(%q) = %v, want %v", tt.value, got, tt.want)
				break
			}
		}
	}
	for _, bad := range []string{"high", "=severe", "level=high", ""} {
		if _, err := ThreatLevelSet(bad); err == nil {
			t.Errorf("ThreatLevelSet(%q) accepted", bad)
		}
	}
}

func TestValidateSHA256Spec(t *testing.T) {
	good := "/etc/passwd ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
	if err := ValidateSHA256Spec(good); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for _, bad := range []string{
		"/etc/passwd",                      // no digest
		"/etc/passwd abc",                  // short digest
		"/etc/passwd " + good[13:76] + "G", // non-hex
		"a b c",                            // too many fields
	} {
		if err := ValidateSHA256Spec(bad); err == nil {
			t.Errorf("ValidateSHA256Spec(%q) accepted", bad)
		}
	}
}

func TestValidateValueDispatch(t *testing.T) {
	if err := ValidateValue("regex", "re:[bad"); err == nil {
		t.Error("dispatch missed bad regex")
	}
	if err := ValidateValue("expr", "input_length>@max_input"); err != nil {
		t.Errorf("runtime value reference should be skipped: %v", err)
	}
	if err := ValidateValue("accessid_USER", "anything at all"); err != nil {
		t.Errorf("unchecked type should pass: %v", err)
	}
	if err := ValidateValue("time_window", "25:00-26:00"); err == nil {
		t.Error("dispatch missed bad time window")
	}
}
