package conditions

import (
	"fmt"
	"net"
	"regexp"
	"strconv"
	"strings"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// This file implements gaa.CondCompiler for the cheap built-in
// selectors and requirements: condition-value parsing, pattern
// compilation (CIDRs, regexps) and detail-string formatting move to
// policy-compile time, leaving only the per-request test on the hot
// path. Every CompileCond must reproduce the corresponding Evaluate
// byte-for-byte for trace-disabled requests — when a value cannot be
// fully pre-resolved (it would evaluate to an error or a
// value-dependent MAYBE), compilation is refused and the interpreted
// evaluator keeps producing those outcomes per occurrence. The
// differential fuzz test in internal/gaa pins the equivalence.
//
// Not compiled (deliberately): signature (shared mutable DB),
// threshold and quota (stateful counters / mid-phase), file_sha256
// (filesystem), and anything a deployment registers itself.
var (
	_ gaa.CondCompiler = threatEvaluator{}
	_ gaa.CondCompiler = timeWindowEvaluator{}
	_ gaa.CondCompiler = locationEvaluator{}
	_ gaa.CondCompiler = regexEvaluator{}
	_ gaa.CondCompiler = exprEvaluator{}
	_ gaa.CondCompiler = userEvaluator{}
	_ gaa.CondCompiler = groupEvaluator{}
	_ gaa.CondCompiler = hostEvaluator{}
	_ gaa.CondCompiler = redirectEvaluator{}
)

// --- system_threat_level ---

type threatCompiled struct {
	provider ids.LevelProvider
	op       comparator
	want     ids.Level
}

// CompileCond implements gaa.CondCompiler.
func (t threatEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	if t.provider == nil {
		return nil, false
	}
	left, op, right, err := splitCmp(cond.Value)
	if err != nil || left != "" {
		return nil, false
	}
	want, err := ids.ParseLevel(right)
	if err != nil {
		return nil, false
	}
	return threatCompiled{provider: t.provider, op: op, want: want}, true
}

func (c threatCompiled) EvalCompiled(*gaa.Request) gaa.Outcome {
	if c.op.holdsInt(int64(c.provider.Level()), int64(c.want)) {
		return gaa.MetOutcome(gaa.ClassSelector, "threat level matches")
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "threat level differs")
}

// --- time_window ---

type timeWindowCompiled struct {
	start, end int
	checkDays  bool
	days       uint8 // bit i set: time.Weekday(i) allowed
	dayFail    [7]string
	met, fail  string
}

// CompileCond implements gaa.CondCompiler. The window bounds and the
// day bitmask are resolved once; the per-request test is two integer
// comparisons.
func (timeWindowEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	fields := splitFields(cond.Value)
	if len(fields) == 0 || len(fields) > 2 {
		return nil, false
	}
	start, end, err := parseWindow(fields[0])
	if err != nil {
		return nil, false
	}
	c := timeWindowCompiled{
		start: start,
		end:   end,
		met:   "inside window " + fields[0],
		fail:  "outside window " + fields[0],
	}
	if len(fields) == 2 {
		c.checkDays = true
		for d := time.Sunday; d <= time.Saturday; d++ {
			ok, err := dayMatches(fields[1], d)
			if err != nil {
				return nil, false
			}
			if ok {
				c.days |= 1 << uint(d)
			}
			c.dayFail[d] = d.String() + " outside " + fields[1]
		}
	}
	return c, true
}

func (c timeWindowCompiled) EvalCompiled(req *gaa.Request) gaa.Outcome {
	now := req.Time
	if c.checkDays && c.days&(1<<uint(now.Weekday())) == 0 {
		return gaa.FailedOutcome(gaa.ClassSelector, c.dayFail[now.Weekday()])
	}
	cur := now.Hour()*60 + now.Minute()
	var inside bool
	if c.start <= c.end {
		inside = cur >= c.start && cur < c.end
	} else { // wraps midnight
		inside = cur >= c.start || cur < c.end
	}
	if inside {
		return gaa.MetOutcome(gaa.ClassSelector, c.met)
	}
	return gaa.FailedOutcome(gaa.ClassSelector, c.fail)
}

// --- location ---

type locationPattern struct {
	cidr *net.IPNet // nil: raw glob pattern
	glob string
	raw  string
}

type locationCompiled struct {
	defAuth string
	value   string
	pats    []locationPattern
}

// CompileCond implements gaa.CondCompiler: CIDR patterns parse once
// instead of per evaluation. A value with any malformed CIDR stays
// interpreted, because its outcome (an error MAYBE, but only when no
// earlier pattern matched) depends on evaluation order.
func (locationEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	patterns := splitFields(cond.Value)
	if len(patterns) == 0 {
		return nil, false
	}
	c := locationCompiled{defAuth: cond.DefAuth, value: cond.Value}
	for _, p := range patterns {
		if strings.Contains(p, "/") {
			_, ipnet, err := net.ParseCIDR(p)
			if err != nil {
				return nil, false
			}
			c.pats = append(c.pats, locationPattern{cidr: ipnet, raw: p})
			continue
		}
		c.pats = append(c.pats, locationPattern{glob: p, raw: p})
	}
	return c, true
}

func (c locationCompiled) EvalCompiled(req *gaa.Request) gaa.Outcome {
	ip, ok := req.Params.Get(gaa.ParamClientIP, c.defAuth)
	if !ok || ip == "" {
		return gaa.UnevaluatedOutcome("no client address parameter")
	}
	parsed := net.ParseIP(ip)
	for _, p := range c.pats {
		if p.cidr != nil {
			if parsed != nil && p.cidr.Contains(parsed) {
				return gaa.MetOutcome(gaa.ClassSelector, ip+" in "+p.raw)
			}
			continue
		}
		if eacl.Glob(p.glob, ip) {
			return gaa.MetOutcome(gaa.ClassSelector, ip+" matches "+p.raw)
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, ip+" outside "+c.value)
}

// --- regex ---

type regexPattern struct {
	re   *regexp.Regexp // nil: glob pattern
	glob string
	met  string
}

type regexCompiled struct {
	defAuth string
	pats    []regexPattern
}

// CompileCond implements gaa.CondCompiler: "re:" patterns compile once
// (bypassing the shared regex cache and its lock) and the match
// details are pre-formatted.
func (regexEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	patterns := splitFields(cond.Value)
	if len(patterns) == 0 {
		return nil, false
	}
	c := regexCompiled{defAuth: cond.DefAuth}
	for _, p := range patterns {
		if expr, isRe := strings.CutPrefix(p, "re:"); isRe {
			re, err := compileCached(expr)
			if err != nil {
				return nil, false
			}
			c.pats = append(c.pats, regexPattern{re: re, met: "regexp " + expr + " matched"})
			continue
		}
		c.pats = append(c.pats, regexPattern{glob: p, met: "pattern " + p + " matched"})
	}
	return c, true
}

func (c regexCompiled) EvalCompiled(req *gaa.Request) gaa.Outcome {
	subject, ok := req.Params.Get(gaa.ParamRequestURI, c.defAuth)
	if !ok {
		return gaa.UnevaluatedOutcome("no request_uri parameter")
	}
	for _, p := range c.pats {
		if p.re != nil {
			if p.re.MatchString(subject) {
				return gaa.MetOutcome(gaa.ClassSelector, p.met)
			}
			continue
		}
		if eacl.Glob(p.glob, subject) {
			return gaa.MetOutcome(gaa.ClassSelector, p.met)
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "no pattern matched")
}

// --- expr ---

type exprCompiled struct {
	param   string
	defAuth string
	op      comparator
	want    int64
	missing string
}

// CompileCond implements gaa.CondCompiler.
func (exprEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	left, op, right, err := splitCmp(cond.Value)
	if err != nil || left == "" {
		return nil, false
	}
	want, err := strconv.ParseInt(right, 10, 64)
	if err != nil {
		return nil, false
	}
	return exprCompiled{
		param:   left,
		defAuth: cond.DefAuth,
		op:      op,
		want:    want,
		missing: "no numeric parameter " + left,
	}, true
}

func (c exprCompiled) EvalCompiled(req *gaa.Request) gaa.Outcome {
	got, ok := req.Params.GetInt(c.param, c.defAuth)
	if !ok {
		return gaa.UnevaluatedOutcome(c.missing)
	}
	if c.op.holdsInt(got, c.want) {
		return gaa.MetOutcome(gaa.ClassSelector, "expr holds")
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "expr does not hold")
}

// --- accessid_USER ---

type userCompiled struct {
	defAuth   string
	patterns  []string
	challenge string
}

// CompileCond implements gaa.CondCompiler: the realm challenge string
// is formatted once.
func (userEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	return userCompiled{
		defAuth:   cond.DefAuth,
		patterns:  splitFields(cond.Value),
		challenge: fmt.Sprintf("Basic realm=%q", cond.DefAuth),
	}, true
}

func (c userCompiled) EvalCompiled(req *gaa.Request) gaa.Outcome {
	user, ok := req.Params.Get(gaa.ParamUser, c.defAuth)
	if !ok || user == "" {
		return gaa.Outcome{
			Result:    gaa.No,
			Class:     gaa.ClassRequirement,
			Challenge: c.challenge,
			Detail:    "no authenticated user",
		}
	}
	for _, want := range c.patterns {
		if eacl.Glob(want, user) {
			return gaa.MetOutcome(gaa.ClassRequirement, "user "+user)
		}
	}
	return gaa.Outcome{
		Result:    gaa.No,
		Class:     gaa.ClassRequirement,
		Challenge: c.challenge,
		Detail:    "user not in list",
	}
}

// --- accessid_GROUP ---

type groupCompiled struct {
	store   *groups.Store
	defAuth string
	group   string
	met     string
	fail    string
}

// CompileCond implements gaa.CondCompiler. The store lookup stays per
// request (membership is live adaptive state — the section 7.2 BadGuys
// blacklist grows under attack) but trimming and detail formatting
// hoist out.
func (g groupEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	if g.store == nil {
		return nil, false
	}
	group := strings.TrimSpace(cond.Value)
	if group == "" {
		return nil, false
	}
	return groupCompiled{
		store:   g.store,
		defAuth: cond.DefAuth,
		group:   group,
		met:     "member of " + group,
		fail:    "not a member of " + group,
	}, true
}

func (c groupCompiled) EvalCompiled(req *gaa.Request) gaa.Outcome {
	for _, paramType := range [...]string{gaa.ParamGroupKey, gaa.ParamUser, gaa.ParamClientIP} {
		key, ok := req.Params.Get(paramType, c.defAuth)
		if !ok || key == "" {
			continue
		}
		if c.store.Contains(c.group, key) {
			return gaa.MetOutcome(gaa.ClassSelector, c.met)
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, c.fail)
}

// --- accessid_HOST ---

type hostCompiled struct {
	defAuth  string
	patterns []string
}

// CompileCond implements gaa.CondCompiler.
func (hostEvaluator) CompileCond(cond eacl.Condition) (gaa.CompiledCond, bool) {
	return hostCompiled{defAuth: cond.DefAuth, patterns: splitFields(cond.Value)}, true
}

func (c hostCompiled) EvalCompiled(req *gaa.Request) gaa.Outcome {
	host, ok := req.Params.Get(gaa.ParamClientHost, c.defAuth)
	if !ok || host == "" {
		host, ok = req.Params.Get(gaa.ParamClientIP, c.defAuth)
	}
	if !ok || host == "" {
		return gaa.UnevaluatedOutcome("no client host parameter")
	}
	for _, want := range c.patterns {
		if eacl.Glob(want, host) {
			return gaa.MetOutcome(gaa.ClassSelector, "host "+host)
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "host not in list")
}

// --- redirect ---

type redirectCompiled struct{}

// CompileCond implements gaa.CondCompiler: the outcome is a constant
// by design.
func (redirectEvaluator) CompileCond(eacl.Condition) (gaa.CompiledCond, bool) {
	return redirectCompiled{}, true
}

func (redirectCompiled) EvalCompiled(*gaa.Request) gaa.Outcome {
	return gaa.UnevaluatedOutcome("redirect deferred to the application")
}
