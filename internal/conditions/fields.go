package conditions

import (
	"strings"
	"sync"
	"sync/atomic"
)

// condShards is the shard count for the per-condition memo caches
// below. Keys are condition value strings from parsed policy files — a
// small, bounded vocabulary — so entries live for the process lifetime
// and the caches never need eviction.
const condShards = 8

// shardedCache is a sharded read-mostly memo map keyed by condition
// strings. Spreading keys over independently locked shards keeps
// concurrent evaluations of unrelated conditions from serializing on a
// single global mutex (the pre-existing regexCache bottleneck).
type shardedCache[V any] struct {
	shards [condShards]condShard[V]
}

type condShard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
	// hits/misses live on the shard so counting them contends exactly
	// as much as the shard lock itself — no extra shared cache line.
	hits   atomic.Uint64
	misses atomic.Uint64
	_      [64]byte // keep shard locks on separate cache lines
}

// shard hashes the key (FNV-1a) onto a shard.
func (c *shardedCache[V]) shard(key string) *condShard[V] {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h%condShards]
}

func (c *shardedCache[V]) get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return v, ok
}

// stats sums the per-shard counters.
func (c *shardedCache[V]) stats() MemoStats {
	var st MemoStats
	for i := range c.shards {
		st.Hits += c.shards[i].hits.Load()
		st.Misses += c.shards[i].misses.Load()
	}
	return st
}

// MemoStats is the hit/miss tally of one condition memo cache.
type MemoStats struct {
	Hits, Misses uint64
}

// MemoCacheStats reports the process-wide condition memo caches, keyed
// by cache name: "regex" (compiled "re:" patterns) and "fields"
// (memoized strings.Fields over condition values).
func MemoCacheStats() map[string]MemoStats {
	return map[string]MemoStats{
		"regex":  regexCache.stats(),
		"fields": splitCache.stats(),
	}
}

func (c *shardedCache[V]) set(key string, v V) {
	s := c.shard(key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]V)
	}
	s.m[key] = v
	s.mu.Unlock()
}

// splitCache memoizes strings.Fields over condition values: pattern
// lists ("*phf* *test-cgi*", user lists, CIDR lists) are split once per
// distinct condition, not once per evaluation.
var splitCache shardedCache[[]string]

// splitFields is a memoized strings.Fields for condition values. The
// returned slice is shared — callers must not mutate it.
func splitFields(s string) []string {
	if v, ok := splitCache.get(s); ok {
		return v
	}
	v := strings.Fields(s)
	splitCache.set(s, v)
	return v
}
