package conditions

import (
	"fmt"
	"strings"
)

// comparator is a parsed relational operator.
type comparator int

const (
	cmpEq comparator = iota + 1
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

// splitCmp splits an expression like "<=50" or "cpu_ms<=50" into the
// left operand (possibly empty), the comparator and the right operand.
func splitCmp(s string) (left string, op comparator, right string, err error) {
	ops := []struct {
		token string
		op    comparator
	}{
		// Two-character operators first.
		{"<=", cmpLe}, {">=", cmpGe}, {"!=", cmpNe}, {"==", cmpEq},
		{"<", cmpLt}, {">", cmpGt}, {"=", cmpEq},
	}
	for _, o := range ops {
		if i := strings.Index(s, o.token); i >= 0 {
			return strings.TrimSpace(s[:i]), o.op, strings.TrimSpace(s[i+len(o.token):]), nil
		}
	}
	return "", 0, "", fmt.Errorf("no comparator in %q", s)
}

// holdsInt applies the comparator to integers.
func (c comparator) holdsInt(left, right int64) bool {
	switch c {
	case cmpEq:
		return left == right
	case cmpNe:
		return left != right
	case cmpLt:
		return left < right
	case cmpLe:
		return left <= right
	case cmpGt:
		return left > right
	case cmpGe:
		return left >= right
	default:
		return false
	}
}

// String returns the operator token.
func (c comparator) String() string {
	switch c {
	case cmpEq:
		return "="
	case cmpNe:
		return "!="
	case cmpLt:
		return "<"
	case cmpLe:
		return "<="
	case cmpGt:
		return ">"
	case cmpGe:
		return ">="
	default:
		return fmt.Sprintf("comparator(%d)", int(c))
	}
}

// parseKV parses "k=v k=v ..." condition values. Keys without '=' are
// rejected.
func parseKV(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("want key=value, got %q", f)
		}
		out[k] = v
	}
	return out, nil
}
