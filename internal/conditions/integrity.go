package conditions

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// fileSHA256Evaluator implements post_cond_file_sha256 with a value of
// "<path> <hex digest>": after the operation completes, the file's
// content hash must still match. This realizes the paper's example of
// post-execution integrity checking ("alerting that a particular
// critical file (e.g., /etc/passwd) was modified can trigger a process
// to check the contents of the file", section 1). A mismatch evaluates
// NO, failing the post-condition status.
type fileSHA256Evaluator struct{}

func (fileSHA256Evaluator) Evaluate(_ context.Context, cond eacl.Condition, _ *gaa.Request) gaa.Outcome {
	fields := strings.Fields(cond.Value)
	if len(fields) != 2 {
		return gaa.Outcome{
			Result: gaa.Maybe, Unevaluated: true,
			Err: fmt.Errorf("want \"<path> <sha256 hex>\", got %q", cond.Value),
		}
	}
	path, want := fields[0], strings.ToLower(fields[1])
	got, err := HashFile(path)
	if err != nil {
		return gaa.Outcome{Result: gaa.No, Class: gaa.ClassRequirement, Err: err,
			Detail: "cannot hash " + path}
	}
	if got == want {
		return gaa.MetOutcome(gaa.ClassRequirement, path+" unchanged")
	}
	return gaa.FailedOutcome(gaa.ClassRequirement,
		fmt.Sprintf("%s modified: sha256 %s, expected %s", path, got, want))
}

// HashFile returns the lowercase hex SHA-256 of the file's contents;
// policy authors use it (via cmd/eaclint -hash) to pin integrity
// conditions.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
