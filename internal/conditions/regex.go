package conditions

import (
	"context"
	"fmt"
	"regexp"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/ids"
)

// regexEvaluator implements pre_cond_regex: the request line must match
// one of the listed patterns — '*'-glob patterns as in the paper's
// examples ("*phf* *test-cgi*"), or full Go regular expressions when
// prefixed with "re:". It is a selector: on a neg entry a match fires
// the denial, no match falls through (paper section 7.2).
type regexEvaluator struct{}

// regexCache caches compiled "re:" patterns, sharded so concurrent
// evaluations don't serialize on one lock; glob patterns need no
// compilation.
var regexCache shardedCache[*regexp.Regexp]

func (regexEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	subject, ok := req.Params.Get(gaa.ParamRequestURI, cond.DefAuth)
	if !ok {
		return gaa.UnevaluatedOutcome("no request_uri parameter")
	}
	patterns := splitFields(cond.Value)
	if len(patterns) == 0 {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Detail: "empty pattern list"}
	}
	for _, p := range patterns {
		if expr, isRe := strings.CutPrefix(p, "re:"); isRe {
			re, err := compileCached(expr)
			if err != nil {
				return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err}
			}
			if re.MatchString(subject) {
				return gaa.MetOutcome(gaa.ClassSelector, "regexp "+expr+" matched")
			}
			continue
		}
		if eacl.Glob(p, subject) {
			return gaa.MetOutcome(gaa.ClassSelector, "pattern "+p+" matched")
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "no pattern matched")
}

func compileCached(expr string) (*regexp.Regexp, error) {
	if re, ok := regexCache.get(expr); ok {
		return re, nil
	}
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("bad regexp %q: %w", expr, err)
	}
	regexCache.set(expr, re)
	return re, nil
}

// signatureEvaluator implements pre_cond_signature: the request line
// must match a signature in the shared IDS signature database — either
// the named signature or any ("*"). This extends the paper's inline
// regex conditions with centrally-managed signatures. Selector.
type signatureEvaluator struct {
	db *ids.DB
}

func (s signatureEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if s.db == nil {
		return gaa.UnevaluatedOutcome("no signature database configured")
	}
	subject, ok := req.Params.Get(gaa.ParamRequestURI, cond.DefAuth)
	if !ok {
		return gaa.UnevaluatedOutcome("no request_uri parameter")
	}
	want := strings.TrimSpace(cond.Value)
	if want == "" {
		want = "*"
	}
	for _, hit := range s.db.Match(subject) {
		if want == "*" || hit.Name == want {
			return gaa.MetOutcome(gaa.ClassSelector, "signature "+hit.Name+" matched")
		}
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "no signature matched")
}
