package conditions

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// Counters is a sliding-window event counter shared between the
// threshold condition and the count action (package actions): actions
// record events ("failed login"), the condition checks "the number of
// failed login attempts within a given period of time" (paper
// section 3, item 4).
type Counters struct {
	clock func() time.Time

	mu      sync.Mutex
	events  map[string][]time.Time
	journal func(CounterEvent)
}

// CounterEvent describes one counter mutation for persistence: an
// event recorded at At, or a reset wiping the key.
type CounterEvent struct {
	// Key is the counter identity (CounterKey form).
	Key string `json:"key"`
	// At is the event timestamp (meaningless for resets).
	At time.Time `json:"at,omitempty"`
	// Reset marks a key wipe instead of an event.
	Reset bool `json:"reset,omitempty"`
}

// NewCounters returns an empty counter store; now defaults to time.Now.
func NewCounters(now func() time.Time) *Counters {
	if now == nil {
		now = time.Now
	}
	return &Counters{clock: now, events: make(map[string][]time.Time)}
}

// SetJournal installs a hook receiving every mutation, for
// persistence. RestoreEvent calls are not journaled.
func (c *Counters) SetJournal(fn func(CounterEvent)) {
	c.mu.Lock()
	c.journal = fn
	c.mu.Unlock()
}

// Add records one event for key.
func (c *Counters) Add(key string) {
	now := c.clock()
	c.mu.Lock()
	c.events[key] = append(c.events[key], now)
	journal := c.journal
	c.mu.Unlock()
	if journal != nil {
		journal(CounterEvent{Key: key, At: now})
	}
}

// RestoreEvent replays a persisted event with its original timestamp,
// keeping the per-key series time-ordered so window pruning stays
// correct. Events older than the restore clock's horizon expire
// naturally on the next CountSince.
func (c *Counters) RestoreEvent(key string, at time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.events[key]
	i := len(ts)
	for i > 0 && at.Before(ts[i-1]) {
		i--
	}
	ts = append(ts, time.Time{})
	copy(ts[i+1:], ts[i:])
	ts[i] = at
	c.events[key] = ts
}

// Dump returns a copy of every live event series, for snapshots.
func (c *Counters) Dump() map[string][]time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]time.Time, len(c.events))
	for k, ts := range c.events {
		cp := make([]time.Time, len(ts))
		copy(cp, ts)
		out[k] = cp
	}
	return out
}

// CountSince returns the number of events for key within the window,
// pruning older events.
func (c *Counters) CountSince(key string, window time.Duration) int {
	cutoff := c.clock().Add(-window)
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.events[key]
	i := 0
	for i < len(ts) && ts[i].Before(cutoff) {
		i++
	}
	if i > 0 {
		ts = append(ts[:0], ts[i:]...)
		if len(ts) == 0 {
			delete(c.events, key)
		} else {
			c.events[key] = ts
		}
	}
	return len(ts)
}

// Reset forgets all events for key.
func (c *Counters) Reset(key string) {
	c.mu.Lock()
	delete(c.events, key)
	journal := c.journal
	c.mu.Unlock()
	if journal != nil {
		journal(CounterEvent{Key: key, Reset: true})
	}
}

// thresholdEvaluator implements pre_cond_threshold with a value like
//
//	counter=failed_login key=client_ip max=5 window=60s
//
// It evaluates YES when the event count for (counter, key-parameter
// value) within the window reaches max — so a neg entry carrying it
// fires once the threshold is exceeded. It is a selector.
type thresholdEvaluator struct {
	counters *Counters
}

func (t thresholdEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if t.counters == nil {
		return gaa.UnevaluatedOutcome("no counter store configured")
	}
	kv, err := parseKV(cond.Value)
	if err != nil {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err}
	}
	counter := kv["counter"]
	keyParam := kv["key"]
	if counter == "" || keyParam == "" {
		return gaa.Outcome{
			Result: gaa.Maybe, Unevaluated: true,
			Err: fmt.Errorf("threshold needs counter= and key=: %q", cond.Value),
		}
	}
	max, err := strconv.Atoi(kv["max"])
	if err != nil || max <= 0 {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: fmt.Errorf("bad max %q", kv["max"])}
	}
	window, err := time.ParseDuration(kv["window"])
	if err != nil || window <= 0 {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: fmt.Errorf("bad window %q", kv["window"])}
	}
	keyValue, ok := req.Params.Get(keyParam, cond.DefAuth)
	if !ok || keyValue == "" {
		return gaa.UnevaluatedOutcome("no key parameter " + keyParam)
	}
	n := t.counters.CountSince(CounterKey(counter, keyValue), window)
	if n >= max {
		return gaa.MetOutcome(gaa.ClassSelector,
			fmt.Sprintf("%s[%s]=%d reached max %d", counter, keyValue, n, max))
	}
	return gaa.FailedOutcome(gaa.ClassSelector,
		fmt.Sprintf("%s[%s]=%d below max %d", counter, keyValue, n, max))
}

// CounterKey builds the canonical counter identity for a (counter
// name, key value) pair; the count action uses the same scheme.
func CounterKey(counter, keyValue string) string {
	return counter + ":" + keyValue
}
