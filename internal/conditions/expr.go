package conditions

import (
	"context"
	"fmt"
	"strconv"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// exprEvaluator implements pre_cond_expr: a numeric comparison over a
// request parameter, e.g. "input_length>1000" — the paper's buffer-
// overflow detector ("checks that the length of input to a CGI script
// is no longer than 1000 characters", section 7.2). It is a selector.
type exprEvaluator struct{}

func (exprEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	left, op, right, err := splitCmp(cond.Value)
	if err != nil {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err}
	}
	if left == "" {
		return gaa.Outcome{
			Result: gaa.Maybe, Unevaluated: true,
			Err: fmt.Errorf("expr needs a parameter name: %q", cond.Value),
		}
	}
	want, err := strconv.ParseInt(right, 10, 64)
	if err != nil {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: fmt.Errorf("bad number %q", right)}
	}
	got, ok := req.Params.GetInt(left, cond.DefAuth)
	if !ok {
		return gaa.UnevaluatedOutcome("no numeric parameter " + left)
	}
	// Formatted details are trace-only decoration; skip the Sprintf
	// entirely on the untraced hot path.
	if op.holdsInt(got, want) {
		if req.Trace {
			return gaa.MetOutcome(gaa.ClassSelector, fmt.Sprintf("%s=%d %s %d", left, got, op, want))
		}
		return gaa.MetOutcome(gaa.ClassSelector, "expr holds")
	}
	if req.Trace {
		return gaa.FailedOutcome(gaa.ClassSelector, fmt.Sprintf("%s=%d not %s %d", left, got, op, want))
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "expr does not hold")
}

// quotaEvaluator implements mid_cond_quota: a usage limit that must
// hold during operation execution, e.g. "cpu_ms<=50" — the paper's
// "CPU usage threshold that must hold during the operation execution"
// (section 2). It is a requirement: a violated quota is a final NO for
// the execution-control phase.
type quotaEvaluator struct{}

func (quotaEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	left, op, right, err := splitCmp(cond.Value)
	if err != nil || left == "" {
		if err == nil {
			err = fmt.Errorf("quota needs a usage parameter: %q", cond.Value)
		}
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err}
	}
	limit, err := strconv.ParseInt(right, 10, 64)
	if err != nil {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: fmt.Errorf("bad limit %q", right)}
	}
	got, ok := req.Params.GetInt(left, cond.DefAuth)
	if !ok {
		return gaa.UnevaluatedOutcome("no usage parameter " + left)
	}
	if op.holdsInt(got, limit) {
		if req.Trace {
			return gaa.MetOutcome(gaa.ClassRequirement, fmt.Sprintf("%s=%d within %s%d", left, got, op, limit))
		}
		return gaa.MetOutcome(gaa.ClassRequirement, "within quota")
	}
	if req.Trace {
		return gaa.FailedOutcome(gaa.ClassRequirement, fmt.Sprintf("%s=%d violates %s%d", left, got, op, limit))
	}
	return gaa.FailedOutcome(gaa.ClassRequirement, "quota violated")
}
