package conditions

import (
	"context"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// redirectEvaluator implements pre_cond_redirect: it is returned
// unevaluated by design, carrying the target URL in the condition
// value. The web-server integration detects a MAYBE answer whose only
// unevaluated condition is a redirect and issues HTTP_MOVED with that
// URL (paper section 6: "The condition of type pre_cond_redirect
// encodes the URL and is returned unevaluated").
type redirectEvaluator struct{}

func (redirectEvaluator) Evaluate(context.Context, eacl.Condition, *gaa.Request) gaa.Outcome {
	return gaa.UnevaluatedOutcome("redirect deferred to the application")
}
