package conditions

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// BenchmarkEvaluators measures each built-in condition evaluator in
// isolation — the per-condition cost underlying E5's per-entry
// numbers.
func BenchmarkEvaluators(b *testing.B) {
	var (
		threat   = ids.NewManager(ids.Medium)
		grp      = groups.NewStore()
		counters = NewCounters(nil)
		sigs     = ids.NewDB(ids.DefaultSignatures()...)
	)
	grp.Add("BadGuys", "10.0.0.66")
	for i := 0; i < 3; i++ {
		counters.Add(CounterKey("failed_login", "10.0.0.66"))
	}

	params := gaa.ParamList{
		{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: "10.0.0.66"},
		{Type: gaa.ParamClientHost, Authority: gaa.AuthorityAny, Value: "host.example.org"},
		{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /cgi-bin/phf?Qalias=x"},
		{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: "alice"},
		{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: "128"},
	}
	req := &gaa.Request{
		Rights: []eacl.Right{{Sign: eacl.Pos, DefAuth: "apache", Value: "GET /x"}},
		Params: params,
		Time:   time.Date(2003, 5, 19, 14, 30, 0, 0, time.UTC),
	}

	cases := []struct {
		name    string
		typ     string
		defAuth string
		value   string
	}{
		{"accessid_USER", "accessid_USER", "apache", "*"},
		{"accessid_GROUP", "accessid_GROUP", "local", "BadGuys"},
		{"accessid_HOST", "accessid_HOST", "local", "*.example.org"},
		{"system_threat_level", "system_threat_level", "local", ">low"},
		{"time_window", "time_window", "local", "09:00-17:00 Mon-Fri"},
		{"location_cidr", "location", "local", "10.0.0.0/8"},
		{"regex_glob", "regex", "gnu", "*phf* *test-cgi*"},
		{"regex_re", "regex", "gnu", "re:/cgi-bin/(phf|test-cgi)"},
		{"signature_db", "signature", "local", "*"},
		{"expr", "expr", "local", "input_length>1000"},
		{"threshold", "threshold", "local", "counter=failed_login key=client_ip max=3 window=60s"},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ev, ok := Builtin(tc.typ, Deps{
				Threat:     threat,
				Groups:     grp,
				Counters:   counters,
				Signatures: sigs,
			})
			if !ok {
				b.Fatalf("no builtin %q", tc.typ)
			}
			cond := eacl.Condition{
				Block: eacl.BlockPre, Type: tc.typ, DefAuth: tc.defAuth, Value: tc.value,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := ev.Evaluate(context.Background(), cond, req)
				if out.Err != nil {
					b.Fatalf("evaluator error: %v", out.Err)
				}
			}
		})
	}
}

func BenchmarkThresholdCounterAdd(b *testing.B) {
	c := NewCounters(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(CounterKey("k", fmt.Sprintf("10.0.0.%d", i%250)))
	}
}
