package conditions

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// evalMid runs a mid-condition through the execution-control phase.
func evalMid(t *testing.T, condLine string, usage ...gaa.Param) gaa.Decision {
	t.Helper()
	h := newHarness(t)
	e, err := eacl.ParseString("pos_access_right apache *\n" + condLine + "\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	req := gaa.NewRequest("apache", "GET /x")
	ans, err := h.api.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatalf("CheckAuthorization: %v", err)
	}
	dec, _ := h.api.ExecutionControl(context.Background(), ans, req, usage...)
	return dec
}

func usageParam(typ, val string) gaa.Param {
	return gaa.Param{Type: typ, Authority: gaa.AuthorityAny, Value: val}
}

func TestQuotaMidCondition(t *testing.T) {
	tests := []struct {
		name  string
		cond  string
		usage []gaa.Param
		want  gaa.Decision
	}{
		{"cpu within", "mid_cond_quota local cpu_ms<=50", []gaa.Param{usageParam(gaa.ParamCPUMillis, "20")}, gaa.Yes},
		{"cpu violated", "mid_cond_quota local cpu_ms<=50", []gaa.Param{usageParam(gaa.ParamCPUMillis, "80")}, gaa.No},
		{"output within", "mid_cond_quota local output_bytes<4096", []gaa.Param{usageParam(gaa.ParamOutputBytes, "100")}, gaa.Yes},
		{"output violated", "mid_cond_quota local output_bytes<4096", []gaa.Param{usageParam(gaa.ParamOutputBytes, "9999")}, gaa.No},
		{"wall violated", "mid_cond_quota local wall_ms<=1000", []gaa.Param{usageParam(gaa.ParamWallMillis, "5000")}, gaa.No},
		{"missing usage", "mid_cond_quota local cpu_ms<=50", nil, gaa.Maybe},
		{"no param name", "mid_cond_quota local <=50", []gaa.Param{usageParam(gaa.ParamCPUMillis, "20")}, gaa.Maybe},
		{"bad limit", "mid_cond_quota local cpu_ms<=many", []gaa.Param{usageParam(gaa.ParamCPUMillis, "20")}, gaa.Maybe},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := evalMid(t, tt.cond, tt.usage...); got != tt.want {
				t.Errorf("%q = %v, want %v", tt.cond, got, tt.want)
			}
		})
	}
}

func TestFileSHA256PostCondition(t *testing.T) {
	h := newHarness(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "passwd")
	if err := os.WriteFile(path, []byte("root:x:0:0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	digest, err := HashFile(path)
	if err != nil {
		t.Fatalf("HashFile: %v", err)
	}

	e, err := eacl.ParseString(
		"pos_access_right apache *\npost_cond_file_sha256 local " + path + " " + digest + "\n")
	if err != nil {
		t.Fatal(err)
	}
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	req := gaa.NewRequest("apache", "GET /x")
	ans, err := h.api.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatal(err)
	}

	// Unmodified file: post-conditions pass.
	if dec, _ := h.api.PostExecutionActions(context.Background(), ans, req, gaa.Yes); dec != gaa.Yes {
		t.Errorf("unchanged file: %v, want yes", dec)
	}

	// Tampered file: post-conditions fail.
	if err := os.WriteFile(path, []byte("root::0:0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if dec, _ := h.api.PostExecutionActions(context.Background(), ans, req, gaa.Yes); dec != gaa.No {
		t.Errorf("tampered file: %v, want no", dec)
	}

	// Unreadable file counts as a violation.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if dec, _ := h.api.PostExecutionActions(context.Background(), ans, req, gaa.Yes); dec != gaa.No {
		t.Errorf("missing file: %v, want no", dec)
	}
}

func TestFileSHA256BadValue(t *testing.T) {
	h := newHarness(t)
	e, err := eacl.ParseString("pos_access_right apache *\npost_cond_file_sha256 local onlyonefield\n")
	if err != nil {
		t.Fatal(err)
	}
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	req := gaa.NewRequest("apache", "GET /x")
	ans, err := h.api.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatal(err)
	}
	if dec, _ := h.api.PostExecutionActions(context.Background(), ans, req, gaa.Yes); dec != gaa.Maybe {
		t.Errorf("malformed condition: %v, want maybe", dec)
	}
}

func TestHashFileErrors(t *testing.T) {
	if _, err := HashFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("want error for missing file")
	}
}
