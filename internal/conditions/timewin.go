package conditions

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// timeWindowEvaluator implements pre_cond_time_window: the request time
// must fall inside "HH:MM-HH:MM" with an optional day restriction
// ("Mon-Fri" or "Mon,Wed,Sat"). Windows may wrap midnight
// ("22:00-06:00"). It is a selector — the paper's "more restrictive
// organizational policies may be enforced after hours" switches entries
// on it.
type timeWindowEvaluator struct{}

func (timeWindowEvaluator) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	fields := splitFields(cond.Value)
	if len(fields) == 0 || len(fields) > 2 {
		return gaa.Outcome{
			Result: gaa.Maybe, Unevaluated: true,
			Err: fmt.Errorf("want \"HH:MM-HH:MM [days]\", got %q", cond.Value),
		}
	}
	startMin, endMin, err := parseWindow(fields[0])
	if err != nil {
		return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err}
	}
	now := req.Time
	if len(fields) == 2 {
		ok, err := dayMatches(fields[1], now.Weekday())
		if err != nil {
			return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Err: err}
		}
		if !ok {
			return gaa.FailedOutcome(gaa.ClassSelector, now.Weekday().String()+" outside "+fields[1])
		}
	}
	cur := now.Hour()*60 + now.Minute()
	inside := false
	if startMin <= endMin {
		inside = cur >= startMin && cur < endMin
	} else { // wraps midnight
		inside = cur >= startMin || cur < endMin
	}
	if inside {
		return gaa.MetOutcome(gaa.ClassSelector, "inside window "+fields[0])
	}
	return gaa.FailedOutcome(gaa.ClassSelector, "outside window "+fields[0])
}

// parseWindow parses "HH:MM-HH:MM" into minutes-of-day.
func parseWindow(s string) (start, end int, err error) {
	from, to, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("want HH:MM-HH:MM, got %q", s)
	}
	if start, err = parseHHMM(from); err != nil {
		return 0, 0, err
	}
	if end, err = parseHHMM(to); err != nil {
		return 0, 0, err
	}
	return start, end, nil
}

func parseHHMM(s string) (int, error) {
	t, err := time.Parse("15:04", s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %w", s, err)
	}
	return t.Hour()*60 + t.Minute(), nil
}

var dayNames = map[string]time.Weekday{
	"sun": time.Sunday, "mon": time.Monday, "tue": time.Tuesday,
	"wed": time.Wednesday, "thu": time.Thursday, "fri": time.Friday,
	"sat": time.Saturday,
}

// dayMatches checks a day spec: "Mon-Fri" (range, may wrap the week) or
// "Mon,Wed,Sat" (list) or a single day.
func dayMatches(spec string, day time.Weekday) (bool, error) {
	if from, to, ok := strings.Cut(spec, "-"); ok {
		f, ferr := parseDay(from)
		t, terr := parseDay(to)
		if ferr != nil {
			return false, ferr
		}
		if terr != nil {
			return false, terr
		}
		if f <= t {
			return day >= f && day <= t, nil
		}
		return day >= f || day <= t, nil // wraps the week, e.g. Sat-Mon
	}
	for _, part := range strings.Split(spec, ",") {
		d, err := parseDay(part)
		if err != nil {
			return false, err
		}
		if d == day {
			return true, nil
		}
	}
	return false, nil
}

func parseDay(s string) (time.Weekday, error) {
	key := strings.ToLower(strings.TrimSpace(s))
	if len(key) > 3 {
		key = key[:3]
	}
	d, ok := dayNames[key]
	if !ok {
		return 0, fmt.Errorf("unknown day %q", s)
	}
	return d, nil
}
