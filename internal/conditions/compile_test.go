package conditions

import (
	"context"
	"testing"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// TestCompiledCondParity compiles every compilable builtin condition
// and requires EvalCompiled to reproduce the interpreter's Outcome
// byte for byte — details and challenges included — across a request
// matrix. This is the per-evaluator complement of package gaa's
// differential fuzz: it pins each compiler in isolation.
func TestCompiledCondParity(t *testing.T) {
	grp := groups.NewStore()
	grp.Add("BadGuys", "10.9.9.9")
	grp.Add("staff", "alice")
	deps := Deps{Threat: ids.NewManager(ids.Medium), Groups: grp}

	reqs := []*gaa.Request{
		gaa.NewRequest("apache", "GET /index.html",
			gaa.Param{Type: gaa.ParamClientIP, Authority: "*", Value: "10.9.9.9"},
			gaa.Param{Type: gaa.ParamInputLength, Authority: "*", Value: "14"},
		),
		gaa.NewRequest("apache", "GET /cgi-bin/phf?q=x",
			gaa.Param{Type: gaa.ParamClientIP, Authority: "*", Value: "192.168.1.5"},
			gaa.Param{Type: gaa.ParamUser, Authority: "*", Value: "alice"},
			gaa.Param{Type: gaa.ParamClientHost, Authority: "*", Value: "ws.example.org"},
			gaa.Param{Type: gaa.ParamInputLength, Authority: "*", Value: "2000"},
		),
		gaa.NewRequest("apache", "GET /x"), // no params at all
	}
	times := []time.Time{
		time.Date(2026, time.March, 4, 15, 30, 0, 0, time.UTC), // Wed afternoon
		time.Date(2026, time.March, 8, 2, 0, 0, 0, time.UTC),   // Sun night
	}

	cases := []struct {
		typ, value string
		compiles   bool
	}{
		{"system_threat_level", "=high", true},
		{"system_threat_level", ">low", true},
		{"system_threat_level", ">=medium", true},
		{"system_threat_level", "<high", true},
		{"system_threat_level", "~bogus", false},
		{"time_window", "09:00-17:00", true},
		{"time_window", "18:00-08:00", true},
		{"time_window", "09:00-17:00 Mon-Fri", true},
		{"time_window", "garbage", false},
		{"location", "10.0.0.0/8", true},
		{"location", "10.0.0.0/8 192.168.1.5", true},
		{"location", "10.0.0.0/8 192.168.*", true},
		{"location", "10.0.0.0/8 999.0.0.0/8", false},
		{"regex", "*phf* *cmd.exe*", true},
		{"regex", "re:^GET /cgi-bin/.*$", true},
		{"regex", "re:(", false},
		{"expr", "input_length>1000", true},
		{"expr", "missing_param<5", true},
		{"expr", "nonsense", false},
		{"accessid_USER", "alice bob", true},
		{"accessid_USER", "*", true},
		{"accessid_GROUP", "BadGuys", true},
		{"accessid_GROUP", "staff", true},
		{"accessid_HOST", "*.example.org", true},
		{"redirect", "http://mirror.example/", true},
	}
	for _, tc := range cases {
		ev, ok := Builtin(tc.typ, deps)
		if !ok {
			t.Fatalf("no builtin %q", tc.typ)
		}
		comp, ok := ev.(gaa.CondCompiler)
		if !ok {
			t.Fatalf("builtin %q does not implement CondCompiler", tc.typ)
		}
		cond := eacl.Condition{Block: eacl.BlockPre, Type: tc.typ, DefAuth: "local", Value: tc.value}
		cc, ok := comp.CompileCond(cond)
		if ok != tc.compiles {
			t.Errorf("%s %q: CompileCond ok = %v, want %v", tc.typ, tc.value, ok, tc.compiles)
			continue
		}
		if !ok {
			continue
		}
		for ri, base := range reqs {
			for ti, at := range times {
				req := *base
				req.Time = at
				got := cc.EvalCompiled(&req)
				want := ev.Evaluate(context.Background(), cond, &req)
				if !outcomeEq(got, want) {
					t.Errorf("%s %q req %d time %d:\n  compiled    %+v\n  interpreted %+v",
						tc.typ, tc.value, ri, ti, got, want)
				}
			}
		}
	}
}

// TestCompileCondRefusals pins the compile-time refusals that depend
// on wiring rather than the condition value.
func TestCompileCondRefusals(t *testing.T) {
	cond := func(typ, value string) eacl.Condition {
		return eacl.Condition{Block: eacl.BlockPre, Type: typ, DefAuth: "local", Value: value}
	}
	// No threat provider: the evaluator answers MAYBE dynamically, so
	// there is nothing worth baking in.
	ev, _ := Builtin("system_threat_level", Deps{})
	if _, ok := ev.(gaa.CondCompiler).CompileCond(cond("system_threat_level", "=high")); ok {
		t.Error("threat condition compiled without a provider")
	}
	// No group store.
	ev, _ = Builtin("accessid_GROUP", Deps{})
	if _, ok := ev.(gaa.CondCompiler).CompileCond(cond("accessid_GROUP", "BadGuys")); ok {
		t.Error("group condition compiled without a store")
	}
	// Empty group name.
	ev, _ = Builtin("accessid_GROUP", Deps{Groups: groups.NewStore()})
	if _, ok := ev.(gaa.CondCompiler).CompileCond(cond("accessid_GROUP", "  ")); ok {
		t.Error("group condition compiled with an empty group")
	}
}

func outcomeEq(a, b gaa.Outcome) bool {
	if a.Result != b.Result || a.Class != b.Class || a.Unevaluated != b.Unevaluated ||
		a.Challenge != b.Challenge || a.Detail != b.Detail || a.Fault != b.Fault {
		return false
	}
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil && a.Err.Error() != b.Err.Error() {
		return false
	}
	return true
}
