package httpd

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// paperHtaccess is the sample .htaccess of paper section 4.
const paperHtaccess = `
Order Deny,Allow
Deny from All
Allow from 128.9
AuthType Basic
AuthName "ISI staff"
AuthUserFile /usr/local/apache2/.htpasswd-isi-staff
Require valid-user
Satisfy All
`

func rec(ip, user string) *RequestRec {
	return &RequestRec{
		Time:     time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC),
		Method:   "GET",
		Path:     "/index.html",
		URI:      "GET /index.html",
		ClientIP: ip,
		User:     user,
	}
}

func TestParsePaperHtaccess(t *testing.T) {
	h, err := ParseHtaccessString(paperHtaccess)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if h.Order != "deny,allow" || len(h.Deny) != 1 || len(h.Allow) != 1 {
		t.Errorf("host directives = %+v", h)
	}
	if h.AuthName != "ISI staff" || h.AuthUserFile != "/usr/local/apache2/.htpasswd-isi-staff" {
		t.Errorf("auth directives = %+v", h)
	}
	if len(h.Require) != 1 || h.Require[0] != "valid-user" {
		t.Errorf("require = %v", h.Require)
	}
	if h.Satisfy != "all" {
		t.Errorf("satisfy = %q", h.Satisfy)
	}
}

func TestPaperHtaccessSemantics(t *testing.T) {
	h, err := ParseHtaccessString(paperHtaccess)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		rec  *RequestRec
		want StatusKind
	}{
		{"inside network, authenticated", rec("128.9.1.2", "alice"), StatusOK},
		{"inside network, anonymous", rec("128.9.1.2", ""), StatusAuthRequired},
		{"outside network", rec("66.66.66.66", "alice"), StatusForbidden},
		{"outside network, anonymous", rec("66.66.66.66", ""), StatusForbidden},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := h.Evaluate(tt.rec, nil)
			if got.Kind != tt.want {
				t.Errorf("Evaluate = %v (%s), want %v", got.Kind, got.Reason, tt.want)
			}
		})
	}
}

func TestSatisfyAny(t *testing.T) {
	h, err := ParseHtaccessString(`
Order Deny,Allow
Deny from All
Allow from 10.0.0
Require valid-user
Satisfy Any
`)
	if err != nil {
		t.Fatal(err)
	}
	// Either host or user constraint suffices.
	if got := h.Evaluate(rec("10.0.0.5", ""), nil); got.Kind != StatusOK {
		t.Errorf("inside network anonymous = %v, want OK", got.Kind)
	}
	if got := h.Evaluate(rec("99.9.9.9", "alice"), nil); got.Kind != StatusOK {
		t.Errorf("outside network authenticated = %v, want OK", got.Kind)
	}
	if got := h.Evaluate(rec("99.9.9.9", ""), nil); got.Kind != StatusAuthRequired {
		t.Errorf("outside anonymous = %v, want AuthRequired", got.Kind)
	}
}

func TestOrderAllowDeny(t *testing.T) {
	h, err := ParseHtaccessString(`
Order Allow,Deny
Allow from 10.0.0
Deny from 10.0.0.66
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Evaluate(rec("10.0.0.5", ""), nil); got.Kind != StatusOK {
		t.Errorf("allowed host = %v", got.Kind)
	}
	if got := h.Evaluate(rec("10.0.0.66", ""), nil); got.Kind != StatusForbidden {
		t.Errorf("deny override = %v", got.Kind)
	}
	// Default deny under Allow,Deny.
	if got := h.Evaluate(rec("99.0.0.1", ""), nil); got.Kind != StatusForbidden {
		t.Errorf("unlisted host = %v, want Forbidden", got.Kind)
	}
}

func TestRequireUserList(t *testing.T) {
	h, err := ParseHtaccessString("Require user alice bob\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Evaluate(rec("1.1.1.1", "bob"), nil); got.Kind != StatusOK {
		t.Errorf("listed user = %v", got.Kind)
	}
	if got := h.Evaluate(rec("1.1.1.1", "mallory"), nil); got.Kind != StatusAuthRequired {
		t.Errorf("unlisted user = %v", got.Kind)
	}
}

func TestRequireGroup(t *testing.T) {
	h, err := ParseHtaccessString(`
AuthGroupFile /etc/htgroup
Require group staff
`)
	if err != nil {
		t.Fatal(err)
	}
	loader := func(path string) ([]byte, error) {
		if path == "/etc/htgroup" {
			return []byte("staff: alice carol\n"), nil
		}
		return nil, fmt.Errorf("no such file %q", path)
	}
	if got := h.Evaluate(rec("1.1.1.1", "carol"), loader); got.Kind != StatusOK {
		t.Errorf("group member = %v", got.Kind)
	}
	if got := h.Evaluate(rec("1.1.1.1", "bob"), loader); got.Kind != StatusAuthRequired {
		t.Errorf("non-member = %v", got.Kind)
	}
	// Missing loader fails closed.
	if got := h.Evaluate(rec("1.1.1.1", "carol"), nil); got.Kind != StatusAuthRequired {
		t.Errorf("nil loader = %v, want AuthRequired", got.Kind)
	}
	// Loader error fails closed.
	broken := func(string) ([]byte, error) { return nil, fmt.Errorf("io error") }
	if got := h.Evaluate(rec("1.1.1.1", "carol"), broken); got.Kind != StatusAuthRequired {
		t.Errorf("broken loader = %v, want AuthRequired", got.Kind)
	}
}

func TestHostPatternForms(t *testing.T) {
	tests := []struct {
		pattern string
		ip      string
		want    bool
	}{
		{"All", "1.2.3.4", true},
		{"all", "1.2.3.4", true},
		{"10.0.0.0/8", "10.200.1.1", true},
		{"10.0.0.0/8", "11.0.0.1", false},
		{"128.9", "128.9.4.5", true},
		{"128.9", "128.90.4.5", false}, // prefix must end at a dot
		{"128.9.", "128.9.4.5", true},
		{"10.*.3.*", "10.22.3.99", true},
		{"10.*.3.*", "10.22.4.99", false},
		{"1.2.3.4", "1.2.3.4", true},
		{"1.2.3.4", "1.2.3.40", false},
	}
	for _, tt := range tests {
		if got := matchHostList([]string{tt.pattern}, tt.ip); got != tt.want {
			t.Errorf("matchHostList(%q, %q) = %v, want %v", tt.pattern, tt.ip, got, tt.want)
		}
	}
}

func TestParseHtaccessErrors(t *testing.T) {
	bad := []string{
		"Order sideways",
		"Order",
		"Deny 10.0.0.1",             // missing "from"
		"Allow to all",              // wrong preposition
		"Require",                   // no arguments
		"Require planet earth mars", // unknown kind
		"Satisfy maybe",
		"Satisfy",
		"AuthType",
		"AuthUserFile",
		"AuthGroupFile a b",
		"FancyDirective on",
		"Require user",  // user kind without names
		"Require group", // group kind without names
	}
	for _, src := range bad {
		if _, err := ParseHtaccessString(src); err == nil {
			t.Errorf("ParseHtaccessString(%q): want error", src)
		}
	}
}

func TestParseHtaccessCommentsAndCase(t *testing.T) {
	h, err := ParseHtaccessString(`
# locked down
ORDER Deny,Allow
deny from ALL
allow FROM 10.1
SATISFY any
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if h.Satisfy != "any" || len(h.Deny) != 1 {
		t.Errorf("parsed = %+v", h)
	}
}

func TestDefaultsWithNoDirectives(t *testing.T) {
	h, err := ParseHtaccessString("")
	if err != nil {
		t.Fatal(err)
	}
	// No Deny/Allow/Require: everything is allowed (deny,allow default
	// allows when nothing matches).
	if got := h.Evaluate(rec("8.8.8.8", ""), nil); got.Kind != StatusOK {
		t.Errorf("empty htaccess = %v, want OK", got.Kind)
	}
}

func TestRealmDefault(t *testing.T) {
	h, _ := ParseHtaccessString("Require valid-user\n")
	got := h.Evaluate(rec("1.1.1.1", ""), nil)
	if got.Kind != StatusAuthRequired || !strings.Contains(got.Challenge, "restricted") {
		t.Errorf("challenge = %q", got.Challenge)
	}
}
