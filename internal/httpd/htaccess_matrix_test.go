package httpd

import (
	"fmt"
	"strings"
	"testing"
)

// TestHtaccessFullMatrix sweeps Order × Satisfy × host-position ×
// user-state against a reference model of the documented semantics, so
// any drift in the evaluator shows up as a specific cell.
func TestHtaccessFullMatrix(t *testing.T) {
	type client struct {
		name   string
		ip     string
		user   string
		inside bool // within the Allow'd network
	}
	clients := []client{
		{"inside-anon", "10.0.0.5", "", true},
		{"inside-auth", "10.0.0.5", "alice", true},
		{"outside-anon", "99.9.9.9", "", false},
		{"outside-auth", "99.9.9.9", "alice", false},
	}

	for _, order := range []string{"Deny,Allow", "Allow,Deny"} {
		for _, satisfy := range []string{"All", "Any"} {
			for _, requireUser := range []bool{false, true} {
				src := fmt.Sprintf("Order %s\n", order)
				if order == "Deny,Allow" {
					src += "Deny from All\nAllow from 10.0.0\n"
				} else {
					src += "Allow from 10.0.0\nDeny from All\n"
				}
				if requireUser {
					src += "Require valid-user\n"
				}
				src += "Satisfy " + satisfy + "\n"

				h, err := ParseHtaccessString(src)
				if err != nil {
					t.Fatalf("parse %q: %v", src, err)
				}
				for _, c := range clients {
					name := fmt.Sprintf("%s/%s/require=%v/%s", order, satisfy, requireUser, c.name)
					t.Run(name, func(t *testing.T) {
						got := h.Evaluate(rec(c.ip, c.user), nil)
						want := referenceHtaccess(order, satisfy, requireUser, c.inside, c.user != "")
						if got.Kind != want {
							t.Errorf("got %v (%s), want %v", got.Kind, got.Reason, want)
						}
					})
				}
			}
		}
	}
}

// referenceHtaccess is an independent statement of the documented
// semantics (Apache host logic + Satisfy combination).
func referenceHtaccess(order, satisfy string, requireUser, hostInside, authed bool) StatusKind {
	// Host verdict.
	var hostOK bool
	if order == "Deny,Allow" {
		// Deny All, Allow 10.0.0: denied unless allowed.
		hostOK = hostInside
	} else {
		// Allow 10.0.0, Deny All: deny overrides allow; default deny.
		hostOK = false
	}
	if !requireUser {
		if hostOK {
			return StatusOK
		}
		return StatusForbidden
	}
	userOK := authed
	if satisfy == "Any" {
		if hostOK || userOK {
			return StatusOK
		}
		return StatusAuthRequired
	}
	// Satisfy All.
	if !hostOK {
		return StatusForbidden
	}
	if !userOK {
		return StatusAuthRequired
	}
	return StatusOK
}

// TestHtaccessMultipleAllowPatterns checks list handling.
func TestHtaccessMultipleAllowPatterns(t *testing.T) {
	h, err := ParseHtaccessString(`
Order Deny,Allow
Deny from All
Allow from 10.1 192.168.5.0/24 203.0.113.9
`)
	if err != nil {
		t.Fatal(err)
	}
	for ip, want := range map[string]StatusKind{
		"10.1.2.3":    StatusOK,
		"192.168.5.7": StatusOK,
		"203.0.113.9": StatusOK,
		"10.2.0.1":    StatusForbidden,
		"192.168.6.1": StatusForbidden,
	} {
		if got := h.Evaluate(rec(ip, ""), nil); got.Kind != want {
			t.Errorf("ip %s = %v, want %v", ip, got.Kind, want)
		}
	}
}

// TestHtaccessAccumulatesDirectives: repeated Allow/Deny lines append.
func TestHtaccessAccumulatesDirectives(t *testing.T) {
	h, err := ParseHtaccessString(strings.Join([]string{
		"Order Deny,Allow",
		"Deny from All",
		"Allow from 10.1",
		"Allow from 10.2",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Allow) != 2 {
		t.Fatalf("allow list = %v", h.Allow)
	}
	if got := h.Evaluate(rec("10.2.9.9", ""), nil); got.Kind != StatusOK {
		t.Errorf("second Allow line ignored: %v", got.Kind)
	}
}
