// Package httpd is the web-server substrate standing in for the
// paper's Apache 2.x: an HTTP server with the same request phases
// (access control, operation execution, post-execution logging),
// Apache-style .htaccess / htpasswd / htgroup native access control,
// a CGI-script simulator with resource accounting, and the status
// vocabulary the paper's GAA integration translates into (HTTP_OK,
// HTTP_DECLINED, HTTP_AUTHREQUIRED, HTTP_FORBIDDEN, HTTP_MOVED).
package httpd

import "fmt"

// StatusKind is the access-control phase outcome of one guard.
type StatusKind int

const (
	// StatusOK grants the request (the paper's HTTP_OK translation of
	// a YES authorization).
	StatusOK StatusKind = iota + 1
	// StatusDeclined means the guard takes no position; the next guard
	// (ultimately the server default) decides. The paper's MAYBE
	// answers translate here so Apache's native access control runs.
	StatusDeclined
	// StatusForbidden rejects the request with 403.
	StatusForbidden
	// StatusAuthRequired rejects with 401 and a WWW-Authenticate
	// challenge; the requester may retry with credentials.
	StatusAuthRequired
	// StatusMoved redirects the client (the paper's adaptive
	// redirection policies, HTTP_MOVED).
	StatusMoved
)

// String returns the Apache-flavoured name.
func (k StatusKind) String() string {
	switch k {
	case StatusOK:
		return "HTTP_OK"
	case StatusDeclined:
		return "HTTP_DECLINED"
	case StatusForbidden:
		return "HTTP_FORBIDDEN"
	case StatusAuthRequired:
		return "HTTP_AUTHREQUIRED"
	case StatusMoved:
		return "HTTP_MOVED"
	default:
		return fmt.Sprintf("StatusKind(%d)", int(k))
	}
}

// AccessStatus is a guard's access-control answer.
type AccessStatus struct {
	Kind StatusKind
	// Challenge is the WWW-Authenticate value for StatusAuthRequired.
	Challenge string
	// Location is the redirect target for StatusMoved.
	Location string
	// Reason is a human-readable explanation for logs.
	Reason string
}

// OK is the grant status.
func OK(reason string) AccessStatus {
	return AccessStatus{Kind: StatusOK, Reason: reason}
}

// Declined is the no-position status.
func Declined(reason string) AccessStatus {
	return AccessStatus{Kind: StatusDeclined, Reason: reason}
}

// Forbidden is the 403 status.
func Forbidden(reason string) AccessStatus {
	return AccessStatus{Kind: StatusForbidden, Reason: reason}
}

// AuthRequired is the 401 status with a challenge.
func AuthRequired(challenge, reason string) AccessStatus {
	if challenge == "" {
		challenge = `Basic realm="restricted"`
	}
	return AccessStatus{Kind: StatusAuthRequired, Challenge: challenge, Reason: reason}
}

// Moved is the 302 status.
func Moved(location, reason string) AccessStatus {
	return AccessStatus{Kind: StatusMoved, Location: location, Reason: reason}
}
