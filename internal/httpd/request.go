package httpd

import (
	"encoding/base64"
	"net"
	"net/http"
	"strings"
	"time"
)

// RequestRec is the server's per-request record, the analog of
// Apache's request_rec: everything guards and loggers need, extracted
// once (paper section 6 step 2b: "the context information ... is
// extracted from the request_rec structure").
type RequestRec struct {
	Time     time.Time
	Method   string
	Path     string // URL path component
	Query    string // raw query string
	URI      string // method + original request URI, the signature subject
	ClientIP string
	// User is the authenticated user, empty when anonymous.
	User string
	// AuthAttempted reports whether credentials were presented (even
	// invalid ones).
	AuthAttempted bool
	// AuthFailed reports presented-but-invalid credentials.
	AuthFailed bool

	HeaderCount int
	// InputLength models the input handed to the requested operation:
	// query string plus request body length (the paper's CGI
	// buffer-overflow detector measures it).
	InputLength int
}

// Authenticator verifies user credentials (htpasswd-backed in this
// substrate).
type Authenticator interface {
	Authenticate(user, password string) bool
}

// NewRequestRec builds the record from an incoming request,
// authenticating Basic credentials against auth (nil auth rejects all
// credentials).
func NewRequestRec(r *http.Request, auth Authenticator, now time.Time) *RequestRec {
	rec := new(RequestRec)
	fillRequestRec(rec, r, auth, now)
	return rec
}

// fillRequestRec overwrites rec in place; the server fills pooled
// records through it instead of allocating one per request.
func fillRequestRec(rec *RequestRec, r *http.Request, auth Authenticator, now time.Time) {
	*rec = RequestRec{
		Time:        now,
		Method:      r.Method,
		Path:        r.URL.Path,
		Query:       r.URL.RawQuery,
		URI:         r.Method + " " + r.RequestURI,
		ClientIP:    clientIP(r.RemoteAddr),
		HeaderCount: len(r.Header),
		InputLength: len(r.URL.RawQuery) + int(max64(r.ContentLength, 0)),
	}
	if r.RequestURI == "" {
		// Outside a real server loop (tests building requests by hand)
		// RequestURI is unset; reconstruct it.
		rec.URI = r.Method + " " + r.URL.RequestURI()
	}
	if user, pass, ok := basicAuth(r); ok {
		rec.AuthAttempted = true
		if auth != nil && auth.Authenticate(user, pass) {
			rec.User = user
		} else {
			rec.AuthFailed = true
		}
	}
}

// Object returns the protected object the request addresses: the URL
// path, which maps onto the policy directory tree.
func (r *RequestRec) Object() string {
	return r.Path
}

// basicAuth decodes an Authorization: Basic header. We parse manually
// rather than via (*http.Request).BasicAuth to keep the substrate's
// behaviour explicit for malformed headers (they count as an attempt).
func basicAuth(r *http.Request) (user, pass string, ok bool) {
	h := r.Header.Get("Authorization")
	if h == "" {
		return "", "", false
	}
	const prefix = "Basic "
	if !strings.HasPrefix(h, prefix) {
		return "", "", false
	}
	raw, err := base64.StdEncoding.DecodeString(h[len(prefix):])
	if err != nil {
		return "", "", true // malformed credentials: an attempt that fails
	}
	user, pass, found := strings.Cut(string(raw), ":")
	if !found {
		return "", "", true
	}
	return user, pass, true
}

// clientIP strips the port from a RemoteAddr.
func clientIP(remoteAddr string) string {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		return remoteAddr
	}
	return host
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
