package httpd

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestMapHtaccessSourceChain(t *testing.T) {
	src := NewMapHtaccessSource()
	if err := src.SetString("", "Order Deny,Allow\n"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetString("docs/private", "Require valid-user\n"); err != nil {
		t.Fatal(err)
	}
	chain, err := src.For("/docs/private/report.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain = %d, want 2", len(chain))
	}
	// Outer first, inner last.
	if len(chain[1].Require) == 0 {
		t.Error("innermost htaccess should be last")
	}
	if got, err := src.For("/other.html"); err != nil || len(got) != 1 {
		t.Errorf("root-only chain = %v, %v", got, err)
	}
	if dirs := src.Dirs(); !reflect.DeepEqual(dirs, []string{"", "docs/private"}) {
		t.Errorf("Dirs = %v", dirs)
	}
	if err := src.SetString("x", "Bogus directive\n"); err == nil {
		t.Error("SetString with bad content should fail")
	}
}

func TestBaselineGuardMostSpecificWins(t *testing.T) {
	src := NewMapHtaccessSource()
	// Root locks everything down; the public subtree reopens it.
	if err := src.SetString("", "Require valid-user\n"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetString("public", "Order Deny,Allow\n"); err != nil {
		t.Fatal(err)
	}
	g := NewBaselineGuard(src, nil)
	if v := g.Check(rec("1.1.1.1", "")); v.Status.Kind != StatusAuthRequired {
		t.Errorf("root doc = %v, want AuthRequired", v.Status.Kind)
	}
	pub := rec("1.1.1.1", "")
	pub.Path = "/public/page.html"
	if v := g.Check(pub); v.Status.Kind != StatusOK {
		t.Errorf("public doc = %v, want OK (most specific wins)", v.Status.Kind)
	}
}

func TestBaselineGuardDeclinesWithoutHtaccess(t *testing.T) {
	g := NewBaselineGuard(NewMapHtaccessSource(), nil)
	if v := g.Check(rec("1.1.1.1", "")); v.Status.Kind != StatusDeclined {
		t.Errorf("no htaccess = %v, want Declined", v.Status.Kind)
	}
}

func TestDirHtaccessSource(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(rel, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(root, rel), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(".htaccess", "Order Deny,Allow\n")
	write("docs/.htaccess", "Require valid-user\n")

	src := NewDirHtaccessSource(root, ".htaccess")
	chain, err := src.For("/docs/file.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain = %d, want 2", len(chain))
	}

	// Cache serves the same parse for an unchanged file.
	again, err := src.For("/docs/file.html")
	if err != nil {
		t.Fatal(err)
	}
	if chain[1] != again[1] {
		t.Error("expected cached htaccess pointer")
	}

	// Changed file refreshes.
	write("docs/.htaccess", "Order Deny,Allow\nDeny from All\n")
	newTime := time.Now().Add(3 * time.Second)
	if err := os.Chtimes(filepath.Join(root, "docs/.htaccess"), newTime, newTime); err != nil {
		t.Fatal(err)
	}
	refreshed, err := src.For("/docs/file.html")
	if err != nil {
		t.Fatal(err)
	}
	if refreshed[1] == chain[1] {
		t.Error("stale htaccess after file change")
	}

	// Parse errors propagate.
	write("docs/.htaccess", "NotADirective x\n")
	newTime = newTime.Add(3 * time.Second)
	if err := os.Chtimes(filepath.Join(root, "docs/.htaccess"), newTime, newTime); err != nil {
		t.Fatal(err)
	}
	if _, err := src.For("/docs/file.html"); err == nil {
		t.Error("want parse error")
	}
	// And a guard surfaces them as Forbidden (fail closed).
	g := NewBaselineGuard(src, nil)
	r := rec("1.1.1.1", "")
	r.Path = "/docs/file.html"
	if v := g.Check(r); v.Status.Kind != StatusForbidden {
		t.Errorf("guard with broken htaccess = %v, want Forbidden", v.Status.Kind)
	}
}

func TestObjectDirsHTTPD(t *testing.T) {
	tests := []struct {
		object string
		want   []string
	}{
		{"/", []string{""}},
		{"/a/b/file", []string{"", "a", "a/b"}},
	}
	for _, tt := range tests {
		if got := objectDirs(tt.object); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("objectDirs(%q) = %v, want %v", tt.object, got, tt.want)
		}
	}
	if normalizeDir("/docs/") != "docs" || normalizeDir("") != "" {
		t.Error("normalizeDir mismatch")
	}
}
