package httpd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"gaaapi/internal/execctl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/netblock"
)

// Verdict is a guard's full answer: the access status plus optional
// hooks for the later request phases (the deciding guard's
// mid-conditions and post-conditions).
type Verdict struct {
	Status AccessStatus
	// Monitor, when non-nil, is polled with usage snapshots during
	// operation execution; returning false aborts the operation
	// (execution-control phase).
	Monitor func(execctl.Snapshot) bool
	// Post, when non-nil, runs after the operation with its success
	// status (post-execution phase).
	Post func(success bool)
}

// Guard is an access-control module in the server's check-access
// phase. Guards run in order; the first non-declined status decides.
type Guard interface {
	Check(rec *RequestRec) Verdict
}

// GuardFunc adapts a function to Guard.
type GuardFunc func(rec *RequestRec) Verdict

// Check implements Guard.
func (f GuardFunc) Check(rec *RequestRec) Verdict { return f(rec) }

// Config assembles a Server.
type Config struct {
	// DocRoot maps URL paths ("/index.html") to static content; it is
	// wrapped as a MapRoot when Files is nil.
	DocRoot map[string]string
	// Files, when non-nil, resolves static documents (e.g. an OSRoot
	// serving a directory on disk) and takes precedence over DocRoot.
	Files FileRoot
	// Scripts serves /cgi-bin/<name> requests.
	Scripts *ScriptRegistry
	// Guards run in order during the access-control phase (e.g. the
	// GAA guard first, the htaccess baseline second).
	Guards []Guard
	// Auth verifies Basic credentials when building request records.
	Auth Authenticator
	// Blocks, when non-nil, is the simulated firewall consulted before
	// anything else.
	Blocks *netblock.Set
	// AccessLog, when non-nil, receives common-log-format lines.
	AccessLog io.Writer
	// Clock overrides time.Now.
	Clock func() time.Time
	// MonitorInterval is the mid-condition polling period (default
	// 500µs).
	MonitorInterval time.Duration
}

// Server is the Apache-analog web server. It implements http.Handler.
type Server struct {
	cfg Config
}

var _ http.Handler = (*Server)(nil)

// NewServer builds a server; zero-value config fields get defaults.
func NewServer(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 500 * time.Microsecond
	}
	if cfg.DocRoot == nil {
		cfg.DocRoot = make(map[string]string)
	}
	if cfg.Files == nil {
		cfg.Files = MapRoot(cfg.DocRoot)
	}
	if cfg.Scripts == nil {
		cfg.Scripts = NewScriptRegistry()
	}
	return &Server{cfg: cfg}
}

// recPool recycles request records: guards receive the record only
// for the duration of the check-access phase and must not retain it.
var recPool = sync.Pool{New: func() any { return new(RequestRec) }}

// opScratch bundles the per-operation execution state so one pool hit
// covers both the usage accounting and the response body buffer.
type opScratch struct {
	usage execctl.Usage
	body  bytes.Buffer
}

var scratchPool = sync.Pool{New: func() any { return new(opScratch) }}

// ServeHTTP runs the three phases of the paper's integration: access
// control, monitored execution, post-execution actions — then logs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := recPool.Get().(*RequestRec)
	defer recPool.Put(rec)
	fillRequestRec(rec, r, s.cfg.Auth, s.cfg.Clock())

	// Simulated firewall: blocked sources are dropped before the
	// access-control phase, like a connection-level rule.
	if s.cfg.Blocks != nil && s.cfg.Blocks.Blocked(rec.ClientIP) {
		s.finish(w, rec, http.StatusForbidden, "address blocked\n", "firewall")
		return
	}

	verdict := s.checkAccess(rec)
	switch verdict.Status.Kind {
	case StatusForbidden:
		s.finish(w, rec, http.StatusForbidden, "Permission Denied\n", verdict.Status.Reason)
		return
	case StatusAuthRequired:
		w.Header().Set("WWW-Authenticate", verdict.Status.Challenge)
		s.finish(w, rec, http.StatusUnauthorized, "Authorization Required\n", verdict.Status.Reason)
		return
	case StatusMoved:
		w.Header().Set("Location", verdict.Status.Location)
		s.finish(w, rec, http.StatusFound, "", verdict.Status.Reason)
		return
	}
	// StatusOK, or StatusDeclined by every guard: default allow, the
	// operation executes.
	s.execute(r.Context(), w, rec, verdict)
}

// checkAccess runs the guards; the first non-declined verdict decides.
func (s *Server) checkAccess(rec *RequestRec) Verdict {
	for _, g := range s.cfg.Guards {
		v := g.Check(rec)
		if v.Status.Kind != StatusDeclined {
			return v
		}
	}
	return Verdict{Status: OK("default: all guards declined")}
}

// execute performs the requested operation under execution control.
func (s *Server) execute(ctx context.Context, w http.ResponseWriter, rec *RequestRec, verdict Verdict) {
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	sc.usage.Reset(s.cfg.Clock)
	sc.body.Reset()
	usage := &sc.usage
	body := &sc.body

	var op func(context.Context, *execctl.Usage) error
	switch {
	case strings.HasPrefix(rec.Path, "/cgi-bin/"):
		name := strings.TrimPrefix(rec.Path, "/cgi-bin/")
		script, ok := s.cfg.Scripts.Get(name)
		if !ok {
			s.runPost(verdict, false)
			s.finish(w, rec, http.StatusNotFound, "no such script\n", "cgi not found")
			return
		}
		op = func(ctx context.Context, u *execctl.Usage) error {
			cw := &countingWriter{w: body, usage: u}
			return script(ctx, &CGIContext{Rec: rec, Usage: u, Out: cw})
		}
	default:
		content, ok, err := s.cfg.Files.Open(rec.Path)
		if err != nil {
			s.runPost(verdict, false)
			s.finish(w, rec, http.StatusInternalServerError, "document error\n", err.Error())
			return
		}
		if !ok {
			s.runPost(verdict, false)
			s.finish(w, rec, http.StatusNotFound, "not found\n", "no such document")
			return
		}
		op = func(_ context.Context, u *execctl.Usage) error {
			n, err := body.WriteString(content)
			u.AddOutput(int64(n))
			return err
		}
	}

	var check execctl.Check
	if verdict.Monitor != nil {
		check = func(snap execctl.Snapshot) gaa.Decision {
			if verdict.Monitor(snap) {
				return gaa.Yes
			}
			return gaa.No
		}
	}
	res := execctl.Run(ctx, usage, op, check, s.cfg.MonitorInterval)

	success := res.Err == nil && !res.Violated
	s.runPost(verdict, success)

	switch {
	case res.Violated:
		s.finish(w, rec, http.StatusInternalServerError, "operation aborted: resource limit exceeded\n", "mid-condition violation")
	case res.Err != nil && !errors.Is(res.Err, context.Canceled):
		s.finish(w, rec, http.StatusInternalServerError, "operation failed\n", res.Err.Error())
	default:
		s.logCLF(rec, http.StatusOK, body.Len())
		w.WriteHeader(http.StatusOK)
		if rec.Method != "HEAD" {
			_, _ = w.Write(body.Bytes())
		}
	}
}

func (s *Server) runPost(verdict Verdict, success bool) {
	if verdict.Post != nil {
		verdict.Post(success)
	}
}

// finish writes a terminal response and the access-log line.
func (s *Server) finish(w http.ResponseWriter, rec *RequestRec, code int, body, reason string) {
	_ = reason // reasons surface via guards' own audit trails
	s.logCLF(rec, code, len(body))
	w.WriteHeader(code)
	if body != "" {
		_, _ = io.WriteString(w, body)
	}
}

func (s *Server) logCLF(rec *RequestRec, code, bytes int) {
	if s.cfg.AccessLog == nil {
		return
	}
	fmt.Fprintln(s.cfg.AccessLog, FormatCLF(rec, code, bytes))
}

// countingWriter credits written bytes to the usage accounting.
type countingWriter struct {
	w     io.Writer
	usage *execctl.Usage
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.usage.AddOutput(int64(n))
	return n, err
}
