package httpd

import (
	"fmt"
	"strconv"
)

// FormatCLF renders one NCSA Common Log Format line — the log format
// Almgren et al.'s offline monitor (paper section 10, related work)
// analyzes, kept here so the substrate's logs are comparable:
//
//	host ident authuser [date] "request" status bytes
func FormatCLF(rec *RequestRec, status, bytes int) string {
	user := rec.User
	if user == "" {
		user = "-"
	}
	size := "-"
	if bytes > 0 {
		size = strconv.Itoa(bytes)
	}
	return fmt.Sprintf("%s - %s [%s] %q %d %s",
		rec.ClientIP,
		user,
		rec.Time.Format("02/Jan/2006:15:04:05 -0700"),
		rec.URI,
		status,
		size,
	)
}
