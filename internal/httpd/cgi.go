package httpd

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"gaaapi/internal/execctl"
)

// CGIContext is what a simulated CGI script sees: the request record,
// an output writer whose bytes are credited to the usage accounting,
// and the usage handle for crediting simulated CPU and memory.
type CGIContext struct {
	Rec   *RequestRec
	Usage *execctl.Usage
	Out   io.Writer
}

// Script is a simulated CGI program. It must honour ctx cancellation:
// the execution-control phase kills runaway scripts by cancelling it.
type Script func(ctx context.Context, c *CGIContext) error

// ScriptRegistry maps script names (the path component after
// /cgi-bin/) to implementations. Safe for concurrent use.
type ScriptRegistry struct {
	mu      sync.RWMutex
	scripts map[string]Script
}

// NewScriptRegistry returns an empty registry.
func NewScriptRegistry() *ScriptRegistry {
	return &ScriptRegistry{scripts: make(map[string]Script)}
}

// Register installs a script under name.
func (r *ScriptRegistry) Register(name string, s Script) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scripts[name] = s
}

// Get looks a script up.
func (r *ScriptRegistry) Get(name string) (Script, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.scripts[name]
	return s, ok
}

// Names returns the registered script names, sorted.
func (r *ScriptRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scripts))
	for n := range r.scripts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewDemoRegistry returns the scripts used by the paper's scenarios
// and the experiments:
//
//	phf      — the classic vulnerable phonebook CGI; with the exploit
//	           query it leaks a fake /etc/passwd (what the section 7.2
//	           policy must block before execution)
//	test-cgi — the information-disclosure probe target
//	search   — a legitimate script: CPU cost proportional to the query
//	spin     — a runaway script consuming CPU until aborted
//	          (mid-condition experiment E7)
//	bigout   — writes output until aborted (output quota)
func NewDemoRegistry() *ScriptRegistry {
	r := NewScriptRegistry()
	r.Register("phf", func(_ context.Context, c *CGIContext) error {
		c.Usage.AddCPU(time.Millisecond)
		if strings.Contains(c.Rec.Query, "/etc/passwd") {
			// The famous newline-injection exploit: an unprotected
			// server would leak the password file here.
			_, err := io.WriteString(c.Out, "root:x:0:0:root:/root:/bin/sh\nnobody:x:99:99::/:\n")
			return err
		}
		_, err := fmt.Fprintf(c.Out, "phf: no entries matched %q\n", c.Rec.Query)
		return err
	})
	r.Register("test-cgi", func(_ context.Context, c *CGIContext) error {
		c.Usage.AddCPU(time.Millisecond)
		_, err := fmt.Fprintf(c.Out, "CGI/1.0 test script\nQUERY_STRING = %s\nSERVER_SOFTWARE = gaaapi-httpd\n", c.Rec.Query)
		return err
	})
	r.Register("search", func(_ context.Context, c *CGIContext) error {
		// Legitimate work: cost scales with the query.
		cost := time.Duration(1+len(c.Rec.Query)/64) * time.Millisecond
		c.Usage.AddCPU(cost)
		c.Usage.AddMem(int64(1024 + 16*len(c.Rec.Query)))
		_, err := fmt.Fprintf(c.Out, "results for %q: 3 documents\n", c.Rec.Query)
		return err
	})
	r.Register("spin", func(ctx context.Context, c *CGIContext) error {
		// Runaway CPU consumer; only cancellation stops it.
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(100 * time.Microsecond):
				c.Usage.AddCPU(10 * time.Millisecond)
			}
		}
	})
	r.Register("bigout", func(ctx context.Context, c *CGIContext) error {
		chunk := strings.Repeat("x", 1024)
		for i := 0; i < 1024; i++ {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			if _, err := io.WriteString(c.Out, chunk); err != nil {
				return err
			}
			// Yield so the monitor can observe the growing output.
			if i%8 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
		return nil
	})
	return r
}
