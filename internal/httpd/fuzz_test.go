package httpd

import (
	"strings"
	"testing"
)

// FuzzParseHtaccess checks the htaccess parser never panics and that
// accepted configurations always evaluate without panicking for a
// sample of clients.
func FuzzParseHtaccess(f *testing.F) {
	f.Add(paperHtaccess)
	f.Add("Order Allow,Deny\nAllow from 10.0.0.0/8\nDeny from 10.0.0.66\n")
	f.Add("Require group staff\nAuthGroupFile /etc/htgroup\nSatisfy Any\n")
	f.Add("# empty\n")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := ParseHtaccessString(src)
		if err != nil {
			return
		}
		for _, ip := range []string{"10.0.0.66", "128.9.1.1", "not-an-ip", ""} {
			for _, user := range []string{"", "alice"} {
				got := h.Evaluate(&RequestRec{ClientIP: ip, User: user}, nil)
				switch got.Kind {
				case StatusOK, StatusForbidden, StatusAuthRequired:
				default:
					t.Fatalf("Evaluate returned %v for src %q", got.Kind, src)
				}
			}
		}
	})
}

// FuzzParseHtpasswd checks the credential parser never panics and that
// authentication never succeeds for users absent from the input.
func FuzzParseHtpasswd(f *testing.F) {
	f.Add("alice:{PLAIN}pw\nbob:{SHA256}ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad\n", "mallory", "pw")
	f.Add("x:y", "x", "y")
	f.Fuzz(func(t *testing.T, src, user, pass string) {
		h, err := ParseHtpasswd(strings.NewReader(src))
		if err != nil {
			return
		}
		if h.Authenticate(user, pass) && !strings.Contains(src, user+":") {
			t.Fatalf("authenticated unknown user %q against %q", user, src)
		}
	})
}
