package httpd

import (
	"errors"
	"io/fs"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// HtaccessSource supplies the .htaccess chain governing an object,
// outermost directory first — Apache "looks for an access control file
// called .htaccess in every directory of the path to the document"
// (paper section 4).
type HtaccessSource interface {
	For(object string) ([]*Htaccess, error)
}

// MapHtaccessSource is an in-memory source mapping directory paths
// ("", "docs", "docs/private") to htaccess configurations.
type MapHtaccessSource struct {
	mu      sync.RWMutex
	entries map[string]*Htaccess
}

// NewMapHtaccessSource returns an empty in-memory source.
func NewMapHtaccessSource() *MapHtaccessSource {
	return &MapHtaccessSource{entries: make(map[string]*Htaccess)}
}

// Set installs the htaccess for a directory ("" is the document root).
func (m *MapHtaccessSource) Set(dir string, h *Htaccess) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[normalizeDir(dir)] = h
}

// SetString parses src and installs it for dir.
func (m *MapHtaccessSource) SetString(dir, src string) error {
	h, err := ParseHtaccessString(src)
	if err != nil {
		return err
	}
	m.Set(dir, h)
	return nil
}

// For implements HtaccessSource.
func (m *MapHtaccessSource) For(object string) ([]*Htaccess, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Htaccess
	for _, dir := range objectDirs(object) {
		if h, ok := m.entries[dir]; ok {
			out = append(out, h)
		}
	}
	return out, nil
}

// Dirs returns the configured directories, sorted (diagnostics).
func (m *MapHtaccessSource) Dirs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.entries))
	for d := range m.entries {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DirHtaccessSource reads .htaccess files under a document root on
// disk, caching parses by modification stamp.
type DirHtaccessSource struct {
	root string
	name string

	mu    sync.Mutex
	cache map[string]htaccessCacheEntry
}

type htaccessCacheEntry struct {
	h     *Htaccess // nil = file absent
	stamp string
}

// NewDirHtaccessSource returns a source for files called name (e.g.
// ".htaccess") under root.
func NewDirHtaccessSource(root, name string) *DirHtaccessSource {
	return &DirHtaccessSource{root: root, name: name, cache: make(map[string]htaccessCacheEntry)}
}

// For implements HtaccessSource.
func (d *DirHtaccessSource) For(object string) ([]*Htaccess, error) {
	var out []*Htaccess
	for _, dir := range objectDirs(object) {
		file := path.Join(d.root, dir, d.name)
		h, err := d.load(file)
		if err != nil {
			return nil, err
		}
		if h != nil {
			out = append(out, h)
		}
	}
	return out, nil
}

func (d *DirHtaccessSource) load(file string) (*Htaccess, error) {
	fi, err := os.Stat(file)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	stamp := fi.ModTime().String() + "-" + strconv.FormatInt(fi.Size(), 10)
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.cache[file]; ok && c.stamp == stamp && c.h != nil {
		return c.h, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	h, err := ParseHtaccessString(string(data))
	if err != nil {
		return nil, err
	}
	d.cache[file] = htaccessCacheEntry{h: h, stamp: stamp}
	return h, nil
}

// BaselineGuard is Apache's native access control as a server guard:
// the innermost (most specific) .htaccess decides; with none present
// the guard declines and the server default applies. This models the
// paper's translation target for MAYBE answers: "HTTP_DECLINED" hands
// the decision back to the stock mechanism.
type BaselineGuard struct {
	source HtaccessSource
	loader FileLoader
}

// NewBaselineGuard builds the guard; a nil loader uses os.ReadFile.
func NewBaselineGuard(source HtaccessSource, loader FileLoader) *BaselineGuard {
	if loader == nil {
		loader = os.ReadFile
	}
	return &BaselineGuard{source: source, loader: loader}
}

// Check implements Guard. Divergence from Apache noted: Apache merges
// directives along the directory chain; this substrate lets the most
// specific file decide entirely, which is indistinguishable for the
// paper's workloads (one file per protected subtree).
func (b *BaselineGuard) Check(rec *RequestRec) Verdict {
	chain, err := b.source.For(rec.Object())
	if err != nil {
		return Verdict{Status: Forbidden("htaccess error: " + err.Error())}
	}
	if len(chain) == 0 {
		return Verdict{Status: Declined("no htaccess")}
	}
	h := chain[len(chain)-1]
	return Verdict{Status: h.Evaluate(rec, b.loader)}
}

// objectDirs mirrors gaa.objectDirs: the directory chain for a path.
func objectDirs(object string) []string {
	object = strings.Trim(path.Clean("/"+object), "/")
	dirs := []string{""}
	if object == "" || object == "." {
		return dirs
	}
	parts := strings.Split(object, "/")
	for i := 1; i < len(parts); i++ {
		dirs = append(dirs, strings.Join(parts[:i], "/"))
	}
	return dirs
}

func normalizeDir(dir string) string {
	return strings.Trim(path.Clean("/"+dir), "/")
}
