package httpd

import (
	"errors"
	"io/fs"
	"os"
	"path"
	"strings"
)

// FileRoot resolves URL paths to static document content. The server
// falls back to its in-memory DocRoot map when no FileRoot is
// configured.
type FileRoot interface {
	// Open returns the content for the cleaned URL path, or ok=false
	// when no document exists there.
	Open(urlPath string) (content string, ok bool, err error)
}

// MapRoot adapts the in-memory path→content map. Paths ending in "/"
// resolve to their index.html.
type MapRoot map[string]string

var _ FileRoot = MapRoot(nil)

// Open implements FileRoot.
func (m MapRoot) Open(urlPath string) (string, bool, error) {
	p := cleanURLPath(urlPath)
	if strings.HasSuffix(urlPath, "/") {
		p = path.Join(p, "index.html")
	}
	content, ok := m[p]
	if !ok && p == "/" {
		content, ok = m["/index.html"]
	}
	return content, ok, nil
}

// OSRoot serves documents from a directory on disk, confined to that
// directory (the URL path is cleaned before joining, so ".."
// traversal cannot escape). Directory requests resolve to index.html.
type OSRoot struct {
	dir string
}

var _ FileRoot = (*OSRoot)(nil)

// NewOSRoot returns a disk-backed root.
func NewOSRoot(dir string) *OSRoot {
	return &OSRoot{dir: dir}
}

// Open implements FileRoot.
func (r *OSRoot) Open(urlPath string) (string, bool, error) {
	rel := strings.TrimPrefix(cleanURLPath(urlPath), "/")
	full := path.Join(r.dir, rel)
	fi, err := os.Stat(full)
	if errors.Is(err, fs.ErrNotExist) {
		return "", false, nil
	}
	if err != nil {
		return "", false, err
	}
	if fi.IsDir() {
		full = path.Join(full, "index.html")
		if _, err := os.Stat(full); errors.Is(err, fs.ErrNotExist) {
			return "", false, nil
		} else if err != nil {
			return "", false, err
		}
	}
	data, err := os.ReadFile(full)
	if err != nil {
		return "", false, err
	}
	return string(data), true, nil
}

// cleanURLPath normalizes a URL path, forcing it absolute and
// eliminating "." / ".." segments.
func cleanURLPath(p string) string {
	return path.Clean("/" + p)
}
