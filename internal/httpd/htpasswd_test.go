package httpd

import (
	"strings"
	"testing"
)

func TestHtpasswdSchemes(t *testing.T) {
	h, err := ParseHtpasswd(strings.NewReader(`
# staff credentials
alice:{SHA256}ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad
bob:{PLAIN}bobpass
carol:carolpass
`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// alice's hash is sha256("abc") — wrong password shouldn't pass.
	if h.Authenticate("alice", "wrong") {
		t.Error("wrong SHA256 password accepted")
	}
	if !h.Authenticate("alice", "abc") {
		t.Error("correct SHA256 password rejected")
	}
	if !h.Authenticate("bob", "bobpass") || h.Authenticate("bob", "nope") {
		t.Error("PLAIN scheme broken")
	}
	if !h.Authenticate("carol", "carolpass") || h.Authenticate("carol", "x") {
		t.Error("bare scheme broken")
	}
	if h.Authenticate("mallory", "anything") {
		t.Error("unknown user accepted")
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d, want 3", h.Len())
	}
}

func TestHtpasswdSetPassword(t *testing.T) {
	h := NewHtpasswd()
	h.SetPassword("dave", "secret")
	if !h.Authenticate("dave", "secret") {
		t.Error("SetPassword round trip failed")
	}
	if h.Authenticate("dave", "Secret") {
		t.Error("case-modified password accepted")
	}
}

func TestHtpasswdParseErrors(t *testing.T) {
	if _, err := ParseHtpasswd(strings.NewReader("not-a-pair\n")); err == nil {
		t.Error("want error for line without colon")
	}
	if _, err := ParseHtpasswd(strings.NewReader(":orphanhash\n")); err == nil {
		t.Error("want error for empty user")
	}
}
