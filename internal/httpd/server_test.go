package httpd

import (
	"encoding/base64"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/execctl"
	"gaaapi/internal/netblock"
)

func testServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	auth := NewHtpasswd()
	auth.SetPassword("alice", "wonderland")
	cfg := Config{
		DocRoot: map[string]string{
			"/index.html":      "<html>welcome</html>",
			"/docs/guide.html": "guide",
		},
		Scripts: NewDemoRegistry(),
		Auth:    auth,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return NewServer(cfg)
}

func doRequest(t *testing.T, s *Server, method, target string, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	req.RemoteAddr = "10.0.0.1:34567"
	for k, v := range header {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func basicHeader(user, pass string) map[string]string {
	tok := base64.StdEncoding.EncodeToString([]byte(user + ":" + pass))
	return map[string]string{"Authorization": "Basic " + tok}
}

func TestServeStatic(t *testing.T) {
	s := testServer(t, nil)
	w := doRequest(t, s, "GET", "/index.html", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "welcome") {
		t.Errorf("GET /index.html = %d %q", w.Code, w.Body.String())
	}
	if w404 := doRequest(t, s, "GET", "/missing.html", nil); w404.Code != http.StatusNotFound {
		t.Errorf("missing document = %d, want 404", w404.Code)
	}
}

func TestServeCGI(t *testing.T) {
	s := testServer(t, nil)
	w := doRequest(t, s, "GET", "/cgi-bin/search?q=gaa", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "results for") {
		t.Errorf("search = %d %q", w.Code, w.Body.String())
	}
	if w404 := doRequest(t, s, "GET", "/cgi-bin/nonexistent", nil); w404.Code != http.StatusNotFound {
		t.Errorf("missing script = %d, want 404", w404.Code)
	}
}

// Without a protecting guard the vulnerable phf script leaks the fake
// password file — the baseline the paper's integration fixes.
func TestUnprotectedPhfLeaks(t *testing.T) {
	s := testServer(t, nil)
	w := doRequest(t, s, "GET", "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "root:x:0:0") {
		t.Errorf("phf exploit = %d %q (substrate should be vulnerable without guards)", w.Code, w.Body.String())
	}
}

func TestGuardOrderingFirstDecides(t *testing.T) {
	forbid := GuardFunc(func(*RequestRec) Verdict { return Verdict{Status: Forbidden("g1")} })
	allow := GuardFunc(func(*RequestRec) Verdict { return Verdict{Status: OK("g2")} })
	s := testServer(t, func(c *Config) { c.Guards = []Guard{forbid, allow} })
	if w := doRequest(t, s, "GET", "/index.html", nil); w.Code != http.StatusForbidden {
		t.Errorf("code = %d, want 403 (first guard wins)", w.Code)
	}
}

func TestGuardDeclinedFallsThrough(t *testing.T) {
	decline := GuardFunc(func(*RequestRec) Verdict { return Verdict{Status: Declined("no opinion")} })
	s := testServer(t, func(c *Config) { c.Guards = []Guard{decline} })
	if w := doRequest(t, s, "GET", "/index.html", nil); w.Code != http.StatusOK {
		t.Errorf("code = %d, want 200 (default allow)", w.Code)
	}
}

func TestGuardAuthRequired(t *testing.T) {
	guard := GuardFunc(func(rec *RequestRec) Verdict {
		if rec.User == "" {
			return Verdict{Status: AuthRequired(`Basic realm="lockdown"`, "auth needed")}
		}
		return Verdict{Status: OK("authenticated")}
	})
	s := testServer(t, func(c *Config) { c.Guards = []Guard{guard} })

	w := doRequest(t, s, "GET", "/index.html", nil)
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous = %d, want 401", w.Code)
	}
	if got := w.Header().Get("WWW-Authenticate"); !strings.Contains(got, "lockdown") {
		t.Errorf("WWW-Authenticate = %q", got)
	}
	// Valid credentials satisfy the guard.
	w2 := doRequest(t, s, "GET", "/index.html", basicHeader("alice", "wonderland"))
	if w2.Code != http.StatusOK {
		t.Errorf("authenticated = %d, want 200", w2.Code)
	}
	// Wrong password stays anonymous.
	w3 := doRequest(t, s, "GET", "/index.html", basicHeader("alice", "queen"))
	if w3.Code != http.StatusUnauthorized {
		t.Errorf("bad password = %d, want 401", w3.Code)
	}
}

func TestGuardRedirect(t *testing.T) {
	guard := GuardFunc(func(*RequestRec) Verdict {
		return Verdict{Status: Moved("http://replica.example.org/index.html", "load balancing")}
	})
	s := testServer(t, func(c *Config) { c.Guards = []Guard{guard} })
	w := doRequest(t, s, "GET", "/index.html", nil)
	if w.Code != http.StatusFound {
		t.Fatalf("code = %d, want 302", w.Code)
	}
	if got := w.Header().Get("Location"); got != "http://replica.example.org/index.html" {
		t.Errorf("Location = %q", got)
	}
}

func TestFirewallBlocksBeforeGuards(t *testing.T) {
	blocks := netblock.NewSet()
	blocks.Block("10.0.0.1", 0)
	guardRan := false
	spy := GuardFunc(func(*RequestRec) Verdict {
		guardRan = true
		return Verdict{Status: OK("")}
	})
	s := testServer(t, func(c *Config) {
		c.Blocks = blocks
		c.Guards = []Guard{spy}
	})
	w := doRequest(t, s, "GET", "/index.html", nil)
	if w.Code != http.StatusForbidden {
		t.Errorf("blocked client = %d, want 403", w.Code)
	}
	if guardRan {
		t.Error("guards must not run for firewalled clients")
	}
}

func TestMidConditionAbortsRunawayScript(t *testing.T) {
	guard := GuardFunc(func(rec *RequestRec) Verdict {
		return Verdict{
			Status: OK("granted with quota"),
			Monitor: func(s execctl.Snapshot) bool {
				return s.CPUMillis <= 100
			},
		}
	})
	s := testServer(t, func(c *Config) { c.Guards = []Guard{guard} })
	w := doRequest(t, s, "GET", "/cgi-bin/spin", nil)
	if w.Code != http.StatusInternalServerError {
		t.Errorf("runaway script = %d, want 500 (aborted)", w.Code)
	}
	if !strings.Contains(w.Body.String(), "aborted") {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestMidConditionAllowsBoundedScript(t *testing.T) {
	guard := GuardFunc(func(*RequestRec) Verdict {
		return Verdict{
			Status:  OK(""),
			Monitor: func(s execctl.Snapshot) bool { return s.CPUMillis <= 1000 },
		}
	})
	s := testServer(t, func(c *Config) { c.Guards = []Guard{guard} })
	w := doRequest(t, s, "GET", "/cgi-bin/search?q=ok", nil)
	if w.Code != http.StatusOK {
		t.Errorf("bounded script = %d, want 200", w.Code)
	}
}

func TestPostHookSeesOperationStatus(t *testing.T) {
	var statuses []bool
	guard := GuardFunc(func(*RequestRec) Verdict {
		return Verdict{
			Status: OK(""),
			Post:   func(ok bool) { statuses = append(statuses, ok) },
		}
	})
	s := testServer(t, func(c *Config) { c.Guards = []Guard{guard} })
	doRequest(t, s, "GET", "/index.html", nil)   // success
	doRequest(t, s, "GET", "/missing.html", nil) // 404: operation failed
	if len(statuses) != 2 || statuses[0] != true || statuses[1] != false {
		t.Errorf("post statuses = %v, want [true false]", statuses)
	}
}

func TestAccessLogCLF(t *testing.T) {
	var log strings.Builder
	s := testServer(t, func(c *Config) {
		c.AccessLog = &log
		c.Clock = func() time.Time { return time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC) }
	})
	doRequest(t, s, "GET", "/index.html", basicHeader("alice", "wonderland"))
	line := strings.TrimSpace(log.String())
	if !strings.HasPrefix(line, "10.0.0.1 - alice [19/May/2003:12:00:00 +0000]") {
		t.Errorf("CLF line = %q", line)
	}
	if !strings.Contains(line, `"GET /index.html" 200`) {
		t.Errorf("CLF line = %q", line)
	}
}

func TestBaselineGuardWithServer(t *testing.T) {
	src := NewMapHtaccessSource()
	if err := src.SetString("docs", "Require valid-user\n"); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, func(c *Config) {
		c.Guards = []Guard{NewBaselineGuard(src, nil)}
	})
	// Unprotected root document.
	if w := doRequest(t, s, "GET", "/index.html", nil); w.Code != http.StatusOK {
		t.Errorf("/index.html = %d, want 200", w.Code)
	}
	// Protected subtree.
	if w := doRequest(t, s, "GET", "/docs/guide.html", nil); w.Code != http.StatusUnauthorized {
		t.Errorf("anonymous /docs = %d, want 401", w.Code)
	}
	if w := doRequest(t, s, "GET", "/docs/guide.html", basicHeader("alice", "wonderland")); w.Code != http.StatusOK {
		t.Errorf("authenticated /docs = %d, want 200", w.Code)
	}
}

func TestRequestRecExtraction(t *testing.T) {
	req := httptest.NewRequest("GET", "/cgi-bin/phf?Qalias=x", strings.NewReader("body12"))
	req.RemoteAddr = "192.0.2.7:999"
	req.Header.Set("X-One", "1")
	rec := NewRequestRec(req, nil, time.Now())
	if rec.ClientIP != "192.0.2.7" {
		t.Errorf("ClientIP = %q", rec.ClientIP)
	}
	if rec.Path != "/cgi-bin/phf" || rec.Query != "Qalias=x" {
		t.Errorf("path/query = %q %q", rec.Path, rec.Query)
	}
	if rec.URI != "GET /cgi-bin/phf?Qalias=x" {
		t.Errorf("URI = %q", rec.URI)
	}
	if rec.InputLength != len("Qalias=x")+6 {
		t.Errorf("InputLength = %d", rec.InputLength)
	}
	if rec.Object() != "/cgi-bin/phf" {
		t.Errorf("Object = %q", rec.Object())
	}
}

func TestRequestRecAuthStates(t *testing.T) {
	auth := NewHtpasswd()
	auth.SetPassword("alice", "pw")
	mk := func(header string) *RequestRec {
		req := httptest.NewRequest("GET", "/", nil)
		if header != "" {
			req.Header.Set("Authorization", header)
		}
		return NewRequestRec(req, auth, time.Now())
	}
	anon := mk("")
	if anon.AuthAttempted || anon.User != "" {
		t.Errorf("anonymous rec = %+v", anon)
	}
	good := mk("Basic " + base64.StdEncoding.EncodeToString([]byte("alice:pw")))
	if good.User != "alice" || good.AuthFailed {
		t.Errorf("valid creds rec = %+v", good)
	}
	bad := mk("Basic " + base64.StdEncoding.EncodeToString([]byte("alice:nope")))
	if bad.User != "" || !bad.AuthFailed || !bad.AuthAttempted {
		t.Errorf("invalid creds rec = %+v", bad)
	}
	malformed := mk("Basic !!!notbase64!!!")
	if !malformed.AuthAttempted || !malformed.AuthFailed {
		t.Errorf("malformed creds rec = %+v", malformed)
	}
}

func TestScriptRegistryNames(t *testing.T) {
	r := NewDemoRegistry()
	names := r.Names()
	want := []string{"bigout", "phf", "search", "spin", "test-cgi"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestStatusKindStrings(t *testing.T) {
	for k, want := range map[StatusKind]string{
		StatusOK: "HTTP_OK", StatusDeclined: "HTTP_DECLINED",
		StatusForbidden: "HTTP_FORBIDDEN", StatusAuthRequired: "HTTP_AUTHREQUIRED",
		StatusMoved: "HTTP_MOVED",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if StatusKind(42).String() != "StatusKind(42)" {
		t.Error("unknown kind String mismatch")
	}
}

// TestDemoScriptsOutputs pins the demo scripts' observable behaviour.
func TestDemoScriptsOutputs(t *testing.T) {
	s := testServer(t, nil)
	// phf without the exploit query: benign output.
	w := doRequest(t, s, "GET", "/cgi-bin/phf?Qalias=nobody", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "no entries matched") {
		t.Errorf("phf benign = %d %q", w.Code, w.Body.String())
	}
	// test-cgi echoes the query string.
	w = doRequest(t, s, "GET", "/cgi-bin/test-cgi?probe", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "QUERY_STRING = probe") {
		t.Errorf("test-cgi = %d %q", w.Code, w.Body.String())
	}
	// bigout writes a full MiB when unconstrained.
	w = doRequest(t, s, "GET", "/cgi-bin/bigout", nil)
	if w.Code != http.StatusOK || w.Body.Len() != 1<<20 {
		t.Errorf("bigout = %d, %d bytes; want 200, 1 MiB", w.Code, w.Body.Len())
	}
}

func TestAuthRequiredDefaultChallenge(t *testing.T) {
	st := AuthRequired("", "why")
	if !strings.Contains(st.Challenge, "restricted") {
		t.Errorf("default challenge = %q", st.Challenge)
	}
}
