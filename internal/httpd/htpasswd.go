package httpd

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Htpasswd is a user/password table in Apache htpasswd spirit:
//
//	alice:{SHA256}2bd806c9...
//	bob:{PLAIN}bobpass
//	carol:carolpass          (bare values are treated as plain text)
//
// Apache's original crypt(3)/MD5 schemes are out of scope (DESIGN.md
// section 5): the mechanism under test is policy evaluation, not
// password storage.
type Htpasswd struct {
	mu    sync.RWMutex
	users map[string]string // user -> scheme-prefixed hash
}

// NewHtpasswd returns an empty table.
func NewHtpasswd() *Htpasswd {
	return &Htpasswd{users: make(map[string]string)}
}

// ParseHtpasswd reads "user:hash" lines ('#' comments allowed).
func ParseHtpasswd(r io.Reader) (*Htpasswd, error) {
	h := NewHtpasswd()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		user, hash, ok := strings.Cut(text, ":")
		if !ok || user == "" {
			return nil, fmt.Errorf("htpasswd line %d: want user:hash", line)
		}
		h.Set(user, hash)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

// Set stores a scheme-prefixed hash for user.
func (h *Htpasswd) Set(user, hash string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.users[user] = hash
}

// SetPassword stores password for user, hashed with SHA-256.
func (h *Htpasswd) SetPassword(user, password string) {
	h.Set(user, "{SHA256}"+sha256Hex(password))
}

// Authenticate implements Authenticator.
func (h *Htpasswd) Authenticate(user, password string) bool {
	h.mu.RLock()
	stored, ok := h.users[user]
	h.mu.RUnlock()
	if !ok {
		return false
	}
	switch {
	case strings.HasPrefix(stored, "{SHA256}"):
		want := strings.TrimPrefix(stored, "{SHA256}")
		return constEq(sha256Hex(password), strings.ToLower(want))
	case strings.HasPrefix(stored, "{PLAIN}"):
		return constEq(password, strings.TrimPrefix(stored, "{PLAIN}"))
	default:
		return constEq(password, stored)
	}
}

// Len returns the number of users.
func (h *Htpasswd) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.users)
}

func sha256Hex(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func constEq(a, b string) bool {
	return subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}
