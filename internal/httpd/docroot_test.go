package httpd

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMapRoot(t *testing.T) {
	m := MapRoot{
		"/index.html":      "home",
		"/docs/index.html": "docs home",
		"/docs/a.html":     "a",
	}
	tests := []struct {
		path   string
		want   string
		wantOK bool
	}{
		{"/index.html", "home", true},
		{"/", "home", true},
		{"/docs/", "docs home", true},
		{"/docs/a.html", "a", true},
		{"/missing", "", false},
		{"/../index.html", "home", true}, // cleaned, cannot escape
	}
	for _, tt := range tests {
		got, ok, err := m.Open(tt.path)
		if err != nil || got != tt.want || ok != tt.wantOK {
			t.Errorf("Open(%q) = %q, %v, %v; want %q, %v", tt.path, got, ok, err, tt.want, tt.wantOK)
		}
	}
}

func mkdirAll(t *testing.T, path string) {
	t.Helper()
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestOSRoot(t *testing.T) {
	dir := t.TempDir()
	mkdirAll(t, filepath.Join(dir, "docs"))
	write := func(rel, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, rel), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("index.html", "home")
	write("docs/index.html", "docs home")
	write("docs/a.html", "a")
	// A file OUTSIDE the root that traversal must not reach.
	outside := filepath.Join(filepath.Dir(dir), "secret.txt")
	if err := os.WriteFile(outside, []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(outside)

	r := NewOSRoot(dir)
	tests := []struct {
		path   string
		want   string
		wantOK bool
	}{
		{"/index.html", "home", true},
		{"/", "home", true},
		{"/docs", "docs home", true}, // directory resolves to its index
		{"/docs/a.html", "a", true},
		{"/missing.html", "", false},
		{"/../secret.txt", "", false}, // traversal confined
		{"/docs/../../secret.txt", "", false},
	}
	for _, tt := range tests {
		got, ok, err := r.Open(tt.path)
		if err != nil {
			t.Errorf("Open(%q) error: %v", tt.path, err)
			continue
		}
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("Open(%q) = %q, %v; want %q, %v", tt.path, got, ok, tt.want, tt.wantOK)
		}
	}
	// Directory without an index: not found.
	mkdirAll(t, filepath.Join(dir, "empty"))
	if _, ok, err := r.Open("/empty"); ok || err != nil {
		t.Errorf("dir without index = %v, %v; want false, nil", ok, err)
	}
}

func TestServerWithOSRoot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "page.html"), []byte("from disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewServer(Config{Files: NewOSRoot(dir)})
	w := doRequest(t, s, "GET", "/page.html", nil)
	if w.Code != http.StatusOK || w.Body.String() != "from disk" {
		t.Errorf("disk-backed serve = %d %q", w.Code, w.Body.String())
	}
}

func TestHeadRequestOmitsBody(t *testing.T) {
	s := testServer(t, nil)
	w := doRequest(t, s, "HEAD", "/index.html", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("HEAD = %d", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Errorf("HEAD body = %q, want empty", w.Body.String())
	}
	// The access log still records the would-be byte count.
	var log strings.Builder
	s2 := testServer(t, func(c *Config) { c.AccessLog = &log })
	doRequest(t, s2, "HEAD", "/index.html", nil)
	if !strings.Contains(log.String(), `"HEAD /index.html" 200`) {
		t.Errorf("log = %q", log.String())
	}
}

func TestCleanURLPath(t *testing.T) {
	tests := []struct{ in, want string }{
		{"/a/b", "/a/b"},
		{"a/b", "/a/b"},
		{"/a/../b", "/b"},
		{"/../../x", "/x"},
		{"", "/"},
		{"//a//b/", "/a/b"},
	}
	for _, tt := range tests {
		if got := cleanURLPath(tt.in); got != tt.want {
			t.Errorf("cleanURLPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
