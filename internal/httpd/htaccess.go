package httpd

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/groups"
)

// Htaccess models the directives of the paper's section 4 sample:
//
//	Order Deny,Allow
//	Deny from All
//	Allow from 128.9
//	AuthType Basic
//	AuthName "ISI staff"
//	AuthUserFile /usr/local/apache2/.htpasswd-isi-staff
//	AuthGroupFile /usr/local/apache2/.htgroup
//	Require valid-user
//	Satisfy All
//
// Host patterns accept "All", IP prefixes ("128.9" matches
// 128.9.x.y), '*' globs and CIDR ranges.
//
// Substrate simplification: user credentials are verified against the
// server-wide credential store when the request record is built;
// AuthUserFile is parsed (and loadable via Server.LoadHtpasswd) but a
// per-directory password namespace is not maintained. Group membership
// for "Require group" is read from AuthGroupFile through the
// configured file loader.
type Htaccess struct {
	// Order is "deny,allow" (default) or "allow,deny".
	Order string
	Deny  []string
	Allow []string

	AuthType      string
	AuthName      string
	AuthUserFile  string
	AuthGroupFile string

	// Require is empty (no user requirement), ["valid-user"], or
	// ("user", names...) / ("group", names...).
	Require []string

	// Satisfy is "all" (default) or "any".
	Satisfy string
}

// ParseHtaccess reads the directive subset above; unknown directives
// are an error so misconfigured policies fail loudly.
func ParseHtaccess(r io.Reader) (*Htaccess, error) {
	h := &Htaccess{Order: "deny,allow", Satisfy: "all"}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		directive := strings.ToLower(fields[0])
		args := fields[1:]
		switch directive {
		case "order":
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: Order wants one argument", line)
			}
			v := strings.ToLower(strings.ReplaceAll(args[0], " ", ""))
			if v != "deny,allow" && v != "allow,deny" {
				return nil, fmt.Errorf("line %d: bad Order %q", line, args[0])
			}
			h.Order = v
		case "deny":
			pats, err := fromList(args, line)
			if err != nil {
				return nil, err
			}
			h.Deny = append(h.Deny, pats...)
		case "allow":
			pats, err := fromList(args, line)
			if err != nil {
				return nil, err
			}
			h.Allow = append(h.Allow, pats...)
		case "authtype":
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: AuthType wants one argument", line)
			}
			h.AuthType = args[0]
		case "authname":
			h.AuthName = strings.Trim(strings.Join(args, " "), `"`)
		case "authuserfile":
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: AuthUserFile wants one argument", line)
			}
			h.AuthUserFile = args[0]
		case "authgroupfile":
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: AuthGroupFile wants one argument", line)
			}
			h.AuthGroupFile = args[0]
		case "require":
			if len(args) == 0 {
				return nil, fmt.Errorf("line %d: Require wants arguments", line)
			}
			kind := strings.ToLower(args[0])
			switch kind {
			case "valid-user":
				h.Require = []string{"valid-user"}
			case "user", "group":
				if len(args) < 2 {
					return nil, fmt.Errorf("line %d: Require %s wants names", line, kind)
				}
				h.Require = append([]string{kind}, args[1:]...)
			default:
				return nil, fmt.Errorf("line %d: unknown Require kind %q", line, args[0])
			}
		case "satisfy":
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: Satisfy wants one argument", line)
			}
			v := strings.ToLower(args[0])
			if v != "all" && v != "any" {
				return nil, fmt.Errorf("line %d: bad Satisfy %q", line, args[0])
			}
			h.Satisfy = v
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

// ParseHtaccessString is ParseHtaccess over a string.
func ParseHtaccessString(s string) (*Htaccess, error) {
	return ParseHtaccess(strings.NewReader(s))
}

// fromList parses "from a b c" argument lists.
func fromList(args []string, line int) ([]string, error) {
	if len(args) < 2 || !strings.EqualFold(args[0], "from") {
		return nil, fmt.Errorf("line %d: want \"from <hosts...>\"", line)
	}
	return args[1:], nil
}

// FileLoader reads referenced side files (AuthGroupFile). The default
// is os.ReadFile; tests substitute a map.
type FileLoader func(path string) ([]byte, error)

// Evaluate applies the htaccess rules to the request: the host-based
// constraint (Order/Deny/Allow) and the user constraint (Require),
// combined per Satisfy. loader resolves AuthGroupFile when a group
// requirement exists; a nil loader fails group requirements closed.
func (h *Htaccess) Evaluate(rec *RequestRec, loader FileLoader) AccessStatus {
	hostOK := h.hostAllowed(rec.ClientIP)
	needUser := len(h.Require) > 0
	userOK := false
	if needUser {
		userOK = h.userSatisfied(rec, loader)
	}
	challenge := fmt.Sprintf("Basic realm=%q", h.realm())

	if !needUser {
		if hostOK {
			return OK("host allowed")
		}
		return Forbidden("host denied by htaccess")
	}
	if h.Satisfy == "any" {
		// Either constraint suffices (paper section 5: "Satisfy Any
		// means that the request will be granted if either of the two
		// constraints is met").
		if hostOK {
			return OK("host allowed (Satisfy Any)")
		}
		if userOK {
			return OK("user authorized (Satisfy Any)")
		}
		return AuthRequired(challenge, "neither host nor user constraint met")
	}
	// Satisfy All: both must hold.
	if !hostOK {
		return Forbidden("host denied by htaccess")
	}
	if !userOK {
		return AuthRequired(challenge, "user authentication required")
	}
	return OK("host and user constraints met")
}

func (h *Htaccess) realm() string {
	if h.AuthName != "" {
		return h.AuthName
	}
	return "restricted"
}

// hostAllowed applies Order/Deny/Allow with Apache's semantics:
// Deny,Allow evaluates Deny first, Allow overrides, default allow;
// Allow,Deny evaluates Allow first, Deny overrides, default deny.
func (h *Htaccess) hostAllowed(ip string) bool {
	denied := matchHostList(h.Deny, ip)
	allowed := matchHostList(h.Allow, ip)
	if h.Order == "allow,deny" {
		return allowed && !denied
	}
	// deny,allow
	if denied && !allowed {
		return false
	}
	return true
}

// userSatisfied checks the Require directive against the
// already-authenticated user.
func (h *Htaccess) userSatisfied(rec *RequestRec, loader FileLoader) bool {
	if rec.User == "" {
		return false
	}
	switch h.Require[0] {
	case "valid-user":
		return true
	case "user":
		for _, u := range h.Require[1:] {
			if u == rec.User {
				return true
			}
		}
		return false
	case "group":
		if h.AuthGroupFile == "" || loader == nil {
			return false
		}
		data, err := loader(h.AuthGroupFile)
		if err != nil {
			return false
		}
		gs := groups.NewStore()
		if err := gs.Load(strings.NewReader(string(data))); err != nil {
			return false
		}
		for _, g := range h.Require[1:] {
			if gs.Contains(g, rec.User) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// matchHostList reports whether ip matches any pattern: "All", CIDR,
// '*' glob or prefix ("128.9" matches "128.9.x.y").
func matchHostList(patterns []string, ip string) bool {
	parsed := net.ParseIP(ip)
	for _, p := range patterns {
		switch {
		case strings.EqualFold(p, "all"):
			return true
		case strings.Contains(p, "/"):
			if _, ipnet, err := net.ParseCIDR(p); err == nil && parsed != nil && ipnet.Contains(parsed) {
				return true
			}
		case strings.Contains(p, "*"):
			if eacl.Glob(p, ip) {
				return true
			}
		default:
			if ip == p || strings.HasPrefix(ip, strings.TrimSuffix(p, ".")+".") {
				return true
			}
		}
	}
	return false
}
