// Package scenario is the attack-campaign factory: a declarative DSL
// for named, phased adversarial-traffic campaigns with turn-by-turn
// checkpoints, plus a driver that runs them against an in-process
// gaahttp stack or a live gaa-httpd URL. Campaigns are fully seeded —
// the same seed produces the same request stream, the same decisions
// and a byte-identical JSON report — and every campaign doubles as a
// load test through internal/experiments. The sibling package
// scenario/replay captures a campaign's HTTP exchanges so CI replays
// them deterministically with zero live traffic.
package scenario

import (
	"time"

	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/workload"
)

// StackSpec is the deployment a campaign runs against when driven
// in-process: the policy pair plus the site content and accounts the
// traffic generators assume.
type StackSpec struct {
	SystemPolicy  string
	LocalPolicies map[string]string
	DocRoot       map[string]string
	Users         map[string]string
	// RuntimeValues seeds '@name' policy values.
	RuntimeValues map[string]string
	// Adaptive enables the self-learning per-source scorer. The driver
	// forces synchronous scoring so campaign runs stay deterministic.
	Adaptive *adaptive.Config
}

// TrafficFunc generates one phase's request stream from the phase
// seed. It must be deterministic in seed.
type TrafficFunc func(seed int64) []workload.Request

// Phase is one stage of a campaign: optional simulated-time advance,
// a seeded traffic mix, and a checkpoint asserted once the traffic
// has drained.
type Phase struct {
	// Name identifies the phase in reports and traces.
	Name string
	// Comment is a one-line description for reports and -list output.
	Comment string
	// Advance moves the campaign clock forward before the phase runs
	// (block expiries, sliding windows). Zero advances nothing.
	Advance time.Duration
	// Gap is the default simulated pause between consecutive requests;
	// a request's own Delay overrides it. Zero uses the driver default.
	Gap time.Duration
	// Traffic generates the phase's request stream.
	Traffic TrafficFunc
	// Checkpoint is asserted after the phase's traffic has been served.
	Checkpoint Checkpoint
}

// Checkpoint is the declarative turn-by-turn assertion set: expected
// decision counts per traffic class, threat-level trajectory, netblock
// and blacklist state, notification floor, and decision accounting.
// Zero-valued fields assert nothing.
type Checkpoint struct {
	// Threat is the exact threat level expected after the phase
	// ("low", "medium", "high"; "" skips the check).
	Threat string `json:"threat,omitempty"`
	// Blocked lists sources that must be firewall-blocked.
	Blocked []string `json:"blocked,omitempty"`
	// NotBlocked lists sources that must NOT be firewall-blocked — the
	// signature assertion of low-and-slow campaigns.
	NotBlocked []string `json:"not_blocked,omitempty"`
	// Blacklisted lists members required in the BadGuys group.
	Blacklisted []string `json:"blacklisted,omitempty"`
	// NotBlacklisted lists members that must NOT be in BadGuys.
	NotBlacklisted []string `json:"not_blacklisted,omitempty"`
	// MailboxAtLeast is the minimum cumulative notification count.
	MailboxAtLeast int `json:"mailbox_at_least,omitempty"`
	// TransitionsAtMost caps the cumulative threat-level transition
	// count — the anti-flapping assertion. Zero asserts nothing.
	TransitionsAtMost int `json:"transitions_at_most,omitempty"`
	// Converged requires the target's replication mesh to be fully
	// acknowledged (within the driver's convergence SLO) before the
	// state checks run. Skipped on targets that cannot report it.
	Converged bool `json:"converged,omitempty"`
	// Classes are per-traffic-class status expectations over this
	// phase's exchanges.
	Classes []ClassExpect `json:"classes,omitempty"`
}

// ClassExpect asserts how many of a phase's exchanges of one traffic
// class ended with one HTTP status. Class "" means unlabeled
// (legitimate) traffic.
type ClassExpect struct {
	// Class is the workload attack label ("" for legit traffic).
	Class string `json:"class"`
	// Status is the expected HTTP status code.
	Status int `json:"status"`
	// Min is the minimum number of (Class, Status) exchanges.
	Min int `json:"min,omitempty"`
	// All requires EVERY exchange of Class to carry Status — the
	// zero-false-positive form.
	All bool `json:"all,omitempty"`
}

// Campaign is a named attack scenario: the deployment it runs against
// and its ordered phases.
type Campaign struct {
	// Name is the kebab-case campaign id (-campaign flag).
	Name string
	// Title is the display name.
	Title string
	// Description says what the campaign exercises and what the
	// expected trajectory is.
	Description string
	// Stack is the in-process deployment spec.
	Stack StackSpec
	// Phases run in order against one stack instance.
	Phases []Phase
}

// classKey normalizes a workload attack label for report maps.
func classKey(attack string) string {
	if attack == "" {
		return "legit"
	}
	return attack
}
