package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"time"
)

// DefaultSeed is the campaign seed when none is given — the paper's
// year, like the rest of the experiment harness.
const DefaultSeed = 2003

// DefaultGap is the simulated pause between consecutive requests when
// neither the phase nor the request specifies one. It is small enough
// that bursts trip rate windows and large enough that sliding-window
// counters see time move.
const DefaultGap = 10 * time.Millisecond

// Options configures one campaign run.
type Options struct {
	// Seed drives every phase's traffic generator. Zero means
	// DefaultSeed.
	Seed int64
	// Timing collects wall-clock per-phase latency into
	// Report.Timings (excluded from the canonical JSON so reports
	// stay byte-deterministic). The bench harness sets it.
	Timing bool
	// Throttle inserts a real pause after every request. Cluster
	// campaigns set a couple of milliseconds so the replication
	// pushers (which run on real time) can drain between requests.
	Throttle time.Duration
	// ConvergeSLO bounds how long a Converged checkpoint may wait for
	// the replication mesh to catch up (default 5s). Exceeding it
	// fails the check — the replication SLO as a first-class
	// assertion.
	ConvergeSLO time.Duration
}

// CheckResult is one checkpoint assertion's outcome.
type CheckResult struct {
	Name    string `json:"name"`
	Want    string `json:"want"`
	Got     string `json:"got"`
	Passed  bool   `json:"passed"`
	Skipped bool   `json:"skipped,omitempty"`
}

// PhaseReport is one phase's outcome: traffic accounting, the state
// observed at the checkpoint, and every assertion's result.
type PhaseReport struct {
	Name     string `json:"name"`
	Comment  string `json:"comment,omitempty"`
	Requests int    `json:"requests"`
	// Statuses counts exchanges by HTTP status ("200" -> 41).
	Statuses map[string]int `json:"statuses"`
	// Classes counts exchanges by traffic class then status.
	Classes map[string]map[string]int `json:"classes"`
	// Firewalled counts requests dropped by the netblock layer before
	// the authorization phase (they record no GAA decision).
	Firewalled int `json:"firewalled"`
	// Decisions is this phase's authorization-decision delta
	// (yes/no/maybe), when the target is observable.
	Decisions map[string]uint64 `json:"decisions,omitempty"`
	// Observed is the adaptive state at the checkpoint.
	Observed *Observation  `json:"observed,omitempty"`
	Checks   []CheckResult `json:"checks"`
}

// PhaseTiming is the wall-clock load-test view of a phase (bench
// harness only — deliberately not part of the canonical report).
type PhaseTiming struct {
	Name      string
	Requests  int
	Elapsed   time.Duration
	P50, P95  time.Duration
	Max       time.Duration
	ReqPerSec float64
}

// Report is a campaign run's canonical, seed-deterministic outcome.
// Two runs with the same seed against the same stack produce
// byte-identical WriteJSON output.
type Report struct {
	Campaign string        `json:"campaign"`
	Title    string        `json:"title"`
	Seed     int64         `json:"seed"`
	Phases   []PhaseReport `json:"phases"`
	Requests int           `json:"requests"`
	Checks   int           `json:"checks"`
	Failures []string      `json:"failures"`
	Passed   bool          `json:"passed"`

	// Timings carries the optional wall-clock measurements; excluded
	// from JSON because wall time is never deterministic.
	Timings []PhaseTiming `json:"-"`
}

// firewallBody is the netblock layer's fixed response body — how the
// driver tells a connection-level drop from a policy denial.
const firewallBody = "address blocked\n"

// PhaseSeed derives the deterministic per-phase generator seed.
func PhaseSeed(seed int64, phase int) int64 {
	return seed + int64(phase+1)*1_000_003
}

// Run drives the campaign against tgt: for each phase it advances
// campaign time, issues the seeded traffic, observes the adaptive
// state and asserts the checkpoint. It returns an error only when the
// target itself fails (transport error, replay divergence); checkpoint
// misses are reported in Report.Failures with Passed=false.
func Run(c Campaign, tgt Target, opts Options) (*Report, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	rep := &Report{
		Campaign: c.Name,
		Title:    c.Title,
		Seed:     seed,
		Failures: []string{},
		Passed:   true,
	}
	obs, observable := tgt.(Observer)
	adv, advances := tgt.(Advancer)

	var prev Observation
	if observable {
		prev = obs.Observe()
	}

	for pi, ph := range c.Phases {
		if ph.Advance > 0 && advances {
			adv.Advance(ph.Advance)
		}
		gap := ph.Gap
		if gap <= 0 {
			gap = DefaultGap
		}
		reqs := ph.Traffic(PhaseSeed(seed, pi))

		pr := PhaseReport{
			Name:     ph.Name,
			Comment:  ph.Comment,
			Requests: len(reqs),
			Statuses: map[string]int{},
			Classes:  map[string]map[string]int{},
			Checks:   []CheckResult{},
		}
		var lat []time.Duration
		start := time.Now()
		for i, r := range reqs {
			d := r.Delay
			if d == 0 && i > 0 {
				d = gap
			}
			if d > 0 && advances {
				adv.Advance(d)
			}
			var t0 time.Time
			if opts.Timing {
				t0 = time.Now()
			}
			x, err := tgt.Do(r)
			if err != nil {
				return rep, fmt.Errorf("phase %q request %d (%s %s from %s): %w",
					ph.Name, i, r.Method, r.Target, r.ClientIP, err)
			}
			if opts.Timing {
				lat = append(lat, time.Since(t0))
			}
			if opts.Throttle > 0 {
				time.Sleep(opts.Throttle)
			}
			status := strconv.Itoa(x.Status)
			pr.Statuses[status]++
			byClass := pr.Classes[x.Class]
			if byClass == nil {
				byClass = map[string]int{}
				pr.Classes[x.Class] = byClass
			}
			byClass[status]++
			if x.Body == firewallBody {
				pr.Firewalled++
			}
		}
		if opts.Timing {
			pr := phaseTiming(ph.Name, lat, time.Since(start))
			rep.Timings = append(rep.Timings, pr)
		}

		convState := ""
		if ph.Checkpoint.Converged {
			convState = awaitConvergence(tgt, opts.ConvergeSLO)
		}

		var cur Observation
		if observable {
			cur = obs.Observe()
			curCopy := cur
			pr.Observed = &curCopy
			pr.Decisions = map[string]uint64{}
			for dec, n := range cur.Decisions {
				pr.Decisions[dec] = n - prev.Decisions[dec]
			}
		}
		pr.Checks = evalCheckpoint(ph.Checkpoint, pr, cur, observable, convState)
		for _, cr := range pr.Checks {
			rep.Checks++
			if !cr.Passed && !cr.Skipped {
				rep.Passed = false
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s/%s: %s: want %s, got %s", c.Name, ph.Name, cr.Name, cr.Want, cr.Got))
			}
		}
		rep.Requests += pr.Requests
		rep.Phases = append(rep.Phases, pr)
		prev = cur
	}
	return rep, nil
}

// awaitConvergence polls the target's replication mesh until it has
// fully caught up or the SLO expires. The returned state is a
// deterministic string for the checkpoint: "converged",
// "not converged", or "unobservable" for targets without a mesh.
func awaitConvergence(tgt Target, slo time.Duration) string {
	cv, ok := tgt.(Converger)
	if !ok {
		return "unobservable"
	}
	if slo <= 0 {
		slo = 5 * time.Second
	}
	deadline := time.Now().Add(slo)
	for {
		if cv.Converged() {
			return "converged"
		}
		if !time.Now().Before(deadline) {
			return "not converged"
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// evalCheckpoint turns the declarative checkpoint into concrete
// results against the phase's traffic and the observed state.
func evalCheckpoint(cp Checkpoint, pr PhaseReport, obs Observation, observable bool, convState string) []CheckResult {
	out := []CheckResult{}
	check := func(name, want, got string, ok bool) {
		out = append(out, CheckResult{Name: name, Want: want, Got: got, Passed: ok})
	}
	skip := func(name, want string) {
		out = append(out, CheckResult{Name: name, Want: want, Got: "unobservable", Passed: true, Skipped: true})
	}
	stateCheck := func(name, want, got string, ok bool) {
		if !observable {
			skip(name, want)
			return
		}
		check(name, want, got, ok)
	}

	// Traffic-class expectations need no observer.
	for _, ce := range cp.Classes {
		class := classKey(ce.Class)
		status := strconv.Itoa(ce.Status)
		byClass := pr.Classes[class]
		got := byClass[status]
		total := 0
		for _, n := range byClass {
			total += n
		}
		name := "class:" + class + ":" + status
		if ce.All {
			check(name, fmt.Sprintf("all %d with status %s", total, status),
				fmt.Sprintf("%d of %d", got, total), got == total)
			continue
		}
		check(name, fmt.Sprintf(">=%d with status %s", ce.Min, status),
			strconv.Itoa(got), got >= ce.Min)
	}

	if cp.Threat != "" {
		stateCheck("threat-level", cp.Threat, obs.Threat, obs.Threat == cp.Threat)
	}
	for _, ip := range cp.Blocked {
		stateCheck("blocked:"+ip, "blocked", blockedStr(obs.Blocked, ip),
			containsStr(obs.Blocked, ip))
	}
	for _, ip := range cp.NotBlocked {
		stateCheck("not-blocked:"+ip, "not blocked", blockedStr(obs.Blocked, ip),
			!containsStr(obs.Blocked, ip))
	}
	for _, m := range cp.Blacklisted {
		stateCheck("blacklisted:"+m, "in BadGuys", inGroupStr(obs.Blacklist, m),
			containsStr(obs.Blacklist["BadGuys"], m))
	}
	for _, m := range cp.NotBlacklisted {
		stateCheck("not-blacklisted:"+m, "not in BadGuys", inGroupStr(obs.Blacklist, m),
			!containsStr(obs.Blacklist["BadGuys"], m))
	}
	if cp.MailboxAtLeast > 0 {
		stateCheck("notifications", fmt.Sprintf(">=%d", cp.MailboxAtLeast),
			strconv.Itoa(obs.Mailbox), obs.Mailbox >= cp.MailboxAtLeast)
	}
	if cp.TransitionsAtMost > 0 {
		stateCheck("transitions", fmt.Sprintf("<=%d", cp.TransitionsAtMost),
			strconv.FormatUint(obs.Transitions, 10),
			obs.Transitions <= uint64(cp.TransitionsAtMost))
	}
	if cp.Converged {
		if convState == "unobservable" {
			skip("converged", "replication converged within SLO")
		} else {
			check("converged", "replication converged within SLO",
				convState, convState == "converged")
		}
	}

	// Decision accounting: every request that passed the firewall must
	// have produced exactly one authorization decision.
	if observable {
		var total uint64
		for _, n := range pr.Decisions {
			total += n
		}
		want := uint64(pr.Requests - pr.Firewalled)
		check("decision-accounting",
			fmt.Sprintf("%d decisions (%d requests - %d firewalled)", want, pr.Requests, pr.Firewalled),
			strconv.FormatUint(total, 10), total == want)
	} else {
		skip("decision-accounting", "decisions == requests - firewalled")
	}
	return out
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func blockedStr(blocked []string, ip string) string {
	if containsStr(blocked, ip) {
		return "blocked"
	}
	return "not blocked"
}

func inGroupStr(groups map[string][]string, m string) string {
	if containsStr(groups["BadGuys"], m) {
		return "in BadGuys"
	}
	return "not in BadGuys"
}

func phaseTiming(name string, lat []time.Duration, elapsed time.Duration) PhaseTiming {
	pt := PhaseTiming{Name: name, Requests: len(lat), Elapsed: elapsed}
	if len(lat) == 0 {
		return pt
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pt.P50 = sorted[len(sorted)/2]
	pt.P95 = sorted[(len(sorted)*95)/100]
	pt.Max = sorted[len(sorted)-1]
	if elapsed > 0 {
		pt.ReqPerSec = float64(len(lat)) / elapsed.Seconds()
	}
	return pt
}
