package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/workload"
)

// runCampaign drives c against a fresh in-process stack.
func runCampaign(t *testing.T, c Campaign, opts Options) *Report {
	t.Helper()
	tgt, err := NewStackTarget(c.Stack)
	if err != nil {
		t.Fatalf("stack for %s: %v", c.Name, err)
	}
	defer tgt.Close()
	rep, err := Run(c, tgt, opts)
	if err != nil {
		t.Fatalf("run %s: %v", c.Name, err)
	}
	return rep
}

// TestAllCampaignsPass: every shipped campaign's full checkpoint
// narrative holds against a real stack at the default seed.
func TestAllCampaignsPass(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rep := runCampaign(t, c, Options{})
			for _, f := range rep.Failures {
				t.Error(f)
			}
			if rep.Requests == 0 {
				t.Error("campaign issued no traffic")
			}
			// Every checkpoint evaluated against real state — nothing
			// should have been skipped in-process.
			for _, ph := range rep.Phases {
				for _, ck := range ph.Checks {
					if ck.Skipped {
						t.Errorf("phase %s: check %s skipped in-process", ph.Name, ck.Name)
					}
				}
			}
		})
	}
}

// TestCampaignDeterminism: two runs of the same campaign at the same
// seed produce byte-identical canonical JSON reports — the property
// the whole record/replay design rests on.
func TestCampaignDeterminism(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var bufs [2]bytes.Buffer
			for i := range bufs {
				rep := runCampaign(t, c, Options{Seed: 77})
				if err := rep.WriteJSON(&bufs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
				t.Errorf("same-seed reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					bufs[0].String(), bufs[1].String())
			}
		})
	}
}

// TestSeedChangesTraffic: a different seed reshuffles the generated
// streams (the generators are actually seed-sensitive, not constant).
func TestSeedChangesTraffic(t *testing.T) {
	c, err := Find("credential-stuffing")
	if err != nil {
		t.Fatal(err)
	}
	a := c.Phases[1].Traffic(PhaseSeed(1, 1))
	b := c.Phases[1].Traffic(PhaseSeed(2, 1))
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty streams")
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical request streams")
	}
}

// TestCheckpointFailureDetected: a wrong expectation is reported as a
// failure, not silently absorbed — gaa-attack's non-zero exit hangs
// off Report.Passed.
func TestCheckpointFailureDetected(t *testing.T) {
	c, err := Find("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: claim the attackers get served.
	c.Phases[1].Checkpoint = Checkpoint{
		Classes: []ClassExpect{{Class: "phf", Status: 200, All: true}},
	}
	rep := runCampaign(t, c, Options{})
	if rep.Passed {
		t.Fatal("sabotaged checkpoint still passed")
	}
	if len(rep.Failures) == 0 {
		t.Fatal("no failure recorded")
	}
	if !strings.Contains(rep.Failures[0], "class:phf:200") {
		t.Errorf("failure = %q, want class:phf:200 mismatch", rep.Failures[0])
	}
}

// TestDriverUnobservableTarget: state checks are skipped (not failed)
// when the target exposes no Observer — the live-URL degradation path.
type blindTarget struct{ inner *StackTarget }

func (b blindTarget) Do(r workload.Request) (Exchange, error) { return b.inner.Do(r) }
func (b blindTarget) Advance(d time.Duration)                 { b.inner.Advance(d) }

func TestDriverUnobservableTarget(t *testing.T) {
	c, err := Find("recovery-after-block")
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStackTarget(c.Stack)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep, err := Run(c, blindTarget{inner: st}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, ph := range rep.Phases {
		for _, ck := range ph.Checks {
			if ck.Skipped {
				skipped++
			}
		}
	}
	if skipped == 0 {
		t.Error("no state checks skipped against an unobservable target")
	}
	// Traffic-class checks still ran and passed.
	if !rep.Passed {
		t.Errorf("traffic checks failed: %v", rep.Failures)
	}
}

// TestFindUnknown: the error names the flag that lists campaigns.
func TestFindUnknown(t *testing.T) {
	if _, err := Find("no-such"); err == nil || !strings.Contains(err.Error(), "-list") {
		t.Errorf("err = %v, want mention of -list", err)
	}
}

// TestPhaseSeedDistinct: phases of one run never share a generator
// seed (identical mixes in consecutive phases would mask ordering
// bugs).
func TestPhaseSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		s := PhaseSeed(DefaultSeed, i)
		if seen[s] {
			t.Fatalf("phase seed collision at phase %d", i)
		}
		seen[s] = true
	}
}

// TestSummarizeReportsVerdict: the human summary carries the verdict
// line gaa-attack prints.
func TestSummarizeReportsVerdict(t *testing.T) {
	c, err := Find("scraping-burst")
	if err != nil {
		t.Fatal(err)
	}
	rep := runCampaign(t, c, Options{})
	var buf bytes.Buffer
	rep.Summarize(&buf)
	out := buf.String()
	if !strings.Contains(out, "PASS:") {
		t.Errorf("summary missing verdict:\n%s", out)
	}
	if !strings.Contains(out, "phase scrape") {
		t.Errorf("summary missing phase lines:\n%s", out)
	}
}
