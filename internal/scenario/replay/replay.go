// Package replay captures a campaign run's exchanges and state
// observations into a JSON-lines trace, and replays a trace as a
// scenario.Target — byte-deterministic, with zero live traffic. A
// recorded campaign becomes a CI fixture: the replayed run exercises
// the driver, the checkpoints and the report pipeline exactly as the
// original did, and any divergence between the replayed request stream
// and the trace is an error, not a silent skew.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gaaapi/internal/scenario"
	"gaaapi/internal/workload"
)

// Version is the trace format version.
const Version = 1

// Header is the first line of a trace.
type Header struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	Seed     int64  `json:"seed"`
}

// entry is one trace line after the header: exactly one of Exchange or
// Observation. Entries appear in strict driver call order, so replay
// enforces the same Do/Observe sequencing the recording saw.
type entry struct {
	Exchange    *scenario.Exchange    `json:"exchange,omitempty"`
	Observation *scenario.Observation `json:"observation,omitempty"`
}

// Recorder wraps a live target and captures every exchange and
// observation in call order. The inner target must implement
// scenario.Observer for checkpoints to replay with full fidelity.
type Recorder struct {
	inner   scenario.Target
	header  Header
	entries []entry
}

// NewRecorder wraps inner for the given campaign run.
func NewRecorder(inner scenario.Target, campaign string, seed int64) *Recorder {
	return &Recorder{
		inner:  inner,
		header: Header{Version: Version, Campaign: campaign, Seed: seed},
	}
}

// Do forwards to the inner target and records the exchange.
func (r *Recorder) Do(req workload.Request) (scenario.Exchange, error) {
	x, err := r.inner.Do(req)
	if err != nil {
		return x, err
	}
	cp := x
	r.entries = append(r.entries, entry{Exchange: &cp})
	return x, nil
}

// Observe forwards to the inner observer and records the snapshot.
// A non-observable inner target yields an empty snapshot (recorded,
// so replay sequencing still lines up).
func (r *Recorder) Observe() scenario.Observation {
	var obs scenario.Observation
	if o, ok := r.inner.(scenario.Observer); ok {
		obs = o.Observe()
	}
	cp := obs
	r.entries = append(r.entries, entry{Observation: &cp})
	return obs
}

// Advance forwards clock advances; they are not recorded (replay has
// no clock to move).
func (r *Recorder) Advance(d time.Duration) {
	if a, ok := r.inner.(scenario.Advancer); ok {
		a.Advance(d)
	}
}

// Write serializes the trace: one JSON header line, then one line
// per entry.
func (r *Recorder) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(r.header); err != nil {
		return err
	}
	for _, e := range r.entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Save writes the trace to path, creating parent directories.
func (r *Recorder) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Replayer serves a recorded trace as a scenario target. Every Do must
// match the recorded request (method, target, source, user) in the
// recorded order; every Observe must land where an observation was
// recorded. Divergence is a hard error.
type Replayer struct {
	header  Header
	entries []entry
	pos     int
	err     error
}

// Load parses a trace file.
func Load(path string) (*Replayer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses a trace stream.
func Read(r io.Reader) (*Replayer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("empty trace")
	}
	rp := &Replayer{}
	if err := json.Unmarshal(sc.Bytes(), &rp.header); err != nil {
		return nil, fmt.Errorf("trace header: %w", err)
	}
	if rp.header.Version != Version {
		return nil, fmt.Errorf("trace version %d, want %d", rp.header.Version, Version)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace entry %d: %w", len(rp.entries)+1, err)
		}
		if (e.Exchange == nil) == (e.Observation == nil) {
			return nil, fmt.Errorf("trace entry %d: want exactly one of exchange/observation", len(rp.entries)+1)
		}
		rp.entries = append(rp.entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rp, nil
}

// Header returns the trace header.
func (rp *Replayer) Header() Header { return rp.header }

// Do returns the next recorded exchange, verifying the replayed
// request matches the recorded one.
func (rp *Replayer) Do(req workload.Request) (scenario.Exchange, error) {
	if rp.pos >= len(rp.entries) {
		return scenario.Exchange{}, fmt.Errorf("replay: request %s %s past end of trace (%d entries)",
			req.Method, req.Target, len(rp.entries))
	}
	e := rp.entries[rp.pos]
	if e.Exchange == nil {
		return scenario.Exchange{}, fmt.Errorf("replay: entry %d is an observation, got request %s %s",
			rp.pos+1, req.Method, req.Target)
	}
	rp.pos++
	x := *e.Exchange
	if x.Method != req.Method || x.Target != req.Target || x.IP != req.ClientIP || x.User != req.User {
		return scenario.Exchange{}, fmt.Errorf(
			"replay divergence at entry %d: recorded %s %s from %s user %q, replaying %s %s from %s user %q",
			rp.pos, x.Method, x.Target, x.IP, x.User, req.Method, req.Target, req.ClientIP, req.User)
	}
	return x, nil
}

// Observe returns the next recorded snapshot. Sequencing violations
// are sticky — check Done after the run.
func (rp *Replayer) Observe() scenario.Observation {
	if rp.pos >= len(rp.entries) {
		rp.fail(fmt.Errorf("replay: observation past end of trace"))
		return scenario.Observation{}
	}
	e := rp.entries[rp.pos]
	if e.Observation == nil {
		rp.fail(fmt.Errorf("replay: entry %d is an exchange, expected an observation", rp.pos+1))
		return scenario.Observation{}
	}
	rp.pos++
	return *e.Observation
}

// Advance is a no-op: recorded time is already baked into the trace.
func (rp *Replayer) Advance(time.Duration) {}

// Done reports whether the trace was consumed exactly: no sequencing
// errors and no leftover entries.
func (rp *Replayer) Done() error {
	if rp.err != nil {
		return rp.err
	}
	if rp.pos != len(rp.entries) {
		return fmt.Errorf("replay: %d of %d trace entries unconsumed", len(rp.entries)-rp.pos, len(rp.entries))
	}
	return nil
}

func (rp *Replayer) fail(err error) {
	if rp.err == nil {
		rp.err = err
	}
}
