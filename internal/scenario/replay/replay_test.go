package replay

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gaaapi/internal/scenario"
)

// record runs c against a fresh in-process stack through a Recorder
// and returns the live report plus the serialized trace.
func record(t *testing.T, c scenario.Campaign, seed int64) (*scenario.Report, []byte) {
	t.Helper()
	st, err := scenario.NewStackTarget(c.Stack)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := NewRecorder(st, c.Name, seed)
	rep, err := scenario.Run(c, rec, scenario.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes()
}

// TestRoundTrip: for every shipped campaign, a recorded run replayed
// from its trace yields a byte-identical canonical report, consumes
// the whole trace, and issues zero live requests (the replayer IS the
// target — there is nothing to leak traffic through).
func TestRoundTrip(t *testing.T) {
	for _, c := range scenario.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			liveRep, trace := record(t, c, 7)

			rp, err := Read(bytes.NewReader(trace))
			if err != nil {
				t.Fatal(err)
			}
			if rp.Header().Campaign != c.Name || rp.Header().Seed != 7 {
				t.Errorf("header = %+v", rp.Header())
			}
			replayRep, err := scenario.Run(c, rp, scenario.Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if err := rp.Done(); err != nil {
				t.Errorf("trace not cleanly consumed: %v", err)
			}
			if !replayRep.Passed {
				t.Errorf("replayed run failed: %v", replayRep.Failures)
			}

			liveJSON, err := liveRep.MarshalCanonical()
			if err != nil {
				t.Fatal(err)
			}
			replayJSON, err := replayRep.MarshalCanonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(liveJSON, replayJSON) {
				t.Errorf("replayed report differs from live report:\n--- live ---\n%s\n--- replay ---\n%s",
					liveJSON, replayJSON)
			}
		})
	}
}

// TestSaveLoad: the file round trip preserves the trace.
func TestSaveLoad(t *testing.T) {
	c, err := scenario.Find("recovery-after-block")
	if err != nil {
		t.Fatal(err)
	}
	st, err := scenario.NewStackTarget(c.Stack)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := NewRecorder(st, c.Name, 3)
	if _, err := scenario.Run(c, rec, scenario.Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sub", "dir", "trace.trace")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	rp, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.Run(c, rp, scenario.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || rp.Done() != nil {
		t.Errorf("passed=%v done=%v", rep.Passed, rp.Done())
	}
}

// TestDivergenceDetected: replaying with a different seed changes the
// request stream and must be a hard error, not a silently wrong
// report.
func TestDivergenceDetected(t *testing.T) {
	c, err := scenario.Find("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	_, trace := record(t, c, 7)
	rp, err := Read(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	_, err = scenario.Run(c, rp, scenario.Options{Seed: 8})
	if err == nil || !strings.Contains(err.Error(), "replay divergence") {
		t.Fatalf("err = %v, want replay divergence", err)
	}
}

// TestTruncatedTraceDetected: a trace cut short fails loudly when the
// driver runs past its end.
func TestTruncatedTraceDetected(t *testing.T) {
	c, err := scenario.Find("scraping-burst")
	if err != nil {
		t.Fatal(err)
	}
	_, trace := record(t, c, 7)
	lines := bytes.Split(bytes.TrimSuffix(trace, []byte("\n")), []byte("\n"))
	short := bytes.Join(lines[:len(lines)/2], []byte("\n"))
	rp, err := Read(bytes.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	_, err = scenario.Run(c, rp, scenario.Options{Seed: 7})
	if err == nil || !strings.Contains(err.Error(), "past end of trace") {
		t.Fatalf("err = %v, want past-end error", err)
	}
}

// TestMalformedTraces: loader rejects garbage with useful errors.
func TestMalformedTraces(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty trace"},
		{"bad header", "not-json\n", "trace header"},
		{"bad version", `{"version":99,"campaign":"x","seed":1}` + "\n", "version 99"},
		{"bad entry", `{"version":1,"campaign":"x","seed":1}` + "\nnope\n", "entry 1"},
		{"both kinds", `{"version":1,"campaign":"x","seed":1}` + "\n{}\n", "exactly one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestObserveSequencing: an Observe where an exchange was recorded is
// a sticky error surfaced by Done.
func TestObserveSequencing(t *testing.T) {
	c, err := scenario.Find("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	_, trace := record(t, c, 7)
	rp, err := Read(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	rp.Observe() // consumes the initial observation
	rp.Observe() // trace has an exchange here: sequencing violation
	if rp.Done() == nil {
		t.Fatal("sequencing violation not sticky")
	}
}
