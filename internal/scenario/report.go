package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MarshalJSON renders the canonical report: indented, map keys sorted
// (encoding/json's guarantee), no timestamps, no wall-clock data — so
// the same seed always yields byte-identical bytes, whether the run
// was live, in-process or replayed.
func (r *Report) MarshalCanonical() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the canonical report followed by a newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.MarshalCanonical()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Summarize writes the human-readable campaign summary: per-phase
// status/class tallies, checkpoint outcomes, and the verdict.
func (r *Report) Summarize(w io.Writer) {
	fmt.Fprintf(w, "campaign %s (%s) seed=%d\n", r.Campaign, r.Title, r.Seed)
	for _, ph := range r.Phases {
		fmt.Fprintf(w, "  phase %s: %d requests", ph.Name, ph.Requests)
		if ph.Firewalled > 0 {
			fmt.Fprintf(w, " (%d firewalled)", ph.Firewalled)
		}
		fmt.Fprintf(w, "\n")
		for _, status := range sortedKeys(ph.Statuses) {
			fmt.Fprintf(w, "    status %s: %d\n", status, ph.Statuses[status])
		}
		passed, failed, skipped := 0, 0, 0
		for _, c := range ph.Checks {
			switch {
			case c.Skipped:
				skipped++
			case c.Passed:
				passed++
			default:
				failed++
				fmt.Fprintf(w, "    FAIL %s: want %s, got %s\n", c.Name, c.Want, c.Got)
			}
		}
		fmt.Fprintf(w, "    checks: %d passed", passed)
		if failed > 0 {
			fmt.Fprintf(w, ", %d FAILED", failed)
		}
		if skipped > 0 {
			fmt.Fprintf(w, ", %d skipped", skipped)
		}
		fmt.Fprintf(w, "\n")
	}
	if r.Passed {
		fmt.Fprintf(w, "PASS: %d requests, %d checks\n", r.Requests, r.Checks)
	} else {
		fmt.Fprintf(w, "FAIL: %d checkpoint failures\n", len(r.Failures))
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
