package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/workload"
)

// The pre-built campaign catalog. Each campaign is a self-contained
// deployment (policies, content, accounts) plus a phased attack
// narrative with turn-by-turn checkpoints; docs/SCENARIOS.md documents
// every one. All traffic is seeded, so a campaign run is reproducible
// end to end.

// accountSite is the document tree shared by the login-centric
// campaigns: the public pages of the workload package plus an
// authenticated account area.
func accountSite() map[string]string {
	root := workload.DocRoot()
	root["/account/profile.html"] = "<html>profile</html>"
	root["/account/vault.html"] = "<html>vault</html>"
	return root
}

// credentialStuffing: a small botnet sprays breached credentials
// across many accounts. The per-source failed-login threshold catches
// every source, locks it out at the firewall, escalates the threat
// level and notifies the operator — while legitimate users (including
// correct logins) ride through untouched.
func credentialStuffing() Campaign {
	const local = `
# Lockout: a source with too many failed logins is cut off at the
# firewall and reported.
neg_access_right apache *
pre_cond_threshold local counter=login_attempt key=client_ip max=6 window=10m
rr_cond_block_ip local on:failure/duration:30m
rr_cond_set_threat_level local on:failure/medium
rr_cond_notify local on:failure/sysadmin/info:credential-stuffing

# The account area requires authentication; failures are counted.
pos_access_right apache GET /account/*
pre_cond_accessid_USER apache *
rr_cond_count local on:failure/login_attempt

# Everything else is public.
pos_access_right apache *
`
	users := []string{"alice", "bob", "carol"}
	sources := workload.IPPool("198.51.100", 3)
	return Campaign{
		Name:  "credential-stuffing",
		Title: "Credential stuffing from a small botnet",
		Description: "Three sources spray breached credentials across the account base. " +
			"Each source trips the per-source failed-login threshold, is firewalled for 30m, " +
			"and the operator is notified; legitimate traffic and correct logins are unaffected.",
		Stack: StackSpec{
			LocalPolicies: map[string]string{"*": local},
			DocRoot:       accountSite(),
			Users:         map[string]string{"alice": "alice-pw", "bob": "bob-pw", "carol": "carol-pw"},
		},
		Phases: []Phase{
			{
				Name:    "baseline",
				Comment: "normal browsing plus one correct login",
				Traffic: func(seed int64) []workload.Request {
					reqs := workload.Legit(20, seed)
					reqs = append(reqs, workload.Relabel([]workload.Request{
						workload.Login("10.0.1.5", "/account/profile.html", "alice", "alice-pw"),
					}, "good-login")...)
					return reqs
				},
				Checkpoint: Checkpoint{
					Threat: "low",
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						{Class: "good-login", Status: 200, All: true},
					},
				},
			},
			{
				Name:    "stuffing",
				Comment: "3 sources x 12 wrong-password attempts, interleaved",
				Traffic: func(seed int64) []workload.Request {
					return workload.CredentialStuffing("/account/profile.html", users, sources, 12, seed)
				},
				Checkpoint: Checkpoint{
					Threat:         "medium",
					Blocked:        sources,
					MailboxAtLeast: 3,
					Classes: []ClassExpect{
						// 6 challenges per source before the threshold trips.
						{Class: "credential-stuffing", Status: 401, Min: 18},
						// The 7th attempt is policy-denied, the rest firewalled.
						{Class: "credential-stuffing", Status: 403, Min: 18},
					},
				},
			},
			{
				Name:    "aftermath",
				Comment: "attackers stay firewalled; the site works normally",
				Advance: time.Minute,
				Traffic: func(seed int64) []workload.Request {
					reqs := workload.Legit(15, seed)
					reqs = append(reqs, workload.Relabel([]workload.Request{
						workload.Login("10.0.1.5", "/account/profile.html", "alice", "alice-pw"),
					}, "good-login")...)
					for _, ip := range sources {
						reqs = append(reqs, workload.Relabel(
							[]workload.Request{workload.Login(ip, "/account/profile.html", "alice", "alice-pw")},
							"credential-stuffing")...)
					}
					return reqs
				},
				Checkpoint: Checkpoint{
					Threat:  "medium",
					Blocked: sources,
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						{Class: "good-login", Status: 200, All: true},
						// Even the right password doesn't help a blocked source.
						{Class: "credential-stuffing", Status: 403, All: true},
					},
				},
			},
		},
	}
}

// lowAndSlow: a distributed brute force rotates one guess at a time
// through 12 sources with minutes between attempts, so no per-source
// threshold can ever trip. The aggregate detector — the same counter
// keyed by attacked path instead of source — catches it anyway.
func lowAndSlow() Campaign {
	const local = `
# The per-source lockout the attack is engineered to evade.
neg_access_right apache *
pre_cond_threshold local counter=failed_login key=client_ip max=6 window=10m
rr_cond_block_ip local on:failure/duration:30m

# Aggregate detector: failed logins against one object, summed over
# ALL sources. Trips on the campaign even though every source is quiet.
neg_access_right apache *
pre_cond_threshold local counter=failed_login key=path max=15 window=2h
rr_cond_set_threat_level local on:failure/high
rr_cond_notify local on:failure/sysadmin/info:distributed-brute-force

pos_access_right apache GET /account/*
pre_cond_accessid_USER apache *
rr_cond_count local on:failure/failed_login
rr_cond_count local on:failure/failed_login/key:path

pos_access_right apache *
`
	sources := workload.IPPool("198.51.100", 12)
	return Campaign{
		Name:  "low-and-slow",
		Title: "Distributed low-and-slow brute force",
		Description: "Twelve sources take turns guessing one account's password, two minutes " +
			"apart, keeping every per-source counter at 1. The aggregate per-object threshold " +
			"trips anyway, locks the attacked object down and escalates the threat level — " +
			"with zero sources firewalled (no collateral blocking).",
		Stack: StackSpec{
			LocalPolicies: map[string]string{"*": local},
			DocRoot:       accountSite(),
			Users:         map[string]string{"alice": "alice-pw"},
		},
		Phases: []Phase{
			{
				Name:    "recon",
				Comment: "normal traffic; the owner logs in",
				Traffic: func(seed int64) []workload.Request {
					reqs := workload.Legit(12, seed)
					reqs = append(reqs, workload.Relabel([]workload.Request{
						workload.Login("10.0.2.9", "/account/vault.html", "alice", "alice-pw"),
					}, "good-login")...)
					return reqs
				},
				Checkpoint: Checkpoint{
					Threat: "low",
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						{Class: "good-login", Status: 200, All: true},
					},
				},
			},
			{
				Name:    "slow-guessing",
				Comment: "12 sources x 3 guesses, one every 2 simulated minutes",
				Traffic: func(seed int64) []workload.Request {
					return workload.LowAndSlow("/account/vault.html", "alice", sources, 3, 2*time.Minute, seed)
				},
				Checkpoint: Checkpoint{
					Threat:         "high",
					NotBlocked:     sources,
					MailboxAtLeast: 1,
					Classes: []ClassExpect{
						// 15 challenged guesses before the aggregate trips...
						{Class: "low-and-slow", Status: 401, Min: 15},
						// ...then the attacked object is locked down.
						{Class: "low-and-slow", Status: 403, Min: 20},
					},
				},
			},
			{
				Name:    "lockdown-holds",
				Comment: "guessing continues into the lockdown; the rest of the site is fine",
				Traffic: func(seed int64) []workload.Request {
					guesses := workload.LowAndSlow("/account/vault.html", "alice", sources, 1, 2*time.Minute, seed)
					return append(guesses, workload.Legit(10, seed+1)...)
				},
				Checkpoint: Checkpoint{
					Threat:     "high",
					NotBlocked: sources,
					Classes: []ClassExpect{
						{Class: "low-and-slow", Status: 403, All: true},
						{Class: "", Status: 200, All: true},
					},
				},
			},
		},
	}
}

// scrapingBurst: one source sweeps the whole site far above human
// request rates. The pure-policy rate limit (count every request,
// deny over threshold) firewalls it; the browsing crowd never notices.
func scrapingBurst() Campaign {
	const local = `
neg_access_right apache *
pre_cond_threshold local counter=req_rate key=client_ip max=30 window=60s
rr_cond_block_ip local on:failure/duration:2m
rr_cond_notify local on:failure/sysadmin/info:scrape

pos_access_right apache *
rr_cond_count local on:any/req_rate
`
	const scraper = "203.0.113.50"
	return Campaign{
		Name:  "scraping-burst",
		Title: "Scraping burst against a browsing crowd",
		Description: "A scraper sweeps the document tree at 10 req/s while normal clients " +
			"browse. The per-client request-rate policy lets 30 requests through in its 60s " +
			"window, then firewalls the scraper for 2 minutes; the crowd is untouched.",
		Stack: StackSpec{
			LocalPolicies: map[string]string{"*": local},
			DocRoot:       workload.DocRoot(),
		},
		Phases: []Phase{
			{
				Name:    "browse",
				Comment: "a normal browsing crowd, one request per simulated second",
				Gap:     time.Second,
				Traffic: func(seed int64) []workload.Request {
					return workload.Legit(25, seed)
				},
				Checkpoint: Checkpoint{
					Classes: []ClassExpect{{Class: "", Status: 200, Min: 15}},
				},
			},
			{
				Name:    "scrape",
				Comment: "45 requests from one source, 100ms apart",
				Traffic: func(seed int64) []workload.Request {
					paths := []string{"/index.html", "/docs/guide.html", "/docs/api.html", "/news/2003-05.html"}
					burst := workload.ScrapeBurst(scraper, paths, 45, 100*time.Millisecond, seed)
					return workload.Interleave(seed+1, burst, workload.Legit(10, seed+2))
				},
				Checkpoint: Checkpoint{
					Blocked:        []string{scraper},
					MailboxAtLeast: 1,
					Classes: []ClassExpect{
						// 30 sweeps served before the window fills.
						{Class: "scrape", Status: 403, Min: 14},
						{Class: "", Status: 200, All: true},
					},
				},
			},
			{
				Name:    "crowd-unaffected",
				Comment: "the block holds; browsing continues normally",
				Gap:     time.Second,
				Traffic: func(seed int64) []workload.Request {
					reqs := workload.Legit(15, seed)
					return append(reqs, workload.ScrapeBurst(scraper, []string{"/index.html"}, 3, time.Second, seed+1)...)
				},
				Checkpoint: Checkpoint{
					Blocked: []string{scraper},
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						{Class: "scrape", Status: 403, All: true},
					},
				},
			},
		},
	}
}

// flashCrowd: a legitimate traffic spike arrives mixed with the
// paper's section-7 attack set. The signature policies must blacklist
// every attacker with zero false positives in the crowd — the
// discrimination test.
func flashCrowd() Campaign {
	const system = `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`
	const local = `
# Known CGI exploit and DoS signatures (paper section 7.2).
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *///////////////////* *%c0%af* *%255c* *cmd.exe* *root.exe*
rr_cond_update_log local on:failure/BadGuys/info:IP
rr_cond_set_threat_level local on:failure/medium
rr_cond_notify local on:failure/sysadmin/info:cgiexploit

# Code-Red-style buffer overflow.
neg_access_right apache *
pre_cond_expr local input_length>1000
rr_cond_update_log local on:failure/BadGuys/info:IP
rr_cond_notify local on:failure/sysadmin/info:overflow

pos_access_right apache *
`
	attackers := []string{"192.0.2.1", "192.0.2.2", "192.0.2.3", "192.0.2.4", "192.0.2.5"}
	return Campaign{
		Name:  "flash-crowd",
		Title: "Flash crowd with attackers hiding inside",
		Description: "An 80-request legitimate spike from 40 fresh sources arrives interleaved " +
			"with the paper's five attack classes. Every attacker is denied and blacklisted; " +
			"every crowd request is served — the zero-false-positive assertion is checked " +
			"with All, so a single blocked bystander fails the campaign.",
		Stack: StackSpec{
			SystemPolicy:  system,
			LocalPolicies: map[string]string{"*": local},
			DocRoot:       workload.DocRoot(),
		},
		Phases: []Phase{
			{
				Name:    "quiet",
				Comment: "light baseline traffic",
				Traffic: func(seed int64) []workload.Request {
					return workload.Legit(10, seed)
				},
				Checkpoint: Checkpoint{
					Threat:  "low",
					Classes: []ClassExpect{{Class: "", Status: 200, All: true}},
				},
			},
			{
				Name:    "flash-crowd",
				Comment: "80 legit requests from 40 sources, 5 attacks interleaved",
				Traffic: func(seed int64) []workload.Request {
					return workload.Interleave(seed, workload.FlashCrowd(80, 40, seed+1), workload.AttackMix())
				},
				Checkpoint: Checkpoint{
					Threat:         "medium",
					Blacklisted:    attackers,
					MailboxAtLeast: 5,
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						{Class: "phf", Status: 403, All: true},
						{Class: "test-cgi", Status: 403, All: true},
						{Class: "slash-flood", Status: 403, All: true},
						{Class: "nimda", Status: 403, All: true},
						{Class: "overflow", Status: 403, All: true},
					},
				},
			},
			{
				Name:    "crowd-continues",
				Comment: "attackers retry and hit the blacklist; the crowd browses on",
				Traffic: func(seed int64) []workload.Request {
					retries := workload.Relabel([]workload.Request{
						{Method: "GET", Target: "/index.html", ClientIP: attackers[0]},
						{Method: "GET", Target: "/docs/guide.html", ClientIP: attackers[3]},
					}, "blacklisted-retry")
					return workload.Interleave(seed, workload.FlashCrowd(30, 40, seed+1), retries)
				},
				Checkpoint: Checkpoint{
					Blacklisted: attackers,
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						// Innocent-looking requests, denied purely by identity.
						{Class: "blacklisted-retry", Status: 403, All: true},
					},
				},
			},
		},
	}
}

// threatLadder: the threat level climbs as attacks sharpen, and policy
// behavior changes with it — open docs start demanding authentication
// at medium, and the mandatory system policy locks the site at high.
func threatLadder() Campaign {
	const system = `
eacl_mode narrow
neg_access_right * *
pre_cond_system_threat_level local =high
`
	const local = `
# A recon probe escalates to medium.
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *cmd.exe*
rr_cond_set_threat_level local on:failure/medium
rr_cond_notify local on:failure/sysadmin/info:probe

# An overflow attempt escalates to high.
neg_access_right apache *
pre_cond_expr local input_length>1000
rr_cond_set_threat_level local on:failure/high
rr_cond_notify local on:failure/sysadmin/info:overflow

# Above low threat the docs area requires authentication; otherwise it
# is open (the selector-skip makes the second entry reachable).
pos_access_right apache GET /docs/*
pre_cond_system_threat_level local >low
pre_cond_accessid_USER apache *
pos_access_right apache GET /docs/*

pos_access_right apache *
`
	// legitOffDocs is crowd traffic that stays out of /docs — at
	// elevated threat the docs area legitimately answers 401 to
	// anonymous readers, which is asserted separately via docs-anon.
	legitOffDocs := func(n int, seed int64) []workload.Request {
		out := make([]workload.Request, 0, n)
		for _, r := range workload.Legit(n*3, seed) {
			if strings.HasPrefix(r.Target, "/docs/") {
				continue
			}
			out = append(out, r)
			if len(out) == n {
				break
			}
		}
		return out
	}
	docsAnon := func(ip string) []workload.Request {
		return workload.Relabel([]workload.Request{
			{Method: "GET", Target: "/docs/guide.html", ClientIP: ip},
			{Method: "GET", Target: "/docs/api.html", ClientIP: ip},
		}, "docs-anon")
	}
	docsAuth := func(ip string) []workload.Request {
		return workload.Relabel([]workload.Request{
			workload.Login(ip, "/docs/guide.html", "alice", "alice-pw"),
		}, "docs-auth")
	}
	return Campaign{
		Name:  "threat-ladder",
		Title: "Threat-escalation ladder",
		Description: "A probe lifts the threat level to medium — the docs area silently starts " +
			"requiring authentication. An overflow attempt lifts it to high — the mandatory " +
			"system policy locks the whole site. The level is sticky: it never de-escalates " +
			"on its own, which the final phase asserts after two quiet simulated hours.",
		Stack: StackSpec{
			SystemPolicy:  system,
			LocalPolicies: map[string]string{"*": local},
			DocRoot:       workload.DocRoot(),
			Users:         map[string]string{"alice": "alice-pw"},
		},
		Phases: []Phase{
			{
				Name:    "calm",
				Comment: "docs are open to anonymous readers at low threat",
				Traffic: func(seed int64) []workload.Request {
					return append(workload.Legit(10, seed), docsAnon("10.0.3.3")...)
				},
				Checkpoint: Checkpoint{
					Threat: "low",
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						{Class: "docs-anon", Status: 200, All: true},
					},
				},
			},
			{
				Name:    "probe",
				Comment: "a phf scan raises threat to medium; docs now demand credentials",
				Traffic: func(seed int64) []workload.Request {
					reqs := []workload.Request{workload.PhfScan("192.0.2.66")}
					reqs = append(reqs, docsAnon("10.0.3.3")...)
					reqs = append(reqs, docsAuth("10.0.3.4")...)
					return append(reqs, legitOffDocs(8, seed)...)
				},
				Checkpoint: Checkpoint{
					Threat:         "medium",
					MailboxAtLeast: 1,
					Classes: []ClassExpect{
						{Class: "phf", Status: 403, All: true},
						{Class: "docs-anon", Status: 401, All: true},
						{Class: "docs-auth", Status: 200, All: true},
						{Class: "", Status: 200, All: true},
					},
				},
			},
			{
				Name:    "overflow",
				Comment: "a buffer overflow raises threat to high; the site locks down",
				Traffic: func(seed int64) []workload.Request {
					reqs := []workload.Request{workload.Overflow("192.0.2.77", 1200)}
					return append(reqs, workload.Legit(8, seed)...)
				},
				Checkpoint: Checkpoint{
					Threat:         "high",
					MailboxAtLeast: 2,
					Classes: []ClassExpect{
						{Class: "overflow", Status: 403, All: true},
						// The mandatory system policy denies even legit traffic.
						{Class: "", Status: 403, All: true},
					},
				},
			},
			{
				Name:    "threat-sticky",
				Comment: "two quiet hours later the level has not decayed",
				Advance: 2 * time.Hour,
				Traffic: func(seed int64) []workload.Request {
					return workload.Legit(5, seed)
				},
				Checkpoint: Checkpoint{
					Threat:  "high",
					Classes: []ClassExpect{{Class: "", Status: 403, All: true}},
				},
			},
		},
	}
}

// recoveryAfterBlock: a legitimate user locks themselves out, the
// timed block and the sliding counter window both expire, and the
// system returns to normal service — adaptive response is reversible.
func recoveryAfterBlock() Campaign {
	const local = `
neg_access_right apache *
pre_cond_threshold local counter=failed_login key=client_ip max=3 window=5m
rr_cond_block_ip local on:failure/duration:90s
rr_cond_set_threat_level local on:failure/medium
rr_cond_notify local on:failure/sysadmin/info:lockout

pos_access_right apache GET /account/*
pre_cond_accessid_USER apache *
rr_cond_count local on:failure/failed_login

pos_access_right apache *
`
	const user = "10.0.7.7"
	forgot := func(n int) []workload.Request {
		out := make([]workload.Request, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, workload.Login(user, "/account/profile.html", "alice", fmt.Sprintf("typo-%d", i)))
		}
		return workload.Relabel(out, "forgot-password")
	}
	return Campaign{
		Name:  "recovery-after-block",
		Title: "Recovery after a timed block",
		Description: "A forgetful user fails four logins, trips the lockout and is firewalled " +
			"for 90 seconds. After the block and the counter window expire, the correct " +
			"password works again and service is fully restored — only the escalated threat " +
			"level remains, because de-escalation is an operator decision.",
		Stack: StackSpec{
			LocalPolicies: map[string]string{"*": local},
			DocRoot:       accountSite(),
			Users:         map[string]string{"alice": "alice-pw"},
		},
		Phases: []Phase{
			{
				Name:    "mistakes",
				Comment: "four wrong passwords: three challenges, then the lockout",
				Traffic: func(seed int64) []workload.Request {
					return forgot(4)
				},
				Checkpoint: Checkpoint{
					Threat:         "medium",
					Blocked:        []string{user},
					MailboxAtLeast: 1,
					Classes: []ClassExpect{
						{Class: "forgot-password", Status: 401, Min: 3},
						{Class: "forgot-password", Status: 403, Min: 1},
					},
				},
			},
			{
				Name:    "locked-out",
				Comment: "retries die at the firewall, before any policy evaluation",
				Traffic: func(seed int64) []workload.Request {
					return forgot(3)
				},
				Checkpoint: Checkpoint{
					Blocked: []string{user},
					Classes: []ClassExpect{{Class: "forgot-password", Status: 403, All: true}},
				},
			},
			{
				Name:    "recovery",
				Comment: "six minutes later the block and the counter window have expired",
				Advance: 6 * time.Minute,
				Traffic: func(seed int64) []workload.Request {
					return workload.Relabel([]workload.Request{
						workload.Login(user, "/account/profile.html", "alice", "alice-pw"),
					}, "recovered")
				},
				Checkpoint: Checkpoint{
					Threat:     "medium",
					NotBlocked: []string{user},
					Classes:    []ClassExpect{{Class: "recovered", Status: 200, All: true}},
				},
			},
			{
				Name:    "clean-slate",
				Comment: "normal service for everyone, threat level held for the operator",
				Traffic: func(seed int64) []workload.Request {
					reqs := workload.Legit(10, seed)
					return append(reqs, workload.Relabel([]workload.Request{
						workload.Login(user, "/account/vault.html", "alice", "alice-pw"),
					}, "recovered")...)
				},
				Checkpoint: Checkpoint{
					Threat: "medium",
					Classes: []ClassExpect{
						{Class: "", Status: 200, All: true},
						{Class: "recovered", Status: 200, All: true},
					},
				},
			},
		},
	}
}

// adaptivePolicy is the deliberately dumb deployment the adaptive
// campaigns run against: the admin tree is off limits and everything
// else is open. No counters, no thresholds, no signature rules —
// catching the attacker is entirely the adaptive scorer's job.
const adaptivePolicy = `
neg_access_right apache GET /admin/*
pos_access_right apache *
`

// adaptiveScan emits n probe requests against the denied admin tree
// from one source, 50ms apart — fast, high-severity (the phf pattern
// trips the signature DB), and all policy-denied.
func adaptiveScan(ip, class string, n int) []workload.Request {
	out := make([]workload.Request, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, workload.Request{
			Method:   "GET",
			Target:   fmt.Sprintf("/admin/phf-probe-%d?cmd=%%3Bcat%%20%%2Fetc%%2Fpasswd", i),
			ClientIP: ip,
			Attack:   class,
			Delay:    50 * time.Millisecond,
		})
	}
	return out
}

// adaptiveRamp: a source drifts from normal browsing into a scan of a
// denied area. No threshold policy covers this traffic — the adaptive
// engine learns the site's baseline, scores the drifting source and
// firewalls it per-source while the global threat level never leaves
// low. Detection without a signature or a hand-tuned counter.
func adaptiveRamp() Campaign {
	acfg := adaptive.Defaults()
	acfg.HalfLife = 10 * time.Second
	acfg.MinSamples = 5
	// Per-source enforcement must lead global escalation: the block
	// fires while the fleet-level signal is still below MediumRaise.
	acfg.BlockScore = 1.1
	const attacker = "203.0.113.99"
	return Campaign{
		Name:  "adaptive-ramp",
		Title: "Drifting source caught by the adaptive scorer",
		Description: "A source browses normally, then ramps into a scan of the denied admin " +
			"tree. No threshold or signature policy matches it; the adaptive per-source score " +
			"crosses the block floor within a handful of probes and the source is firewalled — " +
			"while the global threat level stays low throughout (surgical, not site-wide, " +
			"response).",
		Stack: StackSpec{
			LocalPolicies: map[string]string{"*": adaptivePolicy},
			DocRoot:       workload.DocRoot(),
			Adaptive:      &acfg,
		},
		Phases: []Phase{
			{
				Name:    "baseline",
				Comment: "a browsing crowd trains the per-resource profiles",
				Gap:     2 * time.Second,
				Traffic: func(seed int64) []workload.Request {
					return workload.Legit(30, seed)
				},
				Checkpoint: Checkpoint{
					Threat:     "low",
					NotBlocked: []string{attacker},
					Classes:    []ClassExpect{{Class: "", Status: 200, All: true}},
				},
			},
			{
				Name:    "drift",
				Comment: "the future attacker browses like anyone else",
				Gap:     2 * time.Second,
				Traffic: func(seed int64) []workload.Request {
					drifting := workload.Relabel(workload.LegitFrom(attacker, 6, seed), "drifting-source")
					return workload.Interleave(seed+1, drifting, workload.Legit(10, seed+2))
				},
				Checkpoint: Checkpoint{
					Threat:     "low",
					NotBlocked: []string{attacker},
					Classes: []ClassExpect{
						{Class: "drifting-source", Status: 200, All: true},
						{Class: "", Status: 200, All: true},
					},
				},
			},
			{
				Name:    "scan",
				Comment: "the source turns: 30 admin probes at 20/s, crowd still browsing",
				Traffic: func(seed int64) []workload.Request {
					return workload.Interleave(seed,
						adaptiveScan(attacker, "adaptive-scan", 30),
						workload.Legit(8, seed+1))
				},
				Checkpoint: Checkpoint{
					// The tentpole assertion: per-source block earned
					// while the global level never moved.
					Threat:  "low",
					Blocked: []string{attacker},
					Classes: []ClassExpect{
						{Class: "adaptive-scan", Status: 403, All: true},
						{Class: "", Status: 200, All: true},
					},
				},
			},
			{
				Name:    "aftermath",
				Comment: "the block holds; innocent-looking retries die at the firewall",
				Advance: time.Minute,
				Traffic: func(seed int64) []workload.Request {
					retries := workload.Relabel(workload.LegitFrom(attacker, 3, seed), "blocked-retry")
					return workload.Interleave(seed+1, retries, workload.Legit(10, seed+2))
				},
				Checkpoint: Checkpoint{
					Threat:  "low",
					Blocked: []string{attacker},
					Classes: []ClassExpect{
						{Class: "blocked-retry", Status: 403, All: true},
						{Class: "", Status: 200, All: true},
					},
				},
			},
		},
	}
}

// adaptiveFlap: oscillating attack load must not flap the threat
// level. Bursts raise it once; the hysteresis dwell pins it through
// the quiet valleys and the second burst, and only a long sustained
// calm lowers it again — exactly two transitions across four swings.
func adaptiveFlap() Campaign {
	acfg := adaptive.Defaults()
	acfg.HalfLife = 10 * time.Second
	acfg.MinSamples = 5
	// This drill exercises the low<->medium hysteresis boundary only:
	// per-source blocking and the high tier are pushed out of reach so
	// every observed transition is the global signal's doing.
	acfg.BlockScore = 100
	acfg.HighRaise = 100
	acfg.Dwell = 10 * time.Minute
	return Campaign{
		Name:  "adaptive-flap",
		Title: "Oscillating load cannot flap the threat level",
		Description: "Attack bursts alternate with quiet valleys. The first burst raises the " +
			"level to medium; the valleys drop the signal below the lower threshold but the " +
			"dwell time pins the level, so the second burst causes no second raise. After a " +
			"15-minute calm the level steps back down — two transitions total, asserted with " +
			"a transition-count cap in every phase.",
		Stack: StackSpec{
			LocalPolicies: map[string]string{"*": adaptivePolicy},
			DocRoot:       workload.DocRoot(),
			Adaptive:      &acfg,
		},
		Phases: []Phase{
			{
				Name:    "baseline",
				Comment: "normal browsing; the level is low and has never moved",
				Gap:     2 * time.Second,
				Traffic: func(seed int64) []workload.Request {
					return workload.Legit(20, seed)
				},
				Checkpoint: Checkpoint{
					Threat:  "low",
					Classes: []ClassExpect{{Class: "", Status: 200, All: true}},
				},
			},
			{
				Name:    "burst",
				Comment: "a probe burst lifts the signal past the raise threshold",
				Traffic: func(seed int64) []workload.Request {
					return adaptiveScan("198.51.100.61", "flap-burst", 30)
				},
				Checkpoint: Checkpoint{
					Threat:            "medium",
					TransitionsAtMost: 1,
					Classes:           []ClassExpect{{Class: "flap-burst", Status: 403, All: true}},
				},
			},
			{
				Name:    "valley",
				Comment: "two quiet minutes: the signal collapses, the dwell pins the level",
				Advance: 2 * time.Minute,
				Gap:     2 * time.Second,
				Traffic: func(seed int64) []workload.Request {
					return workload.Legit(15, seed)
				},
				Checkpoint: Checkpoint{
					// The hysteresis assertion: signal is below the
					// lower threshold, yet no transition happened.
					Threat:            "medium",
					TransitionsAtMost: 1,
					Classes:           []ClassExpect{{Class: "", Status: 200, All: true}},
				},
			},
			{
				Name:    "burst-again",
				Comment: "a second burst from another source: still exactly one transition",
				Traffic: func(seed int64) []workload.Request {
					return adaptiveScan("198.51.100.62", "flap-burst", 30)
				},
				Checkpoint: Checkpoint{
					Threat:            "medium",
					TransitionsAtMost: 1,
					Classes:           []ClassExpect{{Class: "flap-burst", Status: 403, All: true}},
				},
			},
			{
				Name:    "calm",
				Comment: "fifteen quiet minutes outlast the dwell; the level steps down once",
				Advance: 15 * time.Minute,
				Gap:     2 * time.Second,
				Traffic: func(seed int64) []workload.Request {
					return workload.Legit(15, seed)
				},
				Checkpoint: Checkpoint{
					Threat:            "low",
					TransitionsAtMost: 2,
					Classes:           []ClassExpect{{Class: "", Status: 200, All: true}},
				},
			},
		},
	}
}

// All returns the campaign catalog sorted by name.
func All() []Campaign {
	out := []Campaign{
		credentialStuffing(),
		lowAndSlow(),
		scrapingBurst(),
		flashCrowd(),
		threatLadder(),
		recoveryAfterBlock(),
		adaptiveRamp(),
		adaptiveFlap(),
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the named campaign.
func Find(name string) (Campaign, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Campaign{}, fmt.Errorf("unknown campaign %q (try -list)", name)
}
