package scenario

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"gaaapi/internal/cluster"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/ids"
	"gaaapi/internal/workload"
)

// ClusterTarget drives a campaign against an in-process fleet of
// stacks joined by the replication layer: requests round-robin across
// the nodes like a load balancer would spread them, every node shares
// one simulated clock, and the replication mesh runs over an
// in-process transport whose links the campaign can cut and heal —
// partition drills (ROADMAP: campaigns over a cluster) without
// processes or sockets.
//
// Observe merges the fleet the way the convergence rules do: max
// threat level, union of blocks and blacklists, summed mailboxes and
// decision counters. A checkpoint written for a single StackTarget
// therefore reads naturally against a converged fleet — and fails
// loudly against a partitioned one that should have converged.
type ClusterTarget struct {
	Nodes []*gaahttp.Stack
	Clock *SimClock

	transport *cluster.LoopTransport
	urls      []string

	mu   sync.Mutex
	next int // round-robin cursor
}

// NewClusterTarget wires n identical stacks for spec into a full
// replication mesh on a shared simulated clock.
func NewClusterTarget(spec StackSpec, n int) (*ClusterTarget, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster target needs at least one node, got %d", n)
	}
	clock := NewSimClock()
	lt := cluster.NewLoopTransport()
	t := &ClusterTarget{Clock: clock, transport: lt}
	for i := 0; i < n; i++ {
		t.urls = append(t.urls, fmt.Sprintf("loop://node-%d", i))
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range t.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		st, err := gaahttp.NewStack(gaahttp.StackConfig{
			SystemPolicy:        spec.SystemPolicy,
			LocalPolicies:       spec.LocalPolicies,
			DocRoot:             spec.DocRoot,
			Users:               spec.Users,
			RuntimeValues:       spec.RuntimeValues,
			Clock:               clock.Now,
			Metrics:             true,
			Adaptive:            campaignAdaptive(spec),
			NodeID:              fmt.Sprintf("node-%d", i),
			Peers:               peers,
			ClusterTransport:    lt.Bind(t.urls[i]),
			ReplicationInterval: 2 * time.Millisecond,
		})
		if err != nil {
			for _, prev := range t.Nodes {
				prev.Close()
			}
			return nil, fmt.Errorf("cluster node %d: %w", i, err)
		}
		t.Nodes = append(t.Nodes, st)
		lt.Register(t.urls[i], st.Cluster)
	}
	return t, nil
}

// Do serves the request on the next node in round-robin order.
func (t *ClusterTarget) Do(r workload.Request) (Exchange, error) {
	t.mu.Lock()
	node := t.Nodes[t.next%len(t.Nodes)]
	t.next++
	t.mu.Unlock()
	rec := httptest.NewRecorder()
	node.Server.ServeHTTP(rec, r.HTTPRequest())
	return Exchange{
		Method: r.Method,
		Target: r.Target,
		IP:     r.ClientIP,
		User:   r.User,
		Class:  classKey(r.Attack),
		Status: rec.Code,
		Body:   rec.Body.String(),
	}, nil
}

// Advance moves the shared simulated clock.
func (t *ClusterTarget) Advance(d time.Duration) { t.Clock.Advance(d) }

// Observe merges the fleet's adaptive state: max threat, union of
// blocks and blacklist members, summed mailbox and decision counts.
func (t *ClusterTarget) Observe() Observation {
	obs := Observation{
		Threat:    ids.Low.String(),
		Blocked:   []string{},
		Blacklist: map[string][]string{},
		Decisions: map[string]uint64{"yes": 0, "no": 0, "maybe": 0},
	}
	maxLevel := ids.Low
	blocked := map[string]bool{}
	members := map[string]map[string]bool{}
	for _, node := range t.Nodes {
		if l := node.Threat.Level(); l > maxLevel {
			maxLevel = l
		}
		obs.Transitions += node.Threat.Transitions()
		for _, b := range node.Blocks.List() {
			blocked[b] = true
		}
		for _, g := range node.Groups.Groups() {
			if members[g] == nil {
				members[g] = map[string]bool{}
			}
			for _, m := range node.Groups.Members(g) {
				members[g][m] = true
			}
		}
		obs.Mailbox += node.Mailbox.Count()
		for dec, v := range decisionCounts(node) {
			obs.Decisions[dec] += v
		}
	}
	obs.Threat = maxLevel.String()
	for b := range blocked {
		obs.Blocked = append(obs.Blocked, b)
	}
	sort.Strings(obs.Blocked)
	for g, ms := range members {
		var list []string
		for m := range ms {
			list = append(list, m)
		}
		sort.Strings(list)
		obs.Blacklist[g] = list
	}
	return obs
}

// Partition isolates node i from the rest of the fleet (both
// directions). Requests still reach it — a partitioned web server
// keeps serving; it just stops learning from and teaching its peers.
func (t *ClusterTarget) Partition(i int) {
	for j, u := range t.urls {
		if j != i {
			t.transport.CutPair(t.urls[i], u)
		}
	}
}

// Heal reconnects node i to every peer.
func (t *ClusterTarget) Heal(i int) {
	for j, u := range t.urls {
		if j != i {
			t.transport.HealPair(t.urls[i], u)
		}
	}
}

// Converged reports whether every node's replication log has been
// fully acknowledged by all its peers.
func (t *ClusterTarget) Converged() bool {
	for _, node := range t.Nodes {
		if node.Cluster != nil && !node.Cluster.CaughtUp() {
			return false
		}
	}
	return true
}

// Close releases every node.
func (t *ClusterTarget) Close() {
	for _, node := range t.Nodes {
		node.Close()
	}
}
