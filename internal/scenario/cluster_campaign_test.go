package scenario

import (
	"testing"
	"time"

	"gaaapi/internal/ids"
)

// clusterize rewrites a single-stack campaign for a replicated fleet:
// traffic-class expectations are dropped (round-robin shifts exactly
// which request trips a threshold, so per-request statuses differ),
// transition caps are dropped (each node climbs its own ladder), and
// every phase instead requires the replication mesh to converge within
// the SLO before its state checks run. What remains — threat level,
// firewall blocks, blacklist membership, notification floors — must
// hold against the MERGED fleet state, which is the whole point:
// checkpoints written for one server read naturally against a
// converged cluster.
func clusterize(c Campaign) Campaign {
	phases := make([]Phase, len(c.Phases))
	copy(phases, c.Phases)
	for i := range phases {
		cp := phases[i].Checkpoint
		cp.Classes = nil
		cp.TransitionsAtMost = 0
		cp.Converged = true
		phases[i].Checkpoint = cp
	}
	c.Phases = phases
	return c
}

// TestCampaignCatalogOnCluster runs the whole campaign catalog against
// a two-node replicated fleet behind a round-robin load balancer. Every
// phase carries a convergence checkpoint, so the replication SLO is a
// first-class assertion: a mesh that fails to drain within 5 seconds
// fails the campaign even if the state happens to look right.
func TestCampaignCatalogOnCluster(t *testing.T) {
	for _, c := range All() {
		c := clusterize(c)
		t.Run(c.Name, func(t *testing.T) {
			ct, err := NewClusterTarget(c.Stack, 2)
			if err != nil {
				t.Fatalf("NewClusterTarget: %v", err)
			}
			defer ct.Close()
			rep, err := Run(c, ct, Options{
				Throttle:    2 * time.Millisecond,
				ConvergeSLO: 5 * time.Second,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !rep.Passed {
				for _, f := range rep.Failures {
					t.Error(f)
				}
			}
			// Convergence must have been asserted for real, not skipped.
			for _, ph := range rep.Phases {
				found := false
				for _, ck := range ph.Checks {
					if ck.Name == "converged" {
						found = true
						if ck.Skipped {
							t.Errorf("phase %s: convergence check skipped on a cluster target", ph.Name)
						}
					}
				}
				if !found {
					t.Errorf("phase %s: no convergence check", ph.Name)
				}
			}
		})
	}
}

// TestAdaptiveRampClusterEnforcement is the cross-node acceptance
// drill: adaptive-ramp runs against a two-node fleet, so each node
// sees only half the attacker's probes. The replicated score events
// must merge into a block that BOTH nodes enforce within the
// convergence checkpoint — while neither node's threat level moves.
func TestAdaptiveRampClusterEnforcement(t *testing.T) {
	c := clusterize(adaptiveRamp())
	ct, err := NewClusterTarget(c.Stack, 2)
	if err != nil {
		t.Fatalf("NewClusterTarget: %v", err)
	}
	defer ct.Close()
	rep, err := Run(c, ct, Options{
		Throttle:    2 * time.Millisecond,
		ConvergeSLO: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Passed {
		for _, f := range rep.Failures {
			t.Error(f)
		}
	}
	const attacker = "203.0.113.99"
	for i, node := range ct.Nodes {
		if !node.Blocks.Blocked(attacker) {
			t.Errorf("node %d does not enforce the attacker block after convergence", i)
		}
		if lvl := node.Threat.Level(); lvl != ids.Low {
			t.Errorf("node %d threat = %s, want low (per-source response only)", i, lvl)
		}
	}
	// The block came from merged evidence, not any policy: both nodes
	// must agree on the attacker's replicated score.
	for i, node := range ct.Nodes {
		if node.Scorer == nil {
			t.Fatalf("node %d has no scorer", i)
		}
		if s := node.Scorer.SourceScore(attacker); s <= 0 {
			t.Errorf("node %d never learned the attacker's score", i)
		}
	}
}
