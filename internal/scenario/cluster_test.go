package scenario

import (
	"net/http/httptest"
	"testing"
	"time"

	"gaaapi/internal/workload"
)

// clusterSpec is a lockout deployment: three failed logins from one
// source block it at the firewall, blacklist it, and escalate the
// threat level.
func clusterSpec() StackSpec {
	const local = `
neg_access_right apache *
pre_cond_threshold local counter=login_attempt key=client_ip max=2 window=10m
rr_cond_block_ip local on:failure/duration:30m
rr_cond_update_log local on:failure/BadGuys
rr_cond_set_threat_level local on:failure/medium

pos_access_right apache GET /account/*
pre_cond_accessid_USER apache *
rr_cond_count local on:failure/login_attempt

pos_access_right apache *
`
	return StackSpec{
		LocalPolicies: map[string]string{"*": local},
		DocRoot:       accountSite(),
		Users:         map[string]string{"alice": "alice-pw"},
	}
}

// getReq is a plain anonymous page fetch from ip.
func getReq(ip string) workload.Request {
	return workload.Request{Method: "GET", Target: "/index.html", ClientIP: ip}
}

// serveOn sends one request to a specific node (bypassing round-robin)
// and returns the status.
func serveOn(t *ClusterTarget, node int, r workload.Request) int {
	rec := httptest.NewRecorder()
	t.Nodes[node].Server.ServeHTTP(rec, r.HTTPRequest())
	return rec.Code
}

// attack runs enough failed logins from ip on one node to trip the
// lockout threshold.
func attack(t *ClusterTarget, node int, ip string) {
	for i := 0; i < 4; i++ {
		serveOn(t, node, workload.Login(ip, "/account/profile.html", "alice", "wrong-pw"))
	}
}

func waitCluster(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterTargetCrossNodeEnforcement(t *testing.T) {
	ct, err := NewClusterTarget(clusterSpec(), 3)
	if err != nil {
		t.Fatalf("NewClusterTarget: %v", err)
	}
	defer ct.Close()

	const attacker = "198.51.100.7"
	attack(ct, 0, attacker)
	if serveOn(ct, 0, getReq(attacker)) != 403 {
		t.Fatal("attacker not blocked on the node it attacked")
	}

	// The block must propagate: every other node firewalls the
	// attacker without ever having seen a bad request from it.
	for i := 1; i < 3; i++ {
		i := i
		waitCluster(t, "block replicated", func() bool {
			return serveOn(ct, i, getReq(attacker)) == 403
		})
	}
	waitCluster(t, "fleet converged", ct.Converged)

	obs := ct.Observe()
	if obs.Threat != "medium" {
		t.Fatalf("merged threat = %s, want medium", obs.Threat)
	}
	found := false
	for _, m := range obs.Blacklist["BadGuys"] {
		if m == attacker {
			found = true
		}
	}
	if !found {
		t.Fatalf("attacker missing from merged blacklist: %v", obs.Blacklist)
	}
}

func TestClusterTargetPartitionDrill(t *testing.T) {
	ct, err := NewClusterTarget(clusterSpec(), 2)
	if err != nil {
		t.Fatalf("NewClusterTarget: %v", err)
	}
	defer ct.Close()

	ct.Partition(1)

	// Each side of the partition learns about a different attacker.
	const atkA, atkB = "198.51.100.21", "198.51.100.22"
	attack(ct, 0, atkA)
	attack(ct, 1, atkB)

	// The partition holds: neither side learns the other's block.
	time.Sleep(30 * time.Millisecond)
	if ct.Nodes[0].Blocks.Blocked(atkB) || ct.Nodes[1].Blocks.Blocked(atkA) {
		t.Fatal("blocks crossed a cut partition")
	}
	if ct.Converged() {
		t.Fatal("partitioned fleet claims convergence")
	}

	ct.Heal(1)
	waitCluster(t, "fleet converged after heal", ct.Converged)
	waitCluster(t, "blocks exchanged", func() bool {
		return ct.Nodes[0].Blocks.Blocked(atkB) && ct.Nodes[1].Blocks.Blocked(atkA)
	})

	// Both attackers are firewalled fleet-wide.
	for node := 0; node < 2; node++ {
		for _, ip := range []string{atkA, atkB} {
			if got := serveOn(ct, node, getReq(ip)); got != 403 {
				t.Fatalf("node %d serves %s with %d after heal", node, ip, got)
			}
		}
	}
	obs := ct.Observe()
	if len(obs.Blocked) != 2 {
		t.Fatalf("merged blocked = %v", obs.Blocked)
	}
}

func TestClusterTargetRoundRobin(t *testing.T) {
	ct, err := NewClusterTarget(clusterSpec(), 2)
	if err != nil {
		t.Fatalf("NewClusterTarget: %v", err)
	}
	defer ct.Close()

	// A full attack burst through the load-balancer path: requests
	// alternate nodes, so each node sees only half the failures — the
	// replicated counter events must still trip the threshold.
	const attacker = "198.51.100.33"
	for i := 0; i < 8; i++ {
		if _, err := ct.Do(workload.Login(attacker, "/account/profile.html", "alice", "wrong-pw")); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	waitCluster(t, "spread attack blocked fleet-wide", func() bool {
		return ct.Nodes[0].Blocks.Blocked(attacker) && ct.Nodes[1].Blocks.Blocked(attacker)
	})
}
