package scenario

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"gaaapi/internal/gaahttp"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/workload"
)

// Epoch is the fixed instant every simulated campaign clock starts
// at. Pinning it (rather than time.Now) is what makes sliding-window
// counters, block expiries and time conditions reproducible run to
// run.
var Epoch = time.Date(2003, time.May, 1, 9, 0, 0, 0, time.UTC)

// SimClock is a manually advanced clock shared by every component of
// an in-process campaign stack.
type SimClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewSimClock starts a clock at Epoch.
func NewSimClock() *SimClock { return &SimClock{now: Epoch} }

// Now returns the current simulated instant.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative advances are
// ignored — simulated time never runs backwards).
func (c *SimClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Exchange is one request/response pair as the driver saw it: the
// synthetic request's identifying fields plus the server's full
// answer. It is the record/replay unit.
type Exchange struct {
	Method string `json:"method"`
	Target string `json:"target"`
	IP     string `json:"ip"`
	User   string `json:"user,omitempty"`
	Class  string `json:"class"`
	Status int    `json:"status"`
	Body   string `json:"body"`
}

// Observation is the adaptive-state snapshot a checkpoint asserts
// against: threat level, firewall blocks, blacklist groups,
// notification count and the cumulative authorization-decision
// counters.
type Observation struct {
	Threat      string              `json:"threat"`
	Transitions uint64              `json:"transitions"`
	Blocked     []string            `json:"blocked"`
	Blacklist   map[string][]string `json:"blacklist"`
	Mailbox     int                 `json:"mailbox"`
	// Decisions maps "yes"/"no"/"maybe" to the cumulative
	// authorization-phase (check) decision count.
	Decisions map[string]uint64 `json:"decisions"`
}

// Target serves one synthetic request and reports the outcome.
type Target interface {
	Do(r workload.Request) (Exchange, error)
}

// Observer exposes adaptive state for checkpoints. Targets that
// cannot observe state (a live URL without a status endpoint, or a
// trace recorded from one) simply don't implement it; state checks
// are then reported as skipped.
type Observer interface {
	Observe() Observation
}

// Advancer lets the driver move campaign time. The in-process target
// advances its simulated clock; a live target sleeps (capped); a
// replay target ignores it.
type Advancer interface {
	Advance(d time.Duration)
}

// Converger reports whether the target's replication mesh has fully
// caught up — the convergence-SLO hook for Checkpoint.Converged.
// Single-node targets are trivially converged and need not implement
// it; checkpoints then report the check as skipped.
type Converger interface {
	Converged() bool
}

// StackTarget drives a full in-process gaahttp stack on a simulated
// clock — the deterministic way to run campaigns.
type StackTarget struct {
	Stack *gaahttp.Stack
	Clock *SimClock
}

// NewStackTarget wires a fresh stack (metrics on, simulated clock)
// for spec.
func NewStackTarget(spec StackSpec) (*StackTarget, error) {
	clock := NewSimClock()
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  spec.SystemPolicy,
		LocalPolicies: spec.LocalPolicies,
		DocRoot:       spec.DocRoot,
		Users:         spec.Users,
		RuntimeValues: spec.RuntimeValues,
		Clock:         clock.Now,
		Metrics:       true,
		Adaptive:      campaignAdaptive(spec),
	})
	if err != nil {
		return nil, err
	}
	return &StackTarget{Stack: st, Clock: clock}, nil
}

// campaignAdaptive prepares the spec's adaptive config for a campaign
// stack: scoring runs synchronously so every checkpoint observes the
// exact state the traffic so far implies, independent of scheduling.
func campaignAdaptive(spec StackSpec) *adaptive.Config {
	if spec.Adaptive == nil {
		return nil
	}
	cfg := *spec.Adaptive
	cfg.Synchronous = true
	return &cfg
}

// Do serves the request straight through the server, no sockets.
func (t *StackTarget) Do(r workload.Request) (Exchange, error) {
	rec := httptest.NewRecorder()
	t.Stack.Server.ServeHTTP(rec, r.HTTPRequest())
	return Exchange{
		Method: r.Method,
		Target: r.Target,
		IP:     r.ClientIP,
		User:   r.User,
		Class:  classKey(r.Attack),
		Status: rec.Code,
		Body:   rec.Body.String(),
	}, nil
}

// Advance moves the simulated clock.
func (t *StackTarget) Advance(d time.Duration) { t.Clock.Advance(d) }

// Observe snapshots the stack's adaptive state.
func (t *StackTarget) Observe() Observation {
	obs := Observation{
		Threat:      t.Stack.Threat.Level().String(),
		Transitions: t.Stack.Threat.Transitions(),
		Blocked:     t.Stack.Blocks.List(),
		Blacklist:   map[string][]string{},
		Mailbox:     t.Stack.Mailbox.Count(),
		Decisions:   decisionCounts(t.Stack),
	}
	if obs.Blocked == nil {
		obs.Blocked = []string{}
	}
	for _, g := range t.Stack.Groups.Groups() {
		obs.Blacklist[g] = t.Stack.Groups.Members(g)
	}
	return obs
}

// Close releases the stack.
func (t *StackTarget) Close() { t.Stack.Close() }

// decisionCounts reads the exact check-phase decision counters out of
// the stack's metrics registry.
func decisionCounts(st *gaahttp.Stack) map[string]uint64 {
	out := map[string]uint64{"yes": 0, "no": 0, "maybe": 0}
	if st.Metrics == nil {
		return out
	}
	for key, v := range st.Metrics.Values() {
		if !strings.HasPrefix(key, "gaa_decisions_total{") ||
			!strings.Contains(key, `phase="check"`) {
			continue
		}
		for dec := range out {
			if strings.Contains(key, `decision="`+dec+`"`) {
				out[dec] = uint64(v)
			}
		}
	}
	return out
}

// LiveTarget replays a campaign against a running server over real
// HTTP. Time advances become bounded real sleeps, and adaptive state
// is unobservable, so live runs check traffic outcomes only; use the
// in-process target (or a recorded trace) for full-fidelity
// checkpoints.
type LiveTarget struct {
	// BaseURL is the server under test, e.g. "http://localhost:8080".
	BaseURL string
	// Client defaults to a 5s-timeout client that treats redirects as
	// outcomes, like gaa-attack's mix mode.
	Client *http.Client
	// MaxSleep caps how much real time one Advance may burn (default
	// 100ms) — a low-and-slow campaign advancing simulated hours must
	// not stall a live run for hours.
	MaxSleep time.Duration

	requests int
}

// Do issues the request over the wire.
func (t *LiveTarget) Do(r workload.Request) (Exchange, error) {
	client := t.Client
	if client == nil {
		client = &http.Client{
			Timeout: 5 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
		t.Client = client
	}
	req, err := http.NewRequest(r.Method, t.BaseURL+r.Target, nil)
	if err != nil {
		return Exchange{}, err
	}
	if r.User != "" {
		req.SetBasicAuth(r.User, r.Pass)
	}
	resp, err := client.Do(req)
	if err != nil {
		return Exchange{}, err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	t.requests++
	return Exchange{
		Method: r.Method,
		Target: r.Target,
		IP:     r.ClientIP,
		User:   r.User,
		Class:  classKey(r.Attack),
		Status: resp.StatusCode,
		Body:   string(body),
	}, nil
}

// Advance sleeps min(d, MaxSleep).
func (t *LiveTarget) Advance(d time.Duration) {
	max := t.MaxSleep
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	if d > max {
		d = max
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Requests reports how many live HTTP requests were issued.
func (t *LiveTarget) Requests() int { return t.requests }
