package eacl

import "testing"

func TestGlobCovers(t *testing.T) {
	tests := []struct {
		outer, inner string
		want         bool
	}{
		// Literals.
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"", "", true},
		// Universal pattern.
		{"*", "", true},
		{"*", "anything", true},
		{"*", "*phf*", true},
		{"*", "GET /cgi-bin/*", true},
		{"***", "*", true},
		// The validate.go:107 bug: a glob pattern covering a literal.
		{"GET /cgi-bin/*", "GET /cgi-bin/phf", true},
		{"GET /cgi-bin/*", "GET /cgi-bin/", true},
		{"GET /cgi-bin/*", "GET /index.html", false},
		// Pattern covering pattern.
		{"GET /cgi-bin/*", "GET /cgi-bin/*.cgi", true},
		{"GET *", "GET /cgi-bin/*", true},
		{"*phf*", "*phf*", true},
		{"*phf*", "GET *phf*", true},
		{"*phf*", "*", false},        // inner matches "", outer does not
		{"GET *", "* /index", false}, // inner matches "POST /index"
		{"a*b", "ab", true},
		{"a*b", "axxb", true},
		{"a*b", "a*b", true},
		{"a*b", "a*c*b", true},
		{"ab", "a*b", false}, // inner matches "axb"
		{"a*", "*", false},
		{"*a*", "*ba*c*", true},
		{"*a*", "*b*", false},
		// Empty outer covers nothing but empty.
		{"", "*", false},
		{"", "a", false},
	}
	for _, tt := range tests {
		if got := GlobCovers(tt.outer, tt.inner); got != tt.want {
			t.Errorf("GlobCovers(%q, %q) = %v, want %v", tt.outer, tt.inner, got, tt.want)
		}
	}
}

func TestGlobsOverlap(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"", "", true},
		{"", "*", true},
		{"", "a", false},
		{"*", "anything", true},
		{"GET /a*", "*phf*", true}, // "GET /aphf"
		{"GET *", "POST *", false},
		{"a*", "*b", true}, // "ab"
		{"a*", "b*", false},
		{"*a", "*b", false},
		{"a*c", "ab*", true}, // "abc"
		{"GET /cgi-bin/*", "*phf*", true},
		{"sshd", "apache", false},
	}
	for _, tt := range tests {
		if got := GlobsOverlap(tt.a, tt.b); got != tt.want {
			t.Errorf("GlobsOverlap(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		// Intersection is symmetric.
		if got := GlobsOverlap(tt.b, tt.a); got != tt.want {
			t.Errorf("GlobsOverlap(%q, %q) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestRightCoversAndOverlap(t *testing.T) {
	wide := Right{Sign: Pos, DefAuth: "apache", Value: "GET /cgi-bin/*"}
	narrow := Right{Sign: Neg, DefAuth: "apache", Value: "GET /cgi-bin/phf"}
	other := Right{Sign: Pos, DefAuth: "sshd", Value: "login *"}
	if !RightCovers(wide, narrow) {
		t.Error("wide right should cover narrow right (signs ignored)")
	}
	if RightCovers(narrow, wide) {
		t.Error("narrow right should not cover wide right")
	}
	if !RightsOverlap(wide, narrow) {
		t.Error("covering rights overlap")
	}
	if RightsOverlap(wide, other) {
		t.Error("different authorities should not overlap")
	}
}

// FuzzGlobCovers checks the semantic contract against the matcher:
// whenever outer covers inner, every string inner matches must also be
// matched by outer.
func FuzzGlobCovers(f *testing.F) {
	f.Add("GET /cgi-bin/*", "GET /cgi-bin/phf", "GET /cgi-bin/phf")
	f.Add("*", "*phf*", "xphfy")
	f.Add("a*b", "a*c*b", "acb")
	f.Add("*a*", "*b*", "ab")
	f.Fuzz(func(t *testing.T, outer, inner, s string) {
		covers := GlobCovers(outer, inner)
		if covers && Glob(inner, s) && !Glob(outer, s) {
			t.Fatalf("GlobCovers(%q, %q) but %q matched by inner only", outer, inner, s)
		}
		// A pattern always covers itself and overlaps itself.
		if !GlobCovers(outer, outer) {
			t.Fatalf("GlobCovers(%q, %q) = false (reflexivity)", outer, outer)
		}
		if !GlobsOverlap(outer, outer) {
			t.Fatalf("GlobsOverlap(%q, %q) = false (reflexivity)", outer, outer)
		}
		// Anything both patterns match witnesses their intersection.
		if Glob(outer, s) && Glob(inner, s) && !GlobsOverlap(outer, inner) {
			t.Fatalf("GlobsOverlap(%q, %q) = false but both match %q", outer, inner, s)
		}
		// Coverage implies overlap unless the inner language is empty,
		// which cannot happen in this pattern language.
		if covers && !GlobsOverlap(outer, inner) {
			t.Fatalf("GlobCovers(%q, %q) but no overlap", outer, inner)
		}
	})
}

// TestGlobCoversQuestionMarkLiteral pins a property easy to get wrong
// when porting: this glob language has exactly one metacharacter. '?'
// is an ordinary byte — it appears in query strings ("GET /x?q=1") and
// must match only itself, never "any one character".
func TestGlobCoversQuestionMarkLiteral(t *testing.T) {
	tests := []struct {
		outer, inner string
		want         bool
	}{
		{"?", "?", true},  // literal self-cover
		{"?", "x", false}, // no single-char wildcard semantics
		{"x", "?", false}, // and not symmetric either
		{"*", "?", true},  // star still covers the literal '?'
		{"a?c", "a?c", true},
		{"a?c", "abc", false}, // '?' does not stand for 'b'
		{"a*c", "a?c", true},  // star absorbs the literal '?'
		{"a?c", "a*c", false}, // inner matches "abc", outer does not
		{"GET /x?*", "GET /x?q=1", true},
		{"GET /x?q=1", "GET /x?*", false},
	}
	for _, tt := range tests {
		if got := GlobCovers(tt.outer, tt.inner); got != tt.want {
			t.Errorf("GlobCovers(%q, %q) = %v, want %v", tt.outer, tt.inner, got, tt.want)
		}
		// Matching must agree with coverage on the literal reading.
		if tt.want && !Glob(tt.outer, tt.inner) && tt.inner == collapseNoStar(tt.inner) {
			t.Errorf("Glob(%q, %q) = false but outer covers the literal inner", tt.outer, tt.inner)
		}
	}
	if !Glob("?", "?") || Glob("?", "x") {
		t.Error(`Glob must treat '?' as a literal byte`)
	}
}

// collapseNoStar reports pattern-free strings back unchanged; a helper
// so the agreement check above only fires for literal inners.
func collapseNoStar(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '*' {
			return ""
		}
	}
	return s
}

// TestGlobCoversEmptyEdges pins the empty-pattern boundary: the empty
// glob denotes the language {""}, not the empty language and not "*".
func TestGlobCoversEmptyEdges(t *testing.T) {
	if !Glob("", "") {
		t.Error(`Glob("", "") = false, want true`)
	}
	if Glob("", "x") {
		t.Error(`Glob("", "x") = true, want false`)
	}
	if !GlobCovers("*", "") || !GlobsOverlap("*", "") {
		t.Error(`"*" must cover and overlap the empty pattern`)
	}
	if GlobsOverlap("", "a") {
		t.Error(`"" and "a" have disjoint languages`)
	}
	if !GlobsOverlap("", "*") {
		t.Error(`"" and "*" share the empty string`)
	}
}

// TestRightSetIntersectionWithNegation exercises the policy-validation
// use of the cover DPs: a negative entry shadows positive entries for
// any overlapping right set, because MatchRight ignores signs — the
// intersection of the matched right sets is what matters, not the sign.
func TestRightSetIntersectionWithNegation(t *testing.T) {
	deny := Right{Sign: Neg, DefAuth: "apache", Value: "GET /cgi-bin/*"}
	allow := Right{Sign: Pos, DefAuth: "apache", Value: "GET /cgi-bin/phf?*"}
	disjoint := Right{Sign: Pos, DefAuth: "apache", Value: "GET /static/*"}
	anyAuth := Right{Sign: Neg, DefAuth: "*", Value: "*"}

	if !RightsOverlap(deny, allow) {
		t.Error("neg and pos entries over nested values must overlap")
	}
	if !RightCovers(deny, allow) {
		t.Error("the deny's right set contains the allow's (signs ignored)")
	}
	if RightCovers(allow, deny) {
		t.Error("the narrower allow must not cover the wider deny")
	}
	if RightsOverlap(deny, disjoint) {
		t.Error("disjoint value languages must not overlap")
	}
	// The paper's mandatory system entry "neg_access_right * *" covers
	// and overlaps every right regardless of sign.
	for _, r := range []Right{deny, allow, disjoint} {
		if !RightCovers(anyAuth, r) || !RightsOverlap(anyAuth, r) {
			t.Errorf("* * must cover and overlap %+v", r)
		}
	}
	if RightCovers(anyAuth, Right{DefAuth: "apache"}) != true {
		t.Error("* * covers the empty-value right too")
	}
}
