package eacl

import "testing"

func TestGlobCovers(t *testing.T) {
	tests := []struct {
		outer, inner string
		want         bool
	}{
		// Literals.
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"", "", true},
		// Universal pattern.
		{"*", "", true},
		{"*", "anything", true},
		{"*", "*phf*", true},
		{"*", "GET /cgi-bin/*", true},
		{"***", "*", true},
		// The validate.go:107 bug: a glob pattern covering a literal.
		{"GET /cgi-bin/*", "GET /cgi-bin/phf", true},
		{"GET /cgi-bin/*", "GET /cgi-bin/", true},
		{"GET /cgi-bin/*", "GET /index.html", false},
		// Pattern covering pattern.
		{"GET /cgi-bin/*", "GET /cgi-bin/*.cgi", true},
		{"GET *", "GET /cgi-bin/*", true},
		{"*phf*", "*phf*", true},
		{"*phf*", "GET *phf*", true},
		{"*phf*", "*", false},        // inner matches "", outer does not
		{"GET *", "* /index", false}, // inner matches "POST /index"
		{"a*b", "ab", true},
		{"a*b", "axxb", true},
		{"a*b", "a*b", true},
		{"a*b", "a*c*b", true},
		{"ab", "a*b", false}, // inner matches "axb"
		{"a*", "*", false},
		{"*a*", "*ba*c*", true},
		{"*a*", "*b*", false},
		// Empty outer covers nothing but empty.
		{"", "*", false},
		{"", "a", false},
	}
	for _, tt := range tests {
		if got := GlobCovers(tt.outer, tt.inner); got != tt.want {
			t.Errorf("GlobCovers(%q, %q) = %v, want %v", tt.outer, tt.inner, got, tt.want)
		}
	}
}

func TestGlobsOverlap(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"", "", true},
		{"", "*", true},
		{"", "a", false},
		{"*", "anything", true},
		{"GET /a*", "*phf*", true}, // "GET /aphf"
		{"GET *", "POST *", false},
		{"a*", "*b", true}, // "ab"
		{"a*", "b*", false},
		{"*a", "*b", false},
		{"a*c", "ab*", true}, // "abc"
		{"GET /cgi-bin/*", "*phf*", true},
		{"sshd", "apache", false},
	}
	for _, tt := range tests {
		if got := GlobsOverlap(tt.a, tt.b); got != tt.want {
			t.Errorf("GlobsOverlap(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		// Intersection is symmetric.
		if got := GlobsOverlap(tt.b, tt.a); got != tt.want {
			t.Errorf("GlobsOverlap(%q, %q) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestRightCoversAndOverlap(t *testing.T) {
	wide := Right{Sign: Pos, DefAuth: "apache", Value: "GET /cgi-bin/*"}
	narrow := Right{Sign: Neg, DefAuth: "apache", Value: "GET /cgi-bin/phf"}
	other := Right{Sign: Pos, DefAuth: "sshd", Value: "login *"}
	if !RightCovers(wide, narrow) {
		t.Error("wide right should cover narrow right (signs ignored)")
	}
	if RightCovers(narrow, wide) {
		t.Error("narrow right should not cover wide right")
	}
	if !RightsOverlap(wide, narrow) {
		t.Error("covering rights overlap")
	}
	if RightsOverlap(wide, other) {
		t.Error("different authorities should not overlap")
	}
}

// FuzzGlobCovers checks the semantic contract against the matcher:
// whenever outer covers inner, every string inner matches must also be
// matched by outer.
func FuzzGlobCovers(f *testing.F) {
	f.Add("GET /cgi-bin/*", "GET /cgi-bin/phf", "GET /cgi-bin/phf")
	f.Add("*", "*phf*", "xphfy")
	f.Add("a*b", "a*c*b", "acb")
	f.Add("*a*", "*b*", "ab")
	f.Fuzz(func(t *testing.T, outer, inner, s string) {
		covers := GlobCovers(outer, inner)
		if covers && Glob(inner, s) && !Glob(outer, s) {
			t.Fatalf("GlobCovers(%q, %q) but %q matched by inner only", outer, inner, s)
		}
		// A pattern always covers itself and overlaps itself.
		if !GlobCovers(outer, outer) {
			t.Fatalf("GlobCovers(%q, %q) = false (reflexivity)", outer, outer)
		}
		if !GlobsOverlap(outer, outer) {
			t.Fatalf("GlobsOverlap(%q, %q) = false (reflexivity)", outer, outer)
		}
		// Anything both patterns match witnesses their intersection.
		if Glob(outer, s) && Glob(inner, s) && !GlobsOverlap(outer, inner) {
			t.Fatalf("GlobsOverlap(%q, %q) = false but both match %q", outer, inner, s)
		}
		// Coverage implies overlap unless the inner language is empty,
		// which cannot happen in this pattern language.
		if covers && !GlobsOverlap(outer, inner) {
			t.Fatalf("GlobCovers(%q, %q) but no overlap", outer, inner)
		}
	})
}
