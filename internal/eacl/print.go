package eacl

import "strings"

// String renders the EACL in canonical concrete syntax. Parsing the
// output yields an equivalent EACL (round-trip property, tested).
func (e *EACL) String() string {
	var b strings.Builder
	if e.ModeSet {
		b.WriteString("eacl_mode ")
		b.WriteString(e.Mode.String())
		b.WriteByte('\n')
	}
	for i := range e.Entries {
		en := &e.Entries[i]
		b.WriteString(en.Right.String())
		b.WriteByte('\n')
		for _, c := range en.Conditions {
			b.WriteString(c.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
