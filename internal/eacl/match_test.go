package eacl

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestGlob(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"*phf*", "/cgi-bin/phf?Qalias=x", true},
		{"*phf*", "/cgi-bin/php", false},
		{"*test-cgi*", "GET /cgi-bin/test-cgi HTTP/1.0", true},
		{"GET /cgi-bin/*", "GET /cgi-bin/phf", true},
		{"GET /cgi-bin/*", "POST /cgi-bin/phf", false},
		{"*%*", "/scripts/..%c0%af../winnt", true},
		{"*%*", "/index.html", false},
		{"a*b*c", "a__b__c", true},
		{"a*b*c", "acb", false},
		{"a*b*c", "abc", true},
		{"**", "x", true},
		{"*a", "bba", true},
		{"*a", "ab", false},
		{"*///////*", "GET ///////////", true},
	}
	for _, tt := range tests {
		if got := Glob(tt.pattern, tt.s); got != tt.want {
			t.Errorf("Glob(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

// TestGlobMatchesRegexpSemantics cross-checks the backtracking matcher
// against a reference implementation built on regexp.
func TestGlobMatchesRegexpSemantics(t *testing.T) {
	refMatch := func(pattern, s string) bool {
		var re strings.Builder
		re.WriteString("^")
		for i, part := range strings.Split(pattern, "*") {
			if i > 0 {
				re.WriteString(".*")
			}
			re.WriteString(regexp.QuoteMeta(part))
		}
		re.WriteString("$")
		return regexp.MustCompile(re.String()).MatchString(s)
	}
	rng := rand.New(rand.NewSource(7))
	alphabet := "ab*"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 5000; i++ {
		pattern := randStr(rng.Intn(8))
		s := strings.ReplaceAll(randStr(rng.Intn(12)), "*", "c")
		if got, want := Glob(pattern, s), refMatch(pattern, s); got != want {
			t.Fatalf("Glob(%q, %q) = %v, reference = %v", pattern, s, got, want)
		}
	}
}

// TestGlobProperties uses testing/quick for invariants of the matcher.
func TestGlobProperties(t *testing.T) {
	// Every string matches itself once '*' is removed from it.
	selfMatch := func(s string) bool {
		clean := strings.ReplaceAll(s, "*", "")
		return Glob(clean, clean)
	}
	if err := quick.Check(selfMatch, nil); err != nil {
		t.Errorf("self-match property: %v", err)
	}
	// "*" matches everything.
	starMatchesAll := func(s string) bool { return Glob("*", s) }
	if err := quick.Check(starMatchesAll, nil); err != nil {
		t.Errorf("star property: %v", err)
	}
	// Wrapping any literal in stars matches any string containing it.
	containment := func(prefix, needle, suffix string) bool {
		if strings.Contains(needle, "*") {
			return true // skip patterns with metacharacters
		}
		return Glob("*"+needle+"*", prefix+needle+suffix)
	}
	if err := quick.Check(containment, nil); err != nil {
		t.Errorf("containment property: %v", err)
	}
}

func TestMatchRight(t *testing.T) {
	tests := []struct {
		name  string
		entry Right
		req   Right
		want  bool
	}{
		{"both wildcards", Right{Neg, "*", "*"}, Right{Pos, "apache", "GET /"}, true},
		{"authority exact", Right{Pos, "apache", "*"}, Right{Pos, "apache", "GET /x"}, true},
		{"authority mismatch", Right{Pos, "apache", "*"}, Right{Pos, "sshd", "login"}, false},
		{"value glob", Right{Pos, "apache", "GET /cgi-bin/*"}, Right{Pos, "apache", "GET /cgi-bin/phf"}, true},
		{"value mismatch", Right{Pos, "apache", "GET /cgi-bin/*"}, Right{Pos, "apache", "GET /index.html"}, false},
		{"sign ignored", Right{Neg, "apache", "*"}, Right{Pos, "apache", "GET /"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MatchRight(tt.entry, tt.req); got != tt.want {
				t.Errorf("MatchRight(%v, %v) = %v, want %v", tt.entry, tt.req, got, tt.want)
			}
		})
	}
}

func BenchmarkGlob(b *testing.B) {
	const pattern = "*phf*"
	const s = "GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Glob(pattern, s) {
			b.Fatal("unexpected mismatch")
		}
	}
}
