// Package eacl implements the Extended Access Control List (EACL) policy
// language of Ryutov et al., "Integrated Access Control and Intrusion
// Detection for Web Servers" (ICDCS 2003).
//
// An EACL is an ordered list of entries. Each entry carries a positive or
// negative access right and up to four ordered condition blocks:
//
//   - pre-conditions: what must be true for the entry to grant or deny
//   - request-result conditions: actions activated once the decision is
//     known (audit, notification), filtered by on:success / on:failure
//   - mid-conditions: what must hold while the requested operation runs
//   - post-conditions: actions activated after the operation completes
//
// The package provides the data model, a parser for the line-oriented
// concrete syntax (Appendix of the paper), a canonical printer, wildcard
// matching of access rights, and a static validator. Evaluation semantics
// live in package gaa.
package eacl

import (
	"fmt"
	"strings"
)

// CompositionMode describes how local policies compose with a system-wide
// policy (paper section 2.1). The numeric values match the paper's
// concrete syntax: composition_mode ::= "0" | "1" | "2".
type CompositionMode int

const (
	// ModeExpand broadens local rights: access is allowed if either the
	// system-wide or the local policy allows it (disjunction).
	ModeExpand CompositionMode = iota
	// ModeNarrow makes the system-wide policy mandatory: both the
	// system-wide and the local policy must permit (conjunction).
	ModeNarrow
	// ModeStop applies the system-wide policy alone, ignoring local
	// policies entirely.
	ModeStop
)

// String returns the symbolic name used in the concrete syntax.
func (m CompositionMode) String() string {
	switch m {
	case ModeExpand:
		return "expand"
	case ModeNarrow:
		return "narrow"
	case ModeStop:
		return "stop"
	default:
		return fmt.Sprintf("CompositionMode(%d)", int(m))
	}
}

// ParseCompositionMode accepts either the numeric form of the paper's
// grammar ("0", "1", "2") or the symbolic names used in its examples.
func ParseCompositionMode(s string) (CompositionMode, error) {
	switch strings.ToLower(s) {
	case "0", "expand":
		return ModeExpand, nil
	case "1", "narrow":
		return ModeNarrow, nil
	case "2", "stop":
		return ModeStop, nil
	default:
		return 0, fmt.Errorf("unknown composition mode %q", s)
	}
}

// Sign distinguishes positive from negative access rights.
type Sign int

const (
	// Pos marks a right that is granted when the entry applies.
	Pos Sign = iota + 1
	// Neg marks a right that is denied when the entry applies.
	Neg
)

// String returns the concrete-syntax keyword for the sign.
func (s Sign) String() string {
	switch s {
	case Pos:
		return "pos_access_right"
	case Neg:
		return "neg_access_right"
	default:
		return fmt.Sprintf("Sign(%d)", int(s))
	}
}

// Right is an access right: a (defining authority, value) pair with a
// sign. The defining authority names who defined the right ("apache",
// "sshd", "*"); the value names the operation, e.g. "GET /cgi-bin/*".
type Right struct {
	Sign    Sign
	DefAuth string
	Value   string
}

// String renders the right in concrete syntax.
func (r Right) String() string {
	return fmt.Sprintf("%s %s %s", r.Sign, r.DefAuth, r.Value)
}

// Block identifies which condition block a condition belongs to.
type Block int

const (
	// BlockPre conditions gate the authorization decision.
	BlockPre Block = iota + 1
	// BlockRequestResult conditions run once the decision is known.
	BlockRequestResult
	// BlockMid conditions must hold during operation execution.
	BlockMid
	// BlockPost conditions run after the operation completes.
	BlockPost
)

// String returns the concrete-syntax prefix for the block.
func (b Block) String() string {
	switch b {
	case BlockPre:
		return "pre_cond"
	case BlockRequestResult:
		return "rr_cond"
	case BlockMid:
		return "mid_cond"
	case BlockPost:
		return "post_cond"
	default:
		return fmt.Sprintf("Block(%d)", int(b))
	}
}

// Condition is one condition: condition ::= cond_type def_auth value.
// Type is the suffix after the block prefix (e.g. "system_threat_level"
// in "pre_cond_system_threat_level"), DefAuth names the authority whose
// evaluator interprets the value, and Value is the remainder of the line.
type Condition struct {
	Block   Block
	Type    string
	DefAuth string
	Value   string
	// Line is the 1-based source line, 0 for programmatic conditions.
	Line int
}

// String renders the condition in concrete syntax.
func (c Condition) String() string {
	if c.Value == "" {
		return fmt.Sprintf("%s_%s %s", c.Block, c.Type, c.DefAuth)
	}
	return fmt.Sprintf("%s_%s %s %s", c.Block, c.Type, c.DefAuth, c.Value)
}

// Entry is one EACL entry: a right plus its ordered conditions. The
// order of Conditions is significant: conditions are evaluated in the
// order they appear within their block (paper section 2).
type Entry struct {
	Right      Right
	Conditions []Condition
	// Line is the 1-based source line of the right, 0 if programmatic.
	Line int
}

// Block returns the conditions of the given block, in source order.
func (e *Entry) Block(b Block) []Condition {
	var out []Condition
	for _, c := range e.Conditions {
		if c.Block == b {
			out = append(out, c)
		}
	}
	return out
}

// EACL is an ordered set of disjunctive entries with an optional
// composition mode. ModeSet records whether the source specified a mode;
// only system-wide policies meaningfully carry one.
type EACL struct {
	Mode    CompositionMode
	ModeSet bool
	Entries []Entry
	// Source describes where the EACL came from (file name, "inline").
	Source string
}

// Clone returns a deep copy, so callers may mutate the result without
// affecting cached policies.
func (e *EACL) Clone() *EACL {
	if e == nil {
		return nil
	}
	out := &EACL{Mode: e.Mode, ModeSet: e.ModeSet, Source: e.Source}
	out.Entries = make([]Entry, len(e.Entries))
	for i, en := range e.Entries {
		out.Entries[i] = Entry{Right: en.Right, Line: en.Line}
		out.Entries[i].Conditions = make([]Condition, len(en.Conditions))
		copy(out.Entries[i].Conditions, en.Conditions)
	}
	return out
}
