package eacl

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ParseError reports a syntax error with its source position.
type ParseError struct {
	Source string
	Line   int
	Msg    string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Source, e.Line, e.Msg)
}

// Parse reads an EACL in the line-oriented concrete syntax:
//
//	# comment (also trailing, after whitespace + '#')
//	eacl_mode narrow            (or: eacl mode 1)
//	pos_access_right apache *
//	pre_cond_system_threat_level local >low
//	pre_cond_accessid_USER apache *
//	neg_access_right * *
//	pre_cond_regex gnu *phf* *test-cgi*
//	rr_cond_notify local on:failure/sysadmin/info:cgiexploit
//
// Each pos_access_right / neg_access_right line opens a new entry; the
// condition lines that follow belong to that entry, in order. A single
// optional eacl_mode line may appear before the first entry. Source is
// used in error messages and recorded on the result.
func Parse(r io.Reader, source string) (*EACL, error) {
	out := &EACL{Source: source}
	var cur *Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		keyword := fields[0]

		// Accept both "eacl_mode <m>" and the paper's "eacl mode <m>".
		if keyword == "eacl" && len(fields) >= 2 && fields[1] == "mode" {
			keyword = "eacl_mode"
			fields = append([]string{"eacl_mode"}, fields[2:]...)
		}

		switch {
		case keyword == "eacl_mode":
			if out.ModeSet {
				return nil, &ParseError{source, lineNo, "duplicate eacl_mode"}
			}
			if len(out.Entries) > 0 || cur != nil {
				return nil, &ParseError{source, lineNo, "eacl_mode must precede all entries"}
			}
			if len(fields) != 2 {
				return nil, &ParseError{source, lineNo, "eacl_mode wants exactly one argument"}
			}
			m, err := ParseCompositionMode(fields[1])
			if err != nil {
				return nil, &ParseError{source, lineNo, err.Error()}
			}
			out.Mode = m
			out.ModeSet = true

		case keyword == "pos_access_right" || keyword == "neg_access_right":
			if len(fields) < 3 {
				return nil, &ParseError{source, lineNo, keyword + " wants: <def_auth> <value>"}
			}
			sign := Pos
			if keyword == "neg_access_right" {
				sign = Neg
			}
			if cur != nil {
				out.Entries = append(out.Entries, *cur)
			}
			cur = &Entry{
				Right: Right{
					Sign:    sign,
					DefAuth: fields[1],
					Value:   strings.Join(fields[2:], " "),
				},
				Line: lineNo,
			}

		default:
			block, condType, ok := splitConditionKeyword(keyword)
			if !ok {
				return nil, &ParseError{source, lineNo, fmt.Sprintf("unknown keyword %q", keyword)}
			}
			if cur == nil {
				return nil, &ParseError{source, lineNo, "condition before any access right"}
			}
			if len(fields) < 2 {
				return nil, &ParseError{source, lineNo, keyword + " wants: <def_auth> [value]"}
			}
			cur.Conditions = append(cur.Conditions, Condition{
				Block:   block,
				Type:    condType,
				DefAuth: fields[1],
				Value:   strings.Join(fields[2:], " "),
				Line:    lineNo,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read %s: %w", source, err)
	}
	if cur != nil {
		out.Entries = append(out.Entries, *cur)
	}
	return out, nil
}

// ParseString parses an EACL from a string. Source defaults to "inline".
func ParseString(s string) (*EACL, error) {
	return Parse(strings.NewReader(s), "inline")
}

// ParseFile parses the EACL stored in path.
func ParseFile(path string) (*EACL, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open policy: %w", err)
	}
	defer f.Close()
	return Parse(f, path)
}

// splitConditionKeyword splits e.g. "pre_cond_system_threat_level" into
// (BlockPre, "system_threat_level"). A bare "pre_cond" (no type suffix)
// is rejected.
func splitConditionKeyword(kw string) (Block, string, bool) {
	for _, b := range []Block{BlockPre, BlockRequestResult, BlockMid, BlockPost} {
		prefix := b.String() + "_"
		if rest, ok := strings.CutPrefix(kw, prefix); ok && rest != "" {
			return b, rest, true
		}
	}
	return 0, "", false
}

// stripComment removes '#' comments and surrounding whitespace. A '#'
// starts a comment at the beginning of the line or when preceded by
// whitespace, so values like "a#b" survive.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] != '#' {
			continue
		}
		if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
			line = line[:i]
			break
		}
	}
	return strings.TrimSpace(line)
}
