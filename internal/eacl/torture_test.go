package eacl

import (
	"fmt"
	"strings"
	"testing"
)

// TestParseLargePolicy exercises the scanner buffer limits and
// round-trips a policy far larger than anything realistic.
func TestParseLargePolicy(t *testing.T) {
	var b strings.Builder
	const entries = 2000
	for i := 0; i < entries; i++ {
		fmt.Fprintf(&b, "neg_access_right apache GET /app%d/*\n", i)
		fmt.Fprintf(&b, "pre_cond_regex gnu *sig-%d*\n", i)
		fmt.Fprintf(&b, "rr_cond_audit local on:failure/info:tag-%d\n", i)
	}
	b.WriteString("pos_access_right apache *\n")

	e, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(e.Entries) != entries+1 {
		t.Fatalf("entries = %d, want %d", len(e.Entries), entries+1)
	}
	again, err := ParseString(e.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(again.Entries) != len(e.Entries) {
		t.Errorf("round-trip entries = %d", len(again.Entries))
	}
}

// TestParseLongLine: condition values up to the scanner's 1 MiB line
// limit survive; beyond it the parser errors rather than truncating.
func TestParseLongLine(t *testing.T) {
	longValue := strings.Repeat("x", 500_000)
	e, err := ParseString("pos_access_right apache *\npre_cond_regex gnu *" + longValue + "*\n")
	if err != nil {
		t.Fatalf("500KB line: %v", err)
	}
	if got := len(e.Entries[0].Conditions[0].Value); got != len(longValue)+2 {
		t.Errorf("value length = %d", got)
	}

	tooLong := strings.Repeat("y", 2_000_000)
	if _, err := ParseString("pos_access_right apache " + tooLong + "\n"); err == nil {
		t.Error("2MB line should exceed the scanner buffer and error")
	}
}

// TestParseManyConditionsPerEntry keeps per-entry ordering intact at
// scale.
func TestParseManyConditionsPerEntry(t *testing.T) {
	var b strings.Builder
	b.WriteString("pos_access_right apache *\n")
	const n = 500
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "pre_cond_regex gnu *c%04d*\n", i)
	}
	e, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	conds := e.Entries[0].Conditions
	if len(conds) != n {
		t.Fatalf("conditions = %d", len(conds))
	}
	for i, c := range conds {
		want := fmt.Sprintf("*c%04d*", i)
		if c.Value != want {
			t.Fatalf("condition %d = %q, want %q (order lost)", i, c.Value, want)
		}
	}
}

// TestGlobPathologicalBacktracking: the matcher must stay fast on
// star-heavy patterns against repetitive subjects (quadratic, not
// exponential).
func TestGlobPathologicalBacktracking(t *testing.T) {
	pattern := strings.Repeat("*a", 20) + "*b"
	subject := strings.Repeat("a", 2000)
	if Glob(pattern, subject) {
		t.Error("pattern should not match")
	}
	if !Glob(strings.Repeat("*a", 20)+"*", subject) {
		t.Error("pattern should match")
	}
}
