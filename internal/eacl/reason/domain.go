package reason

import (
	"context"
	"net"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// The abstract domain is a finite grid of concrete candidate values,
// one axis per request dimension the registered evaluators consult.
// Every candidate is synthesized from the policy's own text (glob
// witnesses, CIDR interior points, time-window boundaries, comparison
// bounds), so per-world truth is computed exactly — by running the real
// evaluators against the candidate — and the only incompleteness is
// coverage: behaviours reachable solely outside the candidate grid
// (e.g. a request line only an "re:" regular expression accepts) are
// not represented, and the engine tracks that (see DESIGN.md §5.2).

// Dimension caps keep the world grid bounded; exceeding one sets
// Domain.Truncated, which downgrades universal claims to "unknown".
const (
	maxRightCands = 16
	maxURICands   = 16
	maxIPCands    = 8
	maxUserCands  = 6
	maxTimeCands  = 8
	maxIntCands   = 5
	maxGroupDims  = 4
	maxIntDims    = 4
)

// DefaultMaxWorlds bounds the world grid when Options.MaxWorlds is 0.
const DefaultMaxWorlds = 20000

// baseTime is the instant worlds default to: a Monday noon, fixed so
// answers and witnesses are reproducible. Time-window conditions add
// boundary instants around it.
var baseTime = time.Date(2026, time.January, 5, 12, 0, 0, 0, time.UTC)

// outsideIPs is the pool the domain draws "matches nothing" client
// addresses from (RFC 5737 / RFC 1918 test ranges).
var outsideIPs = []string{"203.0.113.77", "198.51.100.23", "192.0.2.19", "10.123.45.67"}

// intChoice is one candidate for an integer request parameter: a value,
// or the parameter being absent from the request.
type intChoice struct {
	val     int64
	present bool
}

// domain is the candidate grid derived from one composed policy.
type domain struct {
	rights  []eacl.Right // requested-right candidates (sign always Pos)
	threats []ids.Level
	users   []string // "" = anonymous
	groups  []string // group names; membership is a per-name bit
	ips     []string
	uris    []string
	times   []time.Time
	intDims []string      // parameter names for expr/quota conditions
	intCand [][]intChoice // candidates per intDims entry

	values     map[string]string // '@name' runtime values (Options.Values)
	truncated  bool
	hasRegex   bool // some pre_cond_regex carries an "re:" pattern
	noCleanURI bool // no candidate URI dodges every URI pattern
}

// incomplete reports whether the grid is known not to cover the
// policy's behaviours, downgrading universal claims to "unknown".
func (d *domain) incomplete() bool { return d.truncated || d.noCleanURI }

// world is one point of the grid.
type world struct {
	right  eacl.Right
	threat ids.Level
	user   string
	member []bool // parallel to domain.groups
	ip     string
	uri    string
	at     time.Time
	ints   []intChoice // parallel to domain.intDims
}

// buildDomain scans every entry of the composed EACL list and collects
// candidates per dimension.
func buildDomain(eacls []*eacl.EACL, opts Options) *domain {
	d := &domain{
		threats: []ids.Level{ids.Low, ids.Medium, ids.High},
		values:  opts.Values,
	}
	var (
		rightSet    = map[eacl.Right]bool{}
		userSet     = map[string]bool{}
		groupSet    = map[string]bool{}
		ipSet       = map[string]bool{}
		uriSet      = map[string]bool{}
		timeSet     = map[time.Time]bool{}
		intSet      = map[string]map[int64]bool{}
		patterns    []eacl.Right // entry right patterns, for intersections
		uriPatterns []string     // every regex pattern, for clean-URI vetting
	)
	addRight := func(r eacl.Right) {
		r.Sign = eacl.Pos
		if !rightSet[r] {
			rightSet[r] = true
		}
	}
	for _, e := range eacls {
		for i := range e.Entries {
			en := &e.Entries[i]
			patterns = append(patterns, en.Right)
			addRight(eacl.Right{DefAuth: globWitness(en.Right.DefAuth), Value: globWitness(en.Right.Value)})
			for _, c := range en.Conditions {
				if c.Block != eacl.BlockPre {
					continue
				}
				val := c.Value
				if conditions.HasValueRef(val) {
					resolved, ok := resolveRefs(val, d.values)
					if !ok {
						continue // stays MAYBE at run time; no candidates
					}
					val = resolved
				}
				switch c.Type {
				case "accessid_USER":
					for _, p := range strings.Fields(val) {
						w := globWitness(p)
						if w == "" {
							w = "user" // "*" needs a non-empty witness to count as authenticated
						}
						userSet[w] = true
					}
				case "accessid_GROUP":
					if g := strings.TrimSpace(val); g != "" {
						groupSet[g] = true
					}
				case "accessid_HOST":
					for _, p := range strings.Fields(val) {
						ipSet[globWitness(p)] = true
					}
				case "location":
					for _, p := range strings.Fields(val) {
						if strings.Contains(p, "/") {
							if ip, ipnet, err := net.ParseCIDR(p); err == nil {
								inside := ip.Mask(ipnet.Mask)
								ipSet[inside.String()] = true
							}
						} else {
							ipSet[globWitness(p)] = true
						}
					}
				case "regex", "signature":
					for _, p := range strings.Fields(val) {
						uriPatterns = append(uriPatterns, p)
						if strings.HasPrefix(p, "re:") {
							d.hasRegex = true
							continue
						}
						uriSet[globWitness(p)] = true
					}
				case "time_window":
					if w, err := conditions.ParseTimeWindowSpec(val); err == nil {
						for _, at := range windowInstants(w) {
							timeSet[at] = true
						}
					}
				case "expr", "quota":
					left, _, right, err := conditions.SplitComparison(val)
					if err != nil || left == "" {
						continue
					}
					k, err := strconv.ParseInt(right, 10, 64)
					if err != nil {
						continue
					}
					if intSet[left] == nil {
						intSet[left] = map[int64]bool{}
					}
					intSet[left][k-1] = true
					intSet[left][k] = true
					intSet[left][k+1] = true
				}
			}
		}
	}
	// Query rights may themselves be glob patterns: their witnesses join
	// the grid and they participate in the intersection pass below, so a
	// query pattern can exercise entries its plain witness would miss.
	for _, r := range opts.ExtraRights {
		patterns = append(patterns, r)
		addRight(eacl.Right{DefAuth: globWitness(r.DefAuth), Value: globWitness(r.Value)})
	}
	// Pairwise intersection witnesses let one requested right exercise
	// two entries whose patterns overlap without either's own witness
	// matching both (e.g. "*phf*" vs "GET *" -> "GET phf").
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			da, okA := globIntersectWitness(patterns[i].DefAuth, patterns[j].DefAuth)
			va, okV := globIntersectWitness(patterns[i].Value, patterns[j].Value)
			if okA && okV {
				addRight(eacl.Right{DefAuth: da, Value: va})
			}
		}
	}
	d.rights = capSlice(sortedRights(rightSet), maxRightCands, &d.truncated)
	d.users = append([]string{""}, capSlice(sortedKeys(userSet), maxUserCands-1, &d.truncated)...)
	d.groups = capSlice(sortedKeys(groupSet), maxGroupDims, &d.truncated)
	// An address outside every listed range/pattern keeps the "no
	// location matches" world representable.
	d.ips = capSlice(sortedKeys(ipSet), maxIPCands-1, &d.truncated)
	d.ips = append(d.ips, pickOutsideIP(d.ips))
	// A "clean" URI no pattern matches keeps the request-passes-no-
	// signature worlds representable — the URI analogue of the outside
	// IP. Candidates are vetted against every pattern, including
	// compiled "re:" regexes; when the policy's patterns cover the whole
	// pool the grid is incomplete and universal claims degrade.
	d.uris = capSlice(sortedKeys(uriSet), maxURICands-1, &d.truncated)
	if clean, ok := cleanURI(uriPatterns); ok {
		d.uris = append(d.uris, clean)
	} else {
		d.noCleanURI = true
	}
	d.times = capSlice(sortedTimes(timeSet), maxTimeCands-1, &d.truncated)
	d.times = append(d.times, baseTime)
	intNames := capSlice(sortedKeys(keysOf(intSet)), maxIntDims, &d.truncated)
	d.intDims = intNames
	for _, name := range intNames {
		vals := sortedInts(intSet[name])
		if len(vals) > maxIntCands-1 {
			vals = vals[:maxIntCands-1]
			d.truncated = true
		}
		cands := []intChoice{{present: false}}
		for _, v := range vals {
			cands = append(cands, intChoice{val: v, present: true})
		}
		d.intCand = append(d.intCand, cands)
	}
	if len(d.rights) == 0 {
		d.rights = []eacl.Right{{DefAuth: "apache", Value: "GET /"}}
	}
	return d
}

// worldCount returns the grid size (before the MaxWorlds cap).
func (d *domain) worldCount() int {
	n := len(d.rights) * len(d.threats) * len(d.users) * len(d.ips) * len(d.uris) * len(d.times)
	n *= 1 << len(d.groups)
	for _, c := range d.intCand {
		n *= len(c)
	}
	return n
}

// worlds enumerates the grid in a fixed order, stopping at max and
// recording truncation.
func (d *domain) worlds(max int) []world {
	var out []world
	count := d.worldCount()
	if count > max {
		d.truncated = true
	}
	for ri := range d.rights {
		for ti := range d.threats {
			for ui := range d.users {
				for gi := 0; gi < 1<<len(d.groups); gi++ {
					for ii := range d.ips {
						for qi := range d.uris {
							for ci := range d.times {
								for _, ints := range d.intCombos() {
									if len(out) >= max {
										return out
									}
									member := make([]bool, len(d.groups))
									for b := range member {
										member[b] = gi&(1<<b) != 0
									}
									out = append(out, world{
										right:  d.rights[ri],
										threat: d.threats[ti],
										user:   d.users[ui],
										member: member,
										ip:     d.ips[ii],
										uri:    d.uris[qi],
										at:     d.times[ci],
										ints:   ints,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// intCombos enumerates the cross product of the integer dimensions.
func (d *domain) intCombos() [][]intChoice {
	combos := [][]intChoice{nil}
	for _, cands := range d.intCand {
		var next [][]intChoice
		for _, base := range combos {
			for _, c := range cands {
				row := append(append([]intChoice{}, base...), c)
				next = append(next, row)
			}
		}
		combos = next
	}
	return combos
}

// worldEnv is the concrete realization of one world: a frozen clock,
// an IDS manager pinned at the world's threat level, a group store
// holding exactly the world's memberships, and the synthesized request.
// Two APIs share those deps: apiI evaluates on the interpreted path,
// apiC on the compiled engine (when it engages).
type worldEnv struct {
	apiI, apiC *gaa.API
	req        *gaa.Request
}

// ActionStubNames is the response-action vocabulary stubbed to YES
// during analysis — evaluation must stay pure, but the types have to
// be "registered" so request-result blocks don't degrade to MAYBE.
// cmd/eaclint registers the same list.
var ActionStubNames = []string{"notify", "update_log", "audit", "set_threat_level", "block_ip", "count"}

func stubAction(context.Context, eacl.Condition, *gaa.Request) gaa.Outcome {
	return gaa.MetOutcome(gaa.ClassAction, "stubbed for analysis")
}

// env builds the world's evaluation environment.
func (d *domain) env(w *world) *worldEnv {
	mgr := ids.NewManager(w.threat)
	store := groups.NewStore()
	key := w.user
	if key == "" {
		key = w.ip
	}
	for gi, g := range d.groups {
		if w.member[gi] {
			store.Add(g, key)
		}
	}
	deps := conditions.Deps{Threat: mgr, Groups: store}
	vals := gaa.NewValues()
	for k, v := range d.values {
		vals.Set(k, v)
	}
	at := w.at
	mk := func(compiled bool) *gaa.API {
		opts := []gaa.Option{
			gaa.WithClock(func() time.Time { return at }),
			gaa.WithValues(vals),
		}
		if !compiled {
			opts = append(opts, gaa.WithCompiledEngine(false))
		}
		api := gaa.New(opts...)
		conditions.Register(api, deps)
		for _, name := range ActionStubNames {
			api.RegisterFunc(name, gaa.AuthorityAny, stubAction)
		}
		return api
	}
	params := gaa.ParamList{
		{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: w.ip},
		{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: w.uri},
	}
	if w.user != "" {
		params = append(params, gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: w.user})
	}
	for i, c := range w.ints {
		if c.present {
			params = append(params, gaa.Param{
				Type: d.intDims[i], Authority: gaa.AuthorityAny,
				Value: strconv.FormatInt(c.val, 10),
			})
		}
	}
	req := &gaa.Request{
		Rights: []eacl.Right{w.right},
		Params: params,
		Time:   at,
	}
	return &worldEnv{apiI: mk(false), apiC: mk(true), req: req}
}

// windowInstants derives boundary candidates from a time window: one
// instant just inside the start, one just before it (outside), and one
// at the exclusive end, each on an active weekday when one exists; plus
// an instant on an inactive weekday when the window excludes days.
func windowInstants(w conditions.TimeWindow) []time.Time {
	var out []time.Time
	onDelta, offDelta := -1, -1
	for delta := 0; delta < 7; delta++ {
		d := baseTime.AddDate(0, 0, delta)
		if w.Days[d.Weekday()] && onDelta < 0 {
			onDelta = delta
		}
		if !w.Days[d.Weekday()] && offDelta < 0 {
			offDelta = delta
		}
	}
	at := func(dayDelta int, minute int) time.Time {
		day := baseTime.AddDate(0, 0, dayDelta)
		return time.Date(day.Year(), day.Month(), day.Day(), 0, 0, 0, 0, time.UTC).
			Add(time.Duration(minute) * time.Minute)
	}
	if onDelta >= 0 {
		out = append(out, at(onDelta, w.Start))
		out = append(out, at(onDelta, (w.Start+24*60-1)%(24*60))) // minute before start
		out = append(out, at(onDelta, w.End%(24*60)))             // first excluded minute (non-wrapping)
	}
	if offDelta >= 0 {
		out = append(out, at(offDelta, w.Start))
	}
	return out
}

// resolveRefs substitutes '@name' tokens from the values map,
// reporting false when a reference is missing — mirroring the engine's
// "unresolved reference means MAYBE" rule for candidate extraction.
func resolveRefs(value string, values map[string]string) (string, bool) {
	fields := strings.Fields(value)
	for i, f := range fields {
		name := ""
		if cut, ok := strings.CutPrefix(f, "@"); ok {
			name = cut
			fields[i] = ""
		} else if j := strings.Index(f, "@"); j > 0 && strings.ContainsAny(f[j-1:j], "=<>!") {
			name = f[j+1:]
			fields[i] = f[:j]
		} else {
			continue
		}
		v, ok := values[name]
		if !ok {
			return "", false
		}
		fields[i] += v
	}
	return strings.Join(fields, " "), true
}

// cleanURIPool holds request-line candidates tried in order; the first
// one no policy pattern matches becomes the clean URI.
var cleanURIPool = []string{"GET /index.html", "/nomatch", "HEAD /healthz", "zz"}

// cleanURI returns a request line matched by none of the patterns.
func cleanURI(patterns []string) (string, bool) {
	for _, cand := range cleanURIPool {
		clean := true
		for _, p := range patterns {
			if matchURIPattern(p, cand) {
				clean = false
				break
			}
		}
		if clean {
			return cand, true
		}
	}
	return "", false
}

// matchURIPattern mirrors the regex evaluator's matching: "re:" is a Go
// regexp (uncompilable patterns yield MAYBE at run time, never a
// match), anything else a '*'-glob.
func matchURIPattern(p, uri string) bool {
	if expr, isRe := strings.CutPrefix(p, "re:"); isRe {
		re, err := regexp.Compile(expr)
		if err != nil {
			return false
		}
		return re.MatchString(uri)
	}
	return eacl.Glob(p, uri)
}

// pickOutsideIP returns an address distinct from every candidate.
func pickOutsideIP(used []string) string {
	for _, ip := range outsideIPs {
		clash := false
		for _, u := range used {
			if u == ip {
				clash = true
				break
			}
		}
		if !clash {
			return ip
		}
	}
	return outsideIPs[0]
}

func capSlice[T any](s []T, max int, truncated *bool) []T {
	if len(s) > max {
		*truncated = true
		return s[:max]
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysOf[V any](m map[string]V) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func sortedInts(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedRights(m map[eacl.Right]bool) []eacl.Right {
	out := make([]eacl.Right, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DefAuth != out[j].DefAuth {
			return out[i].DefAuth < out[j].DefAuth
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func sortedTimes(m map[time.Time]bool) []time.Time {
	out := make([]time.Time, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
