package reason

import (
	"strings"
	"testing"

	"gaaapi/internal/eacl"
)

func mustEACL(t *testing.T, src string) *eacl.EACL {
	t.Helper()
	e, err := eacl.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return e
}

func mustEngine(t *testing.T, system, local []*eacl.EACL, opts Options) *Engine {
	t.Helper()
	e, err := New(system, local, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func mustProve(t *testing.T, e *Engine, name string) *ProofResult {
	t.Helper()
	res, err := e.Prove(name)
	if err != nil {
		t.Fatalf("Prove(%s): %v", name, err)
	}
	return res
}

func mustAnswer(t *testing.T, e *Engine, query string) *QueryResult {
	t.Helper()
	q, err := ParseQuery(query)
	if err != nil {
		t.Fatalf("ParseQuery(%s): %v", query, err)
	}
	res, err := e.Answer(q)
	if err != nil {
		t.Fatalf("Answer(%s): %v", query, err)
	}
	return res
}

func TestOpenGrantRefutesNoAnonymousYes(t *testing.T) {
	local := mustEACL(t, "pos_access_right apache *\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	res := mustProve(t, e, "no-anonymous-yes")
	if res.Result != Refuted {
		t.Fatalf("result = %s, want refuted", res.Result)
	}
	if len(res.Witnesses) == 0 {
		t.Fatal("refutation carries no witness")
	}
	if w := res.Witnesses[0]; w.User != "" || w.Decision != "yes" {
		t.Errorf("witness = %+v, want anonymous yes", w)
	}
}

func TestUserRequirementProvesNoAnonymousYes(t *testing.T) {
	local := mustEACL(t, "pos_access_right apache *\npre_cond_accessid_USER apache *\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	if res := mustProve(t, e, "no-anonymous-yes"); res.Result != Proved {
		t.Fatalf("result = %s (%s), want proved", res.Result, res.Reason)
	}
	who := mustAnswer(t, e, "who-can(apache, *)")
	if !who.Satisfiable || len(who.Principals) != 1 || who.Principals[0] != "user" {
		t.Errorf("who-can = %+v, want principals [user]", who)
	}
}

func TestWhoCanThreatPin(t *testing.T) {
	// Paper 7.1 local shape: authentication required above threat low.
	local := mustEACL(t, "pos_access_right apache *\n"+
		"pre_cond_system_threat_level local >low\n"+
		"pre_cond_accessid_USER apache *\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	if res := mustAnswer(t, e, "who-can(apache, *, low)"); res.Satisfiable {
		t.Errorf("low: satisfiable with principals %v, want none (entry inapplicable)", res.Principals)
	}
	res := mustAnswer(t, e, "who-can(apache, *, medium)")
	if !res.Satisfiable || len(res.Principals) != 1 || res.Principals[0] != "user" {
		t.Errorf("medium: %+v, want principals [user]", res)
	}
}

func TestDeadEntryDetected(t *testing.T) {
	local := mustEACL(t, "pos_access_right apache *\npos_access_right apache GET /x\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	dead := e.DeadEntries()
	if len(dead) != 1 || dead[0].Line != 2 {
		t.Fatalf("DeadEntries = %+v, want the line-2 entry", dead)
	}
	if res := mustProve(t, e, "no-dead-entries"); res.Result != Refuted {
		t.Errorf("no-dead-entries = %s, want refuted", res.Result)
	}
}

func TestMaybeAboveSuppressesDeadEntry(t *testing.T) {
	// Entry 1 hangs on an unresolved runtime value (MAYBE in every
	// world): with the value resolved the scan could continue, so entry
	// 2 must not be called dead.
	local := mustEACL(t, "pos_access_right apache *\n"+
		"pre_cond_expr local input_length>@max_input\n"+
		"pos_access_right apache *\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	if dead := e.DeadEntries(); len(dead) != 0 {
		t.Fatalf("DeadEntries = %+v, want none (maybe-blocked)", dead)
	}
	if res := mustProve(t, e, "no-dead-entries"); res.Result != Proved {
		t.Errorf("no-dead-entries = %s, want proved", res.Result)
	}
}

func TestRegexReSuppressesDeadEntry(t *testing.T) {
	local := mustEACL(t, "neg_access_right apache *\n"+
		"pre_cond_regex gnu re:^/private/[0-9]+$\n"+
		"pos_access_right apache *\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	for _, d := range e.DeadEntries() {
		if d.Line == 1 {
			t.Errorf("re:-guarded entry reported dead: %+v", d)
		}
	}
}

func TestReachableWithout(t *testing.T) {
	local := mustEACL(t, "pos_access_right apache *\n"+
		"pre_cond_system_threat_level local >low\n"+
		"pre_cond_accessid_USER apache *\n"+
		"pos_access_right apache GET /pub*\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	res := mustAnswer(t, e, "reachable-without(accessid_USER)")
	if !res.Satisfiable {
		t.Fatal("want a YES not involving accessid_USER (the /pub entry)")
	}
	if w := res.Witnesses[0]; !strings.HasPrefix(w.Right, "apache GET /pub") {
		t.Errorf("witness right = %q, want the /pub entry's", w.Right)
	}
	// Authentication-only policy: every YES involves accessid_USER.
	only := mustEngine(t, nil, []*eacl.EACL{mustEACL(t,
		"pos_access_right apache *\npre_cond_accessid_USER apache *\n")}, Options{})
	if res := mustAnswer(t, only, "reachable-without(accessid_USER)"); res.Satisfiable {
		t.Errorf("satisfiable with witnesses %+v, want none", res.Witnesses)
	}
}

func TestGrantDiffers(t *testing.T) {
	system := mustEACL(t, "eacl_mode narrow\n"+
		"neg_access_right * *\n"+
		"pre_cond_system_threat_level local =high\n")
	local := mustEACL(t, "pos_access_right apache *\n")
	e := mustEngine(t, []*eacl.EACL{system}, []*eacl.EACL{local}, Options{SystemOnly: true})
	res := mustAnswer(t, e, "grant-differs()")
	if !res.Satisfiable {
		t.Fatal("local grant must differ from the system-only projection somewhere")
	}
	w := res.Witnesses[0]
	if w.Decision == w.SystemOnly {
		t.Errorf("witness decisions equal: %+v", w)
	}

	noProj := mustEngine(t, []*eacl.EACL{system}, []*eacl.EACL{local}, Options{})
	q, _ := ParseQuery("grant-differs()")
	if _, err := noProj.Answer(q); err == nil {
		t.Error("grant-differs without Options.SystemOnly: want error")
	}
}

func TestChallengedDenialSurvivesComposition(t *testing.T) {
	// Anonymous at threat medium under the 7.1 local shape: the USER
	// requirement denies with a Basic challenge, and the abstract fold
	// must carry it exactly as the engine does (replay enforces this;
	// the assertion documents it).
	local := mustEACL(t, "pos_access_right apache *\n"+
		"pre_cond_accessid_USER apache *\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	found := false
	for i := range e.results {
		r := &e.results[i]
		if r.w.user == "" && r.composed.Decision.String() == "no" {
			found = true
			if !strings.HasPrefix(r.composed.Challenge, "Basic realm=") {
				t.Errorf("anonymous denial challenge = %q, want Basic realm", r.composed.Challenge)
			}
		}
	}
	if !found {
		t.Fatal("no anonymous denial world found")
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"", "who-can", "who-can(apache)", "who-can(a, b, c, d)",
		"who-can(a, b, scary)", "reachable-without()", "grant-differs(x)",
		"frobnicate(a)",
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q): want error", bad)
		}
	}
	q, err := ParseQuery("  who-can( apache , GET /cgi-bin/* , high )  ")
	if err != nil {
		t.Fatalf("whitespace form: %v", err)
	}
	if q.Right.Value != "GET /cgi-bin/*" || !q.HasThreat {
		t.Errorf("parsed %+v", q)
	}
}

func TestUnknownProofName(t *testing.T) {
	e := mustEngine(t, nil, []*eacl.EACL{mustEACL(t, "pos_access_right apache *\n")}, Options{})
	if _, err := e.Prove("no-such-property"); err == nil {
		t.Error("want error for unknown property")
	}
}
