package reason

import (
	"strings"
	"testing"

	"gaaapi/internal/eacl"
)

// FuzzReasonVsEvaluator feeds random policy text through the prover.
// Engine construction IS the differential: every world's abstract
// verdict is replayed through the interpreted evaluator and the
// compiled engine, and New fails on any disagreement. The fuzzer's job
// is to find a policy shape whose abstract model drifts from the real
// scan/compose semantics.
func FuzzReasonVsEvaluator(f *testing.F) {
	f.Add("pos_access_right apache *\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2000 {
			return
		}
		pol, err := eacl.ParseString(src)
		if err != nil {
			return
		}
		if len(pol.Entries) > 8 {
			return
		}
		opts := Options{MaxWorlds: 400, SystemOnly: true,
			Values: map[string]string{"max_input": "1000"}}

		// Local-only and composed-with-itself both exercise the fold.
		for _, arr := range [][2][]*eacl.EACL{
			{nil, {pol}},
			{{pol}, {pol}},
		} {
			e, err := New(arr[0], arr[1], opts)
			if err != nil {
				t.Fatalf("abstract/concrete disagreement on policy:\n%s\n%v", src, err)
			}
			// Queries and proofs must never panic, whatever the policy.
			for _, q := range []string{
				"who-can(apache, *)", "who-can(*, *, high)",
				"reachable-without(accessid_USER)", "grant-differs()",
			} {
				pq, err := ParseQuery(q)
				if err != nil {
					t.Fatalf("ParseQuery(%s): %v", q, err)
				}
				if _, err := e.Answer(pq); err != nil && !strings.Contains(err.Error(), "system-only") {
					t.Fatalf("Answer(%s): %v", q, err)
				}
			}
			for _, p := range ProofNames {
				if _, err := e.Prove(p); err != nil {
					t.Fatalf("Prove(%s): %v", p, err)
				}
			}
		}
	})
}
