package reason

// A tiny datalog core: relations over fixed-width integer tuples and
// linear rules evaluated bottom-up with semi-naive iteration. The
// policy translation (program.go) only needs linear recursion — the
// scan position of the first-match evaluator advances one entry at a
// time — so every rule has exactly one recursive body literal; the
// remaining literals are extensional and looked up inside the rule
// body. Semi-naive evaluation is then exact: each round fires rules
// only on the tuples derived in the previous round (the delta), never
// re-deriving from the full relation.

// tuple is one fact. Unused trailing columns are zero; the relation's
// arity decides how many columns are significant.
type tuple [5]int32

// relation is a named set of tuples with the semi-naive bookkeeping:
// facts holds everything derived so far, delta the tuples derived in
// the current round, next the tuples derived by rules firing this
// round (the next delta).
type relation struct {
	name  string
	facts map[tuple]struct{}
	delta []tuple
	next  []tuple
}

func newRelation(name string) *relation {
	return &relation{name: name, facts: make(map[tuple]struct{})}
}

// insert adds a fact; new facts join the next delta.
func (r *relation) insert(t tuple) {
	if _, ok := r.facts[t]; ok {
		return
	}
	r.facts[t] = struct{}{}
	r.next = append(r.next, t)
}

// has reports membership (extensional lookups inside rule bodies).
func (r *relation) has(t tuple) bool {
	_, ok := r.facts[t]
	return ok
}

// rule fires once per delta tuple of its body relation; emit inserts
// derived head facts.
type rule struct {
	body *relation
	fire func(t tuple, emit func(*relation, tuple))
}

// program is a set of relations and linear rules.
type program struct {
	rels  []*relation
	rules []rule
}

func (p *program) relation(name string) *relation {
	r := newRelation(name)
	p.rels = append(p.rels, r)
	return r
}

func (p *program) rule(body *relation, fire func(t tuple, emit func(*relation, tuple))) {
	p.rules = append(p.rules, rule{body: body, fire: fire})
}

// run iterates to fixpoint. Seed facts must have been inserted before
// the call (they form the first delta).
func (p *program) run() {
	emit := func(r *relation, t tuple) { r.insert(t) }
	// Promote the initial inserts into deltas.
	for _, r := range p.rels {
		r.delta, r.next = r.next, nil
	}
	for {
		fired := false
		for _, rl := range p.rules {
			for _, t := range rl.body.delta {
				rl.fire(t, emit)
			}
		}
		for _, r := range p.rels {
			r.delta, r.next = r.next, nil
			if len(r.delta) > 0 {
				fired = true
			}
		}
		if !fired {
			return
		}
	}
}
