package reason

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
)

// Honest-degradation contract: whenever the world grid cannot cover
// the policy (truncation, no clean URI, ambient state), universal
// claims downgrade to unknown and positive evidence is withheld.

func TestTruncatedWorldsDegradeProofs(t *testing.T) {
	local := mustEACL(t, `
pos_access_right apache GET /a/*
pre_cond_accessid_GROUP local g1
pre_cond_accessid_GROUP local g2
pre_cond_accessid_GROUP local g3
pos_access_right apache GET /b/*
pre_cond_accessid_USER apache *
`)
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{MaxWorlds: 4})
	if !e.Truncated() {
		t.Fatal("MaxWorlds=4 did not truncate")
	}
	if got := e.DeadEntries(); got != nil {
		t.Errorf("DeadEntries on a truncated domain = %v, want nil", got)
	}
	for _, name := range ProofNames {
		res := mustProve(t, e, name)
		if res.Result != Unknown {
			t.Errorf("%s on a truncated domain = %s, want unknown", name, res.Result)
		}
		if !strings.Contains(res.Reason, "incomplete domain") {
			t.Errorf("%s reason = %q", name, res.Reason)
		}
	}
	if res := mustAnswer(t, e, "who-can(apache, *)"); !res.Truncated {
		t.Error("query result does not carry the truncation flag")
	}
}

func TestNoCleanURIDegradesProofs(t *testing.T) {
	// A catch-all regex pattern leaves no candidate URI that dodges
	// every pattern, so "entry 2 is never reached" cannot be trusted.
	local := mustEACL(t, `
neg_access_right apache *
pre_cond_regex gnu *
pre_cond_regex gnu re:[unclosed
pos_access_right apache GET /pub/*
`)
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	if !e.dom.noCleanURI {
		t.Fatal("catch-all pattern did not set noCleanURI")
	}
	if got := e.DeadEntries(); got != nil {
		t.Errorf("DeadEntries without a clean URI = %v, want nil", got)
	}
	if res := mustProve(t, e, "no-dead-entries"); res.Result != Unknown {
		t.Errorf("no-dead-entries = %s, want unknown", res.Result)
	}
}

func TestInexactWorldMakesAnonymousYesUnknown(t *testing.T) {
	// A grant guarded by a file hash that matches real disk state: the
	// anonymous YES exists but rests on ambient state the model cannot
	// pin, so the proof refuses to call it a refutation.
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, []byte("content"), 0o644); err != nil {
		t.Fatal(err)
	}
	digest, err := conditions.HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	local := mustEACL(t, "pos_access_right apache *\npre_cond_file_sha256 local "+path+" "+digest+"\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	res := mustProve(t, e, "no-anonymous-yes")
	if res.Result != Unknown {
		t.Fatalf("result = %s, want unknown", res.Result)
	}
	if !strings.Contains(res.Reason, "ambient state") {
		t.Errorf("reason = %q", res.Reason)
	}
	// Inexact worlds are never positive evidence.
	if q := mustAnswer(t, e, "who-can(apache, *)"); q.Satisfiable {
		t.Errorf("who-can satisfiable from an inexact world: %+v", q)
	}
}

func TestAnonymousGrantsAccessor(t *testing.T) {
	local := mustEACL(t, "pos_access_right apache GET /pub/*\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	grants := e.AnonymousGrants()
	if len(grants) == 0 {
		t.Fatal("open grant yields no anonymous grants")
	}
	g := grants[0]
	if g.Line != 1 || g.Witness.User != "" || g.Witness.Decision != "yes" {
		t.Errorf("grant = %+v", g)
	}
	if !eacl.MatchRight(eacl.Right{Sign: eacl.Pos, DefAuth: "apache", Value: "GET /pub/*"}, g.Right) {
		t.Errorf("granted right %v not covered by the entry pattern", g.Right)
	}
}

func TestUnresolvedValueRefStaysMaybe(t *testing.T) {
	// An @ref with no runtime value leaves the condition MAYBE, so the
	// grant is never a YES — and never a dead entry either.
	local := mustEACL(t, `
pos_access_right apache *
pre_cond_expr local input_length>@missing
`)
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	if q := mustAnswer(t, e, "who-can(apache, *)"); q.Satisfiable {
		t.Errorf("unresolvable reference produced a YES: %+v", q)
	}
	if got := e.DeadEntries(); got != nil {
		t.Errorf("MAYBE-only entry reported dead: %v", got)
	}
}

func TestExpandModeDisjoins(t *testing.T) {
	sys := mustEACL(t, "eacl_mode expand\nneg_access_right apache GET /admin/*\n")
	loc := mustEACL(t, "pos_access_right apache *\n")
	e := mustEngine(t, []*eacl.EACL{sys}, []*eacl.EACL{loc}, Options{SystemOnly: true})
	// Under expand the local grant overrides the system denial.
	q, err := ParseQuery("who-can(apache, GET /admin/*)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("expand-mode local grant did not override the system denial")
	}
	if d := mustAnswer(t, e, "grant-differs()"); !d.Satisfiable {
		t.Error("grant-differs unsatisfiable despite the override")
	}
}

func TestQueryAccessors(t *testing.T) {
	who, err := ParseQuery("who-can(apache, GET /x)")
	if err != nil {
		t.Fatal(err)
	}
	if rs := who.ExtraRights(); len(rs) != 1 || rs[0].Value != "GET /x" {
		t.Errorf("ExtraRights = %v", rs)
	}
	if who.NeedsSystemOnly() {
		t.Error("who-can should not need the system-only projection")
	}
	gd, err := ParseQuery("grant-differs()")
	if err != nil {
		t.Fatal(err)
	}
	if len(gd.ExtraRights()) != 0 || !gd.NeedsSystemOnly() {
		t.Error("grant-differs accessors wrong")
	}
}

func TestDescribeWorld(t *testing.T) {
	local := mustEACL(t, "pos_access_right apache *\npre_cond_accessid_GROUP local admins\n")
	e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
	if e.Worlds() == 0 {
		t.Fatal("no worlds")
	}
	s := describeWorld(e.dom, &e.results[0].w)
	if !strings.Contains(s, "right=apache") || !strings.Contains(s, "threat=") {
		t.Errorf("describeWorld = %q", s)
	}
	var anon, member string
	for i := range e.results {
		w := &e.results[i].w
		d := describeWorld(e.dom, w)
		if w.user == "" {
			anon = d
		}
		if len(w.member) > 0 && w.member[0] {
			member = d
		}
	}
	if !strings.Contains(anon, "<anonymous>") {
		t.Errorf("anonymous world renders as %q", anon)
	}
	if !strings.Contains(member, "admins") {
		t.Errorf("member world renders as %q", member)
	}
}
