package reason

import (
	"testing"
	"time"

	"gaaapi/internal/eacl"
)

// seededOpts is the largest shipped workload: the section 7.2
// composition with max_input resolved, which expands to the full
// threat × principal × URI × input-length grid (384 worlds).
var seededOpts = Options{Values: map[string]string{"max_input": "1000"}, SystemOnly: true}

func shipped72(tb testing.TB) (sys, loc *eacl.EACL) {
	tb.Helper()
	for _, p := range []struct {
		path string
		dst  **eacl.EACL
	}{
		{"../../../policies/paper/system-7.2.eacl", &sys},
		{"../../../policies/paper/local-7.2.eacl", &loc},
	} {
		e, err := eacl.ParseFile(p.path)
		if err != nil {
			tb.Fatal(err)
		}
		*p.dst = e
	}
	return sys, loc
}

// TestProverRuntimeBudget pins end-to-end engine construction — world
// enumeration, real-evaluator atoms, fixpoint, fold and the double
// replay of every world — under one second on the largest shipped
// composition, so a policy-reload gate could run it inline.
func TestProverRuntimeBudget(t *testing.T) {
	sys, loc := shipped72(t)
	start := time.Now()
	e, err := New([]*eacl.EACL{sys}, []*eacl.EACL{loc}, seededOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ProofNames {
		if _, err := e.Prove(name); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("prover took %v on the 7.2 composition (%d worlds), budget 1s", elapsed, e.Worlds())
	}
}

func BenchmarkProver72(b *testing.B) {
	sys, loc := shipped72(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := New([]*eacl.EACL{sys}, []*eacl.EACL{loc}, seededOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range ProofNames {
			if _, err := e.Prove(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}
