package reason

import (
	"testing"

	"gaaapi/internal/eacl"
)

func TestGlobWitness(t *testing.T) {
	cases := []struct{ pattern, want string }{
		{"*", ""},
		{"", ""},
		{"*phf*", "phf"},
		{"GET /cgi-bin/*", "GET /cgi-bin/"},
		{"a*b*c", "abc"},
	}
	for _, tt := range cases {
		if got := globWitness(tt.pattern); got != tt.want {
			t.Errorf("globWitness(%q) = %q, want %q", tt.pattern, got, tt.want)
		}
		if !eacl.Glob(tt.pattern, globWitness(tt.pattern)) {
			t.Errorf("pattern %q does not match its own witness", tt.pattern)
		}
	}
}

func TestGlobIntersectWitness(t *testing.T) {
	cases := []struct {
		a, b    string
		ok      bool
		wantLen int // shortest common string length, when ok
	}{
		{"*", "*", true, 0},
		{"abc", "abc", true, 3},
		{"a*", "b*", false, 0},
		{"*phf*", "GET *", true, 7},      // "GET phf"
		{"GET /a/*", "GET */b", true, 8}, // "GET /a/b"
		{"abc", "abd", false, 0},
		{"*", "anything", true, 8},
		{"x*y", "xy", true, 2},
		{"x*y", "xzzy", true, 4},
		{"a", "", false, 0},
	}
	for _, tt := range cases {
		got, ok := globIntersectWitness(tt.a, tt.b)
		if ok != tt.ok {
			t.Errorf("globIntersectWitness(%q, %q) ok = %v, want %v", tt.a, tt.b, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != tt.wantLen {
			t.Errorf("globIntersectWitness(%q, %q) = %q (len %d), want len %d", tt.a, tt.b, got, len(got), tt.wantLen)
		}
		if !eacl.Glob(tt.a, got) || !eacl.Glob(tt.b, got) {
			t.Errorf("witness %q not matched by both %q and %q", got, tt.a, tt.b)
		}
	}
}
