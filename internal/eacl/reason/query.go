package reason

import (
	"fmt"
	"sort"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/ids"
)

// The query language, one call per query string:
//
//	who-can(<defauth>, <value-pattern>[, <threat>])
//	    principals that obtain a composed YES on a right the pattern
//	    matches, optionally pinned to one threat level
//	reachable-without(<condition-type>)
//	    a composed YES in which no condition of that type contributed a
//	    YES on any deciding entry
//	grant-differs()
//	    worlds where the composed decision differs from the system-only
//	    projection (requires Options.SystemOnly)
//
// Arguments are comma-separated and whitespace-trimmed; right patterns
// use the EACL '*' glob language and therefore cannot contain commas.

// Query is one parsed query.
type Query struct {
	Kind      string // "who-can", "reachable-without", "grant-differs"
	Right     eacl.Right
	Threat    ids.Level
	HasThreat bool
	CondType  string
	raw       string
}

func (q *Query) String() string { return q.raw }

// ParseQuery parses the textual query form.
func ParseQuery(s string) (*Query, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return nil, fmt.Errorf("query %q: want name(args...)", s)
	}
	name := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s)
	inner = inner[open+1 : len(inner)-1]
	var args []string
	if strings.TrimSpace(inner) != "" {
		for _, a := range strings.Split(inner, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	q := &Query{Kind: name, raw: strings.TrimSpace(s)}
	switch name {
	case "who-can":
		if len(args) < 2 || len(args) > 3 {
			return nil, fmt.Errorf("query %q: want who-can(defauth, value[, threat])", s)
		}
		q.Right = eacl.Right{Sign: eacl.Pos, DefAuth: args[0], Value: args[1]}
		if len(args) == 3 {
			lvl, err := ids.ParseLevel(args[2])
			if err != nil {
				return nil, fmt.Errorf("query %q: %v", s, err)
			}
			q.Threat, q.HasThreat = lvl, true
		}
	case "reachable-without":
		if len(args) != 1 || args[0] == "" {
			return nil, fmt.Errorf("query %q: want reachable-without(condition-type)", s)
		}
		q.CondType = args[0]
	case "grant-differs":
		if len(args) != 0 {
			return nil, fmt.Errorf("query %q: grant-differs takes no arguments", s)
		}
	default:
		return nil, fmt.Errorf("query %q: unknown query %q", s, name)
	}
	return q, nil
}

// ExtraRights returns right candidates the domain must include for this
// query (the who-can pattern; it joins the intersection pass too).
func (q *Query) ExtraRights() []eacl.Right {
	if q.Kind == "who-can" {
		return []eacl.Right{q.Right}
	}
	return nil
}

// NeedsSystemOnly reports whether the query requires the system-only
// projection (Options.SystemOnly).
func (q *Query) NeedsSystemOnly() bool { return q.Kind == "grant-differs" }

// Witness is one concrete request plus the replay-confirmed verdicts —
// the counterexample/evidence format of every positive answer.
type Witness struct {
	Right      string            `json:"right"`
	Threat     string            `json:"threat"`
	User       string            `json:"user"` // "" = anonymous
	Groups     []string          `json:"groups,omitempty"`
	ClientIP   string            `json:"client_ip"`
	RequestURI string            `json:"request_uri"`
	Time       string            `json:"time"`
	Params     map[string]string `json:"params,omitempty"`
	Decision   string            `json:"decision"`
	Challenge  string            `json:"challenge,omitempty"`
	SystemOnly string            `json:"system_only_decision,omitempty"`
	Inexact    bool              `json:"inexact,omitempty"`
}

// QueryResult is the JSON answer to one query.
type QueryResult struct {
	Query       string    `json:"query"`
	Satisfiable bool      `json:"satisfiable"`
	Truncated   bool      `json:"truncated,omitempty"` // "no" answers may be incomplete
	Principals  []string  `json:"principals,omitempty"`
	Witnesses   []Witness `json:"witnesses,omitempty"`
	Worlds      int       `json:"worlds"`
}

const maxWitnesses = 10

// Answer evaluates a query against the engine's fixpoint.
func (e *Engine) Answer(q *Query) (*QueryResult, error) {
	res := &QueryResult{Query: q.String(), Truncated: e.dom.incomplete(), Worlds: len(e.results)}
	principals := map[string]bool{}
	add := func(r *worldResult, sysOnly bool) {
		res.Satisfiable = true
		if len(res.Witnesses) < maxWitnesses {
			res.Witnesses = append(res.Witnesses, e.witness(r, sysOnly))
		}
	}
	for i := range e.results {
		r := &e.results[i]
		if r.inexact {
			continue // ambient state; never evidence for a positive answer
		}
		switch q.Kind {
		case "who-can":
			if r.composed.Decision != gaa.Yes || !eacl.MatchRight(q.Right, r.w.right) {
				continue
			}
			if q.HasThreat && r.w.threat != q.Threat {
				continue
			}
			p := r.w.user
			if p == "" {
				p = "<anonymous>"
			}
			if !principals[p] {
				principals[p] = true
				add(r, false)
			}
		case "reachable-without":
			if r.composed.Decision == gaa.Yes && !r.deciderYes[q.CondType] {
				add(r, false)
			}
		case "grant-differs":
			if !e.opts.SystemOnly {
				return nil, fmt.Errorf("grant-differs requires the system-only projection (Options.SystemOnly)")
			}
			if r.composed.Decision != r.sysOnly.Decision {
				add(r, true)
			}
		}
	}
	res.Principals = make([]string, 0, len(principals))
	for p := range principals {
		res.Principals = append(res.Principals, p)
	}
	sort.Strings(res.Principals)
	return res, nil
}

// witness renders one world's record.
func (e *Engine) witness(r *worldResult, sysOnly bool) Witness {
	w := &r.w
	wit := Witness{
		Right:      w.right.DefAuth + " " + w.right.Value,
		Threat:     w.threat.String(),
		User:       w.user,
		ClientIP:   w.ip,
		RequestURI: w.uri,
		Time:       w.at.Format("2006-01-02T15:04:05Z07:00"),
		Decision:   r.composed.Decision.String(),
		Challenge:  r.composed.Challenge,
		Inexact:    r.inexact,
	}
	for gi, g := range e.dom.groups {
		if w.member[gi] {
			wit.Groups = append(wit.Groups, g)
		}
	}
	for i, c := range w.ints {
		if c.present {
			if wit.Params == nil {
				wit.Params = map[string]string{}
			}
			wit.Params[e.dom.intDims[i]] = fmt.Sprintf("%d", c.val)
		}
	}
	if sysOnly {
		wit.SystemOnly = r.sysOnly.Decision.String()
	}
	return wit
}
