package reason

import (
	"testing"

	"gaaapi/internal/eacl"
)

// Golden query/prove results over the shipped paper policies. Every
// engine construction here also exercises the replay differential: the
// abstract verdict of each world is compared against both the
// interpreted evaluator and the compiled decision engine.

func shipped(t *testing.T, name string) *eacl.EACL {
	t.Helper()
	e, err := eacl.ParseFile("../../../policies/paper/" + name)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return e
}

func TestGolden71Composition(t *testing.T) {
	sys := shipped(t, "system-7.1.eacl")
	loc := shipped(t, "local-7.1.eacl")
	e := mustEngine(t, []*eacl.EACL{sys}, []*eacl.EACL{loc}, Options{SystemOnly: true})
	if e.Truncated() {
		t.Fatal("7.1 domain truncated; golden expectations assume full coverage")
	}

	if res := mustProve(t, e, "no-anonymous-yes"); res.Result != Proved {
		t.Errorf("no-anonymous-yes = %s (%s), want proved", res.Result, res.Reason)
	}
	if res := mustProve(t, e, "no-dead-entries"); res.Result != Proved {
		t.Errorf("no-dead-entries = %s, dead = %+v, want proved", res.Result, res.DeadEntries)
	}

	// Authentication gates everything above threat low; the lockdown
	// denies everyone at high.
	for query, wantPrincipals := range map[string][]string{
		"who-can(apache, *)":         {"user"},
		"who-can(apache, *, medium)": {"user"},
		"who-can(apache, *, high)":   nil,
		"who-can(apache, *, low)":    nil, // entry inapplicable at low: MAYBE, not YES
	} {
		res := mustAnswer(t, e, query)
		if len(res.Principals) != len(wantPrincipals) {
			t.Errorf("%s principals = %v, want %v", query, res.Principals, wantPrincipals)
			continue
		}
		for i := range wantPrincipals {
			if res.Principals[i] != wantPrincipals[i] {
				t.Errorf("%s principals = %v, want %v", query, res.Principals, wantPrincipals)
			}
		}
	}

	// Pinned witness: the one medium-threat authenticated grant world.
	res := mustAnswer(t, e, "who-can(apache, *, medium)")
	if len(res.Witnesses) != 1 {
		t.Fatalf("witnesses = %+v, want exactly one", res.Witnesses)
	}
	w := res.Witnesses[0]
	if w.User != "user" || w.Threat != "medium" || w.Decision != "yes" || w.Right != "apache " {
		t.Errorf("witness = %+v, want {user user, threat medium, decision yes, right \"apache \"}", w)
	}

	// The local grant is invisible to the system-only projection.
	if res := mustAnswer(t, e, "grant-differs()"); !res.Satisfiable {
		t.Error("grant-differs unsatisfiable, want the medium-threat local grant")
	}
}

func TestGolden72Composition(t *testing.T) {
	sys := shipped(t, "system-7.2.eacl")
	loc := shipped(t, "local-7.2.eacl")

	// Without a seed for @max_input the overflow entry is MAYBE in every
	// world: nothing reaches the trailing allow, so no YES exists at all
	// and both properties hold (the allow entry is maybe-blocked, not
	// dead).
	e := mustEngine(t, []*eacl.EACL{sys}, []*eacl.EACL{loc}, Options{SystemOnly: true})
	if e.Truncated() {
		t.Fatal("7.2 domain truncated; golden expectations assume full coverage")
	}
	if res := mustProve(t, e, "no-anonymous-yes"); res.Result != Proved {
		t.Errorf("unseeded: no-anonymous-yes = %s (%s), want proved", res.Result, res.Reason)
	}
	if res := mustProve(t, e, "no-dead-entries"); res.Result != Proved {
		t.Errorf("unseeded: no-dead-entries = %s, dead = %+v, want proved", res.Result, res.DeadEntries)
	}
	if res := mustAnswer(t, e, "who-can(apache, *)"); res.Satisfiable {
		t.Errorf("unseeded: who-can = %+v, want unsatisfiable", res)
	}

	// Seeding @max_input=1000 (the paper's value) makes the trailing
	// allow reachable — by anonymous clients, since 7.2 never requires
	// authentication. That is the policy's real behaviour, and the
	// prover must surface it as a concrete counterexample.
	seeded := mustEngine(t, []*eacl.EACL{sys}, []*eacl.EACL{loc},
		Options{Values: map[string]string{"max_input": "1000"}})
	res := mustProve(t, seeded, "no-anonymous-yes")
	if res.Result != Refuted {
		t.Fatalf("seeded: no-anonymous-yes = %s (%s), want refuted", res.Result, res.Reason)
	}
	w := res.Witnesses[0]
	if w.User != "" || w.Decision != "yes" {
		t.Errorf("seeded witness = %+v, want an anonymous yes", w)
	}
	// The witness request must dodge every exploit signature and keep
	// input_length within bounds — i.e. be a genuinely clean request.
	if w.RequestURI != "GET /index.html" {
		t.Errorf("seeded witness URI = %q, want the clean URI", w.RequestURI)
	}
	if res := mustProve(t, seeded, "no-dead-entries"); res.Result != Proved {
		t.Errorf("seeded: no-dead-entries = %s, dead = %+v, want proved", res.Result, res.DeadEntries)
	}

	// Every grant dodges the signature entries' conditions: a YES never
	// involves a regex/expr YES (those entries deny).
	for _, q := range []string{"reachable-without(regex)", "reachable-without(expr)"} {
		if res := mustAnswer(t, seeded, q); !res.Satisfiable {
			t.Errorf("seeded: %s unsatisfiable, want the clean-request grant", q)
		}
	}
}

// TestGoldenExamplePolicies pins query results over small inline
// policies whose full world behaviour is enumerable by hand.
func TestGoldenExamplePolicies(t *testing.T) {
	t.Run("group-gate", func(t *testing.T) {
		local := mustEACL(t, "pos_access_right apache GET /admin/*\n"+
			"pre_cond_accessid_GROUP local admins\n"+
			"pos_access_right apache GET /public/*\n")
		e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
		res := mustAnswer(t, e, "who-can(apache, GET /admin/*)")
		if !res.Satisfiable {
			t.Fatal("admin grant unreachable")
		}
		for _, w := range res.Witnesses {
			if len(w.Groups) != 1 || w.Groups[0] != "admins" {
				t.Errorf("admin witness groups = %v, want [admins]", w.Groups)
			}
		}
		res = mustAnswer(t, e, "reachable-without(accessid_GROUP)")
		if !res.Satisfiable {
			t.Fatal("public grant should not need the group")
		}
	})
	t.Run("time-window", func(t *testing.T) {
		local := mustEACL(t, "pos_access_right apache *\n"+
			"pre_cond_time_window local 09:00-17:00\n")
		e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
		res := mustAnswer(t, e, "who-can(apache, *)")
		if !res.Satisfiable {
			t.Fatal("business-hours grant unreachable")
		}
		for _, w := range res.Witnesses {
			if w.Time < "2026-01-05T09:00" || w.Time >= "2026-01-05T17:00" {
				t.Errorf("witness time %s outside the window", w.Time)
			}
		}
	})
	t.Run("location-cidr", func(t *testing.T) {
		local := mustEACL(t, "pos_access_right apache *\n"+
			"pre_cond_location local 10.0.0.0/8\n")
		e := mustEngine(t, nil, []*eacl.EACL{local}, Options{})
		res := mustAnswer(t, e, "who-can(apache, *)")
		if !res.Satisfiable {
			t.Fatal("intranet grant unreachable")
		}
		for _, w := range res.Witnesses {
			if w.ClientIP != "10.0.0.0" {
				t.Errorf("witness IP = %s, want the CIDR network address", w.ClientIP)
			}
		}
	})
}
