package reason

import "testing"

// A 10-node chain: edge(i, i+1) EDB, path(0) seed, and the linear rule
// path(i) ∧ edge(i, j) → path(j). The fixpoint must reach every node in
// exactly one derivation each (semi-naive: no refiring on old deltas).
func TestDatalogChainReachability(t *testing.T) {
	p := &program{}
	edge := p.relation("edge")
	path := p.relation("path")
	for i := int32(0); i < 9; i++ {
		edge.insert(tuple{i, i + 1})
	}
	fired := 0
	p.rule(path, func(tt tuple, emit func(*relation, tuple)) {
		fired++
		for j := int32(0); j < 10; j++ {
			if edge.has(tuple{tt[0], j}) {
				emit(path, tuple{j})
			}
		}
	})
	path.insert(tuple{0})
	p.run()
	for i := int32(0); i < 10; i++ {
		if !path.has(tuple{i}) {
			t.Errorf("path(%d) not derived", i)
		}
	}
	if fired != 10 {
		t.Errorf("rule fired %d times, want 10 (once per delta tuple)", fired)
	}
}

func TestRelationInsertDedups(t *testing.T) {
	r := newRelation("r")
	r.insert(tuple{1, 2})
	r.insert(tuple{1, 2})
	if len(r.next) != 1 {
		t.Errorf("duplicate insert reached the delta: next = %v", r.next)
	}
}
