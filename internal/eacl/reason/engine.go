// Package reason is a whole-policy reasoning engine for composed EACL
// policies — the "who can do what, when?" layer on top of the per-file
// static analysis (internal/eacl/analysis). It translates a composed
// policy into datalog facts and rules over a finite abstract domain
// built from the policy's own text (glob witnesses, CIDR interior
// points, time-window boundaries, comparison bounds, the tri-level
// threat scale and authenticated/anonymous principals), runs semi-naive
// bottom-up evaluation mirroring the gaa engine's first-match scan and
// composition fold, and answers reachability queries:
//
//	who-can(defauth, right[, threat])   — principals that obtain YES
//	reachable-without(cond-type)        — a YES needing no such condition
//	grant-differs()                     — worlds where the composed and
//	                                      system-only decisions diverge
//
// Every positive answer carries a concrete synthesized request; during
// construction the engine replays every world through the interpreted
// evaluator AND the compiled decision engine and fails loudly if either
// disagrees with the abstract verdict. Soundness therefore reduces to
// domain coverage, which the engine tracks (Truncated, inexact worlds);
// see DESIGN.md §5.2 for the full argument and known incompleteness.
package reason

import (
	"context"
	"fmt"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// Options configures an Engine.
type Options struct {
	// Values resolves '@name' runtime references during reasoning (the
	// -value flag). Unreferenced names are ignored; unresolved
	// references evaluate to MAYBE exactly as at run time.
	Values map[string]string
	// ExtraRights adds requested-right candidates to the domain (the
	// rights named in who-can queries).
	ExtraRights []eacl.Right
	// MaxWorlds caps the world grid; 0 means DefaultMaxWorlds.
	MaxWorlds int
	// SystemOnly additionally folds and replays the system-only
	// projection of every world, enabling grant-differs queries.
	SystemOnly bool
}

// Verdict is the abstract (and replay-confirmed) phase-1 answer of one
// world.
type Verdict struct {
	Decision   gaa.Decision
	Applicable bool
	Challenge  string
}

// worldResult is one world's full record.
type worldResult struct {
	idx      int
	w        world
	composed Verdict
	sysOnly  Verdict // valid when Options.SystemOnly
	inexact  bool
	// deciderYes holds the condition types that evaluated YES on some
	// deciding entry (reachable-without reads it).
	deciderYes map[string]bool
	// deciders are the (eacl, entry) pairs whose entries decided.
	deciders []entryRef
}

type entryRef struct {
	eacl  int32
	entry int32
	out   int32
}

// entryStat aggregates per-entry reachability over all worlds.
type entryStat struct {
	decided      bool
	decidedMaybe bool
}

// Engine is an analyzed composition: the domain, the per-world
// verdicts, and per-entry reachability statistics.
type Engine struct {
	system, local []*eacl.EACL
	eacls         []*eacl.EACL // composition order: system then local
	nsys          int
	mode          eacl.CompositionMode
	sysExists     bool

	dom     *domain
	worlds  []world
	results []worldResult
	stats   [][]entryStat // [eaclIdx][entryIdx]
	opts    Options
}

// New builds the engine: domain extraction, per-world atom evaluation,
// the datalog fixpoint, the composition fold, and the differential
// replay of every world. A non-nil error means the abstract model and
// the real engine disagreed — a bug, never a policy property.
func New(system, local []*eacl.EACL, opts Options) (*Engine, error) {
	e := &Engine{system: system, local: local, mode: eacl.ModeNarrow, opts: opts}
	for _, s := range system {
		if s.ModeSet {
			e.mode = s.Mode
			break
		}
	}
	e.sysExists = len(system) > 0
	e.eacls = append(append([]*eacl.EACL{}, system...), local...)
	e.nsys = len(system)

	max := opts.MaxWorlds
	if max <= 0 {
		max = DefaultMaxWorlds
	}
	e.dom = buildDomain(e.eacls, opts)
	e.worlds = e.dom.worlds(max)

	e.stats = make([][]entryStat, len(e.eacls))
	entryCounts := make([]int32, len(e.eacls))
	for i, ec := range e.eacls {
		e.stats[i] = make([]entryStat, len(ec.Entries))
		entryCounts[i] = int32(len(ec.Entries))
	}

	ctx := context.Background()
	sp := newScanProgram()
	envs := make([]*worldEnv, len(e.worlds))
	models := make([][][]entryModel, len(e.worlds)) // [w][eacl][entry]
	for wi := range e.worlds {
		w := &e.worlds[wi]
		env := e.dom.env(w)
		envs[wi] = env
		models[wi] = make([][]entryModel, len(e.eacls))
		for ei, ec := range e.eacls {
			models[wi][ei] = make([]entryModel, len(ec.Entries))
			for i := range ec.Entries {
				m := modelEntry(ctx, env, &ec.Entries[i], w)
				models[wi][ei][i] = m
				sp.addEntry(int32(wi), int32(ei), int32(i), m)
			}
		}
	}
	sp.installRules(int32(len(e.worlds)), entryCounts)
	sp.run()

	for wi := range e.worlds {
		r := e.foldWorld(ctx, sp, envs[wi], models[wi], wi, entryCounts)
		if err := e.replay(ctx, envs[wi], &r); err != nil {
			return nil, err
		}
		e.results = append(e.results, r)
	}
	return e, nil
}

// foldWorld mirrors gaa.evaluatePolicy + CheckAuthorization's
// request-result conjunction for one world, reading the fixpoint.
func (e *Engine) foldWorld(ctx context.Context, sp *scanProgram, env *worldEnv, model [][]entryModel, wi int, entryCounts []int32) worldResult {
	r := worldResult{idx: wi, w: e.worlds[wi], deciderYes: map[string]bool{}}

	stopSys := e.mode == eacl.ModeStop && e.sysExists
	var sysF, locF levelFold
	for ei := range e.eacls {
		isLocal := ei >= e.nsys
		if isLocal && stopSys {
			continue // locals never evaluated under stop
		}
		o := sp.outcome(int32(wi), int32(ei), entryCounts[ei])
		if o.applicable {
			r.deciders = append(r.deciders, entryRef{eacl: int32(ei), entry: o.entry, out: o.out})
			st := &e.stats[ei][o.entry]
			st.decided = true
			if o.out == outMaybe {
				st.decidedMaybe = true
			}
			m := &model[ei][o.entry]
			if m.inexact {
				r.inexact = true
			}
			for _, ce := range m.pre {
				if ce.out.Result == gaa.Yes {
					r.deciderYes[ce.cond.Type] = true
				}
			}
		}
		if isLocal {
			locF.add(o)
		} else {
			sysF.add(o)
		}
	}
	sysA, sysD, sysC := sysF.result()
	locA, locD, locC := locF.result()
	applicable, dec, chal := composeFold(e.mode, e.sysExists, sysA, sysD, sysC, locA, locD, locC)
	r.composed = e.conjoinRR(ctx, env, Verdict{Decision: dec, Applicable: applicable, Challenge: chal}, r.deciders, false)

	if e.opts.SystemOnly {
		sysApplicable, sysDec, sysChal := composeFold(e.mode, e.sysExists, sysA, sysD, sysC, false, gaa.Maybe, "")
		r.sysOnly = e.conjoinRR(ctx, env, Verdict{Decision: sysDec, Applicable: sysApplicable, Challenge: sysChal}, r.deciders, true)
	}
	return r
}

// conjoinRR mirrors the request-result phase: the deciders' rr blocks
// run with the composed decision visible and conjoin into it.
// systemOnly restricts to system-level deciders (the projection never
// evaluated local EACLs).
func (e *Engine) conjoinRR(ctx context.Context, env *worldEnv, v Verdict, deciders []entryRef, systemOnly bool) Verdict {
	req := *env.req
	req.Decision = v.Decision
	for _, d := range deciders {
		if systemOnly && int(d.eacl) >= e.nsys {
			continue
		}
		en := &e.eacls[d.eacl].Entries[d.entry]
		var combined gaa.Decision
		evaluated := false
		for _, cond := range en.Conditions {
			if cond.Block != eacl.BlockRequestResult {
				continue
			}
			evaluated = true
			out := env.apiI.EvalCondition(ctx, cond, &req)
			combined = gaa.Conjoin(combined, out.Result)
		}
		if evaluated {
			v.Decision = gaa.Conjoin(v.Decision, combined)
		}
	}
	return v
}

// replay runs the synthesized request through the interpreted and the
// compiled engines and compares each against the abstract verdict.
func (e *Engine) replay(ctx context.Context, env *worldEnv, r *worldResult) error {
	check := func(api *gaa.API, system, local []*eacl.EACL, want Verdict, label string) error {
		policy := gaa.NewPolicy("reason", system, local)
		ans, err := api.CheckAuthorization(ctx, policy, env.req)
		if err != nil {
			return fmt.Errorf("reason: replay %s: %v", label, err)
		}
		got := Verdict{Decision: ans.Decision, Applicable: ans.Applicable, Challenge: ans.Challenge}
		if got != want {
			if r.inexact {
				return nil // ambient state (file hashes) may differ between runs
			}
			return fmt.Errorf("reason: %s disagrees with abstract verdict on world %s: abstract %+v, engine %+v",
				label, describeWorld(e.dom, &r.w), want, got)
		}
		return nil
	}
	if err := check(env.apiI, e.system, e.local, r.composed, "interpreted engine"); err != nil {
		return err
	}
	if err := check(env.apiC, e.system, e.local, r.composed, "compiled engine"); err != nil {
		return err
	}
	if e.opts.SystemOnly {
		if err := check(env.apiI, e.system, nil, r.sysOnly, "interpreted engine (system-only)"); err != nil {
			return err
		}
		if err := check(env.apiC, e.system, nil, r.sysOnly, "compiled engine (system-only)"); err != nil {
			return err
		}
	}
	return nil
}

// Worlds returns the number of worlds modeled.
func (e *Engine) Worlds() int { return len(e.results) }

// Truncated reports whether the grid is known not to cover the policy
// — a dimension or world cap was hit, or no clean URI dodging every
// regex pattern could be found — in which case universal claims
// (proofs, dead-entry findings) are downgraded to "unknown".
func (e *Engine) Truncated() bool { return e.dom.incomplete() }

// DeadEntry is an entry the prover found unreachable in every world.
type DeadEntry struct {
	Source string `json:"source"`
	Line   int    `json:"line"`
	Right  string `json:"right"`
}

// DeadEntries returns entries that never decided in any world, with the
// suppressions that keep the claim sound:
//
//   - the domain was truncated (coverage incomplete) — nothing reported;
//   - the entry's own pre block carries an "re:" regular expression
//     (witnesses for regexes are not synthesized);
//   - an earlier entry in the same EACL decided MAYBE somewhere (with
//     the unevaluated condition resolved, the scan could continue past
//     it and reach this entry).
func (e *Engine) DeadEntries() []DeadEntry {
	if e.dom.incomplete() {
		return nil
	}
	var out []DeadEntry
	for ei, ec := range e.eacls {
		maybeAbove := false
		for i := range ec.Entries {
			st := e.stats[ei][i]
			if !st.decided && !maybeAbove && !entryHasRegexRe(&ec.Entries[i]) {
				out = append(out, DeadEntry{
					Source: ec.Source,
					Line:   ec.Entries[i].Line,
					Right:  ec.Entries[i].Right.String(),
				})
			}
			if st.decidedMaybe {
				maybeAbove = true
			}
		}
	}
	return out
}

// AnonymousGrant is a composed YES obtained without authentication:
// the entry that fired the grant plus the concrete witness request.
type AnonymousGrant struct {
	Source  string
	Line    int
	Right   eacl.Right // the requested right granted, concrete
	Witness Witness
}

// AnonymousGrants returns one record per (granting entry, requested
// right) pair reachable by an unauthenticated client. Inexact worlds
// are excluded, as everywhere.
func (e *Engine) AnonymousGrants() []AnonymousGrant {
	type key struct {
		eacl, entry int32
		right       eacl.Right
	}
	seen := map[key]bool{}
	var out []AnonymousGrant
	for i := range e.results {
		r := &e.results[i]
		if r.w.user != "" || r.inexact || r.composed.Decision != gaa.Yes {
			continue
		}
		for _, d := range r.deciders {
			if d.out != outFireYes {
				continue
			}
			k := key{d.eacl, d.entry, r.w.right}
			if seen[k] {
				continue
			}
			seen[k] = true
			ec := e.eacls[d.eacl]
			out = append(out, AnonymousGrant{
				Source:  ec.Source,
				Line:    ec.Entries[d.entry].Line,
				Right:   r.w.right,
				Witness: e.witness(r, false),
			})
		}
	}
	return out
}

// entryHasRegexRe reports whether the entry's pre block contains a
// regex condition with an "re:" pattern — a guard the domain cannot
// synthesize witnesses for.
func entryHasRegexRe(en *eacl.Entry) bool {
	for _, c := range en.Conditions {
		if c.Block != eacl.BlockPre || (c.Type != "regex" && c.Type != "signature") {
			continue
		}
		for _, p := range strings.Fields(c.Value) {
			if strings.HasPrefix(p, "re:") {
				return true
			}
		}
	}
	return false
}

// describeWorld renders a world compactly for error messages.
func describeWorld(d *domain, w *world) string {
	user := w.user
	if user == "" {
		user = "<anonymous>"
	}
	groups := ""
	for gi, g := range d.groups {
		if w.member[gi] {
			if groups != "" {
				groups += ","
			}
			groups += g
		}
	}
	return fmt.Sprintf("{right=%s %s threat=%s user=%s groups=[%s] ip=%s uri=%q t=%s}",
		w.right.DefAuth, w.right.Value, w.threat, user, groups, w.ip, w.uri, w.at.Format("2006-01-02T15:04"))
}
