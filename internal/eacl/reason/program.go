package reason

import (
	"context"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// program.go translates the composed policy into datalog facts and
// rules over the world grid and mirrors the gaa engine's level
// conjunction and composition fold on top of the fixpoint.
//
// The extensional database encodes, per (world, eacl, entry), what the
// entry would do if the first-match scan reached it:
//
//	blocked(w, e, i)            — right mismatch, or a selector/neg NO
//	                              makes the entry inapplicable
//	decides(w, e, i, out, chal) — the entry ends the scan with outcome
//	                              out (fires-yes / fires-no / maybe /
//	                              final-no) and challenge chal
//
// The intensional relations mirror the scan itself, as linear rules:
//
//	scan(w, e, 0).
//	scan(w, e, i+1)        ← scan(w, e, i) ∧ blocked(w, e, i)
//	decided(w, e, i, out…) ← scan(w, e, i) ∧ decides(w, e, i, out…)
//	exhausted(w, e)        ← scan(w, e, N_e)
//
// Semi-naive bottom-up evaluation of those rules computes, for every
// world at once, which entry decides each EACL — the recursive core of
// first-match semantics. The per-level conjunction (gaa.levelAccum) and
// the composition-mode merge (gaa.composeLevels) are deterministic
// folds over that fixpoint, mirrored in foldPolicy below.

// Entry-local outcome codes (the `out` column of decides/decided).
const (
	outFireYes int32 = iota + 1 // all pre conditions YES on a pos entry
	outFireNo                   // all pre conditions YES on a neg entry
	outMaybe                    // no NO, at least one MAYBE
	outFinalNo                  // requirement NO on a pos entry
)

// condEval is one evaluated pre/rr condition atom.
type condEval struct {
	cond eacl.Condition
	out  gaa.Outcome
}

// entryModel is the per-world entry-local behaviour fed into the EDB.
type entryModel struct {
	matches bool
	blocked bool  // matches but locally inapplicable (selector/neg NO)
	out     int32 // valid when !blocked && matches
	chal    string
	inexact bool // an atom consulted ambient state the world can't pin
	pre     []condEval
}

// condInexact reports condition types whose outcome depends on state
// outside the world assignment (the file system), making per-world
// truth unrepeatable. Worlds touching them are excluded from positive
// answers.
func condInexact(condType string) bool { return condType == "file_sha256" }

// modelEntry evaluates one entry's pre block in scan order through the
// engine's own condition seam and mirrors the evaluateEACL inner loop.
func modelEntry(ctx context.Context, env *worldEnv, en *eacl.Entry, w *world) entryModel {
	m := entryModel{matches: eacl.MatchRight(en.Right, w.right)}
	if !m.matches {
		m.blocked = true
		return m
	}
	sawNo := false
	maybes := 0
	for _, cond := range en.Conditions {
		if cond.Block != eacl.BlockPre {
			continue
		}
		out := env.apiI.EvalCondition(ctx, cond, env.req)
		m.pre = append(m.pre, condEval{cond: cond, out: out})
		if condInexact(cond.Type) {
			m.inexact = true
		}
		switch out.Result {
		case gaa.No:
			if gaa.OutcomeClass(out) == gaa.ClassSelector || en.Right.Sign == eacl.Neg {
				sawNo = true
			} else {
				m.out, m.chal = outFinalNo, out.Challenge
				return m
			}
		case gaa.Maybe:
			maybes++
		case gaa.Yes:
			// met; continue within the entry
		default:
			maybes++ // invalid decision: unevaluated, fail-safe
		}
		if sawNo {
			break
		}
	}
	switch {
	case sawNo:
		m.blocked = true
	case maybes > 0:
		m.out = outMaybe
	case en.Right.Sign == eacl.Pos:
		m.out = outFireYes
	default:
		m.out = outFireNo
	}
	return m
}

// scanProgram is the datalog program plus the lookup tables the fold
// needs afterwards.
type scanProgram struct {
	prog       *program
	blockedRel *relation
	decidesRel *relation
	scan       *relation
	decided    *relation
	exhausted  *relation
	chalTab    []string // challenge interning; index 0 is ""
	chalIDs    map[string]int32
}

func newScanProgram() *scanProgram {
	sp := &scanProgram{
		prog:    &program{},
		chalTab: []string{""},
		chalIDs: map[string]int32{"": 0},
	}
	blocked := sp.prog.relation("blocked")
	decides := sp.prog.relation("decides")
	sp.scan = sp.prog.relation("scan")
	sp.decided = sp.prog.relation("decided")
	sp.exhausted = sp.prog.relation("exhausted")
	sp.blockedRel = blocked
	sp.decidesRel = decides
	return sp
}

func (sp *scanProgram) intern(chal string) int32 {
	if id, ok := sp.chalIDs[chal]; ok {
		return id
	}
	id := int32(len(sp.chalTab))
	sp.chalTab = append(sp.chalTab, chal)
	sp.chalIDs[chal] = id
	return id
}

// addEntry records one (world, eacl, entry) model in the EDB.
func (sp *scanProgram) addEntry(w, e, i int32, m entryModel) {
	if m.blocked {
		sp.blockedRel.insert(tuple{w, e, i})
		return
	}
	sp.decidesRel.insert(tuple{w, e, i, m.out, sp.intern(m.chal)})
}

// installRules wires the linear scan rules; entries[e] is the entry
// count of EACL e (same for every world).
func (sp *scanProgram) installRules(worlds int32, entries []int32) {
	blocked, decides := sp.blockedRel, sp.decidesRel
	scan, decided, exhausted := sp.scan, sp.decided, sp.exhausted
	// scan(w, e, i) ∧ blocked(w, e, i) → scan(w, e, i+1)
	// scan(w, e, i) ∧ decides(w, e, i, o, c) → decided(w, e, i, o, c)
	// scan(w, e, N_e) → exhausted(w, e)
	sp.prog.rule(scan, func(t tuple, emit func(*relation, tuple)) {
		w, e, i := t[0], t[1], t[2]
		if i >= entries[e] {
			emit(exhausted, tuple{w, e})
			return
		}
		if blocked.has(tuple{w, e, i}) {
			emit(scan, tuple{w, e, i + 1})
		}
		for o := outFireYes; o <= outFinalNo; o++ {
			for c := int32(0); c < int32(len(sp.chalTab)); c++ {
				if decides.has(tuple{w, e, i, o, c}) {
					emit(decided, tuple{w, e, i, o, c})
				}
			}
		}
	})
	// Seed: scan(w, e, 0) for every world and EACL.
	for w := int32(0); w < worlds; w++ {
		for e := range entries {
			sp.scan.insert(tuple{w, int32(e), 0})
		}
	}
}

func (sp *scanProgram) run() { sp.prog.run() }

// eaclOutcome reads one (world, eacl) result off the fixpoint.
type eaclOutcome struct {
	applicable bool
	decision   gaa.Decision
	challenge  string
	entry      int32 // deciding entry index, -1 when inapplicable
	out        int32 // entry-local outcome code, 0 when inapplicable
}

func (sp *scanProgram) outcome(w, e int32, entries int32) eaclOutcome {
	for i := int32(0); i < entries; i++ {
		for o := outFireYes; o <= outFinalNo; o++ {
			for c := int32(0); c < int32(len(sp.chalTab)); c++ {
				if !sp.decided.has(tuple{w, e, i, o, c}) {
					continue
				}
				res := eaclOutcome{applicable: true, entry: i, out: o, challenge: sp.chalTab[c]}
				switch o {
				case outFireYes:
					res.decision = gaa.Yes
				case outFireNo, outFinalNo:
					res.decision = gaa.No
				case outMaybe:
					res.decision = gaa.Maybe
				}
				return res
			}
		}
	}
	return eaclOutcome{decision: gaa.Maybe, entry: -1}
}

// levelFold mirrors gaa.levelAccum: conjunction over one level's
// applicable EACLs, with challenge curability (a challenged deny is
// curable only when no deny at the level lacked a challenge).
type levelFold struct {
	applicable       bool
	dec              gaa.Decision
	deniedUncurable  bool
	deniedChallenged string
}

func (l *levelFold) add(o eaclOutcome) {
	if !o.applicable {
		return
	}
	l.applicable = true
	l.dec = gaa.Conjoin(l.dec, o.decision)
	if o.decision == gaa.No {
		if o.challenge == "" {
			l.deniedUncurable = true
		} else if l.deniedChallenged == "" {
			l.deniedChallenged = o.challenge
		}
	}
}

func (l *levelFold) result() (applicable bool, dec gaa.Decision, challenge string) {
	dec = gaa.Maybe
	if l.applicable {
		dec = l.dec
	}
	if !l.deniedUncurable {
		challenge = l.deniedChallenged
	}
	return l.applicable, dec, challenge
}

// composeFold mirrors gaa.composeLevels for one world.
func composeFold(mode eacl.CompositionMode, sysExists bool,
	sysA bool, sysD gaa.Decision, sysC string,
	locA bool, locD gaa.Decision, locC string) (applicable bool, dec gaa.Decision, chal string) {

	switch {
	case mode == eacl.ModeStop && sysExists:
		return sysA, sysD, sysC
	case !sysA && !locA:
		return false, gaa.Maybe, ""
	case mode == eacl.ModeExpand:
		applicable = true
		switch {
		case !sysA:
			dec = locD
		case !locA:
			dec = sysD
		default:
			dec = gaa.Disjoin(sysD, locD)
		}
	default: // narrow (and stop without a system policy)
		applicable = true
		switch {
		case !sysA:
			dec = locD
		case !locA:
			dec = sysD
		default:
			dec = gaa.Conjoin(sysD, locD)
		}
	}
	if dec == gaa.No {
		curable := true
		challenge := ""
		levels := []struct {
			a bool
			d gaa.Decision
			c string
		}{{sysA, sysD, sysC}, {locA, locD, locC}}
		for _, lv := range levels {
			if !lv.a || lv.d != gaa.No {
				continue
			}
			if lv.c == "" {
				curable = false
				break
			}
			if challenge == "" {
				challenge = lv.c
			}
		}
		if curable {
			chal = challenge
		}
	}
	return applicable, dec, chal
}
