package reason

import (
	"fmt"

	"gaaapi/internal/gaa"
)

// Proofs are universal claims over the world grid. Unlike queries, a
// proof can come back "unknown": when the domain was truncated the grid
// no longer covers the policy's behaviours and a universal claim cannot
// be discharged; when an inexact world (one whose verdict consulted
// ambient state, e.g. a file hash) violates the property, the violation
// existed at analysis time but cannot be pinned to a replayable witness.
//
//	no-anonymous-yes — no unauthenticated request obtains a composed YES
//	no-dead-entries  — every entry decides its EACL in some world (after
//	                   the DeadEntries suppressions; see that method)

// Proof outcomes.
const (
	Proved  = "proved"
	Refuted = "refuted"
	Unknown = "unknown"
)

// ProofResult is the JSON answer to one -prove flag.
type ProofResult struct {
	Prove       string      `json:"prove"`
	Result      string      `json:"result"` // proved | refuted | unknown
	Reason      string      `json:"reason,omitempty"`
	Witnesses   []Witness   `json:"witnesses,omitempty"`
	DeadEntries []DeadEntry `json:"dead_entries,omitempty"`
	Worlds      int         `json:"worlds"`
}

// ProofNames lists the supported properties.
var ProofNames = []string{"no-anonymous-yes", "no-dead-entries"}

// Prove discharges one named property.
func (e *Engine) Prove(name string) (*ProofResult, error) {
	res := &ProofResult{Prove: name, Worlds: len(e.results)}
	switch name {
	case "no-anonymous-yes":
		inexactHit := false
		for i := range e.results {
			r := &e.results[i]
			if r.w.user != "" || r.composed.Decision != gaa.Yes {
				continue
			}
			if r.inexact {
				inexactHit = true
				continue
			}
			res.Result = Refuted
			if len(res.Witnesses) < maxWitnesses {
				res.Witnesses = append(res.Witnesses, e.witness(r, false))
			}
		}
		switch {
		case res.Result == Refuted:
		case inexactHit:
			res.Result = Unknown
			res.Reason = "an anonymous YES depends on ambient state (inexact world)"
		case e.dom.incomplete():
			res.Result = Unknown
			res.Reason = "incomplete domain: the world grid does not cover the policy"
		default:
			res.Result = Proved
		}
	case "no-dead-entries":
		if e.dom.incomplete() {
			res.Result = Unknown
			res.Reason = "incomplete domain: the world grid does not cover the policy"
			return res, nil
		}
		res.DeadEntries = e.DeadEntries()
		if len(res.DeadEntries) > 0 {
			res.Result = Refuted
		} else {
			res.Result = Proved
		}
	default:
		return nil, fmt.Errorf("unknown property %q (have: %v)", name, ProofNames)
	}
	return res, nil
}
