package reason

import "strings"

// Witness synthesis for the '*'-glob language of eacl.Glob: '*' is the
// only metacharacter, every other byte (including '?') matches itself.
// A pattern's canonical witness is the pattern with its stars removed —
// always matched, and built from the policy's own glob alphabet, which
// is what keeps the abstract domain grounded in the policy text.

// globWitness returns a string matched by pattern: the literal bytes
// with every '*' deleted. The result may be empty ("", for "*" or "").
func globWitness(pattern string) string {
	return strings.ReplaceAll(pattern, "*", "")
}

// globIntersectWitness returns a shortest string matched by both
// patterns, or ("", false) when their languages are disjoint. It runs a
// BFS over the product of the two patterns' glob automata: state (i, j)
// means "a[i:] and b[j:] must both match the remaining input". Epsilon
// moves skip a star; consuming moves either advance matching literals
// or feed one pattern's literal into the other's star.
func globIntersectWitness(a, b string) (string, bool) {
	n, m := len(a), len(b)
	type state struct{ i, j int }
	// parent reconstruction: prev state plus the byte consumed entering
	// this state (-1 for epsilon).
	type via struct {
		prev state
		c    int
	}
	seen := map[state]via{{0, 0}: {state{-1, -1}, -1}}
	queue := []state{{0, 0}}
	build := func(s state) string {
		var rev []byte
		for s.i >= 0 {
			v := seen[s]
			if v.c >= 0 {
				rev = append(rev, byte(v.c))
			}
			s = v.prev
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return string(rev)
	}
	push := func(next state, from state, c int) {
		if _, ok := seen[next]; ok {
			return
		}
		seen[next] = via{from, c}
		queue = append(queue, next)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.i == n && s.j == m {
			return build(s), true
		}
		aStar := s.i < n && a[s.i] == '*'
		bStar := s.j < m && b[s.j] == '*'
		// Epsilon moves: a star may match the empty run.
		if aStar {
			push(state{s.i + 1, s.j}, s, -1)
		}
		if bStar {
			push(state{s.i, s.j + 1}, s, -1)
		}
		// Consuming moves need a byte both sides accept. Two stars never
		// need to consume together: skipping one (epsilon) reaches every
		// state a joint consume could.
		switch {
		case s.i < n && s.j < m && !aStar && !bStar:
			if a[s.i] == b[s.j] {
				push(state{s.i + 1, s.j + 1}, s, int(a[s.i]))
			}
		case aStar && s.j < m && !bStar:
			push(state{s.i, s.j + 1}, s, int(b[s.j]))
		case bStar && s.i < n && !aStar:
			push(state{s.i + 1, s.j}, s, int(a[s.i]))
		}
	}
	return "", false
}
