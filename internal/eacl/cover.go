package eacl

// This file decides inclusion and intersection for the '*'-glob pattern
// language of Glob (match.go). Both questions are decidable in
// O(len(a)*len(b)) for patterns whose only metacharacter is '*', and
// both are what a static analyzer needs: inclusion proves an entry
// unreachable (an earlier pattern covers everything a later one can
// match), intersection proves two entries can fire on the same request
// (a pos/neg conflict).

// GlobCovers reports whether pattern outer matches every string that
// pattern inner matches — language inclusion L(inner) ⊆ L(outer).
//
// GlobCovers("GET /cgi-bin/*", "GET /cgi-bin/phf") is true;
// GlobCovers("*phf*", "*") is false (inner matches "", outer does not).
func GlobCovers(outer, inner string) bool {
	n, m := len(outer), len(inner)
	// cover[j] is cover(i, j) for the current i; iterate i from n down.
	cover := make([]bool, m+1)
	next := make([]bool, m+1) // cover(i+1, ·)
	// Base row i == n: the empty outer pattern matches only the empty
	// string, so it covers inner[j:] only when inner[j:] is empty.
	// (inner[j:] == "*..." generates non-empty strings too.)
	next[m] = true
	for i := n - 1; i >= 0; i-- {
		// Column j == m: outer[i:] must match the empty string.
		cover[m] = outer[i] == '*' && next[m]
		for j := m - 1; j >= 0; j-- {
			switch {
			case outer[i] == '*':
				// The star absorbs inner's next symbol (literal or
				// star) or yields to the rest of outer.
				cover[j] = next[j] || cover[j+1]
			case inner[j] == '*':
				// inner can generate any byte here; a literal outer
				// byte cannot cover that.
				cover[j] = false
			case outer[i] == inner[j]:
				cover[j] = next[j+1]
			default:
				cover[j] = false
			}
		}
		cover, next = next, cover
	}
	return next[0]
}

// GlobsOverlap reports whether some string is matched by both patterns
// — language intersection L(a) ∩ L(b) ≠ ∅.
//
// GlobsOverlap("GET /a*", "*phf*") is true (e.g. "GET /aphf");
// GlobsOverlap("GET *", "POST *") is false.
func GlobsOverlap(a, b string) bool {
	n, m := len(a), len(b)
	inter := make([]bool, m+1)
	next := make([]bool, m+1) // inter(i+1, ·)
	// Base row i == n: empty a intersects b[j:] iff b[j:] can generate
	// the empty string, i.e. is all stars.
	next[m] = true
	for j := m - 1; j >= 0; j-- {
		next[j] = b[j] == '*' && next[j+1]
	}
	for i := n - 1; i >= 0; i-- {
		// Column j == m: a[i:] must be able to generate "".
		inter[m] = a[i] == '*' && next[m]
		for j := m - 1; j >= 0; j-- {
			switch {
			case a[i] == '*':
				inter[j] = next[j] || inter[j+1]
			case b[j] == '*':
				inter[j] = inter[j+1] || next[j]
			case a[i] == b[j]:
				inter[j] = next[j+1]
			default:
				inter[j] = false
			}
		}
		inter, next = next, inter
	}
	return next[0]
}

// GlobsEquivalent reports whether two patterns match exactly the same
// strings — language equality, decided as mutual inclusion. Literal
// bytes other than '*' (including '?') must agree; "GET /a?*" and
// "GET /a?**" are equivalent, "GET /a?" and "GET /ab" are not.
func GlobsEquivalent(a, b string) bool {
	return GlobCovers(a, b) && GlobCovers(b, a)
}

// RightCovers reports whether every right matched by inner's patterns
// is also matched by outer's — per-component glob inclusion over the
// defining authority and the value. Signs are ignored, as in
// MatchRight: a neg entry for a right shadows a pos entry for a
// narrower right just the same.
func RightCovers(outer, inner Right) bool {
	return GlobCovers(outer.DefAuth, inner.DefAuth) &&
		GlobCovers(outer.Value, inner.Value)
}

// RightsOverlap reports whether some requested right is matched by both
// entries' patterns. Signs are ignored.
func RightsOverlap(a, b Right) bool {
	return GlobsOverlap(a.DefAuth, b.DefAuth) &&
		GlobsOverlap(a.Value, b.Value)
}

// RightsEquivalent reports whether two rights match exactly the same
// requested rights AND carry the same sign: per-component language
// equality over the defining authority and the value. Unlike the other
// predicates the sign participates, because equivalence is used to
// decide whether one entry can stand in for another.
func RightsEquivalent(a, b Right) bool {
	return a.Sign == b.Sign &&
		GlobsEquivalent(a.DefAuth, b.DefAuth) &&
		GlobsEquivalent(a.Value, b.Value)
}
