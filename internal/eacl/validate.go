package eacl

import "fmt"

// Severity classifies validator findings.
type Severity int

const (
	// Warning findings are suspicious but legal policies.
	Warning Severity = iota + 1
	// Error findings are policies the evaluator rejects or that can
	// never behave as written.
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one validator diagnostic.
type Finding struct {
	Severity Severity
	Line     int
	Msg      string
}

// String renders the finding as "line N: severity: msg".
func (f Finding) String() string {
	return fmt.Sprintf("line %d: %s: %s", f.Line, f.Severity, f.Msg)
}

// ValidateOptions configures Validate.
type ValidateOptions struct {
	// KnownCondition, when non-nil, reports whether an evaluator is
	// registered for (condType, defAuth). Unknown conditions yield a
	// warning: the paper's semantics evaluate them to MAYBE at run time.
	KnownCondition func(condType, defAuth string) bool
}

// Validate performs the static checks of the paper's section 2 "policy
// correctness and consistency" future-work tool:
//
//   - entries with no conditions that shadow every later entry with the
//     same or narrower right (unreachable entries)
//   - duplicate entries (same right, same conditions)
//   - mid/post condition blocks on negative rights (the grammar gives
//     nright only pre and request-result blocks)
//   - empty EACLs and empty condition values for types that require one
//   - unknown condition types, via opts.KnownCondition
func Validate(e *EACL, opts ValidateOptions) []Finding {
	var out []Finding
	if len(e.Entries) == 0 {
		out = append(out, Finding{Warning, 0, "EACL has no entries; evaluation always yields MAYBE (uncertain)"})
	}
	for i := range e.Entries {
		en := &e.Entries[i]
		if en.Right.Sign == Neg {
			for _, c := range en.Conditions {
				if c.Block == BlockMid || c.Block == BlockPost {
					out = append(out, Finding{Error, c.Line,
						fmt.Sprintf("%s block not allowed on neg_access_right (grammar: nright ::= pre_cond_block rr_cond_block)", c.Block)})
				}
			}
		}
		// Duplicates are decided semantically: rights compare as glob
		// languages (RightsEquivalent, so "GET /a?*" duplicates
		// "GET /a?**"), conditions literally.
		for j := 0; j < i; j++ {
			prev := &e.Entries[j]
			if RightsEquivalent(prev.Right, en.Right) && condKey(prev) == condKey(en) {
				out = append(out, Finding{Warning, en.Line,
					fmt.Sprintf("duplicate of entry at line %d", prev.Line)})
				break
			}
		}
		if opts.KnownCondition != nil {
			for _, c := range en.Conditions {
				if !opts.KnownCondition(c.Type, c.DefAuth) {
					out = append(out, Finding{Warning, c.Line,
						fmt.Sprintf("no evaluator registered for condition %s_%s (authority %q); evaluates to MAYBE", c.Block, c.Type, c.DefAuth)})
				}
			}
		}
		// Shadowing: an earlier unconditional entry whose right covers
		// this entry's right decides first; this entry never fires.
		for j := 0; j < i; j++ {
			prev := &e.Entries[j]
			if len(prev.Block(BlockPre)) == 0 && RightCovers(prev.Right, en.Right) {
				out = append(out, Finding{Warning, en.Line,
					fmt.Sprintf("unreachable: shadowed by unconditional entry at line %d", prev.Line)})
				break
			}
		}
	}
	return out
}

// condKey canonicalizes an entry's condition list for duplicate
// comparison; the right is compared separately via RightsEquivalent.
func condKey(en *Entry) string {
	var key string
	for _, c := range en.Conditions {
		key += "\n" + c.String()
	}
	return key
}
