package eacl

// MatchRight reports whether the entry right covers the requested right:
// both the defining authority and the value must glob-match. The
// requested right's sign is ignored — a neg_access_right entry for
// "apache GET /x" matches a request for that same right and denies it.
func MatchRight(entry, requested Right) bool {
	return Glob(entry.DefAuth, requested.DefAuth) && Glob(entry.Value, requested.Value)
}

// Glob reports whether s matches pattern, where '*' in pattern matches
// any (possibly empty) run of characters and every other byte matches
// itself. This is the wildcard language used throughout the paper's
// policies ("*", "*phf*", "GET /cgi-bin/*").
func Glob(pattern, s string) bool {
	// Iterative matcher with single-star backtracking: O(len(p)*len(s))
	// worst case, no allocation.
	var (
		pi, si         int
		starPi, starSi = -1, 0
	)
	for si < len(s) {
		switch {
		case pi < len(pattern) && pattern[pi] == '*':
			starPi, starSi = pi, si
			pi++
		case pi < len(pattern) && pattern[pi] == s[si]:
			pi++
			si++
		case starPi >= 0:
			// Backtrack: let the last '*' consume one more byte.
			starSi++
			pi, si = starPi+1, starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}
