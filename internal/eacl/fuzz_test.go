package eacl

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that every policy
// it accepts round-trips through the canonical printer.
func FuzzParse(f *testing.F) {
	f.Add(policy71System)
	f.Add(policy72Local)
	f.Add("eacl_mode stop\npos_access_right a b c\npre_cond_x y z w\n")
	f.Add("# only comments\n\n")
	f.Add("pos_access_right apache *\nmid_cond_quota local cpu_ms<=50")
	f.Add("eacl mode 2\nneg_access_right * *")
	// Analyzer crash seeds: inputs that stress the static-analysis
	// rules downstream of the parser (bad values, contradictions,
	// shadowing globs, composition-sensitive shapes).
	f.Add("pos_access_right apache GET /cgi-bin/*\nneg_access_right apache GET /cgi-bin/phf\npre_cond_regex gnu *phf*")
	f.Add("neg_access_right apache *\npre_cond_regex gnu re:[unclosed\npre_cond_location local 300.0.0.0/8")
	f.Add("pos_access_right apache *\npre_cond_time_window local 09:00-09:00\npre_cond_time_window local 10:00-11:00 Mon")
	f.Add("pos_access_right apache *\npre_cond_system_threat_level local =high\npre_cond_system_threat_level local =low")
	f.Add("neg_access_right apache *\npre_cond_threshold local counter= key= max=x window=-1s")
	f.Add("pos_access_right apache *\npost_cond_file_sha256 local /etc/passwd nothex")
	f.Add("eacl_mode stop\nneg_access_right * *\npre_cond_expr local input_length>@max_input")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseString(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := e.String()
		again, err := ParseString(printed)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if again.String() != printed {
			t.Fatalf("printing is not a fixpoint:\nfirst:  %q\nsecond: %q", printed, again.String())
		}
		if len(again.Entries) != len(e.Entries) {
			t.Fatalf("entry count changed across round trip: %d -> %d", len(e.Entries), len(again.Entries))
		}
	})
}

// FuzzGlob checks the matcher never panics and is consistent with the
// trivial containment facts.
func FuzzGlob(f *testing.F) {
	f.Add("*phf*", "GET /cgi-bin/phf")
	f.Add("a*b*c", "abc")
	f.Add("", "")
	f.Add("***", "anything")
	f.Fuzz(func(t *testing.T, pattern, s string) {
		got := Glob(pattern, s)
		// "*" + pattern + "*" must match at least everything pattern
		// matches (widening property).
		if got && !Glob("*"+pattern+"*", s) {
			t.Fatalf("widening violated: Glob(%q, %q) but not Glob(%q, %q)",
				pattern, s, "*"+pattern+"*", s)
		}
		// A pattern without metacharacters matches only itself.
		if !strings.Contains(pattern, "*") {
			if got != (pattern == s) {
				t.Fatalf("literal pattern %q vs %q: got %v", pattern, s, got)
			}
		}
	})
}
