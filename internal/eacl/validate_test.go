package eacl

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *EACL {
	t.Helper()
	e, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return e
}

func findingWith(fs []Finding, substr string) *Finding {
	for i := range fs {
		if strings.Contains(fs[i].Msg, substr) {
			return &fs[i]
		}
	}
	return nil
}

func TestValidateCleanPolicy(t *testing.T) {
	e := mustParse(t, policy72Local)
	fs := Validate(e, ValidateOptions{})
	if len(fs) != 0 {
		t.Errorf("findings on clean policy: %v", fs)
	}
}

func TestValidateEmpty(t *testing.T) {
	fs := Validate(&EACL{}, ValidateOptions{})
	if findingWith(fs, "no entries") == nil {
		t.Errorf("want 'no entries' warning, got %v", fs)
	}
}

func TestValidateNegWithMidBlock(t *testing.T) {
	e := mustParse(t, `
neg_access_right apache *
mid_cond_quota local cpu_ms<=10
`)
	fs := Validate(e, ValidateOptions{})
	f := findingWith(fs, "not allowed on neg_access_right")
	if f == nil {
		t.Fatalf("want mid-on-neg error, got %v", fs)
	}
	if f.Severity != Error {
		t.Errorf("severity = %v, want Error", f.Severity)
	}
}

func TestValidateDuplicateEntry(t *testing.T) {
	e := mustParse(t, `
pos_access_right apache GET /a
pre_cond_time_window local 09:00-17:00
pos_access_right apache GET /a
pre_cond_time_window local 09:00-17:00
`)
	fs := Validate(e, ValidateOptions{})
	if findingWith(fs, "duplicate of entry") == nil {
		t.Errorf("want duplicate warning, got %v", fs)
	}
}

// Two spellings of the same glob language — '?' is a literal byte and
// "?*" vs "?**" generate identical strings — must be flagged as
// duplicates even though the strings differ byte-for-byte. A literal
// string comparison (the pre-PR-7 check) misses this pair.
func TestValidateDuplicateEntrySemanticGlobs(t *testing.T) {
	e := mustParse(t, `
pos_access_right apache GET /report?*
pos_access_right apache GET /report?**
`)
	fs := Validate(e, ValidateOptions{})
	f := findingWith(fs, "duplicate of entry")
	if f == nil {
		t.Fatalf("want duplicate warning for equivalent globs, got %v", fs)
	}
	// And genuinely different languages must NOT be merged: '?' is a
	// literal, so /report? and /reportX differ.
	e2 := mustParse(t, `
pos_access_right apache GET /report?
pos_access_right apache GET /reportX
`)
	if f2 := findingWith(Validate(e2, ValidateOptions{}), "duplicate of entry"); f2 != nil {
		t.Errorf("distinct globs flagged as duplicates: %v", f2)
	}
}

func TestValidateShadowedEntry(t *testing.T) {
	e := mustParse(t, `
pos_access_right apache *
neg_access_right apache GET /secret
pre_cond_regex gnu *secret*
`)
	fs := Validate(e, ValidateOptions{})
	f := findingWith(fs, "unreachable")
	if f == nil {
		t.Fatalf("want shadow warning, got %v", fs)
	}
	if f.Line != 3 {
		t.Errorf("finding line = %d, want 3", f.Line)
	}
}

func TestValidateShadowedByGlobEntry(t *testing.T) {
	// The runtime matcher uses Glob, so an unconditional glob entry
	// shadows every narrower pattern — not just literal "*" components.
	e := mustParse(t, `
pos_access_right apache GET /cgi-bin/*
neg_access_right apache GET /cgi-bin/phf
pre_cond_regex gnu *phf*
`)
	fs := Validate(e, ValidateOptions{})
	f := findingWith(fs, "unreachable")
	if f == nil {
		t.Fatalf("want glob-shadow warning, got %v", fs)
	}
	if f.Line != 3 {
		t.Errorf("finding line = %d, want 3", f.Line)
	}
}

func TestValidateNotShadowedByDisjointGlob(t *testing.T) {
	e := mustParse(t, `
pos_access_right apache GET /static/*
neg_access_right apache GET /cgi-bin/phf
pre_cond_regex gnu *phf*
`)
	fs := Validate(e, ValidateOptions{})
	if f := findingWith(fs, "unreachable"); f != nil {
		t.Errorf("disjoint glob should not shadow: %v", f)
	}
}

func TestValidateNotShadowedWhenEarlierHasConditions(t *testing.T) {
	// An earlier entry WITH pre-conditions can fall through, so a later
	// overlapping entry is reachable.
	e := mustParse(t, `
pos_access_right apache *
pre_cond_system_threat_level local =low
neg_access_right apache *
pre_cond_regex gnu *phf*
`)
	fs := Validate(e, ValidateOptions{})
	if f := findingWith(fs, "unreachable"); f != nil {
		t.Errorf("unexpected shadow warning: %v", f)
	}
}

func TestValidateUnknownCondition(t *testing.T) {
	e := mustParse(t, `
pos_access_right apache *
pre_cond_phase_of_moon local full
`)
	known := func(condType, defAuth string) bool { return condType == "regex" }
	fs := Validate(e, ValidateOptions{KnownCondition: known})
	if findingWith(fs, "no evaluator registered") == nil {
		t.Errorf("want unknown-condition warning, got %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: Error, Line: 4, Msg: "boom"}
	if got, want := f.String(), "line 4: error: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if Warning.String() != "warning" {
		t.Error("Warning.String mismatch")
	}
}
