package analysis

import (
	"gaaapi/internal/eacl"
	"gaaapi/internal/eacl/reason"
)

// Layer 4: prover-backed rules. These run the whole-policy reasoning
// engine (internal/eacl/reason) instead of pattern matching: the engine
// enumerates a finite world grid synthesized from the policy text,
// replays every world through the real evaluator, and the rules read
// reachability facts off the fixpoint. They therefore see through
// condition semantics the flow rules (W003/W007) cannot — a threat
// selector that excludes every level, a time window nothing satisfies,
// overlapping guards that jointly shadow an entry.
//
// Soundness discipline: the prover stays silent whenever its claim
// could be incomplete — a truncated domain, an "re:" regex it cannot
// synthesize witnesses for, or an earlier entry stuck at MAYBE that a
// resolved runtime value could unblock.

// proverMaxWorlds bounds lint-time prover cost; past it the domain is
// truncated and the prover rules stay silent.
const proverMaxWorlds = 8000

var (
	metaProverDeadEntry = Meta{
		Code: "W022", Name: "prover-dead-entry", Severity: SeverityWarning,
		Summary: "the prover found no request, at any threat level, that this entry decides: earlier entries always decide first or its own guards are unsatisfiable",
		Example: "pos_access_right apache *\npos_access_right apache GET /x",
		Fix:     "reorder the entries, narrow the earlier entries' rights, or delete the dead entry",
	}
	metaProverAnonGrant = Meta{
		Code: "W023", Name: "prover-anonymous-grant", Severity: SeverityWarning,
		Summary: "an unauthenticated client can obtain this right even though another entry guards an overlapping right with pre_cond_accessid_USER",
		Example: "pos_access_right apache GET /admin/*\npre_cond_accessid_USER apache *\npos_access_right apache *",
		Fix:     "add pre_cond_accessid_USER to the granting entry, or order the authenticated entry after a narrower anonymous grant",
	}
)

// proverDeadEntryRule (W022) runs the reasoning engine over one file as
// a stand-alone local policy and reports entries that decide in no
// world. The engine's DeadEntries accessor already applies the
// soundness suppressions (truncation, re: regexes, MAYBE-blocked
// scans).
type proverDeadEntryRule struct{}

func (proverDeadEntryRule) Meta() Meta { return metaProverDeadEntry }

func (proverDeadEntryRule) CheckFile(f *File, r *Reporter) {
	if len(f.EACL.Entries) < 2 {
		return // a sole entry is dead only if unsatisfiable; leave that to E-rules
	}
	eng, err := reason.New(nil, []*eacl.EACL{f.EACL}, reason.Options{MaxWorlds: proverMaxWorlds})
	if err != nil {
		return // abstract/concrete disagreement: a prover bug, not a policy finding
	}
	for _, d := range eng.DeadEntries() {
		r.Report(d.Source, d.Line,
			"prover: no request at any threat level reaches this entry; every world is decided earlier in the scan")
	}
}

// proverAnonGrantRule (W023) runs the reasoning engine over the full
// composition and reports grants reachable anonymously when the policy
// set elsewhere demands authentication for an overlapping right — the
// signature of a forgotten pre_cond_accessid_USER.
type proverAnonGrantRule struct{}

func (proverAnonGrantRule) Meta() Meta { return metaProverAnonGrant }

func (proverAnonGrantRule) CheckComposition(c *Composition, r *Reporter) {
	eng, err := reason.New(c.System, c.Local, reason.Options{MaxWorlds: proverMaxWorlds})
	if err != nil {
		return
	}
	all := append(append([]*eacl.EACL{}, c.System...), c.Local...)
	for _, g := range eng.AnonymousGrants() {
		guard := findUserGuard(all, g.Right)
		if guard == nil {
			continue // anonymity is policy intent when nothing demands authentication
		}
		r.Report(g.Source, g.Line,
			"prover: %q is obtainable anonymously (e.g. client %s requesting %q), but %s:%d guards an overlapping right with pre_cond_accessid_USER",
			g.Right.DefAuth+" "+g.Right.Value, g.Witness.ClientIP, g.Witness.RequestURI,
			guard.source, guard.line)
	}
}

type guardRef struct {
	source string
	line   int
}

// findUserGuard returns an entry whose right pattern matches the
// granted right and whose pre block requires accessid_USER.
func findUserGuard(eacls []*eacl.EACL, granted eacl.Right) *guardRef {
	for _, e := range eacls {
		for i := range e.Entries {
			en := &e.Entries[i]
			if !eacl.MatchRight(en.Right, granted) {
				continue
			}
			for _, cond := range en.Conditions {
				if cond.Block == eacl.BlockPre && cond.Type == "accessid_USER" {
					return &guardRef{source: e.Source, line: en.Line}
				}
			}
		}
	}
	return nil
}
