package analysis

import (
	"gaaapi/internal/actions"
	"gaaapi/internal/conditions"
)

// BuiltinKnown returns a Known function accepting every built-in
// condition and action routine under any authority — the vocabulary
// conditions.Register and actions.Register install. Drivers with a GAA
// configuration file should pass the registry's own Known instead
// (gaa.API.Known), so findings reflect the deployed vocabulary.
func BuiltinKnown() func(condType, defAuth string) bool {
	known := map[string]bool{}
	for _, name := range conditions.Names() {
		known[name] = true
	}
	for _, name := range actions.Names() {
		known[name] = true
	}
	return func(condType, defAuth string) bool { return known[condType] }
}
