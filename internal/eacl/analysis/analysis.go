// Package analysis is the EACL static-analysis engine — the "automated
// tool to ensure policy correctness and consistency" the paper lists as
// future work in section 2. It layers three kinds of checks on top of
// the syntactic validation in package eacl:
//
//  1. value-level semantic validation: condition values that the
//     runtime evaluators would bounce to MAYBE (regexes that don't
//     compile, CIDRs that don't parse, empty time windows, malformed
//     threshold expressions, bad digests) are errors at lint time;
//  2. entry- and file-level flow analysis: glob-aware unreachability
//     and subsumption, pos/neg conflicts over overlapping rights, and
//     intra-entry contradictions that make an entry unsatisfiable;
//  3. cross-file composition analysis: dead local policies under
//     "stop", mandatory-bypass risks under "expand", and grants that
//     can never be satisfied under "narrow".
//
// Every rule carries a stable diagnostic code (E0xx for errors, W0xx
// for warnings) so findings can be filtered, suppressed, and exported
// to SARIF for code-scanning pipelines. cmd/eaclint is the command-line
// driver.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"gaaapi/internal/eacl"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// SeverityWarning marks suspicious but legal policies.
	SeverityWarning Severity = iota + 1
	// SeverityError marks policies that cannot behave as written.
	SeverityError
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// ParseSeverity converts "warning" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "warning":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	default:
		return 0, fmt.Errorf("unknown severity %q (want warning or error)", s)
	}
}

// Meta describes a rule: its stable code, human name, severity, and the
// catalog documentation rendered into docs/EACL.md.
type Meta struct {
	// Code is the stable diagnostic code ("E001", "W003").
	Code string
	// Name is the short kebab-case rule name ("regex-syntax").
	Name string
	// Severity is the rule's fixed severity.
	Severity Severity
	// Summary is a one-line description of what the rule detects.
	Summary string
	// Example is a minimal policy fragment triggering the rule.
	Example string
	// Fix describes how a policy officer repairs the finding.
	Fix string
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Code and Rule identify the rule that fired.
	Code string `json:"code"`
	Rule string `json:"rule"`
	// Severity is the rule severity ("warning" or "error" in JSON).
	Severity Severity `json:"-"`
	// File is the EACL source (eacl.EACL.Source) the finding is in.
	File string `json:"file"`
	// Line is the 1-based source line, 0 when the finding concerns the
	// file as a whole.
	Line int `json:"line"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

// String renders "file:line: severity: message [code]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s [%s]", d.File, d.Line, d.Severity, d.Message, d.Code)
}

// Rule is one analysis check. Concrete rules also implement FileRule,
// CompositionRule, or both; the analyzer dispatches on those.
type Rule interface {
	// Meta returns the rule's catalog entry.
	Meta() Meta
}

// File is the unit of single-policy analysis: a parsed EACL plus the
// registration vocabulary findings are checked against.
type File struct {
	EACL *eacl.EACL
	// Known reports whether an evaluator is registered for (condType,
	// defAuth); nil disables registration-dependent rules (W001, W005).
	Known func(condType, defAuth string) bool
}

// FileRule checks one policy file in isolation.
type FileRule interface {
	Rule
	CheckFile(f *File, r *Reporter)
}

// CompositionRule checks a composed system + local policy set.
type CompositionRule interface {
	Rule
	CheckComposition(c *Composition, r *Reporter)
}

// Reporter collects diagnostics for the rule currently running.
type Reporter struct {
	meta  Meta
	diags *[]Diagnostic
}

// Report records a finding at file:line.
func (r *Reporter) Report(file string, line int, format string, args ...any) {
	*r.diags = append(*r.diags, Diagnostic{
		Code:     r.meta.Code,
		Rule:     r.meta.Name,
		Severity: r.meta.Severity,
		File:     file,
		Line:     line,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer runs a configured set of rules.
type Analyzer struct {
	rules       []Rule
	disabled    map[string]bool
	only        map[string]bool
	minSeverity Severity
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithRuleFilter parses a comma-separated rule selection: bare codes or
// names select exactly those rules; items prefixed with '-' disable
// rules. "W003,E001" enables only those two; "-W002" runs everything
// but W002. Unknown codes are an error.
func WithRuleFilter(spec string) (Option, error) {
	only := map[string]bool{}
	disabled := map[string]bool{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		neg := strings.HasPrefix(item, "-")
		key := strings.TrimPrefix(item, "-")
		m, ok := lookupRule(key)
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", key)
		}
		if neg {
			disabled[m.Code] = true
		} else {
			only[m.Code] = true
		}
	}
	return func(a *Analyzer) {
		for c := range disabled {
			a.disabled[c] = true
		}
		if len(only) > 0 {
			a.only = only
		}
	}, nil
}

// WithMinSeverity drops findings below the given severity.
func WithMinSeverity(s Severity) Option {
	return func(a *Analyzer) { a.minSeverity = s }
}

// New returns an analyzer running the full rule catalog, narrowed by
// the given options.
func New(opts ...Option) *Analyzer {
	a := &Analyzer{
		rules:       allRules(),
		disabled:    map[string]bool{},
		minSeverity: SeverityWarning,
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// enabled reports whether the rule participates in this run.
func (a *Analyzer) enabled(m Meta) bool {
	if a.disabled[m.Code] {
		return false
	}
	if a.only != nil && !a.only[m.Code] {
		return false
	}
	return m.Severity >= a.minSeverity
}

// AnalyzeFile runs every enabled file-scope rule over one policy.
func (a *Analyzer) AnalyzeFile(f *File) []Diagnostic {
	var out []Diagnostic
	for _, rule := range a.rules {
		fr, ok := rule.(FileRule)
		if !ok || !a.enabled(rule.Meta()) {
			continue
		}
		fr.CheckFile(f, &Reporter{meta: rule.Meta(), diags: &out})
	}
	sortDiagnostics(out)
	return out
}

// AnalyzeComposition runs every enabled composition-scope rule over a
// composed policy set. Per-file findings are not repeated here; run
// AnalyzeFile on each member for those.
func (a *Analyzer) AnalyzeComposition(c *Composition) []Diagnostic {
	var out []Diagnostic
	for _, rule := range a.rules {
		cr, ok := rule.(CompositionRule)
		if !ok || !a.enabled(rule.Meta()) {
			continue
		}
		cr.CheckComposition(c, &Reporter{meta: rule.Meta(), diags: &out})
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders findings for stable output: by file, then
// line, then code.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		return ds[i].Code < ds[j].Code
	})
}

// Catalog returns the metadata of every rule, sorted by code — the
// source for docs/EACL.md's rule table and the SARIF rule array.
func Catalog() []Meta {
	rules := allRules()
	out := make([]Meta, len(rules))
	for i, r := range rules {
		out[i] = r.Meta()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// lookupRule finds a rule's meta by code ("E001") or name
// ("regex-syntax").
func lookupRule(key string) (Meta, bool) {
	for _, m := range Catalog() {
		if strings.EqualFold(key, m.Code) || strings.EqualFold(key, m.Name) {
			return m, true
		}
	}
	return Meta{}, false
}

// allRules instantiates the full rule set, value layer first, then
// flow, then composition — report order within a line follows code
// order anyway, so this order only decides tie-breaking work.
func allRules() []Rule {
	return []Rule{
		// Layer 1: value-level semantic validation (E001–E008).
		valueRule(metaRegexSyntax, "regex"),
		valueRule(metaLocationSyntax, "location"),
		valueRule(metaTimeWindowSyntax, "time_window"),
		timeWindowEmptyRule{},
		valueRule(metaThresholdSyntax, "threshold"),
		valueRule(metaExprSyntax, "expr", "quota"),
		valueRule(metaThreatSyntax, "system_threat_level"),
		valueRule(metaSHA256Syntax, "file_sha256"),
		// Structural errors and intra-entry contradictions (E010–E012).
		negBlockRule{},
		timeContradictionRule{},
		threatContradictionRule{},
		// Layer 2: flow analysis (W001–W007).
		unknownConditionRule{},
		duplicateEntryRule{},
		unreachableEntryRule{},
		posNegConflictRule{},
		maybeOnlyEntryRule{},
		emptyEACLRule{},
		subsumedEntryRule{},
		// Layer 3: composition analysis (W020, W021, E020).
		stopDeadLocalRule{},
		expandBypassRule{},
		narrowDeadGrantRule{},
		// Layer 4: prover-backed reachability (W022, W023).
		proverDeadEntryRule{},
		proverAnonGrantRule{},
	}
}
