package analysis

import (
	"testing"

	"gaaapi/internal/eacl"
)

func composeOf(t *testing.T, system, local []string) *Composition {
	t.Helper()
	var sys, loc []*eacl.EACL
	for i, src := range system {
		e := mustParse(t, src)
		e.Source = "system" + string(rune('0'+i)) + ".eacl"
		sys = append(sys, e)
	}
	for i, src := range local {
		e := mustParse(t, src)
		e.Source = "local" + string(rune('0'+i)) + ".eacl"
		loc = append(loc, e)
	}
	return NewComposition(sys, loc)
}

func TestCompositionModeDerivation(t *testing.T) {
	c := composeOf(t, []string{"pos_access_right apache *"}, nil)
	if c.Mode != eacl.ModeNarrow {
		t.Errorf("default mode = %v, want narrow", c.Mode)
	}
	c = composeOf(t, []string{"eacl_mode expand\npos_access_right apache *"}, nil)
	if c.Mode != eacl.ModeExpand {
		t.Errorf("mode = %v, want expand", c.Mode)
	}
}

func TestStopDeadLocal(t *testing.T) {
	c := composeOf(t,
		[]string{"eacl_mode stop\nneg_access_right * *\npre_cond_system_threat_level local =high"},
		[]string{"pos_access_right apache *\npos_access_right sshd login"})
	ds := New().AnalyzeComposition(c)
	n := 0
	for _, d := range ds {
		if d.Code == "W020" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("W020 count = %d, want 2 (one per dead local entry): %v", n, ds)
	}
	// Without local entries there is nothing to report.
	c = composeOf(t, []string{"eacl_mode stop\nneg_access_right * *"}, nil)
	if ds := New().AnalyzeComposition(c); len(ds) != 0 {
		t.Errorf("findings without local policies: %v", ds)
	}
}

func TestExpandBypass(t *testing.T) {
	c := composeOf(t,
		[]string{"eacl_mode expand\nneg_access_right * *\npre_cond_accessid_GROUP local BadGuys"},
		[]string{"pos_access_right apache *"})
	ds := New().AnalyzeComposition(c)
	if !hasCode(ds, "W021") {
		t.Errorf("want W021, got %v", ds)
	}
	// Under narrow the same shape is mandatory, not bypassable.
	c = composeOf(t,
		[]string{"eacl_mode narrow\nneg_access_right * *\npre_cond_accessid_GROUP local BadGuys"},
		[]string{"pos_access_right apache *"})
	ds = New().AnalyzeComposition(c)
	if hasCode(ds, "W021") {
		t.Errorf("W021 under narrow: %v", ds)
	}
	// Disjoint rights carry no bypass risk.
	c = composeOf(t,
		[]string{"eacl_mode expand\nneg_access_right sshd *"},
		[]string{"pos_access_right apache *"})
	ds = New().AnalyzeComposition(c)
	if hasCode(ds, "W021") {
		t.Errorf("W021 on disjoint rights: %v", ds)
	}
}

func TestNarrowDeadGrant(t *testing.T) {
	// Unconditional system denial covers the local grant: dead.
	c := composeOf(t,
		[]string{"eacl_mode narrow\nneg_access_right * *"},
		[]string{"pos_access_right apache *\npre_cond_accessid_USER apache *"})
	ds := New().AnalyzeComposition(c)
	if !hasCode(ds, "E020") {
		t.Errorf("want E020, got %v", ds)
	}
	// System denial guarded by a condition the grant also carries:
	// still dead (the guard holds whenever the grant's does).
	c = composeOf(t,
		[]string{"eacl_mode narrow\nneg_access_right * *\npre_cond_system_threat_level local =high"},
		[]string{"pos_access_right apache *\npre_cond_system_threat_level local =high"})
	ds = New().AnalyzeComposition(c)
	if !hasCode(ds, "E020") {
		t.Errorf("want E020 for matching guards, got %v", ds)
	}
	// The paper's 7.1 shape: denial at =high, grant at >low — the grant
	// survives at medium threat, so no finding.
	c = composeOf(t,
		[]string{"eacl_mode narrow\nneg_access_right * *\npre_cond_system_threat_level local =high"},
		[]string{"pos_access_right apache *\npre_cond_system_threat_level local >low\npre_cond_accessid_USER apache *"})
	ds = New().AnalyzeComposition(c)
	if hasCode(ds, "E020") {
		t.Errorf("paper 7.1 shape flagged dead: %v", ds)
	}
	// Neg local entries are never "grants".
	c = composeOf(t,
		[]string{"eacl_mode narrow\nneg_access_right * *"},
		[]string{"neg_access_right apache *\npre_cond_regex gnu *phf*"})
	ds = New().AnalyzeComposition(c)
	if hasCode(ds, "E020") {
		t.Errorf("E020 on neg local entry: %v", ds)
	}
}

func TestPaperPoliciesComposeClean(t *testing.T) {
	// Section 7.1 and 7.2 compositions from policies/paper must not
	// trigger composition findings.
	sys71 := "eacl_mode narrow\nneg_access_right * *\npre_cond_system_threat_level local =high"
	loc71 := "pos_access_right apache *\npre_cond_system_threat_level local >low\npre_cond_accessid_USER apache *"
	sys72 := "eacl_mode narrow\nneg_access_right * *\npre_cond_accessid_GROUP local BadGuys"
	loc72 := `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
neg_access_right apache *
pre_cond_expr local input_length>@max_input
pos_access_right apache *
`
	for _, tt := range []struct{ sys, loc string }{{sys71, loc71}, {sys72, loc72}} {
		c := composeOf(t, []string{tt.sys}, []string{tt.loc})
		if ds := New().AnalyzeComposition(c); len(ds) != 0 {
			t.Errorf("paper composition has findings: %v", ds)
		}
	}
}
