package analysis

import (
	"gaaapi/internal/eacl"
)

// Layer 3: cross-file composition analysis. A deployment composes
// system-wide EACLs with local EACLs under the mode the first
// system-wide policy declares (paper section 2.1; gaa.NewPolicy):
//
//   - expand: access allowed if either level allows (disjunction);
//   - narrow: both levels must permit (conjunction) — the default;
//   - stop: the system-wide policy alone applies.
//
// Each mode has a characteristic misconfiguration, and each gets a
// rule: local entries that are dead weight under stop (W020), local
// grants that can override a mandatory system denial under expand
// (W021), and local grants a system denial always vetoes under narrow
// (E020).

// Composition is a composed policy set: system-wide EACLs first, local
// EACLs second, with the effective composition mode derived the same
// way the runtime derives it.
type Composition struct {
	Mode   eacl.CompositionMode
	System []*eacl.EACL
	Local  []*eacl.EACL
}

// NewComposition derives the mode from the first system EACL that
// declares one, defaulting to narrow exactly like gaa.NewPolicy.
func NewComposition(system, local []*eacl.EACL) *Composition {
	c := &Composition{Mode: eacl.ModeNarrow, System: system, Local: local}
	for _, e := range system {
		if e.ModeSet {
			c.Mode = e.Mode
			break
		}
	}
	return c
}

var (
	metaStopDeadLocal = Meta{
		Code: "W020", Name: "stop-dead-local", Severity: SeverityWarning,
		Summary: "the system-wide policy declares eacl_mode stop, so every local entry is dead (never evaluated)",
		Example: "system: eacl_mode stop\nlocal: pos_access_right apache *",
		Fix:     "delete the local policy, or change the system mode if local policies should participate",
	}
	metaExpandBypass = Meta{
		Code: "W021", Name: "expand-bypass", Severity: SeverityWarning,
		Summary: "under eacl_mode expand, a local grant overlaps a system-wide denial and can override it (disjunction)",
		Example: "system: eacl_mode expand + neg_access_right * *\nlocal: pos_access_right apache *",
		Fix:     "use eacl_mode narrow for mandatory system denials; expand lets local policies broaden rights",
	}
	metaNarrowDeadGrant = Meta{
		Code: "E020", Name: "narrow-dead-grant", Severity: SeverityError,
		Summary: "under eacl_mode narrow, a system-wide denial fires whenever this local grant would, so the grant is never satisfiable",
		Example: "system: neg_access_right * *\nlocal: pos_access_right apache *",
		Fix:     "guard the system denial with a pre-condition the local grant excludes, or drop the dead grant",
	}
)

// stopDeadLocalRule (W020) reports each local file containing entries
// when the composition mode is stop: EACLs() drops local policies
// entirely, so none of those entries is ever evaluated.
type stopDeadLocalRule struct{}

func (stopDeadLocalRule) Meta() Meta { return metaStopDeadLocal }

func (stopDeadLocalRule) CheckComposition(c *Composition, r *Reporter) {
	if c.Mode != eacl.ModeStop || len(c.System) == 0 {
		return
	}
	for _, loc := range c.Local {
		for i := range loc.Entries {
			en := &loc.Entries[i]
			r.Report(loc.Source, en.Line,
				"dead under stop: the system-wide policy declares eacl_mode stop, so this local entry is never evaluated")
		}
	}
}

// expandBypassRule (W021) reports local pos entries that overlap a
// system neg entry's right under expand: the composed decision is a
// disjunction, so the local grant wins over the system denial for
// requests in the overlap — the opposite of "mandatory" system policy.
type expandBypassRule struct{}

func (expandBypassRule) Meta() Meta { return metaExpandBypass }

func (expandBypassRule) CheckComposition(c *Composition, r *Reporter) {
	if c.Mode != eacl.ModeExpand {
		return
	}
	for _, sys := range c.System {
		for i := range sys.Entries {
			deny := &sys.Entries[i]
			if deny.Right.Sign != eacl.Neg {
				continue
			}
			for _, loc := range c.Local {
				for j := range loc.Entries {
					grant := &loc.Entries[j]
					if grant.Right.Sign != eacl.Pos {
						continue
					}
					if !eacl.RightsOverlap(deny.Right, grant.Right) {
						continue
					}
					r.Report(loc.Source, grant.Line,
						"mandatory-bypass risk under expand: this grant for %q overlaps the system-wide denial %s:%d for %q and overrides it (expand is a disjunction)",
						grant.Right.Value, sys.Source, deny.Line, deny.Right.Value)
				}
			}
		}
	}
}

// narrowDeadGrantRule (E020) reports local pos entries that a system
// neg entry always vetoes under narrow: the system right covers the
// local right and the system entry's pre-conditions are a subset of the
// local entry's, so whenever the local grant's guard holds, the system
// denial fires too — and narrow conjoins NO ∧ YES to NO. The grant can
// never take effect.
type narrowDeadGrantRule struct{}

func (narrowDeadGrantRule) Meta() Meta { return metaNarrowDeadGrant }

func (narrowDeadGrantRule) CheckComposition(c *Composition, r *Reporter) {
	if c.Mode != eacl.ModeNarrow {
		return
	}
	for _, loc := range c.Local {
		for j := range loc.Entries {
			grant := &loc.Entries[j]
			if grant.Right.Sign != eacl.Pos {
				continue
			}
			grantPre := preSet(grant)
			for _, sys := range c.System {
				for i := range sys.Entries {
					deny := &sys.Entries[i]
					if deny.Right.Sign != eacl.Neg {
						continue
					}
					if !eacl.RightCovers(deny.Right, grant.Right) {
						continue
					}
					if !subsetOf(deny.Block(eacl.BlockPre), grantPre) {
						continue
					}
					r.Report(loc.Source, grant.Line,
						"never satisfiable under narrow: the system-wide denial %s:%d covers %q and fires whenever this grant would; the conjunction always denies",
						sys.Source, deny.Line, grant.Right.Value)
				}
			}
		}
	}
}
