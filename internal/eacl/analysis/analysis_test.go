package analysis

import (
	"strings"
	"testing"

	"gaaapi/internal/eacl"
)

func mustParse(t *testing.T, src string) *eacl.EACL {
	t.Helper()
	e, err := eacl.ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return e
}

// analyze runs the full catalog with the built-in vocabulary.
func analyze(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return New().AnalyzeFile(&File{EACL: mustParse(t, src), Known: BuiltinKnown()})
}

// codes extracts the diagnostic codes in order.
func codes(ds []Diagnostic) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(ds []Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestCleanPolicyNoFindings(t *testing.T) {
	ds := analyze(t, `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* re:^GET\s
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
pos_access_right apache *
pre_cond_time_window local 09:00-17:00 Mon-Fri
mid_cond_quota local cpu_ms<=100
post_cond_file_sha256 local /etc/passwd ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad
`)
	if len(ds) != 0 {
		t.Errorf("findings on clean policy: %v", ds)
	}
}

func TestValueRules(t *testing.T) {
	tests := []struct {
		name, src, code string
	}{
		{"bad regex", "neg_access_right apache *\npre_cond_regex gnu re:[unclosed", "E001"},
		{"bad cidr", "pos_access_right apache *\npre_cond_location local 300.0.0.0/8", "E002"},
		{"bad window", "pos_access_right apache *\npre_cond_time_window local 9am-5pm", "E003"},
		{"empty window", "pos_access_right apache *\npre_cond_time_window local 09:00-09:00", "E004"},
		{"bad threshold", "neg_access_right apache *\npre_cond_threshold local counter=x key=ip max=0 window=60s", "E005"},
		{"bad expr", "neg_access_right apache *\npre_cond_expr local input_length>ten", "E006"},
		{"bad quota", "pos_access_right apache *\nmid_cond_quota local cpu_ms", "E006"},
		{"bad threat", "neg_access_right apache *\npre_cond_system_threat_level local =severe", "E007"},
		{"bad sha256", "pos_access_right apache *\npost_cond_file_sha256 local /etc/passwd deadbeef", "E008"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ds := analyze(t, tt.src)
			if !hasCode(ds, tt.code) {
				t.Errorf("want %s, got %v", tt.code, ds)
			}
			for _, d := range ds {
				if d.Code == tt.code && d.Severity != SeverityError {
					t.Errorf("%s severity = %v, want error", tt.code, d.Severity)
				}
			}
		})
	}
}

func TestValueRefSkipsValueRules(t *testing.T) {
	ds := analyze(t, `
neg_access_right apache *
pre_cond_expr local input_length>@max_input
pre_cond_time_window local @business_hours
`)
	for _, d := range ds {
		if strings.HasPrefix(d.Code, "E00") {
			t.Errorf("value rule fired on runtime reference: %v", d)
		}
	}
}

func TestNegBlockRule(t *testing.T) {
	ds := analyze(t, "neg_access_right apache *\nmid_cond_quota local cpu_ms<=10")
	if !hasCode(ds, "E010") {
		t.Errorf("want E010, got %v", ds)
	}
}

func TestTimeContradiction(t *testing.T) {
	ds := analyze(t, `
pos_access_right apache *
pre_cond_time_window local 09:00-12:00
pre_cond_time_window local 13:00-17:00
`)
	if !hasCode(ds, "E011") {
		t.Errorf("want E011, got %v", ds)
	}
	// Overlapping windows are fine.
	ds = analyze(t, `
pos_access_right apache *
pre_cond_time_window local 09:00-12:00
pre_cond_time_window local 11:00-17:00
`)
	if hasCode(ds, "E011") {
		t.Errorf("overlapping windows flagged: %v", ds)
	}
	// Disjoint windows on *different entries* are the normal disjoint-
	// policies idiom and must not be flagged.
	ds = analyze(t, `
pos_access_right apache *
pre_cond_time_window local 09:00-12:00
pos_access_right apache *
pre_cond_time_window local 13:00-17:00
`)
	if hasCode(ds, "E011") {
		t.Errorf("cross-entry windows flagged: %v", ds)
	}
}

func TestThreatContradiction(t *testing.T) {
	ds := analyze(t, `
pos_access_right apache *
pre_cond_system_threat_level local =high
pre_cond_system_threat_level local =low
`)
	if !hasCode(ds, "E012") {
		t.Errorf("want E012, got %v", ds)
	}
	// A single unsatisfiable comparison is also a contradiction.
	ds = analyze(t, "pos_access_right apache *\npre_cond_system_threat_level local <low")
	if !hasCode(ds, "E012") {
		t.Errorf("want E012 for <low, got %v", ds)
	}
	// Compatible conditions are fine.
	ds = analyze(t, `
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_system_threat_level local <=high
`)
	if hasCode(ds, "E012") {
		t.Errorf("satisfiable conjunction flagged: %v", ds)
	}
}

func TestUnknownAndMaybeOnly(t *testing.T) {
	ds := analyze(t, `
pos_access_right apache *
pre_cond_phase_of_moon local full
pre_cond_alignment local chaotic
`)
	if !hasCode(ds, "W001") {
		t.Errorf("want W001, got %v", ds)
	}
	if !hasCode(ds, "W005") {
		t.Errorf("want W005 (all pre-conditions unknown), got %v", ds)
	}
	// One known pre-condition keeps the entry decidable: W001 on the
	// stray condition, but no W005.
	ds = analyze(t, `
pos_access_right apache *
pre_cond_phase_of_moon local full
pre_cond_system_threat_level local =low
`)
	if !hasCode(ds, "W001") || hasCode(ds, "W005") {
		t.Errorf("want W001 without W005, got %v", ds)
	}
}

func TestDuplicateEntry(t *testing.T) {
	ds := analyze(t, `
pos_access_right apache GET /a
pre_cond_time_window local 09:00-17:00
pos_access_right apache GET /a
pre_cond_time_window local 09:00-17:00
`)
	if !hasCode(ds, "W002") {
		t.Errorf("want W002, got %v", ds)
	}
}

// "?*" and "?**" spell the same glob language ('?' is a literal byte,
// the extra '*' adds nothing), so the analyzer must flag them as
// duplicates even though the byte strings differ.
func TestDuplicateEntrySemanticGlobs(t *testing.T) {
	ds := analyze(t, `
pos_access_right apache GET /report?*
pre_cond_time_window local 09:00-17:00
pos_access_right apache GET /report?**
pre_cond_time_window local 09:00-17:00
`)
	if !hasCode(ds, "W002") {
		t.Errorf("want W002 for equivalent glob spellings, got %v", ds)
	}
}

func TestUnreachableGlobAware(t *testing.T) {
	ds := analyze(t, `
pos_access_right apache GET /cgi-bin/*
neg_access_right apache GET /cgi-bin/phf
pre_cond_regex gnu *phf*
`)
	if !hasCode(ds, "W003") {
		t.Errorf("want W003 (glob-aware shadow), got %v", ds)
	}
	ds = analyze(t, `
pos_access_right apache GET /static/*
neg_access_right apache GET /cgi-bin/phf
pre_cond_regex gnu *phf*
`)
	if hasCode(ds, "W003") {
		t.Errorf("disjoint rights flagged unreachable: %v", ds)
	}
}

func TestPosNegConflict(t *testing.T) {
	// Overlapping (but not covering) rights, no conditions on either.
	ds := analyze(t, `
pos_access_right apache GET /a*
neg_access_right apache GET *b
`)
	if !hasCode(ds, "W004") {
		t.Errorf("want W004, got %v", ds)
	}
	// A distinguishing pre-condition resolves the conflict.
	ds = analyze(t, `
pos_access_right apache GET /a*
neg_access_right apache GET *b
pre_cond_system_threat_level local =high
`)
	if hasCode(ds, "W004") {
		t.Errorf("guarded entries flagged: %v", ds)
	}
}

func TestSubsumedEntry(t *testing.T) {
	ds := analyze(t, `
pos_access_right apache *
pre_cond_accessid_USER apache *
pos_access_right apache GET /docs/*
pre_cond_accessid_USER apache *
pre_cond_time_window local 09:00-17:00
`)
	if !hasCode(ds, "W007") {
		t.Errorf("want W007, got %v", ds)
	}
	// Different sign is not subsumption (it is a potential conflict,
	// handled by other rules).
	ds = analyze(t, `
pos_access_right apache *
pre_cond_accessid_USER apache *
neg_access_right apache GET /docs/*
pre_cond_accessid_USER apache *
pre_cond_regex gnu *../*
`)
	if hasCode(ds, "W007") {
		t.Errorf("opposite signs flagged subsumed: %v", ds)
	}
}

func TestEmptyEACL(t *testing.T) {
	ds := analyze(t, "# only comments\n")
	if !hasCode(ds, "W006") {
		t.Errorf("want W006, got %v", ds)
	}
}

func TestRuleFilter(t *testing.T) {
	src := `
pos_access_right apache GET /cgi-bin/*
neg_access_right apache GET /cgi-bin/phf
pre_cond_regex gnu re:[unclosed
`
	// Only E001.
	opt, err := WithRuleFilter("E001")
	if err != nil {
		t.Fatal(err)
	}
	ds := New(opt).AnalyzeFile(&File{EACL: mustParse(t, src), Known: BuiltinKnown()})
	if got := codes(ds); len(got) != 1 || got[0] != "E001" {
		t.Errorf("filtered codes = %v, want [E001]", got)
	}
	// Everything but W003, selected by name.
	opt, err = WithRuleFilter("-unreachable-entry")
	if err != nil {
		t.Fatal(err)
	}
	ds = New(opt).AnalyzeFile(&File{EACL: mustParse(t, src), Known: BuiltinKnown()})
	if hasCode(ds, "W003") || !hasCode(ds, "E001") {
		t.Errorf("negative filter failed: %v", codes(ds))
	}
	// Unknown rule is an error.
	if _, err := WithRuleFilter("E999"); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestMinSeverity(t *testing.T) {
	src := `
pos_access_right apache GET /cgi-bin/*
neg_access_right apache GET /cgi-bin/phf
pre_cond_regex gnu re:[unclosed
`
	ds := New(WithMinSeverity(SeverityError)).AnalyzeFile(&File{EACL: mustParse(t, src), Known: BuiltinKnown()})
	for _, d := range ds {
		if d.Severity < SeverityError {
			t.Errorf("warning leaked through severity filter: %v", d)
		}
	}
	if !hasCode(ds, "E001") {
		t.Errorf("error dropped by severity filter: %v", ds)
	}
}

func TestCatalogIsStable(t *testing.T) {
	catalog := Catalog()
	if len(catalog) == 0 {
		t.Fatal("empty catalog")
	}
	seen := map[string]bool{}
	for _, m := range catalog {
		if m.Code == "" || m.Name == "" || m.Summary == "" || m.Fix == "" {
			t.Errorf("incomplete meta: %+v", m)
		}
		if seen[m.Code] {
			t.Errorf("duplicate code %s", m.Code)
		}
		seen[m.Code] = true
		wantSev := SeverityWarning
		if strings.HasPrefix(m.Code, "E") {
			wantSev = SeverityError
		}
		if m.Severity != wantSev {
			t.Errorf("%s severity = %v, inconsistent with code prefix", m.Code, m.Severity)
		}
	}
	// Every documented rule must exist.
	for _, code := range []string{"E001", "E002", "E003", "E004", "E005", "E006", "E007", "E008",
		"E010", "E011", "E012", "E020", "W001", "W002", "W003", "W004", "W005", "W006", "W007",
		"W020", "W021"} {
		if !seen[code] {
			t.Errorf("missing rule %s", code)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "E001", Rule: "regex-syntax", Severity: SeverityError,
		File: "p.eacl", Line: 3, Message: "boom"}
	if got, want := d.String(), "p.eacl:3: error: boom [E001]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
