package analysis

import (
	"encoding/json"
)

// SARIF 2.1.0 export, shaped for GitHub code scanning: one run, the
// full rule catalog in the tool driver, one result per diagnostic.
// Only the fields code-scanning consumers read are emitted, so the
// document stays small and schema-valid.

// Report is the stable machine-readable envelope -json emits. Version
// identifies the schema of the findings array; bump it only for
// breaking changes.
type Report struct {
	Version  int          `json:"version"`
	Findings []Diagnostic `json:"findings"`
}

// MarshalJSON adds the string severity alongside Diagnostic's plain
// fields, keeping the wire schema independent of the Go enum values.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	type plain Diagnostic // drop methods to avoid recursion
	return json.Marshal(struct {
		plain
		Severity string `json:"severity"`
	}{plain(d), d.Severity.String()})
}

// JSONReport renders diagnostics as the -json document.
func JSONReport(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(Report{Version: 1, Findings: diags}, "", "  ")
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
	Help             sarifMessage `json:"help"`
	DefaultConfig    sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// sarifLevel maps the analyzer severity onto SARIF's level vocabulary.
func sarifLevel(s Severity) string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// SARIFReport renders diagnostics as a SARIF 2.1.0 log with the full
// rule catalog, ready for `gh code-scanning` upload.
func SARIFReport(diags []Diagnostic) ([]byte, error) {
	catalog := Catalog()
	index := make(map[string]int, len(catalog))
	rules := make([]sarifRule, len(catalog))
	for i, m := range catalog {
		index[m.Code] = i
		rules[i] = sarifRule{
			ID:               m.Code,
			Name:             m.Name,
			ShortDescription: sarifMessage{Text: m.Summary},
			Help:             sarifMessage{Text: "Fix: " + m.Fix},
			DefaultConfig:    sarifConfig{Level: sarifLevel(m.Severity)},
		}
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line := d.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based; file-level findings anchor at the top
		}
		results = append(results, sarifResult{
			RuleID:    d.Code,
			RuleIndex: index[d.Code],
			Level:     sarifLevel(d.Severity),
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: line},
				},
			}},
		})
	}
	return json.MarshalIndent(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "eaclint", InformationURI: "https://github.com/gaaapi/gaaapi", Rules: rules}},
			Results: results,
		}},
	}, "", "  ")
}
