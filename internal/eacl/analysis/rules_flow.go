package analysis

import (
	"sort"
	"strings"

	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/ids"
)

// Layer 2: entry- and file-level flow analysis. These rules reason
// about the scan semantics of package gaa — entries are examined in
// order, the first applicable entry decides, selectors switch entries
// on and off — using the real glob semantics (eacl.GlobCovers /
// eacl.GlobsOverlap), so "GET /cgi-bin/*" is known to shadow
// "GET /cgi-bin/phf" exactly as the runtime matcher would.

var (
	metaNegBlock = Meta{
		Code: "E010", Name: "neg-illegal-block", Severity: SeverityError,
		Summary: "a mid_cond or post_cond block on a neg_access_right (the grammar gives nright only pre and request-result blocks)",
		Example: "neg_access_right apache *\nmid_cond_quota local cpu_ms<=50",
		Fix:     "move execution-phase conditions to a pos entry; a denial has no operation to constrain",
	}
	metaTimeContradiction = Meta{
		Code: "E011", Name: "time-contradiction", Severity: SeverityError,
		Summary: "one entry carries disjoint time windows, so its conditions can never hold together",
		Example: "pre_cond_time_window local 09:00-12:00\npre_cond_time_window local 13:00-17:00",
		Fix:     "split the entry in two (EACL entries are disjunctive) or merge the windows",
	}
	metaThreatContradiction = Meta{
		Code: "E012", Name: "threat-contradiction", Severity: SeverityError,
		Summary: "one entry's threat-level conditions have no common satisfying level",
		Example: "pre_cond_system_threat_level local =high\npre_cond_system_threat_level local =low",
		Fix:     "keep one threat condition per entry; use separate entries for disjoint threat states",
	}
	metaUnknownCondition = Meta{
		Code: "W001", Name: "unknown-condition", Severity: SeverityWarning,
		Summary: "no evaluator registered for a condition (it evaluates to MAYBE on every request)",
		Example: "pre_cond_phase_of_moon local full",
		Fix:     "register the routine in the GAA configuration file, or remove the condition",
	}
	metaDuplicateEntry = Meta{
		Code: "W002", Name: "duplicate-entry", Severity: SeverityWarning,
		Summary: "an entry repeats an earlier entry verbatim (same right, same conditions)",
		Example: "pos_access_right apache *\npos_access_right apache *",
		Fix:     "delete the duplicate; the first occurrence already decides",
	}
	metaUnreachableEntry = Meta{
		Code: "W003", Name: "unreachable-entry", Severity: SeverityWarning,
		Summary: "an earlier unconditional entry glob-covers this entry's right, so it can never fire",
		Example: "pos_access_right apache GET /cgi-bin/*\nneg_access_right apache GET /cgi-bin/phf",
		Fix:     "move the narrower entry first (entries are examined in order) or narrow the earlier right",
	}
	metaPosNegConflict = Meta{
		Code: "W004", Name: "pos-neg-conflict", Severity: SeverityWarning,
		Summary: "two entries with overlapping rights and identical guards disagree on the sign; order alone decides",
		Example: "pos_access_right apache GET /a*\nneg_access_right apache GET *b",
		Fix:     "make the rights disjoint, or add distinguishing pre-conditions to one of the entries",
	}
	metaMaybeOnlyEntry = Meta{
		Code: "W005", Name: "maybe-only-entry", Severity: SeverityWarning,
		Summary: "every pre-condition of the entry is unregistered, so the entry can only ever evaluate to MAYBE",
		Example: "pos_access_right apache *\npre_cond_phase_of_moon local full",
		Fix:     "register the evaluators, or delete the entry — it can never grant nor deny",
	}
	metaEmptyEACL = Meta{
		Code: "W006", Name: "empty-eacl", Severity: SeverityWarning,
		Summary: "the EACL has no entries; evaluation always yields MAYBE (uncertain)",
		Example: "# a policy file with only comments",
		Fix:     "add at least one entry, or delete the file so no policy is retrieved for the object",
	}
	metaSubsumedEntry = Meta{
		Code: "W007", Name: "subsumed-entry", Severity: SeverityWarning,
		Summary: "an earlier same-sign entry covers this right under a subset of its pre-conditions, so the earlier entry always decides first",
		Example: "pos_access_right apache *\npre_cond_accessid_USER apache *\npos_access_right apache GET /docs/*\npre_cond_accessid_USER apache *\npre_cond_time_window local 09:00-17:00",
		Fix:     "delete the narrower entry, or order it before the broader one if it must add conditions",
	}
)

// negBlockRule (E010) ports the grammar check from eacl.Validate into
// the engine: nright ::= pre_cond_block rr_cond_block.
type negBlockRule struct{}

func (negBlockRule) Meta() Meta { return metaNegBlock }

func (negBlockRule) CheckFile(f *File, r *Reporter) {
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		if en.Right.Sign != eacl.Neg {
			continue
		}
		for _, c := range en.Conditions {
			if c.Block == eacl.BlockMid || c.Block == eacl.BlockPost {
				r.Report(f.EACL.Source, c.Line,
					"%s block not allowed on neg_access_right (grammar: nright ::= pre_cond_block rr_cond_block)", c.Block)
			}
		}
	}
}

// timeContradictionRule (E011) finds entries whose time-window
// pre-conditions are pairwise-conjoined but never intersect. All
// pre-conditions of one entry must hold together for the entry to
// fire, so two disjoint windows make the entry unsatisfiable.
type timeContradictionRule struct{}

func (timeContradictionRule) Meta() Meta { return metaTimeContradiction }

func (timeContradictionRule) CheckFile(f *File, r *Reporter) {
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		type window struct {
			w    conditions.TimeWindow
			cond *eacl.Condition
		}
		var windows []window
		for j := range en.Conditions {
			c := &en.Conditions[j]
			if c.Block != eacl.BlockPre || c.Type != "time_window" || conditions.HasValueRef(c.Value) {
				continue
			}
			w, err := conditions.ParseTimeWindowSpec(c.Value)
			if err != nil || w.Empty() {
				continue // E003/E004 findings
			}
			windows = append(windows, window{w, c})
		}
		for a := 0; a < len(windows); a++ {
			for b := a + 1; b < len(windows); b++ {
				if !windows[a].w.Intersects(windows[b].w) {
					r.Report(f.EACL.Source, windows[b].cond.Line,
						"time windows %q (line %d) and %q never intersect; the entry can never fire",
						windows[a].cond.Value, windows[a].cond.Line, windows[b].cond.Value)
				}
			}
		}
	}
}

// threatContradictionRule (E012) intersects the satisfying threat-level
// sets of an entry's system_threat_level pre-conditions; an empty
// intersection (including a single unsatisfiable condition like "<low")
// makes the entry dead.
type threatContradictionRule struct{}

func (threatContradictionRule) Meta() Meta { return metaThreatContradiction }

func (threatContradictionRule) CheckFile(f *File, r *Reporter) {
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		sat := map[ids.Level]bool{ids.Low: true, ids.Medium: true, ids.High: true}
		var seen []*eacl.Condition
		for j := range en.Conditions {
			c := &en.Conditions[j]
			if c.Block != eacl.BlockPre || c.Type != "system_threat_level" || conditions.HasValueRef(c.Value) {
				continue
			}
			levels, err := conditions.ThreatLevelSet(c.Value)
			if err != nil {
				continue // E007's finding
			}
			seen = append(seen, c)
			ok := map[ids.Level]bool{}
			for _, l := range levels {
				ok[l] = true
			}
			for l := range sat {
				if !ok[l] {
					delete(sat, l)
				}
			}
		}
		if len(seen) == 0 || len(sat) > 0 {
			continue
		}
		last := seen[len(seen)-1]
		var values []string
		for _, c := range seen {
			values = append(values, c.Value)
		}
		r.Report(f.EACL.Source, last.Line,
			"no threat level satisfies %s together; the entry can never fire",
			strings.Join(values, " and "))
	}
}

// unknownConditionRule (W001) flags conditions with no registered
// evaluator — the paper's semantics evaluate them to MAYBE at run time.
type unknownConditionRule struct{}

func (unknownConditionRule) Meta() Meta { return metaUnknownCondition }

func (unknownConditionRule) CheckFile(f *File, r *Reporter) {
	if f.Known == nil {
		return
	}
	eachCondition(f.EACL, func(c *eacl.Condition) {
		if !f.Known(c.Type, c.DefAuth) {
			r.Report(f.EACL.Source, c.Line,
				"no evaluator registered for condition %s_%s (authority %q); evaluates to MAYBE", c.Block, c.Type, c.DefAuth)
		}
	})
}

// duplicateEntryRule (W002) flags verbatim repeats.
type duplicateEntryRule struct{}

func (duplicateEntryRule) Meta() Meta { return metaDuplicateEntry }

func (duplicateEntryRule) CheckFile(f *File, r *Reporter) {
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		for j := 0; j < i; j++ {
			prev := &f.EACL.Entries[j]
			if !eacl.RightsEquivalent(prev.Right, en.Right) {
				continue
			}
			if condKey(prev) != condKey(en) {
				continue
			}
			r.Report(f.EACL.Source, en.Line, "duplicate of entry at line %d", prev.Line)
			break
		}
	}
}

// unreachableEntryRule (W003) flags entries shadowed by an earlier
// unconditional entry whose right glob-covers theirs: the earlier entry
// always decides first, whatever its sign.
type unreachableEntryRule struct{}

func (unreachableEntryRule) Meta() Meta { return metaUnreachableEntry }

func (unreachableEntryRule) CheckFile(f *File, r *Reporter) {
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		for j := 0; j < i; j++ {
			prev := &f.EACL.Entries[j]
			if len(prev.Block(eacl.BlockPre)) == 0 && eacl.RightCovers(prev.Right, en.Right) {
				r.Report(f.EACL.Source, en.Line,
					"unreachable: shadowed by unconditional entry at line %d whose right %q covers %q",
					prev.Line, prev.Right.Value, en.Right.Value)
				break
			}
		}
	}
}

// posNegConflictRule (W004) flags pairs of entries with opposite signs,
// overlapping rights and identical pre-condition guards: a request in
// the overlap satisfies both guards, so only entry order decides
// whether it is granted or denied — almost always an authoring error.
type posNegConflictRule struct{}

func (posNegConflictRule) Meta() Meta { return metaPosNegConflict }

func (posNegConflictRule) CheckFile(f *File, r *Reporter) {
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		for j := 0; j < i; j++ {
			prev := &f.EACL.Entries[j]
			if prev.Right.Sign == en.Right.Sign {
				continue
			}
			if !eacl.RightsOverlap(prev.Right, en.Right) {
				continue
			}
			if preKey(prev) != preKey(en) {
				continue
			}
			// The covering case is W003's unreachable finding; report
			// the partial-overlap conflict only once, on the later entry.
			if len(prev.Block(eacl.BlockPre)) == 0 && eacl.RightCovers(prev.Right, en.Right) {
				continue
			}
			r.Report(f.EACL.Source, en.Line,
				"conflicts with %s entry at line %d: rights %q and %q overlap under identical conditions; entry order alone decides the sign",
				prev.Right.Sign, prev.Line, prev.Right.Value, en.Right.Value)
		}
	}
}

// maybeOnlyEntryRule (W005) flags entries none of whose pre-conditions
// has a registered evaluator: such an entry can neither fire nor be
// ruled out, so every matching request inherits a MAYBE from it.
type maybeOnlyEntryRule struct{}

func (maybeOnlyEntryRule) Meta() Meta { return metaMaybeOnlyEntry }

func (maybeOnlyEntryRule) CheckFile(f *File, r *Reporter) {
	if f.Known == nil {
		return
	}
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		pre := en.Block(eacl.BlockPre)
		if len(pre) == 0 {
			continue
		}
		known := 0
		for _, c := range pre {
			if f.Known(c.Type, c.DefAuth) {
				known++
			}
		}
		if known == 0 {
			r.Report(f.EACL.Source, en.Line,
				"entry can only ever evaluate to MAYBE: none of its %d pre-conditions has a registered evaluator", len(pre))
		}
	}
}

// emptyEACLRule (W006) flags files with no entries.
type emptyEACLRule struct{}

func (emptyEACLRule) Meta() Meta { return metaEmptyEACL }

func (emptyEACLRule) CheckFile(f *File, r *Reporter) {
	if len(f.EACL.Entries) == 0 {
		r.Report(f.EACL.Source, 0, "EACL has no entries; evaluation always yields MAYBE (uncertain)")
	}
}

// subsumedEntryRule (W007) generalizes W003 to conditional entries: an
// earlier entry with the same sign, a covering right, and a subset of
// this entry's pre-conditions fires whenever this entry would — the
// later entry never changes the decision. (The earlier entry's guard
// holding is implied by the later one's, because an entry's
// pre-conditions are conjoined.)
type subsumedEntryRule struct{}

func (subsumedEntryRule) Meta() Meta { return metaSubsumedEntry }

func (subsumedEntryRule) CheckFile(f *File, r *Reporter) {
	for i := range f.EACL.Entries {
		en := &f.EACL.Entries[i]
		enPre := preSet(en)
		for j := 0; j < i; j++ {
			prev := &f.EACL.Entries[j]
			if prev.Right.Sign != en.Right.Sign || !eacl.RightCovers(prev.Right, en.Right) {
				continue
			}
			prevPre := prev.Block(eacl.BlockPre)
			if len(prevPre) == 0 {
				continue // W003's unreachable finding
			}
			if !subsetOf(prevPre, enPre) {
				continue
			}
			r.Report(f.EACL.Source, en.Line,
				"subsumed by entry at line %d: its right covers %q and its pre-conditions are a subset of this entry's",
				prev.Line, en.Right.Value)
			break
		}
	}
}

// preKey canonicalizes an entry's pre-condition block for guard
// comparison; order is normalized so reordered but identical guards
// still compare equal.
func preKey(en *eacl.Entry) string {
	conds := canonicalPre(en)
	return strings.Join(conds, "\n")
}

// preSet returns the canonical pre-condition strings as a set.
func preSet(en *eacl.Entry) map[string]bool {
	set := map[string]bool{}
	for _, s := range canonicalPre(en) {
		set[s] = true
	}
	return set
}

func canonicalPre(en *eacl.Entry) []string {
	var out []string
	for _, c := range en.Block(eacl.BlockPre) {
		canon := c
		canon.Line = 0
		out = append(out, canon.String())
	}
	sort.Strings(out)
	return out
}

func subsetOf(conds []eacl.Condition, set map[string]bool) bool {
	for _, c := range conds {
		canon := c
		canon.Line = 0
		if !set[canon.String()] {
			return false
		}
	}
	return true
}

// condKey mirrors eacl.Validate's duplicate comparison: the conditions
// in source order, lines normalized. The right is compared separately
// with eacl.RightsEquivalent so semantically equal glob spellings
// ("GET /a?*" vs "GET /a?**") still count as duplicates.
func condKey(en *eacl.Entry) string {
	var key string
	for _, c := range en.Conditions {
		canon := c
		canon.Line = 0
		key += "\n" + canon.String()
	}
	return key
}
