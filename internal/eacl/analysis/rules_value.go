package analysis

import (
	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
)

// Layer 1: value-level semantic validation. Each rule re-uses the
// exported validators of internal/conditions, so the analyzer accepts
// exactly what the runtime evaluators accept. A value rejected here
// would evaluate to MAYBE on every request at run time — on a pos entry
// that silently withholds a grant, on a neg entry it silently disables
// a denial, and in both cases the decision degrades to the web server's
// fallback. Values carrying '@' runtime references are skipped: their
// final shape is supplied by the IDS at evaluation time.

var (
	metaRegexSyntax = Meta{
		Code: "E001", Name: "regex-syntax", Severity: SeverityError,
		Summary: "a \"re:\" pattern in a pre_cond_regex value does not compile",
		Example: "pre_cond_regex gnu re:[unclosed",
		Fix:     "fix the regular expression, or drop the re: prefix to match it as a '*'-glob",
	}
	metaLocationSyntax = Meta{
		Code: "E002", Name: "location-syntax", Severity: SeverityError,
		Summary: "a pre_cond_location pattern containing '/' does not parse as a CIDR range",
		Example: "pre_cond_location local 300.0.0.0/8",
		Fix:     "use a valid CIDR (e.g. 128.9.0.0/16) or an address glob (e.g. 128.9.*)",
	}
	metaTimeWindowSyntax = Meta{
		Code: "E003", Name: "timewindow-syntax", Severity: SeverityError,
		Summary: "a pre_cond_time_window value is not \"HH:MM-HH:MM [days]\"",
		Example: "pre_cond_time_window local 9am-5pm",
		Fix:     "write 24-hour times (09:00-17:00) and day names as Mon-Fri or Mon,Wed,Sat",
	}
	metaTimeWindowEmpty = Meta{
		Code: "E004", Name: "timewindow-empty", Severity: SeverityError,
		Summary: "a time window contains no instant (start equals end), so the condition never holds",
		Example: "pre_cond_time_window local 09:00-09:00",
		Fix:     "widen the window; windows wrapping midnight (22:00-06:00) are legal and non-empty",
	}
	metaThresholdSyntax = Meta{
		Code: "E005", Name: "threshold-syntax", Severity: SeverityError,
		Summary: "a pre_cond_threshold value is malformed (needs counter=, key=, positive max= and window=)",
		Example: "pre_cond_threshold local counter=failed_login max=0 window=60s",
		Fix:     "supply all four fields: counter=failed_login key=client_ip max=5 window=60s",
	}
	metaExprSyntax = Meta{
		Code: "E006", Name: "expr-syntax", Severity: SeverityError,
		Summary: "an expr/quota comparison is malformed (needs <param><op><integer>)",
		Example: "pre_cond_expr local input_length>>1000",
		Fix:     "write a parameter name, one comparator and an integer bound: input_length>1000",
	}
	metaThreatSyntax = Meta{
		Code: "E007", Name: "threat-syntax", Severity: SeverityError,
		Summary: "a system_threat_level comparison is malformed (want =low, >low, <=medium, ...)",
		Example: "pre_cond_system_threat_level local =severe",
		Fix:     "compare against low, medium or high with a leading comparator: =high",
	}
	metaSHA256Syntax = Meta{
		Code: "E008", Name: "sha256-syntax", Severity: SeverityError,
		Summary: "a file_sha256 value is not \"<path> <64 lowercase hex digits>\"",
		Example: "post_cond_file_sha256 local /etc/passwd deadbeef",
		Fix:     "pin the digest with `eaclint -hash <path>` and paste its output",
	}
)

// valueCheckRule validates condition values of the listed types with
// conditions.ValidateValue.
type valueCheckRule struct {
	meta  Meta
	types map[string]bool
}

func valueRule(meta Meta, types ...string) valueCheckRule {
	set := make(map[string]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return valueCheckRule{meta: meta, types: set}
}

func (v valueCheckRule) Meta() Meta { return v.meta }

func (v valueCheckRule) CheckFile(f *File, r *Reporter) {
	eachCondition(f.EACL, func(c *eacl.Condition) {
		if !v.types[c.Type] {
			return
		}
		if err := conditions.ValidateValue(c.Type, c.Value); err != nil {
			r.Report(f.EACL.Source, c.Line, "%s_%s value never evaluates: %v", c.Block, c.Type, err)
		}
	})
}

// timeWindowEmptyRule (E004) flags windows that parse but can never
// contain an instant.
type timeWindowEmptyRule struct{}

func (timeWindowEmptyRule) Meta() Meta { return metaTimeWindowEmpty }

func (timeWindowEmptyRule) CheckFile(f *File, r *Reporter) {
	eachCondition(f.EACL, func(c *eacl.Condition) {
		if c.Type != "time_window" || conditions.HasValueRef(c.Value) {
			return
		}
		w, err := conditions.ParseTimeWindowSpec(c.Value)
		if err != nil {
			return // E003's finding
		}
		if w.Empty() {
			r.Report(f.EACL.Source, c.Line, "time window %q is empty: it contains no instant, so the condition never holds", c.Value)
		}
	})
}

// eachCondition visits every condition of every entry, in source order.
func eachCondition(e *eacl.EACL, fn func(c *eacl.Condition)) {
	for i := range e.Entries {
		for j := range e.Entries[i].Conditions {
			fn(&e.Entries[i].Conditions[j])
		}
	}
}
