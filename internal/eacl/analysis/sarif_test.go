package analysis

import (
	"encoding/json"
	"testing"

	"gaaapi/internal/eacl"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{Code: "E001", Rule: "regex-syntax", Severity: SeverityError,
			File: "p.eacl", Line: 2, Message: "regexp does not compile"},
		{Code: "W006", Rule: "empty-eacl", Severity: SeverityWarning,
			File: "q.eacl", Line: 0, Message: "EACL has no entries"},
	}
}

func TestJSONReportSchema(t *testing.T) {
	out, err := JSONReport(sampleDiags())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version  int `json:"version"`
		Findings []struct {
			Code     string `json:"code"`
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, out)
	}
	if doc.Version != 1 {
		t.Errorf("version = %d, want 1", doc.Version)
	}
	if len(doc.Findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(doc.Findings))
	}
	if doc.Findings[0].Severity != "error" || doc.Findings[1].Severity != "warning" {
		t.Errorf("severities = %s, %s", doc.Findings[0].Severity, doc.Findings[1].Severity)
	}
	if doc.Findings[0].Code != "E001" || doc.Findings[0].Line != 2 {
		t.Errorf("finding[0] = %+v", doc.Findings[0])
	}
}

func TestJSONReportEmpty(t *testing.T) {
	out, err := JSONReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc Report
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Findings == nil || len(doc.Findings) != 0 {
		t.Errorf("empty report should carry an empty findings array, got %s", out)
	}
}

func TestSARIFShape(t *testing.T) {
	out, err := SARIFReport(sampleDiags())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID            string `json:"id"`
						Name          string `json:"name"`
						DefaultConfig struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "eaclint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Catalog()) {
		t.Errorf("rules = %d, want full catalog %d", len(run.Tool.Driver.Rules), len(Catalog()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	for _, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("ruleIndex %d out of range", res.RuleIndex)
			continue
		}
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("ruleIndex %d points at %q, want %q",
				res.RuleIndex, run.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Errorf("locations = %d, want 1", len(res.Locations))
			continue
		}
		if res.Locations[0].PhysicalLocation.Region.StartLine < 1 {
			t.Errorf("startLine %d < 1 (SARIF regions are 1-based)",
				res.Locations[0].PhysicalLocation.Region.StartLine)
		}
	}
	if run.Results[0].Level != "error" || run.Results[1].Level != "warning" {
		t.Errorf("levels = %s, %s", run.Results[0].Level, run.Results[1].Level)
	}
}

// FuzzAnalyze checks the whole engine never panics on any parseable
// policy — the analyzer runs in CI over untrusted policy files.
func FuzzAnalyze(f *testing.F) {
	f.Add("pos_access_right apache GET /cgi-bin/*\nneg_access_right apache GET /cgi-bin/phf\npre_cond_regex gnu *phf*")
	f.Add("neg_access_right apache *\npre_cond_regex gnu re:[unclosed\npre_cond_location local 300.0.0.0/8")
	f.Add("pos_access_right apache *\npre_cond_time_window local 09:00-09:00\npre_cond_time_window local 10:00-11:00 Mon")
	f.Add("pos_access_right apache *\npre_cond_system_threat_level local =high\npre_cond_system_threat_level local =low")
	f.Add("eacl_mode stop\nneg_access_right * *\npre_cond_expr local input_length>@max_input")
	f.Add("pos_access_right apache *\npost_cond_file_sha256 local /etc/passwd nothex")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := eacl.ParseString(src)
		if err != nil {
			return
		}
		a := New()
		ds := a.AnalyzeFile(&File{EACL: e, Known: BuiltinKnown()})
		// Composition with itself on both levels must not panic either.
		ds = append(ds, a.AnalyzeComposition(NewComposition(
			[]*eacl.EACL{e}, []*eacl.EACL{e}))...)
		if _, err := JSONReport(ds); err != nil {
			t.Fatalf("JSONReport: %v", err)
		}
		if _, err := SARIFReport(ds); err != nil {
			t.Fatalf("SARIFReport: %v", err)
		}
	})
}
