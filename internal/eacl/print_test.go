package eacl

import (
	"reflect"
	"testing"
)

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{policy71System, policy72Local, `
eacl_mode stop
pos_access_right apache GET /a/*
pre_cond_time_window local 09:00-17:00 Mon-Fri
mid_cond_quota local cpu_ms<=50
post_cond_audit local on:any/info:done
neg_access_right sshd login
pre_cond_accessid_GROUP local BadGuys
`} {
		first, err := ParseString(src)
		if err != nil {
			t.Fatalf("parse source: %v", err)
		}
		second, err := ParseString(first.String())
		if err != nil {
			t.Fatalf("re-parse printed form: %v\nprinted:\n%s", err, first.String())
		}
		// Line numbers differ between the original and the printed
		// form; compare with them zeroed.
		if !reflect.DeepEqual(zeroLines(first), zeroLines(second)) {
			t.Errorf("round trip mismatch:\noriginal: %#v\nreparsed: %#v", first, second)
		}
	}
}

func zeroLines(e *EACL) *EACL {
	out := e.Clone()
	out.Source = ""
	for i := range out.Entries {
		out.Entries[i].Line = 0
		for j := range out.Entries[i].Conditions {
			out.Entries[i].Conditions[j].Line = 0
		}
	}
	return out
}

func TestConditionString(t *testing.T) {
	c := Condition{Block: BlockPre, Type: "regex", DefAuth: "gnu", Value: "*phf*"}
	if got, want := c.String(), "pre_cond_regex gnu *phf*"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	empty := Condition{Block: BlockRequestResult, Type: "noop", DefAuth: "local"}
	if got, want := empty.String(), "rr_cond_noop local"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestEnumStrings(t *testing.T) {
	if Pos.String() != "pos_access_right" || Neg.String() != "neg_access_right" {
		t.Error("Sign.String mismatch")
	}
	if Sign(99).String() != "Sign(99)" {
		t.Error("unknown Sign.String mismatch")
	}
	if Block(99).String() != "Block(99)" {
		t.Error("unknown Block.String mismatch")
	}
	if CompositionMode(99).String() != "CompositionMode(99)" {
		t.Error("unknown CompositionMode.String mismatch")
	}
}
