package eacl_test

import (
	"fmt"

	"gaaapi/internal/eacl"
)

// ExampleParseString parses the paper's section 7.2 local policy.
func ExampleParseString() {
	policy, err := eacl.ParseString(`
# EACL entry 1
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
# EACL entry 2
pos_access_right apache *
`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Println("entries:", len(policy.Entries))
	fmt.Println("first right:", policy.Entries[0].Right)
	fmt.Println("pre conditions:", len(policy.Entries[0].Block(eacl.BlockPre)))
	// Output:
	// entries: 2
	// first right: neg_access_right apache *
	// pre conditions: 1
}

// ExampleGlob shows the wildcard language the paper's policies use.
func ExampleGlob() {
	fmt.Println(eacl.Glob("*phf*", "GET /cgi-bin/phf?Qalias=x"))
	fmt.Println(eacl.Glob("GET /cgi-bin/*", "GET /index.html"))
	// Output:
	// true
	// false
}

// ExampleValidate lints a policy with an unreachable entry.
func ExampleValidate() {
	policy, _ := eacl.ParseString(`
pos_access_right apache *
neg_access_right apache GET /secret
`)
	for _, f := range eacl.Validate(policy, eacl.ValidateOptions{}) {
		fmt.Println(f)
	}
	// Output:
	// line 3: warning: unreachable: shadowed by unconditional entry at line 2
}
