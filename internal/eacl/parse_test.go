package eacl

import (
	"errors"
	"strings"
	"testing"
)

// policy71System is the system-wide policy of paper section 7.1.
const policy71System = `
eacl_mode narrow # composition mode narrow
# EACL entry 1
neg_access_right * *
pre_cond_system_threat_level local =high
`

// policy72Local is the local policy of paper section 7.2.
const policy72Local = `
# EACL entry 1
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
# EACL entry 2
pos_access_right apache *
`

func TestParsePaperSection71SystemPolicy(t *testing.T) {
	e, err := ParseString(policy71System)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if !e.ModeSet || e.Mode != ModeNarrow {
		t.Errorf("mode = %v (set=%v), want narrow (set)", e.Mode, e.ModeSet)
	}
	if len(e.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(e.Entries))
	}
	en := e.Entries[0]
	if en.Right != (Right{Sign: Neg, DefAuth: "*", Value: "*"}) {
		t.Errorf("right = %+v", en.Right)
	}
	if len(en.Conditions) != 1 {
		t.Fatalf("conditions = %d, want 1", len(en.Conditions))
	}
	c := en.Conditions[0]
	if c.Block != BlockPre || c.Type != "system_threat_level" || c.DefAuth != "local" || c.Value != "=high" {
		t.Errorf("condition = %+v", c)
	}
}

func TestParsePaperSection72LocalPolicy(t *testing.T) {
	e, err := ParseString(policy72Local)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if e.ModeSet {
		t.Error("local policy should not set a composition mode")
	}
	if len(e.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(e.Entries))
	}
	neg := e.Entries[0]
	if neg.Right.Sign != Neg || neg.Right.DefAuth != "apache" {
		t.Errorf("entry 1 right = %+v", neg.Right)
	}
	if got := len(neg.Block(BlockPre)); got != 1 {
		t.Errorf("entry 1 pre conditions = %d, want 1", got)
	}
	if got := len(neg.Block(BlockRequestResult)); got != 2 {
		t.Errorf("entry 1 rr conditions = %d, want 2", got)
	}
	if v := neg.Block(BlockPre)[0].Value; v != "*phf* *test-cgi*" {
		t.Errorf("regex value = %q", v)
	}
	pos := e.Entries[1]
	if pos.Right.Sign != Pos || len(pos.Conditions) != 0 {
		t.Errorf("entry 2 = %+v", pos)
	}
}

func TestParsePaperSpelledModeLine(t *testing.T) {
	// The paper writes "eacl mode 1".
	e, err := ParseString("eacl mode 1\npos_access_right apache *\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if !e.ModeSet || e.Mode != ModeNarrow {
		t.Errorf("mode = %v, want narrow", e.Mode)
	}
}

func TestParseAllBlocks(t *testing.T) {
	e, err := ParseString(`
pos_access_right apache GET /cgi-bin/*
pre_cond_time_window local 09:00-17:00
rr_cond_audit local on:any/info:cgi
mid_cond_quota local cpu_ms<=50
post_cond_notify local on:failure/sysadmin/info:cgi
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	en := e.Entries[0]
	for _, tt := range []struct {
		block Block
		typ   string
	}{
		{BlockPre, "time_window"},
		{BlockRequestResult, "audit"},
		{BlockMid, "quota"},
		{BlockPost, "notify"},
	} {
		got := en.Block(tt.block)
		if len(got) != 1 || got[0].Type != tt.typ {
			t.Errorf("block %v = %+v, want one %q condition", tt.block, got, tt.typ)
		}
	}
	if en.Right.Value != "GET /cgi-bin/*" {
		t.Errorf("right value = %q", en.Right.Value)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"condition first", "pre_cond_regex gnu *x*", "before any access right"},
		{"unknown keyword", "allow_all apache *", `unknown keyword "allow_all"`},
		{"bad mode", "eacl_mode sideways", "unknown composition mode"},
		{"mode after entry", "pos_access_right a *\neacl_mode 1", "must precede"},
		{"duplicate mode", "eacl_mode 0\neacl_mode 1", "duplicate eacl_mode"},
		{"short right", "pos_access_right apache", "wants:"},
		{"short condition", "pos_access_right a *\npre_cond_regex", "wants:"},
		{"bare cond prefix", "pos_access_right a *\npre_cond x y", "unknown keyword"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseString(tt.in)
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %v, want substring %q", err, tt.want)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := ParseString("pos_access_right a *\n\nbogus line here\n")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if pe.Source != "inline" {
		t.Errorf("source = %q, want inline", pe.Source)
	}
}

func TestParseComments(t *testing.T) {
	e, err := ParseString(`
# full-line comment
pos_access_right apache * # trailing comment
pre_cond_regex gnu *a#b* # value keeps embedded hash
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if v := e.Entries[0].Right.Value; v != "*" {
		t.Errorf("right value = %q, want *", v)
	}
	if v := e.Entries[0].Conditions[0].Value; v != "*a#b*" {
		t.Errorf("condition value = %q, want *a#b*", v)
	}
}

func TestParseEmpty(t *testing.T) {
	e, err := ParseString("\n# nothing\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(e.Entries) != 0 || e.ModeSet {
		t.Errorf("got %+v, want empty EACL", e)
	}
}

func TestCompositionModeParse(t *testing.T) {
	tests := []struct {
		in   string
		want CompositionMode
	}{
		{"0", ModeExpand}, {"expand", ModeExpand}, {"EXPAND", ModeExpand},
		{"1", ModeNarrow}, {"narrow", ModeNarrow},
		{"2", ModeStop}, {"stop", ModeStop},
	}
	for _, tt := range tests {
		got, err := ParseCompositionMode(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseCompositionMode(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := ParseCompositionMode("3"); err == nil {
		t.Error("ParseCompositionMode(3) should fail")
	}
}

func TestClone(t *testing.T) {
	orig, err := ParseString(policy72Local)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	cp := orig.Clone()
	cp.Entries[0].Conditions[0].Value = "mutated"
	cp.Entries[1].Right.Value = "mutated"
	if orig.Entries[0].Conditions[0].Value == "mutated" {
		t.Error("Clone shares condition storage with original")
	}
	if orig.Entries[1].Right.Value == "mutated" {
		t.Error("Clone shares entry storage with original")
	}
	var nilEACL *EACL
	if nilEACL.Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}
