// Package audit implements the audit-record service behind
// rr_cond_audit / post_cond_audit and the general "generating audit
// records" countermeasure of the paper's section 1.
package audit

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Record is one structured audit record.
type Record struct {
	Time     time.Time         `json:"time"`
	Kind     string            `json:"kind"`               // e.g. "authorization", "attack", "post"
	Object   string            `json:"object,omitempty"`   // protected object
	Right    string            `json:"right,omitempty"`    // requested right
	Decision string            `json:"decision,omitempty"` // yes/no/maybe
	ClientIP string            `json:"client_ip,omitempty"`
	User     string            `json:"user,omitempty"`
	Info     string            `json:"info,omitempty"`
	Details  map[string]string `json:"details,omitempty"`
}

// Logger consumes audit records.
type Logger interface {
	Log(r Record) error
}

// LoggerFunc adapts a function to Logger.
type LoggerFunc func(Record) error

// Log implements Logger.
func (f LoggerFunc) Log(r Record) error { return f(r) }

// JSONWriter writes one JSON object per line to an io.Writer. Safe for
// concurrent use.
type JSONWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONWriter returns a JSON-lines audit logger writing to w.
func NewJSONWriter(w io.Writer) *JSONWriter {
	return &JSONWriter{enc: json.NewEncoder(w)}
}

// Log implements Logger.
func (j *JSONWriter) Log(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(r)
}

// Ring keeps the last N records in memory; older records are evicted.
// Safe for concurrent use. Handy for tests and for the admin endpoint.
type Ring struct {
	mu   sync.Mutex
	buf  []Record
	next int
	full bool
}

// NewRing returns a ring holding up to n records (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Record, n)}
}

// Log implements Logger.
func (r *Ring) Log(rec Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	return nil
}

// Records returns the retained records, oldest first.
func (r *Ring) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Record(nil), r.buf[:r.next]...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns the number of retained records.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Multi fans records out to several loggers; the first error wins but
// every logger is attempted.
func Multi(loggers ...Logger) Logger {
	return LoggerFunc(func(rec Record) error {
		var first error
		for _, l := range loggers {
			if err := l.Log(rec); err != nil && first == nil {
				first = err
			}
		}
		return first
	})
}

// Discard drops every record.
var Discard Logger = LoggerFunc(func(Record) error { return nil })
