package audit

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONWriter(t *testing.T) {
	var buf strings.Builder
	w := NewJSONWriter(&buf)
	rec := Record{
		Time:     time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC),
		Kind:     "authorization",
		Object:   "/cgi-bin/phf",
		Decision: "no",
		ClientIP: "10.0.0.66",
		Details:  map[string]string{"signature": "phf"},
	}
	if err := w.Log(rec); err != nil {
		t.Fatalf("Log: %v", err)
	}
	var got Record
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if got.Object != rec.Object || got.Details["signature"] != "phf" {
		t.Errorf("round trip = %+v", got)
	}
	// Empty optional fields are omitted.
	if strings.Contains(buf.String(), `"user"`) {
		t.Errorf("zero fields should be omitted: %s", buf.String())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		if err := r.Log(Record{Info: string(rune('a' + i))}); err != nil {
			t.Fatal(err)
		}
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("retained = %d, want 3", len(recs))
	}
	if recs[0].Info != "c" || recs[2].Info != "e" {
		t.Errorf("order = %v, want oldest-first c..e", infos(recs))
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Log(Record{Info: "x"})
	r.Log(Record{Info: "y"})
	recs := r.Records()
	if len(recs) != 2 || recs[0].Info != "x" {
		t.Errorf("records = %v", infos(recs))
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestRingMinimumSize(t *testing.T) {
	r := NewRing(0)
	r.Log(Record{Info: "a"})
	r.Log(Record{Info: "b"})
	recs := r.Records()
	if len(recs) != 1 || recs[0].Info != "b" {
		t.Errorf("records = %v, want just b", infos(recs))
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Log(Record{})
			r.Records()
		}()
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Errorf("Len = %d, want 8", r.Len())
	}
}

func TestMulti(t *testing.T) {
	ring1, ring2 := NewRing(4), NewRing(4)
	m := Multi(ring1, ring2)
	if err := m.Log(Record{Info: "x"}); err != nil {
		t.Fatal(err)
	}
	if ring1.Len() != 1 || ring2.Len() != 1 {
		t.Error("Multi did not fan out")
	}

	boom := errors.New("boom")
	failing := LoggerFunc(func(Record) error { return boom })
	m2 := Multi(failing, ring1)
	err := m2.Log(Record{Info: "y"})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if ring1.Len() != 2 {
		t.Error("Multi stopped at first error; all loggers must be attempted")
	}
}

func TestDiscard(t *testing.T) {
	if err := Discard.Log(Record{}); err != nil {
		t.Errorf("Discard.Log = %v", err)
	}
}

func infos(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Info
	}
	return out
}
