package gaa

import (
	"fmt"
	"strings"

	"gaaapi/internal/eacl"
)

// TraceEvent records one step of policy evaluation, for audit logs and
// for explaining decisions (cmd/eaclint --explain).
type TraceEvent struct {
	// Source is the EACL source (file name) the event belongs to.
	Source string
	// EntryLine is the source line of the entry under evaluation.
	EntryLine int
	// Cond is the condition evaluated; zero-valued for entry-level
	// events ("entry fired", "entry inapplicable").
	Cond eacl.Condition
	// Outcome of the condition, when Cond is set.
	Outcome Outcome
	// Note is a human-readable description of the step.
	Note string
}

// String renders the trace event for logs.
func (t TraceEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d", t.Source, t.EntryLine)
	if t.Cond.Type != "" {
		fmt.Fprintf(&b, " [%s]", t.Cond)
		fmt.Fprintf(&b, " -> %s", t.Outcome.Result)
		if t.Outcome.Detail != "" {
			fmt.Fprintf(&b, " (%s)", t.Outcome.Detail)
		}
		if t.Outcome.Err != nil {
			fmt.Fprintf(&b, " err=%v", t.Outcome.Err)
		}
	}
	if t.Note != "" {
		fmt.Fprintf(&b, " %s", t.Note)
	}
	return b.String()
}

// Answer is the result of CheckAuthorization: the paper's authorization
// status plus everything the later phases need.
type Answer struct {
	// Decision is the authorization status: Yes (authorized), No (not
	// authorized) or Maybe (uncertain).
	Decision Decision
	// Applicable reports whether any policy entry applied. When false,
	// Decision is Maybe and the caller should fall back to its native
	// access control (HTTP_DECLINED in the paper's translation).
	Applicable bool
	// Unevaluated lists the conditions left unevaluated when Decision
	// is Maybe (e.g. a pre_cond_redirect carrying the target URL).
	Unevaluated []eacl.Condition
	// Challenge, when non-empty, tells the application the requester
	// may satisfy the policy by authenticating (HTTP_AUTHREQUIRED).
	Challenge string
	// Mid and Post hold the mid- and post-condition lists of the
	// entries that decided, for ExecutionControl and
	// PostExecutionActions.
	Mid, Post []eacl.Condition
	// Trace is the full evaluation trace when tracing is enabled.
	// Degraded evaluations (see Faults) are traced even with tracing
	// off.
	Trace []TraceEvent
	// Faults lists the condition evaluations the supervision layer
	// degraded to MAYBE (panic, timeout, error, invalid decision)
	// while producing this answer, each with a structured reason.
	// Empty in healthy operation.
	Faults []Fault
}

// UnevaluatedOnly returns the single unevaluated condition of the given
// type if it is the only unevaluated condition, as the paper's Apache
// integration does for pre_cond_redirect ("checks whether there is only
// one unevaluated condition of the type pre_cond_redirect").
func (a *Answer) UnevaluatedOnly(condType string) (eacl.Condition, bool) {
	if len(a.Unevaluated) != 1 || a.Unevaluated[0].Type != condType {
		return eacl.Condition{}, false
	}
	return a.Unevaluated[0], true
}
