package gaa

import "fmt"

// Class describes how a condition outcome participates in entry
// selection (see the package comment).
type Class int

const (
	// ClassSelector conditions decide whether the entry applies to the
	// current request/system state; NO means "entry inapplicable, keep
	// scanning" (threat level, time window, location, group membership,
	// request signatures).
	ClassSelector Class = iota + 1
	// ClassRequirement conditions must hold once the entry applies; NO
	// on a positive entry is a final deny, optionally carrying an
	// authentication challenge (access identity, payload limits).
	ClassRequirement
	// ClassAction conditions perform side effects (notification, audit,
	// blacklist update); they normally evaluate YES and are only legal
	// in request-result and post blocks.
	ClassAction
)

// String returns a symbolic name for the class.
func (c Class) String() string {
	switch c {
	case ClassSelector:
		return "selector"
	case ClassRequirement:
		return "requirement"
	case ClassAction:
		return "action"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Outcome is the result of evaluating one condition.
type Outcome struct {
	// Result is the tri-state condition status.
	Result Decision
	// Class steers entry selection; the zero value is treated as
	// ClassSelector, the common case.
	Class Class
	// Unevaluated marks a condition deliberately (or for lack of a
	// registered evaluator) left unevaluated; Result must be Maybe.
	Unevaluated bool
	// Challenge optionally tells the application how the requester
	// could satisfy a failed requirement (e.g. a Basic-auth realm).
	Challenge string
	// Detail is a human-readable explanation recorded in the trace.
	Detail string
	// Err records an evaluator failure; the engine degrades it to
	// MAYBE and keeps the error in the trace.
	Err error
	// Fault, when not FaultNone, marks an outcome produced by the
	// supervision layer degrading a failed evaluation (panic, timeout,
	// error, invalid decision). Evaluators leave it zero.
	Fault FaultKind
}

// classOrDefault resolves the zero Class to ClassSelector.
func (o Outcome) classOrDefault() Class {
	if o.Class == 0 {
		return ClassSelector
	}
	return o.Class
}

// MetOutcome is shorthand for a satisfied condition of the given class.
func MetOutcome(class Class, detail string) Outcome {
	return Outcome{Result: Yes, Class: class, Detail: detail}
}

// FailedOutcome is shorthand for an unmet condition of the given class.
func FailedOutcome(class Class, detail string) Outcome {
	return Outcome{Result: No, Class: class, Detail: detail}
}

// UnevaluatedOutcome is shorthand for a condition left unevaluated.
func UnevaluatedOutcome(detail string) Outcome {
	return Outcome{Result: Maybe, Unevaluated: true, Detail: detail}
}
