package gaa

import (
	"context"
	"strings"
	"testing"

	"gaaapi/internal/eacl"
	"gaaapi/internal/metrics"
)

// metricsAPI builds an API with WithMetrics plus the synthetic
// evaluators of newTestAPI-style tests.
func metricsAPI(t *testing.T, opts ...Option) (*API, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	a := New(append([]Option{WithMetrics(reg)}, opts...)...)
	a.RegisterFunc("sel_yes", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "sel_yes")
	})
	a.RegisterFunc("req_no", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return FailedOutcome(ClassRequirement, "req_no")
	})
	a.RegisterFunc("maybe", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return UnevaluatedOutcome("deliberately unevaluated")
	})
	a.RegisterFunc("quota_yes", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassRequirement, "within quota")
	})
	a.RegisterFunc("panicky", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		panic("instrumented boom")
	})
	return a, reg
}

func TestMetricsCountsDecisionsPerPhase(t *testing.T) {
	a, reg := metricsAPI(t)
	grant := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_sel_yes local
mid_cond_quota_yes local
post_cond_quota_yes local
`))
	deny := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_sel_yes local
`))
	uncertain := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_maybe local
`))

	ctx := context.Background()
	ansGrant := checkAuth(t, a, grant, simpleRequest())
	checkAuth(t, a, deny, simpleRequest())
	checkAuth(t, a, uncertain, simpleRequest())
	a.ExecutionControl(ctx, ansGrant, simpleRequest())
	a.PostExecutionActions(ctx, ansGrant, simpleRequest(), Yes)

	vals := reg.Values()
	wants := map[string]float64{
		`gaa_decisions_total{decision="yes",phase="check"}`:   1,
		`gaa_decisions_total{decision="no",phase="check"}`:    1,
		`gaa_decisions_total{decision="maybe",phase="check"}`: 1,
		`gaa_decisions_total{decision="yes",phase="mid"}`:     1,
		`gaa_decisions_total{decision="yes",phase="post"}`:    1,
		`gaa_phase_latency_seconds_count{phase="check"}`:      3,
		`gaa_phase_latency_seconds_count{phase="mid"}`:        1,
		`gaa_phase_latency_seconds_count{phase="post"}`:       1,
	}
	for k, want := range wants {
		if got := vals[k]; got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
}

func TestMetricsEmptyPhasesRecordNothing(t *testing.T) {
	a, reg := metricsAPI(t)
	p := localPolicy(mustEACL(t, "pos_access_right apache *"))
	ans := checkAuth(t, a, p, simpleRequest())
	// No mid/post conditions: the phase entry points return early and
	// must not observe a latency or count a decision.
	a.ExecutionControl(context.Background(), ans, simpleRequest())
	a.PostExecutionActions(context.Background(), ans, simpleRequest(), Yes)
	vals := reg.Values()
	for _, k := range []string{
		`gaa_phase_latency_seconds_count{phase="mid"}`,
		`gaa_phase_latency_seconds_count{phase="post"}`,
	} {
		if got := vals[k]; got != 0 {
			t.Errorf("%s = %v, want 0 (phase had no conditions)", k, got)
		}
	}
	if got := vals[`gaa_phase_latency_seconds_count{phase="check"}`]; got != 1 {
		t.Errorf("check count = %v, want 1", got)
	}
}

func TestMetricsFaultCounters(t *testing.T) {
	a, reg := metricsAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_panicky local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Fatalf("decision under panic = %v, want maybe", ans.Decision)
	}
	vals := reg.Values()
	if got := vals[`gaa_evaluator_faults_total{kind="panic"}`]; got != 1 {
		t.Errorf("panic fault counter = %v, want 1", got)
	}
}

func TestMetricsCacheCounters(t *testing.T) {
	a, reg := metricsAPI(t, WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	for i := 0; i < 3; i++ {
		if _, err := a.GetObjectPolicyInfo("/x", sys, nil); err != nil {
			t.Fatal(err)
		}
	}
	vals := reg.Values()
	if got := vals["gaa_policy_cache_misses_total"]; got != 1 {
		t.Errorf("misses = %v, want 1", got)
	}
	if got := vals["gaa_policy_cache_hits_total"]; got != 2 {
		t.Errorf("hits = %v, want 2", got)
	}
}

// TestMetricsZeroAllocCachedGrant pins the PR-1 contract with
// instrumentation enabled: a trace-disabled grant on a cached policy
// through CheckAuthorizationInto still allocates nothing.
func TestMetricsZeroAllocCachedGrant(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops 1 in 4 Puts under race; pooled paths allocate by design there")
	}
	reg := metrics.NewRegistry()
	a := New(WithMetrics(reg), WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	policy, err := a.GetObjectPolicyInfo("/x", nil, []PolicySource{src})
	if err != nil {
		t.Fatal(err)
	}
	req := simpleRequest()
	ans := new(Answer)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if err := a.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("instrumented cached grant allocates %v per op, want 0", allocs)
	}
}

// TestMetricsSampledLatency: with WithMetricsSampling(2) only ~1 in 4
// executions reads the clock, recorded with weight 4 — decision counts
// stay exact, histogram counts are weight-multiples statistically
// centered on the true count.
func TestMetricsSampledLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	a := New(WithMetricsSampling(2), WithMetrics(reg)) // order-independent
	p := localPolicy(mustEACL(t, "pos_access_right apache *"))
	const n = 400
	for i := 0; i < n; i++ {
		checkAuth(t, a, p, simpleRequest())
	}
	vals := reg.Values()
	if got := vals[`gaa_decisions_total{decision="yes",phase="check"}`]; got != n {
		t.Errorf("decisions = %v, want exactly %v (counters are never sampled)", got, n)
	}
	count := vals[`gaa_phase_latency_seconds_count{phase="check"}`]
	if int(count)%4 != 0 {
		t.Errorf("sampled count %v not a multiple of weight 4", count)
	}
	// Binomial(400, 1/4)*4 has mean 400, sigma ~35; 6 sigma bounds.
	if count < 200 || count > 600 {
		t.Errorf("sampled count %v implausibly far from %v", count, n)
	}
}

func TestMetricsExpositionParses(t *testing.T) {
	a, reg := metricsAPI(t)
	p := localPolicy(mustEACL(t, "pos_access_right apache *"))
	checkAuth(t, a, p, simpleRequest())
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	for _, name := range []string{
		MetricPhaseLatency, MetricDecisions, MetricEvaluatorFaults,
		MetricCacheHits, MetricCacheMisses, MetricCacheEvictions,
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from exposition", name)
		}
	}
	if err := metrics.CheckHistogramInvariants(fams[MetricPhaseLatency]); err != nil {
		t.Error(err)
	}
}
