package gaa

import (
	"context"

	"gaaapi/internal/eacl"
)

// Policy is the composed set of EACLs governing one object: system-wide
// policies first, then local policies (paper section 2.1: "system-wide
// policies implicitly have higher priority than the local policies").
type Policy struct {
	System []*eacl.EACL
	Local  []*eacl.EACL
	// Mode is the composition mode taken from the first system-wide
	// EACL that declares one; DefaultCompositionMode otherwise.
	Mode eacl.CompositionMode
	// Object is the protected object the policy was retrieved for.
	Object string
}

// DefaultCompositionMode applies when no system-wide policy declares a
// mode. Narrow is the fail-safe choice: system denials always hold.
const DefaultCompositionMode = eacl.ModeNarrow

// NewPolicy composes system and local EACL lists, deriving the mode.
func NewPolicy(object string, system, local []*eacl.EACL) *Policy {
	p := &Policy{System: system, Local: local, Mode: DefaultCompositionMode, Object: object}
	for _, e := range system {
		if e.ModeSet {
			p.Mode = e.Mode
			break
		}
	}
	return p
}

// EACLs returns the composed ordered list, system-wide first, honoring
// ModeStop (local policies ignored when a system policy exists).
func (p *Policy) EACLs() []*eacl.EACL {
	if p.Mode == eacl.ModeStop && len(p.System) > 0 {
		return p.System
	}
	out := make([]*eacl.EACL, 0, len(p.System)+len(p.Local))
	out = append(out, p.System...)
	out = append(out, p.Local...)
	return out
}

// levelAccum folds per-EACL results of one level (system or local) as
// a conjunction: "To evaluate several separately specified local (or
// system-wide) policies, we take a conjunction of the policies" (paper
// section 2.1). EACLs with no applicable entry are neutral. The
// accumulator lives on the evaluatePolicy stack so a level with no
// traces and no unevaluated conditions costs nothing.
type levelAccum struct {
	applicable       bool
	dec              Decision
	deniedUncurable  bool
	deniedChallenged string
	trace            []TraceEvent
	unevaluated      []eacl.Condition
	faults           []Fault
}

func (l *levelAccum) add(r evalResult) {
	l.trace = append(l.trace, r.trace...)
	// Faults are diagnostics: they surface even from EACLs that did not
	// decide.
	l.faults = append(l.faults, r.faults...)
	if !r.applicable {
		return
	}
	l.applicable = true
	l.dec = Conjoin(l.dec, r.decision)
	l.unevaluated = append(l.unevaluated, r.unevaluated...)
	if r.decision == No {
		if r.challenge == "" {
			l.deniedUncurable = true
		} else if l.deniedChallenged == "" {
			l.deniedChallenged = r.challenge
		}
	}
}

func (l *levelAccum) result() evalResult {
	combined := evalResult{
		decision:    Maybe, // uncertain until something applies
		applicable:  l.applicable,
		trace:       l.trace,
		unevaluated: l.unevaluated,
		faults:      l.faults,
	}
	if l.applicable {
		combined.decision = l.dec
	}
	// A challenge is only meaningful if authenticating could cure every
	// deny at this level.
	if !l.deniedUncurable {
		combined.challenge = l.deniedChallenged
	}
	return combined
}

// composeLevels merges the system-level and local-level results under
// the composition mode.
func composeLevels(mode eacl.CompositionMode, sys, loc evalResult, sysExists bool) evalResult {
	out := evalResult{
		trace: append(append([]TraceEvent{}, sys.trace...), loc.trace...),
	}
	if n := len(sys.faults) + len(loc.faults); n > 0 {
		out.faults = append(append(make([]Fault, 0, n), sys.faults...), loc.faults...)
	}
	switch {
	case mode == eacl.ModeStop && sysExists:
		// Local policies are ignored entirely, including their trace:
		// they were never evaluated (and produced no faults).
		out = sys
	case !sys.applicable && !loc.applicable:
		out.decision = Maybe
	case mode == eacl.ModeExpand:
		out.applicable = true
		switch {
		case !sys.applicable:
			out.decision = loc.decision
		case !loc.applicable:
			out.decision = sys.decision
		default:
			out.decision = Disjoin(sys.decision, loc.decision)
		}
	default: // narrow (and stop without a system policy)
		out.applicable = true
		switch {
		case !sys.applicable:
			out.decision = loc.decision
		case !loc.applicable:
			out.decision = sys.decision
		default:
			out.decision = Conjoin(sys.decision, loc.decision)
		}
	}
	if out.decision == Maybe {
		out.unevaluated = append(append([]eacl.Condition{}, sys.unevaluated...), loc.unevaluated...)
	}
	if out.decision == No {
		// Surface a challenge only if authenticating could cure every
		// deny that contributed to the decision.
		curable := true
		var challenge string
		for _, level := range []evalResult{sys, loc} {
			if !level.applicable || level.decision != No {
				continue
			}
			if level.challenge == "" {
				curable = false
				break
			}
			if challenge == "" {
				challenge = level.challenge
			}
		}
		if curable {
			out.challenge = challenge
		}
	}
	return out
}

// evaluatePolicy runs the scan over both levels, composes, and leaves
// the deciding entries of every applicable level in st.deciders (their
// request-result/mid/post blocks belong to the answer). Results are
// folded into stack accumulators as each EACL is scanned — no
// intermediate per-level result slices.
func (a *API) evaluatePolicy(ctx context.Context, p *Policy, req *Request, st *evalState) evalResult {
	var sysAcc levelAccum
	for _, e := range p.System {
		r := a.evaluateEACL(ctx, e, req)
		sysAcc.add(r)
		if r.applicable && r.entry != nil {
			st.deciders = append(st.deciders, decidingEntry{entry: r.entry, source: r.source})
		}
	}
	sys := sysAcc.result()
	sysExists := len(p.System) > 0

	var loc evalResult
	loc.decision = Maybe
	if !(p.Mode == eacl.ModeStop && sysExists) {
		var locAcc levelAccum
		for _, e := range p.Local {
			r := a.evaluateEACL(ctx, e, req)
			locAcc.add(r)
			if r.applicable && r.entry != nil {
				st.deciders = append(st.deciders, decidingEntry{entry: r.entry, source: r.source})
			}
		}
		loc = locAcc.result()
	}
	return composeLevels(p.Mode, sys, loc, sysExists)
}

// decidingEntry is an entry that fired (or went uncertain) during the
// scan; its request-result, mid and post blocks participate in the
// later phases.
type decidingEntry struct {
	entry  *eacl.Entry
	source string
}
