package gaa

import "strconv"

// Well-known parameter types extracted from an application request.
// Parameters are classified with a type and an authority "so that
// GAA-API routines that evaluate conditions with the same type and
// authority could find the relevant parameters" (paper section 6).
const (
	ParamClientIP    = "client_ip"     // dotted-quad client address
	ParamClientHost  = "client_host"   // resolved client host name
	ParamRequestURI  = "request_uri"   // method + URI, e.g. "GET /cgi-bin/phf?x=1"
	ParamMethod      = "method"        // HTTP method
	ParamPath        = "path"          // URL path component
	ParamQuery       = "query"         // raw query string
	ParamUser        = "accessid_USER" // authenticated user identity
	ParamGroupKey    = "group_key"     // identity checked against groups (defaults to client_ip)
	ParamInputLength = "input_length"  // length of input passed to the operation (CGI input)
	ParamHeaderCount = "header_count"  // number of request headers
	ParamObject      = "object"        // the protected object (file system path)

	// Execution-phase usage parameters (mid-conditions).
	ParamCPUMillis    = "cpu_ms"
	ParamWallMillis   = "wall_ms"
	ParamMemBytes     = "mem_bytes"
	ParamOutputBytes  = "output_bytes"
	ParamOpStatusName = "op_status" // "yes"/"no", post-condition phase
)

// AuthorityAny marks parameters meaningful to any defining authority.
const AuthorityAny = "*"

// Param is one typed request parameter.
type Param struct {
	Type      string
	Authority string
	Value     string
}

// ParamList is an ordered list of request parameters with typed lookup.
type ParamList []Param

// Get returns the first parameter of the given type whose authority
// matches (exact match, or either side being AuthorityAny).
func (ps ParamList) Get(paramType, authority string) (string, bool) {
	for _, p := range ps {
		if p.Type != paramType {
			continue
		}
		if p.Authority == authority || p.Authority == AuthorityAny || authority == AuthorityAny {
			return p.Value, true
		}
	}
	return "", false
}

// GetInt is Get followed by integer conversion; ok is false if the
// parameter is missing or not an integer.
func (ps ParamList) GetInt(paramType, authority string) (int64, bool) {
	s, ok := ps.Get(paramType, authority)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// With returns a copy of the list with extra parameters appended. The
// receiver is never mutated, so evaluators can safely hold references.
// Appending nothing returns the receiver unchanged (no copy).
func (ps ParamList) With(extra ...Param) ParamList {
	if len(extra) == 0 {
		return ps
	}
	out := make(ParamList, 0, len(ps)+len(extra))
	out = append(out, ps...)
	out = append(out, extra...)
	return out
}
