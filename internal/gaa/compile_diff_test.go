package gaa_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/experiments"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// The differential harness: one compiled and one interpreted API over
// identically-built dependencies (own threat manager and group store
// seeded the same way, shared frozen clock). Policies are composed
// once and the same *Policy is handed to both engines, so any
// divergence in the Answer is the compiler's fault.

type diffPair struct {
	compiled    *gaa.API
	interpreted *gaa.API
}

func newDiffPair(threat ids.Level, badGuys []string, now time.Time) diffPair {
	mk := func(opts ...gaa.Option) *gaa.API {
		store := groups.NewStore()
		for _, m := range badGuys {
			store.Add("BadGuys", m)
		}
		opts = append([]gaa.Option{gaa.WithClock(func() time.Time { return now })}, opts...)
		a := gaa.New(opts...)
		conditions.Register(a, conditions.Deps{
			Threat: ids.NewManager(threat),
			Groups: store,
		})
		return a
	}
	return diffPair{
		compiled:    mk(),
		interpreted: mk(gaa.WithCompiledEngine(false)),
	}
}

// check runs the same request through both engines and fails the test
// on any observable difference: decision, applicability, challenge,
// unevaluated conditions, mid/post blocks, faults and fault traces.
func (d diffPair) check(t *testing.T, label string, p *gaa.Policy, mkReq func() *gaa.Request) {
	t.Helper()
	ctx := context.Background()
	ac, err := d.compiled.CheckAuthorization(ctx, p, mkReq())
	if err != nil {
		t.Fatalf("%s: compiled: %v", label, err)
	}
	ai, err := d.interpreted.CheckAuthorization(ctx, p, mkReq())
	if err != nil {
		t.Fatalf("%s: interpreted: %v", label, err)
	}
	if diff := answerDiff(ac, ai); diff != "" {
		t.Errorf("%s: compiled and interpreted answers differ: %s", label, diff)
	}
}

func answerDiff(c, i *gaa.Answer) string {
	if c.Decision != i.Decision {
		return fmt.Sprintf("decision %v vs %v", c.Decision, i.Decision)
	}
	if c.Applicable != i.Applicable {
		return fmt.Sprintf("applicable %v vs %v", c.Applicable, i.Applicable)
	}
	if c.Challenge != i.Challenge {
		return fmt.Sprintf("challenge %q vs %q", c.Challenge, i.Challenge)
	}
	if len(c.Unevaluated) != len(i.Unevaluated) {
		return fmt.Sprintf("unevaluated %d vs %d conds", len(c.Unevaluated), len(i.Unevaluated))
	}
	for n := range c.Unevaluated {
		if c.Unevaluated[n] != i.Unevaluated[n] {
			return fmt.Sprintf("unevaluated[%d] %+v vs %+v", n, c.Unevaluated[n], i.Unevaluated[n])
		}
	}
	if len(c.Mid) != len(i.Mid) || len(c.Post) != len(i.Post) {
		return fmt.Sprintf("mid/post %d/%d vs %d/%d conds", len(c.Mid), len(c.Post), len(i.Mid), len(i.Post))
	}
	for n := range c.Mid {
		if c.Mid[n] != i.Mid[n] {
			return fmt.Sprintf("mid[%d] %+v vs %+v", n, c.Mid[n], i.Mid[n])
		}
	}
	for n := range c.Post {
		if c.Post[n] != i.Post[n] {
			return fmt.Sprintf("post[%d] %+v vs %+v", n, c.Post[n], i.Post[n])
		}
	}
	if len(c.Faults) != len(i.Faults) {
		return fmt.Sprintf("faults %d vs %d", len(c.Faults), len(i.Faults))
	}
	for n := range c.Faults {
		cf, fi := c.Faults[n], i.Faults[n]
		if cf.Cond != fi.Cond || cf.Kind != fi.Kind || cf.Reason != fi.Reason {
			return fmt.Sprintf("fault[%d] {%v %v %q} vs {%v %v %q}",
				n, cf.Cond.Type, cf.Kind, cf.Reason, fi.Cond.Type, fi.Kind, fi.Reason)
		}
	}
	// Untraced requests still trace degraded evaluations.
	if len(c.Trace) != len(i.Trace) {
		return fmt.Sprintf("fault-trace %d vs %d events", len(c.Trace), len(i.Trace))
	}
	for n := range c.Trace {
		ct, it := c.Trace[n], i.Trace[n]
		if ct.Source != it.Source || ct.EntryLine != it.EntryLine || ct.Cond != it.Cond ||
			ct.Note != it.Note ||
			ct.Outcome.Result != it.Outcome.Result ||
			ct.Outcome.Unevaluated != it.Outcome.Unevaluated ||
			ct.Outcome.Fault != it.Outcome.Fault ||
			ct.Outcome.Detail != it.Outcome.Detail ||
			ct.Outcome.Challenge != it.Outcome.Challenge {
			return fmt.Sprintf("trace[%d] differs: {%v %q} vs {%v %q}",
				n, ct.Outcome.Result, ct.Outcome.Detail, it.Outcome.Result, it.Outcome.Detail)
		}
	}
	return ""
}

func composePolicy(t *testing.T, a *gaa.API, object, sysText, locText string) *gaa.Policy {
	t.Helper()
	var system, local []gaa.PolicySource
	if sysText != "" {
		src := gaa.NewMemorySource()
		if err := src.AddPolicy("*", sysText); err != nil {
			t.Fatalf("system policy: %v", err)
		}
		system = append(system, src)
	}
	if locText != "" {
		src := gaa.NewMemorySource()
		if err := src.AddPolicy("*", locText); err != nil {
			t.Fatalf("local policy: %v", err)
		}
		local = append(local, src)
	}
	p, err := a.GetObjectPolicyInfo(object, system, local)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompiledMatchesInterpretedOnRepoPolicies sweeps every policy
// shipped in the repository — the section 7 files under
// policies/paper/ and the experiments' inline copies — across a
// request matrix of rights, identities, client addresses, CGI input
// lengths and threat levels, requiring identical answers from both
// engines on each cell.
func TestCompiledMatchesInterpretedOnRepoPolicies(t *testing.T) {
	sysPolicies := map[string]string{
		"none": "",
		"71":   experiments.Policy71System,
		"72":   experiments.Policy72System,
	}
	locPolicies := map[string]string{
		"71":   experiments.Policy71Local,
		"72":   experiments.Policy72Local,
		"72nn": experiments.Policy72LocalNoNotify,
	}
	dir := filepath.Join("..", "..", "policies", "paper")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var nfiles int
	for _, f := range files {
		if filepath.Ext(f.Name()) != ".eacl" {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(f.Name(), "system-") {
			sysPolicies["file:"+f.Name()] = string(text)
		} else {
			locPolicies["file:"+f.Name()] = string(text)
		}
		nfiles++
	}
	if nfiles == 0 {
		t.Fatalf("no .eacl files under %s", dir)
	}

	rights := []string{
		"GET /index.html",
		"GET /cgi-bin/phf?q=x",
		"GET /cgi-bin/test-cgi",
		"GET /a///////////////////b",
		"POST /scripts/cmd.exe",
	}
	users := []string{"", "alice"}
	ips := []string{"10.9.9.9", "192.168.1.5"}
	inputs := []string{"14", "2000"}
	now := time.Date(2026, time.March, 4, 15, 30, 0, 0, time.UTC)

	var totalRuns uint64
	for _, threat := range []ids.Level{ids.Low, ids.Medium, ids.High} {
		pair := newDiffPair(threat, []string{"10.9.9.9"}, now)
		for sysName, sysText := range sysPolicies {
			for locName, locText := range locPolicies {
				p := composePolicy(t, pair.compiled, "/index.html", sysText, locText)
				for _, right := range rights {
					for _, user := range users {
						for _, ip := range ips {
							for _, in := range inputs {
								label := fmt.Sprintf("threat=%v sys=%s loc=%s right=%q user=%q ip=%s in=%s",
									threat, sysName, locName, right, user, ip, in)
								pair.check(t, label, p, func() *gaa.Request {
									params := gaa.ParamList{
										{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: ip},
										{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: in},
									}
									if user != "" {
										params = append(params, gaa.Param{
											Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: user,
										})
									}
									return gaa.NewRequest("apache", right, params...)
								})
							}
						}
					}
				}
			}
		}
		totalRuns += pair.compiled.CompileStats().Runs
	}
	if totalRuns == 0 {
		t.Error("compiled engine never ran during the sweep")
	}
}

// FuzzCompiledVsInterpreted is the differential fuzzer: arbitrary
// system/local EACL texts, right values, identities and environment
// knobs, with the compiled and interpreted engines required to agree
// on the complete answer — decision, reasons and fault degradation.
func FuzzCompiledVsInterpreted(f *testing.F) {
	seed := func(sys, loc, right, user, ip string, inputLen, threat, hour, day int) {
		f.Add(sys, loc, right, user, ip, inputLen, threat, hour, day)
	}
	// Section 7 combinations.
	seed(experiments.Policy71System, experiments.Policy71Local, "GET /index.html", "", "10.9.9.9", 14, 2, 15, 3)
	seed(experiments.Policy72System, experiments.Policy72Local, "GET /cgi-bin/phf?q=x", "alice", "10.9.9.9", 14, 0, 15, 3)
	seed("", experiments.Policy72LocalNoNotify, "GET /index.html", "", "192.168.1.5", 2000, 1, 9, 0)
	// Redirect left unevaluated for the application.
	seed("", "pos_access_right apache *\npre_cond_redirect local http://mirror.example/", "GET /x", "", "1.2.3.4", 0, 0, 0, 0)
	// Authentication challenge from a failed USER requirement.
	seed("", "pos_access_right apache *\npre_cond_accessid_USER apache alice bob", "GET /x", "", "1.2.3.4", 0, 0, 0, 0)
	// Unknown condition type: no evaluator registered on either path.
	seed("", "pos_access_right apache *\npre_cond_mystery local v", "GET /x", "", "1.2.3.4", 0, 0, 0, 0)
	// '@' value reference: stays on the dynamic fallback.
	seed("", "pos_access_right apache *\npre_cond_location local @trusted_nets", "GET /x", "", "1.2.3.4", 0, 0, 0, 0)
	// Malformed CIDR degrades to an error fault identically.
	seed("", "pos_access_right apache *\npre_cond_location local 10.0.0.0/16 not-a-cidr", "GET /x", "", "10.0.1.2", 0, 0, 0, 0)
	// Anchored regex and a wrapping overnight time window.
	seed("", "neg_access_right apache *\npre_cond_regex gnu re:^GET /secret/.*$\npos_access_right apache *", "GET /secret/x", "", "1.2.3.4", 0, 0, 0, 0)
	seed(experiments.Policy71System, "pos_access_right apache *\npre_cond_time_window local 18:00-08:00", "GET /x", "", "1.2.3.4", 0, 1, 23, 5)
	seed("", "pos_access_right apache *\npre_cond_time_window local 09:00-17:00 Mon-Fri", "GET /x", "", "1.2.3.4", 0, 0, 12, 6)
	// Threat-level comparison operators and group membership.
	seed("eacl_mode narrow\nneg_access_right * *\npre_cond_system_threat_level local >=medium", "pos_access_right apache *", "GET /x", "", "1.2.3.4", 0, 2, 0, 0)
	seed("", "neg_access_right apache *\npre_cond_accessid_GROUP local BadGuys\npos_access_right apache *", "GET /x", "", "10.9.9.9", 0, 0, 0, 0)
	// Numeric expression against a missing parameter.
	seed("", "pos_access_right apache *\npre_cond_expr local bogus_param>10", "GET /x", "", "1.2.3.4", 50, 0, 0, 0)

	f.Fuzz(func(t *testing.T, sys, loc, right, user, ip string, inputLen, threat, hour, day int) {
		mod := func(v, n int) int { return ((v % n) + n) % n }
		level := ids.Level(mod(threat, 3) + 1)
		now := time.Date(2026, time.March, 1+mod(day, 28), mod(hour, 24), 30, 0, 0, time.UTC)
		pair := newDiffPair(level, []string{"10.9.9.9"}, now)

		var system, local []gaa.PolicySource
		if sys != "" {
			src := gaa.NewMemorySource()
			if err := src.AddPolicy("*", sys); err != nil {
				t.Skip("unparseable system policy")
			}
			system = append(system, src)
		}
		if loc != "" {
			src := gaa.NewMemorySource()
			if err := src.AddPolicy("*", loc); err != nil {
				t.Skip("unparseable local policy")
			}
			local = append(local, src)
		}
		if len(system)+len(local) == 0 {
			t.Skip("no policy")
		}
		p, err := pair.compiled.GetObjectPolicyInfo("/index.html", system, local)
		if err != nil {
			t.Skip("composition failed")
		}
		before := pair.compiled.CompileStats().Runs
		pair.check(t, "fuzz", p, func() *gaa.Request {
			params := gaa.ParamList{
				{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: ip},
				{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: fmt.Sprint(mod(inputLen, 1<<16))},
			}
			if user != "" {
				params = append(params, gaa.Param{
					Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: user,
				})
			}
			return gaa.NewRequest("apache", right, params...)
		})
		if pair.compiled.CompileStats().Runs == before {
			t.Error("compiled engine did not run (gated off unexpectedly)")
		}
	})
}
