package gaa

import (
	"context"
	"strings"
	"sync"
	"testing"

	"gaaapi/internal/eacl"
)

func memSource(t *testing.T, policy string) *MemorySource {
	t.Helper()
	src := NewMemorySource()
	if err := src.AddPolicy("*", policy); err != nil {
		t.Fatal(err)
	}
	return src
}

func TestSwappableSourceDelegates(t *testing.T) {
	inner := memSource(t, "pos_access_right apache *")
	s := NewSwappableSource(inner)
	if s.Current() != PolicySource(inner) {
		t.Fatal("Current() is not the wrapped source")
	}
	if s.Generation() != 1 {
		t.Fatalf("fresh generation = %d, want 1", s.Generation())
	}
	pols, err := s.Policies("/x")
	if err != nil || len(pols) != 1 {
		t.Fatalf("Policies = %v, %v", pols, err)
	}
	rev, err := s.Revision("/x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rev, "g1|") {
		t.Fatalf("revision %q lacks the generation prefix", rev)
	}
	// Repeated calls stay stable (and exercise the revision cache).
	rev2, _ := s.Revision("/x")
	if rev2 != rev {
		t.Fatalf("revision changed without a swap: %q -> %q", rev, rev2)
	}
}

func TestSwapBumpsGenerationEvenWhenInnerRevisionsCollide(t *testing.T) {
	// Two fresh MemorySources report identical inner revisions; the
	// generation prefix must still change the composite revision, or the
	// policy cache would serve the old policy forever.
	a := memSource(t, "pos_access_right apache *")
	b := memSource(t, "neg_access_right apache *")
	revA0, _ := a.Revision("")
	revB0, _ := b.Revision("")
	if revA0 != revB0 {
		t.Skipf("inner revisions no longer collide (%q vs %q); test premise gone", revA0, revB0)
	}

	s := NewSwappableSource(a)
	before, _ := s.Revision("/x")
	prev, gen := s.Swap(b)
	if prev != PolicySource(a) || gen != 2 {
		t.Fatalf("Swap returned (%v, %d), want (a, 2)", prev, gen)
	}
	after, _ := s.Revision("/x")
	if before == after {
		t.Fatalf("revision %q unchanged across swap despite colliding inner revisions", before)
	}
}

func TestSwapInvalidatesPolicyCache(t *testing.T) {
	// End to end through the API with the PR-1 policy cache: after a
	// swap, a cached grant must not survive — the next check recomposes
	// from the new source and denies.
	api := New(WithPolicyCache(16))
	swap := NewSwappableSource(memSource(t, "pos_access_right apache *"))
	sys := []PolicySource{swap}

	req := &Request{Rights: []eacl.Right{{Sign: eacl.Pos, DefAuth: "apache", Value: "GET /index.html"}}}
	check := func() Decision {
		t.Helper()
		policy, err := api.GetObjectPolicyInfo("/index.html", sys, nil)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := api.CheckAuthorization(context.Background(), policy, req)
		if err != nil {
			t.Fatal(err)
		}
		return ans.Decision
	}
	if d := check(); d != Yes {
		t.Fatalf("pre-swap decision = %v, want Yes", d)
	}
	// Warm the cache.
	if d := check(); d != Yes {
		t.Fatalf("cached decision = %v, want Yes", d)
	}
	if st := api.CacheStats(); st.Hits == 0 {
		t.Fatalf("cache never hit before swap: %+v", st)
	}

	swap.Swap(memSource(t, "neg_access_right apache *"))
	if d := check(); d != No {
		t.Fatalf("post-swap decision = %v, want No (stale cached grant)", d)
	}
}

func TestSwapConcurrentWithReaders(t *testing.T) {
	s := NewSwappableSource(memSource(t, "pos_access_right apache *"))
	next := memSource(t, "neg_access_right apache *")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Policies("/x"); err != nil {
					t.Error(err)
					return
				}
				if rev, err := s.Revision("/x"); err != nil || rev == "" {
					t.Errorf("Revision = %q, %v", rev, err)
					return
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		s.Swap(next)
	}
	close(stop)
	wg.Wait()
	if got := s.Generation(); got != 101 {
		t.Fatalf("generation = %d after 100 swaps, want 101", got)
	}
}
