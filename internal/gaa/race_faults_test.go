// The fault stress test lives in an external test package: it wires
// internal/faults (which imports gaa) beneath the supervision layer,
// which an in-package test cannot do without an import cycle.
package gaa_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gaaapi/internal/eacl"
	"gaaapi/internal/faults"
	"gaaapi/internal/gaa"
)

// TestConcurrentFaultStress hammers one API from many goroutines while
// a seeded injector makes evaluators hang, panic, error and stall
// beneath the supervision layer. Run under -race it proves the
// supervised deadline path sound: abandoned evaluator goroutines never
// touch recycled pooled state (each gets a private Request copy), every
// request completes with a coherent tri-state decision, and the
// degraded-mode counters stay monotonic.
func TestConcurrentFaultStress(t *testing.T) {
	const (
		workers = 32
		iters   = 120
	)

	inj := faults.New(7, faults.Spec{
		Hang:       0.03,
		Panic:      0.05,
		Error:      0.08,
		Latency:    0.10,
		LatencyDur: time.Millisecond,
	})
	a := gaa.New(
		gaa.WithPolicyCache(8),
		gaa.WithEvaluatorTimeout(5*time.Millisecond),
		gaa.WithEvaluatorWrapper(inj.Evaluator),
	)
	a.RegisterFunc("sel_yes", gaa.AuthorityAny, func(context.Context, eacl.Condition, *gaa.Request) gaa.Outcome {
		return gaa.MetOutcome(gaa.ClassSelector, "")
	})

	src := gaa.NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *\npre_cond_sel_yes local\n"); err != nil {
		t.Fatal(err)
	}
	local := []gaa.PolicySource{src}

	decisions := make([]map[gaa.Decision]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		decisions[w] = map[gaa.Decision]uint64{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := gaa.NewRequest("apache", "GET /index.html")
			var ans gaa.Answer
			for i := 0; i < iters; i++ {
				object := fmt.Sprintf("/obj/%d", (w+i)%16)
				p, err := a.GetObjectPolicyInfo(object, nil, local)
				if err != nil {
					t.Errorf("GetObjectPolicyInfo: %v", err)
					return
				}
				if err := a.CheckAuthorizationInto(context.Background(), p, req, &ans); err != nil {
					t.Errorf("CheckAuthorizationInto: %v", err)
					return
				}
				switch ans.Decision {
				case gaa.Yes, gaa.No, gaa.Maybe:
					decisions[w][ans.Decision]++
				default:
					t.Errorf("incoherent decision %d for %s", int(ans.Decision), object)
					return
				}
				for _, f := range ans.Faults {
					if f.Kind == gaa.FaultNone || f.Reason == "" {
						t.Errorf("malformed fault under stress: %+v", f)
						return
					}
				}
			}
		}(w)
	}

	// Stats poller: supervision counters must never move backwards.
	stop := make(chan struct{})
	statsErr := make(chan error, 1)
	go func() {
		var last gaa.SupervisionStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := a.SupervisionStats()
			if cur.Panics < last.Panics || cur.Timeouts < last.Timeouts ||
				cur.Errors < last.Errors || cur.Invalid < last.Invalid {
				select {
				case statsErr <- fmt.Errorf("supervision stats moved backwards: %+v -> %+v", last, cur):
				default:
				}
				return
			}
			last = cur
		}
	}()

	wg.Wait()
	close(stop)
	select {
	case err := <-statsErr:
		t.Fatal(err)
	default:
	}

	var total uint64
	for _, m := range decisions {
		for _, n := range m {
			total += n
		}
	}
	if total != workers*iters {
		t.Errorf("decisions = %d, want %d (requests lost under injection)", total, workers*iters)
	}

	sup := a.SupervisionStats()
	es := inj.Stats()
	if es.Panics > 0 && sup.Panics == 0 {
		t.Errorf("injected %d panics, recovered none", es.Panics)
	}
	if es.Hangs > 0 && sup.Timeouts == 0 {
		t.Errorf("injected %d hangs, no timeout recorded", es.Hangs)
	}
	// Every injected panic must be individually recovered; timeouts may
	// exceed injected hangs (1ms latency can overrun the 5ms deadline
	// under scheduler pressure) but panics map one-to-one.
	if sup.Panics != es.Panics {
		t.Errorf("recovered panics = %d, injected = %d", sup.Panics, es.Panics)
	}
	t.Logf("total=%d injected=%+v supervised=%+v cache=%+v", total, es, sup, a.CacheStats())

	// Give abandoned hang goroutines a moment to observe their private
	// request copies; the race detector flags any access to recycled
	// pooled state.
	time.Sleep(20 * time.Millisecond)
}
