package gaa

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gaaapi/internal/eacl"
)

// genPolicy builds a random policy from a bounded vocabulary so that
// every condition has a registered evaluator with a deterministic
// outcome (sel_yes / sel_no / req_yes / req_no / maybe).
func genPolicy(rng *rand.Rand, entries int) *eacl.EACL {
	condTypes := []string{"sel_yes", "sel_no", "req_yes", "req_no", "maybe"}
	var b strings.Builder
	for i := 0; i < entries; i++ {
		if rng.Intn(2) == 0 {
			b.WriteString("pos_access_right apache *\n")
		} else {
			b.WriteString("neg_access_right apache *\n")
		}
		for c := rng.Intn(3); c > 0; c-- {
			fmt.Fprintf(&b, "pre_cond_%s local\n", condTypes[rng.Intn(len(condTypes))])
		}
	}
	e, err := eacl.ParseString(b.String())
	if err != nil {
		panic(err)
	}
	return e
}

// TestPropertyEvaluationDeterministic: the same policy and request
// always produce the same decision.
func TestPropertyEvaluationDeterministic(t *testing.T) {
	a, _ := newTestAPI(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		e := genPolicy(rng, 1+rng.Intn(6))
		p := NewPolicy("/x", nil, []*eacl.EACL{e})
		first := checkAuth(t, a, p, simpleRequest()).Decision
		for j := 0; j < 3; j++ {
			if got := checkAuth(t, a, p, simpleRequest()).Decision; got != first {
				t.Fatalf("non-deterministic decision for policy:\n%s\nfirst=%v now=%v", e, first, got)
			}
		}
	}
}

// TestPropertyPrefixStability: once a prefix of the entry list decides
// (the scan returned before reaching the suffix), appending entries
// never changes the decision — "the entries which already have been
// examined take precedence over new entries" (paper section 2).
func TestPropertyPrefixStability(t *testing.T) {
	a, _ := newTestAPI(t)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		prefix := genPolicy(rng, 1+rng.Intn(4))
		pPrefix := NewPolicy("/x", nil, []*eacl.EACL{prefix})
		ansPrefix := checkAuth(t, a, pPrefix, simpleRequest())
		if !ansPrefix.Applicable {
			continue // prefix did not decide; suffix may
		}

		extended := prefix.Clone()
		suffix := genPolicy(rng, 1+rng.Intn(4))
		extended.Entries = append(extended.Entries, suffix.Entries...)
		pExt := NewPolicy("/x", nil, []*eacl.EACL{extended})
		ansExt := checkAuth(t, a, pExt, simpleRequest())
		if ansExt.Decision != ansPrefix.Decision {
			t.Fatalf("appending entries changed a decided prefix: %v -> %v\nprefix:\n%s\nextended:\n%s",
				ansPrefix.Decision, ansExt.Decision, prefix, extended)
		}
	}
}

// TestPropertyNarrowConjunction: under narrow composition, the result
// never grants more than either level alone would (ordering
// No < Maybe < Yes on the grant scale).
func TestPropertyNarrowConjunction(t *testing.T) {
	a, _ := newTestAPI(t)
	rng := rand.New(rand.NewSource(37))
	grantRank := map[Decision]int{No: 0, Maybe: 1, Yes: 2}
	for i := 0; i < 300; i++ {
		sys := genPolicy(rng, 1+rng.Intn(4))
		sys.Mode, sys.ModeSet = eacl.ModeNarrow, true
		loc := genPolicy(rng, 1+rng.Intn(4))

		sysOnly := checkAuth(t, a, NewPolicy("/x", []*eacl.EACL{sys}, nil), simpleRequest())
		locOnly := checkAuth(t, a, NewPolicy("/x", nil, []*eacl.EACL{loc}), simpleRequest())
		both := checkAuth(t, a, NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc}), simpleRequest())

		// Conjunction bound applies per applicable level.
		if sysOnly.Applicable && grantRank[both.Decision] > grantRank[sysOnly.Decision] {
			t.Fatalf("narrow composition grants beyond system level: sys=%v both=%v\nsys:\n%s\nloc:\n%s",
				sysOnly.Decision, both.Decision, sys, loc)
		}
		if locOnly.Applicable && grantRank[both.Decision] > grantRank[locOnly.Decision] {
			t.Fatalf("narrow composition grants beyond local level: loc=%v both=%v\nsys:\n%s\nloc:\n%s",
				locOnly.Decision, both.Decision, sys, loc)
		}
	}
}

// TestPropertyExpandDisjunction: under expand composition, the result
// never grants less than the more permissive level.
func TestPropertyExpandDisjunction(t *testing.T) {
	a, _ := newTestAPI(t)
	rng := rand.New(rand.NewSource(41))
	grantRank := map[Decision]int{No: 0, Maybe: 1, Yes: 2}
	for i := 0; i < 300; i++ {
		sys := genPolicy(rng, 1+rng.Intn(4))
		sys.Mode, sys.ModeSet = eacl.ModeExpand, true
		loc := genPolicy(rng, 1+rng.Intn(4))

		sysOnly := checkAuth(t, a, NewPolicy("/x", []*eacl.EACL{sys}, nil), simpleRequest())
		locOnly := checkAuth(t, a, NewPolicy("/x", []*eacl.EACL{mustEACL(t, "eacl_mode expand\npos_access_right sshd never")}, []*eacl.EACL{loc}), simpleRequest())
		both := checkAuth(t, a, NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc}), simpleRequest())

		best := grantRank[sysOnly.Decision]
		if sysOnly.Applicable || locOnly.Applicable {
			if !sysOnly.Applicable {
				best = grantRank[locOnly.Decision]
			} else if locOnly.Applicable && grantRank[locOnly.Decision] > best {
				best = grantRank[locOnly.Decision]
			}
			if grantRank[both.Decision] < best {
				t.Fatalf("expand composition grants less than best level: sys=%v loc=%v both=%v\nsys:\n%s\nloc:\n%s",
					sysOnly.Decision, locOnly.Decision, both.Decision, sys, loc)
			}
		}
	}
}

// TestPropertyStopIgnoresLocal: under stop with a system policy, local
// policies never influence the decision.
func TestPropertyStopIgnoresLocal(t *testing.T) {
	a, _ := newTestAPI(t)
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 300; i++ {
		sys := genPolicy(rng, 1+rng.Intn(4))
		sys.Mode, sys.ModeSet = eacl.ModeStop, true
		locA := genPolicy(rng, 1+rng.Intn(4))
		locB := genPolicy(rng, 1+rng.Intn(4))

		withA := checkAuth(t, a, NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{locA}), simpleRequest())
		withB := checkAuth(t, a, NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{locB}), simpleRequest())
		if withA.Decision != withB.Decision {
			t.Fatalf("stop mode leaked local influence: %v vs %v\nsys:\n%s", withA.Decision, withB.Decision, sys)
		}
	}
}

// TestPropertyUncertainWithoutEntries: a request whose rights match no
// entry is always uncertain, whatever the policy contents.
func TestPropertyUncertainWithoutEntries(t *testing.T) {
	a, _ := newTestAPI(t)
	rng := rand.New(rand.NewSource(67))
	foreign := NewRequest("ftp", "RETR /file")
	for i := 0; i < 200; i++ {
		e := genPolicy(rng, 1+rng.Intn(6)) // all entries are "apache *"
		p := NewPolicy("/x", nil, []*eacl.EACL{e})
		ans := checkAuth(t, a, p, foreign)
		if ans.Decision != Maybe || ans.Applicable {
			t.Fatalf("foreign right decided: %v applicable=%v\npolicy:\n%s", ans.Decision, ans.Applicable, e)
		}
	}
}

// TestConcurrentCheckAuthorization exercises the API from many
// goroutines (validated further by `go test -race`).
func TestConcurrentCheckAuthorization(t *testing.T) {
	a, _ := newTestAPI(t)
	e := mustEACL(t, `
neg_access_right apache *
pre_cond_sel_no local
pos_access_right apache *
pre_cond_sel_yes local
rr_cond_record local on:success/hit
`)
	p := NewPolicy("/x", nil, []*eacl.EACL{e})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ans, err := a.CheckAuthorization(context.Background(), p, simpleRequest())
				if err != nil {
					errs <- err.Error()
					return
				}
				if ans.Decision != Yes {
					errs <- "decision " + ans.Decision.String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent evaluation failed: %s", e)
	}
}
