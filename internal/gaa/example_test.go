package gaa_test

import (
	"context"
	"fmt"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// Example shows the minimal GAA-API cycle: register a condition
// evaluator, load a policy, check an authorization.
func Example() {
	api := gaa.New()
	// A toy threat-level condition: met when the value is "low".
	api.RegisterFunc("system_threat_level", gaa.AuthorityAny,
		func(_ context.Context, c eacl.Condition, _ *gaa.Request) gaa.Outcome {
			if c.Value == "=low" {
				return gaa.MetOutcome(gaa.ClassSelector, "normal operation")
			}
			return gaa.FailedOutcome(gaa.ClassSelector, "threat raised")
		})

	source := gaa.NewMemorySource()
	_ = source.AddPolicy("*", `
pos_access_right myapp *
pre_cond_system_threat_level local =low
`)
	policy, _ := api.GetObjectPolicyInfo("/report.html", nil, []gaa.PolicySource{source})

	ans, _ := api.CheckAuthorization(context.Background(),
		policy, gaa.NewRequest("myapp", "GET /report.html"))
	fmt.Println("decision:", ans.Decision)
	// Output:
	// decision: yes
}

// ExampleValues shows adaptive constraint values: the same policy
// evaluates differently after the runtime value changes.
func ExampleValues() {
	values := gaa.NewValues()
	values.Set("limit", "1000")

	api := gaa.New(gaa.WithValues(values))
	api.RegisterFunc("expr", gaa.AuthorityAny,
		func(_ context.Context, c eacl.Condition, _ *gaa.Request) gaa.Outcome {
			// The evaluator sees the resolved value.
			fmt.Println("evaluating:", c.Value)
			return gaa.FailedOutcome(gaa.ClassSelector, "")
		})

	source := gaa.NewMemorySource()
	_ = source.AddPolicy("*", `
neg_access_right myapp *
pre_cond_expr local input_length>@limit
`)
	policy, _ := api.GetObjectPolicyInfo("/x", nil, []gaa.PolicySource{source})
	req := gaa.NewRequest("myapp", "GET /x")

	_, _ = api.CheckAuthorization(context.Background(), policy, req)
	values.Set("limit", "500") // an IDS tightening the bound
	_, _ = api.CheckAuthorization(context.Background(), policy, req)
	// Output:
	// evaluating: input_length>1000
	// evaluating: input_length>500
}

// ExampleConjoin demonstrates the tri-state combiners.
func ExampleConjoin() {
	fmt.Println(gaa.Conjoin(gaa.Yes, gaa.No))
	fmt.Println(gaa.Conjoin(gaa.Yes, gaa.Maybe))
	fmt.Println(gaa.Disjoin(gaa.No, gaa.Yes))
	// Output:
	// no
	// maybe
	// yes
}
