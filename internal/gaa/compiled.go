package gaa

import (
	"context"
	"sync"
	"sync/atomic"

	"gaaapi/internal/eacl"
)

// This file is the compiled first-match decision engine: at policy
// load/compose time the composed EACL is translated into a decision
// program — right globs interned into prefix tries, cheap selector
// conditions (threat level, time windows, CIDR membership, group
// membership, …) hoisted into pre-resolved tests evaluated once per
// request instead of once per entry — and the per-request scan runs
// over the program instead of re-interpreting the entry list. Dynamic
// conditions ('@value' references, custom evaluators, stateful
// built-ins) fall back to the supervised interpreter per occurrence,
// so faults, timeouts and adaptive values behave identically.
//
// The engine is a pure performance layer: for every request it must
// produce exactly the answer the interpreted scan would (decision,
// applicability, challenge, unevaluated conditions, deciding entries,
// faults). compile_diff_test.go enforces that with a differential
// fuzz test and a golden sweep over the repository's policies.

// CompiledCond is a condition evaluation specialized at policy-compile
// time: parsing, pattern compilation and static lookups are done once,
// and EvalCompiled performs only the per-request test. Implementations
// must be pure per request — two calls with the same request must
// return the same Outcome — because the engine memoizes the outcome
// across entries of one request. They must produce exactly the Outcome
// the evaluator they were compiled from would produce for a
// trace-disabled request (the engine never runs traced requests).
type CompiledCond interface {
	EvalCompiled(req *Request) Outcome
}

// CondCompiler is implemented by evaluators that can specialize some
// of their conditions at policy-compile time. CompileCond returns
// (nil, false) when the condition must stay on the interpreted path
// (unparseable values, per-request state, side effects).
type CondCompiler interface {
	CompileCond(cond eacl.Condition) (CompiledCond, bool)
}

// WithCompiledEngine toggles compilation of composed policies into
// first-match decision programs (on by default). Tracing, evaluator
// deadlines and evaluator wrappers force the interpreted path
// regardless; the switch exists for A/B measurement and as an
// operational escape hatch.
func WithCompiledEngine(enabled bool) Option {
	return optionFunc(func(a *API) { a.compileOff = !enabled })
}

// CompileStats reports compiled-engine activity since the API was
// built.
type CompileStats struct {
	// Programs is the number of decision programs compiled (recompiles
	// after a registry change or cache reset count again).
	Programs uint64
	// FastConds and DynamicConds count condition occurrences across all
	// compiled programs that were hoisted into pre-resolved tests vs
	// left on the supervised interpreter.
	FastConds    uint64
	DynamicConds uint64
	// Runs is the number of CheckAuthorization evaluations served by a
	// compiled program instead of the interpreted scan.
	Runs uint64
}

// compileCounters is the hot-path representation of CompileStats.
type compileCounters struct {
	programs atomic.Uint64
	fast     atomic.Uint64
	dynamic  atomic.Uint64
	runs     atomic.Uint64
}

// CompileStats returns the compiled-engine counters.
func (a *API) CompileStats() CompileStats {
	return CompileStats{
		Programs:     a.compiled.programs.Load(),
		FastConds:    a.compiled.fast.Load(),
		DynamicConds: a.compiled.dynamic.Load(),
		Runs:         a.compiled.runs.Load(),
	}
}

// maxProgEACLs bounds the EACL count a program key can carry; larger
// compositions (unseen in practice — the paper composes one system and
// one local policy) stay interpreted.
const maxProgEACLs = 8

// progKey identifies a compiled program by the identity of the EACLs
// entering the composition (interned per-pointer ids) plus the
// composition shape. Sources return stable *eacl.EACL values across
// calls (MemorySource snapshots, FileSource/DirSource parse caches),
// so the uncached GetObjectPolicyInfo path re-keys to the same program
// without re-compiling; a hot reload swaps in newly parsed EACLs and
// naturally keys a fresh program.
type progKey struct {
	mode eacl.CompositionMode
	nsys uint8
	nloc uint8
	ids  [maxProgEACLs]uint32
}

// patPair is one entry's interned (authority pattern, value pattern)
// ids, indexed by the entry's program-wide bit.
type patPair struct {
	auth  int32
	value int32
}

// compiledProgram is one composed policy translated into decision form.
type compiledProgram struct {
	mode      eacl.CompositionMode
	sysExists bool
	regGen    uint64

	system []compiledEACL
	local  []compiledEACL

	auth   globTrie
	value  globTrie
	nAuth  int
	nValue int
	pairs  []patPair
	nMemo  int
}

type compiledEACL struct {
	source  string
	entries []compiledEntry
}

type compiledEntry struct {
	entry *eacl.Entry
	pos   bool
	bit   int32
	pre   []compiledCond
}

type compiledCond struct {
	cond eacl.Condition
	// fast is nil for dynamic conditions (interpreted per occurrence);
	// memo is the request-scoped memoization slot of fast outcomes.
	fast CompiledCond
	memo int32
}

// programTable caches compiled programs under the API, keyed by
// interned EACL identity. Reads are lock-free (atomic copy-on-write
// maps); compilation serializes on mu. Both maps are capped: blowing a
// cap resets the table, which only costs recompilation.
type programTable struct {
	mu    sync.Mutex // writers only
	ids   atomic.Pointer[map[*eacl.EACL]uint32]
	progs atomic.Pointer[map[progKey]*compiledProgram]
	next  uint32
}

const (
	maxInternedEACLs = 4096
	maxPrograms      = 256
)

func (pt *programTable) keyFor(p *Policy) (progKey, bool) {
	idsp := pt.ids.Load()
	if idsp == nil {
		return progKey{}, false
	}
	m := *idsp
	k := progKey{mode: p.Mode, nsys: uint8(len(p.System)), nloc: uint8(len(p.Local))}
	i := 0
	for _, lst := range [2][]*eacl.EACL{p.System, p.Local} {
		for _, e := range lst {
			id, ok := m[e]
			if !ok {
				return progKey{}, false
			}
			k.ids[i] = id
			i++
		}
	}
	return k, true
}

// invalidate drops every compiled program (hot-reload hygiene rides on
// pointer identity instead, but API.InvalidateCache flushes here too).
func (pt *programTable) invalidate() {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.ids.Store(nil)
	pt.progs.Store(nil)
}

// compiledFor returns the decision program for p, compiling and
// caching it on first sight, or nil when the request must take the
// interpreted path: compilation disabled, tracing requested (trace
// notes are interpreter-only), an evaluator deadline or wrapper
// installed (both interpose per-call machinery a hoisted test would
// bypass), or a composition too large to key.
func (a *API) compiledFor(p *Policy, req *Request) *compiledProgram {
	if a.compileOff || req.Trace || a.evalTimeout > 0 || a.wrapEval != nil {
		return nil
	}
	n := len(p.System) + len(p.Local)
	if n == 0 || n > maxProgEACLs {
		return nil
	}
	if key, ok := a.progs.keyFor(p); ok {
		if mp := a.progs.progs.Load(); mp != nil {
			if prog, ok := (*mp)[key]; ok && prog.regGen == a.reg.generation() {
				return prog
			}
		}
	}
	return a.compileAndStore(p)
}

func (a *API) compileAndStore(p *Policy) *compiledProgram {
	pt := &a.progs
	pt.mu.Lock()
	defer pt.mu.Unlock()

	// Intern unseen EACL pointers (copy-on-write), resetting the table
	// when the id map outgrows its cap — unstable sources that re-parse
	// per call would otherwise grow it without bound.
	oldIDs := map[*eacl.EACL]uint32{}
	if idsp := pt.ids.Load(); idsp != nil {
		oldIDs = *idsp
	}
	missing := 0
	for _, lst := range [2][]*eacl.EACL{p.System, p.Local} {
		for _, e := range lst {
			if _, ok := oldIDs[e]; !ok {
				missing++
			}
		}
	}
	if missing > 0 {
		if len(oldIDs)+missing > maxInternedEACLs {
			oldIDs = map[*eacl.EACL]uint32{}
			pt.progs.Store(nil)
		}
		next := make(map[*eacl.EACL]uint32, len(oldIDs)+missing)
		for k, v := range oldIDs {
			next[k] = v
		}
		for _, lst := range [2][]*eacl.EACL{p.System, p.Local} {
			for _, e := range lst {
				if _, ok := next[e]; !ok {
					pt.next++
					next[e] = pt.next
				}
			}
		}
		pt.ids.Store(&next)
	}
	key, _ := pt.keyFor(p)

	gen := a.reg.generation()
	oldProgs := map[progKey]*compiledProgram{}
	if mp := pt.progs.Load(); mp != nil {
		oldProgs = *mp
	}
	if prog, ok := oldProgs[key]; ok && prog.regGen == gen {
		return prog // raced with another compiler
	}
	prog := a.compileProgram(p, gen)
	if len(oldProgs) >= maxPrograms {
		oldProgs = map[progKey]*compiledProgram{}
	}
	next := make(map[progKey]*compiledProgram, len(oldProgs)+1)
	for k, v := range oldProgs {
		next[k] = v
	}
	next[key] = prog
	pt.progs.Store(&next)
	return prog
}

// compileProgram translates the composed policy. Compilation cannot
// fail: conditions that resist specialization stay dynamic.
func (a *API) compileProgram(p *Policy, regGen uint64) *compiledProgram {
	prog := &compiledProgram{
		mode:      p.Mode,
		sysExists: len(p.System) > 0,
		regGen:    regGen,
	}
	b := &progBuilder{
		prog:    prog,
		authIDs: make(map[string]int32),
		valIDs:  make(map[string]int32),
		memoIDs: make(map[memoKey]int32),
	}
	prog.system = b.compileLevel(a, p.System)
	prog.local = b.compileLevel(a, p.Local)
	prog.nAuth = len(b.authIDs)
	prog.nValue = len(b.valIDs)
	prog.nMemo = len(b.memoIDs)
	a.compiled.programs.Add(1)
	return prog
}

type memoKey struct {
	typ, auth, val string
}

type progBuilder struct {
	prog    *compiledProgram
	authIDs map[string]int32
	valIDs  map[string]int32
	memoIDs map[memoKey]int32
}

func (b *progBuilder) intern(t *globTrie, ids map[string]int32, pattern string) int32 {
	pattern = collapseStars(pattern)
	if id, ok := ids[pattern]; ok {
		return id
	}
	id := int32(len(ids))
	ids[pattern] = id
	t.insert(pattern, id)
	return id
}

func (b *progBuilder) compileLevel(a *API, eacls []*eacl.EACL) []compiledEACL {
	if len(eacls) == 0 {
		return nil
	}
	out := make([]compiledEACL, 0, len(eacls))
	for _, e := range eacls {
		ce := compiledEACL{source: e.Source, entries: make([]compiledEntry, 0, len(e.Entries))}
		for i := range e.Entries {
			entry := &e.Entries[i]
			bit := int32(len(b.prog.pairs))
			b.prog.pairs = append(b.prog.pairs, patPair{
				auth:  b.intern(&b.prog.auth, b.authIDs, entry.Right.DefAuth),
				value: b.intern(&b.prog.value, b.valIDs, entry.Right.Value),
			})
			cent := compiledEntry{
				entry: entry,
				pos:   entry.Right.Sign == eacl.Pos,
				bit:   bit,
			}
			for ci := range entry.Conditions {
				cond := entry.Conditions[ci]
				if cond.Block != eacl.BlockPre {
					continue
				}
				cc := compiledCond{cond: cond, memo: -1}
				if fast := a.compileCond(cond); fast != nil {
					cc.fast = fast
					mk := memoKey{cond.Type, cond.DefAuth, cond.Value}
					id, ok := b.memoIDs[mk]
					if !ok {
						id = int32(len(b.memoIDs))
						b.memoIDs[mk] = id
					}
					cc.memo = id
					a.compiled.fast.Add(1)
				} else {
					a.compiled.dynamic.Add(1)
				}
				cent.pre = append(cent.pre, cc)
			}
			ce.entries = append(ce.entries, cent)
		}
		out = append(out, ce)
	}
	return out
}

// constCond is a compiled condition with a fixed outcome.
type constCond struct {
	out Outcome
}

func (c constCond) EvalCompiled(*Request) Outcome { return c.out }

// compileCond specializes one pre-condition, or returns nil to keep it
// on the interpreted path. The eligibility rules guarantee the hoisted
// test reproduces evaluateCondition exactly for trace-disabled
// requests:
//   - values carrying '@' resolve through the runtime value provider
//     per request — dynamic;
//   - an unregistered condition is the interpreter's constant
//     "no evaluator registered" MAYBE (a later registration bumps the
//     registry generation and recompiles);
//   - only evaluators registered through the supervision layer whose
//     inner evaluator opts in via CondCompiler compile; everything
//     else — custom evaluators, stateful built-ins — stays dynamic.
func (a *API) compileCond(cond eacl.Condition) CompiledCond {
	if containsAt(cond.Value) {
		return nil
	}
	ev, ok := a.reg.lookup(cond.Type, cond.DefAuth)
	if !ok {
		return constCond{out: UnevaluatedOutcome("no evaluator registered")}
	}
	sup, ok := ev.(supervised)
	if !ok {
		return nil
	}
	comp, ok := sup.inner.(CondCompiler)
	if !ok {
		return nil
	}
	fast, ok := comp.CompileCond(cond)
	if !ok {
		return nil
	}
	return fast
}

func containsAt(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '@' {
			return true
		}
	}
	return false
}

// compiledScratch is the per-request working set of a program run,
// pooled inside evalState: the right-match bitsets and the fast-cond
// memo table. Grown on demand, never shrunk, so steady state allocates
// nothing.
type compiledScratch struct {
	authBits  []uint64
	valBits   []uint64
	entryBits []uint64
	memoOut   []Outcome
	memoSet   []bool
}

func (cs *compiledScratch) prepare(prog *compiledProgram) {
	cs.authBits = growBits(cs.authBits, prog.nAuth)
	cs.valBits = growBits(cs.valBits, prog.nValue)
	cs.entryBits = growBits(cs.entryBits, len(prog.pairs))
	clearBits(cs.entryBits)
	if cap(cs.memoOut) < prog.nMemo {
		cs.memoOut = make([]Outcome, prog.nMemo)
		cs.memoSet = make([]bool, prog.nMemo)
	}
	cs.memoOut = cs.memoOut[:prog.nMemo]
	cs.memoSet = cs.memoSet[:prog.nMemo]
	for i := range cs.memoSet {
		cs.memoSet[i] = false
	}
}

// release drops outcome references so the pool doesn't pin request
// strings across uses.
func (cs *compiledScratch) release() {
	for i := range cs.memoOut {
		cs.memoOut[i] = Outcome{}
	}
}

// matchRights walks each requested right through both tries and marks
// the entries whose right covers it — the compiled replacement for the
// per-entry entryMatches loop.
func (cs *compiledScratch) matchRights(prog *compiledProgram, rights []eacl.Right) {
	for _, r := range rights {
		clearBits(cs.authBits)
		clearBits(cs.valBits)
		prog.auth.match(r.DefAuth, cs.authBits)
		prog.value.match(r.Value, cs.valBits)
		for bit := range prog.pairs {
			pr := &prog.pairs[bit]
			if bitGet(cs.authBits, pr.auth) && bitGet(cs.valBits, pr.value) {
				cs.entryBits[bit>>6] |= 1 << (uint(bit) & 63)
			}
		}
	}
}

// evalFast runs a hoisted test with the interpreter's panic
// supervision: a panicking dependency (threat provider, group store)
// degrades to the same FaultPanic outcome the supervised evaluator
// would produce. Faulted outcomes are not memoized so every occurrence
// surfaces its own fault, as interpretation would.
func (a *API) evalFast(cs *compiledScratch, cc *compiledCond, req *Request) Outcome {
	if cc.memo >= 0 && cs.memoSet[cc.memo] {
		return cs.memoOut[cc.memo]
	}
	out := a.callFast(cc.fast, req)
	if cc.memo >= 0 && out.Fault == FaultNone {
		cs.memoOut[cc.memo] = out
		cs.memoSet[cc.memo] = true
	}
	return out
}

func (a *API) callFast(fast CompiledCond, req *Request) (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = a.recoverPanic(r)
		}
	}()
	return fast.EvalCompiled(req)
}

// evaluatePolicyCompiled mirrors evaluatePolicy over the program.
func (a *API) evaluatePolicyCompiled(ctx context.Context, prog *compiledProgram, req *Request, st *evalState) evalResult {
	cs := &st.cs
	cs.prepare(prog)
	cs.matchRights(prog, req.Rights)

	var sysAcc levelAccum
	for i := range prog.system {
		r := a.evaluateCompiledEACL(ctx, &prog.system[i], req, cs)
		sysAcc.add(r)
		if r.applicable && r.entry != nil {
			st.deciders = append(st.deciders, decidingEntry{entry: r.entry, source: r.source})
		}
	}
	sys := sysAcc.result()

	var loc evalResult
	loc.decision = Maybe
	if !(prog.mode == eacl.ModeStop && prog.sysExists) {
		var locAcc levelAccum
		for i := range prog.local {
			r := a.evaluateCompiledEACL(ctx, &prog.local[i], req, cs)
			locAcc.add(r)
			if r.applicable && r.entry != nil {
				st.deciders = append(st.deciders, decidingEntry{entry: r.entry, source: r.source})
			}
		}
		loc = locAcc.result()
	}
	res := composeLevels(prog.mode, sys, loc, prog.sysExists)
	cs.release()
	return res
}

// evaluateCompiledEACL is evaluateEACL over compiled entries: the same
// first-match walk with identical No/Maybe/fault handling, minus the
// trace bookkeeping (the engine only runs trace-disabled requests —
// faults still trace, exactly as the interpreter does) and with right
// matching answered by the precomputed entry bitset.
func (a *API) evaluateCompiledEACL(ctx context.Context, ce *compiledEACL, req *Request, cs *compiledScratch) evalResult {
	res := evalResult{source: ce.source}
	for i := range ce.entries {
		entry := &ce.entries[i]
		if !bitGet(cs.entryBits, entry.bit) {
			continue
		}
		var (
			sawNo  bool
			maybes []eacl.Condition
		)
		for ci := range entry.pre {
			cc := &entry.pre[ci]
			var out Outcome
			if cc.fast != nil {
				out = a.evalFast(cs, cc, req)
			} else {
				out = a.evaluateCondition(ctx, cc.cond, req)
			}
			if out.Fault != FaultNone {
				res.faults = append(res.faults, Fault{Cond: cc.cond, Kind: out.Fault, Reason: out.faultReason()})
				// Faults are traced even when tracing is off: a degraded
				// evaluation must stay observable.
				res.trace = append(res.trace, TraceEvent{
					Source: ce.source, EntryLine: entry.entry.Line, Cond: cc.cond, Outcome: out,
				})
			}
			switch out.Result {
			case No:
				if out.classOrDefault() == ClassSelector || !entry.pos {
					sawNo = true
				} else {
					res.decision = No
					res.applicable = true
					res.entry = entry.entry
					res.challenge = out.Challenge
					return res
				}
			case Yes:
				// condition met; continue within the entry
			default: // Maybe, or an invalid decision degraded fail-safe
				maybes = append(maybes, cc.cond)
			}
			if sawNo {
				break
			}
		}
		if sawNo {
			continue
		}
		if len(maybes) > 0 {
			res.decision = Maybe
			res.applicable = true
			res.entry = entry.entry
			res.unevaluated = maybes
			return res
		}
		res.applicable = true
		res.entry = entry.entry
		if entry.pos {
			res.decision = Yes
		} else {
			res.decision = No
		}
		return res
	}
	res.decision = Maybe
	return res
}
