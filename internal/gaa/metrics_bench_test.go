package gaa

import (
	"context"
	"testing"

	"gaaapi/internal/metrics"
)

func benchAPI(b *testing.B, withMetrics bool) (*API, *Policy, *Request) {
	b.Helper()
	opts := []Option{WithPolicyCache(16)}
	if withMetrics {
		opts = append(opts, WithMetrics(metrics.NewRegistry()))
	}
	a := New(opts...)
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		b.Fatal(err)
	}
	policy, err := a.GetObjectPolicyInfo("/x", nil, []PolicySource{src})
	if err != nil {
		b.Fatal(err)
	}
	return a, policy, simpleRequest()
}

func benchCheck(b *testing.B, withMetrics bool) {
	a, policy, req := benchAPI(b, withMetrics)
	ans := new(Answer)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckBare(b *testing.B)         { benchCheck(b, false) }
func BenchmarkCheckInstrumented(b *testing.B) { benchCheck(b, true) }

func BenchmarkCheckInstrumentedSampled(b *testing.B) {
	a, policy, req := func() (*API, *Policy, *Request) {
		reg := metrics.NewRegistry()
		a := New(WithPolicyCache(16), WithMetrics(reg), WithMetricsSampling(DefaultMetricsSampleShift))
		src := NewMemorySource()
		if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
			b.Fatal(err)
		}
		policy, err := a.GetObjectPolicyInfo("/x", nil, []PolicySource{src})
		if err != nil {
			b.Fatal(err)
		}
		return a, policy, simpleRequest()
	}()
	ans := new(Answer)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
			b.Fatal(err)
		}
	}
}
