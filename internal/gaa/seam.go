package gaa

import (
	"context"

	"gaaapi/internal/eacl"
)

// EvalCondition evaluates one condition exactly as the decision engine
// does during a scan: registry lookup (unregistered types evaluate to
// MAYBE), '@name' runtime-value resolution through the API's
// ValueProvider, and the supervision layer around the registered
// evaluator. It is the witness-replay seam for whole-policy analysis
// (internal/eacl/reason): the prover computes per-world condition atoms
// through this call, so an atom and the engine's own evaluation of the
// same condition in the same world cannot drift apart.
func (a *API) EvalCondition(ctx context.Context, cond eacl.Condition, req *Request) Outcome {
	return a.evaluateCondition(ctx, cond, req)
}

// OutcomeClass resolves an outcome's effective class the way the scan
// does: the zero Class means ClassSelector.
func OutcomeClass(o Outcome) Class {
	return o.classOrDefault()
}
