package gaa

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"gaaapi/internal/eacl"
)

// API is the GAA-API entry point: a condition-evaluator registry plus
// the three enforcement phases. It is safe for concurrent use; in the
// paper's integration one API instance serves the whole web server.
type API struct {
	reg    *registry
	clock  func() time.Time
	cache  *policyCache
	values ValueProvider
	trace  bool

	// Supervision (see supervise.go): per-evaluator deadline, the
	// fault-injection seam, and degraded-mode counters.
	evalTimeout time.Duration
	wrapEval    func(Evaluator) Evaluator
	sup         supervisionCounters

	// metrics holds the hot-path instruments installed by WithMetrics;
	// nil keeps every phase completely uninstrumented.
	// metricsSampleShift is the WithMetricsSampling configuration (0:
	// time every phase execution).
	metrics            *apiInstruments
	metricsSampleShift uint

	// Compiled decision engine (compiled.go): the program cache, its
	// counters, and the WithCompiledEngine(false) escape hatch.
	compileOff bool
	progs      programTable
	compiled   compileCounters
}

// Option configures an API.
type Option interface {
	apply(*API)
}

type optionFunc func(*API)

func (f optionFunc) apply(a *API) { f(a) }

// WithClock overrides the time source (tests, deterministic replay).
func WithClock(now func() time.Time) Option {
	return optionFunc(func(a *API) { a.clock = now })
}

// WithPolicyCache enables the composed-policy cache (paper section 9
// future work) holding up to maxEntries objects. Cached policies are
// invalidated when any contributing source's revision changes.
func WithPolicyCache(maxEntries int) Option {
	return optionFunc(func(a *API) { a.cache = newPolicyCache(maxEntries) })
}

// WithTracing records a TraceEvent for every evaluation step in the
// answers this API produces (audit logs, cmd/eaclint --explain).
// Tracing is off by default: the Yes/No fast path then performs no
// trace bookkeeping at all. A single request can opt in instead by
// setting Request.Trace.
func WithTracing() Option {
	return optionFunc(func(a *API) { a.trace = true })
}

// WithValues installs the runtime value provider that resolves '@name'
// references in condition values (paper section 2's adaptive
// constraint specification). Without a provider, conditions carrying
// references evaluate to MAYBE.
func WithValues(p ValueProvider) Option {
	return optionFunc(func(a *API) { a.values = p })
}

// New initializes the GAA-API (the paper's gaa_initialize).
func New(opts ...Option) *API {
	a := &API{
		reg:   newRegistry(),
		clock: time.Now,
	}
	for _, o := range opts {
		o.apply(a)
	}
	return a
}

// Register installs an evaluator for (condType, defAuth). Use
// AuthorityAny as defAuth for an evaluator serving every authority.
// Registration may happen at any time; web masters "can write their own
// routines ... and register them with the GAA-API" (paper section 5).
// Every evaluator is registered behind the supervision layer: panics
// are recovered, deadlines (WithEvaluatorTimeout) enforced, and
// failures degraded to MAYBE with a recorded Fault instead of killing
// the request.
func (a *API) Register(condType, defAuth string, ev Evaluator) {
	a.reg.register(condType, defAuth, a.supervise(ev))
}

// RegisterFunc is Register for plain functions.
func (a *API) RegisterFunc(condType, defAuth string, fn EvaluatorFunc) {
	a.Register(condType, defAuth, fn)
}

// Known reports whether an evaluator is registered for the pair; it is
// the callback the eacl validator wants.
func (a *API) Known(condType, defAuth string) bool {
	return a.reg.known(condType, defAuth)
}

// Registered lists registered (type, authority) pairs for diagnostics.
func (a *API) Registered() []string {
	return a.reg.registered()
}

// Now returns the API clock time.
func (a *API) Now() time.Time {
	return a.clock()
}

// CacheStats returns policy-cache counters; zero when caching is off.
func (a *API) CacheStats() CacheStats {
	if a.cache == nil {
		return CacheStats{}
	}
	return a.cache.snapshot()
}

// InvalidateCache drops all cached policies and compiled decision
// programs.
func (a *API) InvalidateCache() {
	if a.cache != nil {
		a.cache.invalidate()
	}
	a.progs.invalidate()
}

// GetObjectPolicyInfo retrieves and composes the policies governing
// object (the paper's gaa_get_object_policy_info): system-wide EACLs
// first, then local ones, with the composition mode taken from the
// system-wide policy. Results are cached when the API was built with
// WithPolicyCache; a cache hit is lock-free, and concurrent misses for
// the same (object, revision) compose the policy once (singleflight).
func (a *API) GetObjectPolicyInfo(object string, system, local []PolicySource) (*Policy, error) {
	if a.cache == nil {
		return a.composePolicy(object, system, local)
	}
	// Hit path: compare each source's revision against the one recorded
	// at composition time, element-wise. No revision key is built and
	// each source's Revision is consulted exactly once.
	shard, e := a.cache.entryFor(object)
	if e != nil && e.nsys == len(system) && e.nloc == len(local) {
		ok, err := e.fresh(object, system, local)
		if err != nil {
			return nil, fmt.Errorf("policy revision for %q: %w", object, err)
		}
		if ok {
			shard.recordHit(e)
			return e.policy, nil
		}
	}
	shard.recordMiss()

	// Miss path (rare): collect the revisions — at most one extra
	// Revision call per source — and coalesce concurrent compositions
	// of the same (object, revisions) through the flight group.
	revs := make([]string, 0, len(system)+len(local))
	var key strings.Builder
	key.WriteString(object)
	for _, srcs := range [2][]PolicySource{system, local} {
		for _, src := range srcs {
			r, err := src.Revision(object)
			if err != nil {
				return nil, fmt.Errorf("policy revision for %q: %w", object, err)
			}
			revs = append(revs, r)
			key.WriteByte(0x1f)
			key.WriteString(r)
		}
	}
	return a.cache.flights.do(key.String(), func() (*Policy, error) {
		p, err := a.composePolicy(object, system, local)
		if err != nil {
			return nil, err
		}
		a.cache.put(object, revs, len(system), len(local), p)
		return p, nil
	})
}

// composePolicy reads every source and builds the composed policy (the
// uncached retrieval-and-translation step of section 6, step 2a).
func (a *API) composePolicy(object string, system, local []PolicySource) (*Policy, error) {
	var sysEACLs, locEACLs []*eacl.EACL
	for _, s := range system {
		es, err := s.Policies(object)
		if err != nil {
			return nil, fmt.Errorf("system policy for %q: %w", object, err)
		}
		sysEACLs = append(sysEACLs, es...)
	}
	for _, s := range local {
		es, err := s.Policies(object)
		if err != nil {
			return nil, fmt.Errorf("local policy for %q: %w", object, err)
		}
		locEACLs = append(locEACLs, es...)
	}
	return NewPolicy(object, sysEACLs, locEACLs), nil
}

// evalState is the pooled per-request scratch space of the decision
// hot path: the phase-local Request copy (replacing a heap clone per
// phase) and the deciding-entry buffer. Pooling it makes a
// trace-disabled grant on a cached policy allocation-free.
//
// Evaluators receive a pointer to the pooled Request copy and must not
// retain it beyond the Evaluate call (they may retain the ParamList,
// which is never mutated in place).
type evalState struct {
	req      Request
	deciders []decidingEntry
	// cs is the compiled-engine working set (bitsets and the fast-cond
	// memo table), kept warm across pool cycles.
	cs compiledScratch
}

var statePool = sync.Pool{New: func() any { return new(evalState) }}

func (a *API) getState(req *Request) *evalState {
	st := statePool.Get().(*evalState)
	st.req = *req
	st.req.Trace = a.trace || req.Trace
	if st.req.Time.IsZero() {
		st.req.Time = a.clock()
	}
	return st
}

func putState(st *evalState) {
	st.req = Request{}
	for i := range st.deciders {
		st.deciders[i] = decidingEntry{}
	}
	st.deciders = st.deciders[:0]
	statePool.Put(st)
}

// CheckAuthorization is phase 1 (the paper's gaa_check_authorization):
// it scans the composed policy, evaluates pre-conditions, determines
// the authorization status, and then activates the request-result
// conditions of every deciding entry with the decision visible to their
// triggers. Per paper section 6 step 2c, the final status is the
// conjunction of the pre-condition result and the request-result
// outcomes.
func (a *API) CheckAuthorization(ctx context.Context, p *Policy, req *Request) (*Answer, error) {
	ans := new(Answer)
	if err := a.CheckAuthorizationInto(ctx, p, req, ans); err != nil {
		return nil, err
	}
	return ans, nil
}

// CheckAuthorizationInto is CheckAuthorization writing into a
// caller-supplied Answer, the zero-allocation entry point for servers
// that reuse a per-connection Answer: with tracing disabled, a grant
// or deny on a cached policy allocates nothing. Any previous contents
// of ans are overwritten.
func (a *API) CheckAuthorizationInto(ctx context.Context, p *Policy, req *Request, ans *Answer) error {
	if p == nil {
		return fmt.Errorf("nil policy")
	}
	var start time.Time
	m := a.metrics
	sampled := m != nil && m.sampleLatency()
	if sampled {
		start = time.Now()
	}
	st := a.getState(req)
	r := &st.req
	var res evalResult
	if prog := a.compiledFor(p, r); prog != nil {
		a.compiled.runs.Add(1)
		res = a.evaluatePolicyCompiled(ctx, prog, r, st)
	} else {
		res = a.evaluatePolicy(ctx, p, r, st)
	}

	*ans = Answer{
		Decision:    res.decision,
		Applicable:  res.applicable,
		Unevaluated: res.unevaluated,
		Challenge:   res.challenge,
		Trace:       res.trace,
		Faults:      res.faults,
	}

	// Request-result conditions see the decision.
	r.Decision = ans.Decision
	for _, d := range st.deciders {
		dec, evaluated := a.evaluateEntryBlock(ctx, d.source, d.entry, eacl.BlockRequestResult, r, &ans.Trace, &ans.Faults)
		if evaluated {
			ans.Decision = Conjoin(ans.Decision, dec)
		}
		// Later phases enforce the deciding entries' mid/post blocks.
		appendBlock(&ans.Mid, d.entry, eacl.BlockMid)
		appendBlock(&ans.Post, d.entry, eacl.BlockPost)
	}
	putState(st)
	if m != nil {
		m.check.record(sampled, start, m.weight, ans.Decision)
	}
	return nil
}

// appendBlock appends the entry's conditions of the given block to
// *dst, allocating only when the block is non-empty.
func appendBlock(dst *[]eacl.Condition, entry *eacl.Entry, b eacl.Block) {
	for i := range entry.Conditions {
		if entry.Conditions[i].Block == b {
			*dst = append(*dst, entry.Conditions[i])
		}
	}
}

// ExecutionControl is phase 2 (the paper's gaa_execution_control): it
// re-evaluates the mid-conditions attached to the granted rights
// against a usage snapshot supplied as extra parameters (cpu_ms,
// wall_ms, mem_bytes, output_bytes). Yes means the operation may
// continue; No means a mid-condition was violated and the operation
// should be aborted; Maybe means some condition could not be checked.
func (a *API) ExecutionControl(ctx context.Context, ans *Answer, req *Request, usage ...Param) (Decision, []TraceEvent) {
	if len(ans.Mid) == 0 {
		return Yes, nil
	}
	var start time.Time
	m := a.metrics
	sampled := m != nil && m.sampleLatency()
	if sampled {
		start = time.Now()
	}
	st := a.getState(req)
	r := &st.req
	r.Decision = ans.Decision
	r.Params = r.Params.With(usage...)
	dec, trace := a.evaluateBlock(ctx, "mid", 0, ans.Mid, r)
	putState(st)
	if m != nil {
		m.mid.record(sampled, start, m.weight, dec)
	}
	return dec, trace
}

// PostExecutionActions is phase 3 (the paper's
// gaa_post_execution_actions): it activates the post-conditions of the
// granted rights once the operation finished, with the operation status
// (whether it succeeded or failed) visible to their triggers.
func (a *API) PostExecutionActions(ctx context.Context, ans *Answer, req *Request, opStatus Decision) (Decision, []TraceEvent) {
	if len(ans.Post) == 0 {
		return Yes, nil
	}
	var start time.Time
	m := a.metrics
	sampled := m != nil && m.sampleLatency()
	if sampled {
		start = time.Now()
	}
	st := a.getState(req)
	r := &st.req
	r.Decision = ans.Decision
	r.OpStatus = opStatus
	r.Params = r.Params.With(Param{
		Type:      ParamOpStatusName,
		Authority: AuthorityAny,
		Value:     opStatus.String(),
	})
	dec, trace := a.evaluateBlock(ctx, "post", 0, ans.Post, r)
	putState(st)
	if m != nil {
		m.post.record(sampled, start, m.weight, dec)
	}
	return dec, trace
}
