package gaa

import (
	"context"
	"fmt"
	"time"

	"gaaapi/internal/eacl"
)

// API is the GAA-API entry point: a condition-evaluator registry plus
// the three enforcement phases. It is safe for concurrent use; in the
// paper's integration one API instance serves the whole web server.
type API struct {
	reg    *registry
	clock  func() time.Time
	cache  *policyCache
	values ValueProvider
}

// Option configures an API.
type Option interface {
	apply(*API)
}

type optionFunc func(*API)

func (f optionFunc) apply(a *API) { f(a) }

// WithClock overrides the time source (tests, deterministic replay).
func WithClock(now func() time.Time) Option {
	return optionFunc(func(a *API) { a.clock = now })
}

// WithPolicyCache enables the composed-policy cache (paper section 9
// future work) holding up to maxEntries objects. Cached policies are
// invalidated when any contributing source's revision changes.
func WithPolicyCache(maxEntries int) Option {
	return optionFunc(func(a *API) { a.cache = newPolicyCache(maxEntries) })
}

// WithValues installs the runtime value provider that resolves '@name'
// references in condition values (paper section 2's adaptive
// constraint specification). Without a provider, conditions carrying
// references evaluate to MAYBE.
func WithValues(p ValueProvider) Option {
	return optionFunc(func(a *API) { a.values = p })
}

// New initializes the GAA-API (the paper's gaa_initialize).
func New(opts ...Option) *API {
	a := &API{
		reg:   newRegistry(),
		clock: time.Now,
	}
	for _, o := range opts {
		o.apply(a)
	}
	return a
}

// Register installs an evaluator for (condType, defAuth). Use
// AuthorityAny as defAuth for an evaluator serving every authority.
// Registration may happen at any time; web masters "can write their own
// routines ... and register them with the GAA-API" (paper section 5).
func (a *API) Register(condType, defAuth string, ev Evaluator) {
	a.reg.register(condType, defAuth, ev)
}

// RegisterFunc is Register for plain functions.
func (a *API) RegisterFunc(condType, defAuth string, fn EvaluatorFunc) {
	a.reg.register(condType, defAuth, fn)
}

// Known reports whether an evaluator is registered for the pair; it is
// the callback the eacl validator wants.
func (a *API) Known(condType, defAuth string) bool {
	return a.reg.known(condType, defAuth)
}

// Registered lists registered (type, authority) pairs for diagnostics.
func (a *API) Registered() []string {
	return a.reg.registered()
}

// Now returns the API clock time.
func (a *API) Now() time.Time {
	return a.clock()
}

// CacheStats returns policy-cache counters; zero when caching is off.
func (a *API) CacheStats() CacheStats {
	if a.cache == nil {
		return CacheStats{}
	}
	return a.cache.snapshot()
}

// InvalidateCache drops all cached policies.
func (a *API) InvalidateCache() {
	if a.cache != nil {
		a.cache.invalidate()
	}
}

// GetObjectPolicyInfo retrieves and composes the policies governing
// object (the paper's gaa_get_object_policy_info): system-wide EACLs
// first, then local ones, with the composition mode taken from the
// system-wide policy. Results are cached when the API was built with
// WithPolicyCache.
func (a *API) GetObjectPolicyInfo(object string, system, local []PolicySource) (*Policy, error) {
	var revision string
	if a.cache != nil {
		var err error
		revision, err = revisionKey(object, system, local)
		if err != nil {
			return nil, fmt.Errorf("policy revision for %q: %w", object, err)
		}
		if p, ok := a.cache.get(object, revision); ok {
			return p, nil
		}
	}
	var sysEACLs, locEACLs []*eacl.EACL
	for _, s := range system {
		es, err := s.Policies(object)
		if err != nil {
			return nil, fmt.Errorf("system policy for %q: %w", object, err)
		}
		sysEACLs = append(sysEACLs, es...)
	}
	for _, s := range local {
		es, err := s.Policies(object)
		if err != nil {
			return nil, fmt.Errorf("local policy for %q: %w", object, err)
		}
		locEACLs = append(locEACLs, es...)
	}
	p := NewPolicy(object, sysEACLs, locEACLs)
	if a.cache != nil {
		a.cache.put(object, revision, p)
	}
	return p, nil
}

// CheckAuthorization is phase 1 (the paper's gaa_check_authorization):
// it scans the composed policy, evaluates pre-conditions, determines
// the authorization status, and then activates the request-result
// conditions of every deciding entry with the decision visible to their
// triggers. Per paper section 6 step 2c, the final status is the
// conjunction of the pre-condition result and the request-result
// outcomes.
func (a *API) CheckAuthorization(ctx context.Context, p *Policy, req *Request) (*Answer, error) {
	if p == nil {
		return nil, fmt.Errorf("nil policy")
	}
	r := req.clone()
	if r.Time.IsZero() {
		r.Time = a.clock()
	}
	res, deciders := a.evaluatePolicy(ctx, p, r)

	ans := &Answer{
		Decision:    res.decision,
		Applicable:  res.applicable,
		Unevaluated: res.unevaluated,
		Challenge:   res.challenge,
		Trace:       res.trace,
	}

	// Request-result conditions see the decision.
	r.Decision = ans.Decision
	for _, d := range deciders {
		rr := d.entry.Block(eacl.BlockRequestResult)
		dec, trace := a.evaluateBlock(ctx, d.source, d.entry.Line, rr, r)
		ans.Trace = append(ans.Trace, trace...)
		if len(rr) > 0 {
			ans.Decision = Conjoin(ans.Decision, dec)
		}
		// Later phases enforce the deciding entries' mid/post blocks.
		ans.Mid = append(ans.Mid, d.entry.Block(eacl.BlockMid)...)
		ans.Post = append(ans.Post, d.entry.Block(eacl.BlockPost)...)
	}
	return ans, nil
}

// ExecutionControl is phase 2 (the paper's gaa_execution_control): it
// re-evaluates the mid-conditions attached to the granted rights
// against a usage snapshot supplied as extra parameters (cpu_ms,
// wall_ms, mem_bytes, output_bytes). Yes means the operation may
// continue; No means a mid-condition was violated and the operation
// should be aborted; Maybe means some condition could not be checked.
func (a *API) ExecutionControl(ctx context.Context, ans *Answer, req *Request, usage ...Param) (Decision, []TraceEvent) {
	if len(ans.Mid) == 0 {
		return Yes, nil
	}
	r := req.clone()
	if r.Time.IsZero() {
		r.Time = a.clock()
	}
	r.Decision = ans.Decision
	r.Params = r.Params.With(usage...)
	return a.evaluateBlock(ctx, "mid", 0, ans.Mid, r)
}

// PostExecutionActions is phase 3 (the paper's
// gaa_post_execution_actions): it activates the post-conditions of the
// granted rights once the operation finished, with the operation status
// (whether it succeeded or failed) visible to their triggers.
func (a *API) PostExecutionActions(ctx context.Context, ans *Answer, req *Request, opStatus Decision) (Decision, []TraceEvent) {
	if len(ans.Post) == 0 {
		return Yes, nil
	}
	r := req.clone()
	if r.Time.IsZero() {
		r.Time = a.clock()
	}
	r.Decision = ans.Decision
	r.OpStatus = opStatus
	r.Params = r.Params.With(Param{
		Type:      ParamOpStatusName,
		Authority: AuthorityAny,
		Value:     opStatus.String(),
	})
	return a.evaluateBlock(ctx, "post", 0, ans.Post, r)
}
