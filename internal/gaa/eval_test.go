package gaa

import (
	"testing"

	"gaaapi/internal/eacl"
)

func localPolicy(e ...*eacl.EACL) *Policy {
	return NewPolicy("/index.html", nil, e)
}

func TestUnconditionalGrant(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, "pos_access_right apache *"))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Yes || !ans.Applicable {
		t.Errorf("decision = %v applicable=%v, want yes/true", ans.Decision, ans.Applicable)
	}
}

func TestUnconditionalDeny(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, "neg_access_right apache *"))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No || !ans.Applicable {
		t.Errorf("decision = %v applicable=%v, want no/true", ans.Decision, ans.Applicable)
	}
}

func TestNoApplicableEntryIsUncertain(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, "pos_access_right sshd login"))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe || ans.Applicable {
		t.Errorf("decision = %v applicable=%v, want maybe/false (uncertain)", ans.Decision, ans.Applicable)
	}
}

func TestEmptyPolicyIsUncertain(t *testing.T) {
	a, _ := newTestAPI(t)
	ans := checkAuth(t, a, localPolicy(), simpleRequest())
	if ans.Decision != Maybe || ans.Applicable {
		t.Errorf("decision = %v applicable=%v, want maybe/false", ans.Decision, ans.Applicable)
	}
}

// Paper section 7.2: a failing selector on a neg entry makes the scan
// proceed to the next entry that grants the request.
func TestSelectorFallThrough(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_sel_no local
pos_access_right apache *
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Yes {
		t.Errorf("decision = %v, want yes (fall through past inapplicable deny)", ans.Decision)
	}
}

func TestSelectorMatchDenies(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_sel_yes local
pos_access_right apache *
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No {
		t.Errorf("decision = %v, want no (neg entry fired)", ans.Decision)
	}
}

// Paper section 7.1: a failed identity requirement on a pos entry is a
// final deny carrying an authentication challenge, not a fall-through.
func TestRequirementFailureDeniesWithChallenge(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_sel_yes local
pre_cond_req_no local
pos_access_right apache *
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No {
		t.Fatalf("decision = %v, want no", ans.Decision)
	}
	if ans.Challenge == "" {
		t.Error("want authentication challenge on requirement failure")
	}
}

func TestPosSelectorFailureFallsThrough(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_sel_no local
pre_cond_req_no local
neg_access_right apache *
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No {
		t.Fatalf("decision = %v, want no (second entry)", ans.Decision)
	}
	// The failing selector must short-circuit the entry: the req_no
	// requirement after it must not have produced a challenge.
	if ans.Challenge != "" {
		t.Errorf("challenge = %q, want none (requirement after failed selector must not run)", ans.Challenge)
	}
}

func TestMaybeCarriesUnevaluatedConditions(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_sel_yes local
pre_cond_maybe local deferred-value
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe || !ans.Applicable {
		t.Fatalf("decision = %v applicable=%v, want maybe/true", ans.Decision, ans.Applicable)
	}
	if len(ans.Unevaluated) != 1 || ans.Unevaluated[0].Type != "maybe" {
		t.Fatalf("unevaluated = %v, want the maybe condition", ans.Unevaluated)
	}
	if ans.Unevaluated[0].Value != "deferred-value" {
		t.Errorf("unevaluated value = %q", ans.Unevaluated[0].Value)
	}
}

// Paper section 6: unregistered condition evaluators yield MAYBE.
func TestUnregisteredConditionIsMaybe(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_never_registered local x
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Errorf("decision = %v, want maybe", ans.Decision)
	}
	if _, ok := ans.UnevaluatedOnly("never_registered"); !ok {
		t.Errorf("UnevaluatedOnly: %v", ans.Unevaluated)
	}
}

func TestEvaluatorErrorDegradesToMaybe(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_erroring local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Errorf("decision = %v, want maybe (erroring evaluator cannot assert yes)", ans.Decision)
	}
}

func TestEntryOrderingFirstDecides(t *testing.T) {
	a, _ := newTestAPI(t)
	// "The entries which already have been examined take precedence
	// over new entries" (paper section 2).
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
neg_access_right apache *
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Yes {
		t.Errorf("decision = %v, want yes (first entry wins)", ans.Decision)
	}
}

func TestRightMatchingSelectsEntries(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache GET /secret/*
pos_access_right apache GET /*
`))
	secret := NewRequest("apache", "GET /secret/plans.html")
	if ans := checkAuth(t, a, p, secret); ans.Decision != No {
		t.Errorf("secret: decision = %v, want no", ans.Decision)
	}
	public := NewRequest("apache", "GET /public/index.html")
	if ans := checkAuth(t, a, p, public); ans.Decision != Yes {
		t.Errorf("public: decision = %v, want yes", ans.Decision)
	}
}

func TestMultipleRequestedRights(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, "neg_access_right apache POST *"))
	req := &Request{Rights: []eacl.Right{
		{Sign: eacl.Pos, DefAuth: "apache", Value: "GET /x"},
		{Sign: eacl.Pos, DefAuth: "apache", Value: "POST /x"},
	}}
	if ans := checkAuth(t, a, p, req); ans.Decision != No {
		t.Errorf("decision = %v, want no (any requested right can match)", ans.Decision)
	}
}

func TestParamSelector(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_param_is local client_ip=10.0.0.66
pos_access_right apache *
`))
	bad := simpleRequest(Param{Type: ParamClientIP, Authority: "local", Value: "10.0.0.66"})
	if ans := checkAuth(t, a, p, bad); ans.Decision != No {
		t.Errorf("blacklisted client: decision = %v, want no", ans.Decision)
	}
	good := simpleRequest(Param{Type: ParamClientIP, Authority: "local", Value: "10.0.0.1"})
	if ans := checkAuth(t, a, p, good); ans.Decision != Yes {
		t.Errorf("clean client: decision = %v, want yes", ans.Decision)
	}
}

func TestTraceRecordsEvaluation(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_sel_no local
pos_access_right apache *
pre_cond_sel_yes local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if len(ans.Trace) == 0 {
		t.Fatal("empty trace")
	}
	var sawInapplicable, sawGrant bool
	for _, ev := range ans.Trace {
		if ev.Note == "entry inapplicable" {
			sawInapplicable = true
		}
		if ev.Note == "entry fired: grant" {
			sawGrant = true
		}
	}
	if !sawInapplicable || !sawGrant {
		t.Errorf("trace missing events: %v", ans.Trace)
	}
	// TraceEvent.String smoke test.
	if s := ans.Trace[0].String(); s == "" {
		t.Error("TraceEvent.String returned empty")
	}
}
