package gaa

import (
	"context"
	"sort"
	"sync"

	"gaaapi/internal/eacl"
)

// Evaluator evaluates one condition kind. Implementations are
// registered with the API under a (condition type, defining authority)
// pair; the GAA-API "is structured to support the addition of modules
// for evaluation of new conditions" (paper section 5).
type Evaluator interface {
	Evaluate(ctx context.Context, cond eacl.Condition, req *Request) Outcome
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context, cond eacl.Condition, req *Request) Outcome

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(ctx context.Context, cond eacl.Condition, req *Request) Outcome {
	return f(ctx, cond, req)
}

type regKey struct {
	condType string
	defAuth  string
}

// registry stores condition evaluators with two-step lookup: exact
// (type, authority), then (type, "*").
type registry struct {
	mu    sync.RWMutex
	evals map[regKey]Evaluator
}

func newRegistry() *registry {
	return &registry{evals: make(map[regKey]Evaluator)}
}

func (r *registry) register(condType, defAuth string, ev Evaluator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evals[regKey{condType, defAuth}] = ev
}

func (r *registry) lookup(condType, defAuth string) (Evaluator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ev, ok := r.evals[regKey{condType, defAuth}]; ok {
		return ev, true
	}
	ev, ok := r.evals[regKey{condType, AuthorityAny}]
	return ev, ok
}

func (r *registry) known(condType, defAuth string) bool {
	_, ok := r.lookup(condType, defAuth)
	return ok
}

// registered returns "type authority" strings, sorted, for diagnostics.
func (r *registry) registered() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.evals))
	for k := range r.evals {
		out = append(out, k.condType+" "+k.defAuth)
	}
	sort.Strings(out)
	return out
}
