package gaa

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"gaaapi/internal/eacl"
)

// Evaluator evaluates one condition kind. Implementations are
// registered with the API under a (condition type, defining authority)
// pair; the GAA-API "is structured to support the addition of modules
// for evaluation of new conditions" (paper section 5).
type Evaluator interface {
	Evaluate(ctx context.Context, cond eacl.Condition, req *Request) Outcome
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context, cond eacl.Condition, req *Request) Outcome

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(ctx context.Context, cond eacl.Condition, req *Request) Outcome {
	return f(ctx, cond, req)
}

type regKey struct {
	condType string
	defAuth  string
}

// registry stores condition evaluators with two-step lookup: exact
// (type, authority), then (type, "*"). Lookups run once per condition
// per request, so the map is published through an atomic pointer and
// read without locking; registration (rare, usually at startup)
// serializes on a mutex and publishes a copied map.
type registry struct {
	mu    sync.Mutex // writers only
	evals atomic.Pointer[map[regKey]Evaluator]
	// gen counts registrations. Compiled decision programs record the
	// generation they were built against and recompile on mismatch, so a
	// late registration invalidates every program that resolved (or
	// failed to resolve) an evaluator from the older map.
	gen atomic.Uint64
}

func newRegistry() *registry {
	r := &registry{}
	m := make(map[regKey]Evaluator)
	r.evals.Store(&m)
	return r
}

func (r *registry) register(condType, defAuth string, ev Evaluator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.evals.Load()
	next := make(map[regKey]Evaluator, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[regKey{condType, defAuth}] = ev
	r.evals.Store(&next)
	// Bump after publishing the map: a program stamped with the new
	// generation is guaranteed to have compiled against the new map.
	r.gen.Add(1)
}

func (r *registry) generation() uint64 {
	return r.gen.Load()
}

func (r *registry) lookup(condType, defAuth string) (Evaluator, bool) {
	m := *r.evals.Load()
	if ev, ok := m[regKey{condType, defAuth}]; ok {
		return ev, true
	}
	ev, ok := m[regKey{condType, AuthorityAny}]
	return ev, ok
}

func (r *registry) known(condType, defAuth string) bool {
	_, ok := r.lookup(condType, defAuth)
	return ok
}

// registered returns "type authority" strings, sorted, for diagnostics.
func (r *registry) registered() []string {
	m := *r.evals.Load()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k.condType+" "+k.defAuth)
	}
	sort.Strings(out)
	return out
}
