package gaa

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gaaapi/internal/eacl"
)

// PolicySource supplies the EACLs governing an object. Sources are
// consulted at access-control time (paper section 6, step 2a); the API
// composes system-wide sources ahead of local ones.
type PolicySource interface {
	// Policies returns the EACLs governing object, in priority order.
	// A source with nothing to say returns an empty slice.
	Policies(object string) ([]*eacl.EACL, error)
	// Revision identifies the current content version for the object;
	// the policy cache invalidates when it changes. Implementations
	// may return a constant if they never change.
	Revision(object string) (string, error)
}

// MemorySource is an in-memory policy source mapping object glob
// patterns to EACLs. It is safe for concurrent use: readers load an
// immutable snapshot through an atomic pointer (no lock, no
// formatting), writers serialize on a mutex and publish a new
// snapshot with a pre-formatted revision string.
type MemorySource struct {
	mu    sync.Mutex // writers only
	state atomic.Pointer[memState]
}

type memState struct {
	entries []memEntry
	rev     int
	revStr  string
}

type memEntry struct {
	pattern string
	eacl    *eacl.EACL
}

// NewMemorySource returns an empty in-memory source.
func NewMemorySource() *MemorySource {
	m := &MemorySource{}
	m.state.Store(&memState{revStr: "mem-0"})
	return m
}

// Add registers an EACL for every object matching pattern ('*' glob).
func (m *MemorySource) Add(pattern string, e *eacl.EACL) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.state.Load()
	next := &memState{
		entries: make([]memEntry, 0, len(old.entries)+1),
		rev:     old.rev + 1,
	}
	next.entries = append(next.entries, old.entries...)
	next.entries = append(next.entries, memEntry{pattern: pattern, eacl: e})
	next.revStr = "mem-" + strconv.Itoa(next.rev)
	m.state.Store(next)
}

// AddPolicy parses src and registers it under pattern.
func (m *MemorySource) AddPolicy(pattern, src string) error {
	e, err := eacl.ParseString(src)
	if err != nil {
		return err
	}
	m.Add(pattern, e)
	return nil
}

// Policies implements PolicySource.
func (m *MemorySource) Policies(object string) ([]*eacl.EACL, error) {
	st := m.state.Load()
	var out []*eacl.EACL
	for _, en := range st.entries {
		if eacl.Glob(en.pattern, object) {
			out = append(out, en.eacl)
		}
	}
	return out, nil
}

// Revision implements PolicySource. The revision string is formatted
// once per mutation, not per request, so revision checks on the cache
// hit path are allocation-free.
func (m *MemorySource) Revision(string) (string, error) {
	return m.state.Load().revStr, nil
}

// FileSource reads one policy file that governs every object (the
// paper's system-wide policy file). Parses are cached and invalidated
// by file modification time and size.
type FileSource struct {
	path string

	mu     sync.Mutex
	cached *eacl.EACL
	stamp  string
}

// NewFileSource returns a source backed by the policy file at path.
// A missing file is not an error: the source simply supplies nothing,
// so deployments without a system-wide policy work unchanged.
func NewFileSource(path string) *FileSource {
	return &FileSource{path: path}
}

// Policies implements PolicySource.
func (f *FileSource) Policies(string) ([]*eacl.EACL, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	stamp, err := fileStamp(f.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			f.cached, f.stamp = nil, ""
			return nil, nil
		}
		return nil, err
	}
	if f.cached == nil || stamp != f.stamp {
		e, err := eacl.ParseFile(f.path)
		if err != nil {
			return nil, err
		}
		f.cached, f.stamp = e, stamp
	}
	return []*eacl.EACL{f.cached}, nil
}

// Revision implements PolicySource.
func (f *FileSource) Revision(string) (string, error) {
	stamp, err := fileStamp(f.path)
	if errors.Is(err, fs.ErrNotExist) {
		return "absent", nil
	}
	return stamp, err
}

// DirSource maps objects (slash-separated paths) to per-directory
// policy files, the way Apache looks for .htaccess "in every directory
// of the path to the document". For object "/a/b/page.html" with Name
// ".eacl" it consults <root>/.eacl, <root>/a/.eacl and <root>/a/b/.eacl
// in that order. Parses are cached per file by modification stamp.
type DirSource struct {
	root string
	name string

	mu    sync.Mutex
	cache map[string]dirCacheEntry
}

type dirCacheEntry struct {
	eacl  *eacl.EACL // nil means "file absent"
	stamp string
}

// NewDirSource returns a per-directory policy source rooted at root,
// looking for files called name.
func NewDirSource(root, name string) *DirSource {
	return &DirSource{root: root, name: name, cache: make(map[string]dirCacheEntry)}
}

// Policies implements PolicySource.
func (d *DirSource) Policies(object string) ([]*eacl.EACL, error) {
	var out []*eacl.EACL
	for _, dir := range objectDirs(object) {
		file := path.Join(d.root, dir, d.name)
		e, err := d.load(file)
		if err != nil {
			return nil, err
		}
		if e != nil {
			out = append(out, e)
		}
	}
	return out, nil
}

// Revision implements PolicySource.
func (d *DirSource) Revision(object string) (string, error) {
	var b strings.Builder
	for _, dir := range objectDirs(object) {
		stamp, err := fileStamp(path.Join(d.root, dir, d.name))
		if errors.Is(err, fs.ErrNotExist) {
			stamp = "absent"
		} else if err != nil {
			return "", err
		}
		b.WriteString(stamp)
		b.WriteByte(';')
	}
	return b.String(), nil
}

func (d *DirSource) load(file string) (*eacl.EACL, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	stamp, err := fileStamp(file)
	if errors.Is(err, fs.ErrNotExist) {
		d.cache[file] = dirCacheEntry{}
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if c, ok := d.cache[file]; ok && c.stamp == stamp && c.eacl != nil {
		return c.eacl, nil
	}
	e, err := eacl.ParseFile(file)
	if err != nil {
		return nil, err
	}
	d.cache[file] = dirCacheEntry{eacl: e, stamp: stamp}
	return e, nil
}

// objectDirs returns the directory chain for an object path: "" (root),
// then each ancestor directory of the object. The object's final
// component is treated as a leaf (file), matching Apache's behaviour.
func objectDirs(object string) []string {
	object = strings.Trim(path.Clean("/"+object), "/")
	dirs := []string{""}
	if object == "" || object == "." {
		return dirs
	}
	parts := strings.Split(object, "/")
	for i := 1; i < len(parts); i++ {
		dirs = append(dirs, strings.Join(parts[:i], "/"))
	}
	return dirs
}

// fileStamp builds a cheap content-version string from file metadata.
func fileStamp(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d-%d", fi.ModTime().UnixNano(), fi.Size()), nil
}
