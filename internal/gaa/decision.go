// Package gaa implements the Generic Authorization and Access-control
// API (GAA-API) of Ryutov et al. (ICDCS 2003): a generic policy
// evaluation engine over EACL policies (package eacl) with tri-state
// results, a pluggable condition-evaluator registry, system/local policy
// composition, and the paper's three enforcement phases:
//
//  1. CheckAuthorization — pre-conditions and request-result conditions,
//     before the requested operation starts.
//  2. ExecutionControl — mid-conditions, during the operation.
//  3. PostExecutionActions — post-conditions, after the operation.
//
// # Evaluation semantics
//
// The paper's worked examples (sections 6 and 7) imply the following
// algorithm, which this package implements precisely (see also
// DESIGN.md, "Interpretation notes"):
//
// Entries are scanned first-to-last. An entry is considered when its
// right matches a requested right. Each pre-condition evaluates to
// YES / NO / MAYBE and carries a class:
//
//   - a selector NO makes the entry inapplicable and the scan continues
//     ("If no match is found, the GAA-API proceeds to the next EACL
//     entry", paper section 7.2);
//   - a requirement NO on a positive entry yields a final NO, optionally
//     with an authentication challenge (how section 7.1 forces user
//     authentication when the threat level rises);
//   - any MAYBE (and no NO) yields a final MAYBE carrying the
//     unevaluated conditions (how section 6's adaptive redirection
//     returns the redirect URL);
//   - all YES fires the entry: grant for pos_access_right, deny for
//     neg_access_right.
//
// If the scan ends with no applicable entry the result is MAYBE
// ("uncertain"); the web-server integration translates that to
// HTTP_DECLINED so native access control decides.
package gaa

import "fmt"

// Decision is the tri-state result of GAA-API evaluation (the paper's
// YES / NO / MAYBE authorization, mid-condition and post-condition
// statuses).
type Decision int

const (
	// Yes: all evaluated conditions are met.
	Yes Decision = iota + 1
	// No: at least one condition failed.
	No
	// Maybe: no condition failed but at least one was left
	// unevaluated, or no policy entry applied ("uncertain").
	Maybe
)

// String returns "yes", "no" or "maybe".
func (d Decision) String() string {
	switch d {
	case Yes:
		return "yes"
	case No:
		return "no"
	case Maybe:
		return "maybe"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Conjoin combines two decisions as a conjunction: NO dominates, then
// MAYBE, then YES. The zero Decision is treated as neutral (identity),
// so Conjoin folds cleanly over a slice.
func Conjoin(a, b Decision) Decision {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	switch {
	case a == No || b == No:
		return No
	case a == Maybe || b == Maybe:
		return Maybe
	default:
		return Yes
	}
}

// Disjoin combines two decisions as a disjunction: YES dominates, then
// MAYBE, then NO. The zero Decision is neutral.
func Disjoin(a, b Decision) Decision {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	switch {
	case a == Yes || b == Yes:
		return Yes
	case a == Maybe || b == Maybe:
		return Maybe
	default:
		return No
	}
}
