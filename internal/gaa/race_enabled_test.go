//go:build race

package gaa

// raceEnabled reports whether the race detector is compiled in. The
// exact-allocation tests skip under it: sync.Pool deliberately drops
// 1 in 4 Puts on the floor in race builds, so every pooled hot path
// allocates by design there. CI pins the alloc counts in a non-race
// step of the compile-differential job.
const raceEnabled = true
