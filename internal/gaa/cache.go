package gaa

import (
	"strings"
	"sync"
)

// CacheStats reports policy-cache effectiveness (experiment E4).
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// policyCache caches composed policies per object, keyed by the
// concatenated revisions of the contributing sources. This implements
// the paper's section 9 future work: "caching of the retrieved and
// translated policies for later reuse by subsequent requests".
type policyCache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	stats   CacheStats
	max     int
}

type cacheEntry struct {
	policy   *Policy
	revision string
}

func newPolicyCache(maxEntries int) *policyCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &policyCache{entries: make(map[string]cacheEntry), max: maxEntries}
}

func (c *policyCache) get(object, revision string) (*Policy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[object]
	if !ok || e.revision != revision {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	return e.policy, true
}

func (c *policyCache) put(object, revision string, p *Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		// Simple bounded cache: drop everything when full. Policy sets
		// are small; the paper's workload touches a handful of objects.
		c.entries = make(map[string]cacheEntry, c.max)
	}
	c.entries[object] = cacheEntry{policy: p, revision: revision}
}

func (c *policyCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]cacheEntry)
}

func (c *policyCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// revisionKey concatenates source revisions for an object.
func revisionKey(object string, system, local []PolicySource) (string, error) {
	var b strings.Builder
	for _, s := range system {
		r, err := s.Revision(object)
		if err != nil {
			return "", err
		}
		b.WriteString("s:")
		b.WriteString(r)
		b.WriteByte('|')
	}
	for _, s := range local {
		r, err := s.Revision(object)
		if err != nil {
			return "", err
		}
		b.WriteString("l:")
		b.WriteString(r)
		b.WriteByte('|')
	}
	return b.String(), nil
}
