package gaa

import (
	"sync"
	"sync/atomic"
)

// CacheStats reports policy-cache effectiveness (experiment E4).
// Counters are monotonic for the lifetime of the API; invalidation
// does not reset them.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// policyCache caches composed policies per object, keyed by the
// concatenated revisions of the contributing sources. This implements
// the paper's section 9 future work: "caching of the retrieved and
// translated policies for later reuse by subsequent requests".
//
// The cache is a read-mostly design built for the authorization hot
// path: entries live in per-shard maps published through an
// atomic.Pointer, so a cache hit takes no lock at all — readers load
// the current map snapshot, look up the entry, and stamp its recency
// with one atomic store. Writers (misses, evictions, invalidation)
// serialize on a per-shard mutex and publish a copied map
// (copy-on-write); with miss coalescing (see flightGroup) write churn
// is one copy per (object, revision) transition, not per request.
//
// Eviction is least-recently-used within a shard: every hit stamps the
// entry with a per-shard logical clock, and a full shard evicts the
// entry with the oldest stamp.
type policyCache struct {
	perShard  int
	shardMask uint32
	evictions atomic.Uint64
	shards    []cacheShard
	flights   flightGroup
}

type cacheShard struct {
	m  atomic.Pointer[map[string]*cacheEntry]
	mu sync.Mutex // writers only: put, evict, invalidate

	// Per-shard counters keep hit accounting off a single shared cache
	// line under concurrent load; CacheStats sums them.
	hits   atomic.Uint64
	misses atomic.Uint64
	clock  atomic.Uint64
	_      [64]byte // pad shards apart
}

type cacheEntry struct {
	policy *Policy
	// revs holds the per-source revision strings at composition time,
	// system sources first. Validation compares them one by one — no
	// joined revision key is ever built on the hit path.
	revs []string
	// nsys/nloc record how many system and local sources contributed,
	// so revisions cannot alias across source levels.
	nsys, nloc int
	// used is the shard-clock stamp of the last hit (LRU recency).
	used atomic.Uint64
}

func newPolicyCache(maxEntries int) *policyCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	// Small caches (tests, tiny deployments) get one shard with exact
	// LRU; production sizes spread over 16 shards to keep writer
	// serialization off the hot path.
	shards := 1
	if maxEntries >= 64 {
		shards = 16
	}
	c := &policyCache{
		perShard:  maxEntries / shards,
		shardMask: uint32(shards - 1),
		shards:    make([]cacheShard, shards),
	}
	for i := range c.shards {
		m := make(map[string]*cacheEntry)
		c.shards[i].m.Store(&m)
	}
	c.flights.m = make(map[string]*flightCall)
	return c
}

// shardFor hashes the object name (FNV-1a) onto a shard.
func (c *policyCache) shardFor(object string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(object); i++ {
		h ^= uint32(object[i])
		h *= prime32
	}
	return &c.shards[h&c.shardMask]
}

// entryFor returns the shard and current entry (nil if absent) for an
// object. Lock-free; the caller validates revisions and reports the
// outcome through recordHit/recordMiss.
func (c *policyCache) entryFor(object string) (*cacheShard, *cacheEntry) {
	s := c.shardFor(object)
	return s, (*s.m.Load())[object]
}

func (s *cacheShard) recordHit(e *cacheEntry) {
	e.used.Store(s.clock.Add(1))
	s.hits.Add(1)
}

func (s *cacheShard) recordMiss() {
	s.misses.Add(1)
}

// put publishes a freshly composed policy, evicting the least-recently
// used entry when the shard is full.
func (c *policyCache) put(object string, revs []string, nsys, nloc int, p *Policy) {
	s := c.shardFor(object)
	e := &cacheEntry{policy: p, revs: revs, nsys: nsys, nloc: nloc}
	e.used.Store(s.clock.Add(1))

	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.m.Load()
	var (
		victim     string
		haveVictim bool
	)
	if _, exists := old[object]; !exists && len(old) >= c.perShard {
		var victimUsed uint64
		for k, en := range old {
			if u := en.used.Load(); !haveVictim || u < victimUsed {
				victim, victimUsed, haveVictim = k, u, true
			}
		}
		c.evictions.Add(1)
	}
	next := make(map[string]*cacheEntry, len(old)+1)
	for k, en := range old {
		if haveVictim && k == victim {
			continue
		}
		next[k] = en
	}
	next[object] = e
	s.m.Store(&next)
}

// invalidate drops every cached policy; counters are preserved.
func (c *policyCache) invalidate() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		m := make(map[string]*cacheEntry)
		s.m.Store(&m)
		s.mu.Unlock()
	}
}

// snapshot sums the per-shard counters. Each counter is monotonic, so
// successive snapshots never move backwards.
func (c *policyCache) snapshot() CacheStats {
	st := CacheStats{Evictions: c.evictions.Load()}
	for i := range c.shards {
		st.Hits += c.shards[i].hits.Load()
		st.Misses += c.shards[i].misses.Load()
	}
	return st
}

// len reports the total number of cached entries (tests, diagnostics).
func (c *policyCache) len() int {
	n := 0
	for i := range c.shards {
		n += len(*c.shards[i].m.Load())
	}
	return n
}

// flightGroup coalesces concurrent cache misses for the same
// (object, revision): the first caller composes the policy, the rest
// wait for its result instead of re-reading and re-translating the
// sources (singleflight).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg     sync.WaitGroup
	policy *Policy
	err    error
}

// do runs fn once per key among concurrent callers and hands every
// caller the same result.
func (g *flightGroup) do(key string, fn func() (*Policy, error)) (*Policy, error) {
	g.mu.Lock()
	if fc, ok := g.m[key]; ok {
		g.mu.Unlock()
		fc.wg.Wait()
		return fc.policy, fc.err
	}
	fc := &flightCall{}
	fc.wg.Add(1)
	g.m[key] = fc
	g.mu.Unlock()

	fc.policy, fc.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	fc.wg.Done()
	return fc.policy, fc.err
}

// fresh reports whether the entry's recorded revisions still match the
// sources, comparing element-wise (system first, then local) with no
// key construction. It stops at the first stale source.
func (e *cacheEntry) fresh(object string, system, local []PolicySource) (bool, error) {
	for i, src := range system {
		r, err := src.Revision(object)
		if err != nil || r != e.revs[i] {
			return false, err
		}
	}
	for i, src := range local {
		r, err := src.Revision(object)
		if err != nil || r != e.revs[len(system)+i] {
			return false, err
		}
	}
	return true, nil
}
