package gaa

import (
	"time"

	"gaaapi/internal/eacl"
)

// Request is the authorization request handed to the GAA-API: the
// rights the application asks about plus the context parameters
// extracted from the application request (paper section 6, step 2b).
type Request struct {
	// Rights the caller requests; an EACL entry is considered when its
	// right matches any of them. Sign on requested rights is ignored.
	Rights []eacl.Right
	// Params carries typed context (client address, URI, input length,
	// usage counters during execution control, ...).
	Params ParamList
	// Time is the request time; the zero value means the API clock.
	Time time.Time

	// Decision is filled in by the engine before request-result
	// conditions run, so their on:success/on:failure triggers can see
	// whether the authorization request was granted.
	Decision Decision
	// OpStatus is filled in before post-conditions run: whether the
	// requested operation itself succeeded.
	OpStatus Decision

	// Trace requests a full evaluation trace in the Answer for this
	// request, even on an API built without WithTracing. When neither
	// is set, the engine records no TraceEvents at all (the fast path).
	Trace bool
}

// NewRequest builds a request for a single right.
func NewRequest(defAuth, rightValue string, params ...Param) *Request {
	return &Request{
		Rights: []eacl.Right{{Sign: eacl.Pos, DefAuth: defAuth, Value: rightValue}},
		Params: ParamList(params),
	}
}
