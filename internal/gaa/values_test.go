package gaa

import (
	"context"
	"strconv"
	"testing"

	"gaaapi/internal/eacl"
)

func TestResolveValue(t *testing.T) {
	v := NewValues()
	v.Set("max_input", "1000")
	v.Set("window", "09:00-17:00")
	tests := []struct {
		in     string
		want   string
		wantOK bool
	}{
		{"plain value", "plain value", true},
		{"@window", "09:00-17:00", true},
		{"input_length>@max_input", "input_length>1000", true},
		{"@window Mon-Fri", "09:00-17:00 Mon-Fri", true},
		{"input_length<=@max_input extra", "input_length<=1000 extra", true},
		{"@missing", "", false},
		{"x>@missing", "", false},
		{"user@host", "user@host", true}, // embedded '@' untouched
	}
	for _, tt := range tests {
		got, ok := resolveValue(tt.in, v)
		if ok != tt.wantOK || got != tt.want {
			t.Errorf("resolveValue(%q) = %q, %v; want %q, %v", tt.in, got, ok, tt.want, tt.wantOK)
		}
	}
	// No provider: references fail, plain values pass.
	if _, ok := resolveValue("@x", nil); ok {
		t.Error("nil provider resolved a reference")
	}
	if got, ok := resolveValue("no refs", nil); !ok || got != "no refs" {
		t.Error("nil provider broke plain values")
	}
	if _, ok := resolveValue("x>@y", nil); ok {
		t.Error("nil provider resolved a comparator reference")
	}
}

func TestValuesStore(t *testing.T) {
	v := NewValues()
	if _, ok := v.LookupValue("a"); ok {
		t.Error("empty store resolved a name")
	}
	v.Set("a", "1")
	if got, ok := v.LookupValue("a"); !ok || got != "1" {
		t.Errorf("LookupValue = %q, %v", got, ok)
	}
	v.Set("a", "2")
	if got, _ := v.LookupValue("a"); got != "2" {
		t.Errorf("updated value = %q", got)
	}
	v.Delete("a")
	if _, ok := v.LookupValue("a"); ok {
		t.Error("Delete had no effect")
	}
}

// TestAdaptiveThresholdThroughPolicy is the paper's worked mechanism:
// the overflow bound lives in the runtime value store; tightening it
// (as an IDS would when the threat rises) changes which requests the
// same policy denies — no policy edit, no re-parse.
func TestAdaptiveThresholdThroughPolicy(t *testing.T) {
	values := NewValues()
	values.Set("max_input", "1000")

	a := New(WithValues(values))
	a.RegisterFunc("expr", AuthorityAny, func(_ context.Context, c eacl.Condition, r *Request) Outcome {
		// Minimal expr evaluator: "<param>><number>".
		for i := 0; i < len(c.Value); i++ {
			if c.Value[i] == '>' {
				limit, err := strconv.ParseInt(c.Value[i+1:], 10, 64)
				if err != nil {
					return Outcome{Result: Maybe, Unevaluated: true, Err: err}
				}
				got, ok := r.Params.GetInt(c.Value[:i], c.DefAuth)
				if !ok {
					return UnevaluatedOutcome("missing param")
				}
				if got > limit {
					return MetOutcome(ClassSelector, "over limit")
				}
				return FailedOutcome(ClassSelector, "within limit")
			}
		}
		return UnevaluatedOutcome("no comparator")
	})

	e := mustEACL(t, `
neg_access_right apache *
pre_cond_expr local input_length>@max_input
pos_access_right apache *
`)
	p := NewPolicy("/x", nil, []*eacl.EACL{e})
	req := func(n string) *Request {
		return NewRequest("apache", "GET /x",
			Param{Type: ParamInputLength, Authority: AuthorityAny, Value: n})
	}

	// 800 bytes is fine under the peacetime bound.
	if ans := checkAuth(t, a, p, req("800")); ans.Decision != Yes {
		t.Errorf("800 bytes @1000: %v, want yes", ans.Decision)
	}
	// The IDS tightens the bound to 500: the same request is denied.
	values.Set("max_input", "500")
	if ans := checkAuth(t, a, p, req("800")); ans.Decision != No {
		t.Errorf("800 bytes @500: %v, want no", ans.Decision)
	}
	// Deleting the value leaves the condition unevaluated: the deny
	// entry cannot assert, so evaluation is uncertain — never a silent
	// grant of the attack path nor a spurious deny.
	values.Delete("max_input")
	if ans := checkAuth(t, a, p, req("800")); ans.Decision != Maybe {
		t.Errorf("800 bytes with missing value: %v, want maybe", ans.Decision)
	}
}

// TestAPIWithoutValuesLeavesReferencesUnevaluated: policies written
// against a value store fail safe on an API without one.
func TestAPIWithoutValuesLeavesReferencesUnevaluated(t *testing.T) {
	a, _ := newTestAPI(t)
	e := mustEACL(t, `
pos_access_right apache *
pre_cond_sel_yes local @tunable
`)
	p := NewPolicy("/x", nil, []*eacl.EACL{e})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Maybe {
		t.Errorf("decision = %v, want maybe", ans.Decision)
	}
}
