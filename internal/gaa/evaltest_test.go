package gaa

import (
	"context"
	"strings"
	"sync"
	"testing"

	"gaaapi/internal/eacl"
)

// actionLog records action-condition activations for assertions.
type actionLog struct {
	mu      sync.Mutex
	entries []string
}

func (l *actionLog) add(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, s)
}

func (l *actionLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.entries...)
}

// newTestAPI returns an API with synthetic condition evaluators:
//
//	sel_yes / sel_no            — selectors that always pass/fail
//	req_yes / req_no            — requirements; req_no carries a challenge
//	maybe                       — deliberately unevaluated
//	param_is <type>=<value>     — selector matching a request parameter
//	record <tag>                — action appending "<tag>:<decision>" to log;
//	                              "on:failure/<tag>" only when decision != Yes,
//	                              "on:success/<tag>" only when decision == Yes
//	erroring                    — evaluator returning an error
func newTestAPI(t *testing.T) (*API, *actionLog) {
	t.Helper()
	log := &actionLog{}
	// Tracing on: the semantics tests assert full evaluation traces.
	a := New(WithTracing())
	a.RegisterFunc("sel_yes", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "sel_yes")
	})
	a.RegisterFunc("sel_no", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return FailedOutcome(ClassSelector, "sel_no")
	})
	a.RegisterFunc("req_yes", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassRequirement, "req_yes")
	})
	a.RegisterFunc("req_no", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return Outcome{Result: No, Class: ClassRequirement, Challenge: `Basic realm="test"`, Detail: "req_no"}
	})
	a.RegisterFunc("maybe", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return UnevaluatedOutcome("deliberately unevaluated")
	})
	a.RegisterFunc("param_is", AuthorityAny, func(_ context.Context, c eacl.Condition, r *Request) Outcome {
		typ, want, ok := strings.Cut(c.Value, "=")
		if !ok {
			return Outcome{Result: No, Err: errMalformed, Detail: "want type=value"}
		}
		got, found := r.Params.Get(typ, c.DefAuth)
		if found && got == want {
			return MetOutcome(ClassSelector, "param matches")
		}
		return FailedOutcome(ClassSelector, "param mismatch")
	})
	a.RegisterFunc("record", AuthorityAny, func(_ context.Context, c eacl.Condition, r *Request) Outcome {
		tag := c.Value
		if rest, ok := strings.CutPrefix(tag, "on:failure/"); ok {
			if r.Decision == Yes {
				return MetOutcome(ClassAction, "trigger not matched")
			}
			tag = rest
		} else if rest, ok := strings.CutPrefix(tag, "on:success/"); ok {
			if r.Decision != Yes {
				return MetOutcome(ClassAction, "trigger not matched")
			}
			tag = rest
		}
		log.add(tag + ":" + r.Decision.String())
		return MetOutcome(ClassAction, "recorded")
	})
	a.RegisterFunc("erroring", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return Outcome{Result: Yes, Err: errBoom}
	})
	return a, log
}

var (
	errMalformed = &testError{"malformed condition"}
	errBoom      = &testError{"boom"}
)

type testError struct{ msg string }

func (e *testError) Error() string { return e.msg }

func mustEACL(t *testing.T, src string) *eacl.EACL {
	t.Helper()
	e, err := eacl.ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return e
}

func simpleRequest(params ...Param) *Request {
	return NewRequest("apache", "GET /index.html", params...)
}

func checkAuth(t *testing.T, a *API, p *Policy, req *Request) *Answer {
	t.Helper()
	ans, err := a.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatalf("CheckAuthorization: %v", err)
	}
	return ans
}
