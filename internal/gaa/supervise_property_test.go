package gaa

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/eacl"
)

// genFaultyPolicy builds a random policy over a vocabulary that mixes
// well-behaved evaluators with every supervised failure mode (error,
// panic, hang, invalid decision), across all four condition blocks.
func genFaultyPolicy(rng *rand.Rand, entries int) *eacl.EACL {
	condTypes := []string{"sel_yes", "sel_no", "req_yes", "maybe", "errs", "panics", "hangs", "invalid"}
	blocks := []string{"pre_cond", "rr_cond", "mid_cond", "post_cond"}
	var b strings.Builder
	for i := 0; i < entries; i++ {
		if rng.Intn(3) == 0 {
			b.WriteString("neg_access_right apache *\n")
		} else {
			b.WriteString("pos_access_right apache *\n")
		}
		for c := 1 + rng.Intn(3); c > 0; c-- {
			fmt.Fprintf(&b, "%s_%s local\n", blocks[rng.Intn(len(blocks))], condTypes[rng.Intn(len(condTypes))])
		}
	}
	e, err := eacl.ParseString(b.String())
	if err != nil {
		panic(err)
	}
	return e
}

// TestPropertySupervisionContainsFaults drives all three enforcement
// phases over random policies whose evaluators error, panic, hang and
// return invalid decisions, and asserts the supervision contract:
//
//   - no panic ever escapes CheckAuthorization, ExecutionControl or
//     PostExecutionActions;
//   - the decision of every phase is a valid tri-state value;
//   - every recorded Fault carries a real kind and a non-empty reason;
//   - the degraded-mode counters account for at least every answer-level
//     fault.
func TestPropertySupervisionContainsFaults(t *testing.T) {
	a, _ := newTestAPI(t)
	WithEvaluatorTimeout(2 * time.Millisecond).apply(a)
	registerFaulty(a)
	rng := rand.New(rand.NewSource(2003))
	valid := func(d Decision) bool { return d == Yes || d == No || d == Maybe }

	phases := func(e *eacl.EACL) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic escaped the enforcement phases: %v\npolicy:\n%s", r, e)
			}
		}()
		p := NewPolicy("/x", nil, []*eacl.EACL{e})
		req := simpleRequest()
		ans := checkAuth(t, a, p, req)
		if !valid(ans.Decision) {
			t.Fatalf("CheckAuthorization decision = %d, want tri-state\npolicy:\n%s", int(ans.Decision), e)
		}
		for _, f := range ans.Faults {
			if f.Kind == FaultNone || f.Reason == "" {
				t.Fatalf("malformed fault %+v\npolicy:\n%s", f, e)
			}
		}
		for _, ev := range ans.Trace {
			if ev.Outcome.Fault != FaultNone && ev.Outcome.faultReason() == "" {
				t.Fatalf("trace fault without reason: %+v", ev)
			}
		}
		if dec, _ := a.ExecutionControl(context.Background(), ans, req, Param{Type: "cpu_ms", Authority: AuthorityAny, Value: "1"}); !valid(dec) {
			t.Fatalf("ExecutionControl decision = %d\npolicy:\n%s", int(dec), e)
		}
		if dec, _ := a.PostExecutionActions(context.Background(), ans, req, Yes); !valid(dec) {
			t.Fatalf("PostExecutionActions decision = %d\npolicy:\n%s", int(dec), e)
		}
	}

	for i := 0; i < 120; i++ {
		e := genFaultyPolicy(rng, 1+rng.Intn(4))
		phases(e)
	}
	stats := a.SupervisionStats()
	total := stats.Panics + stats.Timeouts + stats.Errors + stats.Invalid
	if total == 0 {
		t.Fatal("no supervised fault recorded across 120 random faulty policies; vocabulary not exercised")
	}
}
