package gaa

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestMemorySource(t *testing.T) {
	m := NewMemorySource()
	if err := m.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}
	if err := m.AddPolicy("/secret/*", "neg_access_right apache *"); err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}
	got, err := m.Policies("/secret/file")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("policies for /secret/file = %d, want 2", len(got))
	}
	got, err = m.Policies("/public")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("policies for /public = %d, want 1", len(got))
	}
	if err := m.AddPolicy("bad", "pre_cond_x y"); err == nil {
		t.Error("AddPolicy with invalid source should fail")
	}
}

func TestMemorySourceRevisionChanges(t *testing.T) {
	m := NewMemorySource()
	r1, _ := m.Revision("/x")
	if err := m.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	r2, _ := m.Revision("/x")
	if r1 == r2 {
		t.Error("revision unchanged after Add")
	}
}

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "system.eacl")
	writeFile(t, path, "eacl_mode narrow\nneg_access_right * *\n")

	f := NewFileSource(path)
	got, err := f.Policies("/anything")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if len(got) != 1 || !got[0].ModeSet {
		t.Fatalf("policies = %v", got)
	}
	// Second read hits the parse cache (same pointer).
	again, err := f.Policies("/other")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if got[0] != again[0] {
		t.Error("expected cached EACL pointer on unchanged file")
	}

	// Rewrite with a different mtime: cache must refresh.
	writeFile(t, path, "pos_access_right apache *\n")
	bumpMtime(t, path)
	refreshed, err := f.Policies("/x")
	if err != nil {
		t.Fatalf("Policies after rewrite: %v", err)
	}
	if refreshed[0] == got[0] {
		t.Error("stale cache after file change")
	}
	if refreshed[0].ModeSet {
		t.Error("refreshed parse still has old content")
	}
}

func TestFileSourceMissingFile(t *testing.T) {
	f := NewFileSource(filepath.Join(t.TempDir(), "absent.eacl"))
	got, err := f.Policies("/x")
	if err != nil || got != nil {
		t.Errorf("Policies on absent file = %v, %v; want nil, nil", got, err)
	}
	rev, err := f.Revision("/x")
	if err != nil || rev != "absent" {
		t.Errorf("Revision = %q, %v; want absent, nil", rev, err)
	}
}

func TestFileSourceParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.eacl")
	writeFile(t, path, "pre_cond_orphan local x\n")
	f := NewFileSource(path)
	if _, err := f.Policies("/x"); err == nil {
		t.Error("want parse error")
	}
}

func TestDirSourceWalksDirectoryChain(t *testing.T) {
	root := t.TempDir()
	mkdir(t, filepath.Join(root, "a/b"))
	writeFile(t, filepath.Join(root, ".eacl"), "pos_access_right apache *\n")
	writeFile(t, filepath.Join(root, "a/b/.eacl"), "neg_access_right apache *\n")

	d := NewDirSource(root, ".eacl")
	got, err := d.Policies("/a/b/page.html")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("policies = %d, want 2 (root then a/b)", len(got))
	}
	// Root policy first (outer-to-inner ordering, like Apache).
	if got[0].Entries[0].Right.Sign.String() != "pos_access_right" {
		t.Error("root policy should come first")
	}

	// Object at root: only the root policy applies.
	got, err = d.Policies("/page.html")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("root object policies = %d, want 1", len(got))
	}

	// Directory without policy contributes nothing.
	mkdir(t, filepath.Join(root, "c"))
	got, err = d.Policies("/c/x")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("policies under /c = %d, want 1 (root only)", len(got))
	}
}

func TestDirSourceCacheRefresh(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, ".eacl"), "pos_access_right apache *\n")
	d := NewDirSource(root, ".eacl")
	first, err := d.Policies("/x")
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, ".eacl"), "neg_access_right apache *\n")
	bumpMtime(t, filepath.Join(root, ".eacl"))
	second, err := d.Policies("/x")
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first[0].Entries[0].Right, second[0].Entries[0].Right) {
		t.Error("DirSource served stale policy after file change")
	}
}

func TestObjectDirs(t *testing.T) {
	tests := []struct {
		object string
		want   []string
	}{
		{"/", []string{""}},
		{"", []string{""}},
		{"/file.html", []string{""}},
		{"/a/file", []string{"", "a"}},
		{"/a/b/c/file", []string{"", "a", "a/b", "a/b/c"}},
		{"a/b/../c/file", []string{"", "a", "a/c"}},
	}
	for _, tt := range tests {
		if got := objectDirs(tt.object); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("objectDirs(%q) = %v, want %v", tt.object, got, tt.want)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("WriteFile(%s): %v", path, err)
	}
}

func mkdir(t *testing.T, path string) {
	t.Helper()
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatalf("MkdirAll(%s): %v", path, err)
	}
}

// bumpMtime forces a distinct modification stamp even on filesystems
// with coarse timestamp resolution.
func bumpMtime(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	newTime := fi.ModTime().Add(2 * time.Second)
	if err := os.Chtimes(path, newTime, newTime); err != nil {
		t.Fatal(err)
	}
}
