package gaa

import (
	"math/rand/v2"
	"time"

	"gaaapi/internal/metrics"
)

// Metric names exported by WithMetrics. They are part of the
// observability contract (docs/OBSERVABILITY.md) and pinned by golden
// tests — renaming one is a breaking change for dashboards.
const (
	MetricPhaseLatency    = "gaa_phase_latency_seconds"
	MetricDecisions       = "gaa_decisions_total"
	MetricEvaluatorFaults = "gaa_evaluator_faults_total"
	MetricCacheHits       = "gaa_policy_cache_hits_total"
	MetricCacheMisses     = "gaa_policy_cache_misses_total"
	MetricCacheEvictions  = "gaa_policy_cache_evictions_total"
)

// DefaultMetricsSampleShift is the latency sampling the wired
// deployments (gaahttp.Stack, gaa-httpd) use: 1 in 2^3 = 8 phase
// executions reads the clock, recorded with weight 8 so the histogram
// stays statistically unbiased. Decision counters are always exact.
// On a ~1 microsecond cached-grant path the two clock reads dominate
// the instrumentation cost; sampling them keeps the overhead within
// the 5% budget.
const DefaultMetricsSampleShift = 3

// phaseInstruments carries the per-phase hot-path instruments. The
// decision counters are direct pointers indexed by Decision value so
// recording an outcome is one striped atomic add — no map lookup, no
// label rendering, no allocation.
type phaseInstruments struct {
	latency *metrics.Histogram
	// byDecision[Yes|No|Maybe] -> counter. Index 0 is unused (nil):
	// record clamps out-of-range decisions to Maybe, which is what the
	// supervision layer degrades them to anyway.
	byDecision [4]*metrics.Counter
}

// record counts the decision (always) and, when the phase entry
// sampled a start time, the weighted latency observation.
func (p *phaseInstruments) record(sampled bool, start time.Time, weight uint64, dec Decision) {
	if sampled {
		p.latency.ObserveDurationWeighted(time.Since(start), weight)
	}
	idx := int(dec)
	if idx < int(Yes) || idx > int(Maybe) {
		idx = int(Maybe)
	}
	p.byDecision[idx].Inc()
}

// apiInstruments groups the three phases' instruments plus the
// latency sampling configuration (mask 0 = sample every execution).
type apiInstruments struct {
	check, mid, post phaseInstruments
	mask             uint32
	weight           uint64
}

// sampleLatency decides whether this phase execution reads the clock.
// rand.Uint32 uses the per-OS-thread generator: no lock, no alloc.
func (m *apiInstruments) sampleLatency() bool {
	return m.mask == 0 || rand.Uint32()&m.mask == 0
}

// WithMetrics registers this API's observability into reg and turns on
// hot-path instrumentation:
//
//   - gaa_phase_latency_seconds{phase} — evaluation latency histogram
//     per enforcement phase (the paper's section 8 per-phase overhead,
//     measured live);
//   - gaa_decisions_total{phase,decision} — YES/NO/MAYBE outcome
//     counters per phase;
//   - gaa_evaluator_faults_total{kind} — supervision degradations
//     (panic/timeout/error/invalid), collected from SupervisionStats;
//   - gaa_policy_cache_{hits,misses,evictions}_total — composed-policy
//     cache effectiveness, collected from CacheStats.
//
// Instrumentation costs two clock reads and a handful of striped
// atomic adds per phase; the trace-disabled cached-grant path stays
// allocation-free. Phases that have no conditions to run (empty mid or
// post blocks) record nothing. By default every phase execution is
// timed (exact histogram counts); combine with WithMetricsSampling to
// amortize the clock reads on sub-microsecond paths.
func WithMetrics(reg *metrics.Registry) Option {
	return optionFunc(func(a *API) {
		inst := &apiInstruments{weight: 1}
		for _, p := range []struct {
			name string
			pi   *phaseInstruments
		}{
			{"check", &inst.check},
			{"mid", &inst.mid},
			{"post", &inst.post},
		} {
			p.pi.latency = reg.Histogram(MetricPhaseLatency,
				"Evaluation latency per enforcement phase (check=gaa_check_authorization, mid=gaa_execution_control, post=gaa_post_execution_actions).",
				nil, metrics.L("phase", p.name))
			for dec, label := range map[Decision]string{Yes: "yes", No: "no", Maybe: "maybe"} {
				p.pi.byDecision[dec] = reg.Counter(MetricDecisions,
					"Authorization decisions by enforcement phase and tri-state outcome.",
					metrics.L("phase", p.name), metrics.L("decision", label))
			}
		}
		for _, f := range []struct {
			kind string
			fn   func() uint64
		}{
			{"panic", a.sup.panics.Load},
			{"timeout", a.sup.timeouts.Load},
			{"error", a.sup.errors.Load},
			{"invalid", a.sup.invalid.Load},
		} {
			reg.CounterFunc(MetricEvaluatorFaults,
				"Supervised evaluator degradations by fault kind.",
				f.fn, metrics.L("kind", f.kind))
		}
		// Cache funcs read through the API so they stay correct however
		// options are ordered (and report zero with caching off).
		reg.CounterFunc(MetricCacheHits, "Composed-policy cache hits (lock-free fast path).",
			func() uint64 { return a.CacheStats().Hits })
		reg.CounterFunc(MetricCacheMisses, "Composed-policy cache misses (source re-read and re-translation).",
			func() uint64 { return a.CacheStats().Misses })
		reg.CounterFunc(MetricCacheEvictions, "Composed-policy cache LRU evictions.",
			func() uint64 { return a.CacheStats().Evictions })
		a.metrics = inst
		a.applyMetricsSampling()
	})
}

// WithMetricsSampling sets the phase-latency sampling rate to 1 in
// 2^shift executions, each recorded with weight 2^shift so bucket
// counts, _count and _sum remain statistically exact. Decision
// counters are unaffected (always exact). shift 0 restores exact
// per-execution timing. Order-independent with WithMetrics.
func WithMetricsSampling(shift uint) Option {
	return optionFunc(func(a *API) {
		a.metricsSampleShift = shift
		a.applyMetricsSampling()
	})
}

// applyMetricsSampling resolves the (WithMetrics, WithMetricsSampling)
// pair whichever option ran last.
func (a *API) applyMetricsSampling() {
	if a.metrics == nil {
		return
	}
	a.metrics.mask = 1<<a.metricsSampleShift - 1
	a.metrics.weight = 1 << a.metricsSampleShift
}
