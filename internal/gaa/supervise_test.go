package gaa

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/eacl"
)

// registerFaulty installs the misbehaving evaluators the supervision
// tests exercise: a panicking one, one that hangs until its context is
// done, one returning an error alongside YES, and one returning a
// decision outside the tri-state range.
func registerFaulty(a *API) {
	a.RegisterFunc("panics", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		panic("kaboom")
	})
	a.RegisterFunc("hangs", AuthorityAny, func(ctx context.Context, _ eacl.Condition, _ *Request) Outcome {
		<-ctx.Done()
		return UnevaluatedOutcome("hang released")
	})
	a.RegisterFunc("errs", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return Outcome{Result: Yes, Err: errors.New("backend down")}
	})
	a.RegisterFunc("invalid", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return Outcome{Result: Decision(97)}
	})
}

func TestSupervisedPanicDegradesToMaybe(t *testing.T) {
	a, _ := newTestAPI(t)
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_panics local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Fatalf("decision = %v, want maybe (panic must not decide)", ans.Decision)
	}
	if len(ans.Faults) != 1 {
		t.Fatalf("faults = %+v, want exactly one", ans.Faults)
	}
	f := ans.Faults[0]
	if f.Kind != FaultPanic || f.Cond.Type != "panics" {
		t.Errorf("fault = %+v, want panic on 'panics'", f)
	}
	if !strings.Contains(f.Reason, "kaboom") {
		t.Errorf("reason = %q, want the panic value", f.Reason)
	}
	if got := a.SupervisionStats().Panics; got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
}

func TestSupervisedTimeoutCutsHangingEvaluator(t *testing.T) {
	log := &actionLog{}
	a := New(WithEvaluatorTimeout(10 * time.Millisecond))
	registerFaulty(a)
	a.RegisterFunc("record", AuthorityAny, func(_ context.Context, c eacl.Condition, _ *Request) Outcome {
		log.add(c.Value)
		return MetOutcome(ClassAction, "recorded")
	})
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_hangs local
rr_cond_record local notified
`))
	start := time.Now()
	ans := checkAuth(t, a, p, simpleRequest())
	elapsed := time.Since(start)
	if ans.Decision != Maybe {
		t.Fatalf("decision = %v, want maybe", ans.Decision)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("evaluation took %v: the deadline did not cut the hang", elapsed)
	}
	if len(ans.Faults) != 1 || ans.Faults[0].Kind != FaultTimeout {
		t.Fatalf("faults = %+v, want one timeout", ans.Faults)
	}
	if ans.Faults[0].Reason == "" {
		t.Error("timeout fault must carry a reason")
	}
	if got := a.SupervisionStats().Timeouts; got != 1 {
		t.Errorf("Timeouts = %d, want 1", got)
	}
	// The request-result block still ran after the degraded entry decided.
	if got := log.all(); len(got) != 1 || got[0] != "notified" {
		t.Errorf("request-result activations = %v, want [notified]", got)
	}
}

func TestSupervisedRequestCancellation(t *testing.T) {
	a := New(WithEvaluatorTimeout(time.Minute))
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_hangs local
`))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	ans, err := a.CheckAuthorization(ctx, p, simpleRequest())
	if err != nil {
		t.Fatalf("CheckAuthorization: %v", err)
	}
	if ans.Decision != Maybe {
		t.Fatalf("decision = %v, want maybe on cancellation", ans.Decision)
	}
	if len(ans.Faults) != 1 || ans.Faults[0].Kind != FaultTimeout {
		t.Fatalf("faults = %+v, want one timeout fault", ans.Faults)
	}
	if !strings.Contains(ans.Faults[0].Reason, "cancel") {
		t.Errorf("reason = %q, want a cancellation reason", ans.Faults[0].Reason)
	}
}

func TestSupervisedErrorWithoutNoDegrades(t *testing.T) {
	a, _ := newTestAPI(t)
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_errs local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Fatalf("decision = %v, want maybe (error cannot assert YES)", ans.Decision)
	}
	if len(ans.Faults) != 1 || ans.Faults[0].Kind != FaultError {
		t.Fatalf("faults = %+v, want one error fault", ans.Faults)
	}
	if got := a.SupervisionStats().Errors; got != 1 {
		t.Errorf("Errors = %d, want 1", got)
	}
}

func TestSupervisedErrorWithNoIsPreserved(t *testing.T) {
	a, _ := newTestAPI(t)
	a.RegisterFunc("deny_err", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return Outcome{Result: No, Class: ClassRequirement, Err: errors.New("explicit deny"), Detail: "denied"}
	})
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_deny_err local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No {
		t.Fatalf("decision = %v, want no (an erroring NO still denies)", ans.Decision)
	}
	if len(ans.Faults) != 0 {
		t.Errorf("faults = %+v, want none for a deliberate NO", ans.Faults)
	}
}

func TestSupervisedInvalidDecisionNormalized(t *testing.T) {
	a, _ := newTestAPI(t)
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_invalid local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Fatalf("decision = %v, want maybe", ans.Decision)
	}
	if len(ans.Faults) != 1 || ans.Faults[0].Kind != FaultInvalid {
		t.Fatalf("faults = %+v, want one invalid-decision fault", ans.Faults)
	}
	if got := a.SupervisionStats().Invalid; got != 1 {
		t.Errorf("Invalid = %d, want 1", got)
	}
}

// TestFaultTracedWithTracingOff pins the observability contract: even
// with tracing disabled, a degraded evaluation leaves a TraceEvent so
// the audit trail can tell a policy MAYBE from a degraded-mode MAYBE.
func TestFaultTracedWithTracingOff(t *testing.T) {
	a := New() // no WithTracing
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_panics local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if len(ans.Trace) != 1 {
		t.Fatalf("trace = %+v, want the forced fault event", ans.Trace)
	}
	ev := ans.Trace[0]
	if ev.Outcome.Fault != FaultPanic || ev.Outcome.faultReason() == "" {
		t.Errorf("trace outcome = %+v, want panic fault with reason", ev.Outcome)
	}
}

// TestMidPhasePanicContained: a panicking mid-condition evaluator must
// not escape ExecutionControl; the phase answers MAYBE and traces the
// fault.
func TestMidPhasePanicContained(t *testing.T) {
	a, _ := newTestAPI(t)
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
mid_cond_panics local
`))
	req := simpleRequest()
	ans := checkAuth(t, a, p, req)
	if ans.Decision != Yes {
		t.Fatalf("decision = %v, want yes (mid block does not gate phase 1)", ans.Decision)
	}
	dec, trace := a.ExecutionControl(context.Background(), ans, req)
	if dec != Maybe {
		t.Errorf("ExecutionControl = %v, want maybe", dec)
	}
	if len(trace) == 0 || trace[len(trace)-1].Outcome.Fault != FaultPanic {
		t.Errorf("trace = %+v, want a recorded panic fault", trace)
	}
}

// TestPostPhasePanicContained is the phase-3 twin.
func TestPostPhasePanicContained(t *testing.T) {
	a, _ := newTestAPI(t)
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
post_cond_panics local
`))
	req := simpleRequest()
	ans := checkAuth(t, a, p, req)
	dec, trace := a.PostExecutionActions(context.Background(), ans, req, Yes)
	if dec != Maybe {
		t.Errorf("PostExecutionActions = %v, want maybe", dec)
	}
	if len(trace) == 0 || trace[len(trace)-1].Outcome.Fault != FaultPanic {
		t.Errorf("trace = %+v, want a recorded panic fault", trace)
	}
}

// TestTimeoutZeroKeepsSynchronousPath: without WithEvaluatorTimeout the
// supervisor must not spawn goroutines — a hang propagates (cut here
// via the request context) but panics are still recovered.
func TestTimeoutZeroKeepsSynchronousPath(t *testing.T) {
	a := New()
	registerFaulty(a)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_panics local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe || len(ans.Faults) != 1 || ans.Faults[0].Kind != FaultPanic {
		t.Fatalf("answer = %+v, want recovered panic without a deadline configured", ans)
	}
}

// TestFaultsSurviveComposition: faults from both policy levels merge
// into the answer regardless of which level decides.
func TestFaultsSurviveComposition(t *testing.T) {
	a, _ := newTestAPI(t)
	registerFaulty(a)
	sys := mustEACL(t, `
eacl_mode narrow
pos_access_right apache *
pre_cond_panics local
`)
	loc := mustEACL(t, `
pos_access_right apache *
pre_cond_errs local
`)
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Fatalf("decision = %v, want maybe", ans.Decision)
	}
	kinds := map[FaultKind]int{}
	for _, f := range ans.Faults {
		kinds[f.Kind]++
	}
	if kinds[FaultPanic] != 1 || kinds[FaultError] != 1 {
		t.Errorf("faults = %+v, want one panic and one error across levels", ans.Faults)
	}
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultNone: "none", FaultPanic: "panic", FaultTimeout: "timeout",
		FaultError: "error", FaultInvalid: "invalid", FaultKind(42): "FaultKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
