package gaa

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gaaapi/internal/eacl"
)

// --- glob trie ---

func TestGlobTrieMatchesGlob(t *testing.T) {
	patterns := []string{
		"", "*", "**", "*a", "a*", "a**b", "abc", "a?c", "?", "GET /index.html",
		"GET /cgi-bin/*", "GET *", "*phf*", "10.0.*", "10.0.1.5", "apache",
		"loc*", "local", "*.html", "a*b*c", "***",
	}
	subjects := []string{
		"", "a", "abc", "aXc", "a?c", "?", "ab", "axbyc", "GET /index.html",
		"GET /cgi-bin/phf?x", "POST /x", "10.0.1.5", "10.1.2.3", "apache",
		"local", "loc", "index.html", "x.html", "GET ", "*",
	}
	var trie globTrie
	for i, p := range patterns {
		trie.insert(collapseStars(p), int32(i))
	}
	bits := make([]uint64, (len(patterns)+63)/64)
	for _, s := range subjects {
		clearBits(bits)
		trie.match(s, bits)
		for i, p := range patterns {
			want := eacl.Glob(p, s)
			if got := bitGet(bits, int32(i)); got != want {
				t.Errorf("trie match %q against pattern %q = %v, Glob = %v", s, p, got, want)
			}
		}
	}
}

// TestCollapseStarsEquivalence pins the canonicalization the trie
// relies on with the GlobCovers inclusion DP: the collapsed pattern
// accepts exactly the original's language.
func TestCollapseStarsEquivalence(t *testing.T) {
	for _, p := range []string{
		"", "*", "**", "***", "a**b", "**a**", "a*b**c***", "no-stars", "*?**",
	} {
		c := collapseStars(p)
		if !eacl.GlobCovers(c, p) || !eacl.GlobCovers(p, c) {
			t.Errorf("collapseStars(%q) = %q is not language-equivalent", p, c)
		}
	}
	if got := collapseStars("a**b***c"); got != "a*b*c" {
		t.Errorf("collapseStars = %q, want a*b*c", got)
	}
}

// --- compiled-engine fixtures ---

// fastEval is a CondCompiler test evaluator with per-path call
// counters.
type fastEval struct {
	out      Outcome
	compiled *atomic.Int64
	interp   *atomic.Int64
	panics   bool
}

func (f fastEval) Evaluate(context.Context, eacl.Condition, *Request) Outcome {
	f.interp.Add(1)
	return f.out
}

func (f fastEval) CompileCond(eacl.Condition) (CompiledCond, bool) {
	return fastCond{out: f.out, n: f.compiled, panics: f.panics}, true
}

type fastCond struct {
	out    Outcome
	n      *atomic.Int64
	panics bool
}

func (c fastCond) EvalCompiled(*Request) Outcome {
	c.n.Add(1)
	if c.panics {
		panic("compiled boom")
	}
	return c.out
}

func memPolicy(t *testing.T, a *API, text string) *Policy {
	t.Helper()
	src := NewMemorySource()
	if err := src.AddPolicy("*", text); err != nil {
		t.Fatal(err)
	}
	p, err := a.GetObjectPolicyInfo("/index.html", nil, []PolicySource{src})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// --- engine behaviour ---

func TestCompiledMemoizesFastConds(t *testing.T) {
	var comp, interp atomic.Int64
	a := New()
	a.Register("fastno", AuthorityAny, fastEval{
		out: FailedOutcome(ClassSelector, "no"), compiled: &comp, interp: &interp,
	})
	p := memPolicy(t, a, `
neg_access_right apache *
pre_cond_fastno local same

pos_access_right apache *
pre_cond_fastno local same
`)
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe || ans.Applicable {
		t.Fatalf("decision = %v applicable=%v, want inapplicable maybe", ans.Decision, ans.Applicable)
	}
	if got := a.CompileStats().Runs; got != 1 {
		t.Fatalf("compiled runs = %d, want 1", got)
	}
	if comp.Load() != 1 {
		t.Errorf("compiled evaluations = %d, want 1 (memoized across both entries)", comp.Load())
	}
	if interp.Load() != 0 {
		t.Errorf("interpreted evaluations = %d, want 0", interp.Load())
	}
}

func TestCompiledProgramCachedAcrossRequests(t *testing.T) {
	a := New()
	p := memPolicy(t, a, "pos_access_right apache *")
	for i := 0; i < 5; i++ {
		if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
			t.Fatalf("decision = %v, want yes", ans.Decision)
		}
	}
	st := a.CompileStats()
	if st.Programs != 1 {
		t.Errorf("programs = %d, want 1 (cached by EACL identity)", st.Programs)
	}
	if st.Runs != 5 {
		t.Errorf("runs = %d, want 5", st.Runs)
	}
}

func TestCompiledRecompilesOnNewRevision(t *testing.T) {
	a := New()
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sources := []PolicySource{src}
	p, err := a.GetObjectPolicyInfo("/x", nil, sources)
	if err != nil {
		t.Fatal(err)
	}
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
		t.Fatalf("decision = %v, want yes", ans.Decision)
	}
	// A hot reload replaces the source snapshot: newly parsed EACLs key
	// a fresh program.
	if err := src.AddPolicy("*", "neg_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	p2, err := a.GetObjectPolicyInfo("/x", nil, sources)
	if err != nil {
		t.Fatal(err)
	}
	if ans := checkAuth(t, a, p2, simpleRequest()); ans.Decision != No {
		t.Fatalf("post-reload decision = %v, want no", ans.Decision)
	}
	if st := a.CompileStats(); st.Programs != 2 {
		t.Errorf("programs = %d, want 2 (one per policy revision)", st.Programs)
	}
}

func TestCompiledRecompilesOnRegistration(t *testing.T) {
	a := New()
	p := memPolicy(t, a, `
pos_access_right apache *
pre_cond_later local
`)
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Maybe {
		t.Fatalf("decision before registration = %v, want maybe", ans.Decision)
	}
	// Registration bumps the registry generation: the program that
	// baked in "no evaluator registered" must be rebuilt.
	a.RegisterFunc("later", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "later")
	})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
		t.Fatalf("decision after registration = %v, want yes", ans.Decision)
	}
	if st := a.CompileStats(); st.Programs != 2 {
		t.Errorf("programs = %d, want 2 (recompiled at new generation)", st.Programs)
	}
}

func TestCompiledInvalidateCacheDropsPrograms(t *testing.T) {
	a := New()
	p := memPolicy(t, a, "pos_access_right apache *")
	checkAuth(t, a, p, simpleRequest())
	a.InvalidateCache()
	checkAuth(t, a, p, simpleRequest())
	if st := a.CompileStats(); st.Programs != 2 {
		t.Errorf("programs = %d, want 2 after InvalidateCache", st.Programs)
	}
}

func TestCompiledGates(t *testing.T) {
	var comp, interp atomic.Int64
	mk := func(opts ...Option) (*API, *Policy) {
		a := New(opts...)
		a.Register("fastyes", AuthorityAny, fastEval{
			out: MetOutcome(ClassSelector, "yes"), compiled: &comp, interp: &interp,
		})
		return a, memPolicy(t, a, "pos_access_right apache *\npre_cond_fastyes local")
	}
	cases := []struct {
		name string
		opts []Option
		want uint64 // compiled runs after one check
	}{
		{"default-on", nil, 1},
		{"switched-off", []Option{WithCompiledEngine(false)}, 0},
		{"tracing", []Option{WithTracing()}, 0},
		{"timeout", []Option{WithEvaluatorTimeout(time.Second)}, 0},
		{"wrapper", []Option{WithEvaluatorWrapper(func(ev Evaluator) Evaluator { return ev })}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, p := mk(tc.opts...)
			if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
				t.Fatalf("decision = %v, want yes", ans.Decision)
			}
			if got := a.CompileStats().Runs; got != tc.want {
				t.Errorf("compiled runs = %d, want %d", got, tc.want)
			}
		})
	}
	// Per-request tracing must also take the interpreted path.
	a, p := mk()
	req := simpleRequest()
	req.Trace = true
	checkAuth(t, a, p, req)
	if got := a.CompileStats().Runs; got != 0 {
		t.Errorf("compiled runs with Request.Trace = %d, want 0", got)
	}
}

func TestCompiledPanicDegradesPerOccurrence(t *testing.T) {
	var comp, interp atomic.Int64
	a := New()
	a.Register("boom", AuthorityAny, fastEval{
		out: MetOutcome(ClassSelector, "unreached"), compiled: &comp, interp: &interp, panics: true,
	})
	// The same condition appears in two composed EACLs: a faulted
	// outcome must not be memoized across them, so each scan degrades,
	// faults and traces on its own, exactly as interpretation would.
	p := localPolicy(
		mustEACL(t, "pos_access_right apache *\npre_cond_boom local x"),
		mustEACL(t, "pos_access_right apache *\npre_cond_boom local x"),
	)
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Fatalf("decision under panic = %v, want maybe", ans.Decision)
	}
	if comp.Load() != 2 {
		t.Errorf("compiled evaluations = %d, want 2 (faults not memoized)", comp.Load())
	}
	if len(ans.Faults) != 2 {
		t.Fatalf("faults = %d, want 2", len(ans.Faults))
	}
	for _, f := range ans.Faults {
		if f.Kind != FaultPanic {
			t.Errorf("fault kind = %v, want panic", f.Kind)
		}
	}
	if len(ans.Trace) != 2 {
		t.Errorf("fault trace events = %d, want 2 (faults trace even untraced)", len(ans.Trace))
	}
	if got := a.SupervisionStats().Panics; got != 2 {
		t.Errorf("supervision panics = %d, want 2", got)
	}
}

func TestCompiledChallengeAndDeciders(t *testing.T) {
	var comp, interp atomic.Int64
	a := New()
	a.Register("reqno", AuthorityAny, fastEval{
		out: Outcome{
			Result: No, Class: ClassRequirement,
			Challenge: `Basic realm="compiled"`, Detail: "denied",
		},
		compiled: &comp, interp: &interp,
	})
	p := memPolicy(t, a, `
pos_access_right apache *
pre_cond_reqno local
mid_cond_quota local cpu_ms<=50
post_cond_audit local x
`)
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No || !ans.Applicable {
		t.Fatalf("decision = %v applicable=%v, want applicable no", ans.Decision, ans.Applicable)
	}
	if ans.Challenge != `Basic realm="compiled"` {
		t.Errorf("challenge = %q", ans.Challenge)
	}
	// The deciding entry's mid/post blocks ride on the answer exactly
	// as on the interpreted path.
	if len(ans.Mid) != 1 || ans.Mid[0].Type != "quota" {
		t.Errorf("mid conditions = %+v, want the quota condition", ans.Mid)
	}
	if len(ans.Post) != 1 || ans.Post[0].Type != "audit" {
		t.Errorf("post conditions = %+v, want the audit condition", ans.Post)
	}
}

func TestCompiledZeroAllocUncachedGrant(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops 1 in 4 Puts under race; pooled paths allocate by design there")
	}
	a := New()
	var comp, interp atomic.Int64
	a.Register("fastyes", AuthorityAny, fastEval{
		out: MetOutcome(ClassSelector, "yes"), compiled: &comp, interp: &interp,
	})
	p := memPolicy(t, a, `
neg_access_right apache GET /private/*
pre_cond_fastyes local

pos_access_right apache *
pre_cond_fastyes local
`)
	req := simpleRequest()
	ans := new(Answer)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if err := a.CheckAuthorizationInto(ctx, p, req, ans); err != nil {
			t.Fatal(err)
		}
		if ans.Decision != Yes {
			t.Fatalf("decision = %v, want yes", ans.Decision)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled grant allocates %v per op, want 0", allocs)
	}
}

func TestCompiledProgramCapResets(t *testing.T) {
	a := New()
	// Every iteration parses a fresh EACL: each keys a new program,
	// driving the table past maxPrograms and through the reset branch
	// without unbounded growth.
	for i := 0; i < maxPrograms+10; i++ {
		src := NewMemorySource()
		if err := src.AddPolicy("*", fmt.Sprintf("pos_access_right apache /obj-%d\npos_access_right apache *", i)); err != nil {
			t.Fatal(err)
		}
		p, err := a.GetObjectPolicyInfo("/x", nil, []PolicySource{src})
		if err != nil {
			t.Fatal(err)
		}
		if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
			t.Fatalf("decision = %v, want yes", ans.Decision)
		}
	}
	if mp := a.progs.progs.Load(); mp != nil && len(*mp) > maxPrograms {
		t.Errorf("program table grew to %d entries, cap is %d", len(*mp), maxPrograms)
	}
	if st := a.CompileStats(); st.Programs != uint64(maxPrograms+10) {
		t.Errorf("programs = %d, want %d", st.Programs, maxPrograms+10)
	}
}

func TestCompiledStatsCountConds(t *testing.T) {
	var comp, interp atomic.Int64
	a := New()
	a.Register("fastyes", AuthorityAny, fastEval{
		out: MetOutcome(ClassSelector, "yes"), compiled: &comp, interp: &interp,
	})
	a.RegisterFunc("dyn", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "dyn")
	})
	p := memPolicy(t, a, `
pos_access_right apache *
pre_cond_fastyes local
pre_cond_dyn local
pre_cond_fastyes local @adaptive
`)
	checkAuth(t, a, p, simpleRequest())
	st := a.CompileStats()
	if st.FastConds != 1 {
		t.Errorf("fast conds = %d, want 1", st.FastConds)
	}
	// The plain function and the '@' reference both stay dynamic.
	if st.DynamicConds != 2 {
		t.Errorf("dynamic conds = %d, want 2", st.DynamicConds)
	}
}

// TestCompiledLargeCompositionFallsBack pins the program-key bound:
// compositions over maxProgEACLs EACLs stay interpreted.
func TestCompiledLargeCompositionFallsBack(t *testing.T) {
	a := New()
	var eacls []*eacl.EACL
	for i := 0; i <= maxProgEACLs; i++ {
		eacls = append(eacls, mustEACL(t, "pos_access_right apache *"))
	}
	p := localPolicy(eacls...)
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
		t.Fatalf("decision = %v, want yes", ans.Decision)
	}
	if st := a.CompileStats(); st.Runs != 0 {
		t.Errorf("compiled runs = %d, want 0 for an oversized composition", st.Runs)
	}
}
