package gaa

import (
	"strings"
	"sync"
)

// ValueProvider resolves runtime values referenced from condition
// values. The paper's section 2: "A condition may either explicitly
// list the value of a constraint or specify where the value can be
// obtained at run time. The latter allows for adaptive constraint
// specification, since allowable times, locations and thresholds can
// change in the event of possible security attacks. The value of
// condition can be supplied by other services, e.g., an IDS."
//
// A condition value token beginning with '@' is replaced by the
// provider's value for the name before the evaluator runs:
//
//	pre_cond_expr local input_length>@max_input
//	pre_cond_time_window local @business_hours
//
// An unresolvable reference leaves the condition unevaluated (MAYBE),
// exactly like a missing evaluator — fail-safe, never fail-open.
type ValueProvider interface {
	// LookupValue returns the current value for name.
	LookupValue(name string) (string, bool)
}

// Values is a mutable, concurrent-safe ValueProvider: the store an IDS
// (or an administrator) updates at run time to tighten or relax
// constraints without editing policy files.
type Values struct {
	mu sync.RWMutex
	m  map[string]string
}

var _ ValueProvider = (*Values)(nil)

// NewValues returns an empty store.
func NewValues() *Values {
	return &Values{m: make(map[string]string)}
}

// Set installs or updates a value.
func (v *Values) Set(name, value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.m[name] = value
}

// Delete removes a value; conditions referencing it become
// unevaluated until it is set again.
func (v *Values) Delete(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.m, name)
}

// LookupValue implements ValueProvider.
func (v *Values) LookupValue(name string) (string, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	s, ok := v.m[name]
	return s, ok
}

// resolveValue expands '@name' references in a condition value using
// the provider. Only whole whitespace-separated tokens are expanded
// ("@max" resolves; "limit@host" does not), and expansion applies to
// the suffix after a comparator too ("input_length>@max_input").
// It reports ok=false when a reference cannot be resolved.
func resolveValue(value string, provider ValueProvider) (string, bool) {
	if !strings.Contains(value, "@") {
		return value, true
	}
	fields := strings.Fields(value)
	changed := false
	for i, f := range fields {
		expanded, ok := expandToken(f, provider)
		if !ok {
			return "", false
		}
		if expanded != f {
			fields[i] = expanded
			changed = true
		}
	}
	if !changed {
		return value, true
	}
	return strings.Join(fields, " "), true
}

// expandToken expands a single token: a leading '@' covers the whole
// token; an '@' immediately after one of the comparator characters
// (=<>!) covers the remainder.
func expandToken(tok string, provider ValueProvider) (string, bool) {
	if name, ok := strings.CutPrefix(tok, "@"); ok {
		if provider == nil {
			return "", false
		}
		v, found := provider.LookupValue(name)
		if !found {
			return "", false
		}
		return v, true
	}
	if i := strings.Index(tok, "@"); i > 0 && strings.ContainsAny(tok[i-1:i], "=<>!") {
		if provider == nil {
			return "", false
		}
		v, found := provider.LookupValue(tok[i+1:])
		if !found {
			return "", false
		}
		return tok[:i] + v, true
	}
	return tok, true
}
