package gaa

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gaaapi/internal/eacl"
)

// FaultKind classifies how a supervised evaluation degraded. The
// tri-state semantics make MAYBE the principled answer when a condition
// is left unevaluated (paper section 2); supervision extends that to
// evaluators that crash, hang or error: the request keeps flowing and
// the fault is recorded instead of killing the request.
type FaultKind int

const (
	// FaultNone: the evaluation completed normally.
	FaultNone FaultKind = iota
	// FaultPanic: the evaluator panicked and was recovered.
	FaultPanic
	// FaultTimeout: the evaluator exceeded the per-evaluator deadline
	// (WithEvaluatorTimeout) or the request context was cancelled.
	FaultTimeout
	// FaultError: the evaluator returned an error without asserting NO;
	// fail-safe degrades it to MAYBE.
	FaultError
	// FaultInvalid: the evaluator returned a decision outside
	// {Yes, No, Maybe}.
	FaultInvalid
)

// String returns a symbolic name for the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultTimeout:
		return "timeout"
	case FaultError:
		return "error"
	case FaultInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault records one degraded condition evaluation with its structured
// reason. Faults ride on the Answer so operators (and the chaos tests)
// can tell a policy MAYBE from a degraded-mode MAYBE.
type Fault struct {
	// Cond is the condition whose evaluation degraded.
	Cond eacl.Condition
	// Kind is the degradation class.
	Kind FaultKind
	// Reason is the human-readable explanation; never empty.
	Reason string
}

// WithEvaluatorTimeout bounds every supervised evaluator call: an
// evaluator that does not return within d is cut off and its condition
// degrades to MAYBE/unevaluated with a FaultTimeout reason. The zero
// (default) disables the deadline and keeps evaluation synchronous and
// allocation-free; with a deadline each call costs a goroutine, so the
// knob is meant for deployments whose evaluators consult external
// services.
func WithEvaluatorTimeout(d time.Duration) Option {
	return optionFunc(func(a *API) { a.evalTimeout = d })
}

// WithEvaluatorWrapper interposes wrap on every evaluator subsequently
// registered, underneath the supervision layer (so faults the wrapper
// injects are recovered and degraded like any evaluator fault). It is
// the seam the internal/faults injectors use for fault drills.
func WithEvaluatorWrapper(wrap func(Evaluator) Evaluator) Option {
	return optionFunc(func(a *API) { a.wrapEval = wrap })
}

// SupervisionStats counts degraded-mode events since the API was
// built. Retrieve with API.SupervisionStats.
type SupervisionStats struct {
	// Panics is the number of evaluator panics recovered.
	Panics uint64
	// Timeouts is the number of evaluator calls cut off at the
	// deadline (or cancelled with the request context).
	Timeouts uint64
	// Errors is the number of evaluator errors degraded to MAYBE.
	Errors uint64
	// Invalid is the number of out-of-range decisions normalized.
	Invalid uint64
}

// supervisionCounters is the hot-path representation of
// SupervisionStats.
type supervisionCounters struct {
	panics   atomic.Uint64
	timeouts atomic.Uint64
	errors   atomic.Uint64
	invalid  atomic.Uint64
}

func (c *supervisionCounters) snapshot() SupervisionStats {
	return SupervisionStats{
		Panics:   c.panics.Load(),
		Timeouts: c.timeouts.Load(),
		Errors:   c.errors.Load(),
		Invalid:  c.invalid.Load(),
	}
}

// SupervisionStats returns the degraded-mode counters.
func (a *API) SupervisionStats() SupervisionStats {
	return a.sup.snapshot()
}

// supervise wraps an evaluator being registered with the API's fault
// wrapper (fault drills) and the supervision layer.
func (a *API) supervise(ev Evaluator) Evaluator {
	if a.wrapEval != nil {
		ev = a.wrapEval(ev)
	}
	return supervised{api: a, inner: ev}
}

// supervised enforces the contract evaluateCondition relies on: the
// wrapped call never panics, never hangs past the configured deadline,
// and always yields a valid tri-state Outcome; every degradation is
// tagged with a FaultKind and a non-empty reason.
type supervised struct {
	api   *API
	inner Evaluator
}

// Evaluate implements Evaluator.
func (s supervised) Evaluate(ctx context.Context, cond eacl.Condition, req *Request) Outcome {
	if s.api.evalTimeout > 0 {
		return s.evaluateDeadline(ctx, cond, req)
	}
	return s.normalize(s.call(ctx, cond, req))
}

// call invokes the inner evaluator with panic recovery.
func (s supervised) call(ctx context.Context, cond eacl.Condition, req *Request) (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = s.api.recoverPanic(r)
		}
	}()
	return s.inner.Evaluate(ctx, cond, req)
}

// recoverPanic builds the supervised panic outcome; the compiled
// engine's hoisted tests share it so a panicking dependency degrades
// identically on both paths.
func (a *API) recoverPanic(r any) Outcome {
	a.sup.panics.Add(1)
	reason := fmt.Sprintf("evaluator panic: %v", r)
	return Outcome{
		Result:      Maybe,
		Unevaluated: true,
		Fault:       FaultPanic,
		Detail:      reason,
		Err:         fmt.Errorf("%s", reason),
	}
}

// evaluateDeadline runs the evaluator in a goroutine and cuts it off at
// the deadline. The goroutine receives a private copy of the request:
// the engine's pooled Request is recycled when the phase returns, and
// an abandoned evaluator must never observe the recycled state.
func (s supervised) evaluateDeadline(parent context.Context, cond eacl.Condition, req *Request) Outcome {
	d := s.api.evalTimeout
	ctx, cancel := context.WithTimeout(parent, d)
	defer cancel()

	reqCopy := new(Request)
	*reqCopy = *req
	// Deep-copy the slices too: servers pool the Params/Rights backing
	// arrays per request, and an abandoned evaluator must not observe
	// them being rewritten for the next request.
	reqCopy.Params = append(ParamList(nil), req.Params...)
	reqCopy.Rights = append([]eacl.Right(nil), req.Rights...)
	ch := make(chan Outcome, 1)
	go func() {
		ch <- s.call(ctx, cond, reqCopy)
	}()
	select {
	case out := <-ch:
		return s.normalize(out)
	case <-ctx.Done():
		s.api.sup.timeouts.Add(1)
		reason := fmt.Sprintf("evaluator timed out after %v", d)
		if err := parent.Err(); err != nil {
			reason = fmt.Sprintf("evaluation cancelled: %v", err)
		}
		return Outcome{
			Result:      Maybe,
			Unevaluated: true,
			Fault:       FaultTimeout,
			Detail:      reason,
			Err:         ctx.Err(),
		}
	}
}

// normalize enforces the Outcome contract on results the inner
// evaluator produced itself (fault outcomes built above are already
// well-formed): an error cannot assert YES or MAYBE-as-met, and the
// decision must be one of the three states.
func (s supervised) normalize(out Outcome) Outcome {
	if out.Fault != FaultNone {
		return out
	}
	if out.Err != nil && out.Result != No {
		s.api.sup.errors.Add(1)
		out.Result = Maybe
		out.Unevaluated = true
		out.Fault = FaultError
		if out.Detail == "" {
			out.Detail = "evaluator error: " + out.Err.Error()
		}
		return out
	}
	switch out.Result {
	case Yes, No, Maybe:
		return out
	default:
		s.api.sup.invalid.Add(1)
		reason := fmt.Sprintf("evaluator returned invalid decision %d", int(out.Result))
		return Outcome{
			Result:      Maybe,
			Unevaluated: true,
			Fault:       FaultInvalid,
			Detail:      reason,
			Err:         fmt.Errorf("%s", reason),
		}
	}
}

// faultReason returns the structured reason for a degraded outcome,
// guaranteed non-empty when Fault is set.
func (o Outcome) faultReason() string {
	if o.Detail != "" {
		return o.Detail
	}
	if o.Err != nil {
		return o.Err.Error()
	}
	return "evaluator fault: " + o.Fault.String()
}
