package gaa

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"gaaapi/internal/eacl"
)

// failingSource errors on every operation, for error-path coverage.
type failingSource struct{ err error }

func (f failingSource) Policies(string) ([]*eacl.EACL, error) { return nil, f.err }
func (f failingSource) Revision(string) (string, error)       { return "", f.err }

func TestGetObjectPolicyInfoSourceErrors(t *testing.T) {
	boom := errors.New("boom")
	a := New()
	if _, err := a.GetObjectPolicyInfo("/x", []PolicySource{failingSource{boom}}, nil); !errors.Is(err, boom) {
		t.Errorf("system source error = %v, want boom", err)
	}
	if _, err := a.GetObjectPolicyInfo("/x", nil, []PolicySource{failingSource{boom}}); !errors.Is(err, boom) {
		t.Errorf("local source error = %v, want boom", err)
	}
	// With the cache enabled, a Revision error surfaces too.
	ac := New(WithPolicyCache(4))
	if _, err := ac.GetObjectPolicyInfo("/x", []PolicySource{failingSource{boom}}, nil); !errors.Is(err, boom) {
		t.Errorf("revision error = %v, want boom", err)
	}
}

// A cached entry must go stale when either source level changes — the
// per-source revision comparison covers local sources too.
func TestCacheRevalidatesBothLevels(t *testing.T) {
	m1, m2 := NewMemorySource(), NewMemorySource()
	if err := m1.AddPolicy("*", "pos_access_right a *"); err != nil {
		t.Fatal(err)
	}
	a := New(WithPolicyCache(4))
	sys, loc := []PolicySource{m1}, []PolicySource{m2}
	if _, err := a.GetObjectPolicyInfo("/x", sys, loc); err != nil {
		t.Fatal(err)
	}
	if err := m2.AddPolicy("*", "neg_access_right a *"); err != nil {
		t.Fatal(err)
	}
	p, err := a.GetObjectPolicyInfo("/x", sys, loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Local) != 1 {
		t.Error("local-source change did not invalidate the cached policy")
	}
	if st := a.CacheStats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (initial + local revision change)", st.Misses)
	}
	// A Revision error during hit validation surfaces to the caller.
	boom := errors.New("boom")
	if _, err := a.GetObjectPolicyInfo("/x", sys, []PolicySource{failingSource{boom}}); !errors.Is(err, boom) {
		t.Errorf("revision error = %v, want boom", err)
	}
}

func TestRegisterInterfaceForm(t *testing.T) {
	a := New()
	a.Register("custom", "auth", EvaluatorFunc(func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "ok")
	}))
	if !a.Known("custom", "auth") {
		t.Error("Register(interface) did not install the evaluator")
	}
}

func TestOutcomeHelpers(t *testing.T) {
	if ClassSelector.String() != "selector" || ClassRequirement.String() != "requirement" || ClassAction.String() != "action" {
		t.Error("Class.String mismatch")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown Class.String mismatch")
	}
	if (Outcome{}).classOrDefault() != ClassSelector {
		t.Error("zero class should default to selector")
	}
	if (Outcome{Class: ClassAction}).classOrDefault() != ClassAction {
		t.Error("explicit class overridden")
	}
	u := UnevaluatedOutcome("x")
	if u.Result != Maybe || !u.Unevaluated {
		t.Errorf("UnevaluatedOutcome = %+v", u)
	}
}

func TestUnevaluatedOnlyVariants(t *testing.T) {
	redirect := eacl.Condition{Type: "redirect", Value: "http://x/"}
	other := eacl.Condition{Type: "maybe"}
	tests := []struct {
		name   string
		ans    Answer
		wantOK bool
	}{
		{"single redirect", Answer{Unevaluated: []eacl.Condition{redirect}}, true},
		{"wrong type", Answer{Unevaluated: []eacl.Condition{other}}, false},
		{"two conditions", Answer{Unevaluated: []eacl.Condition{redirect, other}}, false},
		{"none", Answer{}, false},
	}
	for _, tt := range tests {
		if _, ok := tt.ans.UnevaluatedOnly("redirect"); ok != tt.wantOK {
			t.Errorf("%s: UnevaluatedOnly = %v, want %v", tt.name, ok, tt.wantOK)
		}
	}
}

func TestFileSourceRevisionPresent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.eacl")
	writeFile(t, path, "pos_access_right a *\n")
	f := NewFileSource(path)
	rev, err := f.Revision("/x")
	if err != nil || rev == "" || rev == "absent" {
		t.Errorf("Revision = %q, %v", rev, err)
	}
}

func TestDirSourceRevisionTracksFiles(t *testing.T) {
	root := t.TempDir()
	d := NewDirSource(root, ".eacl")
	r1, err := d.Revision("/a/b/file")
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, ".eacl"), "pos_access_right a *\n")
	r2, err := d.Revision("/a/b/file")
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("revision unchanged after policy file creation")
	}
}
