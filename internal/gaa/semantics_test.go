package gaa

import (
	"context"
	"reflect"
	"testing"

	"gaaapi/internal/eacl"
)

// TestNegEntryMaybeIsUncertain pins the documented choice: a negative
// entry whose conditions are uncertain yields MAYBE (the server's
// native access control decides), never a silent skip of a possible
// threat nor a spurious deny.
func TestNegEntryMaybeIsUncertain(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_maybe local
pos_access_right apache *
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Errorf("decision = %v, want maybe", ans.Decision)
	}
	if len(ans.Unevaluated) != 1 {
		t.Errorf("unevaluated = %v", ans.Unevaluated)
	}
}

// TestRequestResultFiresAtBothLevels: under narrow composition with
// both levels deciding, the request-result conditions of BOTH deciding
// entries run, and they see the FINAL composed decision.
func TestRequestResultFiresAtBothLevels(t *testing.T) {
	a, log := newTestAPI(t)
	sys := mustEACL(t, `
eacl_mode narrow
pos_access_right apache *
rr_cond_record local on:any/sys
`)
	loc := mustEACL(t, `
neg_access_right apache *
rr_cond_record local on:any/loc
`)
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No {
		t.Fatalf("decision = %v, want no (narrow)", ans.Decision)
	}
	// Both entries fired their rr blocks; the recorded decision is the
	// composed one (no), even for the system entry that granted.
	got := log.all()
	want := []string{"on:any/sys:no", "on:any/loc:no"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rr activations = %v, want %v", got, want)
	}
}

// TestMidBlocksMergeAcrossLevels: the mid-conditions of every deciding
// entry accumulate in the answer (system quota AND local quota both
// enforced during execution).
func TestMidBlocksMergeAcrossLevels(t *testing.T) {
	a, _ := newTestAPI(t)
	sys := mustEACL(t, `
eacl_mode narrow
pos_access_right apache *
mid_cond_quota local cpu_ms<=100
`)
	loc := mustEACL(t, `
pos_access_right apache *
mid_cond_quota local output_bytes<=4096
`)
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Yes {
		t.Fatalf("decision = %v", ans.Decision)
	}
	if len(ans.Mid) != 2 {
		t.Errorf("mid conditions = %v, want both levels' quotas", ans.Mid)
	}
}

// TestExecutionControlUnregisteredQuotaIsMaybe: an unevaluable
// mid-condition yields MAYBE from the execution-control phase — the
// caller decides whether to run open or fail closed.
func TestExecutionControlUnregisteredQuotaIsMaybe(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
mid_cond_never_registered local x<=1
`))
	req := simpleRequest()
	ans := checkAuth(t, a, p, req)
	dec, trace := a.ExecutionControl(context.Background(), ans, req)
	if dec != Maybe {
		t.Errorf("ExecutionControl = %v, want maybe", dec)
	}
	if len(trace) != 1 {
		t.Errorf("trace = %v", trace)
	}
}

// TestChallengePreservedThroughNarrowGrantingSystem: a curable local
// deny keeps its challenge when the system level grants.
func TestChallengePreservedThroughNarrowGrantingSystem(t *testing.T) {
	a, _ := newTestAPI(t)
	sys := mustEACL(t, "eacl_mode narrow\npos_access_right apache *")
	loc := mustEACL(t, `
pos_access_right apache *
pre_cond_req_no local
`)
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No || ans.Challenge == "" {
		t.Errorf("decision = %v challenge = %q, want curable deny", ans.Decision, ans.Challenge)
	}
}

// TestFirstMatchingRightDecidesNotFirstEntry: entries whose rights do
// not match are skipped entirely — including their conditions.
func TestFirstMatchingRightDecidesNotFirstEntry(t *testing.T) {
	a, log := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right sshd *
rr_cond_record local on:any/wrong-app
pos_access_right apache *
rr_cond_record local on:any/right-app
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Yes {
		t.Fatalf("decision = %v", ans.Decision)
	}
	// The test evaluator strips only on:success/on:failure prefixes, so
	// the on:any tag records verbatim.
	if got := log.all(); len(got) != 1 || got[0] != "on:any/right-app:yes" {
		t.Errorf("rr activations = %v", got)
	}
}

// TestPostBlocksNotInheritedFromInapplicableEntries: only deciding
// entries contribute post-conditions.
func TestPostBlocksNotInheritedFromInapplicableEntries(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_sel_no local
post_cond_record local on:any/skipped-entry
pos_access_right apache *
post_cond_record local on:any/fired-entry
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if len(ans.Post) != 1 || ans.Post[0].Value != "on:any/fired-entry" {
		t.Errorf("post conditions = %v", ans.Post)
	}
}
