package gaa

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gaaapi/internal/eacl"
)

func TestRequestResultConditionsSeeDecision(t *testing.T) {
	a, log := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_sel_yes local
rr_cond_record local on:failure/denied
rr_cond_record local on:success/granted
`))
	checkAuth(t, a, p, simpleRequest())
	got := log.all()
	want := []string{"denied:no"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rr activations = %v, want %v", got, want)
	}
}

func TestRequestResultOnSuccessFires(t *testing.T) {
	a, log := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
rr_cond_record local on:success/granted
rr_cond_record local on:failure/denied
`))
	checkAuth(t, a, p, simpleRequest())
	if got, want := log.all(), []string{"granted:yes"}; !reflect.DeepEqual(got, want) {
		t.Errorf("rr activations = %v, want %v", got, want)
	}
}

func TestRequestResultSkippedWhenNoEntryFires(t *testing.T) {
	a, log := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
pre_cond_sel_no local
rr_cond_record local on:any/should-not-run
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Fatalf("decision = %v, want maybe", ans.Decision)
	}
	if got := log.all(); len(got) != 0 {
		t.Errorf("rr conditions of inapplicable entry fired: %v", got)
	}
}

// Paper section 6 step 2c: the final status is the conjunction of the
// pre-condition result and the request-result outcomes.
func TestRequestResultFailureConjoinsIntoStatus(t *testing.T) {
	a := New()
	a.RegisterFunc("failing_action", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return Outcome{Result: No, Class: ClassAction, Detail: "notification failed"}
	})
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
rr_cond_failing_action local
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No {
		t.Errorf("decision = %v, want no (rr failure conjoined)", ans.Decision)
	}
}

func TestAnswerCarriesMidAndPostBlocks(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
pre_cond_sel_yes local
mid_cond_quota local cpu_ms<=50
mid_cond_quota local output_bytes<=4096
post_cond_record local on:any/done
`))
	ans := checkAuth(t, a, p, simpleRequest())
	if len(ans.Mid) != 2 {
		t.Errorf("mid conditions = %d, want 2", len(ans.Mid))
	}
	if len(ans.Post) != 1 {
		t.Errorf("post conditions = %d, want 1", len(ans.Post))
	}
}

func TestExecutionControlEvaluatesMidConditions(t *testing.T) {
	a := New(WithTracing())
	a.RegisterFunc("quota", AuthorityAny, func(_ context.Context, c eacl.Condition, r *Request) Outcome {
		// Tiny quota language for the test: "cpu_ms<=N".
		if c.Value == "cpu_ms<=50" {
			if n, ok := r.Params.GetInt(ParamCPUMillis, AuthorityAny); ok && n <= 50 {
				return MetOutcome(ClassRequirement, "within quota")
			}
			return FailedOutcome(ClassRequirement, "quota exceeded")
		}
		return UnevaluatedOutcome("unknown quota")
	})
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
mid_cond_quota local cpu_ms<=50
`))
	req := simpleRequest()
	ans := checkAuth(t, a, p, req)
	if ans.Decision != Yes {
		t.Fatalf("decision = %v, want yes", ans.Decision)
	}

	dec, trace := a.ExecutionControl(context.Background(), ans, req,
		Param{Type: ParamCPUMillis, Authority: AuthorityAny, Value: "10"})
	if dec != Yes {
		t.Errorf("within quota: decision = %v, want yes", dec)
	}
	if len(trace) != 1 {
		t.Errorf("trace = %v, want one event", trace)
	}

	dec, _ = a.ExecutionControl(context.Background(), ans, req,
		Param{Type: ParamCPUMillis, Authority: AuthorityAny, Value: "500"})
	if dec != No {
		t.Errorf("over quota: decision = %v, want no", dec)
	}
}

func TestExecutionControlNoMidConditionsIsYes(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, "pos_access_right apache *"))
	req := simpleRequest()
	ans := checkAuth(t, a, p, req)
	if dec, trace := a.ExecutionControl(context.Background(), ans, req); dec != Yes || trace != nil {
		t.Errorf("ExecutionControl = %v, %v; want yes, nil", dec, trace)
	}
}

func TestPostExecutionActionsSeeOperationStatus(t *testing.T) {
	a, log := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
pos_access_right apache *
post_cond_record local on:failure/op-failed
post_cond_record local on:success/op-ok
`))
	req := simpleRequest()
	ans := checkAuth(t, a, p, req)

	// The record evaluator keys on req.Decision; PostExecutionActions
	// must surface the operation status there via OpStatus handling.
	// Our test evaluator uses Decision, so emulate the paper's contract
	// through the op_status parameter instead.
	a.RegisterFunc("record", AuthorityAny, func(_ context.Context, c eacl.Condition, r *Request) Outcome {
		st, _ := r.Params.Get(ParamOpStatusName, AuthorityAny)
		switch {
		case c.Value == "on:failure/op-failed" && st == "no":
			log.add("op-failed")
		case c.Value == "on:success/op-ok" && st == "yes":
			log.add("op-ok")
		}
		return MetOutcome(ClassAction, "recorded")
	})

	if dec, _ := a.PostExecutionActions(context.Background(), ans, req, No); dec != Yes {
		t.Errorf("post decision = %v, want yes", dec)
	}
	if got, want := log.all(), []string{"op-failed"}; !reflect.DeepEqual(got, want) {
		t.Errorf("post activations = %v, want %v", got, want)
	}

	if dec, _ := a.PostExecutionActions(context.Background(), ans, req, Yes); dec != Yes {
		t.Errorf("post decision = %v, want yes", dec)
	}
	if got, want := log.all(), []string{"op-failed", "op-ok"}; !reflect.DeepEqual(got, want) {
		t.Errorf("post activations = %v, want %v", got, want)
	}
}

func TestPostExecutionNoConditionsIsYes(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, "pos_access_right apache *"))
	req := simpleRequest()
	ans := checkAuth(t, a, p, req)
	if dec, _ := a.PostExecutionActions(context.Background(), ans, req, Yes); dec != Yes {
		t.Errorf("decision = %v, want yes", dec)
	}
}

func TestCheckAuthorizationNilPolicy(t *testing.T) {
	a, _ := newTestAPI(t)
	if _, err := a.CheckAuthorization(context.Background(), nil, simpleRequest()); err == nil {
		t.Error("want error for nil policy")
	}
}

func TestWithClock(t *testing.T) {
	fixed := time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC)
	a := New(WithClock(func() time.Time { return fixed }))
	var seen time.Time
	a.RegisterFunc("probe", AuthorityAny, func(_ context.Context, _ eacl.Condition, r *Request) Outcome {
		seen = r.Time
		return MetOutcome(ClassSelector, "")
	})
	p := localPolicy(mustEACL(t, "pos_access_right apache *\npre_cond_probe local"))
	checkAuth(t, a, p, simpleRequest())
	if !seen.Equal(fixed) {
		t.Errorf("condition saw time %v, want %v", seen, fixed)
	}
	if !a.Now().Equal(fixed) {
		t.Errorf("Now() = %v, want %v", a.Now(), fixed)
	}
}

func TestRequestTimePreserved(t *testing.T) {
	a, _ := newTestAPI(t)
	explicit := time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)
	var seen time.Time
	a.RegisterFunc("probe", AuthorityAny, func(_ context.Context, _ eacl.Condition, r *Request) Outcome {
		seen = r.Time
		return MetOutcome(ClassSelector, "")
	})
	p := localPolicy(mustEACL(t, "pos_access_right apache *\npre_cond_probe local"))
	req := simpleRequest()
	req.Time = explicit
	checkAuth(t, a, p, req)
	if !seen.Equal(explicit) {
		t.Errorf("condition saw %v, want explicit %v", seen, explicit)
	}
}

func TestCheckAuthorizationDoesNotMutateRequest(t *testing.T) {
	a, _ := newTestAPI(t)
	p := localPolicy(mustEACL(t, `
neg_access_right apache *
rr_cond_record local on:any/x
`))
	req := simpleRequest()
	checkAuth(t, a, p, req)
	if req.Decision != 0 {
		t.Errorf("caller's request mutated: Decision = %v", req.Decision)
	}
	if !req.Time.IsZero() {
		t.Errorf("caller's request mutated: Time = %v", req.Time)
	}
}

func TestRegisteredAndKnown(t *testing.T) {
	a := New()
	a.RegisterFunc("regex", "gnu", func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "")
	})
	if !a.Known("regex", "gnu") {
		t.Error("Known(regex, gnu) = false")
	}
	if a.Known("regex", "other") {
		t.Error("Known(regex, other) = true, want false (no wildcard registered)")
	}
	a.RegisterFunc("regex", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "")
	})
	if !a.Known("regex", "other") {
		t.Error("Known should fall back to wildcard authority")
	}
	regs := a.Registered()
	if len(regs) != 2 {
		t.Errorf("Registered() = %v, want 2 entries", regs)
	}
}
