package gaa

import "testing"

func TestParamListGet(t *testing.T) {
	ps := ParamList{
		{Type: ParamClientIP, Authority: AuthorityAny, Value: "10.0.0.1"},
		{Type: ParamUser, Authority: "apache", Value: "alice"},
		{Type: ParamUser, Authority: "sshd", Value: "bob"},
	}
	tests := []struct {
		name      string
		typ, auth string
		want      string
		wantOK    bool
	}{
		{"wildcard param any auth", ParamClientIP, "local", "10.0.0.1", true},
		{"exact authority", ParamUser, "apache", "alice", true},
		{"other authority", ParamUser, "sshd", "bob", true},
		{"caller wildcard takes first", ParamUser, AuthorityAny, "alice", true},
		{"missing", "nonexistent", AuthorityAny, "", false},
		{"authority mismatch", ParamUser, "ftp", "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := ps.Get(tt.typ, tt.auth)
			if got != tt.want || ok != tt.wantOK {
				t.Errorf("Get(%q, %q) = %q, %v; want %q, %v", tt.typ, tt.auth, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestParamListGetInt(t *testing.T) {
	ps := ParamList{
		{Type: ParamInputLength, Authority: AuthorityAny, Value: "1200"},
		{Type: "bad_number", Authority: AuthorityAny, Value: "12x0"},
	}
	if n, ok := ps.GetInt(ParamInputLength, "local"); !ok || n != 1200 {
		t.Errorf("GetInt = %d, %v; want 1200, true", n, ok)
	}
	if _, ok := ps.GetInt("bad_number", "local"); ok {
		t.Error("GetInt on non-numeric value should fail")
	}
	if _, ok := ps.GetInt("missing", "local"); ok {
		t.Error("GetInt on missing param should fail")
	}
}

func TestParamListWithDoesNotMutate(t *testing.T) {
	base := ParamList{{Type: "a", Authority: "*", Value: "1"}}
	ext := base.With(Param{Type: "b", Authority: "*", Value: "2"})
	if len(base) != 1 {
		t.Errorf("base mutated: %v", base)
	}
	if len(ext) != 2 {
		t.Errorf("extended list = %v", ext)
	}
	if _, ok := ext.Get("b", "*"); !ok {
		t.Error("extended list missing appended param")
	}
}
